//===--- fig5_time.cpp - Reproduce the paper's Figure 5 -------------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5 of the paper: analysis time of each instance normalized to the
/// Offsets instance, with the absolute Offsets time shown under each
/// program (the paper prints it below the bars). Timing uses
/// google-benchmark's measurement loop per (program, instance) pair; the
/// normalized table is assembled from the captured results.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/TablePrinter.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace spa;
using namespace spa::bench;

namespace {

/// Captures per-benchmark real time so the ratio table can be printed
/// after the run.
class CapturingReporter : public benchmark::ConsoleReporter {
public:
  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs)
      Times[R.benchmark_name()] = R.GetAdjustedRealTime();
    benchmark::ConsoleReporter::ReportRuns(Runs);
  }

  std::map<std::string, double> Times; ///< ns per iteration
};

std::vector<std::string> ProgramSources;

void solveBenchmark(benchmark::State &State) {
  const std::string &Source = ProgramSources[State.range(0)];
  ModelKind Kind = AllModels[State.range(1)];
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    AnalysisOptions Opts;
    Opts.Model = Kind;
    Analysis A(P->Prog, Opts);
    A.run();
    benchmark::DoNotOptimize(A.solver().numEdges());
  }
}

} // namespace

int main(int argc, char **argv) {
  std::vector<const CorpusEntry *> Entries;
  for (const CorpusEntry &E : corpusManifest()) {
    if (!E.HasStructCasting)
      continue; // Figure 5 covers the casting group
    std::string Source;
    if (!loadCorpusSource(E, Source)) {
      std::fprintf(stderr, "missing corpus file %s\n", E.FileName.c_str());
      return 1;
    }
    ProgramSources.push_back(std::move(Source));
    Entries.push_back(&E);
  }

  const char *ModelTag[4] = {"CA", "CoC", "CIS", "Off"};
  for (size_t P = 0; P < Entries.size(); ++P)
    for (int M = 0; M < 4; ++M)
      benchmark::RegisterBenchmark(
          (Entries[P]->Name + "/" + ModelTag[M]).c_str(), solveBenchmark)
          ->Args({(long)P, M})
          ->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  CapturingReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);

  std::printf("\n== Figure 5: analysis time normalized to the Offsets "
              "instance ==\n   (absolute Offsets time in ms in the last "
              "columns; each run includes\n    parse + normalize + solve, "
              "as one would use the library end to end)\n\n");
  TablePrinter Table({"program", "Collapse Always", "Collapse on Cast",
                      "Common Init Seq", "Offsets", "Offsets ms",
                      "Off rounds"});
  size_t ProgramIndex = 0;
  for (const CorpusEntry *E : Entries) {
    double T[4];
    for (int M = 0; M < 4; ++M)
      // RegisterBenchmark()->Args() appends "/<arg0>/<arg1>" to the name.
      T[M] = Reporter.Times[E->Name + "/" + ModelTag[M] + "/" +
                            std::to_string(ProgramIndex) + "/" +
                            std::to_string(M)];
    // Naive-engine rounds of the Offsets run (one extra solve; all these
    // timings use the naive engine, where "iterations" means full rounds
    // over the statement list — the worklist engine reports Pops instead,
    // which are not comparable).
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(ProgramSources[ProgramIndex], Diags);
    unsigned Rounds = 0;
    if (P) {
      AnalysisOptions Opts;
      Opts.Model = ModelKind::Offsets;
      Analysis A(P->Prog, Opts);
      A.run();
      Rounds = A.solver().runStats().Rounds;
    }
    ++ProgramIndex;
    if (T[3] <= 0)
      continue;
    Table.addRow({E->Name, TablePrinter::fixed(T[0] / T[3]),
                  TablePrinter::fixed(T[1] / T[3]),
                  TablePrinter::fixed(T[2] / T[3]),
                  TablePrinter::fixed(1.0),
                  // GetAdjustedRealTime is already in the benchmark's
                  // reported unit (milliseconds here).
                  TablePrinter::fixed(T[3], 3), std::to_string(Rounds)});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\nShape check (paper): the three casting-aware instances "
              "usually run within\n~50%% of each other; Collapse Always is "
              "cheapest per statement but its larger\nsets can cost "
              "rounds.\n");
  return 0;
}
