//===--- ablation_arith.cpp - Cost of the Assumption-1 arithmetic rule ----===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation called out in DESIGN.md: the paper adopts Assumption 1 and
/// treats the result of any pointer arithmetic as pointing to *any*
/// sub-field of the operands' objects. This bench measures what that
/// conservatism costs, per program, by comparing the Common-Initial-
/// Sequence instance with the rule enabled (sound) and disabled (unsound
/// lower bound): average deref-set size, edges, and solve iterations.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/TablePrinter.h"

using namespace spa;
using namespace spa::bench;

int main() {
  std::printf("== Ablation: Assumption-1 pointer-arithmetic smearing ==\n"
              "   (Common Initial Sequence instance; 'off' is an UNSOUND "
              "lower bound)\n\n");

  TablePrinter Table({"program", "avg set (on)", "avg set (off)",
                      "edges (on)", "edges (off)", "iters (on)",
                      "iters (off)"});

  for (const CorpusEntry &E : corpusManifest()) {
    auto P = compileEntry(E);
    double Avg[2];
    uint64_t Edges[2];
    unsigned Iters[2];
    for (int On = 1; On >= 0; --On) {
      AnalysisOptions Opts;
      Opts.Model = ModelKind::CommonInitialSeq;
      Opts.Solver.HandlePtrArith = On != 0;
      Analysis A(P->Prog, Opts);
      A.run();
      Avg[On] = A.derefMetrics().AvgSetSize;
      Edges[On] = A.solver().numEdges();
      Iters[On] = A.solver().runStats().Rounds;
    }
    Table.addRow({E.Name, TablePrinter::fixed(Avg[1]),
                  TablePrinter::fixed(Avg[0]), std::to_string(Edges[1]),
                  std::to_string(Edges[0]), std::to_string(Iters[1]),
                  std::to_string(Iters[0])});
  }

  std::fputs(Table.render().c_str(), stdout);
  std::printf("\nReading: the gap between columns is the precision paid for "
              "soundness under\nAssumption 1 (walking pointers, casted "
              "integers). Programs that never move\npointers show no "
              "gap.\n");
  return 0;
}
