//===--- portability.cpp - The portability hazard, quantified -------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central argument for the portable instances: offset-based
/// results are only safe for the layout they were computed under. This
/// bench analyzes every corpus program with the Offsets instance under
/// three conforming ABIs (ilp32, lp64, padded32) and reports how many
/// dereference sites change their (rendered) points-to sets across ABIs;
/// the portable instances are checked to be identical by construction.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pta/GraphExport.h"
#include "support/TablePrinter.h"

using namespace spa;
using namespace spa::bench;

namespace {

/// Rendered deref sets under one target, in site order.
std::vector<std::string> derefSignature(const std::string &Source,
                                        ModelKind Kind, TargetInfo Target) {
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(Source, Diags, Target);
  if (!P)
    return {};
  AnalysisOptions Opts;
  Opts.Model = Kind;
  Opts.Target = std::move(Target);
  Analysis A(P->Prog, Opts);
  A.run();
  std::vector<std::string> Out;
  for (const DerefSite &Site : P->Prog.DerefSites) {
    std::string Sig;
    for (NodeId T : A.solver().derefTargets(Site)) {
      // Strip the "+off" suffix: compare *which storage* is reached, the
      // portable meaning of the result.
      std::string Name = nodeToString(A.solver(), T);
      size_t Plus = Name.rfind('+');
      if (Plus != std::string::npos)
        Name.resize(Plus);
      Sig += Name;
      Sig += ';';
    }
    Out.push_back(std::move(Sig));
  }
  return Out;
}

size_t countDiffs(const std::vector<std::string> &A,
                  const std::vector<std::string> &B) {
  size_t N = std::min(A.size(), B.size());
  size_t Diffs = A.size() > B.size() ? A.size() - B.size()
                                     : B.size() - A.size();
  for (size_t I = 0; I < N; ++I)
    if (A[I] != B[I])
      ++Diffs;
  return Diffs;
}

} // namespace

int main() {
  std::printf("== Portability: Offsets results across conforming ABIs ==\n"
              "   (sites whose reachable-storage set differs from the "
              "ilp32 run)\n\n");

  TablePrinter Table({"program", "sites", "Offsets lp64 diff",
                      "Offsets padded32 diff", "CIS any diff"});

  size_t TotalSites = 0, TotalDiff = 0;
  for (const CorpusEntry &E : corpusManifest()) {
    std::string Source;
    if (!loadCorpusSource(E, Source)) {
      std::fprintf(stderr, "missing corpus file %s\n", E.FileName.c_str());
      return 1;
    }
    auto Off32 = derefSignature(Source, ModelKind::Offsets,
                                TargetInfo::ilp32());
    auto Off64 = derefSignature(Source, ModelKind::Offsets,
                                TargetInfo::lp64());
    auto OffPad = derefSignature(Source, ModelKind::Offsets,
                                 TargetInfo::padded32());
    auto Cis32 = derefSignature(Source, ModelKind::CommonInitialSeq,
                                TargetInfo::ilp32());
    auto CisPad = derefSignature(Source, ModelKind::CommonInitialSeq,
                                 TargetInfo::padded32());
    size_t D64 = countDiffs(Off32, Off64);
    size_t DPad = countDiffs(Off32, OffPad);
    size_t DCis = countDiffs(Cis32, CisPad);
    TotalSites += Off32.size();
    TotalDiff += DPad;
    Table.addRow({E.Name, std::to_string(Off32.size()), std::to_string(D64),
                  std::to_string(DPad), std::to_string(DCis)});
  }

  std::fputs(Table.render().c_str(), stdout);
  std::printf("\n%zu of %zu dereference sites change their Offsets result "
              "under at least one\nconforming layout; the portable "
              "instances are layout-independent (last\ncolumn identically "
              "0). This is the paper's case against shipping "
              "offset-based\nresults in a programming tool.\n",
              TotalDiff, TotalSites);
  return 0;
}
