//===--- scaling.cpp - Solver scaling on generated programs ---------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark microbenchmarks of the whole pipeline on generated
/// programs of growing size, per analysis instance and per solver engine
/// (naive rounds, plain worklist, worklist with delta propagation): how
/// parse, normalize, and solve scale with statement count. Complements
/// the paper's Figure 5 (which uses fixed real programs) with a
/// controlled sweep.
///
/// After the benchmarks, a head-to-head of the two worklist engines on
/// the largest workload is written as spa.run.v1 telemetry to
/// BENCH_scaling.json (override with --stats-json=<file>), so the bench
/// output records convergence and delta/full propagation counts next to
/// the timings.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pta/Telemetry.h"
#include "workload/Generator.h"

#include <benchmark/benchmark.h>

#include <fstream>

using namespace spa;
using namespace spa::bench;

namespace {

std::string generatedSource(int SizeClass) {
  GeneratorConfig Config;
  Config.Seed = 42;
  Config.NumStructs = 4 + SizeClass;
  Config.NumStructVars = 6 * SizeClass;
  Config.NumInts = 4 * SizeClass;
  Config.NumPtrVars = 4 * SizeClass;
  Config.NumFunctions = 2 * SizeClass;
  Config.StmtsPerFunction = 30;
  Config.UseHeap = true;
  return generateProgram(Config);
}

SolverOptions engineOptions(int Engine) {
  SolverOptions Opts;
  Opts.UseWorklist = Engine != 0;
  Opts.DeltaPropagation = Engine == 2;
  return Opts;
}

void pipelineBenchmark(benchmark::State &State) {
  std::string Source = generatedSource(static_cast<int>(State.range(0)));
  ModelKind Kind = AllModels[State.range(1)];
  SolverOptions SOpts = engineOptions(static_cast<int>(State.range(2)));
  size_t Stmts = 0;
  uint64_t Edges = 0;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    if (!P) {
      State.SkipWithError("generated program failed to compile");
      return;
    }
    AnalysisOptions Opts;
    Opts.Model = Kind;
    Opts.Solver = SOpts;
    Analysis A(P->Prog, Opts);
    A.run();
    Stmts = P->Prog.Stmts.size();
    Edges = A.solver().numEdges();
    benchmark::DoNotOptimize(Edges);
  }
  State.counters["stmts"] = static_cast<double>(Stmts);
  State.counters["edges"] = static_cast<double>(Edges);
}

void parseOnlyBenchmark(benchmark::State &State) {
  std::string Source = generatedSource(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    benchmark::DoNotOptimize(P);
  }
}

/// Solves the largest generated workload with \p Engine, best-of-\p Reps
/// on solve time, and returns the telemetry of the best run.
RunTelemetry headToHeadRun(const std::string &Source, int Engine, int Reps) {
  RunTelemetry Best;
  for (int R = 0; R < Reps; ++R) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    if (!P) {
      std::fprintf(stderr, "error: generated program failed to compile\n");
      std::exit(1);
    }
    AnalysisOptions Opts;
    Opts.Model = ModelKind::CommonInitialSeq;
    Opts.Solver = engineOptions(Engine);
    Analysis A(P->Prog, Opts);
    A.run();
    RunTelemetry T = collectTelemetry(
        A, Engine == 2 ? "scaling/size:8/worklist-delta"
                       : "scaling/size:8/worklist-plain");
    if (R == 0 || T.Solver.SolveSeconds < Best.Solver.SolveSeconds)
      Best = T;
  }
  return Best;
}

/// Emits the head-to-head comparison as one JSON document: both runs'
/// spa.run.v1 records plus the resulting speedup.
void writeHeadToHead(const std::string &Path) {
  std::string Source = generatedSource(8);
  RunTelemetry Plain = headToHeadRun(Source, 1, 5);
  RunTelemetry Delta = headToHeadRun(Source, 2, 5);
  double Speedup = Delta.Solver.SolveSeconds > 0
                       ? Plain.Solver.SolveSeconds / Delta.Solver.SolveSeconds
                       : 0;

  auto stripNewline = [](std::string S) {
    while (!S.empty() && S.back() == '\n')
      S.pop_back();
    return S;
  };
  std::string Json = "{\"schema\":\"spa.bench.scaling.v1\",";
  Json += "\"workload\":\"generated seed 42, size class 8\",";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "\"speedup_delta_vs_plain\":%.3f,",
                Speedup);
  Json += Buf;
  Json += "\"runs\":[";
  Json += stripNewline(telemetryToJson(Plain));
  Json += ",";
  Json += stripNewline(telemetryToJson(Delta));
  Json += "]}\n";

  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  Out << Json;
  std::printf("\nworklist head-to-head (largest workload, best of 5):\n"
              "  plain  %.3f ms   delta  %.3f ms   speedup %.2fx\n"
              "  telemetry written to %s\n",
              Plain.Solver.SolveSeconds * 1e3,
              Delta.Solver.SolveSeconds * 1e3, Speedup, Path.c_str());
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = "BENCH_scaling.json";
  // Peel off our own flag before google-benchmark sees the arguments.
  std::vector<char *> Args;
  for (int I = 0; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--stats-json=", 0) == 0)
      JsonPath = Arg.substr(13);
    else
      Args.push_back(argv[I]);
  }
  int Argc = static_cast<int>(Args.size());

  const char *ModelTag[4] = {"CollapseAlways", "CollapseOnCast",
                             "CommonInitSeq", "Offsets"};
  const char *EngineTag[3] = {"pipeline", "pipeline_worklist",
                              "pipeline_worklist_delta"};
  for (int Size : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("parse_normalize/size:" + std::to_string(Size)).c_str(),
        parseOnlyBenchmark)
        ->Args({Size})
        ->Unit(benchmark::kMillisecond);
    for (int M = 0; M < 4; ++M)
      for (int Engine = 0; Engine < 3; ++Engine)
        benchmark::RegisterBenchmark(
            (std::string(EngineTag[Engine]) + "/" + ModelTag[M] +
             "/size:" + std::to_string(Size))
                .c_str(),
            pipelineBenchmark)
            ->Args({Size, M, Engine})
            ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&Argc, Args.data());
  benchmark::RunSpecifiedBenchmarks();
  writeHeadToHead(JsonPath);
  return 0;
}
