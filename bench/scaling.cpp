//===--- scaling.cpp - Solver scaling on generated programs ---------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark microbenchmarks of the whole pipeline on generated
/// programs of growing size, per analysis instance and per solver engine
/// (naive rounds, plain worklist, worklist with delta propagation, delta
/// with online cycle elimination): how parse, normalize, and solve scale
/// with statement count. Complements the paper's Figure 5 (which uses
/// fixed real programs) with a controlled sweep.
///
/// After the benchmarks, two head-to-heads are written as spa.run.v1
/// telemetry to BENCH_scaling.json (override with --stats-json=<file>):
/// plain vs delta worklist on the largest plain workload, and delta vs
/// cycle elimination on a cycle-heavy workload (copy rings + mutually
/// recursive call loops), so the bench output records convergence and
/// propagation/collapse counts next to the timings. The same document
/// carries the points-to representation matrix ("pts_matrix"): solve
/// time x memory for every --pts= representation under the delta and scc
/// engines at size classes 24/32/48, the data behind the representation
/// guidance in docs/INTERNALS.md. A second matrix ("hvn_matrix") compares
/// --preprocess=none vs hvn on the cycle-heavy workload under the delta
/// and scc engines, recording offline merge counts and pass time next to
/// the solve time. A third matrix ("par_matrix") sweeps the parallel
/// engine over thread counts 1/2/4/8 at size classes 24/32/48/64 on a
/// wide-fan workload, recording per-cell speedup against the
/// single-thread run ("speedup_vs_seq"), level counts, and the barrier
/// imbalance metric.
///
/// `--smoke` skips google-benchmark entirely: it solves the smallest size
/// class of both workloads with all five engines and exits non-zero
/// unless every run converges and all engines agree edge-for-edge — the
/// CI guard (tools/ci.sh) that the engines stay interchangeable. It also
/// sweeps the compressed points-to representations against the sorted
/// baseline on a mid-size seed workload and fails if any representation
/// changes the solution, fails certification, regresses solve time more
/// than 1.5x, or uses more points-to storage than the sorted baseline.
/// It gates --preprocess=hvn on the cycle-heavy workload under both the
/// delta and scc engines: the pass must merge nodes, preserve the
/// certified solution, and not slow the run down end to end (combined
/// offline + solve time). Finally it gates the parallel engine:
/// byte-identical certified fixpoints vs scc at thread counts 1/2/4/7,
/// plus (on machines with >= 4 hardware threads) a 1.3x speedup at four
/// threads on the size-48 wide-fan workload.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "cfg/CfgVerifier.h"
#include "check/Checkers.h"
#include "flow/FlowPass.h"
#include "pta/GraphExport.h"
#include "pta/Telemetry.h"
#include "verify/Certifier.h"
#include "workload/Generator.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <thread>

using namespace spa;
using namespace spa::bench;

namespace {

std::string generatedSource(int SizeClass) {
  GeneratorConfig Config;
  Config.Seed = 42;
  Config.NumStructs = 4 + SizeClass;
  Config.NumStructVars = 6 * SizeClass;
  Config.NumInts = 4 * SizeClass;
  Config.NumPtrVars = 4 * SizeClass;
  Config.NumFunctions = 2 * SizeClass;
  Config.StmtsPerFunction = 30;
  Config.UseHeap = true;
  return generateProgram(Config);
}

/// A workload where copy cycles dominate: dense copy rings over pointer
/// and struct globals plus a mutually recursive call-return loop — the
/// shape where engines without cycle collapse grind (every lap of a ring
/// moves facts one edge) and online cycle elimination pays off.
std::string cycleHeavySource(int SizeClass) {
  GeneratorConfig Config;
  Config.Seed = 99;
  Config.NumStructs = 4;
  Config.NumStructVars = 8 * SizeClass;
  Config.NumInts = 16 * SizeClass;
  Config.NumPtrVars = 8 * SizeClass;
  Config.NumFunctions = 2 * SizeClass;
  Config.StmtsPerFunction = 60;
  Config.CopyRingPercent = 60;
  Config.NumCallCycleFuncs = 4 * SizeClass;
  Config.UseHeap = true;
  return generateProgram(Config);
}

/// The offline-preprocessing gate workload: copy rings plus wide copy
/// fans. Rings alone no longer discriminate — online collapse plus dead
/// self-copy retirement handles them at parity — but the acyclic fan and
/// chain structure is material only the offline pass can premerge, so
/// hvn must win end to end here or the pass is not paying for itself.
std::string mixedOfflineSource(int SizeClass) {
  GeneratorConfig Config;
  Config.Seed = 99;
  Config.NumStructs = 4;
  Config.NumStructVars = 8 * SizeClass;
  Config.NumInts = 16 * SizeClass;
  Config.NumPtrVars = 8 * SizeClass;
  Config.NumFunctions = 2 * SizeClass;
  Config.StmtsPerFunction = 60;
  Config.CopyRingPercent = 50;
  Config.WideFanPercent = 50;
  Config.NumCallCycleFuncs = 4 * SizeClass;
  Config.UseHeap = true;
  return generateProgram(Config);
}

/// A struct-dense workload for the points-to representation gates: wide
/// structs and a large share of field-fan statements mean points-to sets
/// hold many field nodes of the same object — the shape where the
/// compressed representations must earn their keep on memory (a
/// scalar-heavy workload, where every target is its own object, is the
/// documented worst case for the per-object encoding).
std::string structHeavySource(int SizeClass) {
  GeneratorConfig Config;
  Config.Seed = 7;
  Config.NumStructs = 4;
  Config.FieldsPerStruct = 8;
  Config.NumStructVars = 6 * SizeClass;
  Config.NumInts = 2 * SizeClass;
  Config.NumPtrVars = 4 * SizeClass;
  Config.NumFunctions = 2 * SizeClass;
  Config.StmtsPerFunction = 40;
  Config.FieldFanPercent = 50;
  Config.UseHeap = true;
  return generateProgram(Config);
}

/// Engine index -> options: 0 naive, 1 plain worklist, 2 delta worklist,
/// 3 delta worklist with cycle elimination, 4 the parallel engine at the
/// default (hardware-concurrency) thread count.
SolverOptions engineOptions(int Engine) {
  SolverOptions Opts;
  Opts.UseWorklist = Engine != 0;
  Opts.DeltaPropagation = Engine >= 2;
  Opts.CycleElimination = Engine >= 3;
  Opts.ParallelSolve = Engine == 4;
  return Opts;
}

const char *const EngineLabel[5] = {"naive", "worklist-plain",
                                    "worklist-delta", "worklist-scc",
                                    "worklist-par"};

/// A wide-fan workload for the parallel engine: most statements are
/// disjoint three-step copy chains, so the condensation is a shallow DAG
/// whose levels hold many mutually independent components — the maximal-
/// batch-width shape the level scheduler is built for.
std::string wideFanSource(int SizeClass) {
  GeneratorConfig Config;
  Config.Seed = 31;
  Config.NumStructs = 4;
  Config.NumStructVars = 4 * SizeClass;
  Config.NumInts = 8 * SizeClass;
  Config.NumPtrVars = 24 * SizeClass;
  Config.NumFunctions = 2 * SizeClass;
  Config.StmtsPerFunction = 60;
  Config.WideFanPercent = 60;
  Config.UseHeap = true;
  return generateProgram(Config);
}

constexpr PtsRepr AllReprs[4] = {PtsRepr::Sorted, PtsRepr::Small,
                                 PtsRepr::Bitmap, PtsRepr::Offsets};

void pipelineBenchmark(benchmark::State &State) {
  std::string Source = generatedSource(static_cast<int>(State.range(0)));
  ModelKind Kind = AllModels[State.range(1)];
  SolverOptions SOpts = engineOptions(static_cast<int>(State.range(2)));
  size_t Stmts = 0;
  uint64_t Edges = 0;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    if (!P) {
      State.SkipWithError("generated program failed to compile");
      return;
    }
    AnalysisOptions Opts;
    Opts.Model = Kind;
    Opts.Solver = SOpts;
    Analysis A(P->Prog, Opts);
    A.run();
    Stmts = P->Prog.Stmts.size();
    Edges = A.solver().numEdges();
    benchmark::DoNotOptimize(Edges);
  }
  State.counters["stmts"] = static_cast<double>(Stmts);
  State.counters["edges"] = static_cast<double>(Edges);
}

void parseOnlyBenchmark(benchmark::State &State) {
  std::string Source = generatedSource(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    benchmark::DoNotOptimize(P);
  }
}

/// Solves \p Source with \p Engine and points-to representation \p Repr,
/// best-of-\p Reps on solve time, and returns the telemetry of the best
/// run (labelled \p Label).
RunTelemetry headToHeadRun(const std::string &Source,
                           const std::string &Label, int Engine, int Reps,
                           PtsRepr Repr = PtsRepr::Sorted,
                           PreprocessKind Preprocess = PreprocessKind::None) {
  RunTelemetry Best;
  for (int R = 0; R < Reps; ++R) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    if (!P) {
      std::fprintf(stderr, "error: generated program failed to compile\n");
      std::exit(1);
    }
    AnalysisOptions Opts;
    Opts.Model = ModelKind::CommonInitialSeq;
    Opts.Solver = engineOptions(Engine);
    Opts.Solver.PointsTo = Repr;
    Opts.Solver.Preprocess = Preprocess;
    Analysis A(P->Prog, Opts);
    A.run();
    RunTelemetry T =
        collectTelemetry(A, Label + "/" + EngineLabel[Engine]);
    if (R == 0 || T.Solver.SolveSeconds < Best.Solver.SolveSeconds)
      Best = T;
  }
  return Best;
}

/// Solves \p Source with the parallel engine at \p Threads workers,
/// best-of-\p Reps on solve time, returning the best run's telemetry.
RunTelemetry parRun(const std::string &Source, const std::string &Label,
                    unsigned Threads, int Reps) {
  RunTelemetry Best;
  for (int R = 0; R < Reps; ++R) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    if (!P) {
      std::fprintf(stderr, "error: generated program failed to compile\n");
      std::exit(1);
    }
    AnalysisOptions Opts;
    Opts.Model = ModelKind::CommonInitialSeq;
    Opts.Solver = engineOptions(4);
    Opts.Solver.Threads = Threads;
    Analysis A(P->Prog, Opts);
    A.run();
    RunTelemetry T = collectTelemetry(
        A, Label + "/threads:" + std::to_string(Threads));
    if (R == 0 || T.Solver.SolveSeconds < Best.Solver.SolveSeconds)
      Best = T;
  }
  return Best;
}

/// The parallel-engine matrix: the wide-fan workload at size classes
/// 24/32/48/64 under thread counts 1/2/4/8, one JSON object per cell with
/// the speedup against the same size's single-thread run. Appended to the
/// scaling document as "par_matrix". On machines with fewer cores than a
/// cell's thread count the numbers record oversubscription honestly —
/// speedup_vs_seq is a measurement, not a gate (the gate lives in
/// --smoke and is conditional on core count).
std::string runParMatrix() {
  std::string Json = "\"par_matrix\":[";
  bool First = true;
  std::printf("\nparallel engine matrix (wide-fan, best of 3, "
              "CommonInitSeq, %u hardware threads):\n",
              std::thread::hardware_concurrency());
  for (int Size : {24, 32, 48, 64}) {
    std::string Source = wideFanSource(Size);
    double SeqSeconds = 0;
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      RunTelemetry T = parRun(Source, "par/size:" + std::to_string(Size),
                              Threads, 3);
      const SolverRunStats &RS = T.Solver;
      if (Threads == 1)
        SeqSeconds = RS.SolveSeconds;
      double Speedup =
          RS.SolveSeconds > 0 ? SeqSeconds / RS.SolveSeconds : 0;
      if (!First)
        Json += ",";
      First = false;
      char Buf[384];
      std::snprintf(
          Buf, sizeof(Buf),
          "{\"size\":%d,\"threads\":%u,\"solve_seconds\":%.6f,"
          "\"speedup_vs_seq\":%.3f,\"levels\":%u,\"barrier_merges\":%llu,"
          "\"par_gathered\":%llu,\"par_deferred\":%llu,"
          "\"par_imbalance_pct\":%.2f,\"edges\":%llu,\"converged\":%s}",
          Size, Threads, RS.SolveSeconds, Speedup, RS.Levels,
          (unsigned long long)RS.BarrierMerges,
          (unsigned long long)RS.ParGathered,
          (unsigned long long)RS.ParDeferred, RS.ParImbalancePct,
          (unsigned long long)RS.Edges, RS.Converged ? "true" : "false");
      Json += Buf;
      std::printf("  size %2d  threads %u  solve %8.3f ms  speedup "
                  "%.2fx  levels %u  imbalance %5.1f%%\n",
                  Size, Threads, RS.SolveSeconds * 1e3, Speedup, RS.Levels,
                  RS.ParImbalancePct);
    }
  }
  Json += "]";
  return Json;
}

/// The offline-preprocessing matrix: --preprocess=none vs hvn under the
/// delta and scc engines on the cycle-heavy workload (the shape the pass
/// targets: copy rings are offline-visible cycles). One JSON object per
/// cell, appended to the scaling document as "hvn_matrix".
std::string runHvnMatrix() {
  std::string Json = "\"hvn_matrix\":[";
  bool First = true;
  std::printf("\noffline hvn matrix (cycle-heavy, best of 3, "
              "CommonInitSeq):\n");
  for (int Size : {8, 16}) {
    std::string Source = cycleHeavySource(Size);
    for (int Engine : {2, 3}) {
      for (PreprocessKind Pre : {PreprocessKind::None, PreprocessKind::Hvn}) {
        const char *PreName = Pre == PreprocessKind::Hvn ? "hvn" : "none";
        RunTelemetry T =
            headToHeadRun(Source, "hvn/size:" + std::to_string(Size),
                          Engine, 3, PtsRepr::Sorted, Pre);
        const SolverRunStats &RS = T.Solver;
        if (!First)
          Json += ",";
        First = false;
        char Buf[320];
        std::snprintf(
            Buf, sizeof(Buf),
            "{\"size\":%d,\"engine\":\"%s\",\"preprocess\":\"%s\","
            "\"solve_seconds\":%.6f,\"offline_ms\":%.3f,"
            "\"nodes_merged_offline\":%llu,\"nodes_merged_online\":%llu,"
            "\"edges\":%llu,\"converged\":%s}",
            Size, EngineLabel[Engine], PreName, RS.SolveSeconds,
            RS.OfflineSeconds * 1e3,
            (unsigned long long)RS.NodesMergedOffline,
            (unsigned long long)RS.NodesMergedOnline,
            (unsigned long long)RS.Edges, RS.Converged ? "true" : "false");
        Json += Buf;
        std::printf("  size %2d  %-14s %-4s solve %8.3f ms  offline "
                    "%6.3f ms  merged %llu\n",
                    Size, EngineLabel[Engine], PreName,
                    RS.SolveSeconds * 1e3, RS.OfflineSeconds * 1e3,
                    (unsigned long long)RS.NodesMergedOffline);
      }
    }
  }
  Json += "]";
  return Json;
}

/// The points-to representation matrix: every --pts= representation under
/// the delta and scc engines at size classes 24/32/48, one JSON object
/// per cell. Appended to the scaling document as "pts_matrix" and
/// summarized on stdout; the memory comparison at the largest size is the
/// acceptance point for the compressed representations.
std::string runPtsMatrix() {
  std::string Json = "\"pts_matrix\":[";
  bool First = true;
  std::printf("\npoints-to representation matrix (best of 3, "
              "CommonInitSeq):\n");
  for (int Size : {24, 32, 48}) {
    std::string Source = generatedSource(Size);
    // Per-repr pts storage at fixpoint under the delta engine, reported
    // at each size for the stdout summary.
    size_t SortedBytes = 0;
    for (int Engine : {2, 3}) {
      for (PtsRepr Repr : AllReprs) {
        RunTelemetry T =
            headToHeadRun(Source, "pts/size:" + std::to_string(Size),
                          Engine, 3, Repr);
        const SolverRunStats &RS = T.Solver;
        size_t PtsBytes =
            RS.PtsSetBytes + RS.PtsLogBytes + RS.PtsLookupBytes;
        if (!First)
          Json += ",";
        First = false;
        char Buf[512];
        std::snprintf(
            Buf, sizeof(Buf),
            "{\"size\":%d,\"engine\":\"%s\",\"repr\":\"%s\","
            "\"solve_seconds\":%.6f,\"edges\":%llu,"
            "\"bytes_high_water\":%zu,\"pts_bytes\":%zu,"
            "\"pts_set_bytes\":%zu,\"pts_log_bytes\":%zu,"
            "\"pts_lookup_bytes\":%zu,\"pts_size_p50\":%zu,"
            "\"pts_size_p90\":%zu,\"pts_size_max\":%zu,"
            "\"converged\":%s}",
            Size, EngineLabel[Engine], ptsReprName(Repr),
            RS.SolveSeconds, (unsigned long long)RS.Edges,
            RS.BytesHighWater, PtsBytes, RS.PtsSetBytes, RS.PtsLogBytes,
            RS.PtsLookupBytes, RS.PtsSizeP50, RS.PtsSizeP90,
            RS.PtsSizeMax, RS.Converged ? "true" : "false");
        Json += Buf;
        if (Engine == 2) {
          if (Repr == PtsRepr::Sorted)
            SortedBytes = PtsBytes;
          std::printf("  size %2d  %-8s solve %8.3f ms  pts %8zu B  "
                      "high water %9zu B%s\n",
                      Size, ptsReprName(Repr), RS.SolveSeconds * 1e3,
                      PtsBytes, RS.BytesHighWater,
                      Repr != PtsRepr::Sorted && PtsBytes < SortedBytes
                          ? "  (beats sorted)"
                          : "");
        }
      }
    }
  }
  Json += "]";
  return Json;
}

/// Emits both head-to-head comparisons as one JSON document: the four
/// runs' spa.run.v1 records plus the resulting speedups.
void writeHeadToHead(const std::string &Path) {
  // Plain vs delta on the largest mixed workload (the historical
  // comparison), delta vs cycle elimination on the cycle-heavy one
  // (rings and call loops are where collapse changes the complexity).
  std::string Mixed = generatedSource(24);
  RunTelemetry Plain = headToHeadRun(Mixed, "scaling/size:24", 1, 5);
  RunTelemetry Delta = headToHeadRun(Mixed, "scaling/size:24", 2, 5);
  std::string Cyclic = cycleHeavySource(16);
  RunTelemetry CycDelta = headToHeadRun(Cyclic, "cycles/size:16", 2, 5);
  RunTelemetry CycScc = headToHeadRun(Cyclic, "cycles/size:16", 3, 5);

  double SpeedupDelta =
      Delta.Solver.SolveSeconds > 0
          ? Plain.Solver.SolveSeconds / Delta.Solver.SolveSeconds
          : 0;
  double SpeedupScc =
      CycScc.Solver.SolveSeconds > 0
          ? CycDelta.Solver.SolveSeconds / CycScc.Solver.SolveSeconds
          : 0;

  auto stripNewline = [](std::string S) {
    while (!S.empty() && S.back() == '\n')
      S.pop_back();
    return S;
  };
  std::string Json = "{\"schema\":\"spa.bench.scaling.v1\",";
  Json += "\"workload\":\"generated seed 42, size class 24\",";
  Json += "\"cycle_workload\":\"generated seed 99 (copy rings + call "
          "loops), size class 16\",";
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "\"speedup_delta_vs_plain\":%.3f,",
                SpeedupDelta);
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf), "\"speedup_scc_vs_delta\":%.3f,",
                SpeedupScc);
  Json += Buf;
  Json += "\"runs\":[";
  Json += stripNewline(telemetryToJson(Plain));
  Json += ",";
  Json += stripNewline(telemetryToJson(Delta));
  Json += ",";
  Json += stripNewline(telemetryToJson(CycDelta));
  Json += ",";
  Json += stripNewline(telemetryToJson(CycScc));
  Json += "],";
  Json += runPtsMatrix();
  Json += ",";
  Json += runHvnMatrix();
  Json += ",";
  Json += runParMatrix();
  Json += "}\n";

  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  Out << Json;
  std::printf("\nworklist head-to-head (largest workload, best of 5):\n"
              "  plain  %.3f ms   delta  %.3f ms   speedup %.2fx\n"
              "cycle-elimination head-to-head (cycle-heavy, best of 5):\n"
              "  delta  %.3f ms   scc    %.3f ms   speedup %.2fx\n"
              "  (scc: %llu sweeps, %llu sccs collapsed, %llu nodes "
              "merged)\n"
              "  telemetry written to %s\n",
              Plain.Solver.SolveSeconds * 1e3,
              Delta.Solver.SolveSeconds * 1e3, SpeedupDelta,
              CycDelta.Solver.SolveSeconds * 1e3,
              CycScc.Solver.SolveSeconds * 1e3, SpeedupScc,
              (unsigned long long)CycScc.Solver.SccSweeps,
              (unsigned long long)CycScc.Solver.SccsCollapsed,
              (unsigned long long)CycScc.Solver.NodesMergedOnline,
              Path.c_str());
}

int runReprSmoke();
int runHvnSmoke();
int runFlowSmoke();
int runCfgFlowSmoke();
int runParSmoke();

/// `--smoke`: the CI guard. Solves the smallest size class of both
/// workloads with all four engines; fails (exit 1) on non-convergence,
/// any edge-count disagreement between engines, a failed certification,
/// or certifier overhead of 3x the solve time or more. Then runs the
/// points-to representation gates (runReprSmoke) and the offline
/// preprocessing gates (runHvnSmoke).
int runSmoke() {
  int Failures = 0;
  const struct {
    const char *Name;
    std::string Source;
  } Workloads[] = {
      {"mixed/size:1", generatedSource(1)},
      {"cycles/size:1", cycleHeavySource(1)},
  };
  for (const auto &W : Workloads) {
    uint64_t Edges[5] = {};
    uint64_t Obligations[5] = {};
    double SolveSeconds = 0, CertifySeconds = 0;
    for (int Engine = 0; Engine < 5; ++Engine) {
      DiagnosticEngine Diags;
      auto P = CompiledProgram::fromSource(W.Source, Diags);
      if (!P) {
        std::fprintf(stderr, "FAIL %s: workload failed to compile\n",
                     W.Name);
        return 1;
      }
      AnalysisOptions Opts;
      Opts.Model = ModelKind::CommonInitialSeq;
      Opts.Solver = engineOptions(Engine);
      Analysis A(P->Prog, Opts);
      A.run();
      if (!A.solver().runStats().Converged) {
        std::fprintf(stderr, "FAIL %s/%s: did not converge\n", W.Name,
                     EngineLabel[Engine]);
        ++Failures;
      }
      Edges[Engine] = A.solver().numEdges();
      CertifyResult CR = certifySolution(A.solver());
      if (!CR.ok()) {
        std::fprintf(stderr,
                     "FAIL %s/%s: certification failed (%llu violations, "
                     "%llu unjustified facts)\n",
                     W.Name, EngineLabel[Engine],
                     (unsigned long long)CR.Violations,
                     (unsigned long long)CR.FactsUnjustified);
        ++Failures;
      }
      Obligations[Engine] = CR.Obligations;
      SolveSeconds += A.solver().runStats().SolveSeconds;
      CertifySeconds += CR.Seconds;
    }
    bool Equal = Edges[0] == Edges[1] && Edges[0] == Edges[2] &&
                 Edges[0] == Edges[3] && Edges[0] == Edges[4];
    if (!Equal) {
      std::fprintf(stderr,
                   "FAIL %s: engines disagree on edges "
                   "(naive %llu, plain %llu, delta %llu, scc %llu, "
                   "par %llu)\n",
                   W.Name, (unsigned long long)Edges[0],
                   (unsigned long long)Edges[1],
                   (unsigned long long)Edges[2],
                   (unsigned long long)Edges[3],
                   (unsigned long long)Edges[4]);
      ++Failures;
    }
    if (Obligations[0] != Obligations[1] || Obligations[0] != Obligations[2] ||
        Obligations[0] != Obligations[3] ||
        Obligations[0] != Obligations[4]) {
      std::fprintf(stderr,
                   "FAIL %s: engines disagree on certify obligations "
                   "(naive %llu, plain %llu, delta %llu, scc %llu, "
                   "par %llu)\n",
                   W.Name, (unsigned long long)Obligations[0],
                   (unsigned long long)Obligations[1],
                   (unsigned long long)Obligations[2],
                   (unsigned long long)Obligations[3],
                   (unsigned long long)Obligations[4]);
      ++Failures;
    } else if (Equal && !Failures) {
      std::printf("ok %s: 5 engines converged and certified, %llu edges, "
                  "%llu obligations each\n",
                  W.Name, (unsigned long long)Edges[0],
                  (unsigned long long)Obligations[0]);
    }
    // The certifier is one pass over the statements; it must stay well
    // under the fixpoint's cost (summed across the five engine runs, so
    // one slow engine cannot mask a slow certifier).
    if (SolveSeconds > 0 && CertifySeconds >= 3 * SolveSeconds) {
      std::fprintf(stderr,
                   "FAIL %s: certifier overhead %.2fx solve time "
                   "(certify %.3f ms vs solve %.3f ms)\n",
                   W.Name, CertifySeconds / SolveSeconds,
                   CertifySeconds * 1e3, SolveSeconds * 1e3);
      ++Failures;
    } else {
      std::printf("ok %s: certifier overhead %.2fx solve time\n", W.Name,
                  SolveSeconds > 0 ? CertifySeconds / SolveSeconds : 0.0);
    }
  }
  Failures += runReprSmoke();
  Failures += runHvnSmoke();
  Failures += runFlowSmoke();
  Failures += runCfgFlowSmoke();
  Failures += runParSmoke();
  return Failures ? 1 : 0;
}

/// A deallocation-heavy workload for the flow-pass gates: a third of the
/// statements are malloc/load pairs over the struct-pointer globals, plus
/// realloc chains, and main frees every struct pointer at the end and
/// dereferences one afterwards. Every body use precedes the frees in
/// statement order, so the flow-insensitive use-after-free reports are
/// almost all false positives — except the one post-free dereference.
std::string uafHeavySource(int SizeClass) {
  GeneratorConfig Config;
  Config.Seed = 13;
  Config.NumStructs = 4;
  Config.NumStructVars = 4 * SizeClass;
  Config.NumInts = 4 * SizeClass;
  Config.NumPtrVars = 4 * SizeClass;
  Config.NumFunctions = 2 * SizeClass;
  Config.StmtsPerFunction = 40;
  Config.FreePercent = 35;
  Config.ReallocPercent = 10;
  Config.UseHeap = true;
  return generateProgram(Config);
}

/// `--smoke`, part four: the invalidation-aware flow pass gates
/// (src/flow/). On the deallocation-heavy workload, under every engine:
/// the refinement must suppress at least one flow-insensitive
/// use-after-free report, keep at least one (the post-free dereference),
/// add none (every refined finding is a baseline finding — also audited
/// independently), cost under 20% of the solve time, and produce
/// bit-identical findings across all four engines.
int runFlowSmoke() {
  int Failures = 0;
  std::string Source = uafHeavySource(6);
  std::string FindingsByEngine[5];
  for (int Engine = 0; Engine < 5; ++Engine) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    if (!P) {
      std::fprintf(stderr, "FAIL flow-smoke: workload failed to compile\n");
      return Failures + 1;
    }
    AnalysisOptions Opts;
    Opts.Model = ModelKind::CommonInitialSeq;
    Opts.Solver = engineOptions(Engine);
    Analysis A(P->Prog, Opts);
    A.run();
    if (!A.solver().runStats().Converged) {
      std::fprintf(stderr, "FAIL flow-smoke/%s: did not converge\n",
                   EngineLabel[Engine]);
      ++Failures;
      continue;
    }
    DiagnosticEngine BaseDiags;
    CheckReport Base = runCheckers(A, {"use-after-free"}, BaseDiags);
    FlowResult FR = runInvalidationPass(A.solver());
    FlowAuditResult AR = auditFlowRefinement(A.solver());
    DiagnosticEngine RefDiags;
    CheckReport Refined = runCheckers(A, {"use-after-free"}, RefDiags);
    if (!AR.ok()) {
      std::fprintf(stderr, "FAIL flow-smoke/%s: audit found %llu violations\n",
                   EngineLabel[Engine], (unsigned long long)AR.Violations);
      ++Failures;
    }
    if (Base.Findings == 0 || FR.ReportsSuppressed == 0 ||
        Refined.Findings >= Base.Findings) {
      std::fprintf(stderr,
                   "FAIL flow-smoke/%s: no false-positive reduction "
                   "(baseline %u, refined %u, suppressed %llu)\n",
                   EngineLabel[Engine], Base.Findings, Refined.Findings,
                   (unsigned long long)FR.ReportsSuppressed);
      ++Failures;
    }
    if (Refined.Findings == 0) {
      std::fprintf(stderr,
                   "FAIL flow-smoke/%s: the post-free dereference (the one "
                   "true positive) was suppressed\n",
                   EngineLabel[Engine]);
      ++Failures;
    }
    // Zero new findings: every refined report line must appear verbatim in
    // the baseline report (the audit checks the per-site invariant; this
    // checks the user-visible output end to end).
    std::string BaseText = BaseDiags.formatAll();
    std::string RefText = RefDiags.formatAll();
    size_t Pos = 0;
    while (Pos < RefText.size()) {
      size_t Eol = RefText.find('\n', Pos);
      if (Eol == std::string::npos)
        Eol = RefText.size();
      std::string Line = RefText.substr(Pos, Eol - Pos);
      if (!Line.empty() && BaseText.find(Line) == std::string::npos) {
        std::fprintf(stderr,
                     "FAIL flow-smoke/%s: refined run added a finding the "
                     "baseline never produced: %s\n",
                     EngineLabel[Engine], Line.c_str());
        ++Failures;
        break;
      }
      Pos = Eol + 1;
    }
    double SolveSeconds = A.solver().runStats().SolveSeconds;
    if (FR.Seconds >= 0.2 * SolveSeconds && FR.Seconds > 0.0005) {
      std::fprintf(stderr,
                   "FAIL flow-smoke/%s: flow pass overhead %.2fx solve time "
                   "(flow %.3f ms vs solve %.3f ms)\n",
                   EngineLabel[Engine],
                   SolveSeconds > 0 ? FR.Seconds / SolveSeconds : 0.0,
                   FR.Seconds * 1e3, SolveSeconds * 1e3);
      ++Failures;
    }
    FindingsByEngine[Engine] = RefText;
    if (Engine == 0 && !Failures)
      std::printf("ok flow-smoke: baseline %u findings, refined %u, "
                  "%llu suppressed, flow %.3f ms (solve %.3f ms)\n",
                  Base.Findings, Refined.Findings,
                  (unsigned long long)FR.ReportsSuppressed, FR.Seconds * 1e3,
                  SolveSeconds * 1e3);
  }
  for (int Engine = 1; Engine < 5; ++Engine)
    if (FindingsByEngine[Engine] != FindingsByEngine[0]) {
      std::fprintf(stderr,
                   "FAIL flow-smoke: refined findings differ between %s "
                   "and %s\n",
                   EngineLabel[0], EngineLabel[Engine]);
      ++Failures;
    }
  if (!Failures)
    std::printf("ok flow-smoke: refined findings bit-identical across 5 "
                "engines\n");
  return Failures;
}

/// A branch- and loop-heavy workload for the CFG flow gates: the branch
/// shapes free on one if-arm and load on the other, the loop shapes free
/// on the back edge, plus the plain deallocation mix — the program the
/// CFG dataflow refines beyond the linear walk.
std::string branchHeavySource(int SizeClass) {
  GeneratorConfig Config;
  Config.Seed = 17;
  Config.NumStructs = 4;
  Config.NumStructVars = 4 * SizeClass;
  Config.NumInts = 4 * SizeClass;
  Config.NumPtrVars = 4 * SizeClass;
  Config.NumFunctions = 2 * SizeClass;
  Config.StmtsPerFunction = 40;
  Config.FreePercent = 20;
  Config.BranchPercent = 25;
  Config.LoopFreePercent = 10;
  Config.UseHeap = true;
  return generateProgram(Config);
}

/// `--smoke`, part four-b: the CFG dataflow gates (--flow=cfg). On the
/// branch-heavy workload, under every engine: the graph must verify
/// well-formed, the pass must audit clean, refine at least as many
/// reports away as the linear walk (strict improvement is asserted by
/// the golden corpus; the generated workload's margin may be zero), cost
/// under 25% of the solve time, and produce bit-identical findings
/// across all five engines.
int runCfgFlowSmoke() {
  int Failures = 0;
  std::string Source = branchHeavySource(6);
  std::string FindingsByEngine[5];
  for (int Engine = 0; Engine < 5; ++Engine) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    if (!P) {
      std::fprintf(stderr, "FAIL cfg-flow-smoke: workload failed to compile\n");
      return Failures + 1;
    }
    AnalysisOptions Opts;
    Opts.Model = ModelKind::CommonInitialSeq;
    Opts.Solver = engineOptions(Engine);
    Analysis A(P->Prog, Opts);
    A.run();
    if (!A.solver().runStats().Converged) {
      std::fprintf(stderr, "FAIL cfg-flow-smoke/%s: did not converge\n",
                   EngineLabel[Engine]);
      ++Failures;
      continue;
    }
    NormProgram &Prog = P->Prog;
    std::vector<char> Defined(Prog.Funcs.size(), 0);
    for (size_t F = 0; F < Prog.Funcs.size(); ++F)
      Defined[F] = Prog.Funcs[F].IsDefined ? 1 : 0;
    CfgVerifyResult CG = verifyCfg(Prog.Cfg, Prog.stmtOrder().ByFunc, Defined,
                                   Prog.Stmts.size());
    if (!CG.ok()) {
      std::fprintf(stderr,
                   "FAIL cfg-flow-smoke/%s: CFG verifier found %llu "
                   "violations\n",
                   EngineLabel[Engine], (unsigned long long)CG.Violations);
      ++Failures;
    }
    FlowResult FR = runCfgFlowPass(A.solver());
    FlowAuditResult AR = auditFlowRefinement(A.solver());
    DiagnosticEngine RefDiags;
    CheckReport Refined = runCheckers(A, {"use-after-free"}, RefDiags);
    if (!AR.ok()) {
      std::fprintf(stderr,
                   "FAIL cfg-flow-smoke/%s: audit found %llu violations\n",
                   EngineLabel[Engine], (unsigned long long)AR.Violations);
      ++Failures;
    }
    if (FR.CfgBlocks == 0 || FR.CfgEdges == 0 || FR.JoinMerges == 0 ||
        FR.ExitSummaries == 0) {
      std::fprintf(stderr,
                   "FAIL cfg-flow-smoke/%s: degenerate CFG counters "
                   "(%llu blocks, %llu edges, %llu joins, %llu summaries)\n",
                   EngineLabel[Engine], (unsigned long long)FR.CfgBlocks,
                   (unsigned long long)FR.CfgEdges,
                   (unsigned long long)FR.JoinMerges,
                   (unsigned long long)FR.ExitSummaries);
      ++Failures;
    }
    double SolveSeconds = A.solver().runStats().SolveSeconds;
    if (FR.Seconds >= 0.25 * SolveSeconds && FR.Seconds > 0.0005) {
      std::fprintf(stderr,
                   "FAIL cfg-flow-smoke/%s: cfg pass overhead %.2fx solve "
                   "time (flow %.3f ms vs solve %.3f ms)\n",
                   EngineLabel[Engine],
                   SolveSeconds > 0 ? FR.Seconds / SolveSeconds : 0.0,
                   FR.Seconds * 1e3, SolveSeconds * 1e3);
      ++Failures;
    }
    FindingsByEngine[Engine] = RefDiags.formatAll();
    if (Engine == 0 && !Failures)
      std::printf("ok cfg-flow-smoke: %llu blocks, %llu edges, refined %u "
                  "findings, %llu suppressed, flow %.3f ms (solve %.3f ms)\n",
                  (unsigned long long)FR.CfgBlocks,
                  (unsigned long long)FR.CfgEdges, Refined.Findings,
                  (unsigned long long)FR.ReportsSuppressed, FR.Seconds * 1e3,
                  SolveSeconds * 1e3);
  }
  for (int Engine = 1; Engine < 5; ++Engine)
    if (FindingsByEngine[Engine] != FindingsByEngine[0]) {
      std::fprintf(stderr,
                   "FAIL cfg-flow-smoke: refined findings differ between %s "
                   "and %s\n",
                   EngineLabel[0], EngineLabel[Engine]);
      ++Failures;
    }
  if (!Failures)
    std::printf("ok cfg-flow-smoke: refined findings bit-identical across 5 "
                "engines\n");
  return Failures;
}

/// `--smoke`, part five: the parallel-engine gates. On the mixed,
/// cycle-heavy, and wide-fan workloads the par engine at thread counts
/// 1/2/4/7 must converge, certify, and export a fixpoint byte-identical
/// to the sequential scc engine's. On machines with at least four
/// hardware threads the wide-fan size-48 workload must additionally show
/// a >= 1.3x solve-time speedup at four threads over one (best of 3
/// each); with fewer cores the speedup gate is skipped — a thread pool
/// cannot beat itself on one core — but byte-equality and certification
/// are enforced unconditionally, and the imbalance metric must be
/// reported whenever parallel batches ran.
int runParSmoke() {
  int Failures = 0;
  ExportOptions All;
  All.IncludeTemps = true;
  const struct {
    const char *Name;
    std::string Source;
  } Workloads[] = {
      {"par-smoke/mixed", generatedSource(1)},
      {"par-smoke/cycles", cycleHeavySource(1)},
      {"par-smoke/wide", wideFanSource(2)},
  };
  for (const auto &W : Workloads) {
    std::string SccExport;
    {
      DiagnosticEngine Diags;
      auto P = CompiledProgram::fromSource(W.Source, Diags);
      if (!P) {
        std::fprintf(stderr, "FAIL %s: workload failed to compile\n",
                     W.Name);
        return Failures + 1;
      }
      AnalysisOptions Opts;
      Opts.Model = ModelKind::CommonInitialSeq;
      Opts.Solver = engineOptions(3);
      Analysis A(P->Prog, Opts);
      A.run();
      SccExport = exportEdgeList(A.solver(), All);
    }
    for (unsigned Threads : {1u, 2u, 4u, 7u}) {
      DiagnosticEngine Diags;
      auto P = CompiledProgram::fromSource(W.Source, Diags);
      AnalysisOptions Opts;
      Opts.Model = ModelKind::CommonInitialSeq;
      Opts.Solver = engineOptions(4);
      Opts.Solver.Threads = Threads;
      Analysis A(P->Prog, Opts);
      A.run();
      const SolverRunStats &RS = A.solver().runStats();
      if (!RS.Converged) {
        std::fprintf(stderr, "FAIL %s/threads:%u: did not converge\n",
                     W.Name, Threads);
        ++Failures;
        continue;
      }
      if (exportEdgeList(A.solver(), All) != SccExport) {
        std::fprintf(stderr,
                     "FAIL %s/threads:%u: fixpoint differs from scc\n",
                     W.Name, Threads);
        ++Failures;
        continue;
      }
      if (!certifySolution(A.solver()).ok()) {
        std::fprintf(stderr, "FAIL %s/threads:%u: did not certify\n",
                     W.Name, Threads);
        ++Failures;
        continue;
      }
      if (Threads > 1 && RS.BarrierMerges > 0 &&
          !(RS.ParImbalancePct >= 0)) {
        std::fprintf(stderr,
                     "FAIL %s/threads:%u: imbalance not reported "
                     "(%f)\n",
                     W.Name, Threads, RS.ParImbalancePct);
        ++Failures;
      }
    }
    if (!Failures)
      std::printf("ok %s: par fixpoint byte-identical to scc and "
                  "certified at 1/2/4/7 threads\n",
                  W.Name);
  }
  unsigned Cores = std::thread::hardware_concurrency();
  if (Cores >= 4) {
    std::string Source = wideFanSource(48);
    RunTelemetry Seq = parRun(Source, "par-smoke/size:48", 1, 3);
    RunTelemetry Par4 = parRun(Source, "par-smoke/size:48", 4, 3);
    double Speedup = Par4.Solver.SolveSeconds > 0
                         ? Seq.Solver.SolveSeconds /
                               Par4.Solver.SolveSeconds
                         : 0;
    if (Speedup < 1.3) {
      std::fprintf(stderr,
                   "FAIL par-smoke: speedup %.2fx at 4 threads on the "
                   "size-48 wide-fan workload (gate 1.3x, %u cores; "
                   "seq %.3f ms, par %.3f ms, imbalance %.1f%%)\n",
                   Speedup, Cores, Seq.Solver.SolveSeconds * 1e3,
                   Par4.Solver.SolveSeconds * 1e3,
                   Par4.Solver.ParImbalancePct);
      ++Failures;
    } else {
      std::printf("ok par-smoke: %.2fx speedup at 4 threads, size 48 "
                  "(imbalance %.1f%%)\n",
                  Speedup, Par4.Solver.ParImbalancePct);
    }
  } else {
    std::printf("ok par-smoke: speedup gate skipped (%u hardware "
                "threads; needs 4)\n",
                Cores);
  }
  return Failures;
}

/// `--smoke`, part three: the offline preprocessing gates. On the mixed
/// ring + fan workload the pass must merge nodes, reach the identical
/// certified fixpoint, and not make the run slower end to end. Two
/// gates per engine: a deterministic one on scheduling work — hvn must
/// not pop more statements than the unpreprocessed run, which is
/// exactly how the old scc regression manifested (premerged classes
/// re-queued their self-copies on every fact change and pops doubled;
/// the solver now retires such statements as dead) — and a wall-clock
/// one on combined offline + solve time with 1.15x headroom, because
/// the pass's whole claim is that paying the offline merge up front
/// wins overall, but single-core timer noise here runs well over the
/// few-percent margins the time comparison would otherwise need. Best
/// of 5 each by combined time. Both the delta and scc engines are
/// gated.
int runHvnSmoke() {
  constexpr int HvnSmokeSize = 12;
  int Failures = 0;
  std::string Source = mixedOfflineSource(HvnSmokeSize);
  struct PreResult {
    uint64_t Edges = 0;
    uint64_t MergedOffline = 0;
    uint64_t Pops = 0;
    bool Certified = false;
    double SolveSeconds = 0;
    double OfflineSeconds = 0;
  };
  for (int Engine : {2, 3}) {
    PreResult Res[2];
    for (int Pre = 0; Pre < 2; ++Pre) {
      for (int Rep = 0; Rep < 5; ++Rep) {
        DiagnosticEngine Diags;
        auto P = CompiledProgram::fromSource(Source, Diags);
        if (!P) {
          std::fprintf(stderr,
                       "FAIL hvn-smoke: workload failed to compile\n");
          return 1;
        }
        AnalysisOptions Opts;
        Opts.Model = ModelKind::CommonInitialSeq;
        Opts.Solver = engineOptions(Engine);
        Opts.Solver.Preprocess =
            Pre ? PreprocessKind::Hvn : PreprocessKind::None;
        Analysis A(P->Prog, Opts);
        A.run();
        const SolverRunStats &RS = A.solver().runStats();
        if (Rep == 0 || RS.OfflineSeconds + RS.SolveSeconds <
                            Res[Pre].OfflineSeconds + Res[Pre].SolveSeconds) {
          Res[Pre].SolveSeconds = RS.SolveSeconds;
          Res[Pre].OfflineSeconds = RS.OfflineSeconds;
          Res[Pre].Edges = A.solver().numEdges();
          Res[Pre].MergedOffline = RS.NodesMergedOffline;
          Res[Pre].Pops = RS.Pops;
          Res[Pre].Certified =
              RS.Converged && certifySolution(A.solver()).ok();
        }
      }
    }
    const char *Label = EngineLabel[Engine];
    for (int Pre = 0; Pre < 2; ++Pre)
      if (!Res[Pre].Certified) {
        std::fprintf(stderr, "FAIL hvn-smoke/%s/%s: did not certify\n",
                     Label, Pre ? "hvn" : "none");
        ++Failures;
      }
    if (Res[1].Edges != Res[0].Edges) {
      std::fprintf(stderr,
                   "FAIL hvn-smoke/%s: hvn changed the solution "
                   "(%llu edges vs %llu without preprocessing)\n",
                   Label, (unsigned long long)Res[1].Edges,
                   (unsigned long long)Res[0].Edges);
      ++Failures;
    }
    if (Res[1].MergedOffline == 0) {
      std::fprintf(stderr,
                   "FAIL hvn-smoke/%s: no nodes merged on the "
                   "mixed ring + fan workload\n",
                   Label);
      ++Failures;
    }
    if (Res[1].Pops > Res[0].Pops) {
      std::fprintf(stderr,
                   "FAIL hvn-smoke/%s: hvn increased scheduling work "
                   "(%llu pops vs %llu without preprocessing)\n",
                   Label, (unsigned long long)Res[1].Pops,
                   (unsigned long long)Res[0].Pops);
      ++Failures;
    }
    double Baseline = Res[0].OfflineSeconds + Res[0].SolveSeconds;
    double WithHvn = Res[1].OfflineSeconds + Res[1].SolveSeconds;
    if (WithHvn > Baseline * 1.15) {
      std::fprintf(stderr,
                   "FAIL hvn-smoke/%s: hvn slower end to end "
                   "(offline+solve %.3f ms vs %.3f ms baseline)\n",
                   Label, WithHvn * 1e3, Baseline * 1e3);
      ++Failures;
    }
    if (!Failures)
      std::printf("ok hvn-smoke/%s: certified, %llu edges, %llu nodes "
                  "merged offline, %llu pops vs %llu baseline, "
                  "offline+solve %.3f ms vs %.3f ms baseline\n",
                  Label, (unsigned long long)Res[1].Edges,
                  (unsigned long long)Res[1].MergedOffline,
                  (unsigned long long)Res[1].Pops,
                  (unsigned long long)Res[0].Pops, WithHvn * 1e3,
                  Baseline * 1e3);
  }
  return Failures;
}

/// `--smoke`, part two: the points-to representation gates. Each
/// compressed representation runs the delta engine under the
/// distinct-offsets field model — the most precise and most
/// memory-hungry configuration, where per-field nodes multiply set sizes
/// and compression has something to compress (on toy programs the shared
/// intern table alone outweighs a handful of 4-byte ids, which is
/// exactly the trade-off docs/INTERNALS.md documents) — and must match
/// the sorted baseline's solution, certify, stay within 1.5x of its
/// solve time, and not exceed its points-to storage bytes.
int runReprSmoke() {
  constexpr int ReprSmokeSize = 12;
  constexpr double TimeGate = 1.5;
  int Failures = 0;
  std::string Source = structHeavySource(ReprSmokeSize);
  struct ReprResult {
    uint64_t Edges = 0;
    bool Certified = false;
    double SolveSeconds = 0;
    size_t PtsBytes = 0;
  } Res[4];
  for (int R = 0; R < 4; ++R) {
    // Best of 3 on time so the 1.5x gate measures the representation,
    // not scheduler noise; bytes are identical across repetitions.
    for (int Rep = 0; Rep < 3; ++Rep) {
      DiagnosticEngine Diags;
      auto P = CompiledProgram::fromSource(Source, Diags);
      if (!P) {
        std::fprintf(stderr, "FAIL pts-smoke: workload failed to compile\n");
        return 1;
      }
      AnalysisOptions Opts;
      Opts.Model = ModelKind::Offsets;
      Opts.Solver = engineOptions(2);
      Opts.Solver.PointsTo = AllReprs[R];
      Analysis A(P->Prog, Opts);
      A.run();
      const SolverRunStats &RS = A.solver().runStats();
      if (Rep == 0 || RS.SolveSeconds < Res[R].SolveSeconds) {
        Res[R].SolveSeconds = RS.SolveSeconds;
        Res[R].Edges = RS.Edges;
        Res[R].PtsBytes =
            RS.PtsSetBytes + RS.PtsLogBytes + RS.PtsLookupBytes;
        Res[R].Certified =
            RS.Converged && certifySolution(A.solver()).ok();
      }
    }
  }
  for (int R = 0; R < 4; ++R) {
    const char *Name = ptsReprName(AllReprs[R]);
    if (!Res[R].Certified) {
      std::fprintf(stderr, "FAIL pts-smoke/%s: did not certify\n", Name);
      ++Failures;
      continue;
    }
    if (Res[R].Edges != Res[0].Edges) {
      std::fprintf(stderr,
                   "FAIL pts-smoke/%s: %llu edges, sorted found %llu\n",
                   Name, (unsigned long long)Res[R].Edges,
                   (unsigned long long)Res[0].Edges);
      ++Failures;
      continue;
    }
    if (R == 0)
      continue;
    double Ratio = Res[0].SolveSeconds > 0
                       ? Res[R].SolveSeconds / Res[0].SolveSeconds
                       : 0;
    if (Ratio > TimeGate) {
      std::fprintf(stderr,
                   "FAIL pts-smoke/%s: solve time %.2fx sorted "
                   "(%.3f ms vs %.3f ms, gate %.1fx)\n",
                   Name, Ratio, Res[R].SolveSeconds * 1e3,
                   Res[0].SolveSeconds * 1e3, TimeGate);
      ++Failures;
      continue;
    }
    if (Res[R].PtsBytes > Res[0].PtsBytes) {
      std::fprintf(stderr,
                   "FAIL pts-smoke/%s: %zu pts bytes, above the sorted "
                   "baseline's %zu\n",
                   Name, Res[R].PtsBytes, Res[0].PtsBytes);
      ++Failures;
      continue;
    }
    std::printf("ok pts-smoke/%s: certified, %llu edges, %.2fx sorted "
                "solve time, %zu pts bytes (sorted %zu)\n",
                Name, (unsigned long long)Res[R].Edges, Ratio,
                Res[R].PtsBytes, Res[0].PtsBytes);
  }
  return Failures;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = "BENCH_scaling.json";
  bool Smoke = false;
  // Peel off our own flags before google-benchmark sees the arguments.
  std::vector<char *> Args;
  for (int I = 0; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--stats-json=", 0) == 0)
      JsonPath = Arg.substr(13);
    else if (Arg == "--smoke")
      Smoke = true;
    else
      Args.push_back(argv[I]);
  }
  if (Smoke)
    return runSmoke();
  int Argc = static_cast<int>(Args.size());

  const char *ModelTag[4] = {"CollapseAlways", "CollapseOnCast",
                             "CommonInitSeq", "Offsets"};
  const char *EngineTag[4] = {"pipeline", "pipeline_worklist",
                              "pipeline_worklist_delta",
                              "pipeline_worklist_scc"};
  for (int Size : {1, 2, 4, 8, 12}) {
    benchmark::RegisterBenchmark(
        ("parse_normalize/size:" + std::to_string(Size)).c_str(),
        parseOnlyBenchmark)
        ->Args({Size})
        ->Unit(benchmark::kMillisecond);
    for (int M = 0; M < 4; ++M)
      for (int Engine = 0; Engine < 4; ++Engine)
        benchmark::RegisterBenchmark(
            (std::string(EngineTag[Engine]) + "/" + ModelTag[M] +
             "/size:" + std::to_string(Size))
                .c_str(),
            pipelineBenchmark)
            ->Args({Size, M, Engine})
            ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&Argc, Args.data());
  benchmark::RunSpecifiedBenchmarks();
  writeHeadToHead(JsonPath);
  return 0;
}
