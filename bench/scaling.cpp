//===--- scaling.cpp - Solver scaling on generated programs ---------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark microbenchmarks of the whole pipeline on generated
/// programs of growing size, per analysis instance: how parse, normalize,
/// and solve scale with statement count. Complements the paper's Figure 5
/// (which uses fixed real programs) with a controlled sweep.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workload/Generator.h"

#include <benchmark/benchmark.h>

using namespace spa;
using namespace spa::bench;

namespace {

std::string generatedSource(int SizeClass) {
  GeneratorConfig Config;
  Config.Seed = 42;
  Config.NumStructs = 4 + SizeClass;
  Config.NumStructVars = 6 * SizeClass;
  Config.NumInts = 4 * SizeClass;
  Config.NumPtrVars = 4 * SizeClass;
  Config.NumFunctions = 2 * SizeClass;
  Config.StmtsPerFunction = 30;
  Config.UseHeap = true;
  return generateProgram(Config);
}

void pipelineBenchmark(benchmark::State &State) {
  std::string Source = generatedSource(static_cast<int>(State.range(0)));
  ModelKind Kind = AllModels[State.range(1)];
  bool Worklist = State.range(2) != 0;
  size_t Stmts = 0;
  uint64_t Edges = 0;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    if (!P) {
      State.SkipWithError("generated program failed to compile");
      return;
    }
    AnalysisOptions Opts;
    Opts.Model = Kind;
    Opts.Solver.UseWorklist = Worklist;
    Analysis A(P->Prog, Opts);
    A.run();
    Stmts = P->Prog.Stmts.size();
    Edges = A.solver().numEdges();
    benchmark::DoNotOptimize(Edges);
  }
  State.counters["stmts"] = static_cast<double>(Stmts);
  State.counters["edges"] = static_cast<double>(Edges);
}

void parseOnlyBenchmark(benchmark::State &State) {
  std::string Source = generatedSource(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    benchmark::DoNotOptimize(P);
  }
}

} // namespace

int main(int argc, char **argv) {
  const char *ModelTag[4] = {"CollapseAlways", "CollapseOnCast",
                             "CommonInitSeq", "Offsets"};
  for (int Size : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("parse_normalize/size:" + std::to_string(Size)).c_str(),
        parseOnlyBenchmark)
        ->Args({Size})
        ->Unit(benchmark::kMillisecond);
    for (int M = 0; M < 4; ++M) {
      benchmark::RegisterBenchmark(
          (std::string("pipeline/") + ModelTag[M] +
           "/size:" + std::to_string(Size))
              .c_str(),
          pipelineBenchmark)
          ->Args({Size, M, 0})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          (std::string("pipeline_worklist/") + ModelTag[M] +
           "/size:" + std::to_string(Size))
              .c_str(),
          pipelineBenchmark)
          ->Args({Size, M, 1})
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
