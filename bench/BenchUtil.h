//===--- BenchUtil.h - Shared benchmark helpers ----------------*- C++ -*-===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#ifndef SPA_BENCH_BENCHUTIL_H
#define SPA_BENCH_BENCHUTIL_H

#include "pta/Frontend.h"
#include "workload/Corpus.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace spa::bench {

/// The four instances in the paper's column order.
inline const ModelKind AllModels[4] = {
    ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
    ModelKind::CommonInitialSeq, ModelKind::Offsets};

/// Loads and compiles one corpus program, exiting on error (benchmarks
/// must not run on broken inputs).
inline std::unique_ptr<CompiledProgram> compileEntry(const CorpusEntry &E) {
  std::string Source;
  if (!loadCorpusSource(E, Source)) {
    std::fprintf(stderr, "error: missing corpus file %s under %s\n",
                 E.FileName.c_str(), corpusDir().c_str());
    std::exit(1);
  }
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(Source, Diags);
  if (!P) {
    std::fprintf(stderr, "error: %s does not compile:\n%s", E.Name.c_str(),
                 Diags.formatAll().c_str());
    std::exit(1);
  }
  return P;
}

/// Counts source lines of one corpus program.
inline size_t countLines(const CorpusEntry &E) {
  std::string Source;
  if (!loadCorpusSource(E, Source))
    return 0;
  size_t Lines = 0;
  for (char C : Source)
    if (C == '\n')
      ++Lines;
  return Lines;
}

/// Runs one analysis and returns it (solved).
inline std::unique_ptr<Analysis> runModel(NormProgram &Prog, ModelKind Kind) {
  AnalysisOptions Opts;
  Opts.Model = Kind;
  auto A = std::make_unique<Analysis>(Prog, Opts);
  A->run();
  return A;
}

/// Median-of-N wall-clock seconds for parse+normalize+solve of \p Kind
/// over \p Source. Each repetition recompiles so that per-run state
/// (lazily materialized nodes) cannot leak between runs.
inline double timeSolve(const std::string &Source, ModelKind Kind,
                        int Reps = 5) {
  double Best = 1e100;
  for (int R = 0; R < Reps; ++R) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    if (!P)
      return 0;
    AnalysisOptions Opts;
    Opts.Model = Kind;
    Analysis A(P->Prog, Opts);
    auto T0 = std::chrono::steady_clock::now();
    A.run();
    auto T1 = std::chrono::steady_clock::now();
    double Sec = std::chrono::duration<double>(T1 - T0).count();
    if (Sec < Best)
      Best = Sec;
  }
  return Best;
}

} // namespace spa::bench

#endif // SPA_BENCH_BENCHUTIL_H
