//===--- ablation_unknown.cpp - Unknown-tracking vs Assumption 1 ----------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper (Section 4.2.1) weighs two treatments of possibly-corrupted
/// pointers: a special Unknown value ("useful for flagging potential
/// misuses of memory" but "may be overly pessimistic") versus the adopted
/// Assumption 1. This bench reports both per program: the Assumption-1
/// average set size against the Unknown mode's set size plus the number
/// of dereference sites flagged as possibly-corrupted.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/TablePrinter.h"

using namespace spa;
using namespace spa::bench;

int main() {
  std::printf("== Ablation: Unknown tracking vs Assumption 1 ==\n"
              "   (Common Initial Sequence instance)\n\n");

  TablePrinter Table({"program", "avg set (A1)", "avg set (Unknown)",
                      "flagged sites", "total sites"});

  for (const CorpusEntry &E : corpusManifest()) {
    auto P = compileEntry(E);

    AnalysisOptions A1;
    A1.Model = ModelKind::CommonInitialSeq;
    Analysis AA(P->Prog, A1);
    AA.run();
    DerefMetrics M1 = AA.derefMetrics();

    AnalysisOptions AU = A1;
    AU.Solver.TrackUnknown = true;
    Analysis AB(P->Prog, AU);
    AB.run();
    DerefMetrics MU = AB.derefMetrics();

    Table.addRow({E.Name, TablePrinter::fixed(M1.AvgSetSize),
                  TablePrinter::fixed(MU.AvgSetSize),
                  std::to_string(MU.UnknownSites),
                  std::to_string(MU.Sites)});
  }

  std::fputs(Table.render().c_str(), stdout);
  std::printf("\nReading: Unknown keeps the sets small and instead flags "
              "sites whose pointer\nmay have been moved or laundered -- the "
              "trade-off the paper describes: a\nmemory-misuse detector "
              "wants the flags; a client needing complete sets needs\n"
              "Assumption 1.\n");
  return 0;
}
