//===--- fig4_precision.cpp - Reproduce the paper's Figure 4 --------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4 of the paper: the average points-to-set size of a dereferenced
/// pointer, per program, for all four instances, over the 12 programs with
/// structure casting. As in the paper, when the Collapse-Always instance
/// reports a whole structure as a target, the fact is expanded to one
/// target per field so the numbers are comparable.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/TablePrinter.h"

using namespace spa;
using namespace spa::bench;

int main() {
  std::printf("== Figure 4: average points-to set size of a dereferenced "
              "pointer ==\n   (programs with structure casting; Collapse "
              "Always expanded to fields)\n\n");

  TablePrinter Table({"program", "Collapse Always", "Collapse on Cast",
                      "Common Init Seq", "Offsets", "CA/CIS ratio"});

  double WorstRatio = 0;
  std::string WorstProgram;
  for (const CorpusEntry &E : corpusManifest()) {
    if (!E.HasStructCasting)
      continue;
    auto P = compileEntry(E);
    double Avg[4];
    for (int I = 0; I < 4; ++I) {
      auto A = runModel(P->Prog, AllModels[I]);
      Avg[I] = A->derefMetrics().AvgSetSize;
    }
    double Ratio = Avg[2] > 0 ? Avg[0] / Avg[2] : 0;
    if (Ratio > WorstRatio) {
      WorstRatio = Ratio;
      WorstProgram = E.Name;
    }
    Table.addRow({E.Name, TablePrinter::fixed(Avg[0]),
                  TablePrinter::fixed(Avg[1]), TablePrinter::fixed(Avg[2]),
                  TablePrinter::fixed(Avg[3]),
                  TablePrinter::fixed(Ratio, 1) + "x"});
  }

  std::fputs(Table.render().c_str(), stdout);
  std::printf("\nShape check (paper): collapsing structures often at least "
              "doubles the sets\n(worst case ~10x for bc); the two portable "
              "field-sensitive instances stay\nclose to Offsets. Largest "
              "collapse penalty here: %s (%.1fx).\n",
              WorstProgram.c_str(), WorstRatio);
  return 0;
}
