//===--- ablation_stride.cpp - Wilson/Lam stride refinement ---------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the Wilson/Lam-style stride rule the paper discusses in its
/// related-work section: pointer arithmetic on a pointer into an array
/// cannot reach arbitrary fields of the enclosing structure, only other
/// elements (one representative element here). Compares the Common-
/// Initial-Sequence and Offsets instances with and without the rule.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/TablePrinter.h"

using namespace spa;
using namespace spa::bench;

int main() {
  std::printf("== Ablation: array-stride pointer arithmetic (Wilson/Lam) "
              "==\n   (avg deref set size; 'plain' is the paper's "
              "Assumption-1 rule)\n\n");

  TablePrinter Table({"program", "CIS plain", "CIS stride", "Off plain",
                      "Off stride", "improvement"});

  for (const CorpusEntry &E : corpusManifest()) {
    auto P = compileEntry(E);
    double Avg[2][2]; // [model][stride]
    ModelKind Kinds[2] = {ModelKind::CommonInitialSeq, ModelKind::Offsets};
    for (int M = 0; M < 2; ++M)
      for (int Stride = 0; Stride < 2; ++Stride) {
        AnalysisOptions Opts;
        Opts.Model = Kinds[M];
        Opts.Solver.StrideArith = Stride != 0;
        Analysis A(P->Prog, Opts);
        A.run();
        Avg[M][Stride] = A.derefMetrics().AvgSetSize;
      }
    double Improvement =
        Avg[0][0] > 0 ? 100.0 * (Avg[0][0] - Avg[0][1]) / Avg[0][0] : 0;
    Table.addRow({E.Name, TablePrinter::fixed(Avg[0][0]),
                  TablePrinter::fixed(Avg[0][1]),
                  TablePrinter::fixed(Avg[1][0]),
                  TablePrinter::fixed(Avg[1][1]),
                  TablePrinter::fixed(Improvement, 1) + "%"});
  }

  std::fputs(Table.render().c_str(), stdout);
  std::printf("\nReading: programs that walk arrays through moving pointers "
              "(string scans,\nword-packed records) tighten; programs whose "
              "arithmetic crosses real field\nboundaries are unaffected, as "
              "they must be.\n");
  return 0;
}
