//===--- fig3_programs.cpp - Reproduce the paper's Figure 3 ---------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 3 of the paper: per test program, the number of source lines and
/// normalized assignment statements, and -- for the Collapse-on-Cast and
/// Common-Initial-Sequence instances -- the percentage of lookup/resolve
/// calls that involved structures and, of those, the percentage whose
/// types did not match (casting involved, directly or transitively).
/// The non-casting group is printed first, exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/TablePrinter.h"

using namespace spa;
using namespace spa::bench;

static std::string pct(uint64_t Part, uint64_t Whole) {
  if (Whole == 0)
    return "0.0%";
  return TablePrinter::fixed(100.0 * double(Part) / double(Whole), 1) + "%";
}

int main() {
  std::printf("== Figure 3: test programs and lookup/resolve statistics ==\n"
              "   (CoC = Collapse on Cast, CIS = Common Initial Sequence;\n"
              "    'str' = %% of calls involving structures, 'mis' = %% of\n"
              "    those with a type mismatch)\n\n");

  TablePrinter Table({"program", "lines", "norm stmts",
                      "CoC lookup str", "CoC lookup mis", "CoC resolve str",
                      "CoC resolve mis", "CIS lookup str", "CIS lookup mis",
                      "CIS resolve str", "CIS resolve mis"});

  bool SeparatorDone = false;
  for (const CorpusEntry &E : corpusManifest()) {
    if (E.HasStructCasting && !SeparatorDone) {
      Table.addSeparator();
      SeparatorDone = true;
    }
    auto P = compileEntry(E);
    size_t NormStmts = P->Prog.Stmts.size() - P->Prog.countOps(NormOp::Call);

    std::vector<std::string> Row{E.Name, std::to_string(countLines(E)),
                                 std::to_string(NormStmts)};
    for (ModelKind Kind :
         {ModelKind::CollapseOnCast, ModelKind::CommonInitialSeq}) {
      auto A = runModel(P->Prog, Kind);
      const ModelStats &MS = A->model().stats();
      Row.push_back(pct(MS.LookupStruct, MS.LookupCalls));
      Row.push_back(pct(MS.LookupMismatch, MS.LookupStruct));
      Row.push_back(pct(MS.ResolveStruct, MS.ResolveCalls));
      Row.push_back(pct(MS.ResolveMismatch, MS.ResolveStruct));
    }
    Table.addRow(std::move(Row));
  }

  std::fputs(Table.render().c_str(), stdout);
  std::printf("\nShape check (paper): the upper group's mismatch columns "
              "are (near) zero;\nthe lower group shows substantial "
              "struct involvement and mismatches.\n");
  return 0;
}
