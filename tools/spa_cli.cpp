//===--- spa_cli.cpp - Command-line driver for the analysis ---------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-user entry point: analyze a C file with any instance of the
/// framework and inspect the results.
///
///   spa_cli file.c                          analyze, print summary metrics
///   spa_cli file.c --model=coc              pick the instance
///                  (ca | coc | cis | off)
///   spa_cli file.c --target=lp64            ABI for the Offsets instance
///                  (ilp32 | lp64 | padded32)
///   spa_cli file.c --print=p                points-to set of variable p
///   spa_cli file.c --edges                  full edge list (stable order)
///   spa_cli file.c --dot                    Graphviz DOT on stdout
///   spa_cli file.c --stmts                  dump normalized statements
///   spa_cli file.c --stride                 Wilson/Lam array-stride rule
///   spa_cli file.c --unknown                Unknown-tracking mode
///   spa_cli file.c --engine=scc             solver engine
///                  (naive | worklist | delta | scc | par)
///   spa_cli file.c --threads=4              worker threads for --engine=par
///                  (default: hardware concurrency)
///   spa_cli file.c --stats-json=out.json    run telemetry ("-" = stdout)
///   spa_cli file.c --check                  run every client checker
///   spa_cli file.c --check=LIST             run a comma-separated subset
///   spa_cli file.c --sarif=out.json         findings as SARIF 2.1.0
///                                           ("-" = stdout; implies --check)
///   spa_cli file.c --certify                re-derive and check every rule
///                                           obligation of the solution
///   spa_cli file.c --verify-ir              lint the normalized IR
///   spa_cli file.c --verify-cfg             lint the intraprocedural CFG
///   spa_cli file.c --flow=invalidate        statement-order invalidation
///                                           pass refining use-after-free
///   spa_cli file.c --flow=cfg               branch-sensitive dataflow over
///                                           the CFG with callee exit
///                                           summaries (strictly more
///                                           precise than invalidate)
///   spa_cli file.c --flow-audit             check the refinement only ever
///                                           suppresses baseline reports
///                                           (implies --flow=invalidate)
///
/// Exit codes:
///   0   success, no findings
///   1   compile or I/O error
///   2   checkers reported at least one finding
///   3   solver did not converge within its iteration budget (results are
///       incomplete; takes precedence over 2 and 4)
///   4   --certify or --verify-ir failed (the solution is not a valid
///       certificate, or the IR is ill-formed; takes precedence over 2)
///   64  usage error (unknown option, bad value, missing input)
///
//===----------------------------------------------------------------------===//

#include "cfg/CfgVerifier.h"
#include "check/Checkers.h"
#include "check/Sarif.h"
#include "flow/FlowPass.h"
#include "pta/Frontend.h"
#include "pta/GraphExport.h"
#include "pta/Telemetry.h"
#include "verify/Certifier.h"
#include "verify/IrVerifier.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace spa;

namespace {

/// Exit code for command-line misuse (sysexits.h EX_USAGE).
constexpr int ExitUsage = 64;

/// Exit code for a failed --certify / --verify-ir pass.
constexpr int ExitVerifyFailed = 4;

/// Solver engine selected on the command line.
enum class EngineKind { Naive, Worklist, Delta, Scc, Par };

struct CliOptions {
  std::string File;
  ModelKind Model = ModelKind::CommonInitialSeq;
  TargetInfo Target = TargetInfo::ilp32();
  std::vector<std::string> PrintVars;
  std::string StatsJson;
  std::string Sarif;
  std::vector<std::string> Checkers; ///< empty with Check set = all
  bool Check = false;
  bool Certify = false;
  bool VerifyIr = false;
  bool VerifyCfg = false;
  bool Flow = false;      ///< --flow=invalidate or --flow=cfg
  FlowMode FlowKind = FlowMode::Invalidate;
  bool FlowAudit = false; ///< --flow-audit (implies Flow)
  bool Edges = false;
  bool Dot = false;
  bool Stmts = false;
  bool Stride = false;
  bool Unknown = false;
  /// Set iff --engine= was given; wins over the deprecated aliases.
  bool EngineSet = false;
  EngineKind Engine = EngineKind::Naive;
  PtsRepr PointsTo = PtsRepr::Sorted;
  PreprocessKind Preprocess = PreprocessKind::None;
  bool Worklist = false; ///< deprecated --worklist alias
  bool NoDelta = false;  ///< deprecated --no-delta alias
  bool ShowHelp = false;
  unsigned MaxIterations = 0; // 0 = keep the SolverOptions default
  unsigned Threads = 0;       // 0 = hardware concurrency (par engine only)

  /// The engine that actually runs: --engine= if given, else whatever the
  /// deprecated flags historically selected.
  EngineKind effectiveEngine() const {
    if (EngineSet)
      return Engine;
    if (!Worklist)
      return EngineKind::Naive;
    return NoDelta ? EngineKind::Worklist : EngineKind::Delta;
  }
};

const char *engineName(EngineKind E) {
  switch (E) {
  case EngineKind::Naive:
    return "naive rounds";
  case EngineKind::Worklist:
    return "worklist";
  case EngineKind::Delta:
    return "worklist (delta propagation)";
  case EngineKind::Scc:
    return "worklist (delta + cycle elimination)";
  case EngineKind::Par:
    return "worklist (delta + cycle elimination, parallel)";
  }
  return "?";
}

/// Classic dynamic-programming edit distance, for option suggestions.
size_t editDistance(std::string_view A, std::string_view B) {
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Diag = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Next = std::min({Row[J] + 1, Row[J - 1] + 1,
                              Diag + (A[I - 1] == B[J - 1] ? 0 : 1)});
      Diag = Row[J];
      Row[J] = Next;
    }
  }
  return Row[B.size()];
}

/// Valid values of the enumerated options (null-terminated).
const char *const ModelValues[] = {"ca", "coc", "cis", "off", nullptr};
const char *const TargetValues[] = {"ilp32", "lp64", "padded32", nullptr};
const char *const EngineValues[] = {"naive", "worklist", "delta", "scc",
                                    "par", nullptr};
const char *const PtsValues[] = {"sorted", "small", "bitmap", "offsets",
                                 nullptr};
const char *const PreprocessValues[] = {"none", "hvn", nullptr};
const char *const FlowValues[] = {"none", "invalidate", "cfg", nullptr};

/// The one table every suggestion comes from: each option's spelling plus
/// (for enumerated options) its value list, so both a mistyped flag and a
/// mistyped value get a did-you-mean from the same source of truth.
struct OptionSpec {
  const char *Name;          ///< "--engine"
  const char *const *Values; ///< valid values, or null for free-form/none
};

const OptionSpec KnownOptions[] = {
    {"--help", nullptr},         {"--model", ModelValues},
    {"--target", TargetValues},  {"--print", nullptr},
    {"--edges", nullptr},        {"--dot", nullptr},
    {"--stmts", nullptr},        {"--stride", nullptr},
    {"--unknown", nullptr},      {"--engine", EngineValues},
    {"--pts", PtsValues},        {"--worklist", nullptr},
    {"--preprocess", PreprocessValues},
    {"--no-delta", nullptr},     {"--threads", nullptr},
    {"--max-iterations", nullptr}, {"--stats-json", nullptr},
    {"--check", nullptr},        {"--sarif", nullptr},
    {"--certify", nullptr},      {"--verify-ir", nullptr},
    {"--verify-cfg", nullptr},
    {"--flow", FlowValues},      {"--flow-audit", nullptr},
};

/// Closest candidate to \p Given within plausible-typo distance; null if
/// nothing is close enough.
const char *closestMatch(std::string_view Given,
                         const char *const *Candidates) {
  const char *Best = nullptr;
  size_t BestDist = 4; // anything further away is not a plausible typo
  for (; *Candidates; ++Candidates) {
    size_t D = editDistance(Given, *Candidates);
    if (D < BestDist) {
      BestDist = D;
      Best = *Candidates;
    }
  }
  return Best;
}

/// Best-matching known option for a mistyped one; null if nothing close.
const char *suggestOption(const std::string &Arg) {
  std::string Stem = Arg.substr(0, Arg.find('='));
  const char *Best = nullptr;
  size_t BestDist = 4;
  for (const OptionSpec &Spec : KnownOptions) {
    size_t D = editDistance(Stem, Spec.Name);
    if (D < BestDist) {
      BestDist = D;
      Best = Spec.Name;
    }
  }
  return Best;
}

/// Best-matching valid value of \p Option for mistyped \p Given; null if
/// the option is not enumerated or nothing is close.
const char *suggestValue(std::string_view Option, const std::string &Given) {
  for (const OptionSpec &Spec : KnownOptions)
    if (Option == Spec.Name && Spec.Values)
      return closestMatch(Given, Spec.Values);
  return nullptr;
}

/// Prints "unknown <what> '<given>' (a|b|c)" plus a did-you-mean when a
/// value of \p Option is close, all on stderr.
void badValue(const char *Option, const char *What,
              const std::string &Given) {
  std::fprintf(stderr, "unknown %s '%s' (", What, Given.c_str());
  for (const OptionSpec &Spec : KnownOptions) {
    if (std::string_view(Option) != Spec.Name || !Spec.Values)
      continue;
    for (const char *const *V = Spec.Values; *V; ++V)
      std::fprintf(stderr, "%s%s", V == Spec.Values ? "" : "|", *V);
  }
  std::fprintf(stderr, ")");
  if (const char *Hint = suggestValue(Option, Given))
    std::fprintf(stderr, "; did you mean '%s'?", Hint);
  std::fprintf(stderr, "\n");
}

bool parseArgs(int argc, char **argv, CliOptions &Opts) {
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h") {
      Opts.ShowHelp = true;
    } else if (Arg.rfind("--model=", 0) == 0) {
      std::string M = Arg.substr(8);
      if (M == "ca")
        Opts.Model = ModelKind::CollapseAlways;
      else if (M == "coc")
        Opts.Model = ModelKind::CollapseOnCast;
      else if (M == "cis")
        Opts.Model = ModelKind::CommonInitialSeq;
      else if (M == "off")
        Opts.Model = ModelKind::Offsets;
      else {
        badValue("--model", "model", M);
        return false;
      }
    } else if (Arg.rfind("--target=", 0) == 0) {
      std::string T = Arg.substr(9);
      if (T == "ilp32")
        Opts.Target = TargetInfo::ilp32();
      else if (T == "lp64")
        Opts.Target = TargetInfo::lp64();
      else if (T == "padded32")
        Opts.Target = TargetInfo::padded32();
      else {
        badValue("--target", "target", T);
        return false;
      }
    } else if (Arg.rfind("--print=", 0) == 0) {
      Opts.PrintVars.push_back(Arg.substr(8));
    } else if (Arg.rfind("--stats-json=", 0) == 0) {
      Opts.StatsJson = Arg.substr(13);
      if (Opts.StatsJson.empty()) {
        std::fprintf(stderr, "--stats-json needs a file name (or -)\n");
        return false;
      }
    } else if (Arg == "--edges") {
      Opts.Edges = true;
    } else if (Arg == "--dot") {
      Opts.Dot = true;
    } else if (Arg == "--stmts") {
      Opts.Stmts = true;
    } else if (Arg == "--stride") {
      Opts.Stride = true;
    } else if (Arg == "--unknown") {
      Opts.Unknown = true;
    } else if (Arg.rfind("--engine=", 0) == 0) {
      std::string E = Arg.substr(9);
      if (E == "naive")
        Opts.Engine = EngineKind::Naive;
      else if (E == "worklist")
        Opts.Engine = EngineKind::Worklist;
      else if (E == "delta")
        Opts.Engine = EngineKind::Delta;
      else if (E == "scc")
        Opts.Engine = EngineKind::Scc;
      else if (E == "par")
        Opts.Engine = EngineKind::Par;
      else {
        badValue("--engine", "engine", E);
        return false;
      }
      Opts.EngineSet = true;
    } else if (Arg.rfind("--pts=", 0) == 0) {
      std::string R = Arg.substr(6);
      if (R == "sorted")
        Opts.PointsTo = PtsRepr::Sorted;
      else if (R == "small")
        Opts.PointsTo = PtsRepr::Small;
      else if (R == "bitmap")
        Opts.PointsTo = PtsRepr::Bitmap;
      else if (R == "offsets")
        Opts.PointsTo = PtsRepr::Offsets;
      else {
        badValue("--pts", "points-to representation", R);
        return false;
      }
    } else if (Arg.rfind("--preprocess=", 0) == 0) {
      std::string P = Arg.substr(13);
      if (P == "none")
        Opts.Preprocess = PreprocessKind::None;
      else if (P == "hvn")
        Opts.Preprocess = PreprocessKind::Hvn;
      else {
        badValue("--preprocess", "preprocessing pass", P);
        return false;
      }
    } else if (Arg == "--worklist") {
      std::fprintf(stderr, "warning: --worklist is deprecated; use "
                           "--engine=delta\n");
      Opts.Worklist = true;
    } else if (Arg == "--no-delta") {
      std::fprintf(stderr, "warning: --no-delta is deprecated; use "
                           "--engine=worklist\n");
      Opts.NoDelta = true;
    } else if (Arg.rfind("--threads=", 0) == 0) {
      Opts.Threads =
          static_cast<unsigned>(std::strtoul(Arg.c_str() + 10, nullptr, 10));
      if (Opts.Threads == 0) {
        std::fprintf(stderr, "--threads needs a positive count\n");
        return false;
      }
    } else if (Arg.rfind("--max-iterations=", 0) == 0) {
      Opts.MaxIterations =
          static_cast<unsigned>(std::strtoul(Arg.c_str() + 17, nullptr, 10));
      if (Opts.MaxIterations == 0) {
        std::fprintf(stderr, "--max-iterations needs a positive count\n");
        return false;
      }
    } else if (Arg == "--certify") {
      Opts.Certify = true;
    } else if (Arg == "--verify-ir") {
      Opts.VerifyIr = true;
    } else if (Arg == "--verify-cfg") {
      Opts.VerifyCfg = true;
    } else if (Arg.rfind("--flow=", 0) == 0) {
      std::string F = Arg.substr(7);
      if (F == "none") {
        Opts.Flow = false;
      } else if (F == "invalidate") {
        Opts.Flow = true;
        Opts.FlowKind = FlowMode::Invalidate;
      } else if (F == "cfg") {
        Opts.Flow = true;
        Opts.FlowKind = FlowMode::Cfg;
      } else {
        badValue("--flow", "flow pass", F);
        return false;
      }
    } else if (Arg == "--flow-audit") {
      Opts.FlowAudit = true;
      Opts.Flow = true;
    } else if (Arg == "--check") {
      Opts.Check = true;
    } else if (Arg.rfind("--check=", 0) == 0) {
      Opts.Check = true;
      std::string List = Arg.substr(8);
      if (List.empty()) {
        std::fprintf(stderr, "--check= needs a comma-separated checker list\n");
        return false;
      }
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        std::string Id = List.substr(Pos, Comma - Pos);
        if (!Id.empty())
          Opts.Checkers.push_back(std::move(Id));
        Pos = Comma + 1;
      }
      for (const std::string &Id : Opts.Checkers)
        if (!CheckerRegistry::descriptionOf(Id)) {
          std::fprintf(stderr, "unknown checker '%s'; available:",
                       Id.c_str());
          for (const std::string &Known : CheckerRegistry::allIds())
            std::fprintf(stderr, " %s", Known.c_str());
          std::fprintf(stderr, "\n");
          return false;
        }
    } else if (Arg.rfind("--sarif=", 0) == 0) {
      Opts.Sarif = Arg.substr(8);
      if (Opts.Sarif.empty()) {
        std::fprintf(stderr, "--sarif needs a file name (or -)\n");
        return false;
      }
      Opts.Check = true; // SARIF output is of checker findings
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'", Arg.c_str());
      if (const char *Hint = suggestOption(Arg))
        std::fprintf(stderr, "; did you mean '%s'?", Hint);
      std::fprintf(stderr, " (try --help)\n");
      return false;
    } else if (Arg.find('=') != std::string::npos) {
      std::fprintf(stderr,
                   "'%s' is not an input file (missing leading '--'?)\n",
                   Arg.c_str());
      return false;
    } else if (Opts.File.empty()) {
      Opts.File = Arg;
    } else {
      std::fprintf(stderr, "multiple input files\n");
      return false;
    }
  }
  if (Opts.StatsJson == "-" && Opts.Sarif == "-") {
    std::fprintf(stderr,
                 "--stats-json=- and --sarif=- both claim stdout; write one "
                 "of them to a file\n");
    return false;
  }
  return true;
}

void usage(const char *Prog) {
  std::printf(
      "usage: %s <file.c> [options]\n"
      "  --model=ca|coc|cis|off   analysis instance (default cis)\n"
      "  --target=ilp32|lp64|padded32   ABI for the Offsets instance\n"
      "  --print=VAR              print VAR's points-to set (repeatable)\n"
      "  --edges                  print every points-to edge\n"
      "  --dot                    print the graph as Graphviz DOT\n"
      "  --stmts                  dump the normalized statements\n"
      "  --stride                 enable the array-stride refinement\n"
      "  --unknown                track corrupted pointers as Unknown\n"
      "  --engine=E               solver engine: naive (default), worklist,\n"
      "                           delta, scc, par (all compute the same\n"
      "                           fixpoint; par is scc on a thread pool with\n"
      "                           bit-identical results at any thread count)\n"
      "  --threads=N              worker threads for --engine=par (default:\n"
      "                           hardware concurrency; 1 = sequential)\n"
      "  --pts=R                  points-to set storage: sorted (default),\n"
      "                           small, bitmap, offsets (same fixpoint;\n"
      "                           time/memory trade-off, see docs/INTERNALS.md)\n"
      "  --preprocess=P           offline preprocessing: none (default) or\n"
      "                           hvn (merge provably-equal nodes before the\n"
      "                           solve; same fixpoint, smaller graph)\n"
      "  --worklist               deprecated alias for --engine=delta\n"
      "  --no-delta               deprecated: with --worklist, --engine=worklist\n"
      "  --max-iterations=N       solver iteration budget (exit 3 if exceeded)\n"
      "  --stats-json=FILE        write run telemetry JSON (- for stdout;\n"
      "                           - suppresses all other stdout output)\n"
      "  --check                  run every client checker, print findings\n"
      "  --check=LIST             run a comma-separated checker subset\n"
      "  --sarif=FILE             write findings as SARIF 2.1.0 (- for\n"
      "                           stdout); implies --check\n"
      "  --certify                re-derive every inference-rule obligation\n"
      "                           from the solution and check it (exit 4 on\n"
      "                           failure); skipped on unconverged runs\n"
      "  --verify-ir              check the normalized IR is well-formed\n"
      "                           (exit 4 on failure)\n"
      "  --verify-cfg             check the intraprocedural CFG is\n"
      "                           well-formed (exit 4 on failure)\n"
      "  --flow=none|invalidate|cfg\n"
      "                           invalidation pass after the solve: the\n"
      "                           use-after-free checker only reports objects\n"
      "                           that may already be freed when control\n"
      "                           reaches the site. invalidate walks each\n"
      "                           function's statements in order; cfg runs a\n"
      "                           branch-sensitive dataflow over the CFG with\n"
      "                           callee exit summaries\n"
      "  --flow-audit             re-check that the refinement only ever\n"
      "                           suppresses baseline reports and the CFG is\n"
      "                           well-formed (exit 4 on violation); implies\n"
      "                           --flow=invalidate\n"
      "checkers:",
      Prog);
  for (const std::string &Id : CheckerRegistry::allIds())
    std::printf(" %s", Id.c_str());
  std::printf("\n"
              "exit codes: 0 no findings, 1 compile/IO error, 2 findings,\n"
              "            3 non-convergence, 4 certification/IR-verification"
              " failure,\n"
              "            64 usage error\n");
}

} // namespace

int main(int argc, char **argv) {
  CliOptions Opts;
  if (!parseArgs(argc, argv, Opts))
    return ExitUsage;
  if (Opts.ShowHelp || Opts.File.empty()) {
    usage(argv[0]);
    return Opts.ShowHelp ? 0 : ExitUsage;
  }

  DiagnosticEngine Diags;
  auto Program = CompiledProgram::fromFile(Opts.File, Diags, Opts.Target);
  if (!Program) {
    std::fprintf(stderr, "%s", Diags.formatAll().c_str());
    return 1;
  }
  for (const Diagnostic &D : Diags.all())
    if (D.Kind == DiagKind::Warning)
      std::fprintf(stderr, "%s: %s\n", toString(D.Loc).c_str(),
                   D.Message.c_str());
  size_t WarningsPrinted = Diags.all().size();

  if (Opts.Stmts) {
    for (const NormStmt &S : Program->Prog.Stmts)
      std::printf("%4u: %s\n", S.Loc.Line,
                  Program->Prog.stmtToString(S).c_str());
    return 0;
  }

  AnalysisOptions AOpts;
  AOpts.Model = Opts.Model;
  AOpts.Target = Opts.Target;
  AOpts.Solver.StrideArith = Opts.Stride;
  AOpts.Solver.TrackUnknown = Opts.Unknown;
  EngineKind Engine = Opts.effectiveEngine();
  AOpts.Solver.UseWorklist = Engine != EngineKind::Naive;
  AOpts.Solver.DeltaPropagation = Engine != EngineKind::Worklist;
  AOpts.Solver.CycleElimination =
      Engine == EngineKind::Scc || Engine == EngineKind::Par;
  AOpts.Solver.ParallelSolve = Engine == EngineKind::Par;
  AOpts.Solver.Threads = Opts.Threads;
  AOpts.Solver.PointsTo = Opts.PointsTo;
  AOpts.Solver.Preprocess = Opts.Preprocess;
  AOpts.Solver.Diags = &Diags;
  if (Opts.MaxIterations)
    AOpts.Solver.MaxIterations = Opts.MaxIterations;
  Analysis A(Program->Prog, AOpts);
  A.run();

  // Solver-emitted warnings (e.g. non-convergence).
  for (size_t I = WarningsPrinted; I < Diags.all().size(); ++I) {
    const Diagnostic &D = Diags.all()[I];
    if (D.Kind == DiagKind::Warning)
      std::fprintf(stderr, "warning: %s\n", D.Message.c_str());
  }
  const SolverRunStats &RS = A.solver().runStats();
  int ExitCode = RS.Converged ? 0 : 3;

  // Verification passes (src/verify/). The IR lint needs no solution;
  // certification re-derives every rule obligation from the fixpoint, so
  // it is skipped (with a warning) when the solver did not converge — an
  // unconverged solution is missing facts by definition. A failed pass
  // exits 4: outranked by non-convergence (3), outranking findings (2).
  VerifyTelemetry VT;
  bool VerifyFailed = false;
  if (Opts.VerifyIr) {
    IrVerifyResult IR =
        verifyNormIR(Program->Prog, A.layout(), A.solver().summaries());
    VT.IrVerifyRan = true;
    VT.IrChecks = IR.ChecksRun;
    VT.IrViolations = IR.Violations;
    if (!IR.ok()) {
      VerifyFailed = true;
      for (const std::string &Msg : IR.Messages)
        std::fprintf(stderr, "verify-ir: %s\n", Msg.c_str());
      std::fprintf(stderr, "verify-ir: %llu of %llu checks failed\n",
                   (unsigned long long)IR.Violations,
                   (unsigned long long)IR.ChecksRun);
    }
  }
  if (Opts.VerifyCfg) {
    NormProgram &Prog = Program->Prog;
    std::vector<char> Defined(Prog.Funcs.size(), 0);
    for (size_t F = 0; F < Prog.Funcs.size(); ++F)
      Defined[F] = Prog.Funcs[F].IsDefined ? 1 : 0;
    CfgVerifyResult CG = verifyCfg(Prog.Cfg, Prog.stmtOrder().ByFunc,
                                   Defined, Prog.Stmts.size());
    VT.CfgVerifyRan = true;
    VT.CfgChecks = CG.ChecksRun;
    VT.CfgViolations = CG.Violations;
    if (!CG.ok()) {
      VerifyFailed = true;
      for (const std::string &Msg : CG.Messages)
        std::fprintf(stderr, "verify-cfg: %s\n", Msg.c_str());
      std::fprintf(stderr, "verify-cfg: %llu of %llu checks failed\n",
                   (unsigned long long)CG.Violations,
                   (unsigned long long)CG.ChecksRun);
    }
  }
  if (Opts.Certify) {
    if (!RS.Converged) {
      std::fprintf(
          stderr,
          "warning: --certify skipped: the solver did not converge\n");
    } else {
      CertifyResult CR = certifySolution(A.solver());
      VT.CertifyRan = true;
      VT.Obligations = CR.Obligations;
      VT.Violations = CR.Violations;
      VT.FactsTotal = CR.FactsTotal;
      VT.FactsUnjustified = CR.FactsUnjustified;
      VT.FreedUnjustified = CR.FreedUnjustified;
      VT.CertifySeconds = CR.Seconds;
      if (!CR.ok()) {
        VerifyFailed = true;
        for (const std::string &Msg : CR.Messages)
          std::fprintf(stderr, "certify: %s\n", Msg.c_str());
        std::fprintf(stderr,
                     "certify: FAILED (%llu violations, %llu unjustified "
                     "facts, %llu unjustified freed marks)\n",
                     (unsigned long long)CR.Violations,
                     (unsigned long long)CR.FactsUnjustified,
                     (unsigned long long)CR.FreedUnjustified);
      }
    }
  }
  // The invalidation-aware flow pass (src/flow/) refines the use-after-free
  // verdicts in place, so it must run before the checkers. Like --certify
  // it needs a converged fixpoint; a failed audit exits 4.
  FlowTelemetry FT;
  uint64_t AuditSitesChecked = 0;
  if (Opts.Flow || Opts.FlowAudit) {
    if (!RS.Converged) {
      std::fprintf(stderr,
                   "warning: --flow skipped: the solver did not converge\n");
    } else {
      FlowResult FR = runFlowPass(A.solver(), Opts.FlowKind);
      FT.FlowRan = true;
      FT.ObjectsInvalidated = FR.ObjectsInvalidated;
      FT.SitesRefined = FR.SitesRefined;
      FT.ReportsSuppressed = FR.ReportsSuppressed;
      FT.FlowSeconds = FR.Seconds;
      if (Opts.FlowKind == FlowMode::Cfg) {
        FT.CfgMode = true;
        FT.CfgBlocks = FR.CfgBlocks;
        FT.CfgEdges = FR.CfgEdges;
        FT.JoinMerges = FR.JoinMerges;
        FT.ExitSummaries = FR.ExitSummaries;
      }
      if (Opts.FlowAudit) {
        FlowAuditResult AR = auditFlowRefinement(A.solver());
        FT.AuditRan = true;
        FT.AuditViolations = AR.Violations;
        AuditSitesChecked = AR.SitesChecked;
        if (!AR.ok()) {
          VerifyFailed = true;
          for (const std::string &Msg : AR.Messages)
            std::fprintf(stderr, "flow-audit: %s\n", Msg.c_str());
          std::fprintf(stderr,
                       "flow-audit: FAILED (%llu violations over %llu "
                       "refined sites)\n",
                       (unsigned long long)AR.Violations,
                       (unsigned long long)AR.SitesChecked);
        }
      }
    }
  }
  if (VerifyFailed && ExitCode == 0)
    ExitCode = ExitVerifyFailed;

  // Checkers run on the finished fixpoint into their own engine so
  // front-end warnings never leak into the SARIF log. Non-convergence
  // (exit 3) outranks findings (exit 2): an unconverged graph may be
  // missing facts, so its findings are not trustworthy either way.
  DiagnosticEngine CheckDiags;
  CheckReport Report;
  if (Opts.Check) {
    Report = runCheckers(A, Opts.Checkers, CheckDiags);
    if (Report.Findings && ExitCode == 0)
      ExitCode = 2;
  }
  if (!Opts.Sarif.empty() && Opts.Sarif != "-") {
    std::string Doc = findingsToSarif(CheckDiags, Opts.File);
    FILE *F = std::fopen(Opts.Sarif.c_str(), "w");
    if (!F || std::fwrite(Doc.data(), 1, Doc.size(), F) != Doc.size()) {
      if (F)
        std::fclose(F);
      std::fprintf(stderr, "cannot write '%s'\n", Opts.Sarif.c_str());
      return 1;
    }
    std::fclose(F);
  }

  if (!Opts.StatsJson.empty()) {
    RunTelemetry T = collectTelemetry(A, Opts.File);
    T.Verify = VT;
    T.Flow = FT;
    if (!writeTelemetryJson(T, Opts.StatsJson)) {
      std::fprintf(stderr, "cannot write '%s'\n", Opts.StatsJson.c_str());
      return 1;
    }
    // "-" promises machine-readable stdout: emit nothing else there.
    if (Opts.StatsJson == "-")
      return ExitCode;
  }
  if (Opts.Sarif == "-") {
    std::fputs(findingsToSarif(CheckDiags, Opts.File).c_str(), stdout);
    return ExitCode;
  }
  if (Opts.Check) {
    std::fputs(CheckDiags.formatAll().c_str(), stdout);
    std::printf("%u finding(s)\n", Report.Findings);
    return ExitCode;
  }

  if (Opts.Dot) {
    std::fputs(exportDot(A.solver()).c_str(), stdout);
    return ExitCode;
  }
  if (Opts.Edges) {
    std::fputs(exportEdgeList(A.solver()).c_str(), stdout);
    return ExitCode;
  }
  for (const std::string &Var : Opts.PrintVars) {
    std::printf("%s -> {", Var.c_str());
    bool First = true;
    for (const std::string &T : pointsToSetOf(A.solver(), Var)) {
      std::printf("%s%s", First ? "" : ", ", T.c_str());
      First = false;
    }
    std::printf("}\n");
  }
  if (!Opts.PrintVars.empty())
    return ExitCode;

  DerefMetrics M = A.derefMetrics();
  const ModelStats &MS = A.model().stats();
  std::printf("model:               %s\n", modelKindName(Opts.Model));
  std::printf("target ABI:          %s\n", Opts.Target.Name.c_str());
  std::printf("statements:          %zu\n", Program->Prog.Stmts.size());
  std::printf("objects:             %zu\n", Program->Prog.Objects.size());
  std::printf("nodes:               %zu\n", RS.Nodes);
  std::printf("points-to edges:     %llu\n", (unsigned long long)RS.Edges);
  std::printf("solver engine:       %s\n", engineName(Engine));
  std::printf("pts representation:  %s\n", ptsReprName(Opts.PointsTo));
  if (Engine != EngineKind::Naive) {
    std::printf("worklist pops:       %llu (high water %zu)\n",
                (unsigned long long)RS.Pops, RS.WorklistHighWater);
    std::printf("propagations:        %llu full, %llu delta\n",
                (unsigned long long)RS.FullPropagations,
                (unsigned long long)RS.DeltaPropagations);
    std::printf("state high water:    %zu bytes\n", RS.BytesHighWater);
  } else {
    std::printf("solver rounds:       %u\n", RS.Rounds);
  }
  if (Opts.Preprocess == PreprocessKind::Hvn)
    std::printf("offline hvn:         %llu nodes merged, %.3f ms\n",
                (unsigned long long)RS.NodesMergedOffline,
                RS.OfflineSeconds * 1e3);
  if (Engine == EngineKind::Scc || Engine == EngineKind::Par)
    std::printf("cycle elimination:   %llu sweeps, %llu sccs collapsed, "
                "%llu nodes merged, %llu copy edges\n",
                (unsigned long long)RS.SccSweeps,
                (unsigned long long)RS.SccsCollapsed,
                (unsigned long long)RS.NodesMergedOnline,
                (unsigned long long)RS.CopyEdges);
  if (Engine == EngineKind::Par)
    std::printf("parallel solve:      %u threads, %u levels, %llu barrier "
                "merges, %llu gathered, %llu deferred, %.1f%% imbalance\n",
                RS.ThreadsUsed, RS.Levels,
                (unsigned long long)RS.BarrierMerges,
                (unsigned long long)RS.ParGathered,
                (unsigned long long)RS.ParDeferred, RS.ParImbalancePct);
  std::printf("converged:           %s\n", RS.Converged ? "yes" : "NO");
  std::printf("solve time:          %.3f ms\n", RS.SolveSeconds * 1e3);
  if (VT.CertifyRan)
    std::printf("certified:           %s (%llu obligations, %llu facts, "
                "%.3f ms)\n",
                VT.Violations == 0 && VT.FactsUnjustified == 0 &&
                        VT.FreedUnjustified == 0
                    ? "yes"
                    : "NO",
                (unsigned long long)VT.Obligations,
                (unsigned long long)VT.FactsTotal, VT.CertifySeconds * 1e3);
  if (VT.IrVerifyRan)
    std::printf("ir well-formed:      %s (%llu checks)\n",
                VT.IrViolations == 0 ? "yes" : "NO",
                (unsigned long long)VT.IrChecks);
  if (VT.CfgVerifyRan)
    std::printf("cfg well-formed:     %s (%llu checks)\n",
                VT.CfgViolations == 0 ? "yes" : "NO",
                (unsigned long long)VT.CfgChecks);
  if (FT.FlowRan)
    std::printf("flow refinement:     %llu objects invalidated, %llu sites "
                "refined, %llu reports suppressed, %.3f ms\n",
                (unsigned long long)FT.ObjectsInvalidated,
                (unsigned long long)FT.SitesRefined,
                (unsigned long long)FT.ReportsSuppressed,
                FT.FlowSeconds * 1e3);
  if (FT.CfgMode)
    std::printf("flow cfg:            %llu blocks, %llu edges, %llu join "
                "merges, %llu exit summaries\n",
                (unsigned long long)FT.CfgBlocks,
                (unsigned long long)FT.CfgEdges,
                (unsigned long long)FT.JoinMerges,
                (unsigned long long)FT.ExitSummaries);
  if (FT.AuditRan)
    std::printf("flow audit:          %s (%llu refined sites checked)\n",
                FT.AuditViolations == 0 ? "ok" : "FAILED",
                (unsigned long long)AuditSitesChecked);
  std::printf("deref sites:         %zu\n", M.Sites);
  std::printf("avg deref set size:  %.2f\n", M.AvgSetSize);
  std::printf("max deref set size:  %llu\n",
              (unsigned long long)M.MaxSetSize);
  if (Opts.Unknown)
    std::printf("unknown-tainted:     %zu sites\n", M.UnknownSites);
  std::printf("lookup calls:        %llu (%llu struct, %llu mismatched)\n",
              (unsigned long long)MS.LookupCalls,
              (unsigned long long)MS.LookupStruct,
              (unsigned long long)MS.LookupMismatch);
  std::printf("resolve calls:       %llu (%llu struct, %llu mismatched)\n",
              (unsigned long long)MS.ResolveCalls,
              (unsigned long long)MS.ResolveStruct,
              (unsigned long long)MS.ResolveMismatch);
  const auto &Unknown = A.solver().summaries().unknownCallees();
  if (!Unknown.empty()) {
    std::printf("externals without summaries:");
    for (const std::string &Name : Unknown)
      std::printf(" %s", Name.c_str());
    std::printf("\n");
  }
  return ExitCode;
}
