#!/usr/bin/env sh
# CI entry point: tier-1 build + tests, lint, then the sanitizer preset.
#
#   tools/ci.sh            # everything
#   SKIP_ASAN=1 tools/ci.sh  # skip the asan-ubsan preset (fast local loop)
#   SKIP_TSAN=1 tools/ci.sh  # skip the tsan preset + parallel-engine smoke
#
# Exits nonzero on the first failure.

set -eu

cd "$(dirname "$0")/.."

jobs_n="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: configure + build =="
cmake -B build -S .
cmake --build build -j "$jobs_n"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$jobs_n"

echo "== lint (no-op if clang-tidy is absent) =="
cmake --build build --target lint

echo "== bench smoke: four engines, one fixpoint =="
# Smallest size class of both bench workloads, all four solver engines;
# fails on non-convergence or any edge-count disagreement. Also gates the
# compressed points-to representations and --preprocess=hvn (merges on
# the cycle-heavy shape, identical certified solution, no slowdown).
./build/bench/scaling --smoke

# Runs one spa_cli certify sweep, its argument combinations fed one per
# line on stdin, $jobs_n at a time. xargs exit 255 stops the batch on the
# first failure.
certify_sweep() {
  xargs -P "$jobs_n" -I{} sh -c '
    ./build/tools/spa_cli {} >/dev/null || {
      echo "certify failed: {}" >&2
      exit 255
    }'
}

echo "== certify: corpus x engines x models (plus --preprocess=hvn) =="
# Every engine's fixpoint on every corpus program must certify (closed
# under the inference rules, every fact justified) under every model, and
# the IR must lint clean. The offline-preprocessed twin of every cell
# must reach the same certified fixpoint — the hvn validator gate. Exit 4
# from any run fails CI here.
for f in corpus/*.c; do
  for engine in naive worklist delta scc par; do
    for model in ca coc cis off; do
      for pre in none hvn; do
        echo "$f --certify --verify-ir --engine=$engine --model=$model --preprocess=$pre"
      done
    done
  done
done | certify_sweep

echo "== certify: corpus x engines x compressed pts representations =="
# The compressed points-to set representations must reach the same
# certified fixpoint as the sorted baseline (covered by the sweep above)
# on every corpus program and engine. The distinct-offsets model gives
# field nodes their own per-object ordinals — the shape that exercises
# every representation's encoding hardest.
for f in corpus/*.c; do
  for engine in naive worklist delta scc par; do
    for repr in small bitmap offsets; do
      echo "$f --certify --engine=$engine --model=off --pts=$repr"
    done
  done
done | certify_sweep

echo "== par determinism: corpus x thread counts, byte-equal to scc =="
# The parallel engine's defining property: the exported fixpoint is
# bit-identical to the sequential scc engine at every thread count
# (including a count above the machine's core count). diff compares the
# full stable-order edge list byte for byte.
par_edges_dir="$(mktemp -d)"
trap 'rm -rf "$par_edges_dir"' EXIT
for f in corpus/*.c; do
  base="$par_edges_dir/$(basename "$f" .c).scc"
  ./build/tools/spa_cli "$f" --engine=scc --edges > "$base"
  for threads in 1 2 4 7; do
    ./build/tools/spa_cli "$f" --engine=par --threads="$threads" --edges \
      > "$par_edges_dir/par.out"
    diff -q "$base" "$par_edges_dir/par.out" >/dev/null || {
      echo "par fixpoint differs from scc: $f --threads=$threads" >&2
      exit 1
    }
  done
done

echo "== flow: golden corpus x engines x models, audited and certified =="
# The invalidation-aware flow pass must refine without inventing: on every
# flow-corpus program, every engine, and every model, the refined run must
# still certify and --flow-audit must prove each refined verdict is a
# subset of the flow-insensitive freed mark (exit 4 on any violation).
# Findings are expected on some programs, so exit 2 is accepted.
flow_sweep() {
  xargs -P "$jobs_n" -I{} sh -c '
    ./build/tools/spa_cli {} >/dev/null
    rc=$?
    if [ "$rc" != 0 ] && [ "$rc" != 2 ]; then
      echo "flow sweep failed (exit $rc): {}" >&2
      exit 255
    fi'
}
for f in tests/inputs/flow/*.c; do
  for engine in naive worklist delta scc par; do
    for model in ca coc cis off; do
      echo "$f --flow=invalidate --flow-audit --certify --check=use-after-free --engine=$engine --model=$model"
    done
  done
done | flow_sweep

echo "== flow cfg: golden corpus x engines x models, audited and certified =="
# Same contract for the CFG dataflow flavour: every flow-corpus program,
# engine, and model must certify, pass --flow-audit (which also re-checks
# the CFG's well-formedness), and verify the CFG explicitly.
for f in tests/inputs/flow/*.c; do
  for engine in naive worklist delta scc par; do
    for model in ca coc cis off; do
      echo "$f --flow=cfg --flow-audit --verify-cfg --certify --check=use-after-free --engine=$engine --model=$model"
    done
  done
done | flow_sweep

echo "== verify-cfg: every corpus program's CFG is well-formed =="
# The normalizer-built CFG must pass the well-formedness verifier on every
# real corpus program (exit 4 on any violation).
for f in corpus/*.c; do
  echo "$f --verify-cfg"
done | certify_sweep

echo "== mutation smoke: seeded faults must be caught =="
# The certifier's detection power: hundreds of seeded fact deletions and
# insertions, all of which must be flagged with zero clean-run false
# alarms (tests/verify/MutationTest.cpp), on plain and hvn-preprocessed
# runs alike.
./build/tests/verify_mutation_test --gtest_brief=1

if [ "${SKIP_TSAN:-0}" = "1" ]; then
  echo "== tsan: skipped (SKIP_TSAN=1) =="
else
  echo "== tsan: parallel-engine smoke =="
  # ThreadSanitizer over the parallel engine's gather phase: a certify run
  # per model at an oversubscribed thread count on a cycle-heavy corpus
  # program. Any gather-phase write to shared solver state shows up as a
  # tsan race report (halt_on_error makes it exit nonzero).
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs_n" --target spa_cli
  for model in ca coc cis off; do
    TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tools/spa_cli corpus/compress.c \
      --engine=par --threads=4 --model="$model" --certify >/dev/null
  done
fi

if [ "${SKIP_ASAN:-0}" = "1" ]; then
  echo "== asan-ubsan: skipped (SKIP_ASAN=1) =="
  exit 0
fi

echo "== asan-ubsan preset =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs_n"
ctest --preset asan-ubsan --output-on-failure -j "$jobs_n"

echo "== ci.sh: all green =="
