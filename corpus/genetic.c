/*
 * genetic -- toy genetic algorithm over bit-string genomes.
 * Corpus program (no structure casting): population of structs holding
 * heap genome arrays, tournament selection via pointers, generational
 * swap of population buffers.
 */

enum { POP_SIZE = 16, GENOME_LEN = 32 };

struct individual {
    int *genome;   /* heap array of 0/1 */
    int fitness;
    int age;
};

struct population {
    struct individual members[16];
    int generation;
    int best_fitness;
    struct individual *best;
};

struct population pop_a;
struct population pop_b;
struct population *current;
struct population *scratch;

unsigned rng_state;

static unsigned rng_next(void) {
    rng_state = rng_state * 1103515245 + 12345;
    return (rng_state >> 16) & 32767;
}

static int *alloc_genome(void) {
    int *g;
    int i;
    g = (int *)malloc(GENOME_LEN * sizeof(int));
    for (i = 0; i < GENOME_LEN; i++)
        g[i] = (int)(rng_next() & 1);
    return g;
}

static int eval_fitness(const int *genome) {
    int i, score;
    score = 0;
    for (i = 0; i < GENOME_LEN; i++)
        if (genome[i])
            score++;
    return score;
}

static void init_population(struct population *p) {
    int i;
    struct individual *ind;
    p->generation = 0;
    p->best_fitness = -1;
    p->best = 0;
    for (i = 0; i < POP_SIZE; i++) {
        ind = &p->members[i];
        ind->genome = alloc_genome();
        ind->fitness = eval_fitness(ind->genome);
        ind->age = 0;
    }
}

static struct individual *tournament(struct population *p) {
    struct individual *a;
    struct individual *b;
    a = &p->members[rng_next() % POP_SIZE];
    b = &p->members[rng_next() % POP_SIZE];
    return a->fitness >= b->fitness ? a : b;
}

static void crossover(const struct individual *ma, const struct individual *pa,
                      struct individual *child) {
    int cut, i;
    if (!child->genome)
        child->genome = alloc_genome();
    cut = (int)(rng_next() % GENOME_LEN);
    for (i = 0; i < GENOME_LEN; i++)
        child->genome[i] = i < cut ? ma->genome[i] : pa->genome[i];
    if ((rng_next() & 7) == 0) { /* mutation */
        i = (int)(rng_next() % GENOME_LEN);
        child->genome[i] = 1 - child->genome[i];
    }
    child->fitness = eval_fitness(child->genome);
    child->age = 0;
}

static void step(void) {
    int i;
    struct individual *ma;
    struct individual *pa;
    struct population *tmp;
    for (i = 0; i < POP_SIZE; i++) {
        ma = tournament(current);
        pa = tournament(current);
        crossover(ma, pa, &scratch->members[i]);
    }
    scratch->generation = current->generation + 1;
    tmp = current;
    current = scratch;
    scratch = tmp;
    current->best = 0;
    current->best_fitness = -1;
    for (i = 0; i < POP_SIZE; i++) {
        if (current->members[i].fitness > current->best_fitness) {
            current->best_fitness = current->members[i].fitness;
            current->best = &current->members[i];
        }
    }
}

/* ------------------------------------------------------------------ */
/* Variants: two-point crossover, elitism, and a diversity metric.     */
/* ------------------------------------------------------------------ */

static void crossover_two_point(const struct individual *ma,
                                const struct individual *pa,
                                struct individual *child) {
    int lo, hi, i, tmp;
    if (!child->genome)
        child->genome = alloc_genome();
    lo = (int)(rng_next() % GENOME_LEN);
    hi = (int)(rng_next() % GENOME_LEN);
    if (lo > hi) {
        tmp = lo;
        lo = hi;
        hi = tmp;
    }
    for (i = 0; i < GENOME_LEN; i++)
        child->genome[i] =
            (i >= lo && i <= hi) ? pa->genome[i] : ma->genome[i];
    child->fitness = eval_fitness(child->genome);
    child->age = 0;
}

static struct individual *elite_of(struct population *p) {
    struct individual *best;
    int i;
    best = &p->members[0];
    for (i = 1; i < POP_SIZE; i++)
        if (p->members[i].fitness > best->fitness)
            best = &p->members[i];
    return best;
}

static void copy_individual(struct individual *dst,
                            const struct individual *src) {
    int i;
    if (!dst->genome)
        dst->genome = alloc_genome();
    for (i = 0; i < GENOME_LEN; i++)
        dst->genome[i] = src->genome[i];
    dst->fitness = src->fitness;
    dst->age = src->age + 1;
}

static int hamming(const int *a, const int *b) {
    int i, d;
    d = 0;
    for (i = 0; i < GENOME_LEN; i++)
        if (a[i] != b[i])
            d++;
    return d;
}

static int diversity(struct population *p) {
    int i, j, total, pairs;
    total = 0;
    pairs = 0;
    for (i = 0; i < POP_SIZE; i++)
        for (j = i + 1; j < POP_SIZE; j++) {
            total += hamming(p->members[i].genome, p->members[j].genome);
            pairs++;
        }
    return pairs ? total / pairs : 0;
}

static void step_elitist(void) {
    struct individual *ma;
    struct individual *pa;
    struct individual *keep;
    struct population *tmp;
    int i;
    keep = elite_of(current);
    copy_individual(&scratch->members[0], keep);
    for (i = 1; i < POP_SIZE; i++) {
        ma = tournament(current);
        pa = tournament(current);
        if (rng_next() & 1)
            crossover(ma, pa, &scratch->members[i]);
        else
            crossover_two_point(ma, pa, &scratch->members[i]);
    }
    scratch->generation = current->generation + 1;
    tmp = current;
    current = scratch;
    scratch = tmp;
}

int main(void) {
    int g;
    rng_state = 12345;
    init_population(&pop_a);
    init_population(&pop_b);
    current = &pop_a;
    scratch = &pop_b;
    for (g = 0; g < 10; g++)
        step();
    printf("generation %d best fitness %d\n", current->generation,
           current->best_fitness);
    if (current->best)
        printf("best age %d\n", current->best->age);

    for (g = 0; g < 10; g++)
        step_elitist();
    printf("after elitist run: generation %d elite fitness %d diversity "
           "%d\n",
           current->generation, elite_of(current)->fitness,
           diversity(current));
    return 0;
}
