/*
 * eqntott -- truth-table builder over product terms.
 * Corpus program (with structure casting): product terms ("cubes") are
 * copied between differently-typed views (a working view with scratch
 * fields and a compact stored view), using whole-record copies through
 * casts -- the paper's Problem 3 at scale.
 */

enum { MAX_VARS = 8, MAX_TERMS = 32 };

struct cube_work {          /* working view */
    int *mask;              /* heap array: per-variable care bit */
    int *value;             /* heap array: per-variable value */
    int n_vars;
    int scratch;
    struct cube_work *next;
};

struct cube_store {         /* compact stored view: shares the prefix */
    int *mask;
    int *value;
    int n_vars;
    int weight;             /* diverges from cube_work here */
};

struct cube_work *work_list;
struct cube_store stored[32];
int n_stored;
int table[256];

static struct cube_work *new_work(int n_vars) {
    struct cube_work *c;
    int i;
    c = (struct cube_work *)malloc(sizeof(struct cube_work));
    c->mask = (int *)malloc(n_vars * sizeof(int));
    c->value = (int *)malloc(n_vars * sizeof(int));
    c->n_vars = n_vars;
    c->scratch = 0;
    for (i = 0; i < n_vars; i++) {
        c->mask[i] = 0;
        c->value[i] = 0;
    }
    c->next = work_list;
    work_list = c;
    return c;
}

static void set_literal(struct cube_work *c, int var, int val) {
    c->mask[var] = 1;
    c->value[var] = val;
}

static void store_cube(const struct cube_work *c) {
    struct cube_store *s;
    s = &stored[n_stored++];
    /* copy the working view into the stored view through a cast: only the
     * common prefix is meaningful, the tail is re-initialized */
    *s = *(const struct cube_store *)c;
    s->weight = 0;
}

static int cube_covers(const struct cube_store *s, int assignment) {
    int v, bit;
    for (v = 0; v < s->n_vars; v++) {
        if (!s->mask[v])
            continue;
        bit = (assignment >> v) & 1;
        if (bit != s->value[v])
            return 0;
    }
    return 1;
}

static void build_table(int n_vars) {
    int a, t;
    int rows;
    rows = 1 << n_vars;
    for (a = 0; a < rows; a++) {
        table[a] = 0;
        for (t = 0; t < n_stored; t++) {
            if (cube_covers(&stored[t], a)) {
                table[a] = 1;
                break;
            }
        }
    }
}

static int count_ones(int n_vars) {
    int a, total;
    total = 0;
    for (a = 0; a < (1 << n_vars); a++)
        total += table[a];
    return total;
}

/* ------------------------------------------------------------------ */
/* Cofactors and a unateness check over the stored views.              */
/* ------------------------------------------------------------------ */

static int cofactor_covers(const struct cube_store *s, int var, int val,
                           int assignment) {
    int v, bit;
    for (v = 0; v < s->n_vars; v++) {
        if (!s->mask[v])
            continue;
        bit = v == var ? val : ((assignment >> v) & 1);
        if (bit != s->value[v])
            return 0;
    }
    return 1;
}

static int count_cofactor(int var, int val, int n_vars) {
    int a, t, total;
    total = 0;
    for (a = 0; a < (1 << n_vars); a++) {
        for (t = 0; t < n_stored; t++)
            if (cofactor_covers(&stored[t], var, val, a)) {
                total++;
                break;
            }
    }
    return total;
}

static int is_unate_in(int var) {
    int t, pos, neg;
    pos = 0;
    neg = 0;
    for (t = 0; t < n_stored; t++) {
        if (!stored[t].mask[var])
            continue;
        if (stored[t].value[var])
            pos++;
        else
            neg++;
    }
    return !(pos && neg);
}

static void weigh_stored(void) {
    int t, v;
    for (t = 0; t < n_stored; t++) {
        stored[t].weight = 0;
        for (v = 0; v < stored[t].n_vars; v++)
            if (stored[t].mask[v])
                stored[t].weight++;
    }
}

int main(void) {
    struct cube_work *c;
    int v, n_vars;
    n_vars = 4;
    work_list = 0;
    n_stored = 0;

    c = new_work(n_vars);          /* term: x0 & !x2 */
    set_literal(c, 0, 1);
    set_literal(c, 2, 0);
    store_cube(c);

    c = new_work(n_vars);          /* term: x1 & x3 */
    set_literal(c, 1, 1);
    set_literal(c, 3, 1);
    store_cube(c);

    build_table(n_vars);
    printf("minterms covered: %d of %d\n", count_ones(n_vars), 1 << n_vars);

    weigh_stored();
    for (v = 0; v < n_vars; v++)
        printf("var %d: cofactor sizes %d/%d, unate %d\n", v,
               count_cofactor(v, 0, n_vars), count_cofactor(v, 1, n_vars),
               is_unate_in(v));
    printf("weights: %d %d\n", stored[0].weight, stored[1].weight);
    return 0;
}
