/*
 * twig -- tree-pattern matcher (code-generator generator flavor).
 * Corpus program (with structure casting): pattern trees and subject
 * trees use different node layouts that agree only on a short prefix;
 * the matcher walks both through a third "cursor" view whose fields sit
 * beyond the common initial sequence -- the paper's worst case for the
 * Common-Initial-Sequence instance.
 */

enum { OP_LEAF = 0, OP_PLUS = 1, OP_MUL = 2, OP_MEM = 3, MAX_NODES = 64 };

struct pat_node {
    int op;                    /* prefix: op */
    struct pat_node *kids[2];  /* diverges immediately after op */
    int cost;
    int rule_no;
};

struct subj_node {
    int op;                    /* prefix: op */
    int value;                 /* diverges here */
    struct subj_node *left;
    struct subj_node *right;
    struct pat_node *matched;
};

struct cursor_view {           /* a third, mismatched traversal view */
    int op;
    int aux;
    struct cursor_view *first;
    struct cursor_view *second;
};

struct pat_node pat_pool[64];
int n_pats;
struct subj_node subj_pool[64];
int n_subjs;
int match_count;

static struct pat_node *mk_pat(int op, struct pat_node *l,
                               struct pat_node *r, int rule) {
    struct pat_node *p;
    p = &pat_pool[n_pats++];
    p->op = op;
    p->kids[0] = l;
    p->kids[1] = r;
    p->cost = 1;
    p->rule_no = rule;
    return p;
}

static struct subj_node *mk_subj(int op, int value, struct subj_node *l,
                                 struct subj_node *r) {
    struct subj_node *s;
    s = &subj_pool[n_subjs++];
    s->op = op;
    s->value = value;
    s->left = l;
    s->right = r;
    s->matched = 0;
    return s;
}

static int match(struct pat_node *p, struct subj_node *s) {
    if (!p)
        return 1;
    if (!s)
        return 0;
    if (p->op != s->op && p->op != OP_LEAF)
        return 0;
    if (p->op == OP_LEAF)
        return 1;
    if (!match(p->kids[0], s->left))
        return 0;
    return match(p->kids[1], s->right);
}

/* Walk any tree through the mismatched cursor view: reads fall beyond
 * the one-field common initial sequence on purpose. */
static int cursor_weigh(struct cursor_view *c, int depth) {
    int total;
    if (!c || depth > 8)
        return 0;
    total = c->op + c->aux;
    total += cursor_weigh(c->first, depth + 1);
    total += cursor_weigh(c->second, depth + 1);
    return total;
}

static void label_tree(struct subj_node *s, struct pat_node *rules[],
                       int n_rules) {
    int r;
    if (!s)
        return;
    label_tree(s->left, rules, n_rules);
    label_tree(s->right, rules, n_rules);
    for (r = 0; r < n_rules; r++) {
        if (match(rules[r], s)) {
            s->matched = rules[r];
            match_count++;
            break;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Cost-based labeling and bottom-up rewriting.                        */
/* ------------------------------------------------------------------ */

struct label {
    int rule_no;
    int cost;
    struct label *cheaper;   /* chain of dominated labels */
};

struct label label_pool[64];
int n_labels;

static struct label *mk_label(int rule, int cost) {
    struct label *l;
    l = &label_pool[n_labels++];
    l->rule_no = rule;
    l->cost = cost;
    l->cheaper = 0;
    return l;
}

static int tree_cost(const struct subj_node *s) {
    int c;
    if (!s)
        return 0;
    c = 1 + tree_cost(s->left) + tree_cost(s->right);
    if (s->matched)
        c += s->matched->cost;
    return c;
}

static struct label *best_label(struct subj_node *s,
                                struct pat_node *rules[], int n_rules) {
    struct label *best;
    struct label *l;
    int r;
    best = 0;
    for (r = 0; r < n_rules; r++) {
        if (!match(rules[r], s))
            continue;
        l = mk_label(rules[r]->rule_no, rules[r]->cost + tree_cost(s));
        if (best) {
            if (l->cost < best->cost) {
                l->cheaper = best;
                best = l;
            } else {
                l->cheaper = best->cheaper;
                best->cheaper = l;
            }
        } else {
            best = l;
        }
    }
    return best;
}

/* Rewrite MEM(PLUS(leaf,leaf)) into a single "addressing mode" node. */
static struct subj_node *rewrite(struct subj_node *s) {
    struct subj_node *folded;
    if (!s)
        return 0;
    s->left = rewrite(s->left);
    s->right = rewrite(s->right);
    if (s->op == OP_MEM && s->left && s->left->op == OP_PLUS) {
        folded = mk_subj(OP_LEAF,
                         (s->left->left ? s->left->left->value : 0) +
                             (s->left->right ? s->left->right->value : 0),
                         0, 0);
        folded->matched = s->matched;
        return folded;
    }
    return s;
}

int main(void) {
    struct pat_node *leaf;
    struct pat_node *add_rule;
    struct pat_node *mem_rule;
    struct pat_node *rules[3];
    struct subj_node *t;
    int w1, w2;

    n_pats = 0;
    n_subjs = 0;
    match_count = 0;

    leaf = mk_pat(OP_LEAF, 0, 0, 1);
    add_rule = mk_pat(OP_PLUS, leaf, leaf, 2);
    mem_rule = mk_pat(OP_MEM, mk_pat(OP_PLUS, leaf, leaf, 0), 0, 3);
    rules[0] = mem_rule;
    rules[1] = add_rule;
    rules[2] = leaf;

    t = mk_subj(OP_MEM, 0,
                mk_subj(OP_PLUS, 0,
                        mk_subj(OP_LEAF, 4, 0, 0),
                        mk_subj(OP_LEAF, 8, 0, 0)),
                0);

    label_tree(t, rules, 3);

    n_labels = 0;
    {
        struct label *l;
        l = best_label(t, rules, 3);
        if (l)
            printf("best label: rule %d cost %d (alternatives %d)\n",
                   l->rule_no, l->cost, n_labels - 1);
    }
    t = rewrite(t);
    printf("rewritten root op %d value %d\n", t->op, t->value);

    /* weigh both trees through the cursor view (mismatched casts) */
    w1 = cursor_weigh((struct cursor_view *)t, 0);
    w2 = cursor_weigh((struct cursor_view *)add_rule, 0);
    printf("matches %d, weights %d %d\n", match_count, w1, w2);
    if (t->matched)
        printf("root matched rule %d\n", t->matched->rule_no);
    return 0;
}
