/*
 * ft -- minimum spanning forest (Austin benchmark style).
 * Corpus program (no structure casting): heap-built graph, union-find
 * with parent pointers, edge list sorting via insertion into buckets.
 */

enum { MAX_WEIGHT = 16 };

struct vertex {
    int id;
    struct vertex *parent; /* union-find */
    int rank;
    struct vertex *next;   /* all-vertices list */
};

struct arc {
    struct vertex *from;
    struct vertex *to;
    int weight;
    struct arc *next;
};

struct vertex *vertices;
struct arc *buckets[16];
int vertex_count;
int arc_count;
int forest_weight;

static struct vertex *make_vertex(int id) {
    struct vertex *v;
    v = (struct vertex *)malloc(sizeof(struct vertex));
    v->id = id;
    v->parent = v;
    v->rank = 0;
    v->next = vertices;
    vertices = v;
    vertex_count++;
    return v;
}

static void make_arc(struct vertex *a, struct vertex *b, int w) {
    struct arc *e;
    e = (struct arc *)malloc(sizeof(struct arc));
    e->from = a;
    e->to = b;
    e->weight = w % MAX_WEIGHT;
    e->next = buckets[e->weight];
    buckets[e->weight] = e;
    arc_count++;
}

static struct vertex *find_root(struct vertex *v) {
    struct vertex *root;
    struct vertex *walk;
    struct vertex *up;
    root = v;
    while (root->parent != root)
        root = root->parent;
    walk = v;
    while (walk != root) { /* path compression */
        up = walk->parent;
        walk->parent = root;
        walk = up;
    }
    return root;
}

static int unite(struct vertex *a, struct vertex *b) {
    struct vertex *ra;
    struct vertex *rb;
    ra = find_root(a);
    rb = find_root(b);
    if (ra == rb)
        return 0;
    if (ra->rank < rb->rank) {
        ra->parent = rb;
    } else if (ra->rank > rb->rank) {
        rb->parent = ra;
    } else {
        rb->parent = ra;
        ra->rank++;
    }
    return 1;
}

static void kruskal(void) {
    int w;
    const struct arc *e;
    forest_weight = 0;
    for (w = 0; w < MAX_WEIGHT; w++) {
        for (e = buckets[w]; e; e = e->next) {
            if (unite(e->from, e->to))
                forest_weight += e->weight;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Verification: count components via the union-find roots, and walk   */
/* each bucket to cross-check the arc count.                           */
/* ------------------------------------------------------------------ */

static int count_components(void) {
    struct vertex *v;
    int roots;
    roots = 0;
    for (v = vertices; v; v = v->next)
        if (find_root(v) == v)
            roots++;
    return roots;
}

static int recount_arcs(void) {
    int w, n;
    const struct arc *e;
    n = 0;
    for (w = 0; w < MAX_WEIGHT; w++)
        for (e = buckets[w]; e; e = e->next)
            n++;
    return n;
}

static int heaviest_tree_edge(void) {
    int w;
    const struct arc *e;
    int heaviest;
    heaviest = -1;
    for (w = MAX_WEIGHT - 1; w >= 0; w--)
        for (e = buckets[w]; e; e = e->next)
            if (find_root(e->from) == find_root(e->to) &&
                e->weight > heaviest)
                heaviest = e->weight;
    return heaviest;
}

static int degree_of(const struct vertex *v) {
    int w, d;
    const struct arc *e;
    d = 0;
    for (w = 0; w < MAX_WEIGHT; w++)
        for (e = buckets[w]; e; e = e->next)
            if (e->from == v || e->to == v)
                d++;
    return d;
}

int main(void) {
    struct vertex *vs[24];
    int i;
    vertices = 0;
    vertex_count = 0;
    arc_count = 0;
    for (i = 0; i < 24; i++)
        vs[i] = make_vertex(i);
    for (i = 0; i + 1 < 24; i++)
        make_arc(vs[i], vs[i + 1], (i * 7 + 3) % MAX_WEIGHT);
    for (i = 0; i + 5 < 24; i += 2)
        make_arc(vs[i], vs[i + 5], (i * 11 + 1) % MAX_WEIGHT);
    kruskal();
    printf("vertices %d arcs %d forest weight %d\n", vertex_count, arc_count,
           forest_weight);
    printf("components %d, recount %d, heaviest %d, deg(v0) %d\n",
           count_components(), recount_arcs(), heaviest_tree_edge(),
           degree_of(vs[0]));
    return 0;
}
