/*
 * li -- lisp interpreter kernel (xlisp flavor).
 * Corpus program (with structure casting): cons cells are tagged unions;
 * the garbage-collector free list threads through the value slots by
 * casting; fixnums and pointers share cell payloads.
 */

extern char *strdup();

enum { T_NIL = 0, T_CONS = 1, T_FIXNUM = 2, T_SYMBOL = 3, T_SUBR = 4,
       HEAP_CELLS = 128 };

struct cell;

union payload {
    struct {
        struct cell *car;
        struct cell *cdr;
    } cons;
    long fixnum;
    struct {
        char *name;
        struct cell *value;
    } symbol;
    struct cell *(*subr)(struct cell *args);
};

struct cell {
    int tag;
    int mark;
    union payload p;
};

struct cell heap[128];
struct cell *free_list;
struct cell *nil_cell;
struct cell *oblist;     /* list of interned symbols */

static void heap_init(void) {
    int i;
    free_list = 0;
    for (i = 0; i < HEAP_CELLS; i++) {
        heap[i].tag = T_NIL;
        heap[i].mark = 0;
        /* thread the free list through the car slot */
        heap[i].p.cons.car = free_list;
        free_list = &heap[i];
    }
}

static struct cell *cell_alloc(int tag) {
    struct cell *c;
    c = free_list;
    free_list = c->p.cons.car;
    c->tag = tag;
    c->mark = 0;
    return c;
}

static struct cell *cons(struct cell *car, struct cell *cdr) {
    struct cell *c;
    c = cell_alloc(T_CONS);
    c->p.cons.car = car;
    c->p.cons.cdr = cdr;
    return c;
}

static struct cell *fixnum(long v) {
    struct cell *c;
    c = cell_alloc(T_FIXNUM);
    c->p.fixnum = v;
    return c;
}

static struct cell *intern(const char *name) {
    struct cell *walk;
    struct cell *sym;
    for (walk = oblist; walk && walk->tag == T_CONS;
         walk = walk->p.cons.cdr) {
        sym = walk->p.cons.car;
        if (strcmp(sym->p.symbol.name, name) == 0)
            return sym;
    }
    sym = cell_alloc(T_SYMBOL);
    sym->p.symbol.name = strdup(name);
    sym->p.symbol.value = nil_cell;
    oblist = cons(sym, oblist);
    return sym;
}

static struct cell *subr_add(struct cell *args) {
    long total;
    struct cell *walk;
    total = 0;
    for (walk = args; walk && walk->tag == T_CONS; walk = walk->p.cons.cdr)
        if (walk->p.cons.car->tag == T_FIXNUM)
            total += walk->p.cons.car->p.fixnum;
    return fixnum(total);
}

static struct cell *make_subr(struct cell *(*fn)(struct cell *args)) {
    struct cell *c;
    c = cell_alloc(T_SUBR);
    c->p.subr = fn;
    return c;
}

static struct cell *eval(struct cell *expr);

static struct cell *eval_list(struct cell *list) {
    if (!list || list->tag != T_CONS)
        return nil_cell;
    return cons(eval(list->p.cons.car), eval_list(list->p.cons.cdr));
}

static struct cell *eval(struct cell *expr) {
    struct cell *fn;
    struct cell *args;
    if (!expr)
        return nil_cell;
    if (expr->tag == T_FIXNUM)
        return expr;
    if (expr->tag == T_SYMBOL)
        return expr->p.symbol.value;
    if (expr->tag != T_CONS)
        return expr;
    fn = eval(expr->p.cons.car);
    args = eval_list(expr->p.cons.cdr);
    if (fn && fn->tag == T_SUBR)
        return fn->p.subr(args);
    return nil_cell;
}

static void mark(struct cell *c) {
    if (!c || c->mark)
        return;
    c->mark = 1;
    if (c->tag == T_CONS) {
        mark(c->p.cons.car);
        mark(c->p.cons.cdr);
    } else if (c->tag == T_SYMBOL) {
        mark(c->p.symbol.value);
    }
}

static int sweep(void) {
    int freed, i;
    freed = 0;
    for (i = 0; i < HEAP_CELLS; i++) {
        if (heap[i].mark) {
            heap[i].mark = 0;
            continue;
        }
        heap[i].tag = T_NIL;
        heap[i].p.cons.car = free_list;  /* back onto the free list */
        free_list = &heap[i];
        freed++;
    }
    return freed;
}

/* ------------------------------------------------------------------ */
/* More builtins, a tiny reader, and list utilities.                   */
/* ------------------------------------------------------------------ */

static struct cell *subr_mul(struct cell *args) {
    long total;
    struct cell *walk;
    total = 1;
    for (walk = args; walk && walk->tag == T_CONS; walk = walk->p.cons.cdr)
        if (walk->p.cons.car->tag == T_FIXNUM)
            total *= walk->p.cons.car->p.fixnum;
    return fixnum(total);
}

static struct cell *subr_car(struct cell *args) {
    struct cell *first;
    if (!args || args->tag != T_CONS)
        return nil_cell;
    first = args->p.cons.car;
    if (first && first->tag == T_CONS)
        return first->p.cons.car;
    return nil_cell;
}

static struct cell *subr_cdr(struct cell *args) {
    struct cell *first;
    if (!args || args->tag != T_CONS)
        return nil_cell;
    first = args->p.cons.car;
    if (first && first->tag == T_CONS)
        return first->p.cons.cdr;
    return nil_cell;
}

static struct cell *subr_list(struct cell *args) {
    return args;
}

static int list_length(struct cell *list) {
    int n;
    n = 0;
    while (list && list->tag == T_CONS) {
        n++;
        list = list->p.cons.cdr;
    }
    return n;
}

static struct cell *list_reverse(struct cell *list) {
    struct cell *out;
    out = nil_cell;
    while (list && list->tag == T_CONS) {
        out = cons(list->p.cons.car, out);
        list = list->p.cons.cdr;
    }
    return out;
}

/* A minimal reader: parses "(+ 1 (* 2 3))" into cells. */

struct reader {
    const char *src;
    int pos;
};

static void skip_spaces(struct reader *r) {
    while (r->src[r->pos] == ' ')
        r->pos++;
}

static struct cell *read_form(struct reader *r);

static struct cell *read_list(struct reader *r) {
    struct cell *items;
    struct cell *form;
    items = nil_cell;
    for (;;) {
        skip_spaces(r);
        if (!r->src[r->pos] || r->src[r->pos] == ')') {
            if (r->src[r->pos])
                r->pos++;
            return list_reverse(items);
        }
        form = read_form(r);
        items = cons(form, items);
    }
}

static struct cell *read_form(struct reader *r) {
    char ch;
    skip_spaces(r);
    ch = r->src[r->pos];
    if (ch == '(') {
        r->pos++;
        return read_list(r);
    }
    if (ch >= '0' && ch <= '9') {
        long v;
        v = 0;
        while (r->src[r->pos] >= '0' && r->src[r->pos] <= '9') {
            v = v * 10 + (r->src[r->pos] - '0');
            r->pos++;
        }
        return fixnum(v);
    }
    {
        char name[16];
        int n;
        n = 0;
        while (r->src[r->pos] && r->src[r->pos] != ' ' &&
               r->src[r->pos] != '(' && r->src[r->pos] != ')') {
            if (n + 1 < 16)
                name[n++] = r->src[r->pos];
            r->pos++;
        }
        name[n] = 0;
        return intern(name);
    }
}

static struct cell *read_string(const char *text) {
    struct reader r;
    r.src = text;
    r.pos = 0;
    return read_form(&r);
}

static long eval_string(const char *text) {
    struct cell *result;
    result = eval(read_string(text));
    return result && result->tag == T_FIXNUM ? result->p.fixnum : -1;
}

int main(void) {
    struct cell *plus;
    struct cell *expr;
    struct cell *result;
    int freed;

    heap_init();
    nil_cell = cell_alloc(T_NIL);
    oblist = nil_cell;

    plus = intern("+");
    plus->p.symbol.value = make_subr(subr_add);
    intern("*")->p.symbol.value = make_subr(subr_mul);
    intern("car")->p.symbol.value = make_subr(subr_car);
    intern("cdr")->p.symbol.value = make_subr(subr_cdr);
    intern("list")->p.symbol.value = make_subr(subr_list);

    /* (+ 1 2 3) */
    expr = cons(plus, cons(fixnum(1), cons(fixnum(2), cons(fixnum(3),
                                                            nil_cell))));
    result = eval(expr);
    printf("(+ 1 2 3) => %ld\n",
           result->tag == T_FIXNUM ? result->p.fixnum : -1);

    printf("(+ 1 (* 2 3)) => %ld\n", eval_string("(+ 1 (* 2 3))"));
    printf("(car (list 7 8)) => %ld\n", eval_string("(car (list 7 8))"));

    result = read_string("(list 1 2 3 4)");
    printf("read length => %d\n", list_length(result->p.cons.cdr));

    mark(oblist);
    freed = sweep();
    printf("gc freed %d cells\n", freed);

    /* allocate after gc: recycled cells come off the free list */
    expr = cons(fixnum(9), nil_cell);
    printf("recycled tag %d\n", expr->tag);
    return 0;
}
