/*
 * loader -- toy object-file loader over an in-memory image.
 * Corpus program (with structure casting): a byte image is parsed by
 * casting cursors to header/section/symbol records; all record types
 * share a common initial sequence (tag, size), which is exactly the case
 * the Common-Initial-Sequence instance keeps precise.
 */

enum { TAG_FILE = 1, TAG_SECTION = 2, TAG_SYMBOL = 3, IMAGE_MAX = 2048 };

struct rec_head {        /* the shared prefix of every record */
    int tag;
    int size;
};

struct file_rec {
    int tag;
    int size;
    int n_sections;
    int entry_point;
};

struct section_rec {
    int tag;
    int size;
    char *name;
    char *bytes;
    int length;
};

struct symbol_rec {
    int tag;
    int size;
    char *name;
    struct section_rec *home;
    int offset;
};

char image[2048];
int image_len;
struct section_rec *sections[16];
int n_sections;
struct symbol_rec *symbols[32];
int n_symbols;

static char *image_put(int n) {
    char *p;
    p = &image[image_len];
    image_len += n;
    return p;
}

static void put_file_header(int nsec) {
    struct file_rec *f;
    f = (struct file_rec *)image_put(sizeof(struct file_rec));
    f->tag = TAG_FILE;
    f->size = sizeof(struct file_rec);
    f->n_sections = nsec;
    f->entry_point = 0;
}

static void put_section(char *name, char *bytes, int length) {
    struct section_rec *s;
    s = (struct section_rec *)image_put(sizeof(struct section_rec));
    s->tag = TAG_SECTION;
    s->size = sizeof(struct section_rec);
    s->name = name;
    s->bytes = bytes;
    s->length = length;
}

static void put_symbol(char *name, int offset) {
    struct symbol_rec *y;
    y = (struct symbol_rec *)image_put(sizeof(struct symbol_rec));
    y->tag = TAG_SYMBOL;
    y->size = sizeof(struct symbol_rec);
    y->name = name;
    y->home = 0;
    y->offset = offset;
}

static void scan_image(void) {
    char *cursor;
    const struct rec_head *h;
    struct section_rec *s;
    struct symbol_rec *y;
    cursor = image;
    while (cursor < image + image_len) {
        h = (const struct rec_head *)cursor;  /* view through the prefix */
        if (h->tag == TAG_SECTION) {
            s = (struct section_rec *)cursor;
            sections[n_sections++] = s;
        } else if (h->tag == TAG_SYMBOL) {
            y = (struct symbol_rec *)cursor;
            symbols[n_symbols++] = y;
        }
        cursor += h->size;
    }
}

static void bind_symbols(void) {
    int i;
    struct symbol_rec *y;
    for (i = 0; i < n_symbols; i++) {
        y = symbols[i];
        if (n_sections > 0)
            y->home = sections[y->offset % n_sections];
    }
}

static void report(void) {
    int i;
    for (i = 0; i < n_sections; i++)
        printf("section %s (%d bytes)\n", sections[i]->name,
               sections[i]->length);
    for (i = 0; i < n_symbols; i++)
        printf("symbol %s in %s at %d\n", symbols[i]->name,
               symbols[i]->home ? symbols[i]->home->name : "?",
               symbols[i]->offset);
}

/* ------------------------------------------------------------------ */
/* Relocations: one more record family member, plus an apply pass that */
/* patches section bytes with symbol addresses.                        */
/* ------------------------------------------------------------------ */

enum { TAG_RELOC = 4, RELOC_ABS = 0, RELOC_REL = 1 };

struct reloc_rec {
    int tag;
    int size;
    struct symbol_rec *target;
    struct section_rec *in_section;
    int at_offset;
    int kind;
};

struct reloc_rec *relocs[16];
int n_relocs;

static void put_reloc(int symbol_index, int section_index, int at, int kind) {
    struct reloc_rec *r;
    r = (struct reloc_rec *)image_put(sizeof(struct reloc_rec));
    r->tag = TAG_RELOC;
    r->size = sizeof(struct reloc_rec);
    r->target = 0;
    r->in_section = 0;
    r->at_offset = at;
    r->kind = kind;
    /* indices are resolved after scanning, like a real loader */
    r->at_offset = at;
    (void)symbol_index;
    (void)section_index;
}

static void collect_relocs(void) {
    char *cursor;
    const struct rec_head *h;
    cursor = image;
    n_relocs = 0;
    while (cursor < image + image_len) {
        h = (const struct rec_head *)cursor;
        if (h->tag == TAG_RELOC && n_relocs < 16)
            relocs[n_relocs++] = (struct reloc_rec *)cursor;
        cursor += h->size;
    }
}

static void bind_relocs(void) {
    int i;
    struct reloc_rec *r;
    for (i = 0; i < n_relocs; i++) {
        r = relocs[i];
        if (n_symbols > 0)
            r->target = symbols[i % n_symbols];
        if (n_sections > 0)
            r->in_section = sections[i % n_sections];
    }
}

static int apply_relocs(void) {
    int i, applied;
    struct reloc_rec *r;
    char *where;
    applied = 0;
    for (i = 0; i < n_relocs; i++) {
        r = relocs[i];
        if (!r->target || !r->in_section)
            continue;
        if (r->at_offset < 0 || r->at_offset >= r->in_section->length)
            continue;
        where = r->in_section->bytes + r->at_offset;
        *where = (char)(r->kind == RELOC_ABS ? r->target->offset
                                             : r->target->offset - i);
        applied++;
    }
    return applied;
}

static char text_bytes[16];
static char data_bytes[16];

int main(void) {
    image_len = 0;
    n_sections = 0;
    n_symbols = 0;
    put_file_header(2);
    put_section("text", text_bytes, 16);
    put_section("data", data_bytes, 16);
    put_symbol("start", 0);
    put_symbol("buffer", 4);
    put_reloc(0, 0, 2, RELOC_ABS);
    put_reloc(1, 1, 5, RELOC_REL);
    scan_image();
    bind_symbols();
    collect_relocs();
    bind_relocs();
    printf("applied %d relocations\n", apply_relocs());
    report();
    return 0;
}
