/*
 * diffh -- half-diff: compare two line sequences by hashed records.
 * Corpus program (with structure casting): line records are stored in a
 * raw byte arena and recovered by casting the arena cursor back to the
 * record type; a header struct shares a common initial sequence with the
 * full record.
 */

extern char *strdup();

enum { ARENA_SIZE = 4096, MAX_LINES = 64 };

struct line_head {          /* common initial sequence of line_rec */
    int serial;
    int hash;
};

struct line_rec {
    int serial;
    int hash;
    char *text;
    struct line_rec *match;
};

char arena[4096];
int arena_used;
struct line_rec *file_a[64];
struct line_rec *file_b[64];
int count_a;
int count_b;

static char *arena_alloc(int n) {
    char *p;
    if (arena_used + n > ARENA_SIZE)
        return 0;
    p = &arena[arena_used];
    arena_used += n;
    return p;
}

static int hash_line(const char *s) {
    int h;
    h = 0;
    while (*s) {
        h = h * 131 + *s;
        s++;
    }
    if (h < 0)
        h = -h;
    return h;
}

static struct line_rec *make_rec(const char *text, int serial) {
    struct line_rec *r;
    /* allocate out of the byte arena and cast the cursor */
    r = (struct line_rec *)arena_alloc(sizeof(struct line_rec));
    if (!r)
        return 0;
    r->serial = serial;
    r->hash = hash_line(text);
    r->text = strdup(text);
    r->match = 0;
    return r;
}

static int same_head(const char *pa, const char *pb) {
    /* compare only the header part, through header-typed views */
    const struct line_head *ha;
    const struct line_head *hb;
    ha = (const struct line_head *)pa;
    hb = (const struct line_head *)pb;
    return ha->hash == hb->hash;
}

static void pair_lines(void) {
    int i, j;
    struct line_rec *a;
    struct line_rec *b;
    for (i = 0; i < count_a; i++) {
        a = file_a[i];
        for (j = 0; j < count_b; j++) {
            b = file_b[j];
            if (b->match)
                continue;
            if (same_head((const char *)a, (const char *)b)) {
                a->match = b;
                b->match = a;
                break;
            }
        }
    }
}

static void load_a(const char *text) {
    file_a[count_a] = make_rec(text, count_a);
    count_a++;
}

static void load_b(const char *text) {
    file_b[count_b] = make_rec(text, count_b);
    count_b++;
}

static void report(void) {
    int i;
    const struct line_rec *r;
    for (i = 0; i < count_a; i++) {
        r = file_a[i];
        if (r->match)
            printf("%d -> %d  %s\n", r->serial, r->match->serial, r->text);
        else
            printf("%d deleted: %s\n", r->serial, r->text);
    }
}

/* ------------------------------------------------------------------ */
/* Edit script: walk both files after pairing and classify each line.  */
/* ------------------------------------------------------------------ */

enum { ED_KEEP = 0, ED_DELETE = 1, ED_INSERT = 2 };

struct edit {
    int op;
    const struct line_rec *line;
    struct edit *next;
};

struct edit *script_head;
struct edit *script_tail;

static void script_push(int op, const struct line_rec *line) {
    struct edit *e;
    e = (struct edit *)arena_alloc(sizeof(struct edit));
    if (!e)
        return;
    e->op = op;
    e->line = line;
    e->next = 0;
    if (script_tail)
        script_tail->next = e;
    else
        script_head = e;
    script_tail = e;
}

static void build_script(void) {
    int ia, ib;
    ia = 0;
    ib = 0;
    script_head = 0;
    script_tail = 0;
    while (ia < count_a || ib < count_b) {
        if (ia < count_a && !file_a[ia]->match) {
            script_push(ED_DELETE, file_a[ia]);
            ia++;
            continue;
        }
        if (ib < count_b && !file_b[ib]->match) {
            script_push(ED_INSERT, file_b[ib]);
            ib++;
            continue;
        }
        if (ia < count_a) {
            script_push(ED_KEEP, file_a[ia]);
            ia++;
        }
        if (ib < count_b)
            ib++;
    }
}

static void print_script(void) {
    const struct edit *e;
    const char *tag;
    for (e = script_head; e; e = e->next) {
        tag = e->op == ED_KEEP ? " " : (e->op == ED_DELETE ? "-" : "+");
        printf("%s %s\n", tag, e->line->text);
    }
}

static int script_cost(void) {
    const struct edit *e;
    int cost;
    cost = 0;
    for (e = script_head; e; e = e->next)
        if (e->op != ED_KEEP)
            cost++;
    return cost;
}

int main(void) {
    arena_used = 0;
    count_a = 0;
    count_b = 0;
    load_a("alpha");
    load_a("beta");
    load_a("gamma");
    load_b("beta");
    load_b("gamma");
    load_b("delta");
    pair_lines();
    report();
    build_script();
    print_script();
    printf("edit cost %d\n", script_cost());
    return 0;
}
