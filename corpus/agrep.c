/*
 * agrep -- approximate pattern matcher over a packed record stream.
 * Corpus program (with structure casting): match records are serialized
 * into an int-array shift window and recovered by casting; the bitmask
 * engine stores state words and pointers in the same slots.
 */

enum { WINDOW = 32, MAX_HITS = 16 };

struct hit {
    int pos;
    int errors;
    const char *line;
};

struct packed_hit { /* same layout prefix as struct hit under ilp32 */
    int pos;
    int errors;
    const char *line;
};

int window[32];       /* raw words: shift-register of packed hits */
int window_used;
struct hit hits[16];
int n_hits;
const char *current_line;

static int approx_match(const char *text, const char *pat, int max_err) {
    int errors;
    const char *t;
    const char *p;
    errors = 0;
    t = text;
    p = pat;
    while (*t && *p) {
        if (*t != *p)
            errors++;
        if (errors > max_err)
            return -1;
        t++;
        p++;
    }
    while (*p) {
        errors++;
        p++;
    }
    return errors <= max_err ? errors : -1;
}

static void push_hit(int pos, int errors) {
    struct packed_hit *ph;
    int words;
    words = sizeof(struct packed_hit) / sizeof(int);
    if (window_used + words > WINDOW)
        window_used = 0; /* wrap the shift register */
    ph = (struct packed_hit *)&window[window_used];  /* cast int* -> rec */
    ph->pos = pos;
    ph->errors = errors;
    ph->line = current_line;
    window_used += words;
}

static void drain_window(void) {
    int i, words;
    const struct packed_hit *ph;
    struct hit *h;
    words = sizeof(struct packed_hit) / sizeof(int);
    for (i = 0; i + words <= window_used; i += words) {
        ph = (const struct packed_hit *)&window[i];
        if (n_hits >= MAX_HITS)
            break;
        h = &hits[n_hits++];
        h->pos = ph->pos;
        h->errors = ph->errors;
        h->line = ph->line;
    }
}

static void scan_line(const char *line, const char *pattern, int max_err) {
    int pos;
    int err;
    current_line = line;
    for (pos = 0; line[pos]; pos++) {
        err = approx_match(line + pos, pattern, max_err);
        if (err >= 0)
            push_hit(pos, err);
    }
}

/* ------------------------------------------------------------------ */
/* Exact scanner with a bad-character skip table, and a multi-pattern  */
/* driver sharing the hit window.                                      */
/* ------------------------------------------------------------------ */

int skip_table[128];

static void build_skip(const char *pat) {
    int i, m;
    m = strlen(pat);
    for (i = 0; i < 128; i++)
        skip_table[i] = m;
    for (i = 0; i + 1 < m; i++)
        skip_table[(int)pat[i] & 127] = m - 1 - i;
}

static int exact_scan(const char *text, const char *pat) {
    int n, m, i, j, hits;
    n = strlen(text);
    m = strlen(pat);
    hits = 0;
    i = 0;
    while (i + m <= n) {
        j = m - 1;
        while (j >= 0 && text[i + j] == pat[j])
            j--;
        if (j < 0) {
            push_hit(i, 0);
            hits++;
            i += 1;
        } else {
            i += skip_table[(int)text[i + m - 1] & 127];
            if (i <= 0)
                i = 1;
        }
    }
    return hits;
}

struct pattern_set {
    const char *patterns[4];
    int n_patterns;
    int max_errors;
    int total_hits;
};

static void scan_all(struct pattern_set *ps, const char *line) {
    int p;
    current_line = line;
    for (p = 0; p < ps->n_patterns; p++) {
        if (ps->max_errors == 0) {
            build_skip(ps->patterns[p]);
            ps->total_hits += exact_scan(line, ps->patterns[p]);
        } else {
            scan_line(line, ps->patterns[p], ps->max_errors);
            ps->total_hits++;
        }
    }
}

static const char *corpus_lines[] = {
    "the quick brown fox",
    "pack my box with jugs",
    "sphinx of black quartz",
};

int main(void) {
    struct pattern_set exact;
    int i;
    window_used = 0;
    n_hits = 0;
    for (i = 0; i < 3; i++)
        scan_line(corpus_lines[i], "box", 1);
    drain_window();
    for (i = 0; i < n_hits; i++)
        printf("hit at %d (%d errors) in: %s\n", hits[i].pos, hits[i].errors,
               hits[i].line);

    exact.patterns[0] = "qu";
    exact.patterns[1] = "ck";
    exact.n_patterns = 2;
    exact.max_errors = 0;
    exact.total_hits = 0;
    for (i = 0; i < 3; i++)
        scan_all(&exact, corpus_lines[i]);
    n_hits = 0;
    drain_window();
    printf("exact hits %d (window replay %d)\n", exact.total_hits, n_hits);
    return 0;
}
