/*
 * anagram -- group dictionary words by their sorted letter signature.
 * Corpus program (no structure casting): string tables, qsort with a
 * function-pointer callback, hash chains of heap records.
 */

enum { HASH_SIZE = 257, MAX_WORD = 64 };

struct entry {
    char *word;
    char *signature;
    struct entry *next_in_bucket;
    struct entry *next_in_group;
};

struct entry *buckets[257];
struct entry *all_entries;
int entry_count;

static int sig_hash(const char *s) {
    int h;
    h = 0;
    while (*s) {
        h = h * 31 + *s;
        if (h < 0)
            h = -h;
        s++;
    }
    return h % HASH_SIZE;
}

static int char_cmp(const void *a, const void *b) {
    const char *ca;
    const char *cb;
    ca = (const char *)a;
    cb = (const char *)b;
    return *ca - *cb;
}

static char *make_signature(const char *word) {
    char *sig;
    int n;
    n = strlen(word);
    sig = (char *)malloc(n + 1);
    strcpy(sig, word);
    qsort(sig, n, 1, char_cmp);
    return sig;
}

static struct entry *add_word(char *word) {
    struct entry *e;
    struct entry *probe;
    int h;
    e = (struct entry *)malloc(sizeof(struct entry));
    e->word = word;
    e->signature = make_signature(word);
    e->next_in_group = 0;
    h = sig_hash(e->signature);
    for (probe = buckets[h]; probe; probe = probe->next_in_bucket) {
        if (strcmp(probe->signature, e->signature) == 0) {
            e->next_in_group = probe->next_in_group;
            probe->next_in_group = e;
            return e;
        }
    }
    e->next_in_bucket = buckets[h];
    buckets[h] = e;
    e->next_in_group = 0;
    entry_count++;
    return e;
}

static void dump_groups(void) {
    int h;
    const struct entry *head;
    const struct entry *member;
    for (h = 0; h < HASH_SIZE; h++) {
        for (head = buckets[h]; head; head = head->next_in_bucket) {
            if (!head->next_in_group)
                continue;
            printf("%s:", head->signature);
            for (member = head; member; member = member->next_in_group)
                printf(" %s", member->word);
            printf("\n");
        }
    }
}

/* ------------------------------------------------------------------ */
/* Reporting helpers: largest anagram family and length histogram.     */
/* ------------------------------------------------------------------ */

static int group_size(const struct entry *head) {
    const struct entry *m;
    int n;
    n = 0;
    for (m = head; m; m = m->next_in_group)
        n++;
    return n;
}

static const struct entry *largest_group(void) {
    const struct entry *head;
    const struct entry *best;
    int h, best_n, n;
    best = 0;
    best_n = 0;
    for (h = 0; h < HASH_SIZE; h++)
        for (head = buckets[h]; head; head = head->next_in_bucket) {
            n = group_size(head);
            if (n > best_n) {
                best_n = n;
                best = head;
            }
        }
    return best;
}

static void length_histogram(int *hist, int cap) {
    const struct entry *head;
    int h, len;
    for (h = 0; h < cap; h++)
        hist[h] = 0;
    for (h = 0; h < HASH_SIZE; h++)
        for (head = buckets[h]; head; head = head->next_in_bucket) {
            len = strlen(head->signature);
            if (len >= cap)
                len = cap - 1;
            hist[len]++;
        }
}

static char *dict[] = {
    "listen", "silent", "enlist", "google", "gooleg",
    "banana", "rats",   "star",  "arts",   "cider",
    "cried",  "dice",   "iced",  "night",  "thing",
};

int main(void) {
    int i;
    for (i = 0; i < 15; i++)
        add_word(dict[i]);
    dump_groups();
    printf("%d distinct signatures\n", entry_count);

    {
        const struct entry *best;
        int hist[12];
        int len;
        best = largest_group();
        if (best)
            printf("largest family: %s (%d words)\n", best->signature,
                   group_size(best));
        length_histogram(hist, 12);
        for (len = 1; len < 12; len++)
            if (hist[len])
                printf("len %d: %d signatures\n", len, hist[len]);
    }
    return 0;
}
