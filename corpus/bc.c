/*
 * bc -- arbitrary-precision calculator core (bytecode flavor).
 * Corpus program (with structure casting): a large interpreter-state
 * struct with many pointer fields accessed individually -- the paper's
 * worst case for the Collapse-Always instance (collapsing this struct
 * makes every dereference see every field) -- plus number records that
 * travel through a raw free list.
 */

enum { STACK_MAX = 32, CODE_MAX = 128 };

enum opcode { OP_PUSH = 1, OP_ADD = 2, OP_MUL = 3, OP_NEG = 4, OP_HALT = 5 };

struct number {
    int sign;
    int n_digits;
    char *digits;          /* heap digit string */
    struct number *next;   /* free-list link */
};

struct instruction {
    int op;
    int operand;
};

/* One big interpreter record: sixteen individually-used pointer fields.
 * Collapsing it into a single blob conflates all of them. */
struct machine {
    struct number *stack[32];
    int sp;
    struct instruction *code;
    int pc;
    int code_len;
    struct number *free_numbers;
    struct number *reg_a;
    struct number *reg_b;
    struct number *reg_r;
    char *input_cursor;
    char *input_end;
    char *error_msg;
    int *line_map;
    int *depth_map;
    struct machine *parent;     /* nested evaluation */
    struct number *(*alloc_fn)(struct machine *m);
    void (*trace_fn)(struct machine *m, int op);
};

struct machine vm;

static struct number *number_alloc(struct machine *m) {
    struct number *n;
    if (m->free_numbers) {
        n = m->free_numbers;
        m->free_numbers = n->next;
    } else {
        /* numbers are carved from a raw byte allocation */
        n = (struct number *)malloc(sizeof(struct number));
        n->digits = (char *)malloc(16);
    }
    n->sign = 1;
    n->n_digits = 0;
    n->next = 0;
    return n;
}

static void number_free(struct machine *m, struct number *n) {
    n->next = m->free_numbers;
    m->free_numbers = n;
}

static void number_from_int(struct number *n, int value) {
    int i;
    n->sign = value < 0 ? -1 : 1;
    if (value < 0)
        value = -value;
    i = 0;
    if (value == 0)
        n->digits[i++] = 0;
    while (value > 0) {
        n->digits[i++] = (char)(value % 10);
        value /= 10;
    }
    n->n_digits = i;
}

static int number_to_int(const struct number *n) {
    int v, i;
    v = 0;
    for (i = n->n_digits - 1; i >= 0; i--)
        v = v * 10 + n->digits[i];
    return n->sign < 0 ? -v : v;
}

static void push(struct machine *m, struct number *n) {
    m->stack[m->sp++] = n;
}

static struct number *pop(struct machine *m) {
    return m->stack[--m->sp];
}

static void trace_noop(struct machine *m, int op) {
    if (m->error_msg)
        printf("trace after error %s: op %d\n", m->error_msg, op);
}

static void step(struct machine *m) {
    struct instruction *ins;
    struct number *a;
    struct number *b;
    struct number *r;
    ins = &m->code[m->pc++];
    if (m->trace_fn)
        m->trace_fn(m, ins->op);
    switch (ins->op) {
    case OP_PUSH:
        r = m->alloc_fn(m);
        number_from_int(r, ins->operand);
        push(m, r);
        break;
    case OP_ADD:
        b = pop(m);
        a = pop(m);
        m->reg_a = a;
        m->reg_b = b;
        r = m->alloc_fn(m);
        number_from_int(r, number_to_int(a) + number_to_int(b));
        m->reg_r = r;
        push(m, r);
        number_free(m, a);
        number_free(m, b);
        break;
    case OP_MUL:
        b = pop(m);
        a = pop(m);
        r = m->alloc_fn(m);
        number_from_int(r, number_to_int(a) * number_to_int(b));
        push(m, r);
        number_free(m, a);
        number_free(m, b);
        break;
    case OP_NEG:
        a = pop(m);
        a->sign = -a->sign;
        push(m, a);
        break;
    default:
        m->error_msg = "halt";
        break;
    }
}

/* ------------------------------------------------------------------ */
/* Expression front end: tokenize and compile infix text to bytecode.  */
/* ------------------------------------------------------------------ */

enum tok_kind { TK_NUM = 1, TK_PLUS, TK_MINUS, TK_STAR, TK_LPAR, TK_RPAR,
                TK_NAME, TK_ASSIGN, TK_END };

struct token {
    int kind;
    int value;
    char name;
};

struct compiler {
    const char *src;
    int pos;
    struct token cur;
    struct instruction *out;
    int out_len;
    int out_cap;
    char *error;
};

struct variable {
    char name;
    struct number *value;
    struct variable *next;
};

struct variable *var_list;

static struct variable *var_lookup(char name, int create) {
    struct variable *v;
    for (v = var_list; v; v = v->next)
        if (v->name == name)
            return v;
    if (!create)
        return 0;
    v = (struct variable *)malloc(sizeof(struct variable));
    v->name = name;
    v->value = 0;
    v->next = var_list;
    var_list = v;
    return v;
}

static void next_token(struct compiler *c) {
    char ch;
    while (c->src[c->pos] == ' ')
        c->pos++;
    ch = c->src[c->pos];
    if (!ch) {
        c->cur.kind = TK_END;
        return;
    }
    if (ch >= '0' && ch <= '9') {
        int v;
        v = 0;
        while (c->src[c->pos] >= '0' && c->src[c->pos] <= '9') {
            v = v * 10 + (c->src[c->pos] - '0');
            c->pos++;
        }
        c->cur.kind = TK_NUM;
        c->cur.value = v;
        return;
    }
    if (ch >= 'a' && ch <= 'z') {
        c->cur.kind = TK_NAME;
        c->cur.name = ch;
        c->pos++;
        return;
    }
    c->pos++;
    switch (ch) {
    case '+': c->cur.kind = TK_PLUS; return;
    case '-': c->cur.kind = TK_MINUS; return;
    case '*': c->cur.kind = TK_STAR; return;
    case '(': c->cur.kind = TK_LPAR; return;
    case ')': c->cur.kind = TK_RPAR; return;
    case '=': c->cur.kind = TK_ASSIGN; return;
    default:
        c->error = "bad character";
        c->cur.kind = TK_END;
        return;
    }
}

static void emit(struct compiler *c, int op, int operand) {
    struct instruction *ins;
    if (c->out_len >= c->out_cap) {
        c->error = "program too long";
        return;
    }
    ins = &c->out[c->out_len++];
    ins->op = op;
    ins->operand = operand;
}

static void compile_expr(struct compiler *c);

static void compile_primary(struct compiler *c) {
    struct variable *v;
    if (c->cur.kind == TK_NUM) {
        emit(c, OP_PUSH, c->cur.value);
        next_token(c);
        return;
    }
    if (c->cur.kind == TK_NAME) {
        v = var_lookup(c->cur.name, 0);
        emit(c, OP_PUSH, v && v->value ? number_to_int(v->value) : 0);
        next_token(c);
        return;
    }
    if (c->cur.kind == TK_MINUS) {
        next_token(c);
        compile_primary(c);
        emit(c, OP_NEG, 0);
        return;
    }
    if (c->cur.kind == TK_LPAR) {
        next_token(c);
        compile_expr(c);
        if (c->cur.kind != TK_RPAR) {
            c->error = "missing )";
            return;
        }
        next_token(c);
        return;
    }
    c->error = "expected operand";
}

static void compile_term(struct compiler *c) {
    compile_primary(c);
    while (c->cur.kind == TK_STAR && !c->error) {
        next_token(c);
        compile_primary(c);
        emit(c, OP_MUL, 0);
    }
}

static void compile_expr(struct compiler *c) {
    int negate;
    compile_term(c);
    while ((c->cur.kind == TK_PLUS || c->cur.kind == TK_MINUS) && !c->error) {
        negate = c->cur.kind == TK_MINUS;
        next_token(c);
        compile_term(c);
        if (negate)
            emit(c, OP_NEG, 0);
        emit(c, OP_ADD, 0);
    }
}

static struct instruction code_buffer[128];

static int compile_line(const char *line, struct compiler *c) {
    c->src = line;
    c->pos = 0;
    c->out = code_buffer;
    c->out_len = 0;
    c->out_cap = CODE_MAX;
    c->error = 0;
    next_token(c);
    compile_expr(c);
    emit(c, OP_HALT, 0);
    return c->error == 0;
}

/* ------------------------------------------------------------------ */
/* Nested evaluation: a child machine shares the free list by linking  */
/* to its parent (the paper-style many-pointer-field record in use).   */
/* ------------------------------------------------------------------ */

static int eval_line(const char *line, struct machine *parent) {
    struct machine child;
    struct compiler comp;
    struct number *result;
    int value;

    if (!compile_line(line, &comp)) {
        printf("error: %s in \"%s\"\n", comp.error, line);
        return 0;
    }
    child.sp = 0;
    child.pc = 0;
    child.code = comp.out;
    child.code_len = comp.out_len;
    child.free_numbers = parent ? parent->free_numbers : 0;
    child.error_msg = 0;
    child.parent = parent;
    child.alloc_fn = parent ? parent->alloc_fn : number_alloc;
    child.trace_fn = parent ? parent->trace_fn : trace_noop;
    while (!child.error_msg && child.pc < child.code_len)
        step(&child);
    if (child.sp <= 0)
        return 0;
    result = pop(&child);
    value = number_to_int(result);
    if (parent) /* hand the free list back */
        parent->free_numbers = child.free_numbers;
    return value;
}

static void assign_var(char name, int value, struct machine *m) {
    struct variable *v;
    v = var_lookup(name, 1);
    if (!v->value)
        v->value = m->alloc_fn(m);
    number_from_int(v->value, value);
}

static struct instruction program[8];

static void load_program(struct machine *m) {
    program[0].op = OP_PUSH; program[0].operand = 6;
    program[1].op = OP_PUSH; program[1].operand = 7;
    program[2].op = OP_MUL;  program[2].operand = 0;
    program[3].op = OP_PUSH; program[3].operand = 4;
    program[4].op = OP_ADD;  program[4].operand = 0;
    program[5].op = OP_NEG;  program[5].operand = 0;
    program[6].op = OP_HALT; program[6].operand = 0;
    m->code = program;
    m->code_len = 7;
    m->pc = 0;
}

int main(void) {
    struct number *result;
    int v;
    vm.sp = 0;
    vm.free_numbers = 0;
    vm.error_msg = 0;
    vm.parent = 0;
    vm.alloc_fn = number_alloc;
    vm.trace_fn = trace_noop;
    load_program(&vm);
    while (!vm.error_msg && vm.pc < vm.code_len)
        step(&vm);
    result = pop(&vm);
    printf("result: %d\n", number_to_int(result));

    vm.error_msg = 0;
    var_list = 0;
    v = eval_line("2 * (3 + 4)", &vm);
    printf("2 * (3 + 4) = %d\n", v);
    assign_var('x', v, &vm);
    v = eval_line("x * x - 1", &vm);
    printf("x * x - 1 = %d\n", v);
    v = eval_line("((1 + 2) * (3 + 4))", &vm);
    printf("nested = %d\n", v);
    return 0;
}
