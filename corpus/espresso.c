/*
 * espresso -- two-level logic minimizer core.
 * Corpus program (with structure casting): cubes are bit vectors stored
 * as unsigned word arrays; the cover structure views its cube storage
 * both as raw words and as typed cube records, and set operations walk
 * word pointers across cube boundaries.
 */

enum { WORDS_PER_CUBE = 4, MAX_CUBES = 32 };

struct cube {
    unsigned w[4];
};

struct cube_attr {        /* attribute view: diverges after first word */
    unsigned first_word;
    int is_prime;
    int is_covered;
};

struct cover {
    unsigned *storage;    /* heap: MAX_CUBES * WORDS_PER_CUBE words */
    int count;
    int word_capacity;
};

struct cover onset;
struct cover offset_cover;

static void cover_init(struct cover *c) {
    c->storage = (unsigned *)malloc(MAX_CUBES * WORDS_PER_CUBE *
                                    sizeof(unsigned));
    c->count = 0;
    c->word_capacity = MAX_CUBES * WORDS_PER_CUBE;
}

static struct cube *cover_cube(struct cover *c, int i) {
    /* recover a typed cube from the word storage */
    return (struct cube *)&c->storage[i * WORDS_PER_CUBE];
}

static struct cube *cover_push(struct cover *c) {
    struct cube *q;
    q = cover_cube(c, c->count);
    c->count++;
    q->w[0] = 0;
    q->w[1] = 0;
    q->w[2] = 0;
    q->w[3] = 0;
    return q;
}

static void cube_set(struct cube *q, int bit) {
    q->w[bit / 32] |= 1u << (bit % 32);
}

static int cube_contains(const struct cube *a, const struct cube *b) {
    int i;
    for (i = 0; i < WORDS_PER_CUBE; i++)
        if ((b->w[i] & ~a->w[i]) != 0)
            return 0;
    return 1;
}

static void cube_or(struct cube *dst, const struct cube *a,
                    const struct cube *b) {
    int i;
    for (i = 0; i < WORDS_PER_CUBE; i++)
        dst->w[i] = a->w[i] | b->w[i];
}

static int popcount_word(unsigned w) {
    int n;
    n = 0;
    while (w) {
        n += (int)(w & 1u);
        w >>= 1;
    }
    return n;
}

static int cover_literals(const struct cover *c) {
    /* walk the raw word storage straight through all cubes */
    const unsigned *p;
    const unsigned *end;
    int total;
    p = c->storage;
    end = c->storage + c->count * WORDS_PER_CUBE;
    total = 0;
    while (p < end) {
        total += popcount_word(*p);
        p++;
    }
    return total;
}

static int expand_cube(struct cover *c, int i) {
    /* mark primality through the attribute view of the cube */
    struct cube_attr *attr;
    struct cube *q;
    struct cube *other;
    int j, grew;
    q = cover_cube(c, i);
    attr = (struct cube_attr *)q;   /* mismatched record view */
    grew = 0;
    for (j = 0; j < c->count; j++) {
        if (j == i)
            continue;
        other = cover_cube(c, j);
        if (cube_contains(q, other)) {
            cube_or(q, q, other);
            grew = 1;
        }
    }
    attr->is_prime = grew ? 0 : 1;
    return grew;
}

/* ------------------------------------------------------------------ */
/* Cover-level operations: containment reduction, intersection,        */
/* and a weight-ordered cube list built from the attribute views.      */
/* ------------------------------------------------------------------ */

static void cube_and(struct cube *dst, const struct cube *a,
                     const struct cube *b) {
    int i;
    for (i = 0; i < WORDS_PER_CUBE; i++)
        dst->w[i] = a->w[i] & b->w[i];
}

static int cube_empty(const struct cube *q) {
    int i;
    for (i = 0; i < WORDS_PER_CUBE; i++)
        if (q->w[i])
            return 0;
    return 1;
}

static int cube_weight(const struct cube *q) {
    int i, total;
    total = 0;
    for (i = 0; i < WORDS_PER_CUBE; i++)
        total += popcount_word(q->w[i]);
    return total;
}

/* Remove cubes contained in some other cube (single containment pass). */
static int irredundant(struct cover *c) {
    int i, j, removed, w;
    struct cube *a;
    struct cube *b;
    removed = 0;
    for (i = 0; i < c->count; i++) {
        a = cover_cube(c, i);
        if (cube_empty(a))
            continue;
        for (j = 0; j < c->count; j++) {
            if (i == j)
                continue;
            b = cover_cube(c, j);
            if (cube_empty(b))
                continue;
            if (cube_contains(b, a) && j < i) {
                for (w = 0; w < WORDS_PER_CUBE; w++)
                    a->w[w] = 0; /* tombstone */
                removed++;
                break;
            }
        }
    }
    return removed;
}

/* Intersect two covers pairwise into a third. */
static void cover_intersect(struct cover *out, const struct cover *a,
                            const struct cover *b) {
    int i, j;
    struct cube *q;
    struct cube tmp;
    for (i = 0; i < a->count; i++)
        for (j = 0; j < b->count; j++) {
            cube_and(&tmp, cover_cube((struct cover *)a, i),
                     cover_cube((struct cover *)b, j));
            if (cube_empty(&tmp))
                continue;
            if (out->count >= MAX_CUBES)
                return;
            q = cover_push(out);
            *q = tmp;
        }
}

/* A weight-ordered list threading heap nodes over attribute views. */
struct weight_node {
    struct cube_attr *attr;   /* the cube, through its attribute view */
    int weight;
    struct weight_node *next;
};

struct weight_node *weight_list;

static void weight_insert(struct cover *c, int i) {
    struct weight_node *n;
    struct weight_node **link;
    n = (struct weight_node *)malloc(sizeof(struct weight_node));
    n->attr = (struct cube_attr *)cover_cube(c, i);
    n->weight = cube_weight(cover_cube(c, i));
    link = &weight_list;
    while (*link && (*link)->weight >= n->weight)
        link = &(*link)->next;
    n->next = *link;
    *link = n;
}

static int weight_rank(void) {
    const struct weight_node *n;
    int rank, prev;
    rank = 0;
    prev = 1 << 30;
    for (n = weight_list; n; n = n->next) {
        if (n->weight > prev)
            return -1; /* ordering violated */
        prev = n->weight;
        rank++;
    }
    return rank;
}

int main(void) {
    struct cube *q;
    struct cover meet;
    int i, lits, grew, removed, rank;

    cover_init(&onset);
    cover_init(&offset_cover);

    q = cover_push(&onset);
    cube_set(q, 0);
    cube_set(q, 5);
    q = cover_push(&onset);
    cube_set(q, 0);
    q = cover_push(&onset);
    cube_set(q, 9);
    cube_set(q, 70);

    grew = 0;
    for (i = 0; i < onset.count; i++)
        grew += expand_cube(&onset, i);

    lits = cover_literals(&onset);
    printf("cubes %d literals %d expanded %d\n", onset.count, lits, grew);

    removed = irredundant(&onset);
    printf("containment removed %d\n", removed);

    q = cover_push(&offset_cover);
    cube_set(q, 0);
    cube_set(q, 9);
    cover_init(&meet);
    cover_intersect(&meet, &onset, &offset_cover);
    printf("intersection cubes %d literals %d\n", meet.count,
           cover_literals(&meet));

    weight_list = 0;
    for (i = 0; i < onset.count; i++)
        weight_insert(&onset, i);
    rank = weight_rank();
    printf("weight ranking %d (prime flags:", rank);
    for (i = 0; i < onset.count; i++)
        printf(" %d", ((struct cube_attr *)cover_cube(&onset, i))->is_prime);
    printf(")\n");
    return 0;
}
