/*
 * flex -- scanner-generator table packer.
 * Corpus program (with structure casting): DFA transition tables are
 * built as typed rows, then serialized into a flat int image whose
 * regions are recovered by casting; buffer descriptors are viewed
 * through a shorter "handle" type when passed around.
 */

enum { N_STATES = 16, N_SYMS = 8, IMAGE_WORDS = 512 };

struct dfa_row {
    int defstate;
    int base;
    int *transitions;     /* heap: N_SYMS entries */
};

struct buf_handle {       /* shorter view of buf_desc: shares prefix */
    char *start;
    char *cursor;
};

struct buf_desc {
    char *start;
    char *cursor;
    char *limit;
    int line_no;
    struct buf_desc *chain;
};

struct dfa_row rows[16];
int image[512];
int image_used;
struct buf_desc main_buf;
struct buf_desc include_buf;
char storage_a[64];
char storage_b[64];

static void row_init(struct dfa_row *r, int def) {
    int s;
    r->defstate = def;
    r->base = 0;
    r->transitions = (int *)malloc(N_SYMS * sizeof(int));
    for (s = 0; s < N_SYMS; s++)
        r->transitions[s] = (def + s) % N_STATES;
}

static int pack_rows(void) {
    int i, s;
    struct dfa_row *r;
    image_used = 0;
    for (i = 0; i < N_STATES; i++) {
        r = &rows[i];
        r->base = image_used;
        image[image_used++] = r->defstate;
        for (s = 0; s < N_SYMS; s++)
            image[image_used++] = r->transitions[s];
    }
    return image_used;
}

/* Recover a row view from the packed image: int* cast to a record whose
 * first field lines up with the packed defstate word. */
struct packed_row {
    int defstate;
    int trans[8];
};

static int lookup_packed(int state, int sym) {
    const struct packed_row *pr;
    pr = (const struct packed_row *)&image[rows[state].base];
    return pr->trans[sym];
}

static void buf_init(struct buf_desc *b, char *storage, int len) {
    b->start = storage;
    b->cursor = storage;
    b->limit = storage + len;
    b->line_no = 1;
    b->chain = 0;
}

static int handle_getc(struct buf_handle *h) {
    /* callers pass buf_desc* cast down to buf_handle* */
    if (!*h->cursor)
        return -1;
    return (int)*h->cursor++;
}

static int scan(struct buf_desc *b) {
    struct buf_handle *h;
    int state, ch, count;
    h = (struct buf_handle *)b;   /* shorten the view */
    state = 0;
    count = 0;
    for (;;) {
        ch = handle_getc(h);
        if (ch < 0)
            break;
        state = lookup_packed(state, ch % N_SYMS);
        count++;
        if (ch == '\n')
            b->line_no++;
    }
    return count;
}

static void fill(char *dst, const char *src) {
    strcpy(dst, src);
}

/* ------------------------------------------------------------------ */
/* Symbol equivalence classes, as flex computes before table packing.  */
/* ------------------------------------------------------------------ */

int equiv_class[8];

static int compute_equiv_classes(void) {
    int classes, s, a, b, same;
    classes = 0;
    for (a = 0; a < N_SYMS; a++)
        equiv_class[a] = -1;
    for (a = 0; a < N_SYMS; a++) {
        if (equiv_class[a] >= 0)
            continue;
        equiv_class[a] = classes;
        for (b = a + 1; b < N_SYMS; b++) {
            if (equiv_class[b] >= 0)
                continue;
            same = 1;
            for (s = 0; s < N_STATES; s++)
                if (rows[s].transitions[a] != rows[s].transitions[b]) {
                    same = 0;
                    break;
                }
            if (same)
                equiv_class[b] = classes;
        }
        classes++;
    }
    return classes;
}

/* ------------------------------------------------------------------ */
/* Default-compression: rows that mostly agree share a default row and */
/* store only their exceptions, chained through heap records.          */
/* ------------------------------------------------------------------ */

struct exception_entry {
    int symbol;
    int target;
    struct exception_entry *next;
};

struct compressed_row {
    int default_row;
    struct exception_entry *exceptions;
};

struct compressed_row crows[16];

static int row_distance(const struct dfa_row *a, const struct dfa_row *b) {
    int s, d;
    d = 0;
    for (s = 0; s < N_SYMS; s++)
        if (a->transitions[s] != b->transitions[s])
            d++;
    return d;
}

static void compress_rows(void) {
    int i, j, best, best_d, d, s;
    struct exception_entry *e;
    for (i = 0; i < N_STATES; i++) {
        best = -1;
        best_d = N_SYMS;
        for (j = 0; j < i; j++) {
            d = row_distance(&rows[i], &rows[j]);
            if (d < best_d) {
                best_d = d;
                best = j;
            }
        }
        crows[i].default_row = best;
        crows[i].exceptions = 0;
        if (best < 0)
            continue;
        for (s = 0; s < N_SYMS; s++) {
            if (rows[i].transitions[s] == rows[best].transitions[s])
                continue;
            e = (struct exception_entry *)malloc(
                sizeof(struct exception_entry));
            e->symbol = s;
            e->target = rows[i].transitions[s];
            e->next = crows[i].exceptions;
            crows[i].exceptions = e;
        }
    }
}

static int lookup_compressed(int state, int sym) {
    const struct exception_entry *e;
    while (state >= 0) {
        for (e = crows[state].exceptions; e; e = e->next)
            if (e->symbol == sym)
                return e->target;
        if (crows[state].default_row < 0)
            return rows[state].transitions[sym];
        state = crows[state].default_row;
    }
    return 0;
}

static int scan_compressed(struct buf_desc *b) {
    struct buf_handle *h;
    int state, ch, count;
    h = (struct buf_handle *)b;
    state = 0;
    count = 0;
    for (;;) {
        ch = handle_getc(h);
        if (ch < 0)
            break;
        state = lookup_compressed(state, equiv_class[ch % N_SYMS]);
        count++;
    }
    return count;
}

int main(void) {
    int i, words, consumed, classes, consumed2;
    for (i = 0; i < N_STATES; i++)
        row_init(&rows[i], (i * 3) % N_STATES);
    words = pack_rows();
    fill(storage_a, "token stream one\n");
    fill(storage_b, "second include file\n");
    buf_init(&main_buf, storage_a, 64);
    buf_init(&include_buf, storage_b, 64);
    main_buf.chain = &include_buf;
    consumed = scan(&main_buf);
    consumed += scan(main_buf.chain);
    printf("packed %d words, consumed %d chars, line %d\n", words, consumed,
           main_buf.line_no);

    classes = compute_equiv_classes();
    compress_rows();
    buf_init(&main_buf, storage_a, 64);
    consumed2 = scan_compressed(&main_buf);
    printf("%d equivalence classes, compressed scan %d chars\n", classes,
           consumed2);
    for (i = 0; i < 4; i++)
        printf("row %d default %d first trans %d\n", i,
               crows[i].default_row, lookup_compressed(i, 0));
    return 0;
}
