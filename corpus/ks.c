/*
 * ks -- Kernighan-Schweikert-style graph partitioning.
 * Corpus program (no structure casting): adjacency lists on the heap,
 * doubly linked candidate lists, pointer-heavy swap logic.
 */

enum { MAX_NODES = 128 };

struct edge {
    struct vertex *to;
    int weight;
    struct edge *next;
};

struct vertex {
    int id;
    int partition;
    int gain;
    int locked;
    struct edge *adj;
    struct vertex *prev_cand;
    struct vertex *next_cand;
};

struct vertex nodes[128];
int node_count;
struct vertex *cand_head[2];

static void add_edge(struct vertex *a, struct vertex *b, int w) {
    struct edge *e;
    e = (struct edge *)malloc(sizeof(struct edge));
    e->to = b;
    e->weight = w;
    e->next = a->adj;
    a->adj = e;
}

static void link_both(int ia, int ib, int w) {
    add_edge(&nodes[ia], &nodes[ib], w);
    add_edge(&nodes[ib], &nodes[ia], w);
}

static void cand_insert(struct vertex *v) {
    struct vertex **head;
    head = &cand_head[v->partition];
    v->prev_cand = 0;
    v->next_cand = *head;
    if (*head)
        (*head)->prev_cand = v;
    *head = v;
}

static void cand_remove(struct vertex *v) {
    if (v->prev_cand)
        v->prev_cand->next_cand = v->next_cand;
    else
        cand_head[v->partition] = v->next_cand;
    if (v->next_cand)
        v->next_cand->prev_cand = v->prev_cand;
    v->prev_cand = 0;
    v->next_cand = 0;
}

static void compute_gain(struct vertex *v) {
    const struct edge *e;
    int internal, external;
    internal = 0;
    external = 0;
    for (e = v->adj; e; e = e->next) {
        if (e->to->partition == v->partition)
            internal += e->weight;
        else
            external += e->weight;
    }
    v->gain = external - internal;
}

static struct vertex *best_candidate(int side) {
    struct vertex *v;
    struct vertex *best;
    best = 0;
    for (v = cand_head[side]; v; v = v->next_cand) {
        if (v->locked)
            continue;
        if (!best || v->gain > best->gain)
            best = v;
    }
    return best;
}

static int cut_size(void) {
    int i, cut;
    const struct edge *e;
    cut = 0;
    for (i = 0; i < node_count; i++)
        for (e = nodes[i].adj; e; e = e->next)
            if (nodes[i].partition != e->to->partition)
                cut += e->weight;
    return cut / 2;
}

static void one_pass(void) {
    struct vertex *a;
    struct vertex *b;
    int i;
    for (i = 0; i < node_count; i++)
        compute_gain(&nodes[i]);
    a = best_candidate(0);
    b = best_candidate(1);
    while (a && b) {
        if (a->gain + b->gain <= 0)
            break;
        cand_remove(a);
        cand_remove(b);
        a->partition = 1;
        b->partition = 0;
        a->locked = 1;
        b->locked = 1;
        cand_insert(a);
        cand_insert(b);
        for (i = 0; i < node_count; i++)
            compute_gain(&nodes[i]);
        a = best_candidate(0);
        b = best_candidate(1);
    }
}

/* ------------------------------------------------------------------ */
/* Multi-pass driver: records swaps in a history log so the best       */
/* prefix of each pass can be kept and the rest rolled back.           */
/* ------------------------------------------------------------------ */

struct move {
    struct vertex *a;
    struct vertex *b;
    int gain_at_move;
    int cut_after;
};

struct move history[64];
int n_moves;

static void record_move(struct vertex *a, struct vertex *b) {
    struct move *m;
    if (n_moves >= 64)
        return;
    m = &history[n_moves++];
    m->a = a;
    m->b = b;
    m->gain_at_move = a->gain + b->gain;
    m->cut_after = cut_size();
}

static void undo_move(const struct move *m) {
    int tmp;
    tmp = m->a->partition;
    m->a->partition = m->b->partition;
    m->b->partition = tmp;
}

static int best_prefix(void) {
    int i, best, best_cut;
    best = -1;
    best_cut = 1 << 30;
    for (i = 0; i < n_moves; i++)
        if (history[i].cut_after < best_cut) {
            best_cut = history[i].cut_after;
            best = i;
        }
    return best;
}

static void rollback_after(int keep) {
    int i;
    for (i = n_moves - 1; i > keep; i--)
        undo_move(&history[i]);
    n_moves = keep + 1;
}

static void unlock_all(void) {
    int i;
    for (i = 0; i < node_count; i++)
        nodes[i].locked = 0;
}

static int improved_pass(void) {
    struct vertex *a;
    struct vertex *b;
    int before, keep, i;
    before = cut_size();
    n_moves = 0;
    unlock_all();
    for (i = 0; i < node_count; i++)
        compute_gain(&nodes[i]);
    for (;;) {
        a = best_candidate(0);
        b = best_candidate(1);
        if (!a || !b)
            break;
        cand_remove(a);
        cand_remove(b);
        a->partition = 1;
        b->partition = 0;
        a->locked = 1;
        b->locked = 1;
        cand_insert(a);
        cand_insert(b);
        record_move(a, b);
        for (i = 0; i < node_count; i++)
            compute_gain(&nodes[i]);
        if (n_moves >= node_count / 2)
            break;
    }
    keep = best_prefix();
    rollback_after(keep);
    return before - cut_size();
}

int main(void) {
    int i, pass, delta;
    node_count = 16;
    for (i = 0; i < node_count; i++) {
        nodes[i].id = i;
        nodes[i].partition = i % 2;
        nodes[i].adj = 0;
        nodes[i].locked = 0;
    }
    for (i = 0; i + 1 < node_count; i++)
        link_both(i, i + 1, 1 + i % 3);
    link_both(0, node_count - 1, 2);
    link_both(3, 11, 5);
    for (i = 0; i < node_count; i++)
        cand_insert(&nodes[i]);
    printf("initial cut %d\n", cut_size());
    one_pass();
    printf("after greedy pass %d\n", cut_size());
    for (pass = 0; pass < 3; pass++) {
        delta = improved_pass();
        printf("pass %d improved by %d (cut %d, kept %d moves)\n", pass,
               delta, cut_size(), n_moves);
        if (delta <= 0)
            break;
    }
    return 0;
}
