/*
 * simulator -- discrete-event simulator with first-member "inheritance".
 * Corpus program (with structure casting): every event type embeds a
 * struct event as its first member; the queue holds base pointers and
 * handlers cast back to the concrete type (the classic offset-0 idiom,
 * the paper's Problem 1).
 */

enum { EV_ARRIVE = 1, EV_DEPART = 2, EV_TIMER = 3 };

struct event {
    int time;
    int kind;
    struct event *next;
};

struct arrive_event {
    struct event base;
    int customer_id;
    struct station *where;
};

struct depart_event {
    struct event base;
    int customer_id;
    int service_time;
};

struct timer_event {
    struct event base;
    void (*callback)(struct event *self);
    int period;
};

struct station {
    int id;
    int queue_len;
    int busy;
};

struct event *event_queue;
int now;
int served;
struct station stations[4];

static void enqueue(struct event *e) {
    struct event **link;
    link = &event_queue;
    while (*link && (*link)->time <= e->time)
        link = &(*link)->next;
    e->next = *link;
    *link = e;
}

static struct event *dequeue(void) {
    struct event *e;
    e = event_queue;
    if (e)
        event_queue = e->next;
    return e;
}

static void schedule_arrive(int t, int id, struct station *st) {
    struct arrive_event *a;
    a = (struct arrive_event *)malloc(sizeof(struct arrive_event));
    a->base.time = t;
    a->base.kind = EV_ARRIVE;
    a->base.next = 0;
    a->customer_id = id;
    a->where = st;
    enqueue((struct event *)a);  /* up-cast: base is the first member */
}

static void schedule_depart(int t, int id, int svc) {
    struct depart_event *d;
    d = (struct depart_event *)malloc(sizeof(struct depart_event));
    d->base.time = t;
    d->base.kind = EV_DEPART;
    d->base.next = 0;
    d->customer_id = id;
    d->service_time = svc;
    enqueue((struct event *)d);
}

static void timer_tick(struct event *self) {
    struct timer_event *t;
    t = (struct timer_event *)self;  /* down-cast */
    if (now < 40) {
        t->base.time = now + t->period;
        enqueue(self);
    }
}

static void schedule_timer(int t0, int period) {
    struct timer_event *t;
    t = (struct timer_event *)malloc(sizeof(struct timer_event));
    t->base.time = t0;
    t->base.kind = EV_TIMER;
    t->base.next = 0;
    t->callback = timer_tick;
    t->period = period;
    enqueue((struct event *)t);
}

static void handle_arrive(struct event *e) {
    struct arrive_event *a;
    a = (struct arrive_event *)e;  /* down-cast */
    a->where->queue_len++;
    if (!a->where->busy) {
        a->where->busy = 1;
        schedule_depart(now + 3, a->customer_id, 3);
    }
}

static void handle_depart(struct event *e) {
    struct depart_event *d;
    d = (struct depart_event *)e;
    served++;
    stations[d->customer_id % 4].busy = 0;
    if (stations[d->customer_id % 4].queue_len > 0)
        stations[d->customer_id % 4].queue_len--;
}

static void record_event(const struct event *e);
static int pool_acquire(struct resource_pool *p, struct event *who);
static void pool_release(struct resource_pool *p);
struct resource_pool;

static void run(void) {
    struct event *e;
    struct timer_event *t;
    for (;;) {
        e = dequeue();
        if (!e)
            break;
        now = e->time;
        if (now > 50)
            break;
        record_event(e);
        if (e->kind == EV_ARRIVE) {
            handle_arrive(e);
        } else if (e->kind == EV_DEPART) {
            handle_depart(e);
        } else {
            t = (struct timer_event *)e;
            t->callback(e);
        }
    }
}

/* ------------------------------------------------------------------ */
/* Statistics: per-kind event counters collected through the base view */
/* and a histogram of inter-event gaps.                                */
/* ------------------------------------------------------------------ */

struct stat_bucket {
    int kind;
    int count;
    int total_time;
    struct stat_bucket *next;
};

struct stat_bucket *stat_list;
int gap_histogram[8];
int last_event_time;

static struct stat_bucket *stat_for(int kind) {
    struct stat_bucket *b;
    for (b = stat_list; b; b = b->next)
        if (b->kind == kind)
            return b;
    b = (struct stat_bucket *)malloc(sizeof(struct stat_bucket));
    b->kind = kind;
    b->count = 0;
    b->total_time = 0;
    b->next = stat_list;
    stat_list = b;
    return b;
}

static void record_event(const struct event *e) {
    struct stat_bucket *b;
    int gap;
    b = stat_for(e->kind);
    b->count++;
    b->total_time += e->time;
    gap = e->time - last_event_time;
    if (gap < 0)
        gap = 0;
    if (gap > 7)
        gap = 7;
    gap_histogram[gap]++;
    last_event_time = e->time;
}

static void report_stats(void) {
    const struct stat_bucket *b;
    int i;
    for (b = stat_list; b; b = b->next)
        printf("kind %d: %d events, mean time %d\n", b->kind, b->count,
               b->count ? b->total_time / b->count : 0);
    printf("gap histogram:");
    for (i = 0; i < 8; i++)
        printf(" %d", gap_histogram[i]);
    printf("\n");
}

/* ------------------------------------------------------------------ */
/* A resource pool: departing customers release a token; arrivals wait */
/* in a queue of base-event pointers when the pool is empty.           */
/* ------------------------------------------------------------------ */

struct resource_pool {
    int tokens;
    struct event *waiters[16];
    int n_waiters;
    int grants;
};

struct resource_pool teller_pool;

static int pool_acquire(struct resource_pool *p, struct event *who) {
    if (p->tokens > 0) {
        p->tokens--;
        p->grants++;
        return 1;
    }
    if (p->n_waiters < 16)
        p->waiters[p->n_waiters++] = who;
    return 0;
}

static void pool_release(struct resource_pool *p) {
    struct event *e;
    if (p->n_waiters > 0) {
        e = p->waiters[--p->n_waiters];
        e->time = now + 1;   /* reschedule the waiter */
        enqueue(e);
        p->grants++;
        return;
    }
    p->tokens++;
}

int main(void) {
    int i;
    now = 0;
    served = 0;
    event_queue = 0;
    stat_list = 0;
    last_event_time = 0;
    teller_pool.tokens = 2;
    teller_pool.n_waiters = 0;
    teller_pool.grants = 0;
    for (i = 0; i < 4; i++) {
        stations[i].id = i;
        stations[i].queue_len = 0;
        stations[i].busy = 0;
    }
    for (i = 0; i < 8; i++)
        schedule_arrive(i * 2, i, &stations[i % 4]);
    schedule_timer(5, 7);
    run();
    printf("served %d customers by time %d\n", served, now);
    report_stats();

    /* drive the pool directly with freshly built arrivals */
    {
        struct arrive_event *probe;
        int granted;
        granted = 0;
        for (i = 0; i < 5; i++) {
            probe = (struct arrive_event *)malloc(
                sizeof(struct arrive_event));
            probe->base.time = now + i;
            probe->base.kind = EV_ARRIVE;
            probe->base.next = 0;
            probe->customer_id = i;
            probe->where = &stations[i % 4];
            granted += pool_acquire(&teller_pool, (struct event *)probe);
        }
        pool_release(&teller_pool);
        pool_release(&teller_pool);
        printf("pool grants %d waiters %d\n", teller_pool.grants,
               teller_pool.n_waiters);
        (void)granted;
    }
    return 0;
}
