/*
 * lex315 -- tiny scanner generator core.
 * Corpus program (with structure casting): NFA nodes of several variants
 * share a prefix; the free list recycles nodes of any variant as raw
 * cells, and transition tables are built from casted node views.
 */

extern char *strdup();

enum { NK_CHAR = 1, NK_STAR = 2, NK_ALT = 3, NK_ACCEPT = 4, MAX_STATES = 64 };

struct node_common {
    int kind;
    int state_no;
};

struct char_node {
    int kind;
    int state_no;
    int symbol;
    struct node_common *out;
};

struct star_node {
    int kind;
    int state_no;
    struct node_common *body;
    struct node_common *out;
};

struct alt_node {
    int kind;
    int state_no;
    struct node_common *left;
    struct node_common *right;
};

struct free_cell {
    struct free_cell *next_free;
};

struct free_cell *free_list;
struct node_common *states[64];
int n_states;
char *rule_names[8];
int n_rules;

static void *cell_alloc(void) {
    struct free_cell *c;
    if (free_list) {
        c = free_list;
        free_list = c->next_free;
        return (void *)c;
    }
    return malloc(32);
}

static void cell_free(void *p) {
    struct free_cell *c;
    c = (struct free_cell *)p;  /* any node recycles as a free cell */
    c->next_free = free_list;
    free_list = c;
}

static struct node_common *register_state(struct node_common *n) {
    n->state_no = n_states;
    states[n_states++] = n;
    return n;
}

static struct node_common *mk_char(int symbol) {
    struct char_node *n;
    n = (struct char_node *)cell_alloc();
    n->kind = NK_CHAR;
    n->symbol = symbol;
    n->out = 0;
    return register_state((struct node_common *)n);
}

static struct node_common *mk_star(struct node_common *body) {
    struct star_node *n;
    n = (struct star_node *)cell_alloc();
    n->kind = NK_STAR;
    n->body = body;
    n->out = 0;
    return register_state((struct node_common *)n);
}

static struct node_common *mk_alt(struct node_common *l,
                                  struct node_common *r) {
    struct alt_node *n;
    n = (struct alt_node *)cell_alloc();
    n->kind = NK_ALT;
    n->left = l;
    n->right = r;
    return register_state((struct node_common *)n);
}

static void connect(struct node_common *from, struct node_common *to) {
    struct char_node *c;
    struct star_node *s;
    if (from->kind == NK_CHAR) {
        c = (struct char_node *)from;
        c->out = to;
    } else if (from->kind == NK_STAR) {
        s = (struct star_node *)from;
        s->out = to;
    }
}

static int count_reachable(struct node_common *root, int *seen) {
    const struct char_node *c;
    const struct star_node *s;
    const struct alt_node *a;
    int total;
    if (!root || seen[root->state_no])
        return 0;
    seen[root->state_no] = 1;
    total = 1;
    if (root->kind == NK_CHAR) {
        c = (const struct char_node *)root;
        total += count_reachable(c->out, seen);
    } else if (root->kind == NK_STAR) {
        s = (const struct star_node *)root;
        total += count_reachable(s->body, seen);
        total += count_reachable(s->out, seen);
    } else if (root->kind == NK_ALT) {
        a = (const struct alt_node *)root;
        total += count_reachable(a->left, seen);
        total += count_reachable(a->right, seen);
    }
    return total;
}

/* ------------------------------------------------------------------ */
/* Move set: collect, for a symbol, the nodes reachable in one step.   */
/* The traversal dispatches on the common prefix and downcasts.        */
/* ------------------------------------------------------------------ */

struct node_set {
    struct node_common *members[64];
    int count;
};

static void set_add(struct node_set *set, struct node_common *n) {
    int i;
    if (!n)
        return;
    for (i = 0; i < set->count; i++)
        if (set->members[i] == n)
            return;
    if (set->count < 64)
        set->members[set->count++] = n;
}

static void closure_into(struct node_set *set, struct node_common *n) {
    const struct star_node *s;
    const struct alt_node *a;
    if (!n)
        return;
    set_add(set, n);
    if (n->kind == NK_STAR) {
        s = (const struct star_node *)n;
        closure_into(set, s->body);
        closure_into(set, s->out);
    } else if (n->kind == NK_ALT) {
        a = (const struct alt_node *)n;
        closure_into(set, a->left);
        closure_into(set, a->right);
    }
}

static void move_on(const struct node_set *from, int symbol,
                    struct node_set *to) {
    const struct char_node *c;
    int i;
    to->count = 0;
    for (i = 0; i < from->count; i++) {
        if (from->members[i]->kind != NK_CHAR)
            continue;
        c = (const struct char_node *)from->members[i];
        if (c->symbol == symbol)
            closure_into(to, c->out);
    }
}

int main(void) {
    struct node_common *a;
    struct node_common *b;
    struct node_common *ab;
    struct node_common *star;
    int seen[64];
    int i, n;

    free_list = 0;
    n_states = 0;
    n_rules = 0;

    a = mk_char('a');
    b = mk_char('b');
    ab = mk_alt(a, b);
    star = mk_star(ab);
    connect(a, star);
    connect(b, star);
    rule_names[n_rules++] = strdup("ident");

    for (i = 0; i < 64; i++)
        seen[i] = 0;
    n = count_reachable(star, seen);
    printf("%d states, %d reachable, rule %s\n", n_states, n, rule_names[0]);

    {
        struct node_set start, next;
        start.count = 0;
        closure_into(&start, star);
        printf("closure size %d\n", start.count);
        move_on(&start, 'a', &next);
        printf("move on 'a': %d nodes\n", next.count);
        move_on(&start, 'b', &next);
        printf("move on 'b': %d nodes\n", next.count);
    }

    cell_free((void *)a);
    a = mk_char('c'); /* reuses the freed cell */
    printf("recycled state %d kind %d\n", a->state_no, a->kind);
    return 0;
}
