/*
 * compress -- LZW-style compressor over an in-memory buffer.
 * Corpus program (no structure casting): code table as an array of
 * structs with chain pointers, input/output cursors.
 */

enum { TABLE_SIZE = 1024, FIRST_CODE = 256 };

struct code_entry {
    int prefix_code;
    int suffix_char;
    struct code_entry *chain;
};

struct cursor {
    const char *data;
    int pos;
    int limit;
};

struct code_entry table[1024];
struct code_entry *hash_heads[256];
int next_code;

int out_codes[2048];
int out_count;

static void table_reset(void) {
    int i;
    next_code = FIRST_CODE;
    for (i = 0; i < 256; i++)
        hash_heads[i] = 0;
}

static int table_find(int prefix, int suffix) {
    const struct code_entry *e;
    int h;
    h = (prefix * 31 + suffix) & 255;
    for (e = hash_heads[h]; e; e = e->chain) {
        if (e->prefix_code == prefix && e->suffix_char == suffix)
            return (int)(e - table);
    }
    return -1;
}

static int table_add(int prefix, int suffix) {
    struct code_entry *e;
    int h;
    if (next_code >= TABLE_SIZE)
        return -1;
    e = &table[next_code];
    e->prefix_code = prefix;
    e->suffix_char = suffix;
    h = (prefix * 31 + suffix) & 255;
    e->chain = hash_heads[h];
    hash_heads[h] = e;
    return next_code++;
}

static int cursor_next(struct cursor *c) {
    if (c->pos >= c->limit)
        return -1;
    return (int)c->data[c->pos++];
}

static void emit_code(int code) {
    out_codes[out_count++] = code;
}

static void do_compress(struct cursor *in) {
    int current;
    int ch;
    int found;
    current = cursor_next(in);
    if (current < 0)
        return;
    for (;;) {
        ch = cursor_next(in);
        if (ch < 0)
            break;
        found = table_find(current, ch);
        if (found >= 0) {
            current = found;
        } else {
            emit_code(current);
            table_add(current, ch);
            current = ch;
        }
    }
    emit_code(current);
}

/* ------------------------------------------------------------------ */
/* Decompressor: rebuilds strings from codes using the prefix chains.  */
/* ------------------------------------------------------------------ */

char out_text[4096];
int out_text_len;
int decode_stack[64];

static int code_first_char(int code) {
    while (code >= FIRST_CODE)
        code = table[code].prefix_code;
    return code;
}

static int expand_code(int code, int *stack, int cap) {
    int depth;
    depth = 0;
    while (code >= FIRST_CODE && depth < cap) {
        stack[depth++] = table[code].suffix_char;
        code = table[code].prefix_code;
    }
    if (depth < cap)
        stack[depth++] = code;
    return depth;
}

static void emit_text(int ch) {
    if (out_text_len + 1 < 4096)
        out_text[out_text_len++] = (char)ch;
    out_text[out_text_len] = 0;
}

static void do_decompress(const int *codes, int count) {
    int i, j, depth, prev, cur;
    out_text_len = 0;
    if (count <= 0)
        return;
    prev = codes[0];
    depth = expand_code(prev, decode_stack, 64);
    for (j = depth - 1; j >= 0; j--)
        emit_text(decode_stack[j]);
    for (i = 1; i < count; i++) {
        cur = codes[i];
        if (cur < next_code) {
            depth = expand_code(cur, decode_stack, 64);
        } else {
            /* the KwKwK case: cur == next_code */
            depth = expand_code(prev, decode_stack, 64);
            if (depth < 64) {
                int k;
                for (k = depth; k > 0; k--)
                    decode_stack[k] = decode_stack[k - 1];
                decode_stack[0] = code_first_char(prev);
                depth++;
            }
        }
        for (j = depth - 1; j >= 0; j--)
            emit_text(decode_stack[j]);
        table_add(prev, code_first_char(cur));
        prev = cur;
    }
}

static int verify_roundtrip(const char *original) {
    int i;
    for (i = 0; original[i] && i < out_text_len; i++)
        if (original[i] != out_text[i])
            return 0;
    return original[i] == 0;
}

static const char *sample =
    "abababababab the quick brown fox jumps over the lazy dog "
    "abababababab the quick brown fox jumps over the lazy dog";

int main(void) {
    struct cursor in;
    int i;
    table_reset();
    out_count = 0;
    in.data = sample;
    in.pos = 0;
    in.limit = strlen(sample);
    do_compress(&in);
    printf("input %d bytes -> %d codes\n", in.limit, out_count);
    for (i = 0; i < out_count && i < 8; i++)
        printf("code[%d] = %d\n", i, out_codes[i]);

    table_reset();
    do_decompress(out_codes, out_count);
    printf("decoded %d bytes, roundtrip %s\n", out_text_len,
           verify_roundtrip(sample) ? "ok" : "FAILED");
    return 0;
}
