/*
 * less -- pager buffer manager.
 * Corpus program (with structure casting): file data lives in fixed-size
 * block buffers managed through several *unrelated* record views (LRU
 * header, position index, raw bytes) layered over the same storage by
 * casting. The views share no useful common initial sequence beyond the
 * first field, which is the paper's worst case for Collapse-on-Cast.
 */

enum { BLOCK_SIZE = 64, N_BLOCKS = 8 };

struct lru_view {               /* view 1: recency chain */
    struct lru_view *newer;
    struct lru_view *older;
    int blockno;
};

struct index_view {             /* view 2: line index; diverges at field 1 */
    struct index_view *newer;
    int first_line;
    int last_line;
    int blockno;
};

struct block {                  /* the real storage record */
    struct block *newer;
    struct block *older;
    int blockno;
    int first_line;
    char bytes[64];
};

struct block blocks[8];
struct block *mru;
struct block *lru_tail;
int next_blockno;

static void chain_init(void) {
    int i;
    mru = 0;
    lru_tail = 0;
    for (i = 0; i < N_BLOCKS; i++) {
        blocks[i].newer = 0;
        blocks[i].older = 0;
        blocks[i].blockno = -1;
    }
}

static void touch(struct block *b) {
    struct lru_view *v;
    struct lru_view *head;
    /* unlink and move to front, manipulating the LRU view */
    v = (struct lru_view *)b;
    if (v->newer)
        v->newer->older = v->older;
    if (v->older)
        v->older->newer = v->newer;
    if (lru_tail == (struct block *)v && v->newer)
        lru_tail = (struct block *)v->newer;
    head = (struct lru_view *)mru;
    v->newer = 0;
    v->older = head;
    if (head)
        head->newer = v;
    mru = (struct block *)v;
    if (!lru_tail)
        lru_tail = mru;
}

static struct block *evict(void) {
    struct lru_view *v;
    struct block *b;
    b = lru_tail;
    if (!b)
        return &blocks[0];
    v = (struct lru_view *)b;
    if (v->newer) {
        v->newer->older = 0;
        lru_tail = (struct block *)v->newer;
    } else {
        mru = 0;
        lru_tail = 0;
    }
    v->newer = 0;
    v->older = 0;
    return b;
}

static struct block *get_block(int blockno) {
    struct block *b;
    int i;
    for (i = 0; i < N_BLOCKS; i++) {
        if (blocks[i].blockno == blockno) {
            touch(&blocks[i]);
            return &blocks[i];
        }
    }
    b = evict();
    b->blockno = blockno;
    b->first_line = blockno * 4;
    for (i = 0; i < BLOCK_SIZE; i++)
        b->bytes[i] = (char)('a' + (blockno + i) % 26);
    touch(b);
    return b;
}

static int line_of_offset(struct block *b, int offset) {
    const struct index_view *ix;
    /* consult the (mismatched) index view of the same storage */
    ix = (const struct index_view *)b;
    return ix->first_line + offset / 16;
}

static char *peek_bytes(struct block *b, int offset) {
    char *raw;
    raw = (char *)b;  /* the raw-bytes view */
    return raw + sizeof(struct block) - BLOCK_SIZE + offset;
}

/* ------------------------------------------------------------------ */
/* Position index: remembers where each line starts, as less(1) does.  */
/* The mark table stores block views through the index_view type.      */
/* ------------------------------------------------------------------ */

struct mark {
    char letter;
    struct index_view *where;   /* a block, seen through the index view */
    int offset;
};

struct mark marks[8];
int n_marks;

static void set_mark(char letter, struct block *b, int offset) {
    struct mark *m;
    int i;
    for (i = 0; i < n_marks; i++)
        if (marks[i].letter == letter) {
            marks[i].where = (struct index_view *)b;
            marks[i].offset = offset;
            return;
        }
    if (n_marks >= 8)
        return;
    m = &marks[n_marks++];
    m->letter = letter;
    m->where = (struct index_view *)b;   /* store the mismatched view */
    m->offset = offset;
}

static struct block *goto_mark(char letter) {
    int i;
    for (i = 0; i < n_marks; i++)
        if (marks[i].letter == letter)
            return (struct block *)marks[i].where;  /* and recover it */
    return 0;
}

/* ------------------------------------------------------------------ */
/* Forward search over the block chain.                                */
/* ------------------------------------------------------------------ */

static int match_at(const char *hay, const char *needle) {
    while (*needle) {
        if (*hay != *needle)
            return 0;
        hay++;
        needle++;
    }
    return 1;
}

static int search_block(struct block *b, const char *pattern, int from) {
    int i;
    for (i = from; i < BLOCK_SIZE; i++)
        if (match_at(&b->bytes[i], pattern))
            return i;
    return -1;
}

static struct block *search_forward(int start_block, const char *pattern,
                                    int *offset_out) {
    struct block *b;
    int blockno, hit;
    for (blockno = start_block; blockno < start_block + 6; blockno++) {
        b = get_block(blockno);
        hit = search_block(b, pattern, 0);
        if (hit >= 0) {
            *offset_out = hit;
            return b;
        }
    }
    *offset_out = -1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Screen repaint: renders a window of bytes from the current block.   */
/* ------------------------------------------------------------------ */

struct screen_state {
    struct block *top_block;
    int top_offset;
    int rows;
    int cols;
    int squeeze_blank;
};

struct screen_state screen;

static void repaint(void) {
    struct block *b;
    const char *raw;
    int row, col, off;
    b = screen.top_block;
    if (!b)
        return;
    off = screen.top_offset;
    for (row = 0; row < screen.rows; row++) {
        for (col = 0; col < screen.cols; col++) {
            if (off >= BLOCK_SIZE) {
                b = get_block(b->blockno + 1);
                off = 0;
            }
            raw = peek_bytes(b, off);
            putchar(*raw);
            off++;
        }
        putchar('\n');
    }
    screen.top_block = b;
}

static void scroll_down(int lines) {
    screen.top_offset += lines * screen.cols;
    while (screen.top_offset >= BLOCK_SIZE) {
        screen.top_offset -= BLOCK_SIZE;
        screen.top_block = get_block(screen.top_block->blockno + 1);
    }
}

int main(void) {
    struct block *b;
    struct block *hit_block;
    char *p;
    int i, line, hit_off;

    chain_init();
    next_blockno = 0;
    for (i = 0; i < 12; i++) {
        b = get_block(i % 5);
        line = line_of_offset(b, (i * 7) % BLOCK_SIZE);
        p = peek_bytes(b, i % BLOCK_SIZE);
        printf("block %d line %d byte %c\n", b->blockno, line, *p);
    }
    printf("mru block: %d\n", mru ? mru->blockno : -1);

    set_mark('a', get_block(2), 10);
    set_mark('b', get_block(4), 0);
    b = goto_mark('a');
    printf("mark a at block %d\n", b ? b->blockno : -1);

    hit_block = search_forward(0, "def", &hit_off);
    if (hit_block)
        printf("pattern at block %d offset %d\n", hit_block->blockno,
               hit_off);

    screen.top_block = get_block(0);
    screen.top_offset = 0;
    screen.rows = 2;
    screen.cols = 16;
    screen.squeeze_blank = 0;
    repaint();
    scroll_down(3);
    repaint();
    printf("top block now %d\n", screen.top_block->blockno);
    return 0;
}
