/*
 * ratfor -- rational-Fortran-style keyword translator.
 * Corpus program (no structure casting): keyword table, symbol table of
 * heap records, a small token buffer, nested lookup helpers.
 */

enum { SYM_HASH = 64, TOKEN_MAX = 64 };

struct keyword {
    const char *text;
    const char *replacement;
};

struct symbol {
    char *name;
    int kind;
    int uses;
    struct symbol *next;
};

struct token {
    char text[64];
    int len;
    int is_word;
};

struct keyword keywords[8];
struct symbol *sym_table[64];
int sym_count;

static void init_keywords(void) {
    keywords[0].text = "if";
    keywords[0].replacement = "IF(";
    keywords[1].text = "then";
    keywords[1].replacement = ")THEN";
    keywords[2].text = "else";
    keywords[2].replacement = "ELSE";
    keywords[3].text = "while";
    keywords[3].replacement = "DOWHILE(";
    keywords[4].text = "repeat";
    keywords[4].replacement = "CONTINUE";
    keywords[5].text = "until";
    keywords[5].replacement = "IF(.NOT.";
    keywords[6].text = "end";
    keywords[6].replacement = "ENDDO";
    keywords[7].text = "return";
    keywords[7].replacement = "RETURN";
}

static int sym_hash(const char *s) {
    int h;
    h = 5381;
    while (*s) {
        h = h * 33 + *s;
        s++;
    }
    if (h < 0)
        h = -h;
    return h % SYM_HASH;
}

static struct symbol *sym_lookup(const char *name, int create) {
    struct symbol *s;
    int h;
    h = sym_hash(name);
    for (s = sym_table[h]; s; s = s->next)
        if (strcmp(s->name, name) == 0)
            return s;
    if (!create)
        return 0;
    s = (struct symbol *)malloc(sizeof(struct symbol));
    s->name = strdup(name);
    s->kind = 0;
    s->uses = 0;
    s->next = sym_table[h];
    sym_table[h] = s;
    sym_count++;
    return s;
}

static const char *keyword_replacement(const char *word) {
    int i;
    for (i = 0; i < 8; i++)
        if (strcmp(keywords[i].text, word) == 0)
            return keywords[i].replacement;
    return 0;
}

static int next_token(const char *src, int pos, struct token *tok) {
    int i;
    tok->len = 0;
    tok->is_word = 0;
    while (src[pos] == ' ' || src[pos] == '\t')
        pos++;
    if (!src[pos])
        return -1;
    if ((src[pos] >= 'a' && src[pos] <= 'z') ||
        (src[pos] >= 'A' && src[pos] <= 'Z')) {
        tok->is_word = 1;
        i = 0;
        while (src[pos] && ((src[pos] >= 'a' && src[pos] <= 'z') ||
                            (src[pos] >= 'A' && src[pos] <= 'Z') ||
                            (src[pos] >= '0' && src[pos] <= '9'))) {
            if (i + 1 < TOKEN_MAX)
                tok->text[i++] = src[pos];
            pos++;
        }
        tok->text[i] = 0;
        tok->len = i;
        return pos;
    }
    tok->text[0] = src[pos];
    tok->text[1] = 0;
    tok->len = 1;
    return pos + 1;
}

static void translate(const char *src) {
    struct token tok;
    struct symbol *sym;
    const char *repl;
    int pos;
    pos = 0;
    for (;;) {
        pos = next_token(src, pos, &tok);
        if (pos < 0)
            break;
        if (tok.is_word) {
            repl = keyword_replacement(tok.text);
            if (repl) {
                printf("%s", repl);
            } else {
                sym = sym_lookup(tok.text, 1);
                sym->uses++;
                printf("%s", sym->name);
            }
        } else {
            printf("%s", tok.text);
        }
        printf(" ");
    }
    printf("\n");
}

/* ------------------------------------------------------------------ */
/* Output buffer with indentation and a block-keyword stack.           */
/* ------------------------------------------------------------------ */

struct out_buffer {
    char data[512];
    int len;
    int indent;
    struct out_buffer *overflow;  /* chained buffers */
};

struct out_buffer primary_out;

static struct out_buffer *buffer_for(struct out_buffer *b, int needed) {
    while (b->len + needed >= 512) {
        if (!b->overflow) {
            b->overflow =
                (struct out_buffer *)malloc(sizeof(struct out_buffer));
            b->overflow->len = 0;
            b->overflow->indent = b->indent;
            b->overflow->overflow = 0;
        }
        b = b->overflow;
    }
    return b;
}

static void out_str(const char *text) {
    struct out_buffer *b;
    int n, i;
    n = strlen(text);
    b = buffer_for(&primary_out, n + primary_out.indent + 1);
    for (i = 0; i < b->indent; i++)
        b->data[b->len++] = ' ';
    for (i = 0; i < n; i++)
        b->data[b->len++] = text[i];
    b->data[b->len] = 0;
}

const char *block_stack[16];
int block_depth;

static void push_block(const char *kw) {
    if (block_depth < 16)
        block_stack[block_depth++] = kw;
    primary_out.indent += 2;
}

static const char *pop_block(void) {
    if (primary_out.indent >= 2)
        primary_out.indent -= 2;
    if (block_depth > 0)
        return block_stack[--block_depth];
    return "";
}

static void translate_buffered(const char *src) {
    struct token tok;
    const char *repl;
    int pos;
    pos = 0;
    for (;;) {
        pos = next_token(src, pos, &tok);
        if (pos < 0)
            break;
        if (!tok.is_word) {
            out_str(tok.text);
            continue;
        }
        repl = keyword_replacement(tok.text);
        if (!repl) {
            out_str(tok.text);
            continue;
        }
        if (strcmp(tok.text, "while") == 0 || strcmp(tok.text, "if") == 0)
            push_block(tok.text);
        else if (strcmp(tok.text, "end") == 0)
            pop_block();
        out_str(repl);
    }
}

static int buffered_total(void) {
    const struct out_buffer *b;
    int total;
    total = 0;
    for (b = &primary_out; b; b = b->overflow)
        total += b->len;
    return total;
}

int main(void) {
    init_keywords();
    sym_count = 0;
    primary_out.len = 0;
    primary_out.indent = 0;
    primary_out.overflow = 0;
    block_depth = 0;
    translate("while x < n repeat x = x + delta end");
    translate("if done then return else x = x * 2 end");
    printf("%d symbols\n", sym_count);

    translate_buffered("while count < max repeat body end");
    translate_buffered("if flag then while inner repeat step end end");
    printf("buffered %d bytes, depth %d, indent %d\n", buffered_total(),
           block_depth, primary_out.indent);
    return 0;
}
