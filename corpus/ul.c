/*
 * ul -- underline/overstrike filter in the style of BSD ul(1).
 * Corpus program (no structure casting): mode tables with function
 * pointers, per-character state structs, buffered output lines.
 */

enum { LINE_MAX = 256 };

enum mode_kind { MODE_NORMAL, MODE_UNDERLINE, MODE_BOLD };

struct charcell {
    int ch;
    int mode;
};

struct outline {
    struct charcell cells[256];
    int len;
    struct outline *next;
};

struct mode_handler {
    int kind;
    void (*emit)(struct charcell *cell);
    const char *name;
};

struct outline *line_head;
struct outline *line_tail;
struct outline *cur_line;
int col;

static void emit_normal(struct charcell *cell) {
    putchar(cell->ch);
}

static void emit_underline(struct charcell *cell) {
    putchar('_');
    putchar(8); /* backspace */
    putchar(cell->ch);
}

static void emit_bold(struct charcell *cell) {
    putchar(cell->ch);
    putchar(8);
    putchar(cell->ch);
}

struct mode_handler handlers[3];

static void init_handlers(void) {
    handlers[0].kind = MODE_NORMAL;
    handlers[0].emit = emit_normal;
    handlers[0].name = "normal";
    handlers[1].kind = MODE_UNDERLINE;
    handlers[1].emit = emit_underline;
    handlers[1].name = "underline";
    handlers[2].kind = MODE_BOLD;
    handlers[2].emit = emit_bold;
    handlers[2].name = "bold";
}

static struct outline *new_line(void) {
    struct outline *l;
    l = (struct outline *)malloc(sizeof(struct outline));
    l->len = 0;
    l->next = 0;
    if (line_tail)
        line_tail->next = l;
    else
        line_head = l;
    line_tail = l;
    return l;
}

static void put_cell(int ch, int mode) {
    struct charcell *cell;
    if (!cur_line || cur_line->len >= LINE_MAX)
        cur_line = new_line();
    cell = &cur_line->cells[cur_line->len];
    cell->ch = ch;
    cell->mode = mode;
    cur_line->len++;
}

static void feed(const char *text) {
    int mode;
    const char *p;
    mode = MODE_NORMAL;
    for (p = text; *p; p++) {
        if (*p == '_' && p[1] == 8) {
            mode = MODE_UNDERLINE;
            p++;
            continue;
        }
        if (*p == '\n') {
            cur_line = new_line();
            continue;
        }
        put_cell(*p, mode);
        mode = MODE_NORMAL;
    }
}

static void flush_lines(void) {
    struct outline *l;
    struct charcell *cell;
    struct mode_handler *h;
    int i;
    for (l = line_head; l; l = l->next) {
        for (i = 0; i < l->len; i++) {
            cell = &l->cells[i];
            h = &handlers[cell->mode];
            h->emit(cell);
        }
        putchar('\n');
    }
}

/* ------------------------------------------------------------------ */
/* Tab expansion and per-mode statistics.                              */
/* ------------------------------------------------------------------ */

struct mode_stats {
    int counts[3];
    int lines;
    struct outline *longest;
};

struct mode_stats stats;

static void expand_tabs(struct outline *l, int tabstop) {
    struct charcell expanded[256];
    int out, i, pad;
    out = 0;
    for (i = 0; i < l->len && out < LINE_MAX; i++) {
        if (l->cells[i].ch == '\t') {
            pad = tabstop - (out % tabstop);
            while (pad-- > 0 && out < LINE_MAX) {
                expanded[out].ch = ' ';
                expanded[out].mode = MODE_NORMAL;
                out++;
            }
            continue;
        }
        expanded[out++] = l->cells[i];
    }
    for (i = 0; i < out; i++)
        l->cells[i] = expanded[i];
    l->len = out;
}

static void collect_stats(void) {
    struct outline *l;
    int i;
    stats.counts[0] = 0;
    stats.counts[1] = 0;
    stats.counts[2] = 0;
    stats.lines = 0;
    stats.longest = 0;
    for (l = line_head; l; l = l->next) {
        stats.lines++;
        if (!stats.longest || l->len > stats.longest->len)
            stats.longest = l;
        for (i = 0; i < l->len; i++)
            stats.counts[l->cells[i].mode]++;
    }
}

static void report_stats(void) {
    const struct mode_handler *h;
    int m;
    for (m = 0; m < 3; m++) {
        h = &handlers[m];
        printf("%s: %d cells\n", h->name, stats.counts[m]);
    }
    printf("%d lines, longest %d cells\n", stats.lines,
           stats.longest ? stats.longest->len : 0);
}

int main(void) {
    struct outline *l;
    init_handlers();
    cur_line = 0;
    line_head = 0;
    line_tail = 0;
    feed("plain text\n");
    feed("emphasized words here\n");
    feed("col1\tcol2\tend\n");
    for (l = line_head; l; l = l->next)
        expand_tabs(l, 8);
    flush_lines();
    collect_stats();
    report_stats();
    return 0;
}
