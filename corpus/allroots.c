/*
 * allroots -- find all roots of a polynomial by recursive deflation.
 * Corpus program (no structure casting): plain structs, arrays of structs,
 * pointers into arrays, and simple dynamic allocation.
 */

enum { MAX_DEGREE = 32, MAX_ROOTS = 64 };

struct poly {
    int degree;
    double coef[33];
};

struct root {
    double re;
    double im;
    int multiplicity;
};

struct poly work_poly;
struct poly deriv_poly;
struct root roots[64];
int num_roots;

double eps;
int max_iters;

static double fabs_local(double x) { return x < 0.0 ? -x : x; }

static void poly_set(struct poly *dst, const double *c, int degree) {
    int i;
    dst->degree = degree;
    for (i = 0; i <= degree; i++)
        dst->coef[i] = c[i];
}

static double poly_eval(const struct poly *p, double x) {
    double acc;
    int i;
    acc = 0.0;
    for (i = p->degree; i >= 0; i--)
        acc = acc * x + p->coef[i];
    return acc;
}

static void poly_derive(const struct poly *src, struct poly *dst) {
    int i;
    dst->degree = src->degree > 0 ? src->degree - 1 : 0;
    for (i = 1; i <= src->degree; i++)
        dst->coef[i - 1] = src->coef[i] * (double)i;
    if (src->degree == 0)
        dst->coef[0] = 0.0;
}

static double newton(const struct poly *p, const struct poly *dp,
                     double guess) {
    double x, fx, dfx;
    int iter;
    x = guess;
    for (iter = 0; iter < max_iters; iter++) {
        fx = poly_eval(p, x);
        dfx = poly_eval(dp, x);
        if (fabs_local(dfx) < eps)
            break;
        x = x - fx / dfx;
        if (fabs_local(fx) < eps)
            break;
    }
    return x;
}

static void deflate(struct poly *p, double r) {
    /* synthetic division by (x - r) */
    double carry, tmp;
    int i;
    carry = p->coef[p->degree];
    for (i = p->degree - 1; i >= 0; i--) {
        tmp = p->coef[i];
        p->coef[i] = carry;
        carry = tmp + carry * r;
    }
    p->degree = p->degree - 1;
}

static struct root *record_root(double r) {
    struct root *slot;
    int i;
    for (i = 0; i < num_roots; i++) {
        slot = &roots[i];
        if (fabs_local(slot->re - r) < eps && slot->im == 0.0) {
            slot->multiplicity++;
            return slot;
        }
    }
    slot = &roots[num_roots];
    num_roots++;
    slot->re = r;
    slot->im = 0.0;
    slot->multiplicity = 1;
    return slot;
}

static void find_all(struct poly *p) {
    double r;
    struct root *last;
    while (p->degree > 0) {
        poly_derive(p, &deriv_poly);
        r = newton(p, &deriv_poly, 1.0);
        last = record_root(r);
        if (last->multiplicity > MAX_DEGREE)
            break;
        deflate(p, r);
    }
}

/* ------------------------------------------------------------------ */
/* Quality checks: residual evaluation at each root and bracketing.    */
/* ------------------------------------------------------------------ */

struct residual {
    const struct root *at;
    double value;
};

struct residual residuals[64];
int n_residuals;

static void check_residuals(const struct poly *p) {
    int i;
    struct residual *r;
    n_residuals = 0;
    for (i = 0; i < num_roots; i++) {
        r = &residuals[n_residuals++];
        r->at = &roots[i];
        r->value = poly_eval(p, roots[i].re);
    }
}

static double worst_residual(void) {
    int i;
    double worst;
    worst = 0.0;
    for (i = 0; i < n_residuals; i++)
        if (fabs_local(residuals[i].value) > worst)
            worst = fabs_local(residuals[i].value);
    return worst;
}

static int bracket_root(const struct poly *p, double lo, double hi,
                        double *out) {
    double mid, flo, fmid;
    int iter;
    flo = poly_eval(p, lo);
    if (flo * poly_eval(p, hi) > 0.0)
        return 0;
    for (iter = 0; iter < 60; iter++) {
        mid = (lo + hi) / 2.0;
        fmid = poly_eval(p, mid);
        if (fabs_local(fmid) < eps)
            break;
        if (flo * fmid <= 0.0) {
            hi = mid;
        } else {
            lo = mid;
            flo = fmid;
        }
    }
    *out = (lo + hi) / 2.0;
    return 1;
}

static void report(void) {
    int i;
    const struct root *r;
    for (i = 0; i < num_roots; i++) {
        r = &roots[i];
        printf("root %d: %f (x%d)\n", i, r->re, r->multiplicity);
    }
}

int main(void) {
    double c[33];
    int i;
    eps = 0.000001;
    max_iters = 40;
    for (i = 0; i <= 32; i++)
        c[i] = 0.0;
    c[0] = -6.0;
    c[1] = 11.0;
    c[2] = -6.0;
    c[3] = 1.0;
    poly_set(&work_poly, c, 3);
    num_roots = 0;
    {
        struct poly original;
        double bracketed;
        original = work_poly; /* keep a pristine copy for the checks */
        find_all(&work_poly);
        report();
        check_residuals(&original);
        printf("worst residual %f\n", worst_residual());
        if (bracket_root(&original, 0.5, 1.5, &bracketed))
            printf("bracketed root near %f\n", bracketed);
    }
    return 0;
}
