//===--- casting_audit.cpp - Find type-punned dereferences ----------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small tool built on the public API: for a C file (a corpus program by
/// default, or a path given on the command line), report every dereference
/// whose pointer may target an object of a different type than the
/// pointer's declared pointee -- the places where the paper's casting
/// machinery is actually needed. This is the "programming tool" use case
/// the paper argues portability matters for.
///
/// Run: ./build/examples/casting_audit [file.c]
///
//===----------------------------------------------------------------------===//

#include "pta/Frontend.h"
#include "workload/Corpus.h"

#include "ctypes/Compat.h"

#include <cstdio>
#include <set>

using namespace spa;

int main(int argc, char **argv) {
  std::string Source;
  std::string Name;
  DiagnosticEngine Diags;
  std::unique_ptr<CompiledProgram> Program;

  if (argc > 1) {
    Name = argv[1];
    Program = CompiledProgram::fromFile(Name, Diags);
  } else {
    for (const CorpusEntry &E : corpusManifest())
      if (E.Name == "simulator") {
        Name = E.Name;
        if (!loadCorpusSource(E, Source)) {
          std::fprintf(stderr, "missing corpus; set SPA_CORPUS_DIR\n");
          return 1;
        }
        Program = CompiledProgram::fromSource(Source, Diags);
      }
  }
  if (!Program) {
    std::fprintf(stderr, "cannot analyze %s:\n%s", Name.c_str(),
                 Diags.formatAll().c_str());
    return 1;
  }

  AnalysisOptions Opts;
  Opts.Model = ModelKind::CommonInitialSeq;
  Analysis A(Program->Prog, Opts);
  A.run();

  const NormProgram &Prog = Program->Prog;
  const TypeTable &Types = Prog.Types;

  std::printf("== casting audit of %s (Common Initial Sequence) ==\n\n",
              Name.c_str());

  size_t Flagged = 0, Sites = 0;
  for (const DerefSite &Site : Prog.DerefSites) {
    ++Sites;
    TypeId Declared = Types.canonical(Site.DeclPointeeTy);
    bool Reported = false;
    std::set<ObjectId> Seen;
    for (NodeId Target : A.solver().derefTargets(Site)) {
      ObjectId Obj = A.model().nodes().objectOf(Target);
      if (!Seen.insert(Obj).second)
        continue;
      TypeId ObjTy = Types.canonical(
          Types.stripArrays(Types.unqualified(Prog.object(Obj).Ty)));
      // A target whose whole-object type is compatible with the declared
      // pointee is fine; so is one whose *leaf* there matches. Anything
      // else is a type-punned access worth auditing.
      if (areCompatible(Types, Declared, ObjTy))
        continue;
      if (Types.isRecord(ObjTy) && Types.isRecord(Declared)) {
        unsigned Cis = commonInitialSeqLen(Types, Types.node(Declared).Record,
                                           Types.node(ObjTy).Record);
        if (Cis > 0)
          continue; // related record types: the CIS instance handles them
      }
      if (!Reported) {
        std::printf("line %u: *(%s) may actually reference %s",
                    Site.Loc.Line,
                    Types.toString(Site.DeclPointeeTy, Prog.Strings).c_str(),
                    Prog.objectName(Obj).c_str());
        Reported = true;
        ++Flagged;
      } else {
        std::printf(", %s", Prog.objectName(Obj).c_str());
      }
    }
    if (Reported)
      std::printf("\n");
  }

  std::printf("\n%zu of %zu dereference sites touch objects of unrelated "
              "types.\n",
              Flagged, Sites);
  return 0;
}
