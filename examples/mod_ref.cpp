//===--- mod_ref.cpp - A downstream client: per-function MOD sets ---------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper motivates field-sensitive points-to analysis by the precision
/// of *subsequent* analyses. This example builds one such client -- the
/// classic MOD problem (which locations may each function modify through
/// stores) -- on top of the public API, and contrasts the MOD sets
/// produced with the Collapse-Always and Common-Initial-Sequence
/// instances.
///
/// Run: ./build/examples/mod_ref
///
//===----------------------------------------------------------------------===//

#include "pta/Frontend.h"

#include <cstdio>
#include <map>
#include <set>

using namespace spa;

static const char *Source = R"(
struct config {
  int *verbosity;
  int *log_level;
  char *log_path;
};

struct stats {
  int hits;
  int misses;
};

struct config cfg;
struct stats counters;
int verbosity_storage;
int level_storage;

void set_verbosity(int v) {
  *cfg.verbosity = v;       /* writes only verbosity_storage */
}

void set_level(int l) {
  *cfg.log_level = l;       /* writes only level_storage */
}

void bump(struct stats *s) {
  s->hits = s->hits + 1;    /* writes only counters.hits */
}

int main(void) {
  cfg.verbosity = &verbosity_storage;
  cfg.log_level = &level_storage;
  set_verbosity(2);
  set_level(7);
  bump(&counters);
  return 0;
}
)";

/// Computes, for each defined function, the set of locations its stores
/// may modify (printable names), using one solved analysis.
static std::map<std::string, std::set<std::string>>
computeModSets(Analysis &A, const NormProgram &Prog) {
  std::map<std::string, std::set<std::string>> Mod;
  for (const NormStmt &S : Prog.Stmts) {
    if (S.Op != NormOp::Store || !S.Owner.isValid())
      continue;
    std::string Fn(Prog.Strings.text(Prog.func(S.Owner).Name));
    for (NodeId Target : A.solver().pointsTo(A.solver().normalizeObj(S.Dst)))
      Mod[Fn].insert(nodeToString(A.solver(), Target));
  }
  return Mod;
}

int main() {
  DiagnosticEngine Diags;
  auto Program = CompiledProgram::fromSource(Source, Diags);
  if (!Program) {
    std::fprintf(stderr, "%s", Diags.formatAll().c_str());
    return 1;
  }

  std::printf("== mod_ref: per-function MOD sets as a downstream client "
              "==\n");
  for (ModelKind Kind :
       {ModelKind::CollapseAlways, ModelKind::CommonInitialSeq}) {
    AnalysisOptions Opts;
    Opts.Model = Kind;
    Analysis A(Program->Prog, Opts);
    A.run();
    auto Mod = computeModSets(A, Program->Prog);

    std::printf("\n-- %s --\n", modelKindName(Kind));
    for (const auto &[Fn, Locs] : Mod) {
      std::printf("  MOD(%s) = {", Fn.c_str());
      bool First = true;
      for (const std::string &L : Locs) {
        std::printf("%s%s", First ? "" : ", ", L.c_str());
        First = false;
      }
      std::printf("}\n");
    }
  }

  std::printf("\nWith collapsed structures, set_verbosity and set_level "
              "appear to write the\nsame locations (any field of cfg's "
              "targets), so a compiler could not reorder\nor parallelize "
              "them; the field-sensitive MOD sets are disjoint.\n");
  return 0;
}
