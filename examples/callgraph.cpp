//===--- callgraph.cpp - Resolved call graph as a client ------------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the program's call graph from a solved analysis: direct calls
/// are syntactic, indirect calls are resolved through the function
/// pointer's points-to set (the solver's on-the-fly call graph, exposed
/// through calleesOf). Run on a corpus program or a file argument:
///
///   ./build/examples/callgraph [file.c]
///
//===----------------------------------------------------------------------===//

#include "pta/Frontend.h"
#include "workload/Corpus.h"

#include <cstdio>
#include <map>
#include <set>

using namespace spa;

int main(int argc, char **argv) {
  DiagnosticEngine Diags;
  std::unique_ptr<CompiledProgram> Program;
  std::string Name;

  if (argc > 1) {
    Name = argv[1];
    Program = CompiledProgram::fromFile(Name, Diags);
  } else {
    for (const CorpusEntry &E : corpusManifest())
      if (E.Name == "ul") { // function-pointer dispatch table
        Name = E.Name;
        std::string Source;
        if (!loadCorpusSource(E, Source)) {
          std::fprintf(stderr, "missing corpus; set SPA_CORPUS_DIR\n");
          return 1;
        }
        Program = CompiledProgram::fromSource(Source, Diags);
      }
  }
  if (!Program) {
    std::fprintf(stderr, "cannot analyze %s:\n%s", Name.c_str(),
                 Diags.formatAll().c_str());
    return 1;
  }

  AnalysisOptions Opts;
  Opts.Model = ModelKind::CommonInitialSeq;
  Analysis A(Program->Prog, Opts);
  A.run();

  const NormProgram &Prog = Program->Prog;
  std::map<std::string, std::set<std::string>> Graph;
  std::map<std::string, bool> ViaPointer;

  for (const NormStmt &S : Prog.Stmts) {
    if (S.Op != NormOp::Call)
      continue;
    std::string Caller =
        S.Owner.isValid()
            ? std::string(Prog.Strings.text(Prog.func(S.Owner).Name))
            : "<global-init>";
    for (FuncId Callee : A.solver().calleesOf(S)) {
      std::string Target(Prog.Strings.text(Prog.func(Callee).Name));
      Graph[Caller].insert(Target);
      if (!S.DirectCallee.isValid())
        ViaPointer[Caller + "->" + Target] = true;
    }
  }

  std::printf("== call graph of %s (indirect edges marked '*') ==\n\n",
              Name.c_str());
  for (const auto &[Caller, Callees] : Graph) {
    std::printf("%s:\n", Caller.c_str());
    for (const std::string &Target : Callees)
      std::printf("  -> %s%s\n", Target.c_str(),
                  ViaPointer.count(Caller + "->" + Target) ? " *" : "");
  }

  size_t Indirect = ViaPointer.size();
  std::printf("\n%zu functions call others; %zu edges resolved through "
              "function pointers.\n",
              Graph.size(), Indirect);
  return 0;
}
