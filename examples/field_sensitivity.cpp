//===--- field_sensitivity.cpp - Why fields matter downstream -------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deeper tour of the framework on a linked-list workload: shows the
/// per-dereference points-to sets each instance computes and the Figure-4
/// metric for this one program, illustrating the paper's motivation (the
/// slicing experiment where collapsed structures poisoned the results).
///
/// Run: ./build/examples/field_sensitivity
///
//===----------------------------------------------------------------------===//

#include "pta/Frontend.h"

#include <cstdio>

static const char *Source = R"(
struct node {
  struct node *next;
  int *payload;
  char *label;
};

struct node pool[8];
int values[8];
char name_a[4];
struct node *head;
int *sum_src;
char *tag_src;

void build(void) {
  int i;
  head = 0;
  for (i = 0; i < 8; i = i + 1) {
    pool[i].next = head;
    pool[i].payload = &values[i];
    pool[i].label = name_a;
    head = &pool[i];
  }
}

void walk(void) {
  struct node *p;
  for (p = head; p; p = p->next) {
    sum_src = p->payload;   /* should see only values */
    tag_src = p->label;     /* should see only name_a */
  }
}

int main(void) { build(); walk(); return 0; }
)";

int main() {
  std::printf("== field_sensitivity: what each instance tells a client ==\n");

  spa::DiagnosticEngine Diags;
  auto Program = spa::CompiledProgram::fromSource(Source, Diags);
  if (!Program) {
    std::fprintf(stderr, "%s", Diags.formatAll().c_str());
    return 1;
  }

  for (spa::ModelKind Kind :
       {spa::ModelKind::CollapseAlways, spa::ModelKind::CollapseOnCast,
        spa::ModelKind::CommonInitialSeq, spa::ModelKind::Offsets}) {
    spa::AnalysisOptions Opts;
    Opts.Model = Kind;
    spa::Analysis A(Program->Prog, Opts);
    A.run();

    std::printf("\n-- %s --\n", spa::modelKindName(Kind));
    for (const char *Var : {"sum_src", "tag_src"}) {
      std::printf("  %-8s -> {", Var);
      bool First = true;
      for (const std::string &T : spa::pointsToSetOf(A.solver(), Var)) {
        std::printf("%s%s", First ? "" : ", ", T.c_str());
        First = false;
      }
      std::printf("}\n");
    }
    spa::DerefMetrics M = A.derefMetrics();
    std::printf("  avg deref set size: %.2f over %zu sites "
                "(max %llu, edges %llu)\n",
                M.AvgSetSize, M.Sites, (unsigned long long)M.MaxSetSize,
                (unsigned long long)A.solver().numEdges());
  }

  std::printf("\nA client like program slicing asks exactly these "
              "questions; with collapsed\nstructures, sum_src appears to "
              "reach the label string and every next link,\nso the slice "
              "would drag in the whole list plumbing.\n");
  return 0;
}
