//===--- quickstart.cpp - Minimal end-to-end use of the library ----------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analyzes the paper's introductory example with all four instances of
/// the framework and prints each instance's points-to set for p, showing
/// the headline difference: collapsing structures reports p -> {x, y},
/// while every field-sensitive instance reports the precise p -> {x}.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "pta/Frontend.h"

#include <cstdio>

static const char *Source = R"(
struct S { int *s1; int *s2; } s;
int x, y, *p;

int main(void) {
  s.s1 = &x;
  s.s2 = &y;
  p = s.s1;
  return 0;
}
)";

int main() {
  std::printf("== spa quickstart: the paper's introductory example ==\n\n");
  std::printf("%s\n", Source);

  spa::DiagnosticEngine Diags;
  auto Program = spa::CompiledProgram::fromSource(Source, Diags);
  if (!Program) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.formatAll().c_str());
    return 1;
  }

  const spa::ModelKind Kinds[] = {
      spa::ModelKind::CollapseAlways,
      spa::ModelKind::CollapseOnCast,
      spa::ModelKind::CommonInitialSeq,
      spa::ModelKind::Offsets,
  };

  for (spa::ModelKind Kind : Kinds) {
    spa::AnalysisOptions Opts;
    Opts.Model = Kind;
    spa::Analysis A(Program->Prog, Opts);
    A.run();

    std::printf("%-24s p -> {", spa::modelKindName(Kind));
    bool First = true;
    for (const std::string &Target : spa::pointsToSetOf(A.solver(), "p")) {
      std::printf("%s%s", First ? "" : ", ", Target.c_str());
      First = false;
    }
    std::printf("}   (edges=%llu, rounds=%u)\n",
                (unsigned long long)A.solver().numEdges(),
                A.solver().runStats().Rounds);
  }

  std::printf("\nCollapse Always merges the fields of s, so p appears to "
              "point to x and y;\nthe field-sensitive instances all report "
              "the precise answer {x}.\n");
  return 0;
}
