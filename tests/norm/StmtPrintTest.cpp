//===--- StmtPrintTest.cpp - Golden strings for the normalized form -------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the printable normalized form (used by spa_cli --stmts and by
/// humans debugging the analysis) to the paper's notation.
///
//===----------------------------------------------------------------------===//

#include "pta/Frontend.h"

#include "gtest/gtest.h"

using namespace spa;

namespace {

std::string dumped(std::string_view Source) {
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.formatAll();
  if (!P)
    return {};
  std::string Out;
  for (const NormStmt &S : P->Prog.Stmts) {
    Out += P->Prog.stmtToString(S);
    Out += '\n';
  }
  return Out;
}

} // namespace

TEST(StmtPrint, AddrOfShowsFieldPathsByName) {
  std::string Text = dumped("struct S { int *a; int *b; } s;"
                            "int **p; void f(void) { p = &s.b; }");
  EXPECT_NE(Text.find("&s.b"), std::string::npos);
}

TEST(StmtPrint, StoreAndLoadUseTheStarNotation) {
  std::string Text = dumped("int x, *p, *q;"
                            "void f(void) { *(&p) = &x; q = *(&p); }");
  EXPECT_NE(Text.find("*"), std::string::npos);
  EXPECT_NE(Text.find("&x"), std::string::npos);
}

TEST(StmtPrint, CastsAreSpelledOnCopies) {
  std::string Text = dumped("struct S { int *a; } s; char *c;"
                            "void f(void) { c = (char *)s.a; }");
  EXPECT_NE(Text.find("(char *)"), std::string::npos);
  EXPECT_NE(Text.find("s.a"), std::string::npos);
}

TEST(StmtPrint, AddrOfDerefShowsAlphaPath) {
  std::string Text = dumped("struct S { int a; int b; } *p; int *q;"
                            "void f(void) { q = &p->b; }");
  EXPECT_NE(Text.find("&((*"), std::string::npos);
  EXPECT_NE(Text.find(".b)"), std::string::npos);
}

TEST(StmtPrint, CallsShowCalleeAndArgs) {
  std::string Text = dumped("int *id(int *v) { return v; }"
                            "int x, *r; void f(void) { r = id(&x); }");
  EXPECT_NE(Text.find("id("), std::string::npos);
  EXPECT_NE(Text.find("= id"), std::string::npos);
}

TEST(StmtPrint, IndirectCallsShowTheFunctionPointer) {
  std::string Text = dumped("void (*fp)(void); void f(void) { fp(); }");
  EXPECT_NE(Text.find("(*fp)()"), std::string::npos);
}

TEST(StmtPrint, PtrArithListsOperands) {
  std::string Text = dumped("int *p, *q; int n;"
                            "void f(void) { q = p + n; }");
  EXPECT_NE(Text.find("arith("), std::string::npos);
  EXPECT_NE(Text.find("p"), std::string::npos);
}

TEST(StmtPrint, LocalsArePrefixedWithTheirFunction) {
  std::string Text = dumped("int x;"
                            "void f(void) { int *local; local = &x; }");
  EXPECT_NE(Text.find("f::local"), std::string::npos);
}
