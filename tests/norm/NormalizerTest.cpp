//===--- NormalizerTest.cpp - Unit tests for AST lowering -----------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks that the normalizer produces exactly the paper's assignment
/// shapes: top-level left-hand sides, explicit temporaries for field
/// stores, allocation-site pseudo-variables, dereference sites, and the
/// conservative PtrArith statements for arithmetic.
///
//===----------------------------------------------------------------------===//

#include "pta/Frontend.h"

#include "gtest/gtest.h"

using namespace spa;

namespace {

std::unique_ptr<CompiledProgram> compileOrDie(std::string_view Source) {
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.formatAll();
  return P;
}

/// Renders every statement, for contains-style assertions.
std::string dump(const NormProgram &Prog) {
  std::string Out;
  for (const NormStmt &S : Prog.Stmts) {
    Out += Prog.stmtToString(S);
    Out += '\n';
  }
  return Out;
}

size_t countKind(const NormProgram &Prog, NormOp Op) {
  return Prog.countOps(Op);
}

} // namespace

TEST(Normalizer, FieldStoreBecomesAddrOfPlusStore) {
  auto P = compileOrDie("struct S { int *a; int *b; } s;"
                        "int x;"
                        "void f(void) { s.b = &x; }");
  const NormProgram &Prog = P->Prog;
  // tmp1 = &x; tmp2 = &s.b; *tmp2 = tmp1;
  EXPECT_EQ(countKind(Prog, NormOp::AddrOf), 2u);
  EXPECT_EQ(countKind(Prog, NormOp::Store), 1u);
  EXPECT_EQ(countKind(Prog, NormOp::Copy), 0u);
  std::string Text = dump(Prog);
  EXPECT_NE(Text.find("&s.b"), std::string::npos);
  EXPECT_NE(Text.find("&x"), std::string::npos);
}

TEST(Normalizer, NestedMemberLoadUsesAddrOfDeref) {
  auto P = compileOrDie("struct In { int *q; };"
                        "struct Out { struct In in; } *p;"
                        "int *r;"
                        "void f(void) { r = p->in.q; }");
  const NormProgram &Prog = P->Prog;
  // tmp = &((*p).in.q); r = *tmp;
  EXPECT_EQ(countKind(Prog, NormOp::AddrOfDeref), 1u);
  EXPECT_EQ(countKind(Prog, NormOp::Load), 1u);
  std::string Text = dump(Prog);
  EXPECT_NE(Text.find(".in.q"), std::string::npos);
}

TEST(Normalizer, MallocBecomesHeapPseudoVariable) {
  auto P = compileOrDie("struct S { int *a; } *p;"
                        "void f(void) { p = (struct S *)malloc(8); }");
  const NormProgram &Prog = P->Prog;
  bool FoundHeap = false;
  for (const NormObject &Obj : Prog.Objects)
    if (Obj.Kind == ObjectKind::Heap) {
      FoundHeap = true;
      // The pseudo-variable takes the casted-to pointee type.
      EXPECT_TRUE(Prog.Types.isStruct(Prog.Types.unqualified(Obj.Ty)));
    }
  EXPECT_TRUE(FoundHeap);
  EXPECT_EQ(countKind(Prog, NormOp::Call), 0u); // no residual call stmt
}

TEST(Normalizer, UntypedMallocFallsBackToByteBlob) {
  auto P = compileOrDie("void f(void) { int x = malloc(8); }");
  const NormProgram &Prog = P->Prog;
  for (const NormObject &Obj : Prog.Objects)
    if (Obj.Kind == ObjectKind::Heap) {
      EXPECT_TRUE(Prog.Types.isArray(Prog.Types.unqualified(Obj.Ty)));
    }
}

TEST(Normalizer, ArithmeticLowersToPtrArith) {
  auto P = compileOrDie("int *p, *q; int n;"
                        "void f(void) { q = p + n; n = n * 2; }");
  const NormProgram &Prog = P->Prog;
  // Both additions are PtrArith (q = p + n has operands p and n; the pure
  // int multiply keeps only the non-constant operand).
  EXPECT_EQ(countKind(Prog, NormOp::PtrArith), 2u);
}

TEST(Normalizer, NullAssignmentsEmitNothing) {
  auto P = compileOrDie("int *p; void f(void) { p = 0; }");
  EXPECT_EQ(P->Prog.Stmts.size(), 0u);
}

TEST(Normalizer, NullStoreStillCountsAsADereference) {
  auto P = compileOrDie("int **p; void f(void) { *p = 0; }");
  EXPECT_EQ(P->Prog.Stmts.size(), 0u);
  EXPECT_EQ(P->Prog.DerefSites.size(), 1u);
}

TEST(Normalizer, CallsBindArgsAndReturn) {
  auto P = compileOrDie("int *id(int *a) { return a; }"
                        "int x, *r;"
                        "void f(void) { r = id(&x); }");
  const NormProgram &Prog = P->Prog;
  EXPECT_EQ(countKind(Prog, NormOp::Call), 1u);
  FuncId Id = Prog.findFunc(Prog.Strings.intern("id"));
  ASSERT_TRUE(Id.isValid());
  EXPECT_EQ(Prog.func(Id).Params.size(), 1u);
  EXPECT_TRUE(Prog.func(Id).RetObj.isValid());
}

TEST(Normalizer, IndirectCallRecordsACallDerefSite) {
  auto P = compileOrDie("int (*fp)(void);"
                        "void f(void) { fp(); }");
  const NormProgram &Prog = P->Prog;
  ASSERT_EQ(Prog.DerefSites.size(), 1u);
  EXPECT_TRUE(Prog.DerefSites[0].IsCall);
}

TEST(Normalizer, GlobalInitializersAreOwnerless) {
  auto P = compileOrDie("int x; int *p = &x;");
  const NormProgram &Prog = P->Prog;
  ASSERT_GE(Prog.Stmts.size(), 1u);
  for (const NormStmt &S : Prog.Stmts)
    EXPECT_FALSE(S.Owner.isValid());
}

TEST(Normalizer, InitializerListsReachNestedFields) {
  auto P = compileOrDie("int a, b;"
                        "struct In { int *u; int *v; };"
                        "struct Out { struct In in; int *w; };"
                        "struct Out o = {{&a, &b}, &a};");
  std::string Text = dump(P->Prog);
  EXPECT_NE(Text.find("&o.in.u"), std::string::npos);
  EXPECT_NE(Text.find("&o.in.v"), std::string::npos);
  EXPECT_NE(Text.find("&o.w"), std::string::npos);
}

TEST(Normalizer, FlatInitializerFillsAcrossNesting) {
  auto P = compileOrDie("int a, b, c;"
                        "struct In { int *u; int *v; };"
                        "struct Out { struct In in; int *w; };"
                        "struct Out o = {&a, &b, &c};");
  std::string Text = dump(P->Prog);
  EXPECT_NE(Text.find("&o.in.u"), std::string::npos);
  EXPECT_NE(Text.find("&o.in.v"), std::string::npos);
  EXPECT_NE(Text.find("&o.w"), std::string::npos);
}

TEST(Normalizer, StringLiteralsBecomeObjects) {
  auto P = compileOrDie("char *s; void f(void) { s = \"hi\"; }");
  bool Found = false;
  for (const NormObject &Obj : P->Prog.Objects)
    if (Obj.Kind == ObjectKind::StringLit)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Normalizer, CompoundAssignMixesOldAndNew) {
  auto P = compileOrDie("int *p; int n; void f(void) { p += n; }");
  // p += n  =>  tmp = arith(p, n); p = tmp;
  EXPECT_EQ(countKind(P->Prog, NormOp::PtrArith), 1u);
  EXPECT_EQ(countKind(P->Prog, NormOp::Copy), 1u);
}

TEST(Normalizer, StructByValueParameterBindsTheWholeObject) {
  auto P = compileOrDie("struct S { int *a; } g;"
                        "void use(struct S s) { }"
                        "void f(void) { use(g); }");
  // A whole top-level object needs no temp: the call binds g directly
  // (the solver's parameter binding performs the typed resolve).
  EXPECT_EQ(countKind(P->Prog, NormOp::Call), 1u);
  const NormProgram &Prog = P->Prog;
  for (const NormStmt &S : Prog.Stmts)
    if (S.Op == NormOp::Call) {
      ASSERT_EQ(S.Args.size(), 1u);
      EXPECT_EQ(Prog.objectName(S.Args[0]), "g");
    }
}

TEST(Normalizer, DerefSitesRecordDeclaredPointeeTypes) {
  auto P = compileOrDie("struct S { int a; } *p;"
                        "char *c;"
                        "void f(void) { p->a = 1; *c = 'x'; }");
  const NormProgram &Prog = P->Prog;
  ASSERT_EQ(Prog.DerefSites.size(), 2u);
  EXPECT_TRUE(Prog.Types.isStruct(
      Prog.Types.unqualified(Prog.DerefSites[0].DeclPointeeTy)));
  EXPECT_EQ(Prog.Types.kind(
                Prog.Types.unqualified(Prog.DerefSites[1].DeclPointeeTy)),
            TypeKind::Char);
}
