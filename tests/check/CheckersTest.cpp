//===--- CheckersTest.cpp - Golden-finding tests for the checker layer ----===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every checker gets at least one true positive and one clean negative,
/// across all four analysis instances where the finding is model-
/// independent. Findings are keyed on (code, line) so message rewording
/// never breaks a test.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "check/Checkers.h"

#include <set>

using namespace spa;
using namespace spa::test;

namespace {

const ModelKind AllModels[] = {ModelKind::CollapseAlways,
                               ModelKind::CollapseOnCast,
                               ModelKind::CommonInitialSeq, ModelKind::Offsets};

struct Findings {
  DiagnosticEngine Diags;
  CheckReport Report;

  /// (code, line) pairs of non-note findings.
  std::set<std::pair<std::string, unsigned>> codeLines() const {
    std::set<std::pair<std::string, unsigned>> Out;
    for (const Diagnostic &D : Diags.all())
      if (D.Kind != DiagKind::Note && !D.Code.empty())
        Out.insert({D.Code, D.Loc.Line});
    return Out;
  }

  bool hasCode(std::string_view Code) const {
    for (const Diagnostic &D : Diags.all())
      if (D.Code == Code)
        return true;
    return false;
  }
};

Findings check(Solved &S, std::vector<std::string> Ids = {}) {
  Findings F;
  F.Report = runCheckers(*S.A, Ids, F.Diags);
  return F;
}

} // namespace

//===----------------------------------------------------------------------===//
// cast-safety
//===----------------------------------------------------------------------===//

TEST(CastSafety, FlagsStructReadThroughIncompatibleScalar) {
  for (ModelKind Kind : AllModels) {
    auto S = analyze("struct A { int x; int y; } a;"
                     "float *fp; float v;"
                     "void f(void) { fp = (float *)&a; v = *fp; }",
                     Kind);
    Findings F = check(S, {"cast-safety"});
    EXPECT_TRUE(F.hasCode("cast-safety")) << modelKindName(Kind);
  }
}

TEST(CastSafety, PointerToFirstMemberIsAValidView) {
  for (ModelKind Kind : AllModels) {
    auto S = analyze("struct A { int x; int y; } a;"
                     "int *ip; int v;"
                     "void f(void) { ip = (int *)&a; v = *ip; }",
                     Kind);
    Findings F = check(S, {"cast-safety"});
    EXPECT_EQ(F.Report.Findings, 0u) << modelKindName(Kind) << "\n"
                                     << F.Diags.formatAll();
  }
}

TEST(CastSafety, CharViewsAreAlwaysAllowed) {
  auto S = analyze("struct A { int x; int y; } a;"
                   "char *cp; char c;"
                   "void f(void) { cp = (char *)&a; c = *cp; }",
                   ModelKind::CommonInitialSeq);
  Findings F = check(S, {"cast-safety"});
  EXPECT_EQ(F.Report.Findings, 0u) << F.Diags.formatAll();
}

TEST(CastSafety, LargerViewOfSmallerObjectIsTruncation) {
  auto S = analyze("struct Small { int a; } s;"
                   "struct Big { int a; int b; } *bp;"
                   "int v;"
                   "void f(void) { bp = (struct Big *)&s; v = bp->b; }",
                   ModelKind::CommonInitialSeq);
  Findings F = check(S, {"cast-safety"});
  EXPECT_TRUE(F.hasCode("cast-truncation")) << F.Diags.formatAll();
  bool MentionsPastEnd = false;
  for (const Diagnostic &D : F.Diags.all())
    if (D.Message.find("past the end") != std::string::npos)
      MentionsPastEnd = true;
  EXPECT_TRUE(MentionsPastEnd);
}

TEST(CastSafety, SharedPrefixOfEqualSizeIsAccepted) {
  // Different tail types, same size, common initial sequence of one: the
  // CIS rule blesses the prefix and nothing is read past the end.
  auto S = analyze("struct P1 { int a; int b; } x;"
                   "struct P2 { int a; unsigned b; } *p;"
                   "int v;"
                   "void f(void) { p = (struct P2 *)&x; v = p->a; }",
                   ModelKind::CommonInitialSeq);
  Findings F = check(S, {"cast-safety"});
  EXPECT_EQ(F.Report.Findings, 0u) << F.Diags.formatAll();
}

TEST(CastSafety, SolverRecordsAMismatchEventAtTheBadSite) {
  auto S = analyze("struct A { int x; int y; } a;"
                   "float *fp; float v;"
                   "void f(void) { fp = (float *)&a; v = *fp; }",
                   ModelKind::CommonInitialSeq);
  bool AnyMismatch = false;
  for (const SiteEvents &E : S.A->solver().siteEvents())
    AnyMismatch = AnyMismatch || E.Mismatch;
  EXPECT_TRUE(AnyMismatch);
}

//===----------------------------------------------------------------------===//
// null-deref
//===----------------------------------------------------------------------===//

TEST(NullDeref, FlagsUninitializedGlobalPointer) {
  for (ModelKind Kind : AllModels) {
    auto S = analyze("int *g; int v;"
                     "int main(void) { v = *g; return 0; }",
                     Kind);
    Findings F = check(S, {"null-deref"});
    EXPECT_TRUE(F.hasCode("null-deref")) << modelKindName(Kind);
  }
}

TEST(NullDeref, InitializedPointerIsClean) {
  for (ModelKind Kind : AllModels) {
    auto S = analyze("int x; int *p; int v;"
                     "int main(void) { p = &x; v = *p; return 0; }",
                     Kind);
    Findings F = check(S, {"null-deref"});
    EXPECT_EQ(F.Report.Findings, 0u) << modelKindName(Kind) << "\n"
                                     << F.Diags.formatAll();
  }
}

TEST(NullDeref, UncalledFunctionParametersAreSuppressed) {
  // api() is never called, so its parameter is never bound; the empty set
  // is an artifact of dead code, not a null dereference.
  auto S = analyze("int v;"
                   "void api(int *p) { v = *p; }",
                   ModelKind::CommonInitialSeq);
  Findings F = check(S, {"null-deref"});
  EXPECT_EQ(F.Report.Findings, 0u) << F.Diags.formatAll();
}

TEST(NullDeref, CalledFunctionParametersAreNotSuppressed) {
  // Same function, but now called with a null-ish (empty-set) argument.
  auto S = analyze("int v; int *g;"
                   "void api(int *p) { v = *p; }"
                   "int main(void) { api(g); return 0; }",
                   ModelKind::CommonInitialSeq);
  Findings F = check(S, {"null-deref"});
  EXPECT_TRUE(F.hasCode("null-deref")) << F.Diags.formatAll();
}

//===----------------------------------------------------------------------===//
// use-after-free
//===----------------------------------------------------------------------===//

TEST(UseAfterFree, FlagsDerefOfFreedBlock) {
  for (ModelKind Kind : AllModels) {
    auto S = analyze("int v;"
                     "void f(void) {"
                     "  int *d;"
                     "  d = (int *)malloc(8);"
                     "  free(d);"
                     "  v = *d;"
                     "}",
                     Kind);
    Findings F = check(S, {"use-after-free"});
    EXPECT_TRUE(F.hasCode("use-after-free")) << modelKindName(Kind);
  }
}

TEST(UseAfterFree, UnfreedBlockIsClean) {
  for (ModelKind Kind : AllModels) {
    auto S = analyze("int v;"
                     "void f(void) {"
                     "  int *d;"
                     "  d = (int *)malloc(8);"
                     "  v = *d;"
                     "}",
                     Kind);
    Findings F = check(S, {"use-after-free"});
    EXPECT_EQ(F.Report.Findings, 0u) << modelKindName(Kind) << "\n"
                                     << F.Diags.formatAll();
  }
}

TEST(UseAfterFree, FreeingAStackObjectIsIgnored) {
  // Only heap allocation sites are recorded by markFreed: freeing a stack
  // address is a different bug, and flagging the later dereference of the
  // (perfectly valid) local would be a false positive here.
  auto S = analyze("int x; int v;"
                   "void f(void) { int *p; p = &x; free(p); v = *p; }",
                   ModelKind::CommonInitialSeq);
  EXPECT_TRUE(S.A->solver().freedObjects().empty());
  Findings F = check(S, {"use-after-free"});
  EXPECT_EQ(F.Report.Findings, 0u) << F.Diags.formatAll();
}

TEST(UseAfterFree, ReallocFreesTheOldBlock) {
  auto S = analyze("int v;"
                   "void f(void) {"
                   "  int *p; int *q;"
                   "  p = (int *)malloc(8);"
                   "  q = (int *)realloc(p, 16);"
                   "  v = *p;"
                   "}",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.A->solver().freedObjects().size(), 1u);
  Findings F = check(S, {"use-after-free"});
  EXPECT_TRUE(F.hasCode("use-after-free")) << F.Diags.formatAll();
  // The pointer-level realloc model is unchanged: q still reaches both
  // the fresh and the old block.
  EXPECT_EQ(S.pts("q").size(), 2u);
}

TEST(UseAfterFree, WorklistEngineSeesTheSameFrees) {
  const char *Src = "int v;"
                    "void f(void) {"
                    "  int *d;"
                    "  d = (int *)malloc(8);"
                    "  free(d);"
                    "  v = *d;"
                    "}";
  auto Naive = analyze(Src, ModelKind::CommonInitialSeq);

  auto Program = compile(Src);
  AnalysisOptions Opts;
  Opts.Model = ModelKind::CommonInitialSeq;
  Opts.Solver.UseWorklist = true;
  Analysis Worklist(Program->Prog, Opts);
  Worklist.run();

  EXPECT_EQ(Naive.A->solver().freedObjects().size(),
            Worklist.solver().freedObjects().size());
  DiagnosticEngine D1, D2;
  CheckReport R1 = runCheckers(*Naive.A, {"use-after-free"}, D1);
  CheckReport R2 = runCheckers(Worklist, {"use-after-free"}, D2);
  EXPECT_EQ(R1.Findings, R2.Findings);
  EXPECT_EQ(D1.formatAll(), D2.formatAll());
}

//===----------------------------------------------------------------------===//
// unknown-external
//===----------------------------------------------------------------------===//

TEST(UnknownExternal, FlagsUnsummarizedCalls) {
  auto S = analyze("int x;"
                   "void f(void) { frobnicate_9000(&x); }",
                   ModelKind::CommonInitialSeq);
  Findings F = check(S, {"unknown-external"});
  EXPECT_TRUE(F.hasCode("unknown-external")) << F.Diags.formatAll();
}

TEST(UnknownExternal, DefinedAndSummarizedCallsAreClean) {
  auto S = analyze("int x;"
                   "void helper(int *p) { *p = 1; }"
                   "void f(void) { helper(&x); printf(\"%d\", x); }",
                   ModelKind::CommonInitialSeq);
  Findings F = check(S, {"unknown-external"});
  EXPECT_EQ(F.Report.Findings, 0u) << F.Diags.formatAll();
}

//===----------------------------------------------------------------------===//
// Registry and runCheckers plumbing
//===----------------------------------------------------------------------===//

TEST(Registry, KnowsAllFourCheckers) {
  std::vector<std::string> Ids = CheckerRegistry::allIds();
  ASSERT_EQ(Ids.size(), 4u);
  for (const std::string &Id : Ids) {
    EXPECT_NE(CheckerRegistry::descriptionOf(Id), nullptr) << Id;
    auto C = CheckerRegistry::create(Id);
    ASSERT_NE(C, nullptr) << Id;
    EXPECT_EQ(C->id(), Id);
  }
  EXPECT_EQ(CheckerRegistry::descriptionOf("no-such"), nullptr);
  EXPECT_EQ(CheckerRegistry::create("no-such"), nullptr);
}

TEST(Registry, SubsetRunsOnlyTheRequestedCheckers) {
  auto S = analyze("struct A { int x; int y; } a;"
                   "float *fp; float v; int *g; int w;"
                   "void f(void) { fp = (float *)&a; v = *fp; w = *g; }",
                   ModelKind::CommonInitialSeq);
  Findings F = check(S, {"null-deref"});
  EXPECT_EQ(F.Report.Ran, std::vector<std::string>{"null-deref"});
  EXPECT_TRUE(F.hasCode("null-deref"));
  EXPECT_FALSE(F.hasCode("cast-safety"));
}

TEST(Registry, FindingsAreSortedAndDeduplicated) {
  auto S = analyze("struct A { int x; int y; } a;"
                   "float *fp; float v; int *g; int w;"
                   "void f(void) { fp = (float *)&a; v = *fp; w = *g; }",
                   ModelKind::CommonInitialSeq);
  Findings F = check(S);
  const auto &All = F.Diags.all();
  for (size_t I = 1; I < All.size(); ++I) {
    auto Key = [](const Diagnostic &D) {
      return std::make_tuple(D.Loc.Line, D.Loc.Column, D.Code);
    };
    EXPECT_LE(Key(All[I - 1]), Key(All[I]));
  }
}

//===----------------------------------------------------------------------===//
// Cross-model monotonicity: coarser points-to sets can only add findings.
//===----------------------------------------------------------------------===//

TEST(CrossModel, CastFindingsAreMonotoneAcrossModels) {
  // The finding predicate depends only on the final object sets, which
  // shrink monotonically CA >= CoC >= Offsets; so must the flagged sites.
  const char *Programs[] = {
      // The paper's discriminator: one struct, two pointer fields of
      // different types. Collapse Always merges them; the finer models
      // keep them apart.
      "struct S { int *f1; float *f2; } s;"
      "int i; float g;"
      "float *fp; float v;"
      "void f(void) {"
      "  s.f1 = &i;"
      "  s.f2 = &g;"
      "  fp = s.f2;"
      "  v = *fp;"
      "}",
      // A bad cast every model flags.
      "struct A { int x; int y; } a;"
      "float *fp; float v;"
      "void f(void) { fp = (float *)&a; v = *fp; }",
      // A clean program no model flags.
      "struct P { int x; int y; } s; struct P *sp; int v;"
      "void f(void) { sp = &s; v = sp->x; }",
  };
  const ModelKind Order[] = {ModelKind::CollapseAlways,
                             ModelKind::CollapseOnCast, ModelKind::Offsets};
  for (const char *Src : Programs) {
    std::set<std::pair<std::string, unsigned>> Prev;
    bool First = true;
    for (ModelKind Kind : Order) {
      auto S = analyze(Src, Kind);
      Findings F = check(S, {"cast-safety"});
      std::set<std::pair<std::string, unsigned>> Cur = F.codeLines();
      if (!First) {
        EXPECT_TRUE(std::includes(Prev.begin(), Prev.end(), Cur.begin(),
                                  Cur.end()))
            << "model " << modelKindName(Kind) << " found sites the coarser "
            << "model missed in:\n"
            << Src;
      }
      Prev = std::move(Cur);
      First = false;
    }
  }
}
