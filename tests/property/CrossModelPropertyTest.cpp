//===--- CrossModelPropertyTest.cpp - Invariants over generated programs --===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style sweeps: for every generated program (across seeds and
/// shapes), all four instances must converge, be deterministic, respect
/// the precision ordering, and the portable instances must be invariant
/// under the target ABI while Offsets is allowed to differ.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "workload/Generator.h"

using namespace spa;
using namespace spa::test;

namespace {

struct PropertyCase {
  uint64_t Seed;
  bool Casts;
  bool FnPtrs;
};

class GeneratedProgramTest : public ::testing::TestWithParam<PropertyCase> {
protected:
  std::string source() const {
    GeneratorConfig Config;
    Config.Seed = GetParam().Seed;
    Config.NumStructs = 3 + GetParam().Seed % 4;
    Config.StmtsPerFunction = 18;
    Config.CastSharePercent = GetParam().Casts ? 30 : 0;
    Config.UseFunctionPointers = GetParam().FnPtrs;
    return generateProgram(Config);
  }
};

} // namespace

TEST_P(GeneratedProgramTest, CompilesAndAllInstancesConverge) {
  std::string Source = source();
  for (ModelKind Kind :
       {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
        ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    auto S = analyze(Source, Kind);
    ASSERT_TRUE(S.A != nullptr) << "seed " << GetParam().Seed;
    EXPECT_LT(S.A->solver().runStats().Rounds, 100u);
    EXPECT_GT(S.A->solver().numEdges(), 0u);
  }
}

TEST_P(GeneratedProgramTest, PrecisionOrderingHolds) {
  std::string Source = source();
  double CA = analyze(Source, ModelKind::CollapseAlways)
                  .A->derefMetrics().AvgSetSize;
  double CoC = analyze(Source, ModelKind::CollapseOnCast)
                   .A->derefMetrics().AvgSetSize;
  double CIS = analyze(Source, ModelKind::CommonInitialSeq)
                   .A->derefMetrics().AvgSetSize;
  double Off = analyze(Source, ModelKind::Offsets)
                   .A->derefMetrics().AvgSetSize;
  const double Tol = 1e-9;
  EXPECT_GE(CA + Tol, CoC) << "seed " << GetParam().Seed;
  EXPECT_GE(CoC + Tol, CIS) << "seed " << GetParam().Seed;
  // Generated programs are union-free, so the byte-offset instance is
  // comparable and must be the most precise.
  EXPECT_GE(CIS + Tol, Off) << "seed " << GetParam().Seed;
}

TEST_P(GeneratedProgramTest, PortableInstancesIgnoreTheABI) {
  std::string Source = source();
  for (ModelKind Kind : {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
                         ModelKind::CommonInitialSeq}) {
    auto A32 = analyze(Source, Kind, TargetInfo::ilp32());
    auto A64 = analyze(Source, Kind, TargetInfo::lp64());
    auto APad = analyze(Source, Kind, TargetInfo::padded32());
    EXPECT_EQ(A32.A->solver().numEdges(), A64.A->solver().numEdges())
        << modelKindName(Kind) << " seed " << GetParam().Seed;
    EXPECT_EQ(A32.A->solver().numEdges(), APad.A->solver().numEdges())
        << modelKindName(Kind) << " seed " << GetParam().Seed;
    EXPECT_DOUBLE_EQ(A32.A->derefMetrics().AvgSetSize,
                     APad.A->derefMetrics().AvgSetSize)
        << modelKindName(Kind) << " seed " << GetParam().Seed;
  }
}

TEST_P(GeneratedProgramTest, GeneratorIsDeterministic) {
  EXPECT_EQ(source(), source());
}

static std::vector<PropertyCase> makeCases() {
  std::vector<PropertyCase> Cases;
  for (uint64_t Seed : {1, 2, 3, 5, 8, 13, 21, 34})
    Cases.push_back({Seed, /*Casts=*/true, /*FnPtrs=*/Seed % 2 == 0});
  for (uint64_t Seed : {4, 9})
    Cases.push_back({Seed, /*Casts=*/false, /*FnPtrs=*/false});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeneratedProgramTest,
                         ::testing::ValuesIn(makeCases()),
                         [](const auto &Info) {
                           return "seed" + std::to_string(Info.param.Seed) +
                                  (Info.param.Casts ? "_casts" : "_nocasts") +
                                  (Info.param.FnPtrs ? "_fp" : "");
                         });
