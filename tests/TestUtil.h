//===--- TestUtil.h - Shared test helpers ----------------------*- C++ -*-===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#ifndef SPA_TESTS_TESTUTIL_H
#define SPA_TESTS_TESTUTIL_H

#include "pta/Frontend.h"

#include "gtest/gtest.h"

#include <memory>
#include <string>
#include <vector>

namespace spa::test {

/// Compiles \p Source, failing the test on diagnostics.
inline std::unique_ptr<CompiledProgram>
compile(std::string_view Source,
        TargetInfo Target = TargetInfo::ilp32()) {
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(Source, Diags, std::move(Target));
  EXPECT_TRUE(P != nullptr) << Diags.formatAll();
  return P;
}

/// One solved analysis over freshly compiled source.
struct Solved {
  std::unique_ptr<CompiledProgram> Program;
  std::unique_ptr<Analysis> A;

  std::vector<std::string> pts(std::string_view Name) {
    return pointsToSetOf(A->solver(), Name);
  }
};

inline Solved analyze(std::string_view Source, ModelKind Kind,
                      TargetInfo Target = TargetInfo::ilp32()) {
  Solved S;
  S.Program = compile(Source, Target);
  if (!S.Program)
    return S;
  AnalysisOptions Opts;
  Opts.Model = Kind;
  Opts.Target = std::move(Target);
  S.A = std::make_unique<Analysis>(S.Program->Prog, Opts);
  S.A->run();
  return S;
}

/// Readable set comparison.
inline std::vector<std::string> strs(std::initializer_list<const char *> L) {
  return std::vector<std::string>(L.begin(), L.end());
}

} // namespace spa::test

#endif // SPA_TESTS_TESTUTIL_H
