//===--- FlowPassTest.cpp - Unit tests for the invalidation flow pass -----===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each flow-pass mechanism gets a minimal program pinning its behaviour:
/// strong invalidation at free, realloc kill+revive, bottom-up may-free
/// summaries, allocation-site revival and its escape blocker, indirect
/// frees through function pointers, and the empty-freed shortcut. Findings
/// are compared as (code, line) sets so message rewording never breaks a
/// test. Also hosts the freedAt-determinism and dead-parameter-suppression
/// regression tests that ride along with the pass.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "check/Checkers.h"
#include "flow/FlowPass.h"

#include <set>

using namespace spa;
using namespace spa::test;

namespace {

/// Lines of use-after-free findings after an optional flow refinement.
std::set<unsigned> uafLinesMode(Solved &S, bool Refine, FlowMode Mode) {
  if (Refine) {
    runFlowPass(S.A->solver(), Mode);
    FlowAuditResult Audit = auditFlowRefinement(S.A->solver());
    EXPECT_TRUE(Audit.ok()) << (Audit.Messages.empty()
                                    ? std::string("no message")
                                    : Audit.Messages.front());
  }
  DiagnosticEngine Diags;
  runCheckers(*S.A, {"use-after-free"}, Diags);
  std::set<unsigned> Lines;
  for (const Diagnostic &D : Diags.all())
    if (D.Kind != DiagKind::Note && D.Code == "use-after-free")
      Lines.insert(D.Loc.Line);
  return Lines;
}

std::set<unsigned> uafLines(Solved &S, bool Refine) {
  return uafLinesMode(S, Refine, FlowMode::Invalidate);
}

std::set<unsigned> lines(std::initializer_list<unsigned> L) {
  return std::set<unsigned>(L.begin(), L.end());
}

} // namespace

//===----------------------------------------------------------------------===//
// Strong invalidation at free
//===----------------------------------------------------------------------===//

TEST(FlowPass, DerefsBeforeTheFreeAreSuppressed) {
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int main(void) {\n"
                    "  int *d; int v;\n"
                    "  d = (int *)malloc(4);\n"
                    "  *d = 1;\n"         // line 6: before the free
                    "  v = *d;\n"         // line 7: before the free
                    "  free(d);\n"
                    "  return v;\n"
                    "}\n";
  auto S = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLines(S, false), lines({6, 7}));
  EXPECT_EQ(uafLines(S, true), lines({}));
}

TEST(FlowPass, DerefAfterTheFreeIsKept) {
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int main(void) {\n"
                    "  int *d;\n"
                    "  d = (int *)malloc(4);\n"
                    "  *d = 1;\n"         // line 6: before — suppressed
                    "  free(d);\n"
                    "  return *d;\n"      // line 8: after — the true positive
                    "}\n";
  auto S = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLines(S, false), lines({6, 8}));
  EXPECT_EQ(uafLines(S, true), lines({8}));
}

TEST(FlowPass, RefinementIsIdenticalAcrossModels) {
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "struct S { int a; int b; };\n"
                    "int main(void) {\n"
                    "  struct S *s; int v;\n"
                    "  s = (struct S *)malloc(8);\n"
                    "  s->a = 1;\n"
                    "  free(s);\n"
                    "  v = s->b;\n"
                    "  return v;\n"
                    "}\n";
  const ModelKind Kinds[] = {ModelKind::CollapseAlways,
                             ModelKind::CollapseOnCast,
                             ModelKind::CommonInitialSeq, ModelKind::Offsets};
  for (ModelKind Kind : Kinds) {
    auto S = analyze(Src, Kind);
    EXPECT_EQ(uafLines(S, true), lines({9})) << modelKindName(Kind);
  }
}

//===----------------------------------------------------------------------===//
// realloc: kill the old block, revive the new
//===----------------------------------------------------------------------===//

TEST(FlowPass, ReallocKillsOldBlockAndRevivesNew) {
  const char *Src = "void *malloc(unsigned n);\n"
                    "void *realloc(void *p, unsigned n);\n"
                    "int main(void) {\n"
                    "  int *d; int v;\n"
                    "  d = (int *)malloc(4);\n"
                    "  *d = 1;\n"         // line 6: before the realloc
                    "  d = (int *)realloc(d, 8);\n"
                    "  v = *d;\n"         // line 8: stale old block may remain
                    "  return v;\n"
                    "}\n";
  auto S = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLines(S, false), lines({6, 8}));
  EXPECT_EQ(uafLines(S, true), lines({8}));
}

//===----------------------------------------------------------------------===//
// Interprocedural may-free summaries
//===----------------------------------------------------------------------===//

TEST(FlowPass, CalleeFreeSummaryReachesTheCallSite) {
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int *gp;\n"
                    "void release(void) { free(gp); }\n"
                    "int main(void) {\n"
                    "  int v;\n"
                    "  gp = (int *)malloc(4);\n"
                    "  *gp = 1;\n"        // line 8: before release()
                    "  release();\n"
                    "  v = *gp;\n"        // line 10: after the may-free call
                    "  return v;\n"
                    "}\n";
  auto S = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLines(S, false), lines({8, 10}));
  EXPECT_EQ(uafLines(S, true), lines({10}));
}

TEST(FlowPass, IndirectFreeThroughFunctionPointerInvalidates) {
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int *d;\n"
                    "void (*op)(void *p);\n"
                    "int main(void) {\n"
                    "  int v;\n"
                    "  d = (int *)malloc(4);\n"
                    "  *d = 1;\n"         // line 8: before the indirect free
                    "  op = free;\n"
                    "  op(d);\n"
                    "  v = *d;\n"         // line 11: after it
                    "  return v;\n"
                    "}\n";
  auto S = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLines(S, false), lines({8, 11}));
  EXPECT_EQ(uafLines(S, true), lines({11}));
}

//===----------------------------------------------------------------------===//
// Allocation-site revival and its escape blocker
//===----------------------------------------------------------------------===//

TEST(FlowPass, ReexecutedAllocationSiteRevivesTheBlock) {
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int *g;\n"
                    "void refill(void) {\n"
                    "  g = (int *)malloc(4);\n"
                    "  *g = 1;\n"         // line 6: freshly allocated
                    "}\n"
                    "int main(void) {\n"
                    "  refill();\n"
                    "  free(g);\n"
                    "  refill();\n"
                    "  return *g;\n"      // line 12: conservatively kept
                    "}\n";
  auto S = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLines(S, false), lines({6, 12}));
  EXPECT_EQ(uafLines(S, true), lines({12}));
}

TEST(FlowPass, EscapeToUnknownExternalBlocksRevival) {
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "void stash(int *p);\n"
                    "int *g;\n"
                    "void refill(void) {\n"
                    "  g = (int *)malloc(4);\n"
                    "  *g = 1;\n"         // line 7: revival blocked by escape
                    "}\n"
                    "int main(void) {\n"
                    "  refill();\n"
                    "  stash(g);\n"
                    "  free(g);\n"
                    "  refill();\n"
                    "  return *g;\n"      // line 14
                    "}\n";
  auto S = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLines(S, false), lines({7, 14}));
  EXPECT_EQ(uafLines(S, true), lines({7, 14}));
}

//===----------------------------------------------------------------------===//
// Shortcuts, counters, and audit
//===----------------------------------------------------------------------===//

TEST(FlowPass, ProgramWithoutFreesTakesTheEmptyShortcut) {
  auto S = analyze("void *malloc(unsigned n);\n"
                   "int main(void) {\n"
                   "  int *d;\n"
                   "  d = (int *)malloc(4);\n"
                   "  *d = 1;\n"
                   "  return *d;\n"
                   "}\n",
                   ModelKind::CommonInitialSeq);
  FlowResult R = runInvalidationPass(S.A->solver());
  EXPECT_EQ(R.ObjectsInvalidated, 0u);
  EXPECT_EQ(R.SitesRefined, 0u);
  EXPECT_EQ(R.ReportsSuppressed, 0u);
  for (const SiteEvents &E : S.A->solver().siteEvents()) {
    EXPECT_TRUE(E.FlowRefined);
    EXPECT_EQ(E.InvalidatedBefore.size(), 0u);
  }
  EXPECT_TRUE(auditFlowRefinement(S.A->solver()).ok());
  EXPECT_EQ(uafLines(S, false), lines({}));
}

TEST(FlowPass, CountersMatchTheSuppressedReports) {
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int main(void) {\n"
                    "  int *d; int v;\n"
                    "  d = (int *)malloc(4);\n"
                    "  *d = 1;\n"
                    "  v = *d;\n"
                    "  free(d);\n"
                    "  return v;\n"
                    "}\n";
  auto S = analyze(Src, ModelKind::CommonInitialSeq);
  FlowResult R = runInvalidationPass(S.A->solver());
  EXPECT_EQ(R.ObjectsInvalidated, 1u); // the one malloc block
  EXPECT_EQ(R.ReportsSuppressed, 2u);  // both pre-free derefs
  EXPECT_GE(R.SitesRefined, R.ReportsSuppressed);
  EXPECT_GE(R.Seconds, 0.0);
}

TEST(FlowPass, RerunAfterResolveIsStable) {
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int main(void) {\n"
                    "  int *d;\n"
                    "  d = (int *)malloc(4);\n"
                    "  *d = 1;\n"
                    "  free(d);\n"
                    "  return *d;\n"
                    "}\n";
  auto S = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLines(S, true), lines({8}));
  S.A->run(); // re-solving clears site events ...
  EXPECT_EQ(uafLines(S, true), lines({8})); // ... and the pass re-refines
}

//===----------------------------------------------------------------------===//
// CFG dataflow flavour (--flow=cfg)
//===----------------------------------------------------------------------===//

TEST(FlowPass, CfgSuppressesTheFreeOnTheReturningArm) {
  // free on one arm followed by return: the fall-through load is clean
  // under the CFG join, but the linear walk (free precedes the load in
  // emission order) keeps the report.
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int check(int c) {\n"
                    "  int *d;\n"
                    "  d = (int *)malloc(4);\n"
                    "  if (c) { free(d); return 0; }\n"
                    "  return *d;\n" // line 7: clean fall-through path
                    "}\n"
                    "int main(void) { return check(1); }\n";
  auto S1 = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLinesMode(S1, true, FlowMode::Invalidate), lines({7}));
  auto S2 = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLinesMode(S2, true, FlowMode::Cfg), lines({}));
}

TEST(FlowPass, CfgRestoresTheLoopCarriedFree) {
  // The free at the loop bottom reaches the top-of-body deref via the
  // back edge; the linear walk wrongly suppresses it.
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int main(int argc, char **argv) {\n"
                    "  int *d;\n"
                    "  int i; i = 0;\n"
                    "  d = (int *)malloc(4);\n"
                    "  while (i < argc) {\n"
                    "    *d = i;\n" // line 8: freed on the previous trip
                    "    free(d);\n"
                    "    i = i + 1;\n"
                    "  }\n"
                    "  return 0;\n"
                    "}\n";
  auto S1 = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLinesMode(S1, true, FlowMode::Invalidate), lines({}));
  auto S2 = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLinesMode(S2, true, FlowMode::Cfg), lines({8}));
}

TEST(FlowPass, CfgCalleeExitSummaryCleansTheCaller) {
  // renew() frees the old block and re-executes its allocation site; its
  // must-revive exit summary wipes the block from the caller's state at
  // every call, which the linear may-free fold cannot express.
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int *g;\n"
                    "void renew(void) {\n"
                    "  free(g);\n"
                    "  g = (int *)malloc(4);\n"
                    "}\n"
                    "int main(void) {\n"
                    "  renew();\n"
                    "  *g = 1;\n"    // line 10
                    "  renew();\n"
                    "  return *g;\n" // line 12
                    "}\n";
  auto S1 = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLinesMode(S1, true, FlowMode::Invalidate), lines({10, 12}));
  auto S2 = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLinesMode(S2, true, FlowMode::Cfg), lines({}));
}

TEST(FlowPass, CfgRecursiveCalleeFallsBackToMayFree) {
  // A self-recursive renew sits in a nontrivial callee SCC: its exit
  // summary degrades to the may-free set with no revival, so the caller
  // conservatively keeps the report (soundness over precision in cycles).
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int *g;\n"
                    "void renew(int d) {\n"
                    "  free(g);\n"
                    "  g = (int *)malloc(4);\n"
                    "  if (d) renew(d - 1);\n"
                    "}\n"
                    "int main(void) {\n"
                    "  renew(1);\n"
                    "  return *g;\n" // line 11: kept — cycle fallback
                    "}\n";
  auto S = analyze(Src, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLinesMode(S, true, FlowMode::Cfg), lines({11}));
}

TEST(FlowPass, CfgCountersReportTheGraphShape) {
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int main(int argc, char **argv) {\n"
                    "  int *d;\n"
                    "  d = (int *)malloc(4);\n"
                    "  if (argc) { free(d); } else { *d = 1; }\n"
                    "  return 0;\n"
                    "}\n";
  auto S = analyze(Src, ModelKind::CommonInitialSeq);
  FlowResult R = runCfgFlowPass(S.A->solver());
  EXPECT_GT(R.CfgBlocks, 0u);
  EXPECT_GT(R.CfgEdges, 0u);
  EXPECT_GT(R.JoinMerges, 0u); // the if/else join has two predecessors
  EXPECT_EQ(R.ExitSummaries, 1u); // main
  FlowResult L = runInvalidationPass(S.A->solver());
  EXPECT_EQ(L.CfgBlocks, 0u); // the linear flavour reports no CFG shape
  EXPECT_EQ(L.ExitSummaries, 0u);
}

//===----------------------------------------------------------------------===//
// Satellite: deterministic freedAt site
//===----------------------------------------------------------------------===//

TEST(FlowPass, SiteWithTwoFreedTargetsCitesTheEarliestFree) {
  // *c aliases two freed blocks; the finding must cite the block with
  // the earliest free site in (line, column, offset) order — not the one
  // with the smallest object id (b's block is allocated second but freed
  // first).
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int *a; int *b; int *c;\n"
                    "int main(void) {\n"
                    "  a = (int *)malloc(4);\n"
                    "  b = (int *)malloc(4);\n"
                    "  c = a;\n"
                    "  c = b;\n"
                    "  free(b);\n" // line 9: the earliest free
                    "  free(a);\n" // line 10
                    "  return *c;\n"
                    "}\n";
  std::string First;
  for (int Engine = 0; Engine < 4; ++Engine) {
    AnalysisOptions Opts;
    Opts.Model = ModelKind::CommonInitialSeq;
    Opts.Solver.UseWorklist = Engine >= 1;
    Opts.Solver.DeltaPropagation = Engine >= 2;
    Opts.Solver.CycleElimination = Engine == 3;
    auto P = compile(Src);
    ASSERT_TRUE(P != nullptr);
    Analysis A(P->Prog, Opts);
    A.run();
    DiagnosticEngine Diags;
    runCheckers(A, {"use-after-free"}, Diags);
    std::string Text = Diags.formatAll();
    EXPECT_NE(Text.find("freed at 9:"), std::string::npos) << Text;
    EXPECT_EQ(Text.find("freed at 10:"), std::string::npos) << Text;
    if (First.empty())
      First = Text;
    else
      EXPECT_EQ(Text, First) << "engine " << Engine;
  }
}

TEST(FlowPass, FreedAtPicksTheEarliestSiteUnderEveryEngine) {
  // Two frees of the same abstract object; the report must cite the
  // earliest one by byte offset no matter which engine order discovered
  // them.
  const char *Src = "void *malloc(unsigned n);\n"
                    "void free(void *p);\n"
                    "int *a; int *b;\n"
                    "int main(void) {\n"
                    "  a = (int *)malloc(4);\n"
                    "  b = a;\n"
                    "  free(b);\n"        // line 7: the earliest free site
                    "  free(a);\n"        // line 8
                    "  return *a;\n"
                    "}\n";
  std::string First;
  for (int Engine = 0; Engine < 4; ++Engine) {
    AnalysisOptions Opts;
    Opts.Model = ModelKind::CommonInitialSeq;
    Opts.Solver.UseWorklist = Engine >= 1;
    Opts.Solver.DeltaPropagation = Engine >= 2;
    Opts.Solver.CycleElimination = Engine == 3;
    auto P = compile(Src);
    ASSERT_TRUE(P != nullptr);
    Analysis A(P->Prog, Opts);
    A.run();
    DiagnosticEngine Diags;
    runCheckers(A, {"use-after-free"}, Diags);
    std::string Text = Diags.formatAll();
    EXPECT_NE(Text.find("freed at 7:"), std::string::npos) << Text;
    if (First.empty())
      First = Text;
    else
      EXPECT_EQ(Text, First) << "engine " << Engine;
  }
}

//===----------------------------------------------------------------------===//
// Satellite: dead-parameter suppression for use-after-free
//===----------------------------------------------------------------------===//

TEST(FlowPass, UafInUnreferencedFunctionWithParamsIsSuppressed) {
  // helper is never referenced, so it can never actually run: the dead-
  // parameter suppression null-deref applies must hold for use-after-free
  // too. The local q aliases the freed global block, so without the
  // suppression line 4 would be a finding.
  const char *Dead = "void *malloc(unsigned n);\n"
                     "void free(void *p);\n"
                     "int *g;\n"
                     "int helper(int *p) { int *q; q = g; return *q; }\n"
                     "int main(void) {\n"
                     "  g = (int *)malloc(4);\n"
                     "  free(g);\n"
                     "  return *g;\n"     // line 8: the only live deref
                     "}\n";
  auto S = analyze(Dead, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLines(S, false), lines({8}));

  // Same body, but main references helper: the finding comes back.
  const char *Live = "void *malloc(unsigned n);\n"
                     "void free(void *p);\n"
                     "int *g;\n"
                     "int helper(int *p) { int *q; q = g; return *q; }\n"
                     "int main(void) {\n"
                     "  g = (int *)malloc(4);\n"
                     "  free(g);\n"
                     "  return helper(g);\n"
                     "}\n";
  auto S2 = analyze(Live, ModelKind::CommonInitialSeq);
  EXPECT_EQ(uafLines(S2, false), lines({4}));
}
