//===--- FlowGoldenTest.cpp - Pinned corpus results for the flow pass -----===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The golden corpus under tests/inputs/flow/ pins a baseline and a
/// refined use-after-free count per program and per flow flavour
/// (--flow=invalidate and --flow=cfg; the counts are also written in
/// each file's header comment — keep all three in sync). On top of the
/// per-file table this asserts the ISSUE's aggregate acceptance bars
/// (>= 30% of flow-insensitive reports suppressed by the linear walk
/// with every hand-pinned true positive kept; the CFG flavour strictly
/// more precise than the linear walk on the branch corpus with zero
/// true positives lost), cross-dimension parity (engines x models x
/// points-to representations x preprocessing x parallel thread counts
/// produce byte-identical refined findings in both flavours), a clean
/// --flow-audit everywhere, and the mutation self-test: moving the free
/// above the deref flips the verdict.
///
//===----------------------------------------------------------------------===//

#include "check/Checkers.h"
#include "flow/FlowPass.h"
#include "pta/Frontend.h"

#include "gtest/gtest.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace spa;

namespace {

struct GoldenEntry {
  const char *File;
  unsigned Baseline; ///< use-after-free findings, flow-insensitive
  unsigned Refined;  ///< findings after --flow=invalidate
  unsigned Cfg;      ///< findings after --flow=cfg
};

// One row per corpus program; the comments name the decisive site. The
// single row where Cfg > Refined is branch_loop_free.c — the documented
// loop-carried restore (a false negative of the linear walk), never a
// report the flow-insensitive baseline lacks.
const GoldenEntry Corpus[] = {
    {"deref_before_free.c", 2, 0, 0}, // both sites precede the free
    {"true_uaf.c", 2, 1, 1},          // post-free load is the true positive
    {"interproc_free.c", 2, 1, 1},    // may-free summary carries the kill
    {"realloc_chain.c", 2, 1, 1},     // realloc revives new, kills old
    {"revive.c", 3, 2, 1},            // callee exit summary cleans the caller
    {"escape_noclean.c", 2, 2, 2},    // escape blocks the revival
    {"fnptr_free.c", 2, 1, 1},        // free through a function pointer
    {"branch_arm_free.c", 2, 2, 1},   // freeing arm returns early
    {"branch_revive.c", 3, 3, 2},     // revive on one arm, join keeps may
    {"branch_loop_free.c", 1, 0, 1},  // back edge restores the report
    {"branch_callee_exit.c", 2, 2, 0}, // hand-rolled realloc in the callee
};

std::string readCorpusFile(const std::string &Name) {
  std::ifstream In(std::string(SPA_FLOW_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << Name;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

struct RefinedRun {
  unsigned Baseline = 0;
  unsigned Refined = 0;
  std::string RefinedText; ///< formatted refined findings, for parity
  bool AuditOk = false;
};

/// Solves \p Source under \p Opts, runs the use-after-free checker before
/// and after the flow pass flavour \p Mode, and audits the refinement.
RefinedRun runRefined(const std::string &Source, AnalysisOptions Opts,
                      FlowMode Mode = FlowMode::Invalidate) {
  RefinedRun R;
  DiagnosticEngine CompileDiags;
  auto P = CompiledProgram::fromSource(Source, CompileDiags);
  EXPECT_TRUE(P != nullptr) << CompileDiags.formatAll();
  if (!P)
    return R;
  Analysis A(P->Prog, std::move(Opts));
  A.run();
  DiagnosticEngine Base;
  R.Baseline = runCheckers(A, {"use-after-free"}, Base).Findings;
  runFlowPass(A.solver(), Mode);
  R.AuditOk = auditFlowRefinement(A.solver()).ok();
  DiagnosticEngine Ref;
  R.Refined = runCheckers(A, {"use-after-free"}, Ref).Findings;
  R.RefinedText = Ref.formatAll();
  return R;
}

AnalysisOptions defaults() {
  AnalysisOptions Opts;
  Opts.Model = ModelKind::CommonInitialSeq;
  return Opts;
}

void applyEngine(AnalysisOptions &Opts, int Engine) {
  Opts.Solver.UseWorklist = Engine >= 1;
  Opts.Solver.DeltaPropagation = Engine >= 2;
  Opts.Solver.CycleElimination = Engine == 3;
}

unsigned pinned(const GoldenEntry &E, FlowMode Mode) {
  return Mode == FlowMode::Cfg ? E.Cfg : E.Refined;
}

const FlowMode BothModes[] = {FlowMode::Invalidate, FlowMode::Cfg};

const char *modeName(FlowMode Mode) {
  return Mode == FlowMode::Cfg ? "cfg" : "invalidate";
}

} // namespace

TEST(FlowGolden, PerFileCountsMatchThePinnedTable) {
  for (const GoldenEntry &E : Corpus) {
    std::string Source = readCorpusFile(E.File);
    for (FlowMode Mode : BothModes) {
      RefinedRun R = runRefined(Source, defaults(), Mode);
      EXPECT_EQ(R.Baseline, E.Baseline) << E.File;
      EXPECT_EQ(R.Refined, pinned(E, Mode))
          << E.File << " " << modeName(Mode) << "\n" << R.RefinedText;
      EXPECT_TRUE(R.AuditOk) << E.File << " " << modeName(Mode);
    }
  }
}

TEST(FlowGolden, AggregateSuppressionMeetsTheAcceptanceBar) {
  unsigned Baseline = 0, Refined = 0;
  for (const GoldenEntry &E : Corpus) {
    RefinedRun R = runRefined(readCorpusFile(E.File), defaults());
    Baseline += R.Baseline;
    Refined += R.Refined;
    // Every row's pinned true positives survive: the refined count never
    // drops below the table's value.
    EXPECT_GE(R.Refined, E.Refined) << E.File;
  }
  ASSERT_GT(Baseline, 0u);
  unsigned Suppressed = Baseline - Refined;
  EXPECT_GE(Suppressed * 100, Baseline * 30)
      << "suppressed " << Suppressed << " of " << Baseline;
}

TEST(FlowGolden, CfgIsStrictlyMorePreciseThanInvalidateOnBranchCorpus) {
  // The ISSUE's bar for the CFG flavour: on the branch corpus it
  // suppresses strictly more false positives than the linear walk, loses
  // no true positive (per-file floors are the pinned Cfg counts), and
  // restores the loop-carried report the linear walk drops.
  unsigned InvalidateTotal = 0, CfgTotal = 0;
  for (const GoldenEntry &E : Corpus) {
    std::string Source = readCorpusFile(E.File);
    RefinedRun Inv = runRefined(Source, defaults(), FlowMode::Invalidate);
    RefinedRun Cfg = runRefined(Source, defaults(), FlowMode::Cfg);
    EXPECT_TRUE(Cfg.AuditOk) << E.File;
    // cfg never reports a site the baseline does not.
    EXPECT_LE(Cfg.Refined, Inv.Baseline) << E.File;
    InvalidateTotal += Inv.Refined;
    CfgTotal += Cfg.Refined;
  }
  EXPECT_LT(CfgTotal, InvalidateTotal)
      << "cfg must be strictly more precise in aggregate";
}

TEST(FlowGolden, RefinedFindingsAreIdenticalAcrossEngines) {
  for (const GoldenEntry &E : Corpus) {
    std::string Source = readCorpusFile(E.File);
    for (FlowMode Mode : BothModes) {
      std::string First;
      for (int Engine = 0; Engine < 4; ++Engine) {
        AnalysisOptions Opts = defaults();
        applyEngine(Opts, Engine);
        RefinedRun R = runRefined(Source, Opts, Mode);
        EXPECT_TRUE(R.AuditOk)
            << E.File << " " << modeName(Mode) << " engine " << Engine;
        EXPECT_EQ(R.Refined, pinned(E, Mode))
            << E.File << " " << modeName(Mode) << " engine " << Engine;
        if (Engine == 0)
          First = R.RefinedText;
        else
          EXPECT_EQ(R.RefinedText, First)
              << E.File << " " << modeName(Mode) << " engine " << Engine;
      }
    }
  }
}

TEST(FlowGolden, RefinedFindingsAreIdenticalAcrossParallelThreadCounts) {
  // The determinism bar for --engine=par: the refined findings of both
  // flavours are byte-identical at every worker count (and match the
  // sequential engines via the pinned table).
  const unsigned ThreadCounts[] = {1, 2, 4, 7};
  for (const GoldenEntry &E : Corpus) {
    std::string Source = readCorpusFile(E.File);
    for (FlowMode Mode : BothModes) {
      std::string First;
      bool HaveFirst = false;
      for (unsigned Threads : ThreadCounts) {
        AnalysisOptions Opts = defaults();
        Opts.Solver.ParallelSolve = true;
        Opts.Solver.Threads = Threads;
        RefinedRun R = runRefined(Source, Opts, Mode);
        EXPECT_TRUE(R.AuditOk)
            << E.File << " " << modeName(Mode) << " threads " << Threads;
        EXPECT_EQ(R.Refined, pinned(E, Mode))
            << E.File << " " << modeName(Mode) << " threads " << Threads;
        if (!HaveFirst) {
          First = R.RefinedText;
          HaveFirst = true;
        } else {
          EXPECT_EQ(R.RefinedText, First)
              << E.File << " " << modeName(Mode) << " threads " << Threads;
        }
      }
    }
  }
}

TEST(FlowGolden, RefinedFindingsAreIdenticalAcrossModels) {
  const ModelKind Kinds[] = {ModelKind::CollapseAlways,
                             ModelKind::CollapseOnCast,
                             ModelKind::CommonInitialSeq, ModelKind::Offsets};
  for (const GoldenEntry &E : Corpus) {
    std::string Source = readCorpusFile(E.File);
    for (FlowMode Mode : BothModes) {
      std::string First;
      bool HaveFirst = false;
      for (ModelKind Kind : Kinds) {
        AnalysisOptions Opts = defaults();
        Opts.Model = Kind;
        RefinedRun R = runRefined(Source, Opts, Mode);
        EXPECT_TRUE(R.AuditOk)
            << E.File << " " << modeName(Mode) << " " << modelKindName(Kind);
        EXPECT_EQ(R.Refined, pinned(E, Mode))
            << E.File << " " << modeName(Mode) << " " << modelKindName(Kind);
        if (!HaveFirst) {
          First = R.RefinedText;
          HaveFirst = true;
        } else {
          EXPECT_EQ(R.RefinedText, First)
              << E.File << " " << modeName(Mode) << " " << modelKindName(Kind);
        }
      }
    }
  }
}

TEST(FlowGolden, RefinedFindingsAreIdenticalAcrossPtsReprsAndPreprocess) {
  const PtsRepr Reprs[] = {PtsRepr::Sorted, PtsRepr::Small, PtsRepr::Bitmap,
                           PtsRepr::Offsets};
  for (const GoldenEntry &E : Corpus) {
    std::string Source = readCorpusFile(E.File);
    for (FlowMode Mode : BothModes) {
      std::string First;
      bool HaveFirst = false;
      for (PtsRepr Repr : Reprs) {
        for (int Pre = 0; Pre < 2; ++Pre) {
          AnalysisOptions Opts = defaults();
          Opts.Solver.PointsTo = Repr;
          Opts.Solver.Preprocess =
              Pre ? PreprocessKind::Hvn : PreprocessKind::None;
          RefinedRun R = runRefined(Source, Opts, Mode);
          EXPECT_TRUE(R.AuditOk)
              << E.File << " " << modeName(Mode) << " " << ptsReprName(Repr);
          EXPECT_EQ(R.Refined, pinned(E, Mode))
              << E.File << " " << modeName(Mode) << " " << ptsReprName(Repr)
              << " pre=" << Pre;
          if (!HaveFirst) {
            First = R.RefinedText;
            HaveFirst = true;
          } else {
            EXPECT_EQ(R.RefinedText, First)
                << E.File << " " << modeName(Mode) << " " << ptsReprName(Repr)
                << " pre=" << Pre;
          }
        }
      }
    }
  }
}

TEST(FlowGolden, MutationMovingTheFreeAboveTheDerefFlipsTheVerdict) {
  // The self-test the ISSUE asks for: the same program with the free
  // hoisted above the dereferences must lose its suppressions. Built by
  // line surgery on deref_before_free.c so the two variants stay in
  // lockstep with the corpus file.
  std::string Source = readCorpusFile("deref_before_free.c");
  std::string FreeLine = "  free(d);\n";
  std::string AnchorLine = "  *d = 1;\n";
  size_t FreeAt = Source.find(FreeLine);
  size_t AnchorAt = Source.find(AnchorLine);
  ASSERT_NE(FreeAt, std::string::npos);
  ASSERT_NE(AnchorAt, std::string::npos);
  ASSERT_LT(AnchorAt, FreeAt);
  std::string Mutated = Source;
  Mutated.erase(FreeAt, FreeLine.size());
  Mutated.insert(AnchorAt, FreeLine);

  for (FlowMode Mode : BothModes) {
    RefinedRun Original = runRefined(Source, defaults(), Mode);
    EXPECT_EQ(Original.Baseline, 2u) << modeName(Mode);
    EXPECT_EQ(Original.Refined, 0u) << modeName(Mode);

    RefinedRun Flipped = runRefined(Mutated, defaults(), Mode);
    EXPECT_TRUE(Flipped.AuditOk) << modeName(Mode);
    EXPECT_EQ(Flipped.Baseline, 2u) << modeName(Mode);
    EXPECT_EQ(Flipped.Refined, 2u)
        << modeName(Mode) << ": hoisting the free must keep both reports\n"
        << Flipped.RefinedText;
  }
}
