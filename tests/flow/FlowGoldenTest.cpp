//===--- FlowGoldenTest.cpp - Pinned corpus results for the flow pass -----===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The golden corpus under tests/inputs/flow/ pins a baseline and a
/// refined use-after-free count per program (the counts are also written
/// in each file's header comment — keep both in sync). On top of the
/// per-file table this asserts the ISSUE's aggregate acceptance bar
/// (>= 30% of flow-insensitive reports suppressed with every hand-pinned
/// true positive kept), cross-dimension parity (engines x models x
/// points-to representations x preprocessing produce byte-identical
/// refined findings), a clean --flow-audit everywhere, and the mutation
/// self-test: moving the free above the deref flips the verdict.
///
//===----------------------------------------------------------------------===//

#include "check/Checkers.h"
#include "flow/FlowPass.h"
#include "pta/Frontend.h"

#include "gtest/gtest.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace spa;

namespace {

struct GoldenEntry {
  const char *File;
  unsigned Baseline; ///< use-after-free findings, flow-insensitive
  unsigned Refined;  ///< findings after --flow=invalidate
};

// One row per corpus program; the comments name the suppressed site.
const GoldenEntry Corpus[] = {
    {"deref_before_free.c", 2, 0}, // both sites precede the free
    {"true_uaf.c", 2, 1},          // post-free load is the true positive
    {"interproc_free.c", 2, 1},    // may-free summary carries the kill
    {"realloc_chain.c", 2, 1},     // realloc revives new, kills old
    {"revive.c", 2, 1},            // re-executed malloc revives the block
    {"escape_noclean.c", 2, 2},    // escape blocks the revival
    {"fnptr_free.c", 2, 1},        // free through a function pointer
};

std::string readCorpusFile(const std::string &Name) {
  std::ifstream In(std::string(SPA_FLOW_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << Name;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

struct RefinedRun {
  unsigned Baseline = 0;
  unsigned Refined = 0;
  std::string RefinedText; ///< formatted refined findings, for parity
  bool AuditOk = false;
};

/// Solves \p Source under \p Opts, runs the use-after-free checker before
/// and after the invalidation pass, and audits the refinement.
RefinedRun runRefined(const std::string &Source, AnalysisOptions Opts) {
  RefinedRun R;
  DiagnosticEngine CompileDiags;
  auto P = CompiledProgram::fromSource(Source, CompileDiags);
  EXPECT_TRUE(P != nullptr) << CompileDiags.formatAll();
  if (!P)
    return R;
  Analysis A(P->Prog, std::move(Opts));
  A.run();
  DiagnosticEngine Base;
  R.Baseline = runCheckers(A, {"use-after-free"}, Base).Findings;
  runInvalidationPass(A.solver());
  R.AuditOk = auditFlowRefinement(A.solver()).ok();
  DiagnosticEngine Ref;
  R.Refined = runCheckers(A, {"use-after-free"}, Ref).Findings;
  R.RefinedText = Ref.formatAll();
  return R;
}

AnalysisOptions defaults() {
  AnalysisOptions Opts;
  Opts.Model = ModelKind::CommonInitialSeq;
  return Opts;
}

void applyEngine(AnalysisOptions &Opts, int Engine) {
  Opts.Solver.UseWorklist = Engine >= 1;
  Opts.Solver.DeltaPropagation = Engine >= 2;
  Opts.Solver.CycleElimination = Engine == 3;
}

} // namespace

TEST(FlowGolden, PerFileCountsMatchThePinnedTable) {
  for (const GoldenEntry &E : Corpus) {
    RefinedRun R = runRefined(readCorpusFile(E.File), defaults());
    EXPECT_EQ(R.Baseline, E.Baseline) << E.File;
    EXPECT_EQ(R.Refined, E.Refined) << E.File << "\n" << R.RefinedText;
    EXPECT_TRUE(R.AuditOk) << E.File;
  }
}

TEST(FlowGolden, AggregateSuppressionMeetsTheAcceptanceBar) {
  unsigned Baseline = 0, Refined = 0;
  for (const GoldenEntry &E : Corpus) {
    RefinedRun R = runRefined(readCorpusFile(E.File), defaults());
    Baseline += R.Baseline;
    Refined += R.Refined;
    // Every row's pinned true positives survive: the refined count never
    // drops below the table's value.
    EXPECT_GE(R.Refined, E.Refined) << E.File;
  }
  ASSERT_GT(Baseline, 0u);
  unsigned Suppressed = Baseline - Refined;
  EXPECT_GE(Suppressed * 100, Baseline * 30)
      << "suppressed " << Suppressed << " of " << Baseline;
}

TEST(FlowGolden, RefinedFindingsAreIdenticalAcrossEngines) {
  for (const GoldenEntry &E : Corpus) {
    std::string Source = readCorpusFile(E.File);
    std::string First;
    for (int Engine = 0; Engine < 4; ++Engine) {
      AnalysisOptions Opts = defaults();
      applyEngine(Opts, Engine);
      RefinedRun R = runRefined(Source, Opts);
      EXPECT_TRUE(R.AuditOk) << E.File << " engine " << Engine;
      EXPECT_EQ(R.Refined, E.Refined) << E.File << " engine " << Engine;
      if (Engine == 0)
        First = R.RefinedText;
      else
        EXPECT_EQ(R.RefinedText, First) << E.File << " engine " << Engine;
    }
  }
}

TEST(FlowGolden, RefinedFindingsAreIdenticalAcrossModels) {
  const ModelKind Kinds[] = {ModelKind::CollapseAlways,
                             ModelKind::CollapseOnCast,
                             ModelKind::CommonInitialSeq, ModelKind::Offsets};
  for (const GoldenEntry &E : Corpus) {
    std::string Source = readCorpusFile(E.File);
    std::string First;
    bool HaveFirst = false;
    for (ModelKind Kind : Kinds) {
      AnalysisOptions Opts = defaults();
      Opts.Model = Kind;
      RefinedRun R = runRefined(Source, Opts);
      EXPECT_TRUE(R.AuditOk) << E.File << " " << modelKindName(Kind);
      EXPECT_EQ(R.Refined, E.Refined) << E.File << " " << modelKindName(Kind);
      if (!HaveFirst) {
        First = R.RefinedText;
        HaveFirst = true;
      } else {
        EXPECT_EQ(R.RefinedText, First)
            << E.File << " " << modelKindName(Kind);
      }
    }
  }
}

TEST(FlowGolden, RefinedFindingsAreIdenticalAcrossPtsReprsAndPreprocess) {
  const PtsRepr Reprs[] = {PtsRepr::Sorted, PtsRepr::Small, PtsRepr::Bitmap,
                           PtsRepr::Offsets};
  for (const GoldenEntry &E : Corpus) {
    std::string Source = readCorpusFile(E.File);
    std::string First;
    bool HaveFirst = false;
    for (PtsRepr Repr : Reprs) {
      for (int Pre = 0; Pre < 2; ++Pre) {
        AnalysisOptions Opts = defaults();
        Opts.Solver.PointsTo = Repr;
        Opts.Solver.Preprocess =
            Pre ? PreprocessKind::Hvn : PreprocessKind::None;
        RefinedRun R = runRefined(Source, Opts);
        EXPECT_TRUE(R.AuditOk) << E.File << " " << ptsReprName(Repr);
        EXPECT_EQ(R.Refined, E.Refined)
            << E.File << " " << ptsReprName(Repr) << " pre=" << Pre;
        if (!HaveFirst) {
          First = R.RefinedText;
          HaveFirst = true;
        } else {
          EXPECT_EQ(R.RefinedText, First)
              << E.File << " " << ptsReprName(Repr) << " pre=" << Pre;
        }
      }
    }
  }
}

TEST(FlowGolden, MutationMovingTheFreeAboveTheDerefFlipsTheVerdict) {
  // The self-test the ISSUE asks for: the same program with the free
  // hoisted above the dereferences must lose its suppressions. Built by
  // line surgery on deref_before_free.c so the two variants stay in
  // lockstep with the corpus file.
  std::string Source = readCorpusFile("deref_before_free.c");
  std::string FreeLine = "  free(d);\n";
  std::string AnchorLine = "  *d = 1;\n";
  size_t FreeAt = Source.find(FreeLine);
  size_t AnchorAt = Source.find(AnchorLine);
  ASSERT_NE(FreeAt, std::string::npos);
  ASSERT_NE(AnchorAt, std::string::npos);
  ASSERT_LT(AnchorAt, FreeAt);
  std::string Mutated = Source;
  Mutated.erase(FreeAt, FreeLine.size());
  Mutated.insert(AnchorAt, FreeLine);

  RefinedRun Original = runRefined(Source, defaults());
  EXPECT_EQ(Original.Baseline, 2u);
  EXPECT_EQ(Original.Refined, 0u);

  RefinedRun Flipped = runRefined(Mutated, defaults());
  EXPECT_TRUE(Flipped.AuditOk);
  EXPECT_EQ(Flipped.Baseline, 2u);
  EXPECT_EQ(Flipped.Refined, 2u)
      << "hoisting the free must keep both reports\n" << Flipped.RefinedText;
}
