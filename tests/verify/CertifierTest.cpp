//===--- CertifierTest.cpp - Solution-certifier unit tests ----------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The certifier's contract: every clean converged solution certifies
/// (closed under the rules, every fact justified), its counts are a pure
/// function of (program, model, options) — identical across all four
/// engines — and an unconverged run fails loudly. The golden suite pins
/// exact obligation and fact counts for the paper's worked examples, so a
/// change in the derivation rules shows up as a count diff, not just as a
/// pass/fail flip.
///
//===----------------------------------------------------------------------===//

#include "verify/VerifyTestUtil.h"

using namespace spa;
using namespace spa::test;

namespace {

const char *StructSource = R"(
struct S { int *s1; int s2; char *s3; } *p;
struct T { int *t1; int *t2; char *t3; } t;
char **c;
int x; char y;
void f(void) {
  t.t1 = &x;
  t.t3 = &y;
  p = (struct S *)&t;
  c = &((*p).s3);
}
)";

const char *CallSource = R"(
int g1, g2, *shared;
int *pick(int *a, int *b) { return b; }
int *(*fp)(int *, int *);
void f(void) {
  fp = pick;
  shared = fp(&g1, &g2);
}
)";

} // namespace

TEST(Certifier, CleanSolutionsCertifyAcrossModelsAndEngines) {
  for (const char *Source : {StructSource, CallSource})
    for (ModelKind Kind : allModels())
      for (const EngineConfig &E : allEngines()) {
        Solved S = analyzeWith(Source, Kind, E.Opts);
        ASSERT_TRUE(S.A->solver().runStats().Converged);
        CertifyResult R = certifySolution(S.A->solver());
        EXPECT_TRUE(R.ok())
            << modelKindName(Kind) << "/" << E.Name << "\n" << describe(R);
        EXPECT_GT(R.Obligations, 0u);
        EXPECT_GT(R.FactsTotal, 0u);
      }
}

TEST(Certifier, CountsAreEngineIndependent) {
  // The four engines must compute bit-identical fixpoints, so the
  // re-derived obligation count and the audited fact count must agree
  // exactly — on a real corpus program, under every model.
  for (const char *File : {"ft.c", "li.c"})
    for (ModelKind Kind : allModels()) {
      CertifyResult Baseline;
      bool First = true;
      for (const EngineConfig &E : allEngines()) {
        Solved S = analyzeCorpusFile(File, Kind, E.Opts);
        ASSERT_TRUE(S.A->solver().runStats().Converged);
        CertifyResult R = certifySolution(S.A->solver());
        EXPECT_TRUE(R.ok())
            << File << "/" << modelKindName(Kind) << "/" << E.Name << "\n"
            << describe(R);
        if (First) {
          Baseline = R;
          First = false;
          continue;
        }
        EXPECT_EQ(R.Obligations, Baseline.Obligations)
            << File << "/" << modelKindName(Kind) << "/" << E.Name;
        EXPECT_EQ(R.FactsTotal, Baseline.FactsTotal)
            << File << "/" << modelKindName(Kind) << "/" << E.Name;
      }
    }
}

TEST(Certifier, OptionSweepsCertify) {
  for (ModelKind Kind : allModels()) {
    SolverOptions Stride;
    Stride.StrideArith = true;
    SolverOptions Unknown;
    Unknown.TrackUnknown = true;
    SolverOptions NoSummaries;
    NoSummaries.UseLibrarySummaries = false;
    SolverOptions NoArith;
    NoArith.HandlePtrArith = false;
    for (const SolverOptions &Opts :
         {Stride, Unknown, NoSummaries, NoArith}) {
      Solved S = analyzeCorpusFile("compress.c", Kind, Opts);
      ASSERT_TRUE(S.A->solver().runStats().Converged);
      CertifyResult R = certifySolution(S.A->solver());
      EXPECT_TRUE(R.ok()) << modelKindName(Kind) << "\n" << describe(R);
    }
  }
}

TEST(Certifier, UnconvergedRunFailsCertification) {
  // One naive round cannot reach the fixpoint of a flow chained against
  // statement order (each copy runs before its source is populated); the
  // truncated solution is missing facts, which is exactly what the
  // soundness direction must detect.
  SolverOptions Opts;
  Opts.MaxIterations = 1;
  Solved S = analyzeWith(R"(
int x, *a, *b, *c, *d;
void f(void) { d = c; c = b; b = a; a = &x; }
)",
                         ModelKind::CommonInitialSeq, Opts);
  ASSERT_FALSE(S.A->solver().runStats().Converged);
  CertifyResult R = certifySolution(S.A->solver());
  EXPECT_FALSE(R.ok());
  EXPECT_GT(R.Violations, 0u);
  EXPECT_FALSE(R.Messages.empty());
}

TEST(Certifier, CertificationDoesNotPerturbTheSolution) {
  Solved S = analyzeWith(StructSource, ModelKind::Offsets, SolverOptions{});
  uint64_t EdgesBefore = S.A->solver().numEdges();
  ModelStats StatsBefore = S.A->model().stats();
  CertifyResult First = certifySolution(S.A->solver());
  CertifyResult Second = certifySolution(S.A->solver());
  EXPECT_EQ(S.A->solver().numEdges(), EdgesBefore);
  EXPECT_EQ(S.A->model().stats().LookupCalls, StatsBefore.LookupCalls);
  EXPECT_EQ(S.A->model().stats().ResolveCalls, StatsBefore.ResolveCalls);
  EXPECT_EQ(First.Obligations, Second.Obligations);
  EXPECT_EQ(First.FactsTotal, Second.FactsTotal);
}

//===----------------------------------------------------------------------===//
// Golden runs over the paper's worked examples
//===----------------------------------------------------------------------===//

namespace {

/// The Section-1 introductory example.
const char *IntroSource = R"(
struct S { int *s1; int *s2; } s;
int x, y, *p;
void f(void) {
  s.s1 = &x;
  s.s2 = &y;
  p = s.s1;
}
)";

/// Section 4.1, Problem 2: dereference at a mismatched type.
const char *Problem2Source = R"(
struct S { int *s1; int s2; char *s3; } *p;
struct T { int *t1; int *t2; char *t3; } t;
char **c;
void f(void) {
  p = (struct S *)&t;
  c = &((*p).s3);
}
)";

struct GoldenCase {
  const char *Name;
  const char *Source;
  ModelKind Kind;
  uint64_t Obligations;
  uint64_t Facts;
};

} // namespace

TEST(CertifierGolden, PaperExamplesHaveExactObligationCounts) {
  // Every case must certify with zero violations, and the obligation /
  // fact counts are pinned: the certifier's derivation is deterministic,
  // so any rule change moves these numbers.
  // Collapse Always folds both fields of s into one node, so the two
  // stores each justify the other's fact as well: more facts, same
  // obligations. In problem2, Collapse on Cast smears the most (9 facts),
  // Common Initial Sequence resolves two pairs (7), and Collapse Always /
  // Offsets keep the minimal derivation (5).
  const GoldenCase Cases[] = {
      {"intro", IntroSource, ModelKind::CollapseAlways, 8, 10},
      {"intro", IntroSource, ModelKind::CollapseOnCast, 8, 8},
      {"intro", IntroSource, ModelKind::CommonInitialSeq, 8, 8},
      {"intro", IntroSource, ModelKind::Offsets, 8, 8},
      {"problem2", Problem2Source, ModelKind::CollapseAlways, 5, 5},
      {"problem2", Problem2Source, ModelKind::CollapseOnCast, 7, 9},
      {"problem2", Problem2Source, ModelKind::CommonInitialSeq, 6, 7},
      {"problem2", Problem2Source, ModelKind::Offsets, 5, 5},
  };
  for (const GoldenCase &C : Cases) {
    Solved S = analyzeWith(C.Source, C.Kind, SolverOptions{});
    ASSERT_TRUE(S.A->solver().runStats().Converged);
    CertifyResult R = certifySolution(S.A->solver());
    EXPECT_TRUE(R.ok())
        << C.Name << "/" << modelKindName(C.Kind) << "\n" << describe(R);
    EXPECT_EQ(R.Obligations, C.Obligations)
        << C.Name << "/" << modelKindName(C.Kind) << "\n" << describe(R);
    EXPECT_EQ(R.FactsTotal, C.Facts)
        << C.Name << "/" << modelKindName(C.Kind) << "\n" << describe(R);
  }
}
