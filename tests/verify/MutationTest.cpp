//===--- MutationTest.cpp - Mutation-based certifier self-test ------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The certifier's detection power, measured: seed hundreds of deterministic
/// mutations into otherwise valid solved runs — delete a points-to fact
/// (simulating a lost propagation) or insert one (simulating an engine
/// writing facts it cannot explain) — and require a 100% catch rate with
/// zero false alarms on the unmutated runs.
///
/// Deletions must always surface as soundness violations: on a converged
/// least-fixpoint run, every fact's first derivation has premises that
/// persist in the final solution, so re-deriving the rules finds the hole.
/// Insertions must surface through the precision audit (an unjustified
/// fact) or as a violation of a containment the new fact induces.
///
//===----------------------------------------------------------------------===//

#include "verify/VerifyTestUtil.h"

#include <random>

using namespace spa;
using namespace spa::test;

namespace {

/// One solved run plus its flat fact list, for sampling mutations.
struct MutationRig {
  Solved S;
  std::vector<std::pair<NodeId, NodeId>> Facts;

  MutationRig(const char *File, ModelKind Kind,
              PreprocessKind Preprocess = PreprocessKind::None) {
    SolverOptions Opts;
    Opts.UseWorklist = true; // delta engine: the default fast configuration
    Opts.Preprocess = Preprocess;
    S = analyzeCorpusFile(File, Kind, Opts);
    Solver &Solv = S.A->solver();
    for (size_t I = 0; I < Solv.model().nodes().size(); ++I) {
      NodeId Node(static_cast<uint32_t>(I));
      for (NodeId Target : Solv.pointsTo(Node))
        Facts.push_back({Node, Target});
    }
  }

  Solver &solver() { return S.A->solver(); }
};

} // namespace

TEST(Mutation, SeededMutationsAreAllCaughtWithZeroFalseAlarms) {
  const char *Files[] = {"ft.c", "anagram.c", "compress.c"};
  std::mt19937 Rng(0x5eed5u); // fixed seed: the run is fully deterministic
  int Mutations = 0, Caught = 0;

  for (const char *File : Files)
    for (ModelKind Kind : allModels()) {
      MutationRig Rig(File, Kind);
      ASSERT_TRUE(Rig.solver().runStats().Converged);
      ASSERT_FALSE(Rig.Facts.empty()) << File;

      // Zero false alarms: the unmutated solution certifies cleanly.
      CertifyResult Clean = certifySolution(Rig.solver());
      ASSERT_TRUE(Clean.ok())
          << File << "/" << modelKindName(Kind) << "\n" << describe(Clean);

      // Deletions: drop one existing fact, certify, restore.
      for (int K = 0; K < 10; ++K) {
        auto [From, To] = Rig.Facts[Rng() % Rig.Facts.size()];
        ASSERT_TRUE(Rig.solver().removeEdgeForMutation(From, To));
        CertifyResult R = certifySolution(Rig.solver());
        ++Mutations;
        if (!R.ok())
          ++Caught;
        EXPECT_GT(R.Violations + R.FactsUnjustified, 0u)
            << File << "/" << modelKindName(Kind) << " deletion #" << K
            << " went undetected";
        Rig.solver().addEdge(From, To);
      }

      // Insertions: add one fact the rules cannot justify, certify, remove.
      // Sample (source node, target node) pairs until one is genuinely new.
      size_t NumNodes = Rig.solver().model().nodes().size();
      for (int K = 0; K < 10; ++K) {
        NodeId From, To;
        for (;;) {
          From = NodeId(static_cast<uint32_t>(Rng() % NumNodes));
          To = NodeId(static_cast<uint32_t>(Rng() % NumNodes));
          if (!Rig.solver().pointsTo(From).contains(To))
            break;
        }
        ASSERT_TRUE(Rig.solver().addEdge(From, To));
        CertifyResult R = certifySolution(Rig.solver());
        ++Mutations;
        if (!R.ok())
          ++Caught;
        EXPECT_FALSE(R.ok())
            << File << "/" << modelKindName(Kind) << " insertion #" << K
            << " went undetected";
        ASSERT_TRUE(Rig.solver().removeEdgeForMutation(From, To));
      }

      // Zero false alarms after all mutations were rolled back.
      CertifyResult Restored = certifySolution(Rig.solver());
      EXPECT_TRUE(Restored.ok())
          << File << "/" << modelKindName(Kind) << " after rollback\n"
          << describe(Restored);
      EXPECT_EQ(Restored.Obligations, Clean.Obligations);
      EXPECT_EQ(Restored.FactsTotal, Clean.FactsTotal);
    }

  // The acceptance bar: at least 200 seeded mutations, all caught.
  EXPECT_GE(Mutations, 200);
  EXPECT_EQ(Caught, Mutations);
}

// The same detection power must hold on offline-preprocessed runs: hvn
// merges nodes before the solve, so removals hit shared sets through
// canonicalization and the certifier re-derives over the merged graph.
// Deletions stay 100%-caught everywhere (every fact's first derivation
// crosses a class boundary, and that premise persists). Insertion
// sampling is restricted to nodes in singleton classes: inside a merged
// class the certifier deliberately justifies the shared set through the
// class's own copy edges (that is what made the merge sound), so a fact
// planted there is indistinguishable from a propagated one.
TEST(Mutation, SeededMutationsAreCaughtOnPreprocessedRuns) {
  const char *Files[] = {"ft.c", "compress.c"};
  std::mt19937 Rng(0x5eed5u);
  int Mutations = 0, Caught = 0;

  for (const char *File : Files)
    for (ModelKind Kind : allModels()) {
      MutationRig Rig(File, Kind, PreprocessKind::Hvn);
      ASSERT_TRUE(Rig.solver().runStats().Converged);
      ASSERT_GT(Rig.solver().runStats().NodesMergedOffline, 0u) << File;
      ASSERT_FALSE(Rig.Facts.empty()) << File;

      CertifyResult Clean = certifySolution(Rig.solver());
      ASSERT_TRUE(Clean.ok())
          << File << "/" << modelKindName(Kind) << "\n" << describe(Clean);

      // Deletions: drop one existing fact, certify, restore. The sampled
      // fact names the raw stored member, so removal always lands.
      for (int K = 0; K < 10; ++K) {
        auto [From, To] = Rig.Facts[Rng() % Rig.Facts.size()];
        ASSERT_TRUE(Rig.solver().removeEdgeForMutation(From, To));
        CertifyResult R = certifySolution(Rig.solver());
        ++Mutations;
        if (!R.ok())
          ++Caught;
        EXPECT_GT(R.Violations + R.FactsUnjustified, 0u)
            << File << "/" << modelKindName(Kind) << " deletion #" << K
            << " went undetected";
        Rig.solver().addEdge(From, To);
      }

      // Insertions into singleton classes only (see the comment above).
      size_t NumNodes = Rig.solver().model().nodes().size();
      std::vector<uint32_t> ClassSize(NumNodes, 0);
      for (size_t I = 0; I < NumNodes; ++I)
        ++ClassSize[Rig.solver()
                        .canonicalNode(NodeId(static_cast<uint32_t>(I)))
                        .index()];
      auto Singleton = [&](NodeId N) {
        return ClassSize[Rig.solver().canonicalNode(N).index()] == 1;
      };
      for (int K = 0; K < 10; ++K) {
        NodeId From, To;
        for (;;) {
          From = NodeId(static_cast<uint32_t>(Rng() % NumNodes));
          To = NodeId(static_cast<uint32_t>(Rng() % NumNodes));
          if (Singleton(From) && !Rig.solver().pointsTo(From).contains(To))
            break;
        }
        ASSERT_TRUE(Rig.solver().addEdge(From, To));
        CertifyResult R = certifySolution(Rig.solver());
        ++Mutations;
        if (!R.ok())
          ++Caught;
        EXPECT_FALSE(R.ok())
            << File << "/" << modelKindName(Kind) << " insertion #" << K
            << " went undetected";
        ASSERT_TRUE(Rig.solver().removeEdgeForMutation(From, To));
      }

      CertifyResult Restored = certifySolution(Rig.solver());
      EXPECT_TRUE(Restored.ok())
          << File << "/" << modelKindName(Kind) << " after rollback\n"
          << describe(Restored);
      EXPECT_EQ(Restored.Obligations, Clean.Obligations);
      EXPECT_EQ(Restored.FactsTotal, Clean.FactsTotal);
    }

  EXPECT_GE(Mutations, 160);
  EXPECT_EQ(Caught, Mutations);
}
