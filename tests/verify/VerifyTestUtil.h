//===--- VerifyTestUtil.h - Shared helpers for the verify tests -*- C++ -*-===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#ifndef SPA_TESTS_VERIFY_VERIFYTESTUTIL_H
#define SPA_TESTS_VERIFY_VERIFYTESTUTIL_H

#include "TestUtil.h"
#include "verify/Certifier.h"
#include "verify/IrVerifier.h"

namespace spa::test {

/// The four engine configurations that must compute (and certify) the
/// identical fixpoint.
struct EngineConfig {
  const char *Name;
  SolverOptions Opts;
};

inline std::vector<EngineConfig> allEngines() {
  SolverOptions Naive;
  Naive.UseWorklist = false;
  Naive.DeltaPropagation = false;
  SolverOptions Worklist;
  Worklist.UseWorklist = true;
  Worklist.DeltaPropagation = false;
  SolverOptions Delta;
  Delta.UseWorklist = true;
  Delta.DeltaPropagation = true;
  SolverOptions Scc;
  Scc.CycleElimination = true;
  return {{"naive", Naive},
          {"worklist", Worklist},
          {"delta", Delta},
          {"scc", Scc}};
}

inline std::vector<ModelKind> allModels() {
  return {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
          ModelKind::CommonInitialSeq, ModelKind::Offsets};
}

/// Like analyze(), but with explicit solver options.
inline Solved analyzeWith(std::string_view Source, ModelKind Kind,
                          SolverOptions SOpts,
                          TargetInfo Target = TargetInfo::ilp32()) {
  Solved S;
  S.Program = compile(Source, Target);
  if (!S.Program)
    return S;
  AnalysisOptions Opts;
  Opts.Model = Kind;
  Opts.Target = std::move(Target);
  Opts.Solver = SOpts;
  S.A = std::make_unique<Analysis>(S.Program->Prog, Opts);
  S.A->run();
  return S;
}

/// Compiles a corpus file and solves it, failing the test on errors.
inline Solved analyzeCorpusFile(const char *Name, ModelKind Kind,
                                SolverOptions SOpts) {
  Solved S;
  DiagnosticEngine Diags;
  S.Program = CompiledProgram::fromFile(
      std::string(SPA_CORPUS_DIR) + "/" + Name, Diags);
  EXPECT_TRUE(S.Program != nullptr) << Name << "\n" << Diags.formatAll();
  if (!S.Program)
    return S;
  AnalysisOptions Opts;
  Opts.Model = Kind;
  Opts.Solver = SOpts;
  S.A = std::make_unique<Analysis>(S.Program->Prog, Opts);
  S.A->run();
  return S;
}

/// Renders a failed CertifyResult for test diagnostics.
inline std::string describe(const CertifyResult &R) {
  std::string Out = "obligations=" + std::to_string(R.Obligations) +
                    " violations=" + std::to_string(R.Violations) +
                    " facts=" + std::to_string(R.FactsTotal) +
                    " unjustified=" + std::to_string(R.FactsUnjustified) +
                    " freed_unjustified=" + std::to_string(R.FreedUnjustified);
  for (const std::string &M : R.Messages)
    Out += "\n  " + M;
  return Out;
}

} // namespace spa::test

#endif // SPA_TESTS_VERIFY_VERIFYTESTUTIL_H
