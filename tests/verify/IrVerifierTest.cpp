//===--- IrVerifierTest.cpp - NormIR well-formedness lint tests -----------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR verifier must accept everything the normalizer produces (the
/// whole corpus, zero violations) and reject every seeded corruption of
/// an otherwise valid program: out-of-range operands, wrong statement
/// shapes, member paths that walk outside the base type, broken deref-site
/// links, and summary effects referencing missing arguments.
///
//===----------------------------------------------------------------------===//

#include "verify/VerifyTestUtil.h"

using namespace spa;
using namespace spa::test;

namespace {

const char *RichSource = R"(
struct Inner { int *a; char *b; };
struct Outer { struct Inner in; int *c; } o;
int g1, g2, *p, *q, **pp;
char *heapish;
int *pick(int *x, int *y) { return y; }
int *(*fp)(int *, int *);
void f(void) {
  o.in.a = &g1;
  o.c = &g2;
  p = o.in.a;
  pp = &q;
  *pp = p;
  q = *pp;
  fp = pick;
  p = fp(&g1, &g2);
  heapish = (char *)p + 1;
}
)";

/// One solved analysis whose program we can corrupt in place.
struct Fixture {
  Solved S;
  Fixture() { S = analyzeWith(RichSource, ModelKind::CommonInitialSeq,
                              SolverOptions{}); }
  NormProgram &prog() { return S.Program->Prog; }
  IrVerifyResult verify() {
    return verifyNormIR(prog(), S.A->layout(), S.A->solver().summaries());
  }
  /// Index of the first statement with operation \p Op; asserts one exists.
  size_t stmtOf(NormOp Op) {
    for (size_t I = 0; I < prog().Stmts.size(); ++I)
      if (prog().Stmts[I].Op == Op)
        return I;
    ADD_FAILURE() << "no statement with op " << int(Op);
    return 0;
  }
};

} // namespace

TEST(IrVerifier, WholeCorpusIsWellFormed) {
  for (const char *File : {"ft.c", "li.c", "compress.c", "bc.c"}) {
    Solved S = analyzeCorpusFile(File, ModelKind::CommonInitialSeq,
                                 SolverOptions{});
    IrVerifyResult R =
        verifyNormIR(S.Program->Prog, S.A->layout(),
                     S.A->solver().summaries());
    EXPECT_TRUE(R.ok()) << File << ": " << R.Violations << " violations"
                        << (R.Messages.empty() ? "" : "\n" + R.Messages[0]);
    EXPECT_GT(R.ChecksRun, 0u);
  }
}

TEST(IrVerifier, CleanFixtureHasZeroViolations) {
  Fixture F;
  IrVerifyResult R = F.verify();
  EXPECT_TRUE(R.ok()) << (R.Messages.empty() ? "" : R.Messages[0]);
}

TEST(IrVerifier, OutOfRangeDestinationIsFlagged) {
  Fixture F;
  size_t I = F.stmtOf(NormOp::Copy);
  F.prog().Stmts[I].Dst =
      ObjectId(static_cast<uint32_t>(F.prog().Objects.size()) + 7);
  IrVerifyResult R = F.verify();
  EXPECT_FALSE(R.ok());
}

TEST(IrVerifier, InvalidSourceOperandIsFlagged) {
  Fixture F;
  size_t I = F.stmtOf(NormOp::AddrOf);
  F.prog().Stmts[I].Src = ObjectId();
  EXPECT_FALSE(F.verify().ok());
}

TEST(IrVerifier, OperationOutOfRangeIsFlagged) {
  Fixture F;
  size_t I = F.stmtOf(NormOp::Copy);
  F.prog().Stmts[I].Op = static_cast<NormOp>(250);
  EXPECT_FALSE(F.verify().ok());
}

TEST(IrVerifier, MemberPathOutsideTheBaseTypeIsFlagged) {
  Fixture F;
  // "p = o.in.a" — replace the path with a member index struct Inner does
  // not have.
  bool Corrupted = false;
  for (NormStmt &St : F.prog().Stmts)
    if (St.Op == NormOp::Copy && St.Path.size() == 2) {
      St.Path.back() = 99;
      Corrupted = true;
      break;
    }
  ASSERT_TRUE(Corrupted);
  EXPECT_FALSE(F.verify().ok());
}

TEST(IrVerifier, PathOnTopLevelFormIsFlagged) {
  Fixture F;
  size_t I = F.stmtOf(NormOp::Store);
  F.prog().Stmts[I].Path.push_back(0);
  EXPECT_FALSE(F.verify().ok());
}

TEST(IrVerifier, PtrArithWithoutOperandsIsFlagged) {
  Fixture F;
  size_t I = F.stmtOf(NormOp::PtrArith);
  F.prog().Stmts[I].ArithSrcs.clear();
  EXPECT_FALSE(F.verify().ok());
}

TEST(IrVerifier, CallWithBothCalleeFormsIsFlagged) {
  Fixture F;
  size_t I = F.stmtOf(NormOp::Call);
  NormStmt &St = F.prog().Stmts[I];
  St.DirectCallee = FuncId(0);
  // Keep the indirect callee as well: exactly-one-form is violated.
  if (!St.IndirectCallee.isValid())
    St.IndirectCallee = F.prog().Stmts[I].Args.empty()
                            ? ObjectId(0)
                            : F.prog().Stmts[I].Args[0];
  EXPECT_FALSE(F.verify().ok());
}

TEST(IrVerifier, BrokenDerefSiteLinkIsFlagged) {
  Fixture F;
  size_t I = F.stmtOf(NormOp::Load);
  F.prog().Stmts[I].DerefSite =
      static_cast<int32_t>(F.prog().DerefSites.size()) + 3;
  EXPECT_FALSE(F.verify().ok());
}

TEST(IrVerifier, DerefSiteOnWrongPointerIsFlagged) {
  Fixture F;
  size_t I = F.stmtOf(NormOp::Load);
  NormStmt &St = F.prog().Stmts[I];
  ASSERT_GE(St.DerefSite, 0);
  // Point the site at some other object than the statement's pointer.
  DerefSite &Site = F.prog().DerefSites[St.DerefSite];
  Site.Ptr = ObjectId(Site.Ptr.index() == 0 ? 1 : 0);
  EXPECT_FALSE(F.verify().ok());
}

TEST(IrVerifier, DanglingFunctionObjectIsFlagged) {
  Fixture F;
  for (NormObject &Obj : F.prog().Objects)
    if (Obj.Kind == ObjectKind::Function) {
      Obj.AsFunction = FuncId();
      break;
    }
  EXPECT_FALSE(F.verify().ok());
}

TEST(IrVerifier, RandomizedCorruptionsAreAllCaught) {
  // Deterministic sweep: corrupt every statement of the fixture, one at a
  // time and one field at a time, and require the verifier to flag each.
  // Covers far more shapes than the handcrafted cases above.
  int Corruptions = 0;
  Fixture Probe;
  size_t NumStmts = Probe.prog().Stmts.size();
  for (size_t I = 0; I < NumStmts; ++I) {
    for (int Field = 0; Field < 3; ++Field) {
      Fixture F; // fresh, uncorrupted program
      NormStmt &St = F.prog().Stmts[I];
      ObjectId Bogus(static_cast<uint32_t>(F.prog().Objects.size()) + 11);
      switch (Field) {
      case 0:
        if (St.Op == NormOp::Call)
          continue; // Dst unused by calls
        St.Dst = Bogus;
        break;
      case 1:
        if (St.Op == NormOp::PtrArith || St.Op == NormOp::Call)
          continue; // Src unused by these forms
        St.Src = Bogus;
        break;
      case 2:
        St.Op = static_cast<NormOp>(200 + static_cast<int>(I));
        break;
      }
      IrVerifyResult R = F.verify();
      EXPECT_FALSE(R.ok()) << "stmt #" << I << " field " << Field
                           << " corruption went undetected";
      ++Corruptions;
    }
  }
  EXPECT_GE(Corruptions, 20);
}
