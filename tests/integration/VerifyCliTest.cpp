//===--- VerifyCliTest.cpp - End-to-end tests of the verify flags ---------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the real spa_cli binary (SPA_CLI_PATH) to pin the verification
/// contract: --certify and --verify-ir run on every engine and exit 0 on a
/// clean corpus program, their telemetry lands under the "verify" object
/// in --stats-json, certification is skipped (with a warning) on
/// unconverged runs whose exit 3 outranks the would-be 4, and the shared
/// did-you-mean table covers both the new flags and --engine values.
///
//===----------------------------------------------------------------------===//

#include "gtest/gtest.h"

#include <cstdio>
#include <string>
#include <sys/wait.h>

namespace {

struct RunResult {
  int Exit = -1;
  std::string Out;
};

/// Runs spa_cli with \p Args; stderr is folded into stdout.
RunResult runCli(const std::string &Args) {
  RunResult R;
  std::string Cmd = std::string(SPA_CLI_PATH) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr) << Cmd;
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Out.append(Buf, N);
  int Status = pclose(P);
  R.Exit = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string corpus(const char *Name) {
  return std::string(SPA_CORPUS_DIR) + "/" + Name;
}

} // namespace

TEST(VerifyCli, CertifyPassesOnEveryEngine) {
  for (const char *Engine : {"naive", "worklist", "delta", "scc"}) {
    RunResult R = runCli(corpus("li.c") + " --certify --engine=" + Engine);
    EXPECT_EQ(R.Exit, 0) << Engine << "\n" << R.Out;
    EXPECT_NE(R.Out.find("certified:           yes"), std::string::npos)
        << Engine << "\n" << R.Out;
  }
}

TEST(VerifyCli, CertifyPassesOnEveryModel) {
  for (const char *Model : {"ca", "coc", "cis", "off"}) {
    RunResult R = runCli(corpus("ft.c") + " --certify --model=" + Model);
    EXPECT_EQ(R.Exit, 0) << Model << "\n" << R.Out;
    EXPECT_NE(R.Out.find("certified:           yes"), std::string::npos)
        << Model << "\n" << R.Out;
  }
}

TEST(VerifyCli, VerifyIrPassesAndReportsChecks) {
  RunResult R = runCli(corpus("compress.c") + " --verify-ir");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("ir well-formed:      yes"), std::string::npos)
      << R.Out;
}

TEST(VerifyCli, StatsJsonCarriesVerifyKeys) {
  RunResult R =
      runCli(corpus("ft.c") + " --certify --verify-ir --stats-json=-");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  for (const char *Key :
       {"\"verify\":", "\"certify_ran\":true", "\"obligations\":",
        "\"violations\":0", "\"facts_total\":", "\"facts_unjustified\":0",
        "\"freed_unjustified\":0", "\"certify_seconds\":",
        "\"ir_verify_ran\":true", "\"ir_checks\":", "\"ir_violations\":0"})
    EXPECT_NE(R.Out.find(Key), std::string::npos) << Key << "\n" << R.Out;
}

TEST(VerifyCli, StatsJsonOmitsVerifyObjectWhenNoPassRan) {
  RunResult R = runCli(corpus("ft.c") + " --stats-json=-");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_EQ(R.Out.find("\"verify\":"), std::string::npos) << R.Out;
}

TEST(VerifyCli, UnconvergedRunSkipsCertifyAndExits3) {
  RunResult R = runCli(corpus("bc.c") + " --certify --max-iterations=1");
  EXPECT_EQ(R.Exit, 3) << R.Out;
  EXPECT_NE(R.Out.find("--certify skipped"), std::string::npos) << R.Out;
}

TEST(VerifyCli, MisspelledVerifyFlagsGetSuggestions) {
  RunResult R1 = runCli(corpus("ft.c") + " --certfy");
  EXPECT_EQ(R1.Exit, 64) << R1.Out;
  EXPECT_NE(R1.Out.find("did you mean '--certify'?"), std::string::npos)
      << R1.Out;

  RunResult R2 = runCli(corpus("ft.c") + " --verify-it");
  EXPECT_EQ(R2.Exit, 64) << R2.Out;
  EXPECT_NE(R2.Out.find("did you mean '--verify-ir'?"), std::string::npos)
      << R2.Out;
}

TEST(VerifyCli, MisspelledEngineValueGetsSuggestion) {
  RunResult R = runCli(corpus("ft.c") + " --engine=sccs");
  EXPECT_EQ(R.Exit, 64) << R.Out;
  EXPECT_NE(R.Out.find("unknown engine 'sccs'"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("did you mean 'scc'?"), std::string::npos) << R.Out;
}

TEST(VerifyCli, MisspelledModelValueGetsSuggestion) {
  RunResult R = runCli(corpus("ft.c") + " --model=cof");
  EXPECT_EQ(R.Exit, 64) << R.Out;
  EXPECT_NE(R.Out.find("did you mean"), std::string::npos) << R.Out;
}

TEST(VerifyCli, UsageDocumentsExitCode4) {
  RunResult R = runCli("--help");
  EXPECT_NE(R.Out.find("--certify"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("--verify-ir"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("4"), std::string::npos) << R.Out;
}
