//===--- EngineCliTest.cpp - End-to-end tests of spa_cli --engine ---------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the real spa_cli binary (SPA_CLI_PATH) to pin the --engine flag
/// contract: the four engine names, the deprecated --worklist/--no-delta
/// aliases (still functional, now warning), precedence of --engine over
/// the aliases, and the cycle-elimination keys in --stats-json output.
///
//===----------------------------------------------------------------------===//

#include "gtest/gtest.h"

#include <cstdio>
#include <string>
#include <sys/wait.h>

namespace {

struct RunResult {
  int Exit = -1;
  std::string Out;
};

/// Runs spa_cli with \p Args; stderr is folded into stdout.
RunResult runCli(const std::string &Args) {
  RunResult R;
  std::string Cmd = std::string(SPA_CLI_PATH) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr) << Cmd;
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Out.append(Buf, N);
  int Status = pclose(P);
  R.Exit = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string corpus(const char *Name) {
  return std::string(SPA_CORPUS_DIR) + "/" + Name;
}

} // namespace

TEST(EngineCli, EveryEngineNameRunsAndReportsItself) {
  const struct {
    const char *Flag;
    const char *Reported;
  } Cases[] = {
      {"naive", "solver engine:       naive rounds"},
      {"worklist", "solver engine:       worklist\n"},
      {"delta", "solver engine:       worklist (delta propagation)"},
      {"scc", "solver engine:       worklist (delta + cycle elimination)"},
      {"par",
       "solver engine:       worklist (delta + cycle elimination, parallel)"},
  };
  for (const auto &C : Cases) {
    RunResult R = runCli(corpus("bc.c") + " --engine=" + C.Flag);
    EXPECT_EQ(R.Exit, 0) << C.Flag << "\n" << R.Out;
    EXPECT_NE(R.Out.find(C.Reported), std::string::npos)
        << C.Flag << "\n" << R.Out;
    EXPECT_EQ(R.Out.find("deprecated"), std::string::npos) << R.Out;
  }
}

TEST(EngineCli, SccEngineReportsCollapseCounters) {
  RunResult R = runCli(corpus("bc.c") + " --engine=scc");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("cycle elimination:"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("sccs collapsed"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("state high water:"), std::string::npos) << R.Out;
}

TEST(EngineCli, UnknownEngineIsAUsageError) {
  RunResult R = runCli(corpus("bc.c") + " --engine=turbo");
  EXPECT_EQ(R.Exit, 64) << R.Out;
  EXPECT_NE(R.Out.find("unknown engine 'turbo'"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("naive|worklist|delta|scc|par"), std::string::npos)
      << R.Out;
}

TEST(EngineCli, DeprecatedAliasesWarnButStillWork) {
  RunResult R1 = runCli(corpus("li.c") + " --worklist");
  EXPECT_EQ(R1.Exit, 0) << R1.Out;
  EXPECT_NE(R1.Out.find("--worklist is deprecated"), std::string::npos)
      << R1.Out;
  EXPECT_NE(R1.Out.find("use --engine=delta"), std::string::npos) << R1.Out;
  EXPECT_NE(R1.Out.find("worklist (delta propagation)"), std::string::npos)
      << R1.Out;

  RunResult R2 = runCli(corpus("li.c") + " --worklist --no-delta");
  EXPECT_EQ(R2.Exit, 0) << R2.Out;
  EXPECT_NE(R2.Out.find("--no-delta is deprecated"), std::string::npos)
      << R2.Out;
  EXPECT_NE(R2.Out.find("solver engine:       worklist\n"), std::string::npos)
      << R2.Out;
}

TEST(EngineCli, ExplicitEngineWinsOverDeprecatedAliases) {
  RunResult R = runCli(corpus("li.c") + " --worklist --engine=naive");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("solver engine:       naive rounds"),
            std::string::npos)
      << R.Out;
}

TEST(EngineCli, StatsJsonCarriesCycleEliminationKeys) {
  RunResult R = runCli(corpus("bc.c") + " --engine=scc --stats-json=-");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  for (const char *Key :
       {"\"cycle_elimination\":true", "\"use_worklist\":true",
        "\"delta_propagation\":true", "\"scc_sweeps\":", "\"sccs_collapsed\":",
        "\"nodes_merged_online\":", "\"nodes_merged_offline\":",
        "\"offline_ms\":", "\"priority_pops\":", "\"copy_edges\":",
        "\"bytes_high_water\":"})
    EXPECT_NE(R.Out.find(Key), std::string::npos) << Key << "\n" << R.Out;
}

TEST(EngineCli, StatsJsonCarriesParallelKeys) {
  RunResult R =
      runCli(corpus("bc.c") + " --engine=par --threads=3 --stats-json=-");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  for (const char *Key :
       {"\"parallel_solve\":true", "\"threads\":3", "\"levels\":",
        "\"barrier_merges\":", "\"par_gathered\":", "\"par_deferred\":",
        "\"par_imbalance_pct\":"})
    EXPECT_NE(R.Out.find(Key), std::string::npos) << Key << "\n" << R.Out;
}

TEST(EngineCli, ParSummaryReportsSchedulingCounters) {
  RunResult R = runCli(corpus("bc.c") + " --engine=par --threads=2");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("parallel solve:"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("2 threads"), std::string::npos) << R.Out;
}

TEST(EngineCli, EveryPtsReprRunsAndReportsItself) {
  for (const char *Name : {"sorted", "small", "bitmap", "offsets"}) {
    RunResult R = runCli(corpus("li.c") + " --pts=" + Name);
    EXPECT_EQ(R.Exit, 0) << Name << "\n" << R.Out;
    EXPECT_NE(R.Out.find(std::string("pts representation:  ") + Name),
              std::string::npos)
        << Name << "\n" << R.Out;
  }
}

TEST(EngineCli, PtsReprRejectsUnknownValue) {
  RunResult R = runCli(corpus("li.c") + " --pts=roaring");
  EXPECT_NE(R.Exit, 0);
  EXPECT_NE(R.Out.find("unknown points-to representation 'roaring'"),
            std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("sorted|small|bitmap|offsets"), std::string::npos)
      << R.Out;
}

TEST(EngineCli, PreprocessRejectsUnknownValueWithSuggestion) {
  RunResult R = runCli(corpus("li.c") + " --preprocess=hvm");
  EXPECT_NE(R.Exit, 0);
  EXPECT_NE(R.Out.find("unknown preprocessing pass 'hvm'"),
            std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("none|hvn"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("did you mean 'hvn'?"), std::string::npos) << R.Out;
}

TEST(EngineCli, PreprocessHvnAgreesOnEdgesAndReportsItself) {
  // The preprocessed run must print the byte-identical edge list and, in
  // the summary, the offline merge counters; the telemetry JSON must echo
  // the option and carry the offline keys.
  RunResult Plain = runCli(corpus("ft.c") + " --engine=delta --edges");
  EXPECT_EQ(Plain.Exit, 0) << Plain.Out;
  RunResult Hvn =
      runCli(corpus("ft.c") + " --engine=delta --edges --preprocess=hvn");
  EXPECT_EQ(Hvn.Exit, 0) << Hvn.Out;
  EXPECT_EQ(Plain.Out, Hvn.Out);

  RunResult Summary = runCli(corpus("ft.c") + " --preprocess=hvn");
  EXPECT_EQ(Summary.Exit, 0) << Summary.Out;
  EXPECT_NE(Summary.Out.find("offline hvn:"), std::string::npos)
      << Summary.Out;

  RunResult Json =
      runCli(corpus("ft.c") + " --preprocess=hvn --stats-json=-");
  EXPECT_EQ(Json.Exit, 0) << Json.Out;
  for (const char *Key :
       {"\"preprocess\":\"hvn\"", "\"nodes_merged_offline\":",
        "\"offline_ms\":"})
    EXPECT_NE(Json.Out.find(Key), std::string::npos) << Key << "\n"
                                                     << Json.Out;
}

TEST(EngineCli, PtsReprsAgreeOnEdgesAndCertify) {
  // The compressed representations must print the byte-identical edge
  // list the sorted baseline prints, and the independent certifier must
  // accept their fixpoints (exit 0; certify failures exit 4).
  RunResult Sorted =
      runCli(corpus("allroots.c") + " --engine=scc --model=off --edges");
  EXPECT_EQ(Sorted.Exit, 0) << Sorted.Out;
  for (const char *Name : {"small", "bitmap", "offsets"}) {
    RunResult R = runCli(corpus("allroots.c") + " --engine=scc --model=off "
                                                "--edges --pts=" +
                         Name);
    EXPECT_EQ(R.Exit, 0) << Name << "\n" << R.Out;
    EXPECT_EQ(Sorted.Out, R.Out) << Name;
    RunResult C = runCli(corpus("allroots.c") + " --engine=scc --model=off "
                                                "--certify --pts=" +
                         Name);
    EXPECT_EQ(C.Exit, 0) << Name << "\n" << C.Out;
  }
}

TEST(EngineCli, StatsJsonCarriesPtsSetKeys) {
  RunResult R = runCli(corpus("bc.c") + " --engine=delta --pts=bitmap "
                                        "--stats-json=-");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  for (const char *Key :
       {"\"pts_repr\":\"bitmap\"", "\"pts_sets\":", "\"singletons\":",
        "\"size_p50\":", "\"size_p90\":", "\"size_max\":", "\"set_bytes\":",
        "\"log_bytes\":", "\"lookup_bytes\":"})
    EXPECT_NE(R.Out.find(Key), std::string::npos) << Key << "\n" << R.Out;
  // The bitmap representation is the only one paying the shared intern
  // table; its bytes must be visible (nonzero) in the report.
  EXPECT_EQ(R.Out.find("\"lookup_bytes\":0}"), std::string::npos) << R.Out;
}
