//===--- CheckCliTest.cpp - End-to-end tests of spa_cli --check/--sarif ---===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the real spa_cli binary (SPA_CLI_PATH) over the seeded checker
/// examples (SPA_CHECKS_DIR) and asserts the documented exit-code contract
/// and the SARIF 2.1.0 shape, across all four field models and all four
/// solver engines.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <set>
#include <string>
#include <sys/wait.h>

using namespace spa;

namespace {

struct RunResult {
  int Exit = -1;
  std::string Out;
};

/// Runs spa_cli with \p Args; stderr is folded into stdout.
RunResult runCli(const std::string &Args) {
  RunResult R;
  std::string Cmd = std::string(SPA_CLI_PATH) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr) << Cmd;
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Out.append(Buf, N);
  int Status = pclose(P);
  R.Exit = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string badC() { return std::string(SPA_CHECKS_DIR) + "/bad.c"; }
std::string cleanC() { return std::string(SPA_CHECKS_DIR) + "/clean.c"; }

const char *const Models[] = {"ca", "coc", "cis", "off"};
// The deprecated --worklist/--no-delta spellings print a warning on
// stderr, which runCli folds into stdout and would corrupt the SARIF
// parse — EngineCliTest covers those aliases; here we use --engine=.
const char *const Engines[] = {"--engine=naive", "--engine=worklist",
                               "--engine=delta", "--engine=scc"};

/// Distinct ruleIds appearing in a parsed SARIF document's results.
std::set<std::string> ruleIdsOf(const JsonValue &Doc) {
  std::set<std::string> Ids;
  const JsonValue *Runs = Doc.find("runs");
  if (!Runs || Runs->Items.empty())
    return Ids;
  const JsonValue *Results = Runs->Items[0].find("results");
  if (!Results)
    return Ids;
  for (const JsonValue &R : Results->Items)
    if (const JsonValue *Id = R.find("ruleId"))
      Ids.insert(Id->Str);
  return Ids;
}

} // namespace

TEST(CheckCli, BadProgramEmitsSarifAndExits2UnderEveryConfiguration) {
  for (const char *Model : Models)
    for (const char *Engine : Engines) {
      std::string Args = badC() + " --model=" + Model + " " + Engine +
                         " --sarif=- ";
      RunResult R = runCli(Args);
      EXPECT_EQ(R.Exit, 2) << Args << "\n" << R.Out;
      auto Doc = parseJson(R.Out);
      ASSERT_TRUE(Doc.has_value()) << Args << "\n" << R.Out;
      const JsonValue *Version = Doc->find("version");
      ASSERT_NE(Version, nullptr);
      EXPECT_EQ(Version->Str, "2.1.0");
      std::set<std::string> Ids = ruleIdsOf(*Doc);
      EXPECT_GE(Ids.size(), 3u) << Args << "\n" << R.Out;
      EXPECT_TRUE(Ids.count("cast-safety")) << Args;
      EXPECT_TRUE(Ids.count("use-after-free")) << Args;
      EXPECT_TRUE(Ids.count("null-deref")) << Args;
      EXPECT_TRUE(Ids.count("unknown-external")) << Args;
    }
}

TEST(CheckCli, CleanProgramExitsZeroWithEmptyResults) {
  for (const char *Model : Models)
    for (const char *Engine : Engines) {
      std::string Args =
          cleanC() + " --model=" + Model + " " + Engine + " --sarif=- ";
      RunResult R = runCli(Args);
      EXPECT_EQ(R.Exit, 0) << Args << "\n" << R.Out;
      auto Doc = parseJson(R.Out);
      ASSERT_TRUE(Doc.has_value()) << Args << "\n" << R.Out;
      EXPECT_TRUE(ruleIdsOf(*Doc).empty()) << Args << "\n" << R.Out;
    }
}

TEST(CheckCli, CheckPrintsTextFindings) {
  RunResult R = runCli(badC() + " --check");
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("[cast-safety]"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("[use-after-free]"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("finding(s)"), std::string::npos) << R.Out;
}

TEST(CheckCli, CheckSubsetRestrictsFindings) {
  RunResult R = runCli(badC() + " --check=unknown-external");
  EXPECT_EQ(R.Exit, 2);
  EXPECT_NE(R.Out.find("[unknown-external]"), std::string::npos) << R.Out;
  EXPECT_EQ(R.Out.find("[cast-safety]"), std::string::npos) << R.Out;
}

TEST(CheckCli, SarifToFileRoundTrips) {
  std::string Path = "spa_checkcli_tmp.sarif";
  RunResult R = runCli(badC() + " --check --sarif=" + Path);
  EXPECT_EQ(R.Exit, 2) << R.Out;
  FILE *F = fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  std::string Doc;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), F)) > 0)
    Doc.append(Buf, N);
  fclose(F);
  remove(Path.c_str());
  auto V = parseJson(Doc);
  ASSERT_TRUE(V.has_value());
  EXPECT_GE(ruleIdsOf(*V).size(), 3u);
  // The text findings still go to stdout alongside the file.
  EXPECT_NE(R.Out.find("finding(s)"), std::string::npos) << R.Out;
}

TEST(CheckCli, UnknownFlagSuggestsTheClosestOption) {
  RunResult R = runCli(badC() + " --chek");
  EXPECT_EQ(R.Exit, 64) << R.Out;
  EXPECT_NE(R.Out.find("did you mean '--check'"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("--help"), std::string::npos) << R.Out;
}

TEST(CheckCli, MissingDashesGetAHint) {
  RunResult R = runCli(badC() + " model=cis");
  EXPECT_EQ(R.Exit, 64) << R.Out;
  EXPECT_NE(R.Out.find("missing leading '--'"), std::string::npos) << R.Out;
}

TEST(CheckCli, UnknownCheckerIsAUsageError) {
  RunResult R = runCli(badC() + " --check=bogus");
  EXPECT_EQ(R.Exit, 64) << R.Out;
  EXPECT_NE(R.Out.find("unknown checker"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("cast-safety"), std::string::npos) << R.Out;
}

TEST(CheckCli, StdoutCanOnlyCarryOneDocument) {
  RunResult R = runCli(badC() + " --stats-json=- --sarif=-");
  EXPECT_EQ(R.Exit, 64) << R.Out;
}

TEST(CheckCli, NonConvergenceOutranksFindings) {
  RunResult R = runCli(badC() + " --check --max-iterations=1");
  EXPECT_EQ(R.Exit, 3) << R.Out;
}

TEST(CheckCli, MissingInputIsAUsageError) {
  RunResult R = runCli("--check");
  EXPECT_EQ(R.Exit, 64) << R.Out;
}
