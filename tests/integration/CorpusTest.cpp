//===--- CorpusTest.cpp - Whole-corpus integration checks -----------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses, normalizes, and analyzes every corpus program under all four
/// instances, checking the invariants the paper's evaluation relies on:
/// the analyses terminate, the non-casting programs report no type
/// mismatches, and the precision ordering between instances holds for the
/// Figure-4 metric.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "workload/Corpus.h"

using namespace spa;
using namespace spa::test;

namespace {

class CorpusTest : public ::testing::TestWithParam<CorpusEntry> {};

} // namespace

TEST_P(CorpusTest, CompilesAndNormalizes) {
  const CorpusEntry &Entry = GetParam();
  std::string Source;
  ASSERT_TRUE(loadCorpusSource(Entry, Source))
      << "missing corpus file " << Entry.FileName << " in " << corpusDir();
  DiagnosticEngine Diags;
  auto Program = CompiledProgram::fromSource(Source, Diags);
  ASSERT_TRUE(Program != nullptr) << Entry.Name << ":\n" << Diags.formatAll();
  EXPECT_GT(Program->Prog.Stmts.size(), 10u) << Entry.Name;
  EXPECT_GT(Program->Prog.DerefSites.size(), 0u) << Entry.Name;
}

TEST_P(CorpusTest, AllFourInstancesConvergeAndOrderByPrecision) {
  const CorpusEntry &Entry = GetParam();
  std::string Source;
  ASSERT_TRUE(loadCorpusSource(Entry, Source));

  double Avg[4] = {0, 0, 0, 0};
  const ModelKind Kinds[4] = {ModelKind::CollapseAlways,
                              ModelKind::CollapseOnCast,
                              ModelKind::CommonInitialSeq, ModelKind::Offsets};
  for (int I = 0; I < 4; ++I) {
    auto S = analyze(Source, Kinds[I]);
    ASSERT_TRUE(S.A != nullptr) << Entry.Name;
    EXPECT_LT(S.A->solver().runStats().Rounds, 1000u) << Entry.Name;
    Avg[I] = S.A->derefMetrics().AvgSetSize;

    // For the non-casting group, type mismatches must be (nearly) absent.
    // "Nearly": the paper's Assumption-1 pointer-arithmetic rule smears a
    // walking pointer across its whole object, so a char* stepping through
    // a struct's char array can transitively be looked up against an int
    // field; the paper counts those transitive effects too.
    if (!Entry.HasStructCasting &&
        (Kinds[I] == ModelKind::CollapseOnCast ||
         Kinds[I] == ModelKind::CommonInitialSeq)) {
      const ModelStats &MS = S.A->model().stats();
      EXPECT_LE(MS.LookupMismatch * 10, MS.LookupCalls + 9) << Entry.Name;
      EXPECT_LE(MS.ResolveMismatch * 10, MS.ResolveCalls + 9) << Entry.Name;
    }
  }

  // Precision ordering of the Figure-4 metric (expanded set sizes):
  // CollapseAlways >= CollapseOnCast >= CommonInitialSeq. These three
  // share node granularity, so the ordering is exact. The Offsets
  // instance is not strictly comparable by count: it materializes a node
  // per byte offset (including artificial offsets inside unions and word
  // arrays), which the paper itself observes for 130.li ("nodes ... that
  // do not correspond to real fields"). We therefore only require it to
  // beat the fully collapsed instance.
  // (Union-heavy programs like li make even that comparison granularity-
  // dependent -- a union is one field-model node but several byte-offset
  // nodes -- so the Offsets ordering is asserted only in the union-free
  // generated-program property tests.)
  const double Tol = 1e-9;
  EXPECT_GE(Avg[0] + Tol, Avg[1]) << Entry.Name;
  EXPECT_GE(Avg[1] + Tol, Avg[2]) << Entry.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, CorpusTest, ::testing::ValuesIn(corpusManifest()),
    [](const ::testing::TestParamInfo<CorpusEntry> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });
