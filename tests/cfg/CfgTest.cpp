//===--- CfgTest.cpp - CFG builder and verifier unit tests ----------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intraprocedural CFG the normalizer builds (src/cfg/): block and
/// edge structure per source construct, statement partition and the
/// program-level maps, reverse postorder over reachable blocks — and the
/// mutation self-test for the verifier: every seeded corruption kind
/// (dropped or duplicated statement, out-of-range edge, broken pred/succ
/// mirror, exit successor, successor-less block, swapped RPO entries,
/// stale BlockOfStmt entry) must be caught, with zero false alarms on
/// the unmutated graph.
///
//===----------------------------------------------------------------------===//

#include "cfg/CfgVerifier.h"
#include "pta/Frontend.h"

#include "gtest/gtest.h"

#include <string>

using namespace spa;

namespace {

std::unique_ptr<CompiledProgram> compileOrDie(std::string_view Source) {
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.formatAll();
  return P;
}

/// CFG of the function named \p Name; fails the test when absent.
const FuncCfg *cfgOf(NormProgram &Prog, const char *Name) {
  FuncId F = Prog.findFunc(Prog.Strings.intern(Name));
  EXPECT_TRUE(F.isValid()) << Name;
  if (!F.isValid())
    return nullptr;
  const FuncCfg *C = Prog.Cfg.cfgFor(F.index());
  EXPECT_TRUE(C != nullptr) << Name;
  return C;
}

/// Counts edges of \p Kind anywhere in \p F.
unsigned countEdges(const FuncCfg &F, CfgEdgeKind Kind) {
  unsigned N = 0;
  for (const CfgBlock &B : F.Blocks)
    for (const CfgEdge &E : B.Succs)
      if (E.Kind == Kind)
        ++N;
  return N;
}

/// True if \p F has an edge From -> To.
bool hasEdge(const FuncCfg &F, uint32_t From, uint32_t To) {
  for (const CfgEdge &E : F.Blocks[From].Succs)
    if (E.To == To)
      return true;
  return false;
}

/// Runs the verifier over the program's CFG.
CfgVerifyResult verify(NormProgram &Prog) {
  std::vector<char> Defined(Prog.Funcs.size(), 0);
  for (size_t F = 0; F < Prog.Funcs.size(); ++F)
    Defined[F] = Prog.Funcs[F].IsDefined ? 1 : 0;
  return verifyCfg(Prog.Cfg, Prog.stmtOrder().ByFunc, Defined,
                   Prog.Stmts.size());
}

} // namespace

TEST(Cfg, StraightLineFunctionIsEntryPlusExit) {
  auto P = compileOrDie("int x; int *p;"
                        "void f(void) { p = &x; p = p; }");
  const FuncCfg *C = cfgOf(P->Prog, "f");
  ASSERT_TRUE(C);
  // Entry holds the statements; exit is empty with no successors.
  EXPECT_EQ(C->Blocks.size(), 2u);
  EXPECT_FALSE(C->Blocks[C->Entry].Stmts.empty());
  EXPECT_TRUE(C->Blocks[C->Exit].Stmts.empty());
  EXPECT_TRUE(C->Blocks[C->Exit].Succs.empty());
  EXPECT_TRUE(hasEdge(*C, C->Entry, C->Exit));
  ASSERT_FALSE(C->Rpo.empty());
  EXPECT_EQ(C->Rpo.front(), C->Entry);
}

TEST(Cfg, IfElseFormsADiamond) {
  auto P = compileOrDie("int c; int x; int *p;"
                        "void f(void) {"
                        "  if (c) { p = &x; } else { p = p; }"
                        "  p = p;"
                        "}");
  const FuncCfg *C = cfgOf(P->Prog, "f");
  ASSERT_TRUE(C);
  // entry(cond), then, else, join, exit.
  EXPECT_EQ(C->Blocks.size(), 5u);
  EXPECT_EQ(countEdges(*C, CfgEdgeKind::BranchTrue), 1u);
  EXPECT_EQ(countEdges(*C, CfgEdgeKind::BranchFalse), 1u);
  // The join block has both arms as predecessors.
  bool FoundJoin = false;
  for (const CfgBlock &B : C->Blocks)
    FoundJoin = FoundJoin || B.Preds.size() == 2;
  EXPECT_TRUE(FoundJoin);
}

TEST(Cfg, WhileLoopHasABackEdge) {
  auto P = compileOrDie("int c; int x; int *p;"
                        "void f(void) { while (c) { p = &x; } p = p; }");
  const FuncCfg *C = cfgOf(P->Prog, "f");
  ASSERT_TRUE(C);
  EXPECT_EQ(countEdges(*C, CfgEdgeKind::LoopBack), 1u);
  EXPECT_EQ(countEdges(*C, CfgEdgeKind::BranchTrue), 1u);
  EXPECT_EQ(countEdges(*C, CfgEdgeKind::BranchFalse), 1u);
}

TEST(Cfg, ForLoopRoutesContinueToTheStepBlock) {
  auto P = compileOrDie("int x; int *p;"
                        "void f(void) {"
                        "  for (int i = 0; i < 4; i = i + 1) {"
                        "    if (i) continue;"
                        "    p = &x;"
                        "  }"
                        "}");
  const FuncCfg *C = cfgOf(P->Prog, "f");
  ASSERT_TRUE(C);
  EXPECT_GE(countEdges(*C, CfgEdgeKind::LoopBack), 1u);
  EXPECT_GE(countEdges(*C, CfgEdgeKind::Jump), 1u);
  EXPECT_TRUE(verify(P->Prog).ok());
}

TEST(Cfg, EarlyReturnLeavesTheTrailingCodeUnreachable) {
  auto P = compileOrDie("int c; int x; int *p;"
                        "void f(void) {"
                        "  if (c) { return; }"
                        "  p = &x;"
                        "}");
  const FuncCfg *C = cfgOf(P->Prog, "f");
  ASSERT_TRUE(C);
  EXPECT_GE(countEdges(*C, CfgEdgeKind::Jump), 1u);
  // The block synthesized after the return is unreachable: RPO covers
  // fewer blocks than exist and its index slot is -1.
  EXPECT_LT(C->Rpo.size(), C->Blocks.size());
  bool SawDead = false;
  for (int32_t I : C->RpoIndex)
    SawDead = SawDead || I < 0;
  EXPECT_TRUE(SawDead);
}

TEST(Cfg, SwitchDispatchesFromTheHead) {
  auto P = compileOrDie("int c; int x; int *p;"
                        "void f(void) {"
                        "  switch (c) {"
                        "  case 0: p = &x; break;"
                        "  case 1: p = p;"
                        "  default: p = &x;"
                        "  }"
                        "}");
  const FuncCfg *C = cfgOf(P->Prog, "f");
  ASSERT_TRUE(C);
  EXPECT_EQ(countEdges(*C, CfgEdgeKind::SwitchCase), 3u);
  EXPECT_GE(countEdges(*C, CfgEdgeKind::Jump), 1u); // the break
  EXPECT_TRUE(verify(P->Prog).ok());
}

TEST(Cfg, GotoResolvesForwardAndBackwardLabels) {
  auto P = compileOrDie("int c; int x; int *p;"
                        "void f(void) {"
                        "  top: p = &x;"
                        "  if (c) goto done;"
                        "  goto top;"
                        "  done: p = p;"
                        "}");
  const FuncCfg *C = cfgOf(P->Prog, "f");
  ASSERT_TRUE(C);
  EXPECT_GE(countEdges(*C, CfgEdgeKind::Jump), 2u);
  EXPECT_TRUE(verify(P->Prog).ok());
}

TEST(Cfg, GlobalInitializersHaveNoBlock) {
  auto P = compileOrDie("int x; int *p = &x;"
                        "void f(void) { p = p; }");
  NormProgram &Prog = P->Prog;
  NormProgram::StmtOrder Order = Prog.stmtOrder();
  ASSERT_FALSE(Order.Globals.empty());
  for (uint32_t S : Order.Globals)
    EXPECT_EQ(Prog.Cfg.BlockOfStmt[S], -1) << "global stmt " << S;
}

TEST(Cfg, UndefinedFunctionsHaveNoCfg) {
  auto P = compileOrDie("void ext(void); int *p;"
                        "void f(void) { ext(); p = p; }");
  NormProgram &Prog = P->Prog;
  FuncId Ext = Prog.findFunc(Prog.Strings.intern("ext"));
  ASSERT_TRUE(Ext.isValid());
  EXPECT_EQ(Prog.Cfg.cfgFor(Ext.index()), nullptr);
  EXPECT_NE(Prog.Cfg.cfgFor(
                Prog.findFunc(Prog.Strings.intern("f")).index()),
            nullptr);
}

TEST(Cfg, CorpusProgramsVerifyCleanly) {
  const char *Sources[] = {
      // nested loops + branches
      "int c; int x; int *p;"
      "void f(void) {"
      "  for (int i = 0; i < 9; i = i + 1) {"
      "    while (c) { if (i) break; p = &x; }"
      "    do { p = p; } while (c);"
      "  }"
      "}"
      "int main(void) { f(); return 0; }",
      // switch fallthrough without default
      "int c; int x; int *p;"
      "void g(void) { switch (c) { case 0: p = &x; case 1: p = p; } }",
      // empty function bodies and early returns
      "void e(void) {}"
      "int h(int a) { if (a) return 1; return 0; }",
  };
  for (const char *Source : Sources) {
    auto P = compileOrDie(Source);
    CfgVerifyResult R = verify(P->Prog);
    EXPECT_TRUE(R.ok()) << Source << "\n"
                        << (R.Messages.empty() ? "" : R.Messages.front());
    EXPECT_GT(R.ChecksRun, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Verifier mutation self-test
//===----------------------------------------------------------------------===//

namespace {

/// One seeded corruption applied to a copy of the program's CFG. Returns
/// false when the graph has no site for this corruption kind.
bool corrupt(ProgramCfg &Cfg, int Kind) {
  for (FuncCfg &F : Cfg.Funcs) {
    switch (Kind) {
    case 0: // drop a statement from its block
      for (CfgBlock &B : F.Blocks)
        if (!B.Stmts.empty()) {
          B.Stmts.pop_back();
          return true;
        }
      return false;
    case 1: // duplicate a statement into a second block
      for (CfgBlock &B : F.Blocks)
        if (!B.Stmts.empty()) {
          F.Blocks[F.Exit].Stmts.push_back(B.Stmts.front());
          return true;
        }
      return false;
    case 2: // successor edge to an out-of-range block
      F.Blocks[F.Entry].Succs.push_back(
          {static_cast<uint32_t>(F.Blocks.size()), CfgEdgeKind::Fall});
      return true;
    case 3: // break the pred/succ mirror
      for (CfgBlock &B : F.Blocks)
        if (!B.Preds.empty()) {
          B.Preds.pop_back();
          return true;
        }
      return false;
    case 4: // exit block grows a successor
      F.Blocks[F.Exit].Succs.push_back({F.Entry, CfgEdgeKind::Fall});
      return true;
    case 5: // a reachable non-exit block loses its successors
      for (uint32_t B : F.Rpo)
        if (B != F.Exit && !F.Blocks[B].Succs.empty()) {
          F.Blocks[B].Succs.clear();
          return true;
        }
      return false;
    case 6: // swap two RPO entries
      if (F.Rpo.size() >= 2) {
        std::swap(F.Rpo[0], F.Rpo[1]);
        return true;
      }
      return false;
    default: // stale BlockOfStmt entry
      for (CfgBlock &B : F.Blocks)
        for (uint32_t S : B.Stmts) {
          Cfg.BlockOfStmt[S] = Cfg.BlockOfStmt[S] + 1;
          return true;
        }
      return false;
    }
  }
  return false;
}

const char *corruptionName(int Kind) {
  static const char *Names[] = {
      "dropped statement",     "duplicated statement", "out-of-range edge",
      "broken pred mirror",    "exit successor",       "successor-less block",
      "swapped RPO entries",   "stale BlockOfStmt"};
  return Names[Kind];
}

} // namespace

TEST(Cfg, EverySeededCorruptionIsCaught) {
  auto P = compileOrDie("int c; int x; int *p;"
                        "void f(void) {"
                        "  if (c) { p = &x; } else { p = p; }"
                        "  while (c) { p = &x; }"
                        "  p = p;"
                        "}"
                        "int main(void) { f(); return 0; }");
  NormProgram &Prog = P->Prog;
  std::vector<char> Defined(Prog.Funcs.size(), 0);
  for (size_t F = 0; F < Prog.Funcs.size(); ++F)
    Defined[F] = Prog.Funcs[F].IsDefined ? 1 : 0;
  NormProgram::StmtOrder Order = Prog.stmtOrder();

  // Zero false alarms on the unmutated graph.
  ASSERT_TRUE(
      verifyCfg(Prog.Cfg, Order.ByFunc, Defined, Prog.Stmts.size()).ok());

  int Applied = 0, Caught = 0;
  for (int Kind = 0; Kind < 8; ++Kind) {
    ProgramCfg Mutated = Prog.Cfg; // deep copy
    if (!corrupt(Mutated, Kind))
      continue;
    ++Applied;
    CfgVerifyResult R =
        verifyCfg(Mutated, Order.ByFunc, Defined, Prog.Stmts.size());
    if (!R.ok())
      ++Caught;
    EXPECT_FALSE(R.ok()) << corruptionName(Kind) << " went undetected";
  }
  // The acceptance bar: every corruption kind applies and is caught.
  EXPECT_EQ(Applied, 8);
  EXPECT_EQ(Caught, Applied);
}
