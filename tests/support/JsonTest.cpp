//===--- JsonTest.cpp - Unit tests for the JSON toolkit -------------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "gtest/gtest.h"

using namespace spa;

TEST(JsonWriter, EmitsNestedContainers) {
  std::string Out;
  JsonWriter W(Out);
  W.open(nullptr);
  W.field("name", std::string("spa"));
  W.field("count", static_cast<uint64_t>(3));
  W.field("ok", true);
  W.openArray("items");
  W.value("a");
  W.value("b");
  W.closeArray();
  W.open("inner");
  W.field("pi", 3.5);
  W.close();
  W.close();
  EXPECT_EQ(Out, "{\"name\":\"spa\",\"count\":3,\"ok\":true,"
                 "\"items\":[\"a\",\"b\"],\"inner\":{\"pi\":3.5}}");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  std::string Out;
  JsonWriter W(Out);
  W.open(nullptr);
  W.field("s", std::string("a\"b\\c\n\t"));
  W.close();
  EXPECT_EQ(Out, "{\"s\":\"a\\\"b\\\\c\\n\\t\"}");
}

TEST(JsonParser, RoundTripsWriterOutput) {
  std::string Out;
  JsonWriter W(Out);
  W.open(nullptr);
  W.field("version", std::string("2.1.0"));
  W.openArray("runs");
  W.open(nullptr);
  W.field("n", static_cast<uint64_t>(42));
  W.close();
  W.closeArray();
  W.close();

  auto V = parseJson(Out);
  ASSERT_TRUE(V.has_value());
  ASSERT_EQ(V->K, JsonValue::Kind::Object);
  const JsonValue *Version = V->find("version");
  ASSERT_NE(Version, nullptr);
  EXPECT_EQ(Version->Str, "2.1.0");
  const JsonValue *Runs = V->find("runs");
  ASSERT_NE(Runs, nullptr);
  ASSERT_EQ(Runs->Items.size(), 1u);
  const JsonValue *N = Runs->Items[0].find("n");
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->Number, 42.0);
}

TEST(JsonParser, ParsesScalarsAndEscapes) {
  auto V = parseJson(R"({"t": true, "f": false, "z": null, )"
                     R"("neg": -2.5e1, "u": "\u0041\u00e9"})");
  ASSERT_TRUE(V.has_value());
  EXPECT_TRUE(V->find("t")->Bool);
  EXPECT_FALSE(V->find("f")->Bool);
  EXPECT_EQ(V->find("z")->K, JsonValue::Kind::Null);
  EXPECT_EQ(V->find("neg")->Number, -25.0);
  EXPECT_EQ(V->find("u")->Str, "A\xc3\xa9"); // \u escapes decode to UTF-8
}

TEST(JsonParser, RejectsMalformedDocuments) {
  EXPECT_FALSE(parseJson("").has_value());
  EXPECT_FALSE(parseJson("{").has_value());
  EXPECT_FALSE(parseJson("[1,]").has_value());
  EXPECT_FALSE(parseJson("{\"a\" 1}").has_value());
  EXPECT_FALSE(parseJson("tru").has_value());
  EXPECT_FALSE(parseJson("{} trailing").has_value());
  EXPECT_FALSE(parseJson("\"unterminated").has_value());
  EXPECT_FALSE(parseJson("{\"a\": 01x}").has_value());
}

TEST(JsonParser, AcceptsWhitespaceEverywhere) {
  auto V = parseJson(" \n\t{ \"a\" : [ 1 , 2 ] }\r\n");
  ASSERT_TRUE(V.has_value());
  ASSERT_EQ(V->find("a")->Items.size(), 2u);
}
