//===--- SupportTest.cpp - Unit tests for the support library -------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/IdSet.h"
#include "support/StringInterner.h"
#include "support/TablePrinter.h"

#include "gtest/gtest.h"

using namespace spa;

TEST(StringInterner, DeduplicatesAndRoundTrips) {
  StringInterner Strings;
  Symbol A = Strings.intern("alpha");
  Symbol B = Strings.intern("beta");
  Symbol A2 = Strings.intern("alpha");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(Strings.text(A), "alpha");
  EXPECT_EQ(Strings.text(B), "beta");
  EXPECT_EQ(Strings.size(), 2u);
}

TEST(StringInterner, ShortStringsSurviveGrowth) {
  // Symbols must stay valid and unique across many insertions (the
  // storage must not invalidate previously handed-out views).
  StringInterner Strings;
  std::vector<Symbol> Syms;
  for (int I = 0; I < 1000; ++I)
    Syms.push_back(Strings.intern("s" + std::to_string(I)));
  for (int I = 0; I < 1000; ++I) {
    EXPECT_EQ(Strings.text(Syms[I]), "s" + std::to_string(I));
    EXPECT_EQ(Strings.intern("s" + std::to_string(I)), Syms[I]);
  }
}

TEST(StringInterner, EmptyAndEmbeddedNul) {
  StringInterner Strings;
  Symbol Empty = Strings.intern("");
  EXPECT_EQ(Strings.text(Empty), "");
  std::string WithNul("a\0b", 3);
  Symbol S = Strings.intern(WithNul);
  EXPECT_EQ(Strings.text(S).size(), 3u);
}

namespace {
struct TestTag {};
using TestId = Id<TestTag>;
using TestSet = IdSet<TestTag>;
} // namespace

TEST(IdSet, InsertKeepsSortedUnique) {
  TestSet Set;
  EXPECT_TRUE(Set.insert(TestId(5)));
  EXPECT_TRUE(Set.insert(TestId(1)));
  EXPECT_TRUE(Set.insert(TestId(3)));
  EXPECT_FALSE(Set.insert(TestId(3)));
  EXPECT_EQ(Set.size(), 3u);
  uint32_t Prev = 0;
  for (TestId V : Set) {
    EXPECT_GE(V.index(), Prev);
    Prev = V.index();
  }
  EXPECT_TRUE(Set.contains(TestId(5)));
  EXPECT_FALSE(Set.contains(TestId(2)));
}

TEST(IdSet, InsertAllReturnsGrowth) {
  TestSet A, B;
  A.insert(TestId(1));
  A.insert(TestId(2));
  B.insert(TestId(2));
  B.insert(TestId(3));
  B.insert(TestId(4));
  EXPECT_EQ(A.insertAll(B), 2u);
  EXPECT_EQ(A.size(), 4u);
  EXPECT_EQ(A.insertAll(B), 0u);
}

TEST(IdSet, InsertAllFromEmpty) {
  TestSet A, Empty;
  A.insert(TestId(7));
  EXPECT_EQ(A.insertAll(Empty), 0u);
  EXPECT_EQ(Empty.insertAll(A), 1u);
}

TEST(Diagnostics, CountsAndFormats) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({1, 2}, "watch out");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({3, 4}, "boom");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  std::string Text = Diags.formatAll();
  EXPECT_NE(Text.find("1:2: warning: watch out"), std::string::npos);
  EXPECT_NE(Text.find("3:4: error: boom"), std::string::npos);
}

TEST(TablePrinter, AlignsColumnsAndRightAlignsNumbers) {
  TablePrinter Table({"name", "value"});
  Table.addRow({"alpha", "1.25"});
  Table.addRow({"b", "300"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("alpha |  1.25"), std::string::npos);
  EXPECT_NE(Out.find("b     |   300"), std::string::npos);
}

TEST(TablePrinter, FixedFormatsDecimals) {
  EXPECT_EQ(TablePrinter::fixed(1.005, 2), "1.00");
  EXPECT_EQ(TablePrinter::fixed(2.5, 1), "2.5");
  EXPECT_EQ(TablePrinter::fixed(3.0, 0), "3");
}
