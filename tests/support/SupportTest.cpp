//===--- SupportTest.cpp - Unit tests for the support library -------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/IdSet.h"
#include "support/SegmentedVector.h"
#include "support/StringInterner.h"
#include "support/TablePrinter.h"
#include "support/UnionFind.h"

#include "gtest/gtest.h"

using namespace spa;

TEST(StringInterner, DeduplicatesAndRoundTrips) {
  StringInterner Strings;
  Symbol A = Strings.intern("alpha");
  Symbol B = Strings.intern("beta");
  Symbol A2 = Strings.intern("alpha");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(Strings.text(A), "alpha");
  EXPECT_EQ(Strings.text(B), "beta");
  EXPECT_EQ(Strings.size(), 2u);
}

TEST(StringInterner, ShortStringsSurviveGrowth) {
  // Symbols must stay valid and unique across many insertions (the
  // storage must not invalidate previously handed-out views).
  StringInterner Strings;
  std::vector<Symbol> Syms;
  for (int I = 0; I < 1000; ++I)
    Syms.push_back(Strings.intern("s" + std::to_string(I)));
  for (int I = 0; I < 1000; ++I) {
    EXPECT_EQ(Strings.text(Syms[I]), "s" + std::to_string(I));
    EXPECT_EQ(Strings.intern("s" + std::to_string(I)), Syms[I]);
  }
}

TEST(StringInterner, EmptyAndEmbeddedNul) {
  StringInterner Strings;
  Symbol Empty = Strings.intern("");
  EXPECT_EQ(Strings.text(Empty), "");
  std::string WithNul("a\0b", 3);
  Symbol S = Strings.intern(WithNul);
  EXPECT_EQ(Strings.text(S).size(), 3u);
}

namespace {
struct TestTag {};
using TestId = Id<TestTag>;
using TestSet = IdSet<TestTag>;
} // namespace

TEST(IdSet, InsertKeepsSortedUnique) {
  TestSet Set;
  EXPECT_TRUE(Set.insert(TestId(5)));
  EXPECT_TRUE(Set.insert(TestId(1)));
  EXPECT_TRUE(Set.insert(TestId(3)));
  EXPECT_FALSE(Set.insert(TestId(3)));
  EXPECT_EQ(Set.size(), 3u);
  uint32_t Prev = 0;
  for (TestId V : Set) {
    EXPECT_GE(V.index(), Prev);
    Prev = V.index();
  }
  EXPECT_TRUE(Set.contains(TestId(5)));
  EXPECT_FALSE(Set.contains(TestId(2)));
}

TEST(IdSet, InsertAllReturnsGrowth) {
  TestSet A, B;
  A.insert(TestId(1));
  A.insert(TestId(2));
  B.insert(TestId(2));
  B.insert(TestId(3));
  B.insert(TestId(4));
  EXPECT_EQ(A.insertAll(B), 2u);
  EXPECT_EQ(A.size(), 4u);
  EXPECT_EQ(A.insertAll(B), 0u);
}

TEST(IdSet, InsertAllFromEmpty) {
  TestSet A, Empty;
  A.insert(TestId(7));
  EXPECT_EQ(A.insertAll(Empty), 0u);
  EXPECT_EQ(Empty.insertAll(A), 1u);
}

TEST(IdSet, InsertAllRecordsNewElements) {
  TestSet A, B;
  A.insert(TestId(1));
  A.insert(TestId(4));
  B.insert(TestId(1));
  B.insert(TestId(2));
  B.insert(TestId(9));
  std::vector<TestId> New;
  EXPECT_EQ(A.insertAll(B, &New), 2u);
  ASSERT_EQ(New.size(), 2u);
  EXPECT_EQ(New[0], TestId(2));
  EXPECT_EQ(New[1], TestId(9));
  // No-change merges append nothing.
  EXPECT_EQ(A.insertAll(B, &New), 0u);
  EXPECT_EQ(New.size(), 2u);
}

TEST(IdSet, InsertAllFromSelfIsANoOp) {
  TestSet A;
  A.insert(TestId(1));
  A.insert(TestId(2));
  std::vector<TestId> New;
  EXPECT_EQ(A.insertAll(A, &New), 0u);
  EXPECT_EQ(A.size(), 2u);
  EXPECT_TRUE(New.empty());
}

TEST(IdSet, ContainsAll) {
  TestSet A, Sub, Super, Disjoint, Empty;
  for (uint32_t I : {1, 3, 5, 7, 9})
    A.insert(TestId(I));
  Sub.insert(TestId(3));
  Sub.insert(TestId(9));
  Super.insert(TestId(3));
  Super.insert(TestId(4)); // 4 is missing from A
  Disjoint.insert(TestId(2));
  EXPECT_TRUE(A.containsAll(Sub));
  EXPECT_TRUE(A.containsAll(A));
  EXPECT_TRUE(A.containsAll(Empty));
  EXPECT_FALSE(A.containsAll(Super));
  EXPECT_FALSE(A.containsAll(Disjoint));
  // A larger set can never be contained in a smaller one.
  EXPECT_FALSE(Sub.containsAll(A));
  EXPECT_TRUE(Empty.containsAll(Empty));
  EXPECT_FALSE(Empty.containsAll(Sub));
}

TEST(IdSet, InsertAllSubsetFastPathLeavesSetUntouched) {
  TestSet A, Sub;
  for (uint32_t I : {2, 4, 6, 8})
    A.insert(TestId(I));
  Sub.insert(TestId(4));
  Sub.insert(TestId(8));
  std::vector<TestId> New;
  // The no-new-elements pre-scan must report zero growth, log nothing,
  // and keep the contents bit-for-bit.
  TestSet Before = A;
  EXPECT_EQ(A.insertAll(Sub, &New), 0u);
  EXPECT_TRUE(New.empty());
  EXPECT_TRUE(A == Before);
}

TEST(IdSet, InsertAllAppendFastPath) {
  TestSet A, Tail;
  A.insert(TestId(1));
  A.insert(TestId(5));
  // Every incoming element sorts after A's last: pure append.
  Tail.insert(TestId(6));
  Tail.insert(TestId(7));
  Tail.insert(TestId(9));
  std::vector<TestId> New;
  EXPECT_EQ(A.insertAll(Tail, &New), 3u);
  EXPECT_EQ(A.size(), 5u);
  ASSERT_EQ(New.size(), 3u);
  EXPECT_EQ(New[0], TestId(6));
  EXPECT_EQ(New[2], TestId(9));
  uint32_t Prev = 0;
  for (TestId V : A) {
    EXPECT_GE(V.index(), Prev);
    Prev = V.index();
  }
  // Into an empty set the append path also applies.
  TestSet Empty;
  EXPECT_EQ(Empty.insertAll(Tail), 3u);
  EXPECT_TRUE(Empty == Tail);
  // Equal boundary elements (6 == A's max) must NOT take the append path.
  TestSet Overlap;
  Overlap.insert(TestId(9));
  Overlap.insert(TestId(10));
  EXPECT_EQ(A.insertAll(Overlap), 1u);
  EXPECT_EQ(A.size(), 6u);
}

TEST(UnionFind, IdentityUntilFirstMerge) {
  UnionFind<TestTag> UF;
  EXPECT_TRUE(UF.identity());
  EXPECT_EQ(UF.find(TestId(42)), TestId(42)); // never-seen id
  EXPECT_FALSE(UF.unite(TestId(3), TestId(3)));
  EXPECT_TRUE(UF.identity()); // self-unite is not a merge
  EXPECT_TRUE(UF.unite(TestId(1), TestId(2)));
  EXPECT_FALSE(UF.identity());
  EXPECT_EQ(UF.merges(), 1u);
  EXPECT_EQ(UF.find(TestId(1)), UF.find(TestId(2)));
  EXPECT_FALSE(UF.unite(TestId(1), TestId(2))); // already one class
}

TEST(UnionFind, TransitiveClassesAndUntouchedIds) {
  UnionFind<TestTag> UF;
  UF.unite(TestId(1), TestId(2));
  UF.unite(TestId(2), TestId(3));
  UF.unite(TestId(10), TestId(11));
  EXPECT_EQ(UF.find(TestId(1)), UF.find(TestId(3)));
  EXPECT_NE(UF.find(TestId(1)), UF.find(TestId(10)));
  // Ids outside every merge stay their own class, even between merged ids.
  EXPECT_EQ(UF.find(TestId(5)), TestId(5));
  EXPECT_EQ(UF.merges(), 3u);
  // The representative is a member of its class.
  TestId Rep = UF.find(TestId(1));
  EXPECT_TRUE(Rep == TestId(1) || Rep == TestId(2) || Rep == TestId(3));
}

TEST(SegmentedVector, ReferencesSurviveGrowth) {
  SegmentedVector<int, 4> V;
  int &First = V.grow(0);
  First = 42;
  // Grow across many segment boundaries; &First must not move.
  for (size_t I = 1; I < 1000; ++I)
    V.grow(I) = static_cast<int>(I);
  EXPECT_EQ(&First, &V[0]);
  EXPECT_EQ(V[0], 42);
  EXPECT_EQ(V.size(), 1000u);
  EXPECT_EQ(V[999], 999);
}

TEST(SegmentedVector, GrowDefaultConstructsTheGap) {
  SegmentedVector<int, 4> V;
  V.grow(10) = 7;
  EXPECT_EQ(V.size(), 11u);
  for (size_t I = 0; I < 10; ++I)
    EXPECT_EQ(V[I], 0);
  EXPECT_EQ(V[10], 7);
}

TEST(SegmentedVector, ForEachVisitsInIndexOrder) {
  SegmentedVector<int, 4> V;
  for (size_t I = 0; I < 9; ++I)
    V.emplaceBack() = static_cast<int>(I * I);
  std::vector<int> Seen;
  V.forEach([&Seen](const int &X) { Seen.push_back(X); });
  ASSERT_EQ(Seen.size(), 9u);
  for (size_t I = 0; I < 9; ++I)
    EXPECT_EQ(Seen[I], static_cast<int>(I * I));
  V.clear();
  EXPECT_TRUE(V.empty());
}

TEST(Diagnostics, CountsAndFormats) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({1, 2}, "watch out");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({3, 4}, "boom");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  std::string Text = Diags.formatAll();
  EXPECT_NE(Text.find("1:2: warning: watch out"), std::string::npos);
  EXPECT_NE(Text.find("3:4: error: boom"), std::string::npos);
}

TEST(TablePrinter, AlignsColumnsAndRightAlignsNumbers) {
  TablePrinter Table({"name", "value"});
  Table.addRow({"alpha", "1.25"});
  Table.addRow({"b", "300"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("alpha |  1.25"), std::string::npos);
  EXPECT_NE(Out.find("b     |   300"), std::string::npos);
}

TEST(TablePrinter, FixedFormatsDecimals) {
  EXPECT_EQ(TablePrinter::fixed(1.005, 2), "1.00");
  EXPECT_EQ(TablePrinter::fixed(2.5, 1), "2.5");
  EXPECT_EQ(TablePrinter::fixed(3.0, 0), "3");
}

TEST(Diagnostics, ReportCarriesACode) {
  DiagnosticEngine Diags;
  Diags.report(DiagKind::Warning, {7, 3}, "cast-safety", "bad view");
  ASSERT_EQ(Diags.all().size(), 1u);
  EXPECT_EQ(Diags.all()[0].Code, "cast-safety");
  EXPECT_EQ(Diags.formatAll(), "7:3: warning: [cast-safety] bad view\n");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.report(DiagKind::Error, {8, 1}, "x", "fatal");
  EXPECT_EQ(Diags.errorCount(), 1u);
}

TEST(Diagnostics, SortAndDedupeOrdersByLocationThenCode) {
  DiagnosticEngine Diags;
  Diags.report(DiagKind::Warning, {9, 1}, "b-code", "later");
  Diags.report(DiagKind::Warning, {2, 5}, "z-code", "line two");
  Diags.report(DiagKind::Warning, {2, 1}, "a-code", "first");
  Diags.report(DiagKind::Warning, {2, 5}, "z-code", "line two"); // dup
  Diags.sortAndDedupe();
  ASSERT_EQ(Diags.all().size(), 3u);
  EXPECT_EQ(Diags.all()[0].Code, "a-code");
  EXPECT_EQ(Diags.all()[1].Code, "z-code");
  EXPECT_EQ(Diags.all()[2].Code, "b-code");
}

TEST(Diagnostics, SortAndDedupeTieBreaksOnOffsetAndOrigin) {
  // Two findings render at the same line:column with the same code; the
  // byte offset and the emitting-checker id decide the order, so the
  // final list no longer depends on checker execution order. Run both
  // insertion orders and require identical results.
  auto Fill = [](DiagnosticEngine &Diags, bool Swap) {
    SourceLoc Early{4, 2, 30};
    SourceLoc Late{4, 2, 55}; // same rendered position, later in buffer
    if (Swap) {
      Diags.report(DiagKind::Warning, Late, "code", "from beta", "beta");
      Diags.report(DiagKind::Warning, Early, "code", "from alpha", "alpha");
    } else {
      Diags.report(DiagKind::Warning, Early, "code", "from alpha", "alpha");
      Diags.report(DiagKind::Warning, Late, "code", "from beta", "beta");
    }
    Diags.sortAndDedupe();
  };
  DiagnosticEngine A, B;
  Fill(A, false);
  Fill(B, true);
  ASSERT_EQ(A.all().size(), 2u);
  ASSERT_EQ(B.all().size(), 2u);
  for (size_t I = 0; I < 2; ++I) {
    EXPECT_EQ(A.all()[I].Origin, B.all()[I].Origin);
    EXPECT_EQ(A.all()[I].Message, B.all()[I].Message);
  }
  EXPECT_EQ(A.all()[0].Origin, "alpha"); // smaller byte offset first
  EXPECT_EQ(A.all()[1].Origin, "beta");
}

TEST(Diagnostics, OffsetDoesNotAffectDedupe) {
  // Offset is a tie-break, not part of identity: the same finding
  // surfaced from two statements of one site still collapses even if
  // synthesized locations carry different offsets.
  DiagnosticEngine Diags;
  Diags.report(DiagKind::Warning, {3, 1, 10}, "code", "same", "origin");
  Diags.report(DiagKind::Warning, {3, 1, 90}, "code", "same", "origin");
  Diags.sortAndDedupe();
  EXPECT_EQ(Diags.all().size(), 1u);
}

TEST(Diagnostics, SortAndDedupeRecountsErrors) {
  DiagnosticEngine Diags;
  Diags.report(DiagKind::Error, {1, 1}, "e", "same");
  Diags.report(DiagKind::Error, {1, 1}, "e", "same");
  EXPECT_EQ(Diags.errorCount(), 2u);
  Diags.sortAndDedupe();
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.all().size(), 1u);
}
