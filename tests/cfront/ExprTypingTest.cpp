//===--- ExprTypingTest.cpp - Expression typing depth ---------------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The normalizer's statement shapes depend on the types the parser
/// assigns to expressions; these tests pin the typing rules down by
/// observing their effect on declared initializer targets (a global's
/// declared type must accept the expression for the program to make
/// sense to the analysis).
///
//===----------------------------------------------------------------------===//

#include "cfront/Parser.h"

#include "gtest/gtest.h"

using namespace spa;

namespace {

/// Parses a program whose last global "probe" is initialized with the
/// expression under test, and returns probe's declared type spelling plus
/// whether everything parsed.
struct Typed {
  StringInterner Strings;
  TypeTable Types;
  DiagnosticEngine Diags;
  TranslationUnit TU{Types, Strings};
  bool Ok = false;

  explicit Typed(std::string_view Source) {
    Parser P(Source, TU, Diags);
    Ok = P.parseTranslationUnit();
  }
};

} // namespace

TEST(ExprTyping, DerefOfPointerToArrayYieldsArray) {
  // *pa has type int[4]; indexing it must give int.
  Typed P("int (*pa)[4];"
          "int n;"
          "void f(void) { n = (*pa)[2]; }");
  EXPECT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(ExprTyping, ArrowThroughArrayOfPointers) {
  Typed P("struct S { int v; } *table[4];"
          "int n;"
          "void f(void) { n = table[1]->v; }");
  EXPECT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(ExprTyping, CallThroughMemberFunctionPointerChain) {
  Typed P("struct Ops { int (*get)(void); };"
          "struct Obj { struct Ops *ops; } o;"
          "int n;"
          "void f(void) { n = o.ops->get(); }");
  EXPECT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(ExprTyping, TernaryPrefersPointerArm) {
  Typed P("int *p; int x;"
          "void f(int c) { p = c ? p : 0; p = c ? 0 : &x; }");
  EXPECT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(ExprTyping, PointerDifferenceIsInteger) {
  Typed P("int a[8]; int n;"
          "void f(void) { n = &a[5] - &a[2]; }");
  EXPECT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(ExprTyping, AddressOfArrayElementThroughPointer) {
  Typed P("struct S { char buf[16]; } *p;"
          "char *c;"
          "void f(void) { c = &p->buf[3]; }");
  EXPECT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(ExprTyping, CompoundAssignOnDeref) {
  Typed P("int *p;"
          "void f(void) { *p += 3; *p <<= 1; }");
  EXPECT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(ExprTyping, SizeofOfDereferencedExpression) {
  Typed P("struct S { int a[10]; } *p;"
          "int n[sizeof(*p) / sizeof(int)];");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  for (VarDecl *Var : P.TU.Globals)
    if (P.Strings.text(Var->Name) == "n") {
      EXPECT_EQ(P.Types.toString(Var->Ty, P.Strings), "int [10]");
    }
}

TEST(ExprTyping, NestedCastsParse) {
  Typed P("long l; char *c;"
          "void f(void) { l = (long)(int *)(void *)c; }");
  EXPECT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(ExprTyping, FunctionNameDecaysInConditions) {
  Typed P("void g(void);"
          "int n;"
          "void f(void) { if (g) n = 1; }");
  EXPECT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(ExprTyping, StringLiteralIndexing) {
  Typed P("char c;"
          "void f(void) { c = \"hello\"[1]; }");
  EXPECT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(ExprTyping, ChainedAssignmentsAssociateRight) {
  Typed P("int *a, *b, *c; int x;"
          "void f(void) { a = b = c = &x; }");
  EXPECT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(ExprTyping, NegativeArraySizeIsSafe) {
  // A pathological constant folds to <= 0; the parser clamps rather than
  // crashing, and the declaration still exists.
  Typed P("int a[2 - 5];");
  EXPECT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(ExprTyping, EnumArithmeticInConstantContexts) {
  Typed P("enum E { A = 3, B = A * 2, C = B + A };"
          "int buf[C];");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  for (VarDecl *Var : P.TU.Globals)
    if (P.Strings.text(Var->Name) == "buf") {
      EXPECT_EQ(P.Types.toString(Var->Ty, P.Strings), "int [9]");
    }
}

TEST(ExprTyping, CommaInForHeaders) {
  Typed P("int i, j, n;"
          "void f(void) { for (i = 0, j = 9; i < j; i++, j--) n++; }");
  EXPECT_TRUE(P.Ok) << P.Diags.formatAll();
}
