//===--- RobustnessTest.cpp - Hostile-input behavior ----------------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front end must reject malformed input with diagnostics -- never
/// crash, hang, or accept garbage silently. These tests feed truncated,
/// deeply nested, and pseudo-random inputs through the whole pipeline.
///
//===----------------------------------------------------------------------===//

#include "pta/Frontend.h"

#include "gtest/gtest.h"

using namespace spa;

namespace {

/// Runs the full pipeline; returns true if it compiled cleanly. The point
/// of these tests is that the call returns at all and the invariant
/// "null result iff errors" holds.
bool pipelineSurvives(std::string_view Source) {
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(Source, Diags);
  EXPECT_EQ(P == nullptr, Diags.hasErrors());
  if (!P)
    return false;
  AnalysisOptions Opts;
  Opts.Model = ModelKind::CommonInitialSeq;
  Analysis A(P->Prog, Opts);
  A.run();
  return true;
}

} // namespace

TEST(Robustness, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(pipelineSurvives(""));
  EXPECT_TRUE(pipelineSurvives("   \n\t  /* nothing */ // here\n"));
}

TEST(Robustness, TruncatedConstructs) {
  const char *Cases[] = {
      "int",
      "int x",
      "int x = ",
      "struct S {",
      "struct S { int a;",
      "void f(void) {",
      "void f(void) { if (",
      "void f(void) { return",
      "int a[",
      "int (*f)(",
      "typedef",
      "enum E { A,",
      "char *s = \"unterminated",
  };
  for (const char *Source : Cases)
    EXPECT_FALSE(pipelineSurvives(Source)) << Source;
}

TEST(Robustness, DeepExpressionNesting) {
  std::string Source = "int x; void f(void) { x = ";
  for (int I = 0; I < 200; ++I)
    Source += "(1 + ";
  Source += "2";
  for (int I = 0; I < 200; ++I)
    Source += ")";
  Source += "; }";
  EXPECT_TRUE(pipelineSurvives(Source));
}

TEST(Robustness, DeepDeclaratorNesting) {
  std::string Source = "int ";
  for (int I = 0; I < 100; ++I)
    Source += "*";
  Source += "p;";
  EXPECT_TRUE(pipelineSurvives(Source));
}

TEST(Robustness, ManyErrorsDoNotLoopForever) {
  std::string Source;
  for (int I = 0; I < 500; ++I)
    Source += "@ $ ` \x01 ;; }} (( int 3x;\n";
  EXPECT_FALSE(pipelineSurvives(Source));
}

TEST(Robustness, PseudoRandomBytesNeverCrash) {
  // Deterministic pseudo-random printable soup, several seeds.
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    uint64_t State = Seed * 0x9e3779b97f4a7c15ull;
    std::string Source;
    for (int I = 0; I < 2000; ++I) {
      State ^= State >> 12;
      State ^= State << 25;
      State ^= State >> 27;
      char C = static_cast<char>(32 + (State * 0x2545F4914F6CDD1Dull >> 57));
      Source.push_back(C);
    }
    (void)pipelineSurvives(Source); // must terminate without crashing
  }
}

TEST(Robustness, TokenSoupFromValidTokens) {
  EXPECT_FALSE(pipelineSurvives(
      "struct -> int [ ] ( ++ typedef ; , . case 123 \"s\" 'c' } { "
      "while if sizeof & * ... enum = == <= >> |= ? : void"));
}

TEST(Robustness, SelfReferentialTypesTerminate) {
  EXPECT_TRUE(pipelineSurvives(
      "struct a { struct a *next; };"
      "struct b { struct a inner; struct b *self; } x;"
      "void f(void) { x.self = &x; x.self = x.self->self; }"));
}

TEST(Robustness, IncompleteTypeUsesAreDiagnosed) {
  EXPECT_FALSE(pipelineSurvives("struct never_defined s;"
                                "void f(void) { s.field = 1; }"));
}

TEST(Robustness, HugeButValidProgramIsFine) {
  std::string Source = "int sink;\n";
  for (int I = 0; I < 400; ++I) {
    Source += "int g" + std::to_string(I) + ";\n";
    Source += "void f" + std::to_string(I) + "(void) { sink = g" +
              std::to_string(I) + "; }\n";
  }
  EXPECT_TRUE(pipelineSurvives(Source));
}
