//===--- LexerTest.cpp - Unit tests for the lexer -------------------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "cfront/Lexer.h"

#include "gtest/gtest.h"

using namespace spa;

namespace {

std::vector<Token> lexAll(std::string_view Source, DiagnosticEngine &Diags) {
  StringInterner Strings;
  Lexer Lex(Source, Strings, Diags);
  std::vector<Token> Out;
  for (;;) {
    Token Tok = Lex.next();
    if (Tok.Kind == TokKind::Eof)
      break;
    Out.push_back(Tok);
  }
  return Out;
}

std::vector<TokKind> kindsOf(std::string_view Source) {
  DiagnosticEngine Diags;
  std::vector<TokKind> Kinds;
  for (const Token &Tok : lexAll(Source, Diags))
    Kinds.push_back(Tok.Kind);
  EXPECT_FALSE(Diags.hasErrors());
  return Kinds;
}

} // namespace

TEST(Lexer, KeywordsAndIdentifiers) {
  auto Kinds = kindsOf("struct foo int intx _bar");
  EXPECT_EQ(Kinds, (std::vector<TokKind>{
                       TokKind::KwStruct, TokKind::Identifier, TokKind::KwInt,
                       TokKind::Identifier, TokKind::Identifier}));
}

TEST(Lexer, IntegerLiteralsAllBases) {
  DiagnosticEngine Diags;
  auto Toks = lexAll("42 0x2A 052 1u 7L 9UL", Diags);
  ASSERT_EQ(Toks.size(), 6u);
  EXPECT_EQ(Toks[0].IntValue, 42u);
  EXPECT_EQ(Toks[1].IntValue, 42u);
  EXPECT_EQ(Toks[2].IntValue, 42u); // octal
  EXPECT_EQ(Toks[3].IntValue, 1u);
  EXPECT_EQ(Toks[4].IntValue, 7u);
  EXPECT_EQ(Toks[5].IntValue, 9u);
}

TEST(Lexer, FloatLiterals) {
  DiagnosticEngine Diags;
  auto Toks = lexAll("3.25 1e3 2.5e-1 4f", Diags);
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Kind, TokKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(Toks[0].FloatValue, 3.25);
  EXPECT_DOUBLE_EQ(Toks[1].FloatValue, 1000.0);
  EXPECT_DOUBLE_EQ(Toks[2].FloatValue, 0.25);
  EXPECT_EQ(Toks[3].Kind, TokKind::FloatLiteral); // 4f via suffix
}

TEST(Lexer, CharAndStringEscapes) {
  DiagnosticEngine Diags;
  auto Toks = lexAll(R"('a' '\n' '\x41' "hi\tthere", "a" "b")", Diags);
  ASSERT_EQ(Toks.size(), 6u);
  EXPECT_EQ(Toks[0].IntValue, (uint64_t)'a');
  EXPECT_EQ(Toks[1].IntValue, (uint64_t)'\n');
  EXPECT_EQ(Toks[2].IntValue, 0x41u);
  EXPECT_EQ(Toks[3].StrValue, "hi\tthere");
  EXPECT_EQ(Toks[5].StrValue, "ab"); // adjacent literals concatenate
}

TEST(Lexer, MultiCharOperators) {
  auto Kinds = kindsOf("-> ++ -- << >> <<= >>= <= >= == != && || ... += &=");
  EXPECT_EQ(Kinds, (std::vector<TokKind>{
                       TokKind::Arrow, TokKind::PlusPlus, TokKind::MinusMinus,
                       TokKind::Shl, TokKind::Shr, TokKind::ShlAssign,
                       TokKind::ShrAssign, TokKind::LessEq, TokKind::GreaterEq,
                       TokKind::EqEq, TokKind::BangEq, TokKind::AmpAmp,
                       TokKind::PipePipe, TokKind::Ellipsis,
                       TokKind::PlusAssign, TokKind::AmpAssign}));
}

TEST(Lexer, CommentsAndDirectivesAreSkipped) {
  auto Kinds = kindsOf("a // line comment\n"
                       "/* block\n comment */ b\n"
                       "# 1 \"file.c\"\n"
                       "c");
  EXPECT_EQ(Kinds.size(), 3u);
}

TEST(Lexer, TracksLineAndColumn) {
  DiagnosticEngine Diags;
  auto Toks = lexAll("a\n  bb", Diags);
  ASSERT_EQ(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Column, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Column, 3u);
}

TEST(Lexer, ReportsUnterminatedLiterals) {
  DiagnosticEngine Diags;
  lexAll("\"never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());

  DiagnosticEngine Diags2;
  lexAll("/* never closed", Diags2);
  EXPECT_TRUE(Diags2.hasErrors());
}

TEST(Lexer, UnknownCharacterRecovers) {
  DiagnosticEngine Diags;
  auto Toks = lexAll("a @ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Toks.size(), 2u); // a and b still lexed
}

TEST(Lexer, DotVersusEllipsisVersusNumber) {
  auto Kinds = kindsOf("a.b 1.5 ...");
  EXPECT_EQ(Kinds, (std::vector<TokKind>{TokKind::Identifier, TokKind::Dot,
                                         TokKind::Identifier,
                                         TokKind::FloatLiteral,
                                         TokKind::Ellipsis}));
}
