//===--- ParserTest.cpp - Unit tests for the parser -----------------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "cfront/Parser.h"

#include "gtest/gtest.h"

using namespace spa;

namespace {

struct Parsed {
  StringInterner Strings;
  TypeTable Types;
  DiagnosticEngine Diags;
  TranslationUnit TU{Types, Strings};
  bool Ok = false;

  explicit Parsed(std::string_view Source) {
    Parser P(Source, TU, Diags);
    Ok = P.parseTranslationUnit();
  }

  VarDecl *global(const char *Name) {
    for (VarDecl *Var : TU.Globals)
      if (Strings.text(Var->Name) == Name)
        return Var;
    return nullptr;
  }

  FunctionDecl *function(const char *Name) {
    return TU.findFunction(Strings.intern(Name));
  }

  std::string typeOf(const char *GlobalName) {
    VarDecl *Var = global(GlobalName);
    return Var ? Types.toString(Var->Ty, Strings) : "<missing>";
  }
};

} // namespace

TEST(Parser, SimpleGlobals) {
  Parsed P("int a; char *b; double c[3];");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  EXPECT_EQ(P.typeOf("a"), "int");
  EXPECT_EQ(P.typeOf("b"), "char *");
  EXPECT_EQ(P.typeOf("c"), "double [3]");
}

TEST(Parser, DeclaratorPrecedence) {
  Parsed P("int *a[4];"      // array of pointer
           "int (*b)[4];"    // pointer to array
           "int (*c)(int);"  // pointer to function
           "int *(*d)(void);" // pointer to function returning int*
           "int (*e[2])(char *);"); // array of function pointers
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  EXPECT_EQ(P.typeOf("a"), "int * [4]");
  EXPECT_EQ(P.typeOf("b"), "int [4] *");
  EXPECT_EQ(P.typeOf("c"), "int (int) *");
  EXPECT_EQ(P.typeOf("d"), "int * () *");
  EXPECT_EQ(P.typeOf("e"), "int (char *) * [2]");
}

TEST(Parser, FunctionReturningFunctionPointer) {
  // int (*f(int a))(char): f is a function(int) returning ptr to
  // function(char) returning int.
  Parsed P("int (*f(int a))(char);");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  FunctionDecl *F = P.function("f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(P.Types.toString(F->Ty, P.Strings), "int (char) * (int)");
}

TEST(Parser, TypedefsActAsTypeNames) {
  Parsed P("typedef unsigned long size_t;"
           "typedef struct node Node;"
           "struct node { Node *next; size_t len; };"
           "Node head;"
           "size_t total;");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  EXPECT_EQ(P.typeOf("head"), "struct node");
  EXPECT_EQ(P.typeOf("total"), "unsigned long");
}

TEST(Parser, TypedefDoesNotShadowDeclaratorNames) {
  // "unsigned T;" where T is a typedef name still declares a variable T of
  // type unsigned (the specifier was already seen).
  Parsed P("typedef int T; unsigned T;");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  EXPECT_EQ(P.typeOf("T"), "unsigned int");
}

TEST(Parser, StructTagsAndForwardReferences) {
  Parsed P("struct list { struct list *next; int v; };"
           "struct tree;"
           "struct tree *root;"
           "struct tree { struct tree *kids[2]; };");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  EXPECT_EQ(P.typeOf("root"), "struct tree *");
  // Both references to "struct tree" resolve to the same record.
  VarDecl *Root = P.global("root");
  TypeId Pointee = P.Types.pointee(Root->Ty);
  EXPECT_TRUE(P.Types.record(P.Types.node(Pointee).Record).IsComplete);
}

TEST(Parser, EnumsDefineConstants) {
  Parsed P("enum color { RED, GREEN = 5, BLUE };"
           "int x[BLUE];");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  EXPECT_EQ(P.typeOf("x"), "int [6]"); // BLUE == 6
}

TEST(Parser, SizeofFoldsToConstants) {
  Parsed P("struct S { int a; char b; };"
           "int x[sizeof(struct S)];"
           "int y[sizeof(int *)];");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  EXPECT_EQ(P.typeOf("x"), "int [8]"); // ilp32 layout
  EXPECT_EQ(P.typeOf("y"), "int [4]");
}

TEST(Parser, CastVersusParenExpression) {
  Parsed P("typedef int T;"
           "int a, b;"
           "void f(void) {"
           "  a = (T)b;"    // cast
           "  a = (b);"     // parenthesized expr
           "  a = (T)(b);"  // cast of paren
           "}");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(Parser, MemberAccessResolvesIndices) {
  Parsed P("struct S { int a; int b; } s, *p;"
           "int f(void) { return s.b + p->a; }");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(Parser, UnknownMemberIsAnError) {
  Parsed P("struct S { int a; } s;"
           "int f(void) { return s.nope; }");
  EXPECT_FALSE(P.Ok);
  EXPECT_NE(P.Diags.formatAll().find("no member named 'nope'"),
            std::string::npos);
}

TEST(Parser, UndeclaredIdentifierIsAnError) {
  Parsed P("int f(void) { return mystery; }");
  EXPECT_FALSE(P.Ok);
}

TEST(Parser, ImplicitFunctionDeclaration) {
  Parsed P("int f(void) { return g(1, 2); }");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  FunctionDecl *G = P.function("g");
  ASSERT_NE(G, nullptr);
  EXPECT_TRUE(G->IsVariadic);
  EXPECT_FALSE(G->isDefined());
}

TEST(Parser, AllStatementForms) {
  Parsed P(R"(
int g;
void f(int n) {
  int i;
  if (n) g = 1; else g = 2;
  while (n > 0) n--;
  do { g++; } while (0);
  for (i = 0; i < n; i++) { if (i == 3) continue; if (i == 5) break; }
  for (;;) break;
  switch (n) {
  case 1: g = 10; break;
  case 2:
  default: g = 20; break;
  }
  goto done;
done:
  return;
}
)");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(Parser, LocalDeclarationsShadow) {
  Parsed P("int x;"
           "int f(void) { int x; { char x; } return x; }");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(Parser, InitializerLists) {
  Parsed P("struct P { int x; int y; };"
           "struct P origin = {0, 0};"
           "int table[3] = {1, 2, 3};"
           "struct P pts[2] = {{1, 2}, {3, 4}};"
           "char msg[] = \"hello\";"
           "char *names[] = {\"a\", \"b\"};");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(Parser, VariadicFunctionDefinition) {
  Parsed P("int log_msg(char *fmt, ...) { return fmt != 0; }");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  FunctionDecl *F = P.function("log_msg");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->IsVariadic);
  EXPECT_EQ(F->Params.size(), 1u);
}

TEST(Parser, UnionsAndBitfields) {
  Parsed P("union u { int i; char c[4]; };"
           "struct flags { int a : 1; int b : 2; int : 5; int c; };"
           "union u uu; struct flags ff;");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  VarDecl *FF = P.global("ff");
  const RecordDecl &Rec = P.Types.record(P.Types.node(FF->Ty).Record);
  EXPECT_EQ(Rec.Fields.size(), 3u); // unnamed bit-field adds no member
}

TEST(Parser, ConditionalAndCommaExpressions) {
  Parsed P("int a, b, c;"
           "void f(void) { a = b ? b : c; a = (b = 1, c = 2, b + c); }");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(Parser, RedefinitionOfTagIsAnError) {
  Parsed P("struct S { int a; }; struct S { int b; };");
  EXPECT_FALSE(P.Ok);
}

TEST(Parser, RecoversAndKeepsGoingAfterErrors) {
  Parsed P("int a = $$$;"
           "int b;");
  EXPECT_FALSE(P.Ok);
  EXPECT_NE(P.global("b"), nullptr); // later declarations still parsed
}

TEST(Parser, ExpressionTypesPropagate) {
  Parsed P("struct S { int *p; } s;"
           "int *q; int n;"
           "void f(void) {"
           "  q = s.p;"       // member type
           "  q = &n;"        // address-of
           "  n = *q;"        // deref
           "  q = q + n;"     // pointer arithmetic keeps pointer type
           "  n = q - q;"     // pointer difference is integer
           "}");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
}

TEST(Parser, StaticAndExternStorage) {
  Parsed P("static int hidden; extern int shared;"
           "static void helper(void) { hidden++; }");
  ASSERT_TRUE(P.Ok) << P.Diags.formatAll();
  EXPECT_TRUE(P.global("hidden")->IsStatic);
  EXPECT_TRUE(P.global("shared")->IsExtern);
  EXPECT_TRUE(P.function("helper")->IsStatic);
}
