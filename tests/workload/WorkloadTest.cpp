//===--- WorkloadTest.cpp - Corpus and generator unit tests ---------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "workload/Corpus.h"
#include "workload/Generator.h"

#include "flow/FlowPass.h"
#include "pta/Frontend.h"

#include "gtest/gtest.h"

using namespace spa;

TEST(Corpus, ManifestMatchesThePaperSplit) {
  const auto &Manifest = corpusManifest();
  ASSERT_EQ(Manifest.size(), 20u);
  size_t Casting = 0;
  for (const CorpusEntry &E : Manifest)
    if (E.HasStructCasting)
      ++Casting;
  EXPECT_EQ(Casting, 12u);
  // Non-casting group first, as in the paper's Figure 3.
  for (size_t I = 0; I < 8; ++I)
    EXPECT_FALSE(Manifest[I].HasStructCasting) << Manifest[I].Name;
}

TEST(Corpus, EveryFileLoadsAndIsNonTrivial) {
  for (const CorpusEntry &E : corpusManifest()) {
    std::string Source;
    ASSERT_TRUE(loadCorpusSource(E, Source)) << E.FileName;
    EXPECT_GT(Source.size(), 1000u) << E.FileName;
    EXPECT_NE(Source.find("int main(void)"), std::string::npos) << E.FileName;
  }
}

TEST(Corpus, CastingGroupActuallyCasts) {
  // Every casting program must trigger at least one struct-involving type
  // mismatch under Collapse-on-Cast; the non-casting group stays clean of
  // *direct* casts (only arithmetic-induced transitive effects allowed).
  for (const CorpusEntry &E : corpusManifest()) {
    std::string Source;
    ASSERT_TRUE(loadCorpusSource(E, Source));
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    ASSERT_TRUE(P != nullptr) << E.Name << Diags.formatAll();
    AnalysisOptions Opts;
    Opts.Model = ModelKind::CollapseOnCast;
    Analysis A(P->Prog, Opts);
    A.run();
    const ModelStats &MS = A.model().stats();
    if (E.HasStructCasting) {
      EXPECT_GT(MS.LookupMismatch + MS.ResolveMismatch, 0u) << E.Name;
    }
  }
}

TEST(Generator, HonorsShapeParameters) {
  GeneratorConfig Small;
  Small.Seed = 5;
  Small.NumFunctions = 1;
  Small.StmtsPerFunction = 5;
  GeneratorConfig Large = Small;
  Large.NumFunctions = 6;
  Large.StmtsPerFunction = 40;
  EXPECT_LT(generateProgram(Small).size(), generateProgram(Large).size());
}

TEST(Generator, NoCastsMeansNoCastTokens) {
  GeneratorConfig Config;
  Config.Seed = 9;
  Config.CastSharePercent = 0;
  Config.UseHeap = false;
  std::string Source = generateProgram(Config);
  EXPECT_EQ(Source.find("(struct S1 *)&"), std::string::npos);
  EXPECT_EQ(Source.find("malloc"), std::string::npos);
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig A, B;
  A.Seed = 1;
  B.Seed = 2;
  EXPECT_NE(generateProgram(A), generateProgram(B));
}

TEST(Generator, FunctionPointerModeCompilesAndResolves) {
  GeneratorConfig Config;
  Config.Seed = 6;
  Config.UseFunctionPointers = true;
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(generateProgram(Config), Diags);
  ASSERT_TRUE(P != nullptr) << Diags.formatAll();
}

TEST(Generator, WideSweepAllCompile) {
  for (uint64_t Seed = 50; Seed < 80; ++Seed) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.NumStructs = 2 + Seed % 5;
    Config.FieldsPerStruct = 2 + Seed % 4;
    Config.CastSharePercent = static_cast<unsigned>(Seed % 50);
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(generateProgram(Config), Diags);
    EXPECT_TRUE(P != nullptr)
        << "seed " << Seed << ":\n" << Diags.formatAll();
  }
}

TEST(Generator, ZeroFreePercentEmitsNoDeallocations) {
  GeneratorConfig Config;
  Config.Seed = 11;
  Config.UseHeap = true;
  EXPECT_EQ(Config.FreePercent, 0u);
  EXPECT_EQ(Config.ReallocPercent, 0u);
  std::string Source = generateProgram(Config);
  EXPECT_EQ(Source.find("free("), std::string::npos);
  EXPECT_EQ(Source.find("realloc("), std::string::npos);
}

TEST(Generator, UafHeavyShapeCompilesAndMarksFreedObjects) {
  GeneratorConfig Config;
  Config.Seed = 13;
  Config.UseHeap = true;
  Config.FreePercent = 35;
  Config.ReallocPercent = 10;
  Config.NumFunctions = 4;
  Config.StmtsPerFunction = 30;
  std::string Source = generateProgram(Config);
  EXPECT_NE(Source.find("free("), std::string::npos);
  EXPECT_NE(Source.find("realloc("), std::string::npos);
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(Source, Diags);
  ASSERT_TRUE(P != nullptr) << Diags.formatAll();
  Analysis A(P->Prog);
  A.run();
  EXPECT_GT(A.solver().freedObjects().size(), 0u);
}

TEST(Generator, BranchAndLoopShapesCompileAndCfgAuditHolds) {
  // The CFG-exercising shapes: if/else frees on one arm, loop-carried
  // frees on the other knob. The generated program must compile, carry a
  // well-formed CFG, and pass the flow audit under --flow=cfg.
  GeneratorConfig Config;
  Config.Seed = 17;
  Config.UseHeap = true;
  Config.BranchPercent = 30;
  Config.LoopFreePercent = 20;
  Config.NumFunctions = 3;
  Config.StmtsPerFunction = 24;
  std::string Source = generateProgram(Config);
  EXPECT_NE(Source.find("if ("), std::string::npos);
  EXPECT_NE(Source.find("while ("), std::string::npos);
  EXPECT_NE(Source.find("free("), std::string::npos);
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(Source, Diags);
  ASSERT_TRUE(P != nullptr) << Diags.formatAll();
  Analysis A(P->Prog);
  A.run();
  FlowResult R = runCfgFlowPass(A.solver());
  EXPECT_GT(R.CfgBlocks, 0u);
  EXPECT_GT(R.JoinMerges, 0u);
  EXPECT_TRUE(auditFlowRefinement(A.solver()).ok());
}

TEST(Generator, ZeroBranchPercentEmitsNoBranchShapes) {
  GeneratorConfig Config;
  Config.Seed = 19;
  EXPECT_EQ(Config.BranchPercent, 0u);
  EXPECT_EQ(Config.LoopFreePercent, 0u);
  std::string Source = generateProgram(Config);
  EXPECT_EQ(Source.find("if ("), std::string::npos);
  EXPECT_EQ(Source.find("while ("), std::string::npos);
}
