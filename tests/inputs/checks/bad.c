/* Seeded checker example: every checker has at least one true positive.
 * Expected findings (spa_cli --check):
 *   cast-safety      *fp reads struct A storage through float
 *   use-after-free   *d reads the malloc block after free(d)
 *   null-deref       *g dereferences an uninitialized global pointer
 *   unknown-external mystery() has no summary
 */
void *malloc(unsigned n);
void free(void *p);
void mystery(int *p);

struct A {
  int x;
  int y;
};

int *g; /* never assigned: empty points-to set */

int bad_cast(void) {
  struct A a;
  float *fp;
  fp = (float *)&a;
  return (int)*fp;
}

int use_after_free(void) {
  int *d;
  d = (int *)malloc(sizeof(int));
  *d = 1;
  free(d);
  return *d;
}

int null_deref(void) { return *g; }

int main(void) {
  int v;
  v = 0;
  mystery(&v);
  return bad_cast() + use_after_free() + null_deref() + v;
}
