/* Seeded checker example: no findings under any model or engine. All
 * pointers are initialized before use, all types agree, nothing is freed,
 * and every called function is defined here.
 */
struct P {
  int x;
  int y;
};

int get(struct P *p) { return p->x; }

int main(void) {
  struct P s;
  struct P *sp;
  int *ip;
  s.x = 1;
  s.y = 2;
  sp = &s;
  ip = &s.y;
  return get(sp) + *ip;
}
