/* Flow-pass golden example: every use of the block precedes the free.
 * Expected use-after-free findings:
 *   flow-insensitive baseline: 2 (the *d store and the *d load both alias
 *                                 a block that is freed somewhere)
 *   --flow=invalidate:         0 (both sites run before the free)
 */
void *malloc(unsigned n);
void free(void *p);

int main(void) {
  int *d;
  int v;
  d = (int *)malloc(sizeof(int));
  *d = 1;
  v = *d;
  free(d);
  return v;
}
