/* Flow-pass golden example: the free happens inside a callee, so the
 * bottom-up may-free summary must carry it to the call site in main.
 * Expected use-after-free findings:
 *   flow-insensitive baseline: 2 (both *gp sites alias the freed block)
 *   --flow=invalidate:         1 (the store before release() is
 *                                 suppressed; the load after it stays)
 */
void *malloc(unsigned n);
void free(void *p);

int *gp;

void release(void) { free(gp); }

int main(void) {
  int v;
  gp = (int *)malloc(4);
  *gp = 1;
  release();
  v = *gp;
  return v;
}
