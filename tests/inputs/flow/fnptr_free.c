/* Flow-pass golden example: the free happens through a function pointer,
 * so the deallocation set of the indirect call comes from the fixpoint
 * call graph (pts of the callee pointer), not from a direct callee name.
 * Expected use-after-free findings:
 *   flow-insensitive baseline: 2 (the *d store and the *d load)
 *   --flow=invalidate:         1 (the store before the indirect free is
 *                                 suppressed; the load after it stays)
 */
void *malloc(unsigned n);
void free(void *p);

int *d;
void (*op)(void *p);

int main(void) {
  int v;
  d = (int *)malloc(4);
  *d = 1;
  op = free;
  op(d);
  v = *d;
  return v;
}
