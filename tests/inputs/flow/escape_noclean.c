/* Flow-pass golden example: an escaped block is never revived. The same
 * shape as revive.c, but the pointer is passed to an unknown external
 * before the free — external code may hold the old block, so re-executing
 * the allocation site must NOT clear the invalidation.
 * Expected use-after-free findings:
 *   flow-insensitive baseline: 2 (the *g store in refill and the *g load
 *                                 in main)
 *   --flow=invalidate:         2 (no suppression: the escape blocks the
 *                                 revival, so refill's store keeps its
 *                                 report, and main's load stays as in
 *                                 revive.c)
 */
void *malloc(unsigned n);
void free(void *p);
void stash(int *p);

int *g;

void refill(void) {
  g = (int *)malloc(4);
  *g = 1;
}

int main(void) {
  refill();
  stash(g);
  free(g);
  refill();
  return *g;
}
