/* Branch golden example: revival on one arm, nothing on the other. The
 * then-arm re-executes the allocation site through renew(), whose
 * must-revive exit summary cleans that arm's state; the else-arm really
 * does use a dead block; and the join after the if unions the two arm
 * states, so the final load stays may-freed (the else path reaches it).
 * Expected use-after-free findings:
 *   flow-insensitive baseline: 3 (every *p aliases the freed block)
 *   --flow=invalidate:         3 (the linear walk tracks no callee exit
 *                                 states, so renew() cleans nothing)
 *   --flow=cfg:                2 (the then-arm load is suppressed; the
 *                                 else-arm load and the post-join load
 *                                 are kept)
 */
void *malloc(unsigned n);
void free(void *p);

int *p;

void renew(void) { p = (int *)malloc(4); }

int main(int argc, char **argv) {
  renew();
  free(p);
  if (argc > 1) {
    renew();
    argc = *p; /* safe: revived on this arm */
  } else {
    argc = *p; /* true use-after-free */
  }
  return *p + argc; /* may-freed: the else arm did not renew */
}
