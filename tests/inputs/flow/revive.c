/* Flow-pass golden example: re-executing an allocation site revives the
 * object. refill() is called both before and after the free, so its entry
 * state contains the freed block — but the malloc right above the store
 * re-executes the allocation site, so the store cannot see a dead block.
 * Expected use-after-free findings:
 *   flow-insensitive baseline: 2 (the *g store in refill and the *g load
 *                                 in main both alias the freed block)
 *   --flow=invalidate:         1 (refill's store is suppressed by the
 *                                 revival; main's load after free(g) is
 *                                 conservatively kept — the pass tracks no
 *                                 callee exit states, so the second
 *                                 refill() does not clean main's state)
 */
void *malloc(unsigned n);
void free(void *p);

int *g;

void refill(void) {
  g = (int *)malloc(4);
  *g = 1;
}

int main(void) {
  refill();
  free(g);
  refill();
  return *g;
}
