/* Flow-pass golden example: re-executing an allocation site revives the
 * object, and callee *exit summaries* carry the revival back to the
 * caller. refill() is called both before and after the free, so its entry
 * state contains the freed block — but the malloc right above the store
 * re-executes the allocation site, so the store cannot see a dead block.
 * The load of *g between the free and the second refill() is a true
 * use-after-free; the load after the second refill() is not.
 * Expected use-after-free findings:
 *   flow-insensitive baseline: 3 (the *g store in refill and both *g
 *                                 loads in main alias the freed block)
 *   --flow=invalidate:         2 (refill's store is suppressed by the
 *                                 revival; both loads in main are kept —
 *                                 the linear pass tracks no callee exit
 *                                 states, so the second refill() does not
 *                                 clean main's state: the post-refill
 *                                 load is a pinned false positive)
 *   --flow=cfg:                1 (only the true use-after-free between
 *                                 free(g) and the second refill();
 *                                 refill's must-revive exit summary
 *                                 cleans main's state at the call)
 */
void *malloc(unsigned n);
void free(void *p);

int *g;

void refill(void) {
  g = (int *)malloc(4);
  *g = 1;
}

int main(void) {
  refill();
  free(g);
  int stale = *g;
  refill();
  return *g + stale;
}
