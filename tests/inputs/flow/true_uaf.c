/* Flow-pass golden example: a genuine use after free.
 * Expected use-after-free findings:
 *   flow-insensitive baseline: 2 (the pre-free store and the post-free load)
 *   --flow=invalidate:         1 (the post-free load stays — the
 *                                 hand-pinned true positive)
 */
void *malloc(unsigned n);
void free(void *p);

int main(void) {
  int *d;
  d = (int *)malloc(sizeof(int));
  *d = 1;
  free(d);
  return *d;
}
