/* Branch golden example: a free on one arm followed by an early return
 * must not poison the fall-through path. The linear --flow=invalidate
 * walk sees free(p) before *p in statement emission order and keeps the
 * report; the CFG dataflow sees that the freeing arm exits the function,
 * so the join before the load only receives the clean path.
 * Expected use-after-free findings:
 *   flow-insensitive baseline: 2 (*p and *q both alias freed blocks)
 *   --flow=invalidate:         2 (emission order puts free(p) first)
 *   --flow=cfg:                1 (*p suppressed; *q is a true
 *                                 use-after-free on every path)
 */
void *malloc(unsigned n);
void free(void *p);

int check(int c) {
  int *p = (int *)malloc(4);
  int *q = (int *)malloc(4);
  if (c) {
    free(p);
    return 0;
  }
  int a = *p; /* safe: the freeing arm returned */
  free(q);
  int b = *q; /* true use-after-free */
  return a + b;
}

int main(void) { return check(1); }
