/* Branch golden example: a loop-carried free. The free at the bottom of
 * the body reaches the dereference at the top on the next iteration via
 * the back edge. The linear --flow=invalidate walk sees the dereference
 * before the free in statement order and wrongly suppresses the report —
 * the pinned false negative the CFG dataflow restores (the documented
 * exception to "cfg only ever suppresses relative to invalidate").
 * Expected use-after-free findings:
 *   flow-insensitive baseline: 1
 *   --flow=invalidate:         0 (false negative: no back-edge modeling)
 *   --flow=cfg:                1 (the back edge carries the freed state
 *                                 into the loop header's join)
 */
void *malloc(unsigned n);
void free(void *p);

int main(int argc, char **argv) {
  int *p = (int *)malloc(4);
  int i = 0;
  while (i < argc) {
    *p = i; /* true use-after-free on the second iteration */
    free(p);
    i = i + 1;
  }
  return 0;
}
