/* Branch golden example: a hand-rolled realloc in a callee. renew()
 * frees the old block and re-executes its own allocation site, so its
 * exit summary is "may free nothing, must revive the block" — the caller
 * transfer at each renew() call wipes the block from the caller's state.
 * The linear --flow=invalidate walk only has the may-free half (renew may
 * free the block) and so poisons the caller at every call.
 * Expected use-after-free findings:
 *   flow-insensitive baseline: 2
 *   --flow=invalidate:         2 (calls fold the callee may-free set;
 *                                 no exit revival is tracked)
 *   --flow=cfg:                0 (both uses follow a renew() whose
 *                                 must-revive summary cleans the state)
 */
void *malloc(unsigned n);
void free(void *p);

int *p;

void renew(void) {
  free(p);
  p = (int *)malloc(4);
}

int main(void) {
  renew();
  *p = 1; /* safe: renew() left a fresh block */
  renew();
  return *p; /* safe for the same reason */
}
