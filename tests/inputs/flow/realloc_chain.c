/* Flow-pass golden example: realloc kills the old block and revives the
 * new one (the normalizer emits the fresh allocation before the residual
 * deallocating call, so the walk sees revive-then-kill in the right
 * order).
 * Expected use-after-free findings:
 *   flow-insensitive baseline: 2 (both *d sites alias the dead old block)
 *   --flow=invalidate:         1 (the store before the realloc is
 *                                 suppressed; the load after it still
 *                                 aliases the stale old block and stays)
 */
void *malloc(unsigned n);
void *realloc(void *p, unsigned n);

int main(void) {
  int *d;
  int v;
  d = (int *)malloc(4);
  *d = 1;
  d = (int *)realloc(d, 8);
  v = *d;
  return v;
}
