//===--- GraphExportTest.cpp - Unit tests for graph serialization ---------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pta/GraphExport.h"

#include "TestUtil.h"

using namespace spa;
using namespace spa::test;

namespace {

Solved solved() {
  return analyze("struct S { int *a; int *b; } s;"
                 "int x, y, *p;"
                 "void f(void) { s.a = &x; s.b = &y; p = s.a; }",
                 ModelKind::CommonInitialSeq);
}

} // namespace

TEST(GraphExport, EdgeListIsSortedAndTempFree) {
  auto S = solved();
  std::string Edges = exportEdgeList(S.A->solver());
  EXPECT_NE(Edges.find("p -> x"), std::string::npos);
  EXPECT_NE(Edges.find("s.a -> x"), std::string::npos);
  EXPECT_NE(Edges.find("s.b -> y"), std::string::npos);
  EXPECT_EQ(Edges.find("$t"), std::string::npos); // temps filtered

  // Sorted: each line <= the next.
  std::string Prev;
  size_t Pos = 0;
  while (Pos < Edges.size()) {
    size_t End = Edges.find('\n', Pos);
    std::string Line = Edges.substr(Pos, End - Pos);
    EXPECT_LE(Prev, Line);
    Prev = Line;
    Pos = End + 1;
  }
}

TEST(GraphExport, IncludeTempsShowsTheMachinery) {
  auto S = solved();
  ExportOptions Opts;
  Opts.IncludeTemps = true;
  std::string Edges = exportEdgeList(S.A->solver(), Opts);
  EXPECT_NE(Edges.find("$t"), std::string::npos);
}

TEST(GraphExport, DotIsWellFormed) {
  auto S = solved();
  std::string Dot = exportDot(S.A->solver());
  EXPECT_EQ(Dot.rfind("digraph pointsto {", 0), 0u);
  EXPECT_NE(Dot.find("\"p\" -> \"x\";"), std::string::npos);
  EXPECT_EQ(Dot.back(), '\n');
  EXPECT_NE(Dot.find("}"), std::string::npos);
}

TEST(GraphExport, StableAcrossRuns) {
  auto S1 = solved();
  auto S2 = solved();
  EXPECT_EQ(exportEdgeList(S1.A->solver()), exportEdgeList(S2.A->solver()));
  EXPECT_EQ(exportDot(S1.A->solver()), exportDot(S2.A->solver()));
}
