//===--- SolverTest.cpp - Unit tests for the fixpoint engine --------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace spa;
using namespace spa::test;

TEST(Solver, TransitiveCopiesReachFixpoint) {
  const char *Source = "int x, *a, *b, *c, *d;"
                       "void f(void) { d = c; a = &x; b = a; c = b; }";
  for (ModelKind Kind : {ModelKind::CollapseAlways, ModelKind::Offsets}) {
    auto S = analyze(Source, Kind);
    // Statement order is adversarial (d = c first); the fixpoint loop must
    // still converge to d -> {x}.
    EXPECT_EQ(S.pts("d"), strs({"x"})) << modelKindName(Kind);
  }
}

TEST(Solver, LoadsAndStoresThroughPointers) {
  auto S = analyze("int x, y, *p, *q, **pp;"
                   "void f(void) { p = &x; pp = &p; *pp = &y; q = *pp; }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("p"), strs({"x", "y"}));
  EXPECT_EQ(S.pts("q"), strs({"x", "y"}));
}

TEST(Solver, DirectCallsBindParametersAndReturn) {
  auto S = analyze("int *id(int *v) { return v; }"
                   "int x, y, *r1, *r2;"
                   "void f(void) { r1 = id(&x); r2 = id(&y); }",
                   ModelKind::CommonInitialSeq);
  // Context-insensitive: both call sites merge.
  EXPECT_EQ(S.pts("r1"), strs({"x", "y"}));
  EXPECT_EQ(S.pts("r2"), strs({"x", "y"}));
}

TEST(Solver, IndirectCallsUseTheCallGraphOnTheFly) {
  auto S = analyze("int a, b;"
                   "int *pick_a(void) { return &a; }"
                   "int *pick_b(void) { return &b; }"
                   "int *(*fp)(void);"
                   "int *r;"
                   "void f(int cond) {"
                   "  fp = pick_a;"
                   "  if (cond) fp = pick_b;"
                   "  r = fp();"
                   "}",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("r"), strs({"a", "b"}));
  EXPECT_EQ(S.pts("fp"), strs({"pick_a", "pick_b"}));
}

TEST(Solver, FunctionPointersInStructFields) {
  auto S = analyze("int a;"
                   "int *getter(void) { return &a; }"
                   "struct ops { int *(*get)(void); } vtable;"
                   "int *r;"
                   "void f(void) { vtable.get = getter; r = vtable.get(); }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("r"), strs({"a"}));
}

TEST(Solver, HeapObjectsSeparateBySite) {
  auto S = analyze("struct S { int *a; } *p, *q;"
                   "int x, y, *rx, *ry;"
                   "void f(void) {"
                   "  p = (struct S *)malloc(8);"
                   "  q = (struct S *)malloc(8);"
                   "  p->a = &x;"
                   "  q->a = &y;"
                   "  rx = p->a;"
                   "  ry = q->a;"
                   "}",
                   ModelKind::CommonInitialSeq);
  // Distinct allocation sites stay distinct.
  EXPECT_EQ(S.pts("rx").size(), 1u);
  EXPECT_EQ(S.pts("ry").size(), 1u);
}

TEST(Solver, PointerArithmeticSmearsOverTheObject) {
  auto S = analyze("struct S { int *a; int *b; } s;"
                   "int x, y, *r; int **walk;"
                   "void f(void) {"
                   "  s.a = &x;"
                   "  s.b = &y;"
                   "  walk = &s.a;"
                   "  walk = walk + 1;"
                   "  r = *walk;"
                   "}",
                   ModelKind::CommonInitialSeq);
  // After arithmetic, walk may point at either field.
  EXPECT_EQ(S.pts("r"), strs({"x", "y"}));
}

TEST(Solver, IntRoundTripPreservesTargets) {
  auto S = analyze("int x, *p, *q; long cookie;"
                   "void f(void) {"
                   "  p = &x;"
                   "  cookie = (long)p;"
                   "  q = (int *)cookie;"
                   "}",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("q"), strs({"x"})); // pointers survive integer laundering
}

TEST(Solver, RecursiveDataStructuresConverge) {
  auto S = analyze("struct node { struct node *next; int *v; };"
                   "struct node *head;"
                   "int x;"
                   "void push(void) {"
                   "  struct node *n = (struct node *)malloc(8);"
                   "  n->next = head;"
                   "  n->v = &x;"
                   "  head = n;"
                   "}"
                   "int *sum(void) {"
                   "  struct node *p; int *acc;"
                   "  acc = 0;"
                   "  for (p = head; p; p = p->next) acc = p->v;"
                   "  return acc;"
                   "}"
                   "int main(void) { push(); push(); sum(); return 0; }",
                   ModelKind::CommonInitialSeq);
  ASSERT_TRUE(S.A != nullptr);
  EXPECT_LT(S.A->solver().runStats().Rounds, 20u);
  auto Sum = S.pts("sum$ret");
  EXPECT_EQ(Sum, strs({"x"}));
}

TEST(Solver, VarargsArgumentsPoolSafely) {
  auto S = analyze("int x; int *leak;"
                   "void sink(int n, ...) { }"
                   "void f(void) { sink(1, &x); }",
                   ModelKind::CommonInitialSeq);
  // The pooled pointer is retrievable from the varargs pseudo-variable.
  EXPECT_EQ(S.pts("sink$va"), strs({"x"}));
}

TEST(Solver, ConvergesOnMutuallyRecursiveCalls) {
  auto S = analyze("int x; int *a(int n); int *b(int n);"
                   "int *a(int n) { if (n) return b(n - 1); return &x; }"
                   "int *b(int n) { return a(n); }"
                   "int *r; void f(void) { r = a(3); }",
                   ModelKind::Offsets);
  EXPECT_EQ(S.pts("r"), strs({"x"}));
}

TEST(Solver, DeterministicAcrossRuns) {
  const char *Source = "struct S { int *a; int *b; } s, t;"
                       "int x, y, *p;"
                       "void f(void) {"
                       "  s.a = &x; s.b = &y;"
                       "  t = s;"
                       "  p = t.b;"
                       "}";
  for (ModelKind Kind :
       {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
        ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    auto S1 = analyze(Source, Kind);
    auto S2 = analyze(Source, Kind);
    EXPECT_EQ(S1.pts("p"), S2.pts("p"));
    EXPECT_EQ(S1.A->solver().numEdges(), S2.A->solver().numEdges());
  }
}

TEST(Solver, DisablingPtrArithIsLessConservative) {
  const char *Source = "struct S { int *a; int *b; } s;"
                       "int x, y, *r; int **w;"
                       "void f(void) {"
                       "  s.a = &x; s.b = &y;"
                       "  w = &s.a; w = w + 1; r = *w;"
                       "}";
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(Source, Diags);
  ASSERT_TRUE(P != nullptr);

  AnalysisOptions On;
  On.Model = ModelKind::CommonInitialSeq;
  Analysis AOn(P->Prog, On);
  AOn.run();

  AnalysisOptions Off = On;
  Off.Solver.HandlePtrArith = false;
  Analysis AOff(P->Prog, Off);
  AOff.run();

  EXPECT_GT(AOn.solver().numEdges(), AOff.solver().numEdges());
}
