//===--- ParEngineTest.cpp - Parallel engine == scc, bit for bit ----------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference.)
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel engine's defining property: for every thread count —
/// including one, and including counts above the machine's core count —
/// the certified fixpoint is byte-identical to the sequential scc
/// engine's, the sticky SiteEvents match field for field, and the
/// invalidation-aware flow pass refines to the same findings. The
/// scheduling-stress sweep runs thread counts 1/2/4/7 over the corpus and
/// over a models x representations cross product on adversarial
/// programs, and pins the scheduling-determinism claim directly: every
/// solver statistic except the thread count itself is independent of N.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "check/Checkers.h"
#include "flow/FlowPass.h"
#include "pta/GraphExport.h"
#include "workload/Corpus.h"
#include "workload/Generator.h"

using namespace spa;
using namespace spa::test;

namespace {

const unsigned ThreadCounts[] = {1, 2, 4, 7};

/// One solved run; the compiled program must outlive the analysis that
/// references its NormProgram.
struct SolvedRun {
  std::unique_ptr<CompiledProgram> Program;
  std::unique_ptr<Analysis> A;
  explicit operator bool() const { return A != nullptr; }
  Solver &solver() { return A->solver(); }
};

/// Runs one analysis to fixpoint and requires convergence.
SolvedRun solveOne(const std::string &Source, const AnalysisOptions &Opts,
                   const std::string &Label) {
  SolvedRun R;
  DiagnosticEngine Diags;
  R.Program = CompiledProgram::fromSource(Source, Diags);
  EXPECT_TRUE(R.Program != nullptr) << Label << "\n" << Diags.formatAll();
  if (!R.Program)
    return R;
  R.A = std::make_unique<Analysis>(R.Program->Prog, Opts);
  R.A->run();
  EXPECT_TRUE(R.solver().runStats().Converged) << Label;
  return R;
}

AnalysisOptions sccOptions(ModelKind Kind) {
  AnalysisOptions Opts;
  Opts.Model = Kind;
  Opts.Solver.CycleElimination = true;
  return Opts;
}

AnalysisOptions parOptions(ModelKind Kind, unsigned Threads) {
  AnalysisOptions Opts;
  Opts.Model = Kind;
  Opts.Solver.ParallelSolve = true;
  Opts.Solver.Threads = Threads;
  return Opts;
}

/// The sticky per-site events must match field for field — the checker
/// layer reads nothing else, so this is the checker-parity contract.
void expectSameSiteEvents(const Solver &Scc, const Solver &Par,
                          const std::string &Label) {
  const std::vector<SiteEvents> &A = Scc.siteEvents();
  const std::vector<SiteEvents> &B = Par.siteEvents();
  ASSERT_EQ(A.size(), B.size()) << Label;
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Mismatch, B[I].Mismatch) << Label << " site " << I;
    EXPECT_EQ(A[I].Truncated, B[I].Truncated) << Label << " site " << I;
    EXPECT_EQ(A[I].EmptyDeref, B[I].EmptyDeref) << Label << " site " << I;
    EXPECT_EQ(A[I].FlowRefined, B[I].FlowRefined) << Label << " site " << I;
    EXPECT_TRUE(A[I].InvalidatedBefore == B[I].InvalidatedBefore)
        << Label << " site " << I;
  }
}

/// Solves \p Source with scc and with par at every stress thread count
/// and asserts byte-identical exports plus matching site events.
void expectParMatchesScc(const std::string &Source, const std::string &Label,
                         ModelKind Kind = ModelKind::CommonInitialSeq,
                         PtsRepr Repr = PtsRepr::Sorted) {
  AnalysisOptions SccOpts = sccOptions(Kind);
  SccOpts.Solver.PointsTo = Repr;
  SolvedRun Scc = solveOne(Source, SccOpts, Label + " (scc)");
  ASSERT_TRUE(Scc.A != nullptr) << Label;

  ExportOptions All;
  All.IncludeTemps = true;
  std::string Expected = exportEdgeList(Scc.solver(), All);

  for (unsigned Threads : ThreadCounts) {
    AnalysisOptions ParOpts = parOptions(Kind, Threads);
    ParOpts.Solver.PointsTo = Repr;
    std::string ParLabel =
        Label + " (par t=" + std::to_string(Threads) + ")";
    SolvedRun Par = solveOne(Source, ParOpts, ParLabel);
    ASSERT_TRUE(Par.A != nullptr) << ParLabel;
    EXPECT_EQ(Par.solver().runStats().ThreadsUsed, Threads) << ParLabel;
    EXPECT_EQ(Expected, exportEdgeList(Par.solver(), All))
        << ParLabel << " under " << modelKindName(Kind);
    expectSameSiteEvents(Scc.solver(), Par.solver(), ParLabel);
  }
}

/// A generated shape with wide shallow condensation levels — the one the
/// level scheduler turns into genuinely multi-statement batches.
std::string wideFanSource() {
  GeneratorConfig Config;
  Config.Seed = 41;
  Config.NumInts = 12;
  Config.NumPtrVars = 36;
  Config.NumFunctions = 4;
  Config.StmtsPerFunction = 40;
  Config.WideFanPercent = 60;
  return generateProgram(Config);
}

class CorpusParParity : public ::testing::TestWithParam<CorpusEntry> {};

} // namespace

TEST_P(CorpusParParity, FixpointMatchesSccAtEveryThreadCount) {
  std::string Source;
  ASSERT_TRUE(loadCorpusSource(GetParam(), Source));
  expectParMatchesScc(Source, GetParam().Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, CorpusParParity, ::testing::ValuesIn(corpusManifest()),
    [](const ::testing::TestParamInfo<CorpusEntry> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(ParEngine, ModelsAndReprsCrossProductOnAdversarialPrograms) {
  // The deep sweep: every field model x every compressed representation,
  // on the shapes that stress batching hardest — a wide-fan generated
  // program (large same-level batches) and a function-pointer-heavy
  // corpus program (call statements, which always defer to the barrier).
  std::vector<std::pair<std::string, std::string>> Programs;
  Programs.emplace_back(wideFanSource(), "wide-fan seed 41");
  for (const CorpusEntry &E : corpusManifest())
    if (std::string(E.FileName) == "bc.c") {
      std::string Source;
      ASSERT_TRUE(loadCorpusSource(E, Source));
      Programs.emplace_back(std::move(Source), E.Name);
    }
  ASSERT_EQ(Programs.size(), 2u);

  for (const auto &[Source, Name] : Programs)
    for (ModelKind Kind :
         {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
          ModelKind::CommonInitialSeq, ModelKind::Offsets})
      for (PtsRepr Repr : {PtsRepr::Sorted, PtsRepr::Small, PtsRepr::Bitmap,
                           PtsRepr::Offsets})
        expectParMatchesScc(Source,
                            Name + " " + modelKindName(Kind) + " " +
                                ptsReprName(Repr),
                            Kind, Repr);
}

TEST(ParEngine, SchedulingStatsAreIndependentOfThreadCount) {
  // The determinism argument made checkable: whether a statement gathers
  // or defers depends only on the batch content and the frozen state at
  // the barrier, never on which worker ran it — so every counter except
  // the thread count itself must be identical across N.
  std::string Source = wideFanSource();
  const SolverRunStats *First = nullptr;
  std::vector<SolvedRun> Keep;
  for (unsigned Threads : ThreadCounts) {
    SolvedRun A =
        solveOne(Source, parOptions(ModelKind::CommonInitialSeq, Threads),
                 "wide-fan t=" + std::to_string(Threads));
    ASSERT_TRUE(A.A != nullptr);
    const SolverRunStats &S = A.solver().runStats();
    EXPECT_EQ(S.ThreadsUsed, Threads);
    if (!First) {
      // The wide-fan shape must actually engage the batching machinery.
      EXPECT_GT(S.BarrierMerges, 0u);
      EXPECT_GT(S.ParGathered, 0u);
      EXPECT_GT(S.Levels, 1u);
      First = &S;
      Keep.push_back(std::move(A));
      continue;
    }
    EXPECT_EQ(S.Pops, First->Pops) << Threads;
    EXPECT_EQ(S.StmtsApplied, First->StmtsApplied) << Threads;
    EXPECT_EQ(S.BarrierMerges, First->BarrierMerges) << Threads;
    EXPECT_EQ(S.ParGathered, First->ParGathered) << Threads;
    EXPECT_EQ(S.ParDeferred, First->ParDeferred) << Threads;
    EXPECT_EQ(S.Levels, First->Levels) << Threads;
    EXPECT_EQ(S.SccsCollapsed, First->SccsCollapsed) << Threads;
    EXPECT_EQ(S.CopyEdges, First->CopyEdges) << Threads;
  }
}

TEST(ParEngine, FlowFindingsMatchSccAtEveryThreadCount) {
  // The downstream contract: the invalidation pass and the use-after-free
  // checker run unchanged on a parallel fixpoint and land on the same
  // refined findings, byte for byte, with a clean audit.
  GeneratorConfig Config;
  Config.Seed = 47;
  Config.NumFunctions = 4;
  Config.StmtsPerFunction = 40;
  Config.FreePercent = 20;
  Config.ReallocPercent = 10;
  Config.WideFanPercent = 30;
  Config.NumPtrVars = 18;
  Config.NumInts = 9;
  std::string Source = generateProgram(Config);

  auto runFlow = [&](const AnalysisOptions &Opts, const std::string &Label,
                     std::string &OutText, bool &OutAudit) {
    SolvedRun R = solveOne(Source, Opts, Label);
    ASSERT_TRUE(R.A != nullptr) << Label;
    runInvalidationPass(R.solver());
    OutAudit = auditFlowRefinement(R.solver()).ok();
    DiagnosticEngine Diags;
    runCheckers(*R.A, {"use-after-free"}, Diags);
    OutText = Diags.formatAll();
  };

  std::string Expected;
  bool SccAudit = false;
  runFlow(sccOptions(ModelKind::CommonInitialSeq), "flow scc", Expected,
          SccAudit);
  EXPECT_TRUE(SccAudit);

  for (unsigned Threads : ThreadCounts) {
    std::string Text;
    bool Audit = false;
    std::string Label = "flow par t=" + std::to_string(Threads);
    runFlow(parOptions(ModelKind::CommonInitialSeq, Threads), Label, Text,
            Audit);
    EXPECT_TRUE(Audit) << Label;
    EXPECT_EQ(Text, Expected) << Label;
  }
}

TEST(ParEngine, OptionNormalizationAndEngineInvariants) {
  std::string Source = wideFanSource();
  SolvedRun A = solveOne(Source, parOptions(ModelKind::CommonInitialSeq, 2),
                   "normalization");
  ASSERT_TRUE(A.A != nullptr);
  // The parallel engine is the scc engine underneath: option
  // normalization must have switched on the whole stack.
  EXPECT_TRUE(A.solver().options().UseWorklist);
  EXPECT_TRUE(A.solver().options().DeltaPropagation);
  EXPECT_TRUE(A.solver().options().CycleElimination);
  EXPECT_TRUE(A.solver().options().ParallelSolve);
  const SolverRunStats &S = A.solver().runStats();
  // Every pop comes off the level-ordered priority queue.
  EXPECT_EQ(S.PriorityPops, S.Pops);
  EXPECT_GT(S.BytesHighWater, 0u);
}

TEST(ParEngine, ThreadsZeroPicksHardwareConcurrency) {
  std::string Source = wideFanSource();
  AnalysisOptions Opts = parOptions(ModelKind::CommonInitialSeq, 0);
  SolvedRun A = solveOne(Source, Opts, "threads=0");
  ASSERT_TRUE(A.A != nullptr);
  EXPECT_GE(A.solver().runStats().ThreadsUsed, 1u);
  EXPECT_EQ(A.solver().options().Threads, A.solver().runStats().ThreadsUsed);
}
