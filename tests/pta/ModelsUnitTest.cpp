//===--- ModelsUnitTest.cpp - Direct tests of normalize/lookup/resolve ----===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the three framework functions directly through the model API
/// (no solver), mirroring the paper's per-function examples.
///
//===----------------------------------------------------------------------===//

#include "pta/Models.h"

#include "pta/Frontend.h"

#include "gtest/gtest.h"

using namespace spa;

namespace {

/// Declares types/objects via source, then lets tests poke the models.
struct ModelFixture : ::testing::Test {
  DiagnosticEngine Diags;
  std::unique_ptr<CompiledProgram> Program;
  std::unique_ptr<LayoutEngine> Layout;

  void build(std::string_view Source) {
    Program = CompiledProgram::fromSource(Source, Diags);
    ASSERT_TRUE(Program != nullptr) << Diags.formatAll();
    Layout = std::make_unique<LayoutEngine>(Program->Types,
                                            TargetInfo::ilp32());
  }

  ObjectId object(const char *Name) {
    NormProgram &Prog = Program->Prog;
    for (uint32_t I = 0; I < Prog.Objects.size(); ++I)
      if (Prog.Strings.text(Prog.Objects[I].Name) == Name)
        return ObjectId(I);
    ADD_FAILURE() << "no object " << Name;
    return ObjectId();
  }

  TypeId typeOfTag(const char *Spelling) {
    // Looks a struct type up by its rendered name.
    TypeTable &Types = Program->Types;
    for (uint32_t I = 0; I < Types.numTypes(); ++I) {
      TypeId Ty(I);
      if (Types.isRecord(Ty) &&
          Types.toString(Ty, Program->Strings) == Spelling)
        return Ty;
    }
    ADD_FAILURE() << "no type " << Spelling;
    return TypeId();
  }
};

} // namespace

TEST_F(ModelFixture, NormalizeDescendsToInnermostFirstField) {
  build("struct In { int *a; char b; };"
        "struct Out { struct In in; int c; } o;");
  CollapseOnCastModel Model(Program->Prog, *Layout);
  ObjectId O = object("o");
  // normalize(o) == normalize(o.in) == normalize(o.in.a).
  NodeId Whole = Model.normalizeLoc(O, {});
  NodeId In = Model.normalizeLoc(O, {0});
  NodeId InA = Model.normalizeLoc(O, {0, 0});
  EXPECT_EQ(Whole, In);
  EXPECT_EQ(In, InA);
  EXPECT_NE(Whole, Model.normalizeLoc(O, {0, 1}));
  EXPECT_NE(Whole, Model.normalizeLoc(O, {1}));
}

TEST_F(ModelFixture, OffsetsNormalizeUsesByteOffsets) {
  build("struct S { char c; int *p; } s;");
  OffsetsModel Model(Program->Prog, *Layout);
  ObjectId S = object("s");
  EXPECT_EQ(Model.nodes().keyOf(Model.normalizeLoc(S, {0})), 0u);
  EXPECT_EQ(Model.nodes().keyOf(Model.normalizeLoc(S, {1})), 4u);
}

TEST_F(ModelFixture, CollapseAlwaysHasOneNodePerObject) {
  build("struct S { int *a; int *b; } s;");
  CollapseAlwaysModel Model(Program->Prog, *Layout);
  ObjectId S = object("s");
  EXPECT_EQ(Model.normalizeLoc(S, {}), Model.normalizeLoc(S, {1}));
  std::vector<NodeId> All;
  Model.allNodesOfObject(S, All);
  EXPECT_EQ(All.size(), 1u);
  EXPECT_EQ(Model.expandedFieldCount(All[0]), 2u);
}

TEST_F(ModelFixture, LookupMatchedTypeFindsTheField) {
  // The paper's 4.3.2 example, called directly.
  build("struct S { int s1; char s2; } *p;"
        "struct T { struct S t1; int t2; char t3; } t;");
  CollapseOnCastModel Model(Program->Prog, *Layout);
  ObjectId T = object("t");
  NodeId Target = Model.normalizeLoc(T, {0}); // t.t1 normalized
  std::vector<NodeId> Out;
  Model.lookup(typeOfTag("struct S"), {1}, Target, Out); // field s2
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Model.nodeSuffix(Out[0]), ".t1.s2");
}

TEST_F(ModelFixture, LookupMismatchReturnsFollowingFields) {
  build("struct S { int s1; char s2; } *p;"
        "struct T { struct S t1; int t2; char t3; } t;");
  CollapseOnCastModel Model(Program->Prog, *Layout);
  ObjectId T = object("t");
  NodeId Target = Model.normalizeLoc(T, {1}); // t.t2 (no matching delta)
  std::vector<NodeId> Out;
  Model.lookup(typeOfTag("struct S"), {1}, Target, Out);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Model.nodeSuffix(Out[0]), ".t2");
  EXPECT_EQ(Model.nodeSuffix(Out[1]), ".t3");
}

TEST_F(ModelFixture, CISLookupUsesTheCommonPrefix) {
  // The paper's 4.3.3 example, called directly.
  build("struct S { int *s1; int *s2; int *s3; } *p;"
        "struct T { int *t1; int *t2; char t3; int t4; } t;");
  CommonInitSeqModel Model(Program->Prog, *Layout);
  ObjectId T = object("t");
  NodeId Target = Model.normalizeLoc(T, {});
  std::vector<NodeId> Out;
  Model.lookup(typeOfTag("struct S"), {1}, Target, Out); // s2 -> t2
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Model.nodeSuffix(Out[0]), ".t2");
  Out.clear();
  Model.lookup(typeOfTag("struct S"), {2}, Target, Out); // s3 -> {t3, t4}
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Model.nodeSuffix(Out[0]), ".t3");
  EXPECT_EQ(Model.nodeSuffix(Out[1]), ".t4");
}

TEST_F(ModelFixture, ResolveThirdArgumentLimitsThePairs) {
  // Complication 4 at the model level: only sizeof(T) worth of fields.
  build("struct R { int *r1; int *r2; char *r3; } r;"
        "struct S { int *s1; int *s2; int *s3; } s;"
        "struct T { int *t1; int *t2; } t;");
  CommonInitSeqModel Model(Program->Prog, *Layout);
  NodeId R = Model.normalizeLoc(object("r"), {});
  NodeId S = Model.normalizeLoc(object("s"), {});
  std::vector<std::pair<NodeId, NodeId>> Pairs;
  Model.resolve(R, S, typeOfTag("struct T"), Pairs);
  ASSERT_EQ(Pairs.size(), 2u);
  EXPECT_EQ(Model.nodeSuffix(Pairs[0].first), ".r1");
  EXPECT_EQ(Model.nodeSuffix(Pairs[0].second), ".s1");
  EXPECT_EQ(Model.nodeSuffix(Pairs[1].first), ".r2");
  EXPECT_EQ(Model.nodeSuffix(Pairs[1].second), ".s2");
}

TEST_F(ModelFixture, OffsetsResolveCopiesMaterializedRange) {
  build("struct S { int *a; int *b; } s, t; int x;");
  OffsetsModel Model(Program->Prog, *Layout);
  ObjectId S = object("s"), T = object("t");
  // Materialize t+4 as if a fact lived there.
  NodeId T4 = Model.nodes().getNode(T, 4);
  (void)T4;
  NodeId T0 = Model.nodes().getNode(T, 0);
  (void)T0;
  std::vector<std::pair<NodeId, NodeId>> Pairs;
  Model.resolve(Model.normalizeLoc(S, {}), Model.normalizeLoc(T, {}),
                typeOfTag("struct S"), Pairs);
  ASSERT_EQ(Pairs.size(), 2u); // both materialized offsets pair up
  EXPECT_EQ(Model.nodes().keyOf(Pairs[0].first), 0u);
  EXPECT_EQ(Model.nodes().keyOf(Pairs[1].first), 4u);
}

TEST_F(ModelFixture, InstrumentationSeparatesResolveFromLookup) {
  build("struct S { int *a; int *b; } s, t;");
  CommonInitSeqModel Model(Program->Prog, *Layout);
  NodeId S = Model.normalizeLoc(object("s"), {});
  NodeId T = Model.normalizeLoc(object("t"), {});
  std::vector<std::pair<NodeId, NodeId>> Pairs;
  Model.resolve(S, T, typeOfTag("struct S"), Pairs);
  // The paper's footnote: lookups made inside resolve are not counted.
  EXPECT_EQ(Model.stats().ResolveCalls, 1u);
  EXPECT_EQ(Model.stats().LookupCalls, 0u);
}

TEST_F(ModelFixture, StrideClassifierSeesArrays) {
  build("struct S { int hdr; int *slots[4]; int tail; } s; int buf[8];");
  CommonInitSeqModel Model(Program->Prog, *Layout);
  NodeId InArray = Model.normalizeLoc(object("s"), {1});
  NodeId Header = Model.normalizeLoc(object("s"), {0});
  NodeId WholeArray = Model.normalizeLoc(object("buf"), {});
  EXPECT_TRUE(Model.targetInsideArray(InArray));
  EXPECT_FALSE(Model.targetInsideArray(Header));
  EXPECT_TRUE(Model.targetInsideArray(WholeArray));

  OffsetsModel OModel(Program->Prog, *Layout);
  EXPECT_TRUE(OModel.targetInsideArray(OModel.normalizeLoc(object("s"), {1})));
  EXPECT_FALSE(OModel.targetInsideArray(OModel.normalizeLoc(object("s"), {0})));
}
