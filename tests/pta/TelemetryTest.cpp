//===--- TelemetryTest.cpp - Run-telemetry collection and JSON export -----===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference.)
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry record is the contract behind `spa_cli --stats-json` and
/// the bench output trajectories: its counters must be internally
/// consistent and its JSON rendering must keep the documented spa.run.v1
/// keys (docs/TELEMETRY.md).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pta/Telemetry.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace spa;
using namespace spa::test;

namespace {

const char *Source = "struct S { int *a; int *b; } s;"
                     "int x, y, *p;"
                     "void f(void) { s.a = &x; s.b = &y; p = s.a; *p = 0; }";

Solved analyzeWith(SolverOptions SOpts) {
  Solved S;
  S.Program = compile(Source);
  AnalysisOptions Opts;
  Opts.Model = ModelKind::CommonInitialSeq;
  Opts.Solver = SOpts;
  S.A = std::make_unique<Analysis>(S.Program->Prog, Opts);
  S.A->run();
  return S;
}

} // namespace

TEST(Telemetry, CountersAreInternallyConsistent) {
  SolverOptions SOpts;
  SOpts.UseWorklist = true;
  auto S = analyzeWith(SOpts);
  RunTelemetry T = collectTelemetry(*S.A, "inline");

  EXPECT_EQ(T.Stmts, S.Program->Prog.Stmts.size());
  EXPECT_EQ(T.Objects, S.Program->Prog.Objects.size());
  EXPECT_TRUE(T.Solver.Converged);
  EXPECT_EQ(T.Solver.Pops, T.Solver.StmtsApplied);
  EXPECT_GT(T.Solver.WorklistHighWater, 0u);
  EXPECT_GE(T.Solver.SolveSeconds, 0.0);

  // The per-rule counters partition the statement evaluations.
  uint64_t RuleSum = 0, ChangedSum = 0;
  for (unsigned I = 0; I < NumSolverRules; ++I) {
    RuleSum += T.Solver.RuleApplied[I];
    ChangedSum += T.Solver.RuleChanged[I];
    EXPECT_LE(T.Solver.RuleChanged[I], T.Solver.RuleApplied[I]);
  }
  EXPECT_EQ(RuleSum, T.Solver.StmtsApplied);
  EXPECT_GT(ChangedSum, 0u);
}

TEST(Telemetry, CycleEliminationCountersFlowThrough) {
  SolverOptions SOpts;
  SOpts.CycleElimination = true;
  auto S = analyzeWith(SOpts);
  RunTelemetry T = collectTelemetry(*S.A, "scc");

  EXPECT_TRUE(T.Solver.Converged);
  // solve() normalizes the flags, and the echo reflects what ran.
  EXPECT_TRUE(T.Options.UseWorklist);
  EXPECT_TRUE(T.Options.DeltaPropagation);
  EXPECT_TRUE(T.Options.CycleElimination);
  // Every pop comes off the priority queue in this engine.
  EXPECT_EQ(T.Solver.PriorityPops, T.Solver.Pops);
  EXPECT_EQ(T.Solver.Pops, T.Solver.StmtsApplied);
  // The drain-time sweep always runs, and state was sampled before release.
  EXPECT_GT(T.Solver.SccSweeps, 0u);
  EXPECT_GT(T.Solver.BytesHighWater, 0u);

  std::string Json = telemetryToJson(T);
  EXPECT_NE(Json.find("\"cycle_elimination\":true"), std::string::npos);
  EXPECT_NE(Json.find("\"priority_pops\":"), std::string::npos);
}

TEST(Telemetry, WorklistModeSamplesBytesHighWater) {
  SolverOptions SOpts;
  SOpts.UseWorklist = true;
  auto S = analyzeWith(SOpts);
  RunTelemetry T = collectTelemetry(*S.A);
  EXPECT_GT(T.Solver.BytesHighWater, 0u);
  EXPECT_EQ(T.Solver.PriorityPops, 0u); // priority queue is scc-only
}

TEST(Telemetry, NaiveModeCountsRoundsNotPops) {
  auto S = analyzeWith(SolverOptions{});
  RunTelemetry T = collectTelemetry(*S.A);
  EXPECT_GT(T.Solver.Rounds, 0u);
  EXPECT_EQ(T.Solver.Pops, 0u);
  EXPECT_EQ(T.Solver.DeltaPropagations, 0u); // delta is worklist-only
  EXPECT_TRUE(T.Solver.Converged);
}

TEST(Telemetry, JsonCarriesTheDocumentedKeys) {
  SolverOptions SOpts;
  SOpts.UseWorklist = true;
  auto S = analyzeWith(SOpts);
  std::string Json = telemetryToJson(collectTelemetry(*S.A, "inline"));

  for (const char *Key :
       {"\"schema\":\"spa.run.v1\"", "\"program\":\"inline\"", "\"model\":",
        "\"options\":", "\"use_worklist\":true", "\"delta_propagation\":true",
        "\"cycle_elimination\":false", "\"program_shape\":", "\"solver\":",
        "\"converged\":true", "\"rounds\":", "\"pops\":",
        "\"full_propagations\":", "\"delta_propagations\":",
        "\"worklist_high_water\":", "\"scc_sweeps\":", "\"sccs_collapsed\":",
        "\"nodes_merged_online\":", "\"nodes_merged_offline\":",
        "\"offline_ms\":", "\"preprocess\":", "\"priority_pops\":",
        "\"copy_edges\":",
        "\"bytes_high_water\":", "\"solve_seconds\":", "\"rule_applied\":",
        "\"rule_changed\":", "\"addr_of\":", "\"ptr_arith\":", "\"call\":",
        "\"model_stats\":", "\"lookup_calls\":", "\"deref_metrics\":",
        "\"avg_set_size\":"})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key << "\nin " << Json;

  // Structurally sound: balanced braces, single trailing newline.
  int Depth = 0;
  bool InString = false;
  for (size_t I = 0; I < Json.size(); ++I) {
    char C = Json[I];
    if (C == '"' && (I == 0 || Json[I - 1] != '\\'))
      InString = !InString;
    if (InString)
      continue;
    Depth += C == '{';
    Depth -= C == '}';
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
  EXPECT_FALSE(InString);
  ASSERT_FALSE(Json.empty());
  EXPECT_EQ(Json.back(), '\n');
}

TEST(Telemetry, WriteToFileRoundTrips) {
  auto S = analyzeWith(SolverOptions{});
  RunTelemetry T = collectTelemetry(*S.A, "roundtrip");
  std::string Path =
      ::testing::TempDir() + "/spa_telemetry_test.json";
  ASSERT_TRUE(writeTelemetryJson(T, Path));
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), telemetryToJson(T));
  std::remove(Path.c_str());
}

TEST(Telemetry, UnwritablePathReportsFailure) {
  auto S = analyzeWith(SolverOptions{});
  RunTelemetry T = collectTelemetry(*S.A);
  EXPECT_FALSE(writeTelemetryJson(T, "/nonexistent-dir/x/y.json"));
}
