//===--- UnionsArraysTest.cpp - Union and array semantics -----------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two structural accommodations: unions are handled safely
/// (members may overlap arbitrarily), and every array is a single
/// representative element.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace spa;
using namespace spa::test;

//===----------------------------------------------------------------------===//
// Unions
//===----------------------------------------------------------------------===//

TEST(Unions, MembersConservativelyAlias) {
  const char *Source = "union u { int *ip; char *cp; } un;"
                       "int x; char c; int *p; char *q;"
                       "void f(void) {"
                       "  un.ip = &x;"
                       "  q = un.cp;"  // reading the other member sees it
                       "}";
  for (ModelKind Kind :
       {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
        ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    auto S = analyze(Source, Kind);
    auto Q = S.pts("q");
    EXPECT_TRUE(std::find(Q.begin(), Q.end(), "x") != Q.end())
        << modelKindName(Kind);
  }
}

TEST(Unions, StructContainingUnionKeepsOtherFieldsSeparate) {
  auto S = analyze("struct S { union { int *a; char *b; } u; int *solo; } s;"
                   "int x, y, *p, *q;"
                   "void f(void) {"
                   "  s.u.a = &x;"
                   "  s.solo = &y;"
                   "  p = s.u.a;"
                   "  q = s.solo;"
                   "}",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("p"), strs({"x"}));
  EXPECT_EQ(S.pts("q"), strs({"y"}));
}

TEST(Unions, TaggedUnionVariantsMerge) {
  auto S = analyze("struct cell { int tag; union { struct cell *kid;"
                   " long num; } p; } a, b;"
                   "struct cell *r;"
                   "void f(void) {"
                   "  a.p.kid = &b;"
                   "  r = a.p.kid;"
                   "}",
                   ModelKind::CollapseOnCast);
  ASSERT_EQ(S.pts("r").size(), 1u);
  EXPECT_EQ(S.pts("r")[0].substr(0, 1), "b");
}

//===----------------------------------------------------------------------===//
// Arrays
//===----------------------------------------------------------------------===//

TEST(Arrays, ElementsCollapseToOneRepresentative) {
  auto S = analyze("int *table[8]; int x, y, *p;"
                   "void f(void) {"
                   "  table[2] = &x;"
                   "  table[5] = &y;"
                   "  p = table[7];"
                   "}",
                   ModelKind::Offsets);
  EXPECT_EQ(S.pts("p"), strs({"x", "y"})); // one element stands for all
}

TEST(Arrays, ArraysOfStructsKeepFieldsApart) {
  const char *Source = "struct P { int *a; int *b; } ps[4];"
                       "int x, y, *ra, *rb;"
                       "void f(void) {"
                       "  ps[0].a = &x;"
                       "  ps[3].b = &y;"
                       "  ra = ps[1].a;"
                       "  rb = ps[2].b;"
                       "}";
  for (ModelKind Kind : {ModelKind::CollapseOnCast,
                         ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    auto S = analyze(Source, Kind);
    EXPECT_EQ(S.pts("ra"), strs({"x"})) << modelKindName(Kind);
    EXPECT_EQ(S.pts("rb"), strs({"y"})) << modelKindName(Kind);
  }
}

TEST(Arrays, PointerWalkOverArrayStructSmears) {
  // The paper's array adjustment: a lookup landing inside an array must
  // include all fields of that array among the following fields.
  auto S = analyze("struct P { int *a; int *b; };"
                   "struct T { struct P rows[3]; int *tail; } t;"
                   "int x, y, z, *r;"
                   "char *rc;"
                   "void f(void) {"
                   "  t.rows[0].a = &x;"
                   "  t.rows[0].b = &y;"
                   "  t.tail = &z;"
                   "  r = *(int **)&t.rows[1].b;"  // matched type: precise
                   "  rc = *(char **)&t.rows[1].b;" // mismatched: smears
                   "}",
                   ModelKind::CommonInitialSeq);
  // The matched-type read is precise (one representative element).
  EXPECT_EQ(S.pts("r"), strs({"y"}));
  // The mismatched read returns the fields from b onward *including the
  // whole array group* (the paper's array adjustment), plus the tail.
  auto R = S.pts("rc");
  EXPECT_TRUE(std::find(R.begin(), R.end(), "x") != R.end());
  EXPECT_TRUE(std::find(R.begin(), R.end(), "y") != R.end());
  EXPECT_TRUE(std::find(R.begin(), R.end(), "z") != R.end());
}

TEST(Arrays, MultiDimensionalCollapse) {
  auto S = analyze("int *grid[3][4]; int x, *p;"
                   "void f(void) {"
                   "  grid[1][2] = &x;"
                   "  p = grid[0][0];"
                   "}",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("p"), strs({"x"}));
}

TEST(Arrays, DecayAndExplicitAddressAgree) {
  auto S = analyze("int buf[4]; int *p, *q, *r;"
                   "void f(void) {"
                   "  p = buf;"        // decay
                   "  q = &buf[0];"    // explicit element address
                   "  r = &buf[3];"    // any element: same representative
                   "}",
                   ModelKind::Offsets);
  EXPECT_EQ(S.pts("p"), strs({"buf"}));
  EXPECT_EQ(S.pts("q"), strs({"buf"}));
  EXPECT_EQ(S.pts("r"), strs({"buf"}));
}

TEST(Arrays, StrideArithKeepsWalkInsideTheArray) {
  const char *Source = "struct S { char name[8]; int *secret; } s;"
                       "int x; char *w; char ch;"
                       "void f(void) {"
                       "  s.secret = &x;"
                       "  w = s.name;"
                       "  w = w + 1;"   // walking the char array
                       "  ch = *w;"
                       "}";
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(Source, Diags);
  ASSERT_TRUE(P != nullptr);

  // Plain Assumption 1: w may point at s.secret too.
  AnalysisOptions Plain;
  Plain.Model = ModelKind::CommonInitialSeq;
  Analysis APlain(P->Prog, Plain);
  APlain.run();
  auto WPlain = pointsToSetOf(APlain.solver(), "w");
  EXPECT_EQ(WPlain, strs({"s.name", "s.secret"}));

  // Stride rule: the walk stays inside the array member.
  AnalysisOptions Stride = Plain;
  Stride.Solver.StrideArith = true;
  Analysis AStride(P->Prog, Stride);
  AStride.run();
  auto WStride = pointsToSetOf(AStride.solver(), "w");
  EXPECT_EQ(WStride, strs({"s.name"}));
}

//===----------------------------------------------------------------------===//
// Unknown tracking
//===----------------------------------------------------------------------===//

TEST(UnknownMode, ArithmeticTaintsInsteadOfSmearing) {
  const char *Source = "struct S { int *a; int *b; } s;"
                       "int x, *r; int **w;"
                       "void f(void) {"
                       "  s.a = &x;"
                       "  w = &s.a; w = w + 1; r = *w;"
                       "}";
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(Source, Diags);
  ASSERT_TRUE(P != nullptr);
  AnalysisOptions Opts;
  Opts.Model = ModelKind::CommonInitialSeq;
  Opts.Solver.TrackUnknown = true;
  Analysis A(P->Prog, Opts);
  A.run();
  auto W = pointsToSetOf(A.solver(), "w");
  EXPECT_EQ(W, strs({"$unknown", "s.a"}));
  EXPECT_GE(A.derefMetrics().UnknownSites, 1u);
}
