//===--- MetricsTest.cpp - Unit tests for the measurement layer -----------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pta/GraphExport.h"

using namespace spa;
using namespace spa::test;

TEST(Metrics, CountsEverySiteIncludingEmptyOnes) {
  auto S = analyze("int *p, *q, x;"
                   "void f(void) {"
                   "  p = &x;"
                   "  x = *p;"   // nonempty set
                   "  x = *q;"   // q never assigned: empty set
                   "}",
                   ModelKind::CommonInitialSeq);
  DerefMetrics M = S.A->derefMetrics();
  EXPECT_EQ(M.Sites, 2u);
  EXPECT_EQ(M.NonEmptySites, 1u);
  EXPECT_EQ(M.TotalTargets, 1u);
  EXPECT_DOUBLE_EQ(M.AvgSetSize, 0.5);
  EXPECT_DOUBLE_EQ(M.AvgNonEmpty, 1.0);
  EXPECT_EQ(M.MaxSetSize, 1u);
}

TEST(Metrics, CollapseAlwaysExpandsStructTargets) {
  // p points at a three-leaf struct; Collapse Always reports one node but
  // the Figure-4 expansion counts three fields.
  auto S = analyze("struct S { int *a; int *b; int c; } s;"
                   "struct S *p;"
                   "int x;"
                   "void f(void) { p = &s; p->a = &x; }",
                   ModelKind::CollapseAlways);
  DerefMetrics M = S.A->derefMetrics();
  EXPECT_EQ(M.MaxSetSize, 3u);
}

TEST(Metrics, IndirectCallSitesCanBeExcluded) {
  auto S = analyze("void g(void) { }"
                   "void (*fp)(void);"
                   "int *p, x;"
                   "void f(void) { fp = g; fp(); x = *p; }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.A->derefMetrics(/*IncludeCalls=*/true).Sites, 2u);
  EXPECT_EQ(S.A->derefMetrics(/*IncludeCalls=*/false).Sites, 1u);
}

TEST(Metrics, PointsToSetOfFindsLocalsByQualifiedName) {
  auto S = analyze("int x;"
                   "void f(void) { int *local; local = &x; }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(pointsToSetOf(S.A->solver(), "f::local"), strs({"x"}));
  EXPECT_EQ(pointsToSetOf(S.A->solver(), "local"), strs({"x"}));
}

TEST(Metrics, NodeToStringSpellsFieldsAndOffsets) {
  auto SField = analyze("struct S { int *a; int *b; } s; int x;"
                        "void f(void) { s.b = &x; }",
                        ModelKind::CommonInitialSeq);
  std::string EdgesField = exportEdgeList(SField.A->solver());
  EXPECT_NE(EdgesField.find("s.b -> x"), std::string::npos);

  auto SOff = analyze("struct S { int *a; int *b; } s; int x;"
                      "void f(void) { s.b = &x; }",
                      ModelKind::Offsets);
  std::string EdgesOff = exportEdgeList(SOff.A->solver());
  EXPECT_NE(EdgesOff.find("s+4 -> x"), std::string::npos);
}
