//===--- CastIdiomsTest.cpp - Real-world casting idioms -------------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The casting idioms that motivated the paper, as focused scenarios:
/// sockaddr-style record families, first-member "inheritance" with up and
/// down casts, byte-arena allocation, intrusive links recovered from
/// member addresses, and pointer laundering through integers.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace spa;
using namespace spa::test;

//===----------------------------------------------------------------------===//
// sockaddr-style: a generic header type and per-family variants sharing a
// common initial sequence.
//===----------------------------------------------------------------------===//

static const char *SockaddrSource = R"(
struct sockaddr { int sa_family; char sa_data[4]; };
struct sockaddr_in { int sin_family; int sin_port; int *sin_addr; };
struct sockaddr_un { int sun_family; char sun_path[8]; };

struct sockaddr_in sin;
int the_addr;
int family_out;
int *addr_out;

void fill(struct sockaddr *sa) {
  family_out = sa->sa_family; /* CIS-covered access */
}

void f(void) {
  sin.sin_family = 2;
  sin.sin_addr = &the_addr;
  fill((struct sockaddr *)&sin);
  addr_out = sin.sin_addr;
}
)";

TEST(CastIdioms, SockaddrFamilyStaysPrecise) {
  auto S = analyze(SockaddrSource, ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("addr_out"), strs({"the_addr"}));
  // The header access through the generic view did not disturb sin_addr.
  auto CIS = S.A->model().stats();
  EXPECT_GT(CIS.LookupCalls + CIS.ResolveCalls, 0u);
}

TEST(CastIdioms, SockaddrUnderCollapseOnCastSmearsTheVariant) {
  // sa_family matches only via the 1-field CIS; CoC has no exact type
  // match for the generic view, so the variant's fields merge.
  auto CoC = analyze(SockaddrSource, ModelKind::CollapseOnCast);
  auto CIS = analyze(SockaddrSource, ModelKind::CommonInitialSeq);
  EXPECT_GE(CoC.A->derefMetrics().AvgSetSize,
            CIS.A->derefMetrics().AvgSetSize);
}

//===----------------------------------------------------------------------===//
// First-member inheritance (Problem 1 at scale).
//===----------------------------------------------------------------------===//

static const char *InheritanceSource = R"(
struct base { int kind; struct base *next; };
struct derived { struct base b; int *payload; };

struct base *list_head;
struct derived d1, d2;
int x1, x2;
int *out;

void push(struct base *node) {
  node->next = list_head;
  list_head = node;
}

void f(void) {
  d1.payload = &x1;
  d2.payload = &x2;
  push((struct base *)&d1);  /* up-casts */
  push((struct base *)&d2);
  out = ((struct derived *)list_head)->payload; /* down-cast */
}
)";

TEST(CastIdioms, FirstMemberInheritanceRoundTrips) {
  for (ModelKind Kind : {ModelKind::CollapseOnCast,
                         ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    auto S = analyze(InheritanceSource, Kind);
    EXPECT_EQ(S.pts("out"), strs({"x1", "x2"})) << modelKindName(Kind);
    // The intrusive next links see only the two nodes.
    auto Head = S.pts("list_head");
    EXPECT_EQ(Head.size(), 2u) << modelKindName(Kind);
  }
}

//===----------------------------------------------------------------------===//
// Byte-arena allocation: records carved out of a char array.
//===----------------------------------------------------------------------===//

static const char *ArenaSource = R"(
struct rec { int *val; struct rec *link; };
char arena[256];
int used;
int x;
struct rec *r1, *r2;
int *out;

char *bump(int n) {
  char *p;
  p = &arena[used];
  used += n;
  return p;
}

void f(void) {
  r1 = (struct rec *)bump(8);
  r2 = (struct rec *)bump(8);
  r1->val = &x;
  r1->link = r2;
  out = r1->val;
}
)";

TEST(CastIdioms, ArenaRecordsAreSafeEverywhere) {
  for (ModelKind Kind :
       {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
        ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    auto S = analyze(ArenaSource, Kind);
    auto Out = S.pts("out");
    EXPECT_TRUE(std::find(Out.begin(), Out.end(), "x") != Out.end())
        << modelKindName(Kind);
  }
}

TEST(CastIdioms, ArenaCollapsesIntoOneObjectButNotAcrossObjects) {
  // Both records live in the arena object, so they alias each other --
  // but unrelated variables stay out.
  auto S = analyze(ArenaSource, ModelKind::CommonInitialSeq);
  auto R1 = S.pts("r1");
  ASSERT_FALSE(R1.empty());
  for (const std::string &T : R1)
    EXPECT_EQ(T.substr(0, 5), "arena");
}

//===----------------------------------------------------------------------===//
// Pointer laundering through memcpy of a struct holding pointers.
//===----------------------------------------------------------------------===//

TEST(CastIdioms, StructBlittedThroughCharBufferKeepsTargets) {
  const char *Source = R"(
struct pair { int *first; int *second; };
struct pair a, b;
char buf[16];
int x, y;
int *out1, *out2;
void f(void) {
  a.first = &x;
  a.second = &y;
  memcpy(buf, &a, sizeof(a));
  memcpy(&b, buf, sizeof(b));
  out1 = b.first;
  out2 = b.second;
}
)";
  for (ModelKind Kind : {ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    auto S = analyze(Source, Kind);
    auto O1 = S.pts("out1");
    EXPECT_TRUE(std::find(O1.begin(), O1.end(), "x") != O1.end())
        << modelKindName(Kind);
    auto O2 = S.pts("out2");
    EXPECT_TRUE(std::find(O2.begin(), O2.end(), "y") != O2.end())
        << modelKindName(Kind);
  }
}

//===----------------------------------------------------------------------===//
// Opaque handle pattern: a typed pointer exposed as void*/long.
//===----------------------------------------------------------------------===//

TEST(CastIdioms, OpaqueHandleRoundTrip) {
  const char *Source = R"(
struct session { int id; int *state; };
int the_state;
long handle;
int *out;

long open_session(void) {
  struct session *s;
  s = (struct session *)malloc(sizeof(struct session));
  s->state = &the_state;
  return (long)s;
}

void use_session(long h) {
  struct session *s;
  s = (struct session *)h;
  out = s->state;
}

void f(void) {
  handle = open_session();
  use_session(handle);
}
)";
  auto S = analyze(Source, ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("out"), strs({"the_state"}));
}

//===----------------------------------------------------------------------===//
// Problem 1's converse: a struct used as its first-field pointer.
//===----------------------------------------------------------------------===//

TEST(CastIdioms, StructUsedAsItsFirstPointer) {
  const char *Source = R"(
struct wrap { int *inner; } w;
int x;
int *out;
void f(void) {
  w.inner = &x;
  out = *(int **)&w;   /* read the struct as its first field */
}
)";
  for (ModelKind Kind : {ModelKind::CollapseOnCast,
                         ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    auto S = analyze(Source, Kind);
    EXPECT_EQ(S.pts("out"), strs({"x"})) << modelKindName(Kind);
  }
}
