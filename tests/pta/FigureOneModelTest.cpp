//===--- FigureOneModelTest.cpp - The Section-3 demonstration -------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Section-3 narrative with the Figure-1 rules:
/// precise on cast-free code (the introductory example, step by step),
/// and demonstrably UNSOUND once casting appears (Problem 1's fact is
/// missed) -- the motivation for the normalize/lookup/resolve framework.
///
//===----------------------------------------------------------------------===//

#include "pta/FigureOneModel.h"

#include "TestUtil.h"

using namespace spa;
using namespace spa::test;

namespace {

/// Solves with the Figure-1 rules.
struct FigOneSolved {
  std::unique_ptr<CompiledProgram> Program;
  std::unique_ptr<LayoutEngine> Layout;
  std::unique_ptr<FigureOneModel> Model;
  std::unique_ptr<Solver> TheSolver;

  std::vector<std::string> pts(std::string_view Name) {
    return pointsToSetOf(*TheSolver, Name);
  }
};

FigOneSolved solveFigOne(std::string_view Source) {
  FigOneSolved S;
  DiagnosticEngine Diags;
  S.Program = CompiledProgram::fromSource(Source, Diags);
  EXPECT_TRUE(S.Program != nullptr) << Diags.formatAll();
  if (!S.Program)
    return S;
  S.Layout = std::make_unique<LayoutEngine>(S.Program->Types,
                                            TargetInfo::ilp32());
  S.Model = std::make_unique<FigureOneModel>(S.Program->Prog, *S.Layout);
  S.TheSolver = std::make_unique<Solver>(S.Program->Prog, *S.Model);
  S.TheSolver->solve();
  return S;
}

} // namespace

TEST(FigureOne, IntroExampleIsPreciseWithoutCasts) {
  // Section 3 walks the introductory example through the rules and infers
  // the precise pointsTo(p, x).
  auto S = solveFigOne("struct S { int *s1; int *s2; } s;"
                       "int x, y, *p;"
                       "void f(void) {"
                       "  s.s1 = &x;"
                       "  s.s2 = &y;"
                       "  p = s.s1;"
                       "}");
  EXPECT_EQ(S.pts("p"), strs({"x"}));
}

TEST(FigureOne, HandlesNestedFieldsAndDerefChains) {
  auto S = solveFigOne("struct In { int *q; };"
                       "struct Out { struct In in; } o, *po;"
                       "int x, *r;"
                       "void f(void) {"
                       "  po = &o;"
                       "  po->in.q = &x;"
                       "  r = o.in.q;"
                       "}");
  EXPECT_EQ(S.pts("r"), strs({"x"}));
}

TEST(FigureOne, MissesProblem1TheFrameworkCatches) {
  // Section 4.1, Problem 1: the Figure-1 rules cannot infer that s.s1
  // points to x after the struct-typed store, so r's set is EMPTY -- the
  // unsoundness that motivates normalize/lookup/resolve. Every framework
  // instance gets it right.
  const char *Source = "struct S { int *s1; } s, *p;"
                       "int x, *q, *r;"
                       "void f(void) {"
                       "  p = &s;"
                       "  q = &x;"
                       "  *p = *(struct S *)&q;"
                       "  r = s.s1;"
                       "}";
  auto Fig1 = solveFigOne(Source);
  EXPECT_TRUE(Fig1.pts("r").empty()) << "Figure 1 must (wrongly) miss it";

  for (ModelKind Kind :
       {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
        ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    auto S = analyze(Source, Kind);
    auto R = S.pts("r");
    EXPECT_TRUE(std::find(R.begin(), R.end(), "x") != R.end())
        << modelKindName(Kind);
  }
}

TEST(FigureOne, MissesTheSection3StructCast) {
  // Section 3's closing example: b = (struct B)a must transfer a.a1's
  // target to b.b1; the extended-Rule-3 reading produces the nonsensical
  // pointsTo(b.a1, x) instead. Our path-suffix realization shows exactly
  // that: the fact lands on a b-node spelled with a's field path.
  auto S = solveFigOne("struct A { int *a1; } a;"
                       "struct B { int *b1; } b;"
                       "int x, *r;"
                       "void f(void) {"
                       "  a.a1 = &x;"
                       "  b = *(struct B *)&a;"
                       "  r = b.b1;"
                       "}");
  EXPECT_TRUE(S.pts("r").empty());
}
