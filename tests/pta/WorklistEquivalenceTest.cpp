//===--- WorklistEquivalenceTest.cpp - Worklist == naive fixpoint ---------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference.)
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worklist solver — with and without difference propagation — is an
/// engineering optimization that must compute exactly the graph of the
/// paper's repeat-all-statements algorithm. This asserts bit-for-bit
/// equality (via the stable edge-list export) over the whole corpus, a
/// sweep of generated programs, and a sweep of option permutations, for
/// all four instances.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pta/GraphExport.h"
#include "workload/Corpus.h"
#include "workload/Generator.h"

using namespace spa;
using namespace spa::test;

namespace {

/// Solves \p Source four ways — naive rounds, plain worklist, worklist
/// with delta propagation, delta worklist with cycle elimination — and
/// compares the full graphs, for all four models. \p Base carries the
/// option permutation under test.
void expectEquivalent(const std::string &Source, const std::string &Label,
                      SolverOptions Base = {}) {
  for (ModelKind Kind :
       {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
        ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    DiagnosticEngine D1, D2, D3, D4;
    auto P1 = CompiledProgram::fromSource(Source, D1);
    auto P2 = CompiledProgram::fromSource(Source, D2);
    auto P3 = CompiledProgram::fromSource(Source, D3);
    auto P4 = CompiledProgram::fromSource(Source, D4);
    ASSERT_TRUE(P1 && P2 && P3 && P4) << Label;

    AnalysisOptions Naive;
    Naive.Model = Kind;
    Naive.Solver = Base;
    Naive.Solver.UseWorklist = false;
    Analysis A1(P1->Prog, Naive);
    A1.run();

    AnalysisOptions Plain = Naive;
    Plain.Solver.UseWorklist = true;
    Plain.Solver.DeltaPropagation = false;
    Analysis A2(P2->Prog, Plain);
    A2.run();

    AnalysisOptions Delta = Naive;
    Delta.Solver.UseWorklist = true;
    Delta.Solver.DeltaPropagation = true;
    Analysis A3(P3->Prog, Delta);
    A3.run();

    AnalysisOptions Scc = Naive;
    Scc.Solver.CycleElimination = true;
    Analysis A4(P4->Prog, Scc);
    A4.run();

    ASSERT_TRUE(A1.solver().runStats().Converged) << Label;
    ASSERT_TRUE(A2.solver().runStats().Converged) << Label;
    ASSERT_TRUE(A3.solver().runStats().Converged) << Label;
    ASSERT_TRUE(A4.solver().runStats().Converged) << Label;

    ExportOptions All;
    All.IncludeTemps = true;
    std::string Expected = exportEdgeList(A1.solver(), All);
    EXPECT_EQ(Expected, exportEdgeList(A2.solver(), All))
        << Label << " (plain worklist) under " << modelKindName(Kind);
    EXPECT_EQ(Expected, exportEdgeList(A3.solver(), All))
        << Label << " (delta worklist) under " << modelKindName(Kind);
    EXPECT_EQ(Expected, exportEdgeList(A4.solver(), All))
        << Label << " (cycle elimination) under " << modelKindName(Kind);
    EXPECT_EQ(A1.solver().numEdges(), A3.solver().numEdges())
        << Label << " under " << modelKindName(Kind);
    EXPECT_EQ(A1.solver().numEdges(), A4.solver().numEdges())
        << Label << " (cycle elimination) under " << modelKindName(Kind);
  }
}

/// An adversarial inline program: indirect calls through a function
/// pointer table plus varargs pooling, the two call-binding paths whose
/// delta handling is easiest to get wrong.
const char *VarargsAndFnPtrSource = R"(
struct S { int *a; int *b; } s;
int x, y, z;
int *sink1, *sink2;

void take_many(int n, ...) { }

void f1(int **pp) { sink1 = *pp; }
void f2(int **pp) { sink2 = *pp; }

void (*table[2])(int **);

void dispatch(int i) {
  int *local;
  local = &x;
  table[0] = f1;
  table[1] = f2;
  table[i](&local);
  take_many(1, &y, s.a, table[i]);
  take_many(2, &z);
}

int main(void) {
  s.a = &y;
  s.b = &z;
  dispatch(0);
  return 0;
}
)";

const CorpusEntry *findCorpus(const char *FileName) {
  for (const CorpusEntry &E : corpusManifest())
    if (E.FileName == FileName)
      return &E;
  return nullptr;
}

class CorpusEquivalence : public ::testing::TestWithParam<CorpusEntry> {};

} // namespace

TEST_P(CorpusEquivalence, WorklistMatchesNaive) {
  std::string Source;
  ASSERT_TRUE(loadCorpusSource(GetParam(), Source));
  expectEquivalent(Source, GetParam().Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, CorpusEquivalence, ::testing::ValuesIn(corpusManifest()),
    [](const ::testing::TestParamInfo<CorpusEntry> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(OptionSweepEquivalence, AllPermutationsOnVarargsAndFnPtrs) {
  // Full cross product of the three semantic toggles on a program with
  // indirect calls and varargs; expectEquivalent multiplies in the four
  // models and the three engines.
  for (int Mask = 0; Mask < 8; ++Mask) {
    SolverOptions Base;
    Base.StrideArith = (Mask & 1) != 0;
    Base.TrackUnknown = (Mask & 2) != 0;
    Base.UseLibrarySummaries = (Mask & 4) == 0;
    expectEquivalent(VarargsAndFnPtrSource,
                     "varargs+fnptr mask " + std::to_string(Mask), Base);
  }
}

TEST(OptionSweepEquivalence, TogglesOnCorpusProgramsWithIndirectCalls) {
  // bc and less both drive work through function-pointer tables.
  for (const char *FileName : {"bc.c", "less.c"}) {
    const CorpusEntry *Entry = findCorpus(FileName);
    ASSERT_TRUE(Entry != nullptr) << FileName;
    std::string Source;
    ASSERT_TRUE(loadCorpusSource(*Entry, Source));
    for (int Toggle = 0; Toggle < 4; ++Toggle) {
      SolverOptions Base;
      Base.StrideArith = Toggle == 1;
      Base.TrackUnknown = Toggle == 2;
      Base.UseLibrarySummaries = Toggle != 3;
      expectEquivalent(Source, std::string(FileName) + " toggle " +
                                   std::to_string(Toggle),
                       Base);
    }
  }
}

TEST(GeneratedEquivalence, WorklistMatchesNaiveOnGeneratedPrograms) {
  for (uint64_t Seed : {7, 11, 19, 23}) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.StmtsPerFunction = 20;
    Config.UseFunctionPointers = Seed % 2 == 1;
    expectEquivalent(generateProgram(Config),
                     "seed " + std::to_string(Seed));
  }
}

TEST(GeneratedEquivalence, StatementHeavyWorkloadStaysCheap) {
  // Regression guard for the quadratic noteRead registration: a workload
  // with many statements re-reading the same objects must register each
  // (statement, object) dependency once and still match the naive graph.
  GeneratorConfig Config;
  Config.Seed = 5;
  Config.NumStructVars = 16;
  Config.NumPtrVars = 16;
  Config.NumFunctions = 10;
  Config.StmtsPerFunction = 60;
  Config.UseFunctionPointers = true;
  std::string Source = generateProgram(Config);
  expectEquivalent(Source, "statement-heavy seed 5");
}

TEST(GeneratedEquivalence, CycleHeavyProgramsMatchAcrossEngines) {
  // Copy rings and mutually recursive call loops are exactly the shapes
  // cycle elimination rewrites (shared sets, merged logs, spliced
  // dependents); the collapsed graphs must still be bit-for-bit equal.
  for (uint64_t Seed : {2, 17}) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.StmtsPerFunction = 30;
    Config.CopyRingPercent = 40;
    Config.NumCallCycleFuncs = 4;
    Config.UseFunctionPointers = Seed % 2 == 1;
    expectEquivalent(generateProgram(Config),
                     "cycle-heavy seed " + std::to_string(Seed));
  }
}

TEST(GeneratedEquivalence, CycleEliminationActuallyCollapses) {
  // Guard against the engine silently degenerating into plain delta: on a
  // ring-heavy program the sweeps must find and collapse real cycles.
  GeneratorConfig Config;
  Config.Seed = 29;
  Config.NumPtrVars = 12;
  Config.StmtsPerFunction = 40;
  Config.CopyRingPercent = 50;
  Config.NumCallCycleFuncs = 6;
  std::string Source = generateProgram(Config);

  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(Source, Diags);
  ASSERT_TRUE(P);
  AnalysisOptions Scc;
  Scc.Model = ModelKind::CommonInitialSeq;
  Scc.Solver.CycleElimination = true;
  Analysis A(P->Prog, Scc);
  A.run();

  const SolverRunStats &S = A.solver().runStats();
  ASSERT_TRUE(S.Converged);
  EXPECT_GT(S.SccsCollapsed, 0u);
  EXPECT_GT(S.NodesMergedOnline, 0u);
  EXPECT_GT(S.SccSweeps, 0u);
  EXPECT_GT(S.CopyEdges, 0u);
  EXPECT_GT(S.BytesHighWater, 0u);
  // Every pop in this engine comes off the priority queue.
  EXPECT_EQ(S.PriorityPops, S.Pops);
  // The option normalization made the run a delta worklist underneath.
  EXPECT_TRUE(A.solver().options().UseWorklist);
  EXPECT_TRUE(A.solver().options().DeltaPropagation);
}

TEST(GeneratedEquivalence, WorklistDoesLessWork) {
  GeneratorConfig Config;
  Config.Seed = 3;
  Config.NumStructVars = 12;
  Config.NumFunctions = 6;
  Config.StmtsPerFunction = 30;
  std::string Source = generateProgram(Config);

  DiagnosticEngine D1, D2;
  auto P1 = CompiledProgram::fromSource(Source, D1);
  auto P2 = CompiledProgram::fromSource(Source, D2);
  ASSERT_TRUE(P1 && P2);

  AnalysisOptions Naive;
  Naive.Model = ModelKind::CommonInitialSeq;
  Analysis A1(P1->Prog, Naive);
  A1.run();

  AnalysisOptions Fast = Naive;
  Fast.Solver.UseWorklist = true;
  Analysis A2(P2->Prog, Fast);
  A2.run();

  EXPECT_LT(A2.solver().runStats().StmtsApplied,
            A1.solver().runStats().StmtsApplied);
}

TEST(GeneratedEquivalence, DeltaPropagationReplacesFullJoins) {
  GeneratorConfig Config;
  Config.Seed = 13;
  Config.NumStructVars = 12;
  Config.NumFunctions = 6;
  Config.StmtsPerFunction = 30;
  Config.UseFunctionPointers = true;
  std::string Source = generateProgram(Config);

  DiagnosticEngine D1, D2;
  auto P1 = CompiledProgram::fromSource(Source, D1);
  auto P2 = CompiledProgram::fromSource(Source, D2);
  ASSERT_TRUE(P1 && P2);

  AnalysisOptions Plain;
  Plain.Model = ModelKind::CommonInitialSeq;
  Plain.Solver.UseWorklist = true;
  Plain.Solver.DeltaPropagation = false;
  Analysis A1(P1->Prog, Plain);
  A1.run();

  AnalysisOptions Delta = Plain;
  Delta.Solver.DeltaPropagation = true;
  Analysis A2(P2->Prog, Delta);
  A2.run();

  const SolverRunStats &PS = A1.solver().runStats();
  const SolverRunStats &DS = A2.solver().runStats();
  EXPECT_EQ(PS.DeltaPropagations, 0u);
  EXPECT_GT(DS.DeltaPropagations, 0u);
  // Every re-visited pair that the plain engine re-joins in full becomes
  // a (cheap) delta consume, so the delta engine does fewer full joins.
  EXPECT_LT(DS.FullPropagations, PS.FullPropagations);
}
