//===--- WorklistEquivalenceTest.cpp - Worklist == naive fixpoint ---------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference.)
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worklist solver is an engineering optimization that must compute
/// exactly the graph of the paper's repeat-all-statements algorithm. This
/// asserts bit-for-bit equality (via the stable edge-list export) over
/// the whole corpus and a sweep of generated programs, for all four
/// instances.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pta/GraphExport.h"
#include "workload/Corpus.h"
#include "workload/Generator.h"

using namespace spa;
using namespace spa::test;

namespace {

/// Solves \p Source both ways and compares the full graphs.
void expectEquivalent(const std::string &Source, const std::string &Label) {
  for (ModelKind Kind :
       {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
        ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    DiagnosticEngine D1, D2;
    auto P1 = CompiledProgram::fromSource(Source, D1);
    auto P2 = CompiledProgram::fromSource(Source, D2);
    ASSERT_TRUE(P1 && P2) << Label;

    AnalysisOptions Naive;
    Naive.Model = Kind;
    Naive.Solver.UseWorklist = false;
    Analysis A1(P1->Prog, Naive);
    A1.run();

    AnalysisOptions Fast = Naive;
    Fast.Solver.UseWorklist = true;
    Analysis A2(P2->Prog, Fast);
    A2.run();

    ExportOptions All;
    All.IncludeTemps = true;
    EXPECT_EQ(exportEdgeList(A1.solver(), All), exportEdgeList(A2.solver(), All))
        << Label << " under " << modelKindName(Kind);
    EXPECT_EQ(A1.solver().numEdges(), A2.solver().numEdges())
        << Label << " under " << modelKindName(Kind);
  }
}

class CorpusEquivalence : public ::testing::TestWithParam<CorpusEntry> {};

} // namespace

TEST_P(CorpusEquivalence, WorklistMatchesNaive) {
  std::string Source;
  ASSERT_TRUE(loadCorpusSource(GetParam(), Source));
  expectEquivalent(Source, GetParam().Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, CorpusEquivalence, ::testing::ValuesIn(corpusManifest()),
    [](const ::testing::TestParamInfo<CorpusEntry> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(GeneratedEquivalence, WorklistMatchesNaiveOnGeneratedPrograms) {
  for (uint64_t Seed : {7, 11, 19, 23}) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.StmtsPerFunction = 20;
    Config.UseFunctionPointers = Seed % 2 == 1;
    expectEquivalent(generateProgram(Config),
                     "seed " + std::to_string(Seed));
  }
}

TEST(GeneratedEquivalence, WorklistDoesLessWork) {
  GeneratorConfig Config;
  Config.Seed = 3;
  Config.NumStructVars = 12;
  Config.NumFunctions = 6;
  Config.StmtsPerFunction = 30;
  std::string Source = generateProgram(Config);

  DiagnosticEngine D1, D2;
  auto P1 = CompiledProgram::fromSource(Source, D1);
  auto P2 = CompiledProgram::fromSource(Source, D2);
  ASSERT_TRUE(P1 && P2);

  AnalysisOptions Naive;
  Naive.Model = ModelKind::CommonInitialSeq;
  Analysis A1(P1->Prog, Naive);
  A1.run();

  AnalysisOptions Fast = Naive;
  Fast.Solver.UseWorklist = true;
  Analysis A2(P2->Prog, Fast);
  A2.run();

  EXPECT_LT(A2.solver().runStats().StmtsApplied,
            A1.solver().runStats().StmtsApplied);
}
