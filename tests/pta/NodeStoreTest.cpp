//===--- NodeStoreTest.cpp - Unit tests for the node table ----------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pta/NodeStore.h"

#include "gtest/gtest.h"

using namespace spa;

TEST(NodeStore, GetNodeIsIdempotent) {
  NodeStore Store;
  ObjectId Obj(3);
  NodeId A = Store.getNode(Obj, 0);
  NodeId B = Store.getNode(Obj, 4);
  EXPECT_NE(A, B);
  EXPECT_EQ(Store.getNode(Obj, 0), A);
  EXPECT_EQ(Store.getNode(Obj, 4), B);
  EXPECT_EQ(Store.size(), 2u);
}

TEST(NodeStore, InfoRoundTrips) {
  NodeStore Store;
  NodeId N = Store.getNode(ObjectId(7), 42);
  EXPECT_EQ(Store.objectOf(N), ObjectId(7));
  EXPECT_EQ(Store.keyOf(N), 42u);
}

TEST(NodeStore, FindDoesNotMaterialize) {
  NodeStore Store;
  EXPECT_FALSE(Store.findNode(ObjectId(1), 0).has_value());
  EXPECT_EQ(Store.size(), 0u);
  NodeId N = Store.getNode(ObjectId(1), 0);
  auto Found = Store.findNode(ObjectId(1), 0);
  ASSERT_TRUE(Found.has_value());
  EXPECT_EQ(*Found, N);
}

TEST(NodeStore, NodesOfObjectGroupsByOwner) {
  NodeStore Store;
  Store.getNode(ObjectId(0), 0);
  Store.getNode(ObjectId(1), 0);
  Store.getNode(ObjectId(1), 8);
  Store.getNode(ObjectId(2), 0);
  EXPECT_EQ(Store.nodesOfObject(ObjectId(1)).size(), 2u);
  EXPECT_EQ(Store.nodesOfObject(ObjectId(0)).size(), 1u);
  EXPECT_TRUE(Store.nodesOfObject(ObjectId(99)).empty());
}

TEST(NodeStore, OnNewNodeHookFiresOncePerNode) {
  NodeStore Store;
  int Fired = 0;
  ObjectId Seen;
  Store.setOnNewNode([&](ObjectId Obj) {
    ++Fired;
    Seen = Obj;
  });
  Store.getNode(ObjectId(5), 0);
  Store.getNode(ObjectId(5), 0); // existing: no callback
  Store.getNode(ObjectId(5), 4);
  EXPECT_EQ(Fired, 2);
  EXPECT_EQ(Seen, ObjectId(5));
  Store.setOnNewNode(nullptr);
  Store.getNode(ObjectId(6), 0); // must not crash with hook cleared
  EXPECT_EQ(Fired, 2);
}
