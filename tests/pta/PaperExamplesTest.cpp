//===--- PaperExamplesTest.cpp - The paper's worked examples --------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every worked example in the paper, checked against the behaviour each
/// section ascribes to each analysis instance. Direct structure casts
/// "(struct B)a" (which the paper permits for exposition) are written in
/// their legal-C form "*(struct B *)&a", exactly as the paper's Section 2
/// explains the equivalence.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace spa;
using namespace spa::test;

//===----------------------------------------------------------------------===//
// Section 1: the introductory example
//===----------------------------------------------------------------------===//

static const char *IntroSource = R"(
struct S { int *s1; int *s2; } s;
int x, y, *p;
void f(void) {
  s.s1 = &x;
  s.s2 = &y;
  p = s.s1;
}
)";

TEST(PaperIntro, CollapseAlwaysMergesFields) {
  auto S = analyze(IntroSource, ModelKind::CollapseAlways);
  EXPECT_EQ(S.pts("p"), strs({"x", "y"}));
}

TEST(PaperIntro, FieldSensitiveInstancesArePrecise) {
  for (ModelKind Kind : {ModelKind::CollapseOnCast,
                         ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    auto S = analyze(IntroSource, Kind);
    EXPECT_EQ(S.pts("p"), strs({"x"})) << modelKindName(Kind);
  }
}

//===----------------------------------------------------------------------===//
// Section 4.1, Problem 1: a pointer to a struct points to its first field
//===----------------------------------------------------------------------===//

static const char *Problem1Source = R"(
struct S { int *s1; } s, *p;
int x, *q, *r;
void f(void) {
  p = &s;
  q = &x;
  *p = *(struct S *)&q;  /* the paper's *p = (struct S)q */
  r = s.s1;
}
)";

TEST(PaperProblem1, AllCastingAwareInstancesInferR) {
  for (ModelKind Kind :
       {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
        ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    auto S = analyze(Problem1Source, Kind);
    auto R = S.pts("r");
    EXPECT_TRUE(std::find(R.begin(), R.end(), "x") != R.end())
        << modelKindName(Kind) << " must infer r -> x";
  }
}

TEST(PaperProblem1, FieldInstancesAreExact) {
  for (ModelKind Kind : {ModelKind::CollapseOnCast,
                         ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    auto S = analyze(Problem1Source, Kind);
    EXPECT_EQ(S.pts("r"), strs({"x"})) << modelKindName(Kind);
  }
}

//===----------------------------------------------------------------------===//
// Section 4.1, Problem 2: dereference at a mismatched type
//===----------------------------------------------------------------------===//

// struct S's s3 and struct T's t3 are both at offset 8 under ilp32, but the
// second fields have incompatible types, so only Offsets may match them.
static const char *Problem2Source = R"(
struct S { int *s1; int s2; char *s3; } *p;
struct T { int *t1; int *t2; char *t3; } t;
char **c;
void f(void) {
  p = (struct S *)&t;
  c = &((*p).s3);
}
)";

TEST(PaperProblem2, OffsetsIsExact) {
  auto S = analyze(Problem2Source, ModelKind::Offsets);
  EXPECT_EQ(S.pts("c"), strs({"t+8"}));
}

TEST(PaperProblem2, CommonInitialSequenceKeepsTheMatchedPrefixOut) {
  // CIS(S, T) = {<s1,t1>}; s3 follows the sequence, so lookup returns the
  // fields of t from the first field after the sequence: {t2, t3}.
  auto S = analyze(Problem2Source, ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("c"), strs({"t.t2", "t.t3"}));
}

TEST(PaperProblem2, CollapseOnCastSmearsFromBeta) {
  auto S = analyze(Problem2Source, ModelKind::CollapseOnCast);
  EXPECT_EQ(S.pts("c"), strs({"t.t1", "t.t2", "t.t3"}));
}

//===----------------------------------------------------------------------===//
// Section 4.1, Problem 3: block copy at a mismatched type
//===----------------------------------------------------------------------===//

static const char *Problem3Source = R"(
struct S { int *s1; int s2; char *s3; } s;
struct T { int *t1; int *t2; char *t3; } t;
int a; int b; char cc;
void f(void) {
  t.t1 = &a;
  t.t2 = &b;
  t.t3 = &cc;
  s = *(struct S *)&t;  /* the paper's s = (struct S)t */
}
)";

TEST(PaperProblem3, OffsetsCopiesByteForByte) {
  auto S = analyze(Problem3Source, ModelKind::Offsets);
  EXPECT_EQ(S.pts("s"), strs({"a", "b", "cc"})); // s+0<-a, s+4<-b, s+8<-cc
  // Precisely: the copy matches offsets 0/4/8.
  auto &Solver = S.A->solver();
  auto &Prog = S.Program->Prog;
  // Find object "s" and check per-offset sets.
  for (uint32_t I = 0; I < Prog.Objects.size(); ++I) {
    if (Prog.Strings.text(Prog.Objects[I].Name) != "s")
      continue;
    ObjectId Obj(I);
    auto N0 = Solver.model().nodes().findNode(Obj, 0);
    auto N4 = Solver.model().nodes().findNode(Obj, 4);
    auto N8 = Solver.model().nodes().findNode(Obj, 8);
    ASSERT_TRUE(N0 && N4 && N8);
    EXPECT_EQ(Solver.pointsTo(*N0).size(), 1u);
    EXPECT_EQ(Solver.pointsTo(*N4).size(), 1u);
    EXPECT_EQ(Solver.pointsTo(*N8).size(), 1u);
  }
}

TEST(PaperProblem3, PortableInstancesAreSafe) {
  for (ModelKind Kind : {ModelKind::CollapseOnCast,
                         ModelKind::CommonInitialSeq}) {
    auto S = analyze(Problem3Source, Kind);
    auto Set = S.pts("s");
    // Must cover everything t's fields point to (safety).
    for (const char *Must : {"a", "b", "cc"})
      EXPECT_TRUE(std::find(Set.begin(), Set.end(), Must) != Set.end())
          << modelKindName(Kind) << " missing " << Must;
  }
}

//===----------------------------------------------------------------------===//
// Section 4.2.1, Complication 1: access beyond a nested struct
//===----------------------------------------------------------------------===//

static const char *Complication1Source = R"(
struct V { int *a; char *b; int *c; } v;
struct R { int *r1; char *r2; } r;
struct W { int *w1; struct R r; int *w3; } w;
int x1; char x2; int x3;
void f(void) {
  w.r.r1 = &x1;
  w.r.r2 = &x2;
  w.w3 = &x3;
  v = *(struct V *)&w.r;  /* the paper's v = (struct V)w.r */
}
)";

TEST(PaperComplication1, OffsetsReachesBeyondTheNestedStruct) {
  auto S = analyze(Complication1Source, ModelKind::Offsets);
  EXPECT_EQ(S.pts("v"), strs({"x1", "x2", "x3"}));
}

TEST(PaperComplication1, CommonInitialSequenceMatchesAndOverflowsPrecisely) {
  // CIS(V, R) covers both fields of R; V's third field falls beyond R, so
  // it must pick up exactly the field following w.r, namely w.w3.
  auto S = analyze(Complication1Source, ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("v"), strs({"x1", "x2", "x3"}));
}

TEST(PaperComplication1, CollapseOnCastIsSafeButSmears) {
  auto S = analyze(Complication1Source, ModelKind::CollapseOnCast);
  auto Set = S.pts("v");
  for (const char *Must : {"x1", "x2", "x3"})
    EXPECT_TRUE(std::find(Set.begin(), Set.end(), Must) != Set.end())
        << "missing " << Must;
}

//===----------------------------------------------------------------------===//
// Section 4.2.1, Complication 2: a double holding two pointers
//===----------------------------------------------------------------------===//

static const char *Complication2Source = R"(
struct R { int *r1; int *r2; } r;
double d;
struct R r2;
int x, y, *px, *py;
void f(void) {
  r.r1 = &x;
  r.r2 = &y;
  d = *(double *)&r;        /* the paper's d = (double)r */
  r2 = *(struct R *)&d;     /* recover both pointers from d */
  px = r2.r1;
  py = r2.r2;
}
)";

TEST(PaperComplication2, OffsetsTracksArtificialSubfields) {
  auto S = analyze(Complication2Source, ModelKind::Offsets);
  EXPECT_EQ(S.pts("px"), strs({"x"}));
  EXPECT_EQ(S.pts("py"), strs({"y"}));
  EXPECT_EQ(S.pts("d"), strs({"x", "y"})); // d+0 -> x, d+4 -> y
}

TEST(PaperComplication2, PortableInstancesRecoverBothPointersSafely) {
  for (ModelKind Kind : {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
                         ModelKind::CommonInitialSeq}) {
    auto S = analyze(Complication2Source, Kind);
    auto Px = S.pts("px");
    EXPECT_TRUE(std::find(Px.begin(), Px.end(), "x") != Px.end())
        << modelKindName(Kind);
    auto Py = S.pts("py");
    EXPECT_TRUE(std::find(Py.begin(), Py.end(), "y") != Py.end())
        << modelKindName(Kind);
  }
}

//===----------------------------------------------------------------------===//
// Section 4.2.1, Complication 4: the LHS type governs the copy size
//===----------------------------------------------------------------------===//

static const char *Complication4Source = R"(
struct R { int *r1; int *r2; char *r3; } r;
struct S { int *s1; int *s2; int *s3; } s;
struct T { int *t1; int *t2; } *p;
int a1, a2, a3; char keep;
void f(void) {
  s.s1 = &a1;
  s.s2 = &a2;
  s.s3 = &a3;
  r.r3 = &keep;
  p = (struct T *)&r;
  *p = *(struct T *)&s;  /* copies only two fields' worth */
}
)";

TEST(PaperComplication4, OffsetsCopiesOnlySizeofT) {
  auto S = analyze(Complication4Source, ModelKind::Offsets);
  auto Set = S.pts("r");
  EXPECT_EQ(Set, strs({"a1", "a2", "keep"})); // r3 keeps its old target only
}

TEST(PaperComplication4, CommonInitialSequencePairsExactly) {
  // CIS keeps r.r1<-s.s1 and r.r2<-s.s2 distinct and leaves r.r3 alone.
  auto S = analyze(Complication4Source, ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("r"), strs({"a1", "a2", "keep"}));
}

TEST(PaperComplication4, CollapseOnCastIsSafe) {
  auto S = analyze(Complication4Source, ModelKind::CollapseOnCast);
  auto Set = S.pts("r");
  for (const char *Must : {"a1", "a2", "keep"})
    EXPECT_TRUE(std::find(Set.begin(), Set.end(), Must) != Set.end())
        << "missing " << Must;
}

//===----------------------------------------------------------------------===//
// Section 4.3.2: the Collapse-on-Cast lookup example
//===----------------------------------------------------------------------===//

static const char *CoCLookupSource = R"(
struct S { int s1; char s2; } *p, *q;
struct T { struct S t1; int t2; char t3; } t;
char *x, *y;
void f(void) {
  p = &t.t1;
  x = &((*p).s2);
  q = (struct S *)&t.t2;
  y = &((*q).s2);
}
)";

TEST(PaperSection432, MatchingEnclosingTypeStaysPrecise) {
  auto S = analyze(CoCLookupSource, ModelKind::CollapseOnCast);
  EXPECT_EQ(S.pts("x"), strs({"t.t1.s2"}));
  EXPECT_EQ(S.pts("y"), strs({"t.t2", "t.t3"}));
}

//===----------------------------------------------------------------------===//
// Section 4.3.3: the Common-Initial-Sequence lookup example
//===----------------------------------------------------------------------===//

static const char *CISLookupSource = R"(
struct S { int *s1; int *s2; int *s3; } *p;
struct T { int *t1; int *t2; char t3; int t4; } t;
int **x, **y;
void f(void) {
  p = (struct S *)&t;
  x = &((*p).s2);
  y = &((*p).s3);
}
)";

TEST(PaperSection433, InsideAndOutsideTheCommonInitialSequence) {
  auto S = analyze(CISLookupSource, ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("x"), strs({"t.t2"}));
  EXPECT_EQ(S.pts("y"), strs({"t.t3", "t.t4"}));
}

TEST(PaperSection433, CollapseOnCastSmearsBoth) {
  auto S = analyze(CISLookupSource, ModelKind::CollapseOnCast);
  EXPECT_EQ(S.pts("x"), strs({"t.t1", "t.t2", "t.t3", "t.t4"}));
  EXPECT_EQ(S.pts("y"), strs({"t.t1", "t.t2", "t.t3", "t.t4"}));
}

//===----------------------------------------------------------------------===//
// Section 3: the no-casting rules, exercised through temporaries
//===----------------------------------------------------------------------===//

static const char *Section3Source = R"(
struct S { int *s1; int *s2; } s;
int x, y, *p;
int **tmp1, **tmp2;
void f(void) {
  tmp1 = &s.s1;
  tmp2 = &x ? &p : &p; /* keep p's address flowing somewhere harmless */
  *tmp1 = &x;
  p = s.s1;
}
)";

TEST(PaperSection3, StoreThroughFieldAddress) {
  for (ModelKind Kind : {ModelKind::CollapseOnCast,
                         ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    auto S = analyze(Section3Source, Kind);
    EXPECT_EQ(S.pts("p"), strs({"x"})) << modelKindName(Kind);
  }
}

//===----------------------------------------------------------------------===//
// Portability: the Offsets instance is layout-dependent, the others not
//===----------------------------------------------------------------------===//

static const char *PortabilitySource = R"(
struct S { int *s1; int s2; char *s3; } *p;
struct T { int *t1; int *t2; char *t3; } t;
char **c;
char target;
void f(void) {
  t.t3 = &target;
  p = (struct S *)&t;
  c = &((*p).s3);
}
)";

TEST(PaperPortability, OffsetsResultsChangeWithTheABI) {
  auto S32 = analyze(PortabilitySource, ModelKind::Offsets,
                     TargetInfo::ilp32());
  auto SPad = analyze(PortabilitySource, ModelKind::Offsets,
                      TargetInfo::padded32());
  // Under ilp32, s3 and t3 are both at offset 8: c -> {t+8}. Under the
  // padded ABI both are at offset 16: c -> {t+16}. The raw results differ,
  // which is exactly the portability hazard the paper describes.
  EXPECT_EQ(S32.pts("c"), strs({"t+8"}));
  EXPECT_EQ(SPad.pts("c"), strs({"t+16"}));
}

TEST(PaperPortability, PortableInstancesIgnoreTheABI) {
  for (ModelKind Kind : {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
                         ModelKind::CommonInitialSeq}) {
    auto S32 = analyze(PortabilitySource, Kind, TargetInfo::ilp32());
    auto SPad = analyze(PortabilitySource, Kind, TargetInfo::padded32());
    EXPECT_EQ(S32.pts("c"), SPad.pts("c")) << modelKindName(Kind);
  }
}
