//===--- SolverEdgeCasesTest.cpp - Degenerate and adversarial inputs ------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace spa;
using namespace spa::test;

TEST(SolverEdges, EmptyProgramSolvesInstantly) {
  auto S = analyze("int unused;", ModelKind::Offsets);
  EXPECT_EQ(S.A->solver().numEdges(), 0u);
  EXPECT_LE(S.A->solver().runStats().Rounds, 1u);
}

TEST(SolverEdges, SelfAssignmentIsAFixpointNoOp) {
  auto S = analyze("struct S { int *a; struct S *me; } s;"
                   "int x;"
                   "void f(void) { s.a = &x; s.me = &s; s = *s.me; }",
                   ModelKind::CommonInitialSeq);
  // &s normalizes to the innermost first field (the paper's normalize),
  // so the self-pointer target renders as s.a.
  EXPECT_EQ(S.pts("s"), strs({"s.a", "x"}));
  EXPECT_LT(S.A->solver().runStats().Rounds, 10u);
}

TEST(SolverEdges, CyclicPointerGraphConverges) {
  auto S = analyze("int **a, **b; int *pa, *pb; int x;"
                   "void f(void) {"
                   "  a = &pa; b = &pb;"
                   "  *a = (int *)b;"   /* pa -> pb (as data) */
                   "  *b = (int *)a;"   /* pb -> pa */
                   "  pa = &x;"
                   "}",
                   ModelKind::CollapseOnCast);
  auto Pa = S.pts("pa");
  EXPECT_TRUE(std::find(Pa.begin(), Pa.end(), "x") != Pa.end());
  EXPECT_LT(S.A->solver().runStats().Rounds, 10u);
}

TEST(SolverEdges, DerefOfNeverAssignedPointerIsEmptyNotFatal) {
  auto S = analyze("struct S { struct S *next; } *ghost;"
                   "void f(void) { ghost = ghost->next->next; }",
                   ModelKind::Offsets);
  EXPECT_TRUE(S.pts("ghost").empty());
}

TEST(SolverEdges, HugeStructCopyStaysPolynomial) {
  // A 32-field struct copied at a mismatched type: the CoC cross-product
  // is 32x32 pairs; the solver must still converge promptly.
  std::string Fields, Inits;
  for (int I = 0; I < 32; ++I) {
    Fields += "int *f" + std::to_string(I) + ";";
    Inits += "a.f" + std::to_string(I) + " = &x" + std::to_string(I % 4) +
             ";";
  }
  std::string Source = "struct A {" + Fields + "} a;" +
                       "struct B {" + Fields + "} b;" +
                       "int x0, x1, x2, x3;" +
                       "void f(void) {" + Inits +
                       " b = *(struct B *)&a; }";
  auto S = analyze(Source, ModelKind::CollapseOnCast);
  auto B = S.pts("b");
  EXPECT_EQ(B.size(), 4u); // all four targets, nothing more
  EXPECT_LT(S.A->solver().runStats().Rounds, 10u);
}

TEST(SolverEdges, StoreThroughEveryFieldOfASmearedPointer) {
  auto S = analyze("struct S { int *a; int *b; int *c; } s;"
                   "int x; int **w;"
                   "void f(void) {"
                   "  w = &s.a;"
                   "  w = w + 1;"
                   "  *w = &x;"   /* may hit any field */
                   "}",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("s"), strs({"x"}));
  // Every field saw the store.
  auto A = pointsToSetOf(S.A->solver(), "s");
  EXPECT_EQ(A, strs({"x"}));
}

TEST(SolverEdges, GlobalInitializersRunWithoutAnyFunctions) {
  auto S = analyze("int x;"
                   "int *p = &x;"
                   "int **pp = &p;",
                   ModelKind::Offsets);
  EXPECT_EQ(S.pts("p"), strs({"x"}));
  EXPECT_EQ(S.pts("pp"), strs({"p"}));
}

TEST(SolverEdges, MaxIterationCapPreventsRunaway) {
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource("int x, *p; void f(void) { p = &x; }",
                                       Diags);
  ASSERT_TRUE(P != nullptr);
  AnalysisOptions Opts;
  Opts.Model = ModelKind::CommonInitialSeq;
  Opts.Solver.MaxIterations = 1; // artificially tiny
  Opts.Solver.Diags = &Diags;
  Analysis A(P->Prog, Opts);
  A.run();
  EXPECT_EQ(A.solver().runStats().Rounds, 1u);
  // Hitting the cap is a truncated run, and the solver must say so instead
  // of silently returning an unsound graph.
  EXPECT_FALSE(A.solver().runStats().Converged);
  bool Warned = false;
  for (const Diagnostic &D : Diags.all())
    Warned |= D.Kind == DiagKind::Warning &&
              D.Message.find("fixpoint") != std::string::npos;
  EXPECT_TRUE(Warned);
}

TEST(SolverEdges, ConvergedRunsReportConvergence) {
  auto S = analyze("int x, *p; void f(void) { p = &x; }",
                   ModelKind::CommonInitialSeq);
  EXPECT_TRUE(S.A->solver().runStats().Converged);
}

TEST(SolverEdges, SummariesDisabledLeavesExternalsInert) {
  DiagnosticEngine Diags;
  auto P = CompiledProgram::fromSource(
      "char buf[8]; char *r; void f(void) { r = strchr(buf, 'x'); }", Diags);
  ASSERT_TRUE(P != nullptr);
  AnalysisOptions Opts;
  Opts.Model = ModelKind::CommonInitialSeq;
  Opts.Solver.UseLibrarySummaries = false;
  Analysis A(P->Prog, Opts);
  A.run();
  EXPECT_TRUE(pointsToSetOf(A.solver(), "r").empty());
}

namespace {
/// Finds the top-level object named \p Name (test-only; linear scan).
spa::ObjectId objectNamed(spa::Solver &S, std::string_view Name) {
  spa::NormProgram &Prog = S.program();
  for (uint32_t I = 0; I < Prog.Objects.size(); ++I)
    if (Prog.objectName(spa::ObjectId(I)) == Name)
      return spa::ObjectId(I);
  return {};
}
} // namespace

TEST(SolverEdges, PointsToReferencesSurviveLazyObjectCreation) {
  // pointsTo hands out references into the solver's fact storage; lazy
  // creation of the $unknown/$extern pseudo-objects used to grow a
  // std::vector underneath them (a dangling-reference bug this guards
  // against; the ASan preset catches any reintroduction).
  auto S = analyze("int x, y, *p, *q; void f(void) { p = &x; q = &y; }",
                   ModelKind::Offsets);
  Solver &Sol = S.A->solver();
  ObjectId P = objectNamed(Sol, "p");
  ASSERT_TRUE(P.isValid());
  const PtsSet &Held = Sol.pointsTo(Sol.normalizeObj(P));
  ASSERT_EQ(Held.size(), 1u);
  NodeId Target = *Held.begin();

  // Force the lazy paths: materialize $unknown and $extern and give the
  // new (highest-index) node facts of its own, growing the storage.
  NodeId Unknown = Sol.unknownNode();
  Sol.externObject();
  Sol.addEdge(Unknown, Sol.normalizeObj(P));

  EXPECT_EQ(Held.size(), 1u);
  EXPECT_EQ(*Held.begin(), Target);
}

TEST(SolverEdges, DerefTargetsStableWhileSummariesRun) {
  // strchr's summary returns its argument into the destination through
  // the pointer-arithmetic flow while $extern is created mid-solve — the
  // end-to-end shape of the same invalidation.
  auto S = analyze("char buf[8]; char *r, *t;"
                   "void f(void) { r = strchr(buf, 'x'); t = r + 1; }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("r"), strs({"buf"}));
  EXPECT_EQ(S.pts("t"), strs({"buf"}));
}

TEST(SolverEdges, TakingAddressOfAFunctionParameter) {
  auto S = analyze("int *leak;"
                   "void f(int v) { leak = &v; *leak = 3; }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("leak"), strs({"f::v"}));
}

TEST(SolverEdges, ShadowedLocalsGetDistinctObjects) {
  auto S = analyze("int x, y;"
                   "int *outer_p, *inner_p;"
                   "void f(void) {"
                   "  int *p; p = &x; outer_p = p;"
                   "  { int *p; p = &y; inner_p = p; }"
                   "}",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("outer_p"), strs({"x"}));
  EXPECT_EQ(S.pts("inner_p"), strs({"y"}));
}
