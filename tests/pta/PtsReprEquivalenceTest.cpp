//===--- PtsReprEquivalenceTest.cpp - Representations don't change facts --===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference.)
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The points-to set representation is pure storage policy: every solver
/// engine must reach the bit-identical fixpoint (via the stable
/// edge-list export) under every representation, and the independent
/// certifier must accept each one. Sweeps the corpus under the
/// distinct-offsets model (per-object ordinals and the intern table get
/// their hardest workout) and generated programs — including the
/// struct-dense field-fan shape the compressed representations exist
/// for — under all four models.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pta/GraphExport.h"
#include "verify/Certifier.h"
#include "workload/Corpus.h"
#include "workload/Generator.h"

using namespace spa;
using namespace spa::test;

namespace {

constexpr PtsRepr AllReprs[4] = {PtsRepr::Sorted, PtsRepr::Small,
                                 PtsRepr::Bitmap, PtsRepr::Offsets};

/// Solves \p Source once per representation with \p Solver options under
/// \p Kind and expects every graph to equal the Sorted baseline's; when
/// \p Certify is set, each fixpoint must also pass the certifier.
void expectReprsAgree(const std::string &Source, const std::string &Label,
                      ModelKind Kind, const SolverOptions &Solver,
                      bool Certify) {
  std::string Expected;
  for (PtsRepr R : AllReprs) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    ASSERT_TRUE(P) << Label << "\n" << Diags.formatAll();
    AnalysisOptions Opts;
    Opts.Model = Kind;
    Opts.Solver = Solver;
    Opts.Solver.PointsTo = R;
    Analysis A(P->Prog, Opts);
    A.run();
    ASSERT_TRUE(A.solver().runStats().Converged)
        << Label << " --pts=" << ptsReprName(R);
    ASSERT_EQ(A.solver().runStats().ReprUsed, R) << Label;

    ExportOptions All;
    All.IncludeTemps = true;
    std::string Edges = exportEdgeList(A.solver(), All);
    if (R == PtsRepr::Sorted)
      Expected = Edges;
    else
      EXPECT_EQ(Expected, Edges)
          << Label << " --pts=" << ptsReprName(R) << " under "
          << modelKindName(Kind);
    if (Certify)
      EXPECT_TRUE(certifySolution(A.solver()).ok())
          << Label << " --pts=" << ptsReprName(R);
  }
}

/// The delta worklist (the production default) and the cycle-eliminating
/// engine: the two engines whose change-log and merge machinery lean
/// hardest on the representation contract.
const SolverOptions DeltaEngine = [] {
  SolverOptions O;
  O.UseWorklist = true;
  O.DeltaPropagation = true;
  return O;
}();

const SolverOptions SccEngine = [] {
  SolverOptions O = DeltaEngine;
  O.CycleElimination = true;
  return O;
}();

} // namespace

TEST(PtsReprEquivalence, CorpusUnderOffsetsModel) {
  for (const CorpusEntry &Entry : corpusManifest()) {
    std::string Source;
    ASSERT_TRUE(loadCorpusSource(Entry, Source)) << Entry.FileName;
    expectReprsAgree(Source, Entry.FileName, ModelKind::Offsets,
                     DeltaEngine, /*Certify=*/false);
    expectReprsAgree(Source, Entry.FileName, ModelKind::Offsets, SccEngine,
                     /*Certify=*/false);
  }
}

TEST(PtsReprEquivalence, CorpusSampleCertifiesEveryRepr) {
  // Certification is quadratic-ish in solution size, so the full
  // corpus x repr matrix lives in tools/ci.sh; here a slice keeps the
  // tier-1 suite honest.
  unsigned Sampled = 0;
  for (const CorpusEntry &Entry : corpusManifest()) {
    if (Sampled++ % 5 != 0)
      continue;
    std::string Source;
    ASSERT_TRUE(loadCorpusSource(Entry, Source)) << Entry.FileName;
    expectReprsAgree(Source, Entry.FileName, ModelKind::CommonInitialSeq,
                     DeltaEngine, /*Certify=*/true);
  }
}

TEST(PtsReprEquivalence, GeneratedProgramsUnderAllModels) {
  GeneratorConfig Config;
  Config.Seed = 21;
  Config.NumStructs = 5;
  Config.FieldsPerStruct = 8;
  Config.NumStructVars = 10;
  Config.NumInts = 8;
  Config.NumPtrVars = 8;
  Config.NumFunctions = 4;
  Config.StmtsPerFunction = 30;
  Config.FieldFanPercent = 40;
  Config.UseHeap = true;
  for (ModelKind Kind :
       {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
        ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    for (uint64_t Seed : {21ull, 84ull}) {
      Config.Seed = Seed;
      std::string Source = generateProgram(Config);
      expectReprsAgree(Source, "field-fan seed " + std::to_string(Seed),
                       Kind, SccEngine, /*Certify=*/true);
    }
  }
}

TEST(PtsReprEquivalence, CallCycleWorkloadCollapsesIdentically) {
  // SCC collapse merges facts sets mid-solve (collapseCycle re-binds the
  // representative's set); the copy-ring + call-cycle workload makes
  // that path hot for every representation.
  GeneratorConfig Config;
  Config.Seed = 55;
  Config.NumStructVars = 8;
  Config.NumInts = 12;
  Config.NumPtrVars = 8;
  Config.NumFunctions = 3;
  Config.StmtsPerFunction = 40;
  Config.CopyRingPercent = 50;
  Config.NumCallCycleFuncs = 6;
  std::string Source = generateProgram(Config);
  expectReprsAgree(Source, "call cycles", ModelKind::CommonInitialSeq,
                   SccEngine, /*Certify=*/true);
}
