//===--- LibrarySummariesTest.cpp - Unit tests for external models --------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace spa;
using namespace spa::test;

TEST(Summaries, MemcpyCopiesPointees) {
  auto S = analyze("struct S { int *a; int *b; } src, dst;"
                   "int x, y, *r;"
                   "void f(void) {"
                   "  src.a = &x;"
                   "  src.b = &y;"
                   "  memcpy(&dst, &src, sizeof(src));"
                   "  r = dst.a;"
                   "}",
                   ModelKind::CommonInitialSeq);
  auto R = S.pts("r");
  EXPECT_TRUE(std::find(R.begin(), R.end(), "x") != R.end());
}

TEST(Summaries, MemcpyReturnsItsDestination) {
  auto S = analyze("char buf[8]; char *r;"
                   "void f(void) { r = memcpy(buf, \"ab\", 2); }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("r"), strs({"buf"}));
}

TEST(Summaries, StrchrPointsIntoItsArgument) {
  auto S = analyze("char text[16]; char *hit;"
                   "void f(void) { hit = strchr(text, 'x'); }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("hit"), strs({"text"}));
}

TEST(Summaries, QsortInvokesTheComparator) {
  auto S = analyze("int table[8];"
                   "int *seen;"
                   "int cmp(const void *a, const void *b) {"
                   "  seen = (int *)a;"
                   "  return 0;"
                   "}"
                   "void f(void) { qsort(table, 8, 4, cmp); }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("seen"), strs({"table"}));
}

TEST(Summaries, FopenReturnsExternalStorage) {
  auto S = analyze("int *fp;"
                   "void f(void) { fp = (int *)fopen(\"x\", \"r\"); }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("fp"), strs({"$extern"}));
}

TEST(Summaries, SignalReturnsThePreviousHandler) {
  auto S = analyze("void on_int(int sig) { }"
                   "void (*old)(int);"
                   "void f(void) { old = signal(2, on_int); }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("old"), strs({"on_int"}));
}

TEST(Summaries, PureFunctionsHaveNoEffect) {
  auto S = analyze("int x, *p;"
                   "void f(void) { p = &x; printf(\"%d\", *p); }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("p"), strs({"x"}));
}

TEST(Summaries, UnknownExternalsAreRecorded) {
  auto S = analyze("void f(void) { frobnicate_9000(); }",
                   ModelKind::CommonInitialSeq);
  const auto &Unknown = S.A->solver().summaries().unknownCallees();
  EXPECT_EQ(Unknown.count("frobnicate_9000"), 1u);
}

TEST(Summaries, StrcpyAliasesDestination) {
  auto S = analyze("char dst[8]; char *r;"
                   "void f(void) { r = strcpy(dst, \"hi\"); }",
                   ModelKind::Offsets);
  EXPECT_EQ(S.pts("r"), strs({"dst"}));
}

TEST(Summaries, ReallocKeepsTheOldBlockReachable) {
  auto S = analyze("int *p, *q;"
                   "void f(void) {"
                   "  p = (int *)malloc(8);"
                   "  q = (int *)realloc(p, 16);"
                   "}",
                   ModelKind::CommonInitialSeq);
  // q may be the fresh block or (the summary keeps) the old one.
  EXPECT_EQ(S.pts("q").size(), 2u);
}

TEST(Summaries, FreeMarksTheHeapBlockDeallocated) {
  auto S = analyze("void f(void) {"
                   "  int *p;"
                   "  p = (int *)malloc(8);"
                   "  free(p);"
                   "}",
                   ModelKind::CommonInitialSeq);
  const Solver &Sol = S.A->solver();
  ASSERT_EQ(Sol.freedObjects().size(), 1u);
  ObjectId Block = *Sol.freedObjects().begin();
  EXPECT_EQ(S.Program->Prog.object(Block).Kind, ObjectKind::Heap);
  EXPECT_TRUE(Sol.isFreed(Block));
  EXPECT_TRUE(Sol.freedAt(Block).isValid());
  // Dealloc adds no points-to facts: p still reaches the block.
  EXPECT_EQ(S.pts("f::p").size(), 1u);
}

TEST(Summaries, FreeIsNoLongerAPureNoOp) {
  LibrarySummaries Lib;
  EXPECT_TRUE(Lib.hasSummary("free"));
  EXPECT_TRUE(Lib.hasSummary("cfree"));
  EXPECT_TRUE(Lib.hasSummary("realloc"));
}

TEST(Summaries, FreeOfNonHeapStorageIsNotRecorded) {
  auto S = analyze("int g;"
                   "void f(void) { int *p; p = &g; free(p); }",
                   ModelKind::CommonInitialSeq);
  EXPECT_TRUE(S.A->solver().freedObjects().empty());
}

TEST(Summaries, ReallocDeallocatesItsOldBlock) {
  auto S = analyze("void f(void) {"
                   "  int *p; int *q;"
                   "  p = (int *)malloc(8);"
                   "  q = (int *)realloc(p, 16);"
                   "}",
                   ModelKind::CommonInitialSeq);
  const Solver &Sol = S.A->solver();
  ASSERT_EQ(Sol.freedObjects().size(), 1u);
  // The freed object is the one p points to (the original block), and the
  // pointer-level model still lets q reach both blocks.
  EXPECT_EQ(S.pts("f::q").size(), 2u);
  EXPECT_EQ(S.pts("f::p").size(), 1u);
}

TEST(Summaries, DeallocIsEngineIndependent) {
  const char *Src = "void f(void) {"
                    "  int *p;"
                    "  p = (int *)malloc(8);"
                    "  free(p);"
                    "}";
  auto Naive = analyze(Src, ModelKind::CommonInitialSeq);

  auto Program = compile(Src);
  AnalysisOptions Opts;
  Opts.Model = ModelKind::CommonInitialSeq;
  Opts.Solver.UseWorklist = true;
  Analysis Worklist(Program->Prog, Opts);
  Worklist.run();

  EXPECT_EQ(Naive.A->solver().freedObjects().size(),
            Worklist.solver().freedObjects().size());
}
