//===--- OfflineTest.cpp - Offline HVN preprocessing is solution-neutral --===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference.)
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline HVN pass (`--preprocess=hvn`) is a pure optimization: a
/// preprocessed run must export the byte-identical edge list and certify
/// against the same obligations as its unpreprocessed twin, under every
/// engine, model, and points-to representation. This is the validator
/// gate the pass ships with; tools/ci.sh runs the same comparison over
/// the whole corpus from the CLI. The cycle-heavy generator shape also
/// pins the pass's effectiveness: copy rings are offline-visible cycles,
/// so a healthy pass merges a large fraction of the nodes there.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pta/GraphExport.h"
#include "pta/Offline.h"
#include "verify/Certifier.h"
#include "workload/Corpus.h"
#include "workload/Generator.h"

using namespace spa;
using namespace spa::test;

namespace {

/// Engine index -> options (same numbering as the bench harness).
SolverOptions engineOptions(int Engine) {
  SolverOptions Opts;
  Opts.UseWorklist = Engine != 0;
  Opts.DeltaPropagation = Engine >= 2;
  Opts.CycleElimination = Engine == 3;
  return Opts;
}

const char *const EngineLabel[4] = {"naive", "worklist", "delta", "scc"};

/// Solves \p Source twice — without and with the offline pass — and
/// asserts identical exported graphs, identical edge counts, and a clean
/// certification of the preprocessed run. Note Stats.Nodes is NOT
/// compared: under lazily-materializing engines the preprocessed run may
/// materialize nodes in a different order, which is invisible in the
/// name-sorted export.
void expectHvnNeutral(const std::string &Source, const std::string &Label,
                      ModelKind Kind, int Engine,
                      PtsRepr Repr = PtsRepr::Sorted) {
  DiagnosticEngine D1, D2;
  auto P1 = CompiledProgram::fromSource(Source, D1);
  auto P2 = CompiledProgram::fromSource(Source, D2);
  ASSERT_TRUE(P1 && P2) << Label;

  AnalysisOptions Base;
  Base.Model = Kind;
  Base.Solver = engineOptions(Engine);
  Base.Solver.PointsTo = Repr;
  Analysis Plain(P1->Prog, Base);
  Plain.run();

  AnalysisOptions Pre = Base;
  Pre.Solver.Preprocess = PreprocessKind::Hvn;
  Analysis Hvn(P2->Prog, Pre);
  Hvn.run();

  ASSERT_TRUE(Plain.solver().runStats().Converged) << Label;
  ASSERT_TRUE(Hvn.solver().runStats().Converged) << Label;

  ExportOptions All;
  All.IncludeTemps = true;
  EXPECT_EQ(exportEdgeList(Plain.solver(), All),
            exportEdgeList(Hvn.solver(), All))
      << Label << " under " << modelKindName(Kind) << "/"
      << EngineLabel[Engine];
  EXPECT_EQ(Plain.solver().numEdges(), Hvn.solver().numEdges())
      << Label << " under " << modelKindName(Kind) << "/"
      << EngineLabel[Engine];

  CertifyResult CR = certifySolution(Hvn.solver());
  EXPECT_TRUE(CR.ok()) << Label << " under " << modelKindName(Kind) << "/"
                       << EngineLabel[Engine] << ": " << CR.Violations
                       << " violations, " << CR.FactsUnjustified
                       << " unjustified facts";
}

/// A small source exercising every merge family: a three-node copy ring,
/// a copy chain hanging off it, two pointers with the identical
/// address-of set, struct copies (so resolve emits field pairs), and a
/// function pointer call keeping escape marking honest.
const char *MergeShapes = R"(
struct S { int *p; int *q; };
int x, y;
int *a, *b, *c, *chain1, *chain2;
int *dup1, *dup2;
struct S s1, s2;
int *ident(int *v) { return v; }
int *(*fp)(int *);
void loop() { loop(); }
int main() {
  a = &x; a = c; b = a; c = b;
  chain1 = a; chain2 = chain1;
  dup1 = &x; dup1 = &y; dup2 = &x; dup2 = &y;
  s1.p = &x; s1.q = &y; s2 = s1;
  fp = ident;
  b = fp(&y);
  loop();
  return 0;
}
)";

TEST(OfflineHvn, NeutralOnMergeShapesEveryEngineAndModel) {
  for (ModelKind Kind : {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
                         ModelKind::CommonInitialSeq, ModelKind::Offsets})
    for (int Engine = 0; Engine < 4; ++Engine)
      expectHvnNeutral(MergeShapes, "merge-shapes", Kind, Engine);
}

TEST(OfflineHvn, NeutralOnEveryPtsRepr) {
  for (PtsRepr Repr :
       {PtsRepr::Sorted, PtsRepr::Small, PtsRepr::Bitmap, PtsRepr::Offsets})
    for (ModelKind Kind : {ModelKind::CommonInitialSeq, ModelKind::Offsets})
      expectHvnNeutral(MergeShapes, "merge-shapes", Kind, 2, Repr);
}

TEST(OfflineHvn, NeutralOnWholeCorpusEveryEngineAndModel) {
  for (const CorpusEntry &Entry : corpusManifest()) {
    std::string Source;
    ASSERT_TRUE(loadCorpusSource(Entry, Source)) << Entry.FileName;
    for (ModelKind Kind :
         {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
          ModelKind::CommonInitialSeq, ModelKind::Offsets})
      for (int Engine = 0; Engine < 4; ++Engine)
        expectHvnNeutral(Source, Entry.FileName, Kind, Engine);
  }
}

TEST(OfflineHvn, NeutralOnGeneratedCycleHeavyPrograms) {
  for (unsigned Seed : {99u, 7u}) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.NumStructVars = 12;
    Config.NumInts = 24;
    Config.NumPtrVars = 12;
    Config.NumFunctions = 4;
    Config.StmtsPerFunction = 40;
    Config.CopyRingPercent = 60;
    Config.NumCallCycleFuncs = 4;
    Config.UseHeap = true;
    std::string Source = generateProgram(Config);
    for (ModelKind Kind : {ModelKind::CommonInitialSeq, ModelKind::Offsets})
      for (int Engine : {2, 3})
        expectHvnNeutral(Source, "gen-seed-" + std::to_string(Seed), Kind,
                         Engine);
  }
}

/// The acceptance floor: on the cycle-heavy generator shape (dense copy
/// rings plus mutually recursive call loops) the pass merges at least 30%
/// of the nodes, for every model.
TEST(OfflineHvn, MergesThirtyPercentOnCycleHeavyShape) {
  GeneratorConfig Config;
  Config.Seed = 99;
  Config.NumStructs = 4;
  Config.NumStructVars = 32;
  Config.NumInts = 64;
  Config.NumPtrVars = 32;
  Config.NumFunctions = 8;
  Config.StmtsPerFunction = 60;
  Config.CopyRingPercent = 60;
  Config.NumCallCycleFuncs = 16;
  Config.UseHeap = true;
  std::string Source = generateProgram(Config);
  for (ModelKind Kind : {ModelKind::CollapseAlways, ModelKind::CollapseOnCast,
                         ModelKind::CommonInitialSeq, ModelKind::Offsets}) {
    DiagnosticEngine Diags;
    auto P = CompiledProgram::fromSource(Source, Diags);
    ASSERT_TRUE(P);
    AnalysisOptions Opts;
    Opts.Model = Kind;
    Opts.Solver = engineOptions(2);
    Opts.Solver.Preprocess = PreprocessKind::Hvn;
    Analysis A(P->Prog, Opts);
    A.run();
    const SolverRunStats &RS = A.solver().runStats();
    ASSERT_TRUE(RS.Converged) << modelKindName(Kind);
    ASSERT_GT(RS.Nodes, 0u) << modelKindName(Kind);
    EXPECT_GE(RS.NodesMergedOffline * 10, RS.Nodes * 3)
        << modelKindName(Kind) << ": merged " << RS.NodesMergedOffline
        << " of " << RS.Nodes << " nodes";
  }
}

/// Counter plumbing: the offline counters survive solve()'s stats reset,
/// a re-run reuses the seeded merges (Analysis runs the pass once), and
/// an unpreprocessed run reports zeros.
TEST(OfflineHvn, StatsReportOfflineCounters) {
  auto P = compile(MergeShapes);
  ASSERT_TRUE(P);
  AnalysisOptions Opts;
  Opts.Model = ModelKind::CommonInitialSeq;
  Opts.Solver = engineOptions(2);
  Opts.Solver.Preprocess = PreprocessKind::Hvn;
  Analysis A(P->Prog, Opts);
  A.run();
  const SolverRunStats &RS = A.solver().runStats();
  EXPECT_GT(RS.NodesMergedOffline, 0u);
  EXPECT_GE(RS.OfflineSeconds, 0.0);
  uint64_t FirstMerged = RS.NodesMergedOffline;
  A.run(); // second solve: the pass must not run (or merge) twice
  EXPECT_EQ(A.solver().runStats().NodesMergedOffline, FirstMerged);

  auto P2 = compile(MergeShapes);
  ASSERT_TRUE(P2);
  AnalysisOptions None = Opts;
  None.Solver.Preprocess = PreprocessKind::None;
  Analysis B(P2->Prog, None);
  B.run();
  EXPECT_EQ(B.solver().runStats().NodesMergedOffline, 0u);
  EXPECT_EQ(B.solver().runStats().OfflineSeconds, 0.0);
}

/// Direct result contract of the pass: identity-free map, merge counts
/// consistent, and the model's Figure-3 counters untouched.
TEST(OfflineHvn, RunOfflineHvnResultContract) {
  auto P = compile(MergeShapes);
  ASSERT_TRUE(P);
  LayoutEngine Layout(P->Prog.Types, TargetInfo::ilp32());
  auto Model =
      makeFieldModel(ModelKind::CommonInitialSeq, P->Prog, Layout);
  ModelStats Before = Model->stats();
  SolverOptions Opts;
  OfflineResult R = runOfflineHvn(P->Prog, *Model, Opts);
  EXPECT_EQ(R.NodesMerged, R.NodeMap.merges());
  EXPECT_GT(R.NodesMerged, 0u);
  EXPECT_GT(R.SccsCollapsed, 0u); // the three-node copy ring
  EXPECT_GE(R.NodesConsidered, R.NodesMerged);
  EXPECT_GE(R.Seconds, 0.0);
  // Figure-3 counters unperturbed by the pass's resolve calls.
  EXPECT_EQ(Model->stats().ResolveCalls, Before.ResolveCalls);
  EXPECT_EQ(Model->stats().LookupCalls, Before.LookupCalls);
  // Every class representative is a member of its own class.
  for (uint32_t I = 0; I < R.NodesConsidered; ++I) {
    NodeId Rep = R.NodeMap.find(NodeId(I));
    EXPECT_EQ(R.NodeMap.find(Rep), Rep);
  }
}

} // namespace
