//===--- MutationRemovalTest.cpp - removeEdgeForMutation vs merged nodes --===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference.)
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression tests for Solver::removeEdgeForMutation on runs whose nodes
/// were merged — by the scc engine's online cycle collapse and by the
/// offline HVN pass. The original implementation canonicalized the source
/// but not the target: after a collapse the stored set member can be any
/// node of the target's class, so a removal that named a different member
/// silently failed and the mutation harness reported a vacuous "caught".
/// Each removal must (a) report true, (b) make the certifier flag the
/// hole, and (c) leave a re-solved run byte-identical to the original.
///
//===----------------------------------------------------------------------===//

#include "verify/VerifyTestUtil.h"

#include "pta/GraphExport.h"

using namespace spa;
using namespace spa::test;

namespace {

/// A three-node copy cycle (a -> b -> c -> a) holding &x, observed
/// through a double pointer: under the scc engine the cycle collapses,
/// so pts(p)'s stored member for "a" may be any of the cycle's nodes.
const char *CycleSource = R"(
int x;
int *a, *b, *c;
int **p;
int main() {
  a = &x;
  a = b; b = c; c = a;
  p = &a;
  return 0;
}
)";

/// Node of the (whole) object named \p Name, or invalid if absent.
NodeId nodeOf(Solved &S, const char *Name) {
  Solver &Solv = S.A->solver();
  const NormProgram &Prog = S.Program->Prog;
  for (size_t I = 0; I < Solv.model().nodes().size(); ++I) {
    NodeId Node(static_cast<uint32_t>(I));
    ObjectId Obj = Solv.model().nodes().objectOf(Node);
    if (Prog.objectName(Obj) == Name)
      return Node;
  }
  return NodeId();
}

void runRemovalRoundTrip(PtsRepr Repr, PreprocessKind Preprocess) {
  SolverOptions SOpts;
  SOpts.CycleElimination = true;
  SOpts.PointsTo = Repr;
  SOpts.Preprocess = Preprocess;
  auto S = analyzeWith(CycleSource, ModelKind::CommonInitialSeq, SOpts);
  ASSERT_TRUE(S.A);
  Solver &Solv = S.A->solver();
  ASSERT_TRUE(Solv.runStats().Converged);

  NodeId P = nodeOf(S, "p");
  NodeId A = nodeOf(S, "a");
  NodeId B = nodeOf(S, "b");
  ASSERT_TRUE(P.isValid() && A.isValid() && B.isValid());
  // The cycle must actually have merged, or the regression is vacuous.
  ASSERT_EQ(Solv.canonicalNode(A), Solv.canonicalNode(B));

  ExportOptions All;
  All.IncludeTemps = true;
  std::string Baseline = exportEdgeList(Solv, All);
  ASSERT_TRUE(certifySolution(Solv).ok());

  // Remove "p -> a" by naming b: class-equivalent to a, but (depending on
  // which member the collapse kept) possibly not the stored id. The old
  // code returned false here whenever the raw id missed.
  ASSERT_TRUE(Solv.pointsTo(P).contains(A));
  ASSERT_TRUE(Solv.removeEdgeForMutation(P, B));
  EXPECT_FALSE(Solv.pointsTo(P).contains(A));
  CertifyResult Broken = certifySolution(Solv);
  EXPECT_FALSE(Broken.ok());
  EXPECT_GT(Broken.Violations, 0u);

  // Removing the same fact again must fail: the first call consumed it.
  EXPECT_FALSE(Solv.removeEdgeForMutation(P, B));
  EXPECT_FALSE(Solv.removeEdgeForMutation(P, A));

  // Also punch a hole inside the merged class itself (b -> x lives in the
  // class's shared set).
  NodeId X = nodeOf(S, "x");
  ASSERT_TRUE(X.isValid());
  ASSERT_TRUE(Solv.removeEdgeForMutation(B, X));
  EXPECT_FALSE(certifySolution(Solv).ok());

  // Re-solving re-derives both facts from the statements; the repaired
  // run is byte-identical to the baseline and certifies again.
  S.A->run();
  ASSERT_TRUE(Solv.runStats().Converged);
  EXPECT_EQ(Baseline, exportEdgeList(Solv, All));
  CertifyResult Repaired = certifySolution(Solv);
  EXPECT_TRUE(Repaired.ok())
      << Repaired.Violations << " violations, " << Repaired.FactsUnjustified
      << " unjustified facts";
}

TEST(MutationRemoval, CanonEquivalentTargetUnderSccEveryRepr) {
  for (PtsRepr Repr :
       {PtsRepr::Sorted, PtsRepr::Small, PtsRepr::Bitmap, PtsRepr::Offsets})
    runRemovalRoundTrip(Repr, PreprocessKind::None);
}

TEST(MutationRemoval, CanonEquivalentTargetUnderSccWithHvn) {
  for (PtsRepr Repr :
       {PtsRepr::Sorted, PtsRepr::Small, PtsRepr::Bitmap, PtsRepr::Offsets})
    runRemovalRoundTrip(Repr, PreprocessKind::Hvn);
}

TEST(MutationRemoval, MissingFactStillReturnsFalse) {
  SolverOptions SOpts;
  SOpts.UseWorklist = true;
  auto S = analyzeWith(CycleSource, ModelKind::CommonInitialSeq, SOpts);
  ASSERT_TRUE(S.A);
  Solver &Solv = S.A->solver();
  NodeId P = nodeOf(S, "p");
  NodeId X = nodeOf(S, "x");
  ASSERT_TRUE(P.isValid() && X.isValid());
  // p points to a, never to x: removal of an absent fact reports false
  // and leaves the certified solution intact.
  EXPECT_FALSE(Solv.removeEdgeForMutation(P, X));
  EXPECT_TRUE(certifySolution(Solv).ok());
}

} // namespace
