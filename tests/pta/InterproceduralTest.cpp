//===--- InterproceduralTest.cpp - Calls, callbacks, and recursion --------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's analysis is context-insensitive and works with "any of the
/// well-known techniques" for calls; these tests pin down the behaviors
/// our binding implements: parameter/return flow, call-graph discovery
/// through data structures, varargs, recursion, and by-value struct
/// passing with casts.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace spa;
using namespace spa::test;

TEST(Interprocedural, StructReturnedByValueCarriesFields) {
  auto S = analyze("struct pair { int *a; int *b; };"
                   "int x, y, *ra, *rb;"
                   "struct pair make(void) {"
                   "  struct pair p;"
                   "  p.a = &x;"
                   "  p.b = &y;"
                   "  return p;"
                   "}"
                   "void f(void) {"
                   "  struct pair q;"
                   "  q = make();"
                   "  ra = q.a;"
                   "  rb = q.b;"
                   "}",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("ra"), strs({"x"}));
  EXPECT_EQ(S.pts("rb"), strs({"y"}));
}

TEST(Interprocedural, StructPassedByValueAtACastedType) {
  // The callee declares a different (CIS-compatible) parameter type;
  // Complication 4 applies to the parameter binding itself.
  auto S = analyze("struct wide { int *a; int *b; int *c; };"
                   "struct narrow { int *a; int *b; };"
                   "int x, y, z, *out;"
                   "void take(struct narrow n);"
                   "int *taken_a;"
                   "void take(struct narrow n) { taken_a = n.a; }"
                   "void f(void) {"
                   "  struct wide w;"
                   "  w.a = &x; w.b = &y; w.c = &z;"
                   "  take(*(struct narrow *)&w);"
                   "}",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("taken_a"), strs({"x"}));
}

TEST(Interprocedural, CallGraphThroughAHandlerTable) {
  auto S = analyze(
      "int a, b;"
      "int *geta(void) { return &a; }"
      "int *getb(void) { return &b; }"
      "struct handler { int key; int *(*fn)(void); } table[2];"
      "int *r;"
      "void f(int k) {"
      "  int i;"
      "  table[0].key = 0; table[0].fn = geta;"
      "  table[1].key = 1; table[1].fn = getb;"
      "  for (i = 0; i < 2; i++)"
      "    if (table[i].key == k)"
      "      r = table[i].fn();"
      "}",
      ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("r"), strs({"a", "b"}));
}

TEST(Interprocedural, CallbackRegisteredThenInvokedElsewhere) {
  auto S = analyze("int x;"
                   "void (*hook)(int **out);"
                   "void provider(int **out) { *out = &x; }"
                   "void install(void) { hook = provider; }"
                   "int *r;"
                   "void fire(void) { int *slot; hook(&slot); r = slot; }"
                   "int main(void) { install(); fire(); return 0; }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("r"), strs({"x"}));
}

TEST(Interprocedural, RecursionOverHeapListConverges) {
  auto S = analyze(
      "struct n { struct n *next; int *v; };"
      "int x;"
      "struct n *build(int depth) {"
      "  struct n *node;"
      "  if (depth <= 0) return 0;"
      "  node = (struct n *)malloc(sizeof(struct n));"
      "  node->v = &x;"
      "  node->next = build(depth - 1);"
      "  return node;"
      "}"
      "int *last(struct n *list) {"
      "  if (!list) return 0;"
      "  if (!list->next) return list->v;"
      "  return last(list->next);"
      "}"
      "int *r;"
      "int main(void) { r = last(build(5)); return 0; }",
      ModelKind::Offsets);
  EXPECT_EQ(S.pts("r"), strs({"x"}));
  EXPECT_LT(S.A->solver().runStats().Rounds, 30u);
}

TEST(Interprocedural, UnusedReturnValueStillBindsArguments) {
  auto S = analyze("int x; int *sink;"
                   "int *stash(int *p) { sink = p; return p; }"
                   "void f(void) { stash(&x); }",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("sink"), strs({"x"}));
}

TEST(Interprocedural, TooFewAndTooManyArgumentsAreSafe) {
  auto S = analyze("int x, y;"
                   "int *pick(int *a, int *b) { return b ? b : a; }"
                   "int *r1, *r2;"
                   "void f(void) {"
                   "  r1 = pick(&x);"          /* too few */
                   "  r2 = pick(&x, &y, &x);"  /* too many */
                   "}",
                   ModelKind::CommonInitialSeq);
  auto R2 = S.pts("r2");
  EXPECT_TRUE(std::find(R2.begin(), R2.end(), "x") != R2.end());
  EXPECT_TRUE(std::find(R2.begin(), R2.end(), "y") != R2.end());
}

TEST(Interprocedural, PointerToPointerOutParameter) {
  auto S = analyze("struct S { int *f; } s;"
                   "int x;"
                   "void out2(struct S **dst) { *dst = &s; }"
                   "int *r;"
                   "void f(void) {"
                   "  struct S *local;"
                   "  out2(&local);"
                   "  local->f = &x;"
                   "  r = s.f;"
                   "}",
                   ModelKind::CommonInitialSeq);
  EXPECT_EQ(S.pts("r"), strs({"x"}));
}

TEST(Interprocedural, MainParametersExistButAreUnseeded) {
  auto S = analyze("int main(int argc, char **argv) {"
                   "  char *first;"
                   "  first = argv[0];"
                   "  return argc;"
                   "}",
                   ModelKind::CommonInitialSeq);
  // No synthetic environment: argv has no targets, but nothing crashes
  // and the deref site is recorded.
  EXPECT_TRUE(S.pts("main::first").empty());
  EXPECT_EQ(S.Program->Prog.DerefSites.size(), 1u);
}
