//===--- PtsReprPropertyTest.cpp - Set representations vs oracle ----------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference.)
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded randomized property tests of the four points-to set
/// representations against a std::set oracle: every representation must
/// agree with the oracle on each insert/erase/contains return value, on
/// ascending-id iteration, on insertAll's new-element count, and — the
/// contract the delta-propagation machinery leans on — on the exact
/// change-log suffix insertAll appends, bit-identically across
/// representations. Plus directed edge cases: the Small spill boundary,
/// bitmap run splits, and offsets ordinals past the 32-bit entry mask.
///
//===----------------------------------------------------------------------===//

#include "pta/PtsSet.h"

#include "gtest/gtest.h"

#include <set>

using namespace spa;

namespace {

constexpr PtsRepr AllReprs[4] = {PtsRepr::Sorted, PtsRepr::Small,
                                 PtsRepr::Bitmap, PtsRepr::Offsets};

/// The workload generator's xorshift64*, so sequences are stable across
/// platforms and reruns.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  unsigned below(unsigned Bound) {
    return Bound == 0 ? 0 : static_cast<unsigned>(next() % Bound);
  }

private:
  uint64_t State;
};

/// A node universe with the shapes each representation must handle:
/// object 0 materializes 40 nodes (ordinals past the offsets entry's
/// 32-bit mask, forcing the HighOrds overflow path), the others a
/// handful each (the common case).
struct Universe {
  NodeStore Store;
  std::vector<NodeId> Nodes;

  Universe() {
    for (unsigned Obj = 0; Obj < 8; ++Obj) {
      unsigned N = Obj == 0 ? 40 : 1 + Obj;
      for (unsigned K = 0; K < N; ++K)
        Nodes.push_back(Store.getNode(ObjectId(Obj), K));
    }
  }
};

void expectMatchesOracle(const PtsSet &S, const std::set<NodeId> &Oracle,
                         const char *Label) {
  ASSERT_EQ(S.size(), Oracle.size()) << Label;
  EXPECT_EQ(S.empty(), Oracle.empty()) << Label;
  auto It = Oracle.begin();
  for (NodeId V : S)
    EXPECT_EQ(V, *It++) << Label;
}

/// A random set over \p U with roughly \p Target members, mirrored into
/// \p Oracle.
PtsSet randomSet(PtsRepr R, Universe &U, Rng &Rand, unsigned Target,
                 std::set<NodeId> &Oracle) {
  PtsSet S(R, &U.Store);
  for (unsigned I = 0; I < Target; ++I) {
    NodeId V = U.Nodes[Rand.below(static_cast<unsigned>(U.Nodes.size()))];
    S.insert(V);
    Oracle.insert(V);
  }
  return S;
}

} // namespace

TEST(PtsReprProperty, RandomOpsMatchOracle) {
  for (uint64_t Seed : {1ull, 7ull, 99ull, 424242ull}) {
    Universe U;
    for (PtsRepr R : AllReprs) {
      const char *Label = ptsReprName(R);
      Rng Rand(Seed);
      PtsSet S(R, &U.Store);
      ASSERT_EQ(S.repr(), R);
      std::set<NodeId> Oracle;
      for (int Op = 0; Op < 3000; ++Op) {
        NodeId V =
            U.Nodes[Rand.below(static_cast<unsigned>(U.Nodes.size()))];
        switch (Rand.below(4)) {
        case 0:
        case 1:
          EXPECT_EQ(S.insert(V), Oracle.insert(V).second) << Label;
          break;
        case 2:
          EXPECT_EQ(S.contains(V), Oracle.count(V) == 1) << Label;
          break;
        default:
          EXPECT_EQ(S.erase(V), Oracle.erase(V) == 1) << Label;
          break;
        }
        if (Op % 97 == 0)
          expectMatchesOracle(S, Oracle, Label);
      }
      expectMatchesOracle(S, Oracle, Label);
    }
  }
}

TEST(PtsReprProperty, InsertAllLogIsReprIndependent) {
  // For every (destination repr, source repr) pair — the solver produces
  // same-repr pairs, the fast paths; mixed pairs pin the generic
  // fallback — insertAll must report the same new-element count and
  // append the same ascending-id log suffix as the Sorted/Sorted
  // baseline, and land on the same set.
  for (uint64_t Seed : {3ull, 11ull, 2026ull}) {
    for (PtsRepr RA : AllReprs) {
      for (PtsRepr RB : AllReprs) {
        Universe U;
        Rng Rand(Seed);
        std::set<NodeId> OA, OB;
        PtsSet A = randomSet(RA, U, Rand, 60, OA);
        PtsSet B = randomSet(RB, U, Rand, 60, OB);
        PtsSet RefA(PtsRepr::Sorted, &U.Store);
        PtsSet RefB(PtsRepr::Sorted, &U.Store);
        for (NodeId V : OA)
          RefA.insert(V);
        for (NodeId V : OB)
          RefB.insert(V);

        std::vector<NodeId> Log{NodeId(0)}, RefLog{NodeId(0)};
        size_t New = A.insertAll(B, &Log);
        size_t RefNew = RefA.insertAll(RefB, &RefLog);
        std::string Label = std::string(ptsReprName(RA)) + " <- " +
                            ptsReprName(RB);
        EXPECT_EQ(New, RefNew) << Label;
        EXPECT_EQ(Log, RefLog) << Label;
        EXPECT_TRUE(A == RefA) << Label;
        EXPECT_TRUE(A.containsAll(B)) << Label;
        EXPECT_TRUE(A.containsAll(RefB)) << Label;
        // Idempotent re-join: nothing new, nothing logged.
        EXPECT_EQ(A.insertAll(B, &Log), 0u) << Label;
        EXPECT_EQ(Log, RefLog) << Label;
      }
    }
  }
}

TEST(PtsReprProperty, ContainsAllMatchesOracle) {
  for (uint64_t Seed : {5ull, 17ull}) {
    for (PtsRepr RA : AllReprs) {
      for (PtsRepr RB : AllReprs) {
        Universe U;
        Rng Rand(Seed);
        std::set<NodeId> OA, OB;
        PtsSet A = randomSet(RA, U, Rand, 80, OA);
        PtsSet B = randomSet(RB, U, Rand, 20, OB);
        bool Expected = true;
        for (NodeId V : OB)
          Expected = Expected && OA.count(V) == 1;
        std::string Label = std::string(ptsReprName(RA)) + " ? " +
                            ptsReprName(RB);
        EXPECT_EQ(A.containsAll(B), Expected) << Label;
        // Supersets always hold; empty sets are subsets of anything.
        A.insertAll(B);
        EXPECT_TRUE(A.containsAll(B)) << Label;
        PtsSet Empty(RB, &U.Store);
        EXPECT_TRUE(A.containsAll(Empty)) << Label;
      }
    }
  }
}

TEST(PtsReprProperty, SmallSpillBoundary) {
  Universe U;
  PtsSet S(PtsRepr::Small, &U.Store);
  // Walk insertion counts across the inline capacity: the spill must be
  // invisible to every query.
  std::set<NodeId> Oracle;
  for (unsigned I = 0; I < PtsSet::SmallCap + 4; ++I) {
    // Descending insertion order, so inline storage shifts on every
    // insert.
    NodeId V = U.Nodes[U.Nodes.size() - 1 - 2 * I];
    EXPECT_TRUE(S.insert(V));
    EXPECT_FALSE(S.insert(V));
    Oracle.insert(V);
    expectMatchesOracle(S, Oracle, "small spill");
  }
  for (NodeId V : std::vector<NodeId>(Oracle.begin(), Oracle.end())) {
    EXPECT_TRUE(S.erase(V));
    Oracle.erase(V);
    expectMatchesOracle(S, Oracle, "small after spill");
  }
}

TEST(PtsReprProperty, BitmapRunFormationAndSplit) {
  Universe U;
  PtsSet S(PtsRepr::Bitmap, &U.Store);
  // Inserting the whole universe in creation order makes the intern
  // index space dense, so the bitmap collapses into all-ones runs.
  std::set<NodeId> Oracle;
  for (NodeId V : U.Nodes) {
    S.insert(V);
    Oracle.insert(V);
  }
  expectMatchesOracle(S, Oracle, "bitmap dense");
  // Erasing interior members splits runs back into partial words.
  for (unsigned I = 1; I < U.Nodes.size(); I += 7) {
    EXPECT_TRUE(S.erase(U.Nodes[I]));
    Oracle.erase(U.Nodes[I]);
  }
  expectMatchesOracle(S, Oracle, "bitmap split");
  for (unsigned I = 0; I < U.Nodes.size(); ++I)
    EXPECT_EQ(S.contains(U.Nodes[I]), Oracle.count(U.Nodes[I]) == 1);
  // Membership queries on ids never interned must not grow the shared
  // table (contains uses find(), not intern()).
  NodeStore Fresh;
  PtsSet T(PtsRepr::Bitmap, &Fresh);
  size_t Before = Fresh.ptsInterner().size();
  EXPECT_FALSE(T.contains(U.Nodes[0]));
  EXPECT_EQ(Fresh.ptsInterner().size(), Before);
}

TEST(PtsReprProperty, OffsetsHighOrdinalOverflow) {
  Universe U;
  // Object 0 has 40 nodes; ordinals 32..39 live in the HighOrds side
  // table, 0..31 in the entry mask. Mix both, plus other objects.
  PtsSet S(PtsRepr::Offsets, &U.Store);
  std::set<NodeId> Oracle;
  const std::vector<NodeId> &Wide = U.Store.nodesOfObject(ObjectId(0));
  ASSERT_EQ(Wide.size(), 40u);
  for (unsigned I = 0; I < Wide.size(); I += 3) {
    EXPECT_TRUE(S.insert(Wide[I]));
    Oracle.insert(Wide[I]);
  }
  for (unsigned Obj = 1; Obj < 8; ++Obj) {
    NodeId V = U.Store.nodesOfObject(ObjectId(Obj)).front();
    S.insert(V);
    Oracle.insert(V);
  }
  expectMatchesOracle(S, Oracle, "offsets high ordinals");
  EXPECT_TRUE(S.contains(Wide[36]));
  EXPECT_FALSE(S.contains(Wide[37]));
  EXPECT_TRUE(S.erase(Wide[36]));
  EXPECT_FALSE(S.erase(Wide[36]));
  Oracle.erase(Wide[36]);
  expectMatchesOracle(S, Oracle, "offsets high erase");
  // Merge a second set that only differs in high ordinals (34 and 38
  // are not multiples of 3, so S does not hold them yet).
  PtsSet B(PtsRepr::Offsets, &U.Store);
  B.insert(Wide[34]);
  B.insert(Wide[38]);
  std::vector<NodeId> Log;
  EXPECT_EQ(S.insertAll(B, &Log), 2u);
  EXPECT_EQ(Log, (std::vector<NodeId>{Wide[34], Wide[38]}));
  EXPECT_TRUE(S.containsAll(B));
}

TEST(PtsReprProperty, AdoptReprConvertsExistingMembers) {
  // factsOf adopts while sets are empty, but adoption of a populated set
  // must still preserve membership (the documented element-wise path).
  Universe U;
  for (PtsRepr From : AllReprs) {
    for (PtsRepr To : AllReprs) {
      Rng Rand(13);
      std::set<NodeId> Oracle;
      PtsSet S = randomSet(From, U, Rand, 30, Oracle);
      S.adoptRepr(To, &U.Store);
      EXPECT_EQ(S.repr(), To);
      expectMatchesOracle(S, Oracle, "adopt");
    }
  }
}
