//===--- FlattenTest.cpp - Unit tests for leaf flattening -----------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "ctypes/Flatten.h"

#include "gtest/gtest.h"

using namespace spa;

namespace {
struct Fixture : ::testing::Test {
  StringInterner Strings;
  TypeTable Types;
  LayoutEngine Layout{Types, TargetInfo::ilp32()};

  RecordId makeStruct(const char *Tag, std::vector<TypeId> FieldTypes,
                      bool IsUnion = false) {
    RecordId Rec = Types.createRecord(IsUnion, Strings.intern(Tag));
    std::vector<FieldDecl> Decls;
    int N = 0;
    for (TypeId Ty : FieldTypes)
      Decls.push_back({Strings.intern("f" + std::to_string(N++)), Ty});
    Types.completeRecord(Rec, std::move(Decls));
    return Rec;
  }
};
} // namespace

TEST_F(Fixture, ScalarIsOneLeaf) {
  FlattenedType FT(Types, Layout, Types.intType());
  ASSERT_EQ(FT.leaves().size(), 1u);
  EXPECT_TRUE(FT.leaves()[0].Path.empty());
  EXPECT_EQ(FT.leaves()[0].Offset, 0u);
  EXPECT_EQ(FT.normalizedLeaf({}), 0u);
}

TEST_F(Fixture, NestedStructFlattensInLayoutOrder) {
  TypeId IP = Types.getPointer(Types.intType());
  RecordId Inner = makeStruct("Inner", {IP, Types.charType()});
  RecordId Outer = makeStruct(
      "Outer", {Types.getRecordType(Inner), Types.intType()});
  FlattenedType FT(Types, Layout, Types.getRecordType(Outer));
  ASSERT_EQ(FT.leaves().size(), 3u);
  EXPECT_EQ(FT.leaves()[0].Path, (FieldPath{0, 0})); // inner.f0
  EXPECT_EQ(FT.leaves()[1].Path, (FieldPath{0, 1})); // inner.f1
  EXPECT_EQ(FT.leaves()[2].Path, (FieldPath{1}));    // outer.f1
  EXPECT_EQ(FT.leaves()[0].Offset, 0u);
  EXPECT_EQ(FT.leaves()[1].Offset, 4u);
  EXPECT_EQ(FT.leaves()[2].Offset, 8u);
}

TEST_F(Fixture, NormalizedLeafDescendsFirstFields) {
  TypeId IP = Types.getPointer(Types.intType());
  RecordId Inner = makeStruct("Inner", {IP, Types.charType()});
  RecordId Outer = makeStruct(
      "Outer", {Types.getRecordType(Inner), Types.intType()});
  FlattenedType FT(Types, Layout, Types.getRecordType(Outer));
  // normalize(outer) == normalize(outer.f0) == outer.f0.f0.
  EXPECT_EQ(FT.normalizedLeaf({}), 0u);
  EXPECT_EQ(FT.normalizedLeaf({0}), 0u);
  EXPECT_EQ(FT.normalizedLeaf({0, 1}), 1u);
  EXPECT_EQ(FT.normalizedLeaf({1}), 2u);
}

TEST_F(Fixture, UnionsBecomeOneBlobLeaf) {
  TypeId IP = Types.getPointer(Types.intType());
  RecordId U = makeStruct("U", {IP, Types.doubleType()}, /*IsUnion=*/true);
  RecordId S = makeStruct("S", {Types.intType(), Types.getRecordType(U)});
  FlattenedType FT(Types, Layout, Types.getRecordType(S));
  ASSERT_EQ(FT.leaves().size(), 2u);
  EXPECT_EQ(FT.leaves()[1].Path, (FieldPath{1}));
  EXPECT_TRUE(Types.isUnion(FT.leaves()[1].Ty));
  // A path THROUGH the union maps to the union blob.
  EXPECT_EQ(FT.normalizedLeaf({1, 0}), 1u);
}

TEST_F(Fixture, ArrayLeavesCarryTheirGroup) {
  TypeId IP = Types.getPointer(Types.intType());
  RecordId Elem = makeStruct("Elem", {IP, Types.intType()});
  RecordId S = makeStruct(
      "S", {Types.charType(), Types.getArray(Types.getRecordType(Elem), 3),
            IP});
  FlattenedType FT(Types, Layout, Types.getRecordType(S));
  ASSERT_EQ(FT.leaves().size(), 4u);
  // Leaves 1 and 2 are inside the array member.
  EXPECT_EQ(FT.leaves()[1].ArrayGroupBegin, 1u);
  EXPECT_EQ(FT.leaves()[1].ArrayGroupEnd, 3u);
  EXPECT_EQ(FT.leaves()[2].ArrayGroupBegin, 1u);
  EXPECT_EQ(FT.leaves()[0].ArrayGroupBegin, UINT32_MAX);
  EXPECT_EQ(FT.leaves()[3].ArrayGroupBegin, UINT32_MAX);
}

TEST_F(Fixture, FromLeafOnwardAppliesTheArrayAdjustment) {
  TypeId IP = Types.getPointer(Types.intType());
  RecordId Elem = makeStruct("Elem", {IP, Types.intType()});
  RecordId S = makeStruct(
      "S", {Types.charType(), Types.getArray(Types.getRecordType(Elem), 3),
            IP});
  FlattenedType FT(Types, Layout, Types.getRecordType(S));
  // From the second leaf of the array element: the paper requires all
  // fields *within that array* to be included, so the result starts at the
  // array group's first leaf.
  EXPECT_EQ(FT.fromLeafOnward(2), (std::vector<uint32_t>{1, 2, 3}));
  // Outside an array: plain suffix.
  EXPECT_EQ(FT.fromLeafOnward(3), (std::vector<uint32_t>{3}));
  EXPECT_EQ(FT.fromLeafOnward(0), (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST_F(Fixture, EmptyAndIncompleteRecordsAreLeaves) {
  RecordId Empty = makeStruct("Empty", {});
  FlattenedType FT1(Types, Layout, Types.getRecordType(Empty));
  EXPECT_EQ(FT1.leaves().size(), 1u);

  RecordId Fwd = Types.createRecord(false, Strings.intern("Fwd"));
  // Note: flattening an incomplete record is legal (it is a blob leaf).
  FlattenedType FT2(Types, Layout, Types.getRecordType(Fwd));
  EXPECT_EQ(FT2.leaves().size(), 1u);
}

TEST_F(Fixture, FunctionTypeIsALeaf) {
  TypeId Fn = Types.getFunction(Types.intType(), {}, false);
  FlattenedType FT(Types, Layout, Fn);
  EXPECT_EQ(FT.leaves().size(), 1u);
}
