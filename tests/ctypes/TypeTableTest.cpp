//===--- TypeTableTest.cpp - Unit tests for type interning ----------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "ctypes/TypeTable.h"

#include "gtest/gtest.h"

using namespace spa;

namespace {
struct Fixture : ::testing::Test {
  StringInterner Strings;
  TypeTable Types;
};
} // namespace

TEST_F(Fixture, DerivedTypesAreInterned) {
  TypeId IntPtr = Types.getPointer(Types.intType());
  EXPECT_EQ(IntPtr, Types.getPointer(Types.intType()));
  EXPECT_NE(IntPtr, Types.getPointer(Types.charType()));

  TypeId Arr = Types.getArray(Types.intType(), 10);
  EXPECT_EQ(Arr, Types.getArray(Types.intType(), 10));
  EXPECT_NE(Arr, Types.getArray(Types.intType(), 9));

  TypeId Fn = Types.getFunction(Types.voidType(), {IntPtr}, false);
  EXPECT_EQ(Fn, Types.getFunction(Types.voidType(), {IntPtr}, false));
  EXPECT_NE(Fn, Types.getFunction(Types.voidType(), {IntPtr}, true));
}

TEST_F(Fixture, QualifiersComposeAndStrip) {
  TypeId ConstInt = Types.getQualified(Types.intType(), QualConst);
  EXPECT_NE(ConstInt, Types.intType());
  EXPECT_EQ(Types.unqualified(ConstInt), Types.intType());
  EXPECT_EQ(Types.getQualified(ConstInt, QualConst), ConstInt);

  TypeId CV = Types.getQualified(ConstInt, QualVolatile);
  EXPECT_EQ(Types.node(CV).Quals, QualConst | QualVolatile);
  EXPECT_EQ(Types.unqualified(CV), Types.intType());
}

TEST_F(Fixture, CanonicalStripsNestedQualifiers) {
  // const char * const  ->  char *
  TypeId ConstChar = Types.getQualified(Types.charType(), QualConst);
  TypeId P = Types.getQualified(Types.getPointer(ConstChar), QualConst);
  EXPECT_EQ(Types.canonical(P), Types.getPointer(Types.charType()));

  // Array and function types canonicalize through their components.
  TypeId Arr = Types.getArray(ConstChar, 4);
  EXPECT_EQ(Types.canonical(Arr), Types.getArray(Types.charType(), 4));
  TypeId Fn = Types.getFunction(ConstChar, {P}, false);
  EXPECT_EQ(Types.canonical(Fn),
            Types.getFunction(Types.charType(),
                              {Types.getPointer(Types.charType())}, false));
}

TEST_F(Fixture, RecordsAreNominal) {
  RecordId A = Types.createRecord(false, Strings.intern("A"));
  RecordId B = Types.createRecord(false, Strings.intern("A"));
  EXPECT_NE(Types.getRecordType(A), Types.getRecordType(B));
  EXPECT_FALSE(Types.record(A).IsComplete);
  Types.completeRecord(A, {{Strings.intern("x"), Types.intType()}});
  EXPECT_TRUE(Types.record(A).IsComplete);
  EXPECT_EQ(Types.record(A).Fields.size(), 1u);
}

TEST_F(Fixture, TypeOfPathWalksNestedRecordsAndArrays) {
  // struct Inner { int a; char *b; };
  RecordId Inner = Types.createRecord(false, Strings.intern("Inner"));
  Types.completeRecord(
      Inner, {{Strings.intern("a"), Types.intType()},
              {Strings.intern("b"), Types.getPointer(Types.charType())}});
  // struct Outer { struct Inner in[4]; double d; };
  RecordId Outer = Types.createRecord(false, Strings.intern("Outer"));
  Types.completeRecord(
      Outer, {{Strings.intern("in"),
               Types.getArray(Types.getRecordType(Inner), 4)},
              {Strings.intern("d"), Types.doubleType()}});

  TypeId OuterTy = Types.getRecordType(Outer);
  EXPECT_EQ(Types.typeOfPath(OuterTy, {}), OuterTy);
  EXPECT_EQ(Types.typeOfPath(OuterTy, {1}), Types.doubleType());
  // Arrays are transparent: path {0, 1} reaches in[...].b.
  EXPECT_EQ(Types.typeOfPath(OuterTy, {0, 1}),
            Types.getPointer(Types.charType()));
}

TEST_F(Fixture, ToStringSpellsCommonTypes) {
  RecordId S = Types.createRecord(false, Strings.intern("S"));
  EXPECT_EQ(Types.toString(Types.getRecordType(S), Strings), "struct S");
  EXPECT_EQ(Types.toString(Types.getPointer(Types.intType()), Strings),
            "int *");
  EXPECT_EQ(Types.toString(Types.getArray(Types.charType(), 3), Strings),
            "char [3]");
  TypeId Fn = Types.getFunction(Types.intType(), {}, true);
  EXPECT_EQ(Types.toString(Fn, Strings), "int (...)");
}

TEST_F(Fixture, PredicatesClassifyKinds) {
  EXPECT_TRUE(Types.isInteger(Types.charType()));
  EXPECT_TRUE(Types.isInteger(Types.ulonglongType()));
  EXPECT_FALSE(Types.isInteger(Types.floatType()));
  EXPECT_TRUE(Types.isFloating(Types.longdoubleType()));
  EXPECT_TRUE(Types.isScalar(Types.getPointer(Types.voidType())));
  RecordId U = Types.createRecord(true, Strings.intern("U"));
  EXPECT_TRUE(Types.isUnion(Types.getRecordType(U)));
  EXPECT_FALSE(Types.isStruct(Types.getRecordType(U)));
  EXPECT_EQ(Types.stripArrays(Types.getArray(
                Types.getArray(Types.intType(), 2), 3)),
            Types.intType());
}
