//===--- AbiSweepTest.cpp - Layout invariants across every ABI ------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized sweep over the supported target ABIs: the invariants
/// ISO C guarantees (and the paper leans on) must hold under every
/// conforming layout the engine can produce — first field at offset 0,
/// common-initial-sequence offsets agreeing, monotone non-overlapping
/// struct fields, union members at 0.
///
//===----------------------------------------------------------------------===//

#include "ctypes/Compat.h"
#include "ctypes/Flatten.h"
#include "ctypes/Layout.h"

#include "gtest/gtest.h"

using namespace spa;

namespace {

class AbiSweep : public ::testing::TestWithParam<TargetInfo> {
protected:
  StringInterner Strings;
  TypeTable Types;

  RecordId makeStruct(const char *Tag, std::vector<TypeId> FieldTypes,
                      bool IsUnion = false) {
    RecordId Rec = Types.createRecord(IsUnion, Strings.intern(Tag));
    std::vector<FieldDecl> Decls;
    int N = 0;
    for (TypeId Ty : FieldTypes)
      Decls.push_back({Strings.intern("f" + std::to_string(N++)), Ty});
    Types.completeRecord(Rec, std::move(Decls));
    return Rec;
  }
};

} // namespace

TEST_P(AbiSweep, FirstFieldIsAtOffsetZero) {
  // The paper's Problem-1 guarantee, under every layout.
  RecordId Inner = makeStruct("Inner", {Types.doubleType()});
  RecordId Outer = makeStruct(
      "Outer", {Types.getRecordType(Inner), Types.charType()});
  LayoutEngine L(Types, GetParam());
  EXPECT_EQ(L.layout(Outer).FieldOffsets[0], 0u);
  EXPECT_EQ(L.offsetOfPath(Types.getRecordType(Outer), {0, 0}), 0u);
}

TEST_P(AbiSweep, CommonInitialSequenceOffsetsAgree) {
  // The CIS layout guarantee the Common-Initial-Sequence instance uses.
  TypeId IP = Types.getPointer(Types.intType());
  TypeId CP = Types.getPointer(Types.charType());
  RecordId A = makeStruct("A", {IP, Types.intType(), IP});
  RecordId B = makeStruct("B", {IP, Types.intType(), CP, Types.charType()});
  unsigned Cis = commonInitialSeqLen(Types, A, B);
  ASSERT_GE(Cis, 2u);
  LayoutEngine L(Types, GetParam());
  for (unsigned I = 0; I < Cis; ++I)
    EXPECT_EQ(L.layout(A).FieldOffsets[I], L.layout(B).FieldOffsets[I])
        << "field " << I << " under " << GetParam().Name;
}

TEST_P(AbiSweep, StructFieldsDoNotOverlapAndFit) {
  RecordId Rec = makeStruct(
      "Mix", {Types.charType(), Types.doubleType(), Types.shortType(),
              Types.getPointer(Types.voidType()), Types.charType()});
  LayoutEngine L(Types, GetParam());
  const RecordLayout &RL = L.layout(Rec);
  const RecordDecl &Decl = Types.record(Rec);
  uint64_t PrevEnd = 0;
  for (size_t I = 0; I < Decl.Fields.size(); ++I) {
    EXPECT_GE(RL.FieldOffsets[I], PrevEnd) << GetParam().Name;
    PrevEnd = RL.FieldOffsets[I] + L.sizeOf(Decl.Fields[I].Ty);
  }
  EXPECT_LE(PrevEnd, RL.Size);
  EXPECT_EQ(RL.Size % RL.Align, 0u);
}

TEST_P(AbiSweep, UnionMembersShareOffsetZeroAndSizeCoversAll) {
  RecordId U = makeStruct("U",
                          {Types.charType(), Types.doubleType(),
                           Types.getPointer(Types.intType())},
                          /*IsUnion=*/true);
  LayoutEngine L(Types, GetParam());
  const RecordLayout &RL = L.layout(U);
  for (uint64_t Off : RL.FieldOffsets)
    EXPECT_EQ(Off, 0u);
  const RecordDecl &Decl = Types.record(U);
  for (const FieldDecl &F : Decl.Fields)
    EXPECT_GE(RL.Size, L.sizeOf(F.Ty));
}

TEST_P(AbiSweep, CanonicalOffsetIsIdempotent) {
  RecordId Row = makeStruct("Row", {Types.intType(), Types.intType()});
  RecordId T = makeStruct(
      "T", {Types.charType(),
            Types.getArray(Types.getRecordType(Row), 5), Types.intType()});
  LayoutEngine L(Types, GetParam());
  TypeId Ty = Types.getRecordType(T);
  for (uint64_t Off = 0; Off < L.sizeOf(Ty); ++Off) {
    uint64_t C = L.canonicalOffset(Ty, Off);
    EXPECT_EQ(L.canonicalOffset(Ty, C), C)
        << "offset " << Off << " under " << GetParam().Name;
    EXPECT_LE(C, Off);
  }
}

TEST_P(AbiSweep, FlattenedLeafOffsetsMatchOffsetOfPath) {
  TypeId IP = Types.getPointer(Types.intType());
  RecordId Inner = makeStruct("Inner", {IP, Types.charType()});
  RecordId Outer = makeStruct(
      "Outer", {Types.shortType(), Types.getRecordType(Inner),
                Types.getArray(IP, 3)});
  LayoutEngine L(Types, GetParam());
  TypeId Ty = Types.getRecordType(Outer);
  FlattenedType FT(Types, L, Ty);
  for (const LeafField &Leaf : FT.leaves())
    EXPECT_EQ(Leaf.Offset, L.offsetOfPath(Ty, Leaf.Path))
        << GetParam().Name;
}

INSTANTIATE_TEST_SUITE_P(AllTargets, AbiSweep,
                         ::testing::Values(TargetInfo::ilp32(),
                                           TargetInfo::lp64(),
                                           TargetInfo::padded32()),
                         [](const auto &Info) { return Info.param.Name; });
