//===--- LayoutTest.cpp - Unit tests for the ABI layout engine ------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "ctypes/Layout.h"

#include "gtest/gtest.h"

using namespace spa;

namespace {
struct Fixture : ::testing::Test {
  StringInterner Strings;
  TypeTable Types;

  RecordId makeStruct(const char *Tag,
                      std::vector<std::pair<const char *, TypeId>> Fields,
                      bool IsUnion = false) {
    RecordId Rec = Types.createRecord(IsUnion, Strings.intern(Tag));
    std::vector<FieldDecl> Decls;
    for (auto &[Name, Ty] : Fields)
      Decls.push_back({Strings.intern(Name), Ty});
    Types.completeRecord(Rec, std::move(Decls));
    return Rec;
  }
};
} // namespace

TEST_F(Fixture, ScalarSizesFollowTheTarget) {
  LayoutEngine L32(Types, TargetInfo::ilp32());
  LayoutEngine L64(Types, TargetInfo::lp64());
  EXPECT_EQ(L32.sizeOf(Types.getPointer(Types.intType())), 4u);
  EXPECT_EQ(L64.sizeOf(Types.getPointer(Types.intType())), 8u);
  EXPECT_EQ(L32.sizeOf(Types.longType()), 4u);
  EXPECT_EQ(L64.sizeOf(Types.longType()), 8u);
  EXPECT_EQ(L32.sizeOf(Types.doubleType()), 8u);
}

TEST_F(Fixture, StructLayoutInsertsPadding) {
  // struct { char c; int i; char d; } -> offsets 0, 4, 8; size 12 (ilp32).
  RecordId Rec = makeStruct("S", {{"c", Types.charType()},
                                  {"i", Types.intType()},
                                  {"d", Types.charType()}});
  LayoutEngine L(Types, TargetInfo::ilp32());
  const RecordLayout &RL = L.layout(Rec);
  EXPECT_EQ(RL.FieldOffsets, (std::vector<uint64_t>{0, 4, 8}));
  EXPECT_EQ(RL.Size, 12u);
  EXPECT_EQ(RL.Align, 4u);
}

TEST_F(Fixture, UnionMembersShareOffsetZero) {
  RecordId Rec = makeStruct("U",
                            {{"i", Types.intType()},
                             {"d", Types.doubleType()},
                             {"p", Types.getPointer(Types.charType())}},
                            /*IsUnion=*/true);
  LayoutEngine L(Types, TargetInfo::ilp32());
  const RecordLayout &RL = L.layout(Rec);
  EXPECT_EQ(RL.FieldOffsets, (std::vector<uint64_t>{0, 0, 0}));
  EXPECT_EQ(RL.Size, 8u);
  EXPECT_EQ(RL.Align, 8u);
}

TEST_F(Fixture, ArraysMultiplyAndIncompleteArraysCountOne) {
  LayoutEngine L(Types, TargetInfo::ilp32());
  EXPECT_EQ(L.sizeOf(Types.getArray(Types.intType(), 5)), 20u);
  EXPECT_EQ(L.sizeOf(Types.getArray(Types.intType(), 0)), 4u);
  EXPECT_EQ(L.alignOf(Types.getArray(Types.doubleType(), 2)), 8u);
}

TEST_F(Fixture, OffsetOfPathAccumulatesThroughNesting) {
  RecordId Inner = makeStruct("I", {{"a", Types.intType()},
                                    {"b", Types.intType()}});
  RecordId Outer =
      makeStruct("O", {{"x", Types.charType()},
                       {"in", Types.getRecordType(Inner)},
                       {"y", Types.intType()}});
  LayoutEngine L(Types, TargetInfo::ilp32());
  TypeId OuterTy = Types.getRecordType(Outer);
  EXPECT_EQ(L.offsetOfPath(OuterTy, {}), 0u);
  EXPECT_EQ(L.offsetOfPath(OuterTy, {1}), 4u);
  EXPECT_EQ(L.offsetOfPath(OuterTy, {1, 1}), 8u);
  EXPECT_EQ(L.offsetOfPath(OuterTy, {2}), 12u);
}

TEST_F(Fixture, CanonicalOffsetMapsIntoRepresentativeArrayElement) {
  // struct { int hdr; struct { int a; int b; } rows[4]; }
  RecordId Row = makeStruct("Row", {{"a", Types.intType()},
                                    {"b", Types.intType()}});
  RecordId Table =
      makeStruct("T", {{"hdr", Types.intType()},
                       {"rows", Types.getArray(Types.getRecordType(Row), 4)}});
  LayoutEngine L(Types, TargetInfo::ilp32());
  TypeId Ty = Types.getRecordType(Table);
  // rows[2].b sits at 4 + 2*8 + 4 = 24; canonical is rows[0].b at 8.
  EXPECT_EQ(L.canonicalOffset(Ty, 24), 8u);
  EXPECT_EQ(L.canonicalOffset(Ty, 4), 4u);
  EXPECT_EQ(L.canonicalOffset(Ty, 0), 0u);
  // Beyond the object: clamps to the last byte.
  EXPECT_EQ(L.canonicalOffset(Ty, 4096), L.canonicalOffset(Ty, 35));
}

TEST_F(Fixture, CanonicalOffsetStopsAtUnions) {
  RecordId U = makeStruct("U",
                          {{"arr", Types.getArray(Types.intType(), 4)},
                           {"d", Types.doubleType()}},
                          /*IsUnion=*/true);
  LayoutEngine L(Types, TargetInfo::ilp32());
  TypeId Ty = Types.getRecordType(U);
  // No canonicalization inside the union: offset 12 stays 12.
  EXPECT_EQ(L.canonicalOffset(Ty, 12), 12u);
}

TEST_F(Fixture, PaddedTargetChangesOffsets) {
  RecordId Rec = makeStruct("P", {{"p", Types.getPointer(Types.intType())},
                                  {"i", Types.intType()},
                                  {"q", Types.getPointer(Types.intType())}});
  LayoutEngine L32(Types, TargetInfo::ilp32());
  LayoutEngine LPad(Types, TargetInfo::padded32());
  EXPECT_EQ(L32.layout(Rec).FieldOffsets, (std::vector<uint64_t>{0, 4, 8}));
  EXPECT_EQ(LPad.layout(Rec).FieldOffsets, (std::vector<uint64_t>{0, 8, 16}));
}

TEST_F(Fixture, EmptyStructGetsOneByte) {
  RecordId Rec = makeStruct("E", {});
  LayoutEngine L(Types, TargetInfo::ilp32());
  EXPECT_EQ(L.layout(Rec).Size, 1u);
}
