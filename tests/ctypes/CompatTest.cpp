//===--- CompatTest.cpp - Unit tests for compatible types -----------------===//
//
// Part of the spa project (see src/support/IdTypes.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "ctypes/Compat.h"

#include "gtest/gtest.h"

using namespace spa;

namespace {
struct Fixture : ::testing::Test {
  StringInterner Strings;
  TypeTable Types;

  RecordId makeStruct(const char *Tag, std::vector<TypeId> FieldTypes) {
    RecordId Rec = Types.createRecord(false, Strings.intern(Tag));
    std::vector<FieldDecl> Decls;
    int N = 0;
    for (TypeId Ty : FieldTypes)
      Decls.push_back({Strings.intern("f" + std::to_string(N++)), Ty});
    Types.completeRecord(Rec, std::move(Decls));
    return Rec;
  }
};
} // namespace

TEST_F(Fixture, IdenticalTypesAreCompatible) {
  EXPECT_TRUE(areCompatible(Types, Types.intType(), Types.intType()));
  TypeId P = Types.getPointer(Types.charType());
  EXPECT_TRUE(areCompatible(Types, P, P));
}

TEST_F(Fixture, DistinctScalarKindsAreNot) {
  EXPECT_FALSE(areCompatible(Types, Types.intType(), Types.longType()));
  EXPECT_FALSE(areCompatible(Types, Types.charType(), Types.scharType()));
  EXPECT_FALSE(areCompatible(Types, Types.intType(), Types.uintType()));
  EXPECT_FALSE(areCompatible(Types, Types.floatType(), Types.doubleType()));
}

TEST_F(Fixture, IntIsCompatibleWithEnum) {
  EnumId En = Types.createEnum(Strings.intern("E"));
  TypeId EnumTy = Types.getEnumType(En);
  EXPECT_TRUE(areCompatible(Types, Types.intType(), EnumTy));
  EXPECT_TRUE(areCompatible(Types, EnumTy, Types.intType()));
  EnumId Other = Types.createEnum(Strings.intern("F"));
  EXPECT_FALSE(
      areCompatible(Types, EnumTy, Types.getEnumType(Other)));
}

TEST_F(Fixture, QualifiersAreIgnoredByDesign) {
  // Documented deviation from the ISO letter: see Compat.h.
  TypeId ConstInt = Types.getQualified(Types.intType(), QualConst);
  EXPECT_TRUE(areCompatible(Types, ConstInt, Types.intType()));
  TypeId PConst = Types.getPointer(ConstInt);
  TypeId P = Types.getPointer(Types.intType());
  EXPECT_TRUE(areCompatible(Types, PConst, P));
}

TEST_F(Fixture, PointersFollowPointees) {
  TypeId PI = Types.getPointer(Types.intType());
  TypeId PC = Types.getPointer(Types.charType());
  EXPECT_FALSE(areCompatible(Types, PI, PC));
  EXPECT_TRUE(areCompatible(Types, Types.getPointer(PI),
                            Types.getPointer(PI)));
}

TEST_F(Fixture, ArraysNeedMatchingElementAndSize) {
  TypeId A4 = Types.getArray(Types.intType(), 4);
  TypeId A5 = Types.getArray(Types.intType(), 5);
  TypeId AIncomplete = Types.getArray(Types.intType(), 0);
  EXPECT_FALSE(areCompatible(Types, A4, A5));
  EXPECT_TRUE(areCompatible(Types, A4, AIncomplete));
  EXPECT_FALSE(areCompatible(Types, A4, Types.getArray(Types.charType(), 4)));
}

TEST_F(Fixture, RecordsAreCompatibleOnlyWithThemselves) {
  RecordId A = makeStruct("A", {Types.intType()});
  RecordId B = makeStruct("B", {Types.intType()});
  EXPECT_TRUE(areCompatible(Types, Types.getRecordType(A),
                            Types.getRecordType(A)));
  EXPECT_FALSE(areCompatible(Types, Types.getRecordType(A),
                             Types.getRecordType(B)));
}

TEST_F(Fixture, FunctionsCompareSignatures) {
  TypeId F1 = Types.getFunction(Types.intType(), {Types.intType()}, false);
  TypeId F2 = Types.getFunction(Types.intType(), {Types.intType()}, false);
  TypeId F3 = Types.getFunction(Types.intType(), {Types.longType()}, false);
  EXPECT_TRUE(areCompatible(Types, F1, F2));
  EXPECT_FALSE(areCompatible(Types, F1, F3));
}

TEST_F(Fixture, CommonInitialSequenceLength) {
  TypeId IP = Types.getPointer(Types.intType());
  TypeId CP = Types.getPointer(Types.charType());
  RecordId S = makeStruct("S", {IP, IP, IP});
  RecordId T = makeStruct("T", {IP, IP, CP});
  RecordId V = makeStruct("V", {CP, IP});
  EXPECT_EQ(commonInitialSeqLen(Types, S, T), 2u);
  EXPECT_EQ(commonInitialSeqLen(Types, T, S), 2u);
  EXPECT_EQ(commonInitialSeqLen(Types, S, V), 0u);
  EXPECT_EQ(commonInitialSeqLen(Types, S, S), 3u);
}

TEST_F(Fixture, CommonInitialSequenceExcludesUnionsAndIncomplete) {
  TypeId IP = Types.getPointer(Types.intType());
  RecordId S = makeStruct("S", {IP});
  RecordId U = Types.createRecord(true, Strings.intern("U"));
  Types.completeRecord(U, {{Strings.intern("f"), IP}});
  RecordId Inc = Types.createRecord(false, Strings.intern("Inc"));
  EXPECT_EQ(commonInitialSeqLen(Types, S, U), 0u);
  EXPECT_EQ(commonInitialSeqLen(Types, S, Inc), 0u);
}

TEST_F(Fixture, NestedRecordFieldsMatchByIdentity) {
  RecordId Inner = makeStruct("Inner", {Types.intType()});
  TypeId InnerTy = Types.getRecordType(Inner);
  RecordId A = makeStruct("A", {InnerTy, Types.intType()});
  RecordId B = makeStruct("B", {InnerTy, Types.charType()});
  EXPECT_EQ(commonInitialSeqLen(Types, A, B), 1u);
}
