file(REMOVE_RECURSE
  "CMakeFiles/portability.dir/portability.cpp.o"
  "CMakeFiles/portability.dir/portability.cpp.o.d"
  "portability"
  "portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
