file(REMOVE_RECURSE
  "CMakeFiles/ablation_unknown.dir/ablation_unknown.cpp.o"
  "CMakeFiles/ablation_unknown.dir/ablation_unknown.cpp.o.d"
  "ablation_unknown"
  "ablation_unknown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unknown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
