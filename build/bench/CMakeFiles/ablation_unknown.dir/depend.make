# Empty dependencies file for ablation_unknown.
# This may be replaced when dependencies are built.
