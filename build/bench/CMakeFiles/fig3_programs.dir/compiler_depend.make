# Empty compiler generated dependencies file for fig3_programs.
# This may be replaced when dependencies are built.
