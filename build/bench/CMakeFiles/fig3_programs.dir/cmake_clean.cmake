file(REMOVE_RECURSE
  "CMakeFiles/fig3_programs.dir/fig3_programs.cpp.o"
  "CMakeFiles/fig3_programs.dir/fig3_programs.cpp.o.d"
  "fig3_programs"
  "fig3_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
