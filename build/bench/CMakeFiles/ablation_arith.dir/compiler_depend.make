# Empty compiler generated dependencies file for ablation_arith.
# This may be replaced when dependencies are built.
