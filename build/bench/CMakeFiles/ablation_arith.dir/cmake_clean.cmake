file(REMOVE_RECURSE
  "CMakeFiles/ablation_arith.dir/ablation_arith.cpp.o"
  "CMakeFiles/ablation_arith.dir/ablation_arith.cpp.o.d"
  "ablation_arith"
  "ablation_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
