file(REMOVE_RECURSE
  "CMakeFiles/fig6_edges.dir/fig6_edges.cpp.o"
  "CMakeFiles/fig6_edges.dir/fig6_edges.cpp.o.d"
  "fig6_edges"
  "fig6_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
