# Empty compiler generated dependencies file for fig6_edges.
# This may be replaced when dependencies are built.
