file(REMOVE_RECURSE
  "CMakeFiles/spa_cli.dir/spa_cli.cpp.o"
  "CMakeFiles/spa_cli.dir/spa_cli.cpp.o.d"
  "spa_cli"
  "spa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
