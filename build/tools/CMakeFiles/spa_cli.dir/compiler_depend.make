# Empty compiler generated dependencies file for spa_cli.
# This may be replaced when dependencies are built.
