file(REMOVE_RECURSE
  "CMakeFiles/pta_cast_idioms_test.dir/pta/CastIdiomsTest.cpp.o"
  "CMakeFiles/pta_cast_idioms_test.dir/pta/CastIdiomsTest.cpp.o.d"
  "pta_cast_idioms_test"
  "pta_cast_idioms_test.pdb"
  "pta_cast_idioms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_cast_idioms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
