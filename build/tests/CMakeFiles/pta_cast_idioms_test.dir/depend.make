# Empty dependencies file for pta_cast_idioms_test.
# This may be replaced when dependencies are built.
