file(REMOVE_RECURSE
  "CMakeFiles/norm_normalizer_test.dir/norm/NormalizerTest.cpp.o"
  "CMakeFiles/norm_normalizer_test.dir/norm/NormalizerTest.cpp.o.d"
  "norm_normalizer_test"
  "norm_normalizer_test.pdb"
  "norm_normalizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norm_normalizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
