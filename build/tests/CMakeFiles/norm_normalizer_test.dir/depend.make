# Empty dependencies file for norm_normalizer_test.
# This may be replaced when dependencies are built.
