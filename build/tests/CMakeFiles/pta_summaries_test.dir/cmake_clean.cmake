file(REMOVE_RECURSE
  "CMakeFiles/pta_summaries_test.dir/pta/LibrarySummariesTest.cpp.o"
  "CMakeFiles/pta_summaries_test.dir/pta/LibrarySummariesTest.cpp.o.d"
  "pta_summaries_test"
  "pta_summaries_test.pdb"
  "pta_summaries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_summaries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
