# Empty dependencies file for pta_summaries_test.
# This may be replaced when dependencies are built.
