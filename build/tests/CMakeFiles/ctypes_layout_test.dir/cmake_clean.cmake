file(REMOVE_RECURSE
  "CMakeFiles/ctypes_layout_test.dir/ctypes/LayoutTest.cpp.o"
  "CMakeFiles/ctypes_layout_test.dir/ctypes/LayoutTest.cpp.o.d"
  "ctypes_layout_test"
  "ctypes_layout_test.pdb"
  "ctypes_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctypes_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
