# Empty dependencies file for ctypes_layout_test.
# This may be replaced when dependencies are built.
