file(REMOVE_RECURSE
  "CMakeFiles/pta_figure_one_test.dir/pta/FigureOneModelTest.cpp.o"
  "CMakeFiles/pta_figure_one_test.dir/pta/FigureOneModelTest.cpp.o.d"
  "pta_figure_one_test"
  "pta_figure_one_test.pdb"
  "pta_figure_one_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_figure_one_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
