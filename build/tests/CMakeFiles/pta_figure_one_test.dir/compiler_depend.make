# Empty compiler generated dependencies file for pta_figure_one_test.
# This may be replaced when dependencies are built.
