file(REMOVE_RECURSE
  "CMakeFiles/integration_corpus_test.dir/integration/CorpusTest.cpp.o"
  "CMakeFiles/integration_corpus_test.dir/integration/CorpusTest.cpp.o.d"
  "integration_corpus_test"
  "integration_corpus_test.pdb"
  "integration_corpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
