# Empty compiler generated dependencies file for integration_corpus_test.
# This may be replaced when dependencies are built.
