file(REMOVE_RECURSE
  "CMakeFiles/pta_unions_arrays_test.dir/pta/UnionsArraysTest.cpp.o"
  "CMakeFiles/pta_unions_arrays_test.dir/pta/UnionsArraysTest.cpp.o.d"
  "pta_unions_arrays_test"
  "pta_unions_arrays_test.pdb"
  "pta_unions_arrays_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_unions_arrays_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
