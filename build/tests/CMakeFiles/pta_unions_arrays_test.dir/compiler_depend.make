# Empty compiler generated dependencies file for pta_unions_arrays_test.
# This may be replaced when dependencies are built.
