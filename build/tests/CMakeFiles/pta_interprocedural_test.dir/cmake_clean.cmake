file(REMOVE_RECURSE
  "CMakeFiles/pta_interprocedural_test.dir/pta/InterproceduralTest.cpp.o"
  "CMakeFiles/pta_interprocedural_test.dir/pta/InterproceduralTest.cpp.o.d"
  "pta_interprocedural_test"
  "pta_interprocedural_test.pdb"
  "pta_interprocedural_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_interprocedural_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
