# Empty compiler generated dependencies file for pta_interprocedural_test.
# This may be replaced when dependencies are built.
