file(REMOVE_RECURSE
  "CMakeFiles/pta_graph_export_test.dir/pta/GraphExportTest.cpp.o"
  "CMakeFiles/pta_graph_export_test.dir/pta/GraphExportTest.cpp.o.d"
  "pta_graph_export_test"
  "pta_graph_export_test.pdb"
  "pta_graph_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_graph_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
