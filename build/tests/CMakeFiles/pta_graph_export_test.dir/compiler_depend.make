# Empty compiler generated dependencies file for pta_graph_export_test.
# This may be replaced when dependencies are built.
