file(REMOVE_RECURSE
  "CMakeFiles/pta_solver_edges_test.dir/pta/SolverEdgeCasesTest.cpp.o"
  "CMakeFiles/pta_solver_edges_test.dir/pta/SolverEdgeCasesTest.cpp.o.d"
  "pta_solver_edges_test"
  "pta_solver_edges_test.pdb"
  "pta_solver_edges_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_solver_edges_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
