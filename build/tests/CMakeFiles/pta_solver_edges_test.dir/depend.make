# Empty dependencies file for pta_solver_edges_test.
# This may be replaced when dependencies are built.
