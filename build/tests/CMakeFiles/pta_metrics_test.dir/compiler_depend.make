# Empty compiler generated dependencies file for pta_metrics_test.
# This may be replaced when dependencies are built.
