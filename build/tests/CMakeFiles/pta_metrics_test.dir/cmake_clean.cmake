file(REMOVE_RECURSE
  "CMakeFiles/pta_metrics_test.dir/pta/MetricsTest.cpp.o"
  "CMakeFiles/pta_metrics_test.dir/pta/MetricsTest.cpp.o.d"
  "pta_metrics_test"
  "pta_metrics_test.pdb"
  "pta_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
