# Empty compiler generated dependencies file for cfront_robustness_test.
# This may be replaced when dependencies are built.
