file(REMOVE_RECURSE
  "CMakeFiles/cfront_robustness_test.dir/cfront/RobustnessTest.cpp.o"
  "CMakeFiles/cfront_robustness_test.dir/cfront/RobustnessTest.cpp.o.d"
  "cfront_robustness_test"
  "cfront_robustness_test.pdb"
  "cfront_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfront_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
