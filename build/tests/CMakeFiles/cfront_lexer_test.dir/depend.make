# Empty dependencies file for cfront_lexer_test.
# This may be replaced when dependencies are built.
