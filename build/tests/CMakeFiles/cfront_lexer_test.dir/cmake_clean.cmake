file(REMOVE_RECURSE
  "CMakeFiles/cfront_lexer_test.dir/cfront/LexerTest.cpp.o"
  "CMakeFiles/cfront_lexer_test.dir/cfront/LexerTest.cpp.o.d"
  "cfront_lexer_test"
  "cfront_lexer_test.pdb"
  "cfront_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfront_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
