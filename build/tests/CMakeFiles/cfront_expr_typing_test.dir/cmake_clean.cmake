file(REMOVE_RECURSE
  "CMakeFiles/cfront_expr_typing_test.dir/cfront/ExprTypingTest.cpp.o"
  "CMakeFiles/cfront_expr_typing_test.dir/cfront/ExprTypingTest.cpp.o.d"
  "cfront_expr_typing_test"
  "cfront_expr_typing_test.pdb"
  "cfront_expr_typing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfront_expr_typing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
