# Empty dependencies file for cfront_expr_typing_test.
# This may be replaced when dependencies are built.
