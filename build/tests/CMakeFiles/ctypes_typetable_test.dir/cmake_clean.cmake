file(REMOVE_RECURSE
  "CMakeFiles/ctypes_typetable_test.dir/ctypes/TypeTableTest.cpp.o"
  "CMakeFiles/ctypes_typetable_test.dir/ctypes/TypeTableTest.cpp.o.d"
  "ctypes_typetable_test"
  "ctypes_typetable_test.pdb"
  "ctypes_typetable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctypes_typetable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
