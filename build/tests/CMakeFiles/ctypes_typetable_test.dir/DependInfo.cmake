
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ctypes/TypeTableTest.cpp" "tests/CMakeFiles/ctypes_typetable_test.dir/ctypes/TypeTableTest.cpp.o" "gcc" "tests/CMakeFiles/ctypes_typetable_test.dir/ctypes/TypeTableTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pta/CMakeFiles/spa_pta.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/norm/CMakeFiles/spa_norm.dir/DependInfo.cmake"
  "/root/repo/build/src/cfront/CMakeFiles/spa_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/ctypes/CMakeFiles/spa_ctypes.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
