# Empty dependencies file for ctypes_typetable_test.
# This may be replaced when dependencies are built.
