file(REMOVE_RECURSE
  "CMakeFiles/norm_stmt_print_test.dir/norm/StmtPrintTest.cpp.o"
  "CMakeFiles/norm_stmt_print_test.dir/norm/StmtPrintTest.cpp.o.d"
  "norm_stmt_print_test"
  "norm_stmt_print_test.pdb"
  "norm_stmt_print_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norm_stmt_print_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
