# Empty dependencies file for norm_stmt_print_test.
# This may be replaced when dependencies are built.
