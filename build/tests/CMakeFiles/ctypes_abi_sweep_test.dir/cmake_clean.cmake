file(REMOVE_RECURSE
  "CMakeFiles/ctypes_abi_sweep_test.dir/ctypes/AbiSweepTest.cpp.o"
  "CMakeFiles/ctypes_abi_sweep_test.dir/ctypes/AbiSweepTest.cpp.o.d"
  "ctypes_abi_sweep_test"
  "ctypes_abi_sweep_test.pdb"
  "ctypes_abi_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctypes_abi_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
