# Empty compiler generated dependencies file for ctypes_abi_sweep_test.
# This may be replaced when dependencies are built.
