# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ctypes_abi_sweep_test.
