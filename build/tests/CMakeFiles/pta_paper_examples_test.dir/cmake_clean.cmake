file(REMOVE_RECURSE
  "CMakeFiles/pta_paper_examples_test.dir/pta/PaperExamplesTest.cpp.o"
  "CMakeFiles/pta_paper_examples_test.dir/pta/PaperExamplesTest.cpp.o.d"
  "pta_paper_examples_test"
  "pta_paper_examples_test.pdb"
  "pta_paper_examples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_paper_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
