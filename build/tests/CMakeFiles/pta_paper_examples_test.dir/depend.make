# Empty dependencies file for pta_paper_examples_test.
# This may be replaced when dependencies are built.
