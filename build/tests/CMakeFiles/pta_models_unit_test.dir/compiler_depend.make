# Empty compiler generated dependencies file for pta_models_unit_test.
# This may be replaced when dependencies are built.
