file(REMOVE_RECURSE
  "CMakeFiles/pta_models_unit_test.dir/pta/ModelsUnitTest.cpp.o"
  "CMakeFiles/pta_models_unit_test.dir/pta/ModelsUnitTest.cpp.o.d"
  "pta_models_unit_test"
  "pta_models_unit_test.pdb"
  "pta_models_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_models_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
