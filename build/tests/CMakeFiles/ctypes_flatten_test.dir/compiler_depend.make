# Empty compiler generated dependencies file for ctypes_flatten_test.
# This may be replaced when dependencies are built.
