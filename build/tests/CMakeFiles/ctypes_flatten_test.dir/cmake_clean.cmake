file(REMOVE_RECURSE
  "CMakeFiles/ctypes_flatten_test.dir/ctypes/FlattenTest.cpp.o"
  "CMakeFiles/ctypes_flatten_test.dir/ctypes/FlattenTest.cpp.o.d"
  "ctypes_flatten_test"
  "ctypes_flatten_test.pdb"
  "ctypes_flatten_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctypes_flatten_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
