# Empty dependencies file for ctypes_compat_test.
# This may be replaced when dependencies are built.
