file(REMOVE_RECURSE
  "CMakeFiles/ctypes_compat_test.dir/ctypes/CompatTest.cpp.o"
  "CMakeFiles/ctypes_compat_test.dir/ctypes/CompatTest.cpp.o.d"
  "ctypes_compat_test"
  "ctypes_compat_test.pdb"
  "ctypes_compat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctypes_compat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
