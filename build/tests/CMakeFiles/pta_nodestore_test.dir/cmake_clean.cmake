file(REMOVE_RECURSE
  "CMakeFiles/pta_nodestore_test.dir/pta/NodeStoreTest.cpp.o"
  "CMakeFiles/pta_nodestore_test.dir/pta/NodeStoreTest.cpp.o.d"
  "pta_nodestore_test"
  "pta_nodestore_test.pdb"
  "pta_nodestore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_nodestore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
