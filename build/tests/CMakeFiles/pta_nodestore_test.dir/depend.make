# Empty dependencies file for pta_nodestore_test.
# This may be replaced when dependencies are built.
