# Empty compiler generated dependencies file for pta_solver_test.
# This may be replaced when dependencies are built.
