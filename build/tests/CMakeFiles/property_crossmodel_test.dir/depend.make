# Empty dependencies file for property_crossmodel_test.
# This may be replaced when dependencies are built.
