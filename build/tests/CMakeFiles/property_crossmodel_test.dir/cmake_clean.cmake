file(REMOVE_RECURSE
  "CMakeFiles/property_crossmodel_test.dir/property/CrossModelPropertyTest.cpp.o"
  "CMakeFiles/property_crossmodel_test.dir/property/CrossModelPropertyTest.cpp.o.d"
  "property_crossmodel_test"
  "property_crossmodel_test.pdb"
  "property_crossmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_crossmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
