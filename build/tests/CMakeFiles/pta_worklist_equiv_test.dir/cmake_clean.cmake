file(REMOVE_RECURSE
  "CMakeFiles/pta_worklist_equiv_test.dir/pta/WorklistEquivalenceTest.cpp.o"
  "CMakeFiles/pta_worklist_equiv_test.dir/pta/WorklistEquivalenceTest.cpp.o.d"
  "pta_worklist_equiv_test"
  "pta_worklist_equiv_test.pdb"
  "pta_worklist_equiv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_worklist_equiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
