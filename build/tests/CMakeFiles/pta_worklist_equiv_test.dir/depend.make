# Empty dependencies file for pta_worklist_equiv_test.
# This may be replaced when dependencies are built.
