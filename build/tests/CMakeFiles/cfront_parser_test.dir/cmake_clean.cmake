file(REMOVE_RECURSE
  "CMakeFiles/cfront_parser_test.dir/cfront/ParserTest.cpp.o"
  "CMakeFiles/cfront_parser_test.dir/cfront/ParserTest.cpp.o.d"
  "cfront_parser_test"
  "cfront_parser_test.pdb"
  "cfront_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfront_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
