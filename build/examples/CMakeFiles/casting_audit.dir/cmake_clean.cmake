file(REMOVE_RECURSE
  "CMakeFiles/casting_audit.dir/casting_audit.cpp.o"
  "CMakeFiles/casting_audit.dir/casting_audit.cpp.o.d"
  "casting_audit"
  "casting_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casting_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
