# Empty compiler generated dependencies file for casting_audit.
# This may be replaced when dependencies are built.
