# Empty dependencies file for field_sensitivity.
# This may be replaced when dependencies are built.
