file(REMOVE_RECURSE
  "CMakeFiles/field_sensitivity.dir/field_sensitivity.cpp.o"
  "CMakeFiles/field_sensitivity.dir/field_sensitivity.cpp.o.d"
  "field_sensitivity"
  "field_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
