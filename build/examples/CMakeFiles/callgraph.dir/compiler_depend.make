# Empty compiler generated dependencies file for callgraph.
# This may be replaced when dependencies are built.
