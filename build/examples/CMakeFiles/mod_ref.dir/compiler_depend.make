# Empty compiler generated dependencies file for mod_ref.
# This may be replaced when dependencies are built.
