file(REMOVE_RECURSE
  "CMakeFiles/mod_ref.dir/mod_ref.cpp.o"
  "CMakeFiles/mod_ref.dir/mod_ref.cpp.o.d"
  "mod_ref"
  "mod_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mod_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
