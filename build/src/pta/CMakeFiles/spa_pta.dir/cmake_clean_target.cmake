file(REMOVE_RECURSE
  "libspa_pta.a"
)
