
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pta/Frontend.cpp" "src/pta/CMakeFiles/spa_pta.dir/Frontend.cpp.o" "gcc" "src/pta/CMakeFiles/spa_pta.dir/Frontend.cpp.o.d"
  "/root/repo/src/pta/GraphExport.cpp" "src/pta/CMakeFiles/spa_pta.dir/GraphExport.cpp.o" "gcc" "src/pta/CMakeFiles/spa_pta.dir/GraphExport.cpp.o.d"
  "/root/repo/src/pta/LibrarySummaries.cpp" "src/pta/CMakeFiles/spa_pta.dir/LibrarySummaries.cpp.o" "gcc" "src/pta/CMakeFiles/spa_pta.dir/LibrarySummaries.cpp.o.d"
  "/root/repo/src/pta/Metrics.cpp" "src/pta/CMakeFiles/spa_pta.dir/Metrics.cpp.o" "gcc" "src/pta/CMakeFiles/spa_pta.dir/Metrics.cpp.o.d"
  "/root/repo/src/pta/Models.cpp" "src/pta/CMakeFiles/spa_pta.dir/Models.cpp.o" "gcc" "src/pta/CMakeFiles/spa_pta.dir/Models.cpp.o.d"
  "/root/repo/src/pta/Solver.cpp" "src/pta/CMakeFiles/spa_pta.dir/Solver.cpp.o" "gcc" "src/pta/CMakeFiles/spa_pta.dir/Solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/norm/CMakeFiles/spa_norm.dir/DependInfo.cmake"
  "/root/repo/build/src/cfront/CMakeFiles/spa_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/ctypes/CMakeFiles/spa_ctypes.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
