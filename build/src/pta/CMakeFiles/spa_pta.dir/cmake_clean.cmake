file(REMOVE_RECURSE
  "CMakeFiles/spa_pta.dir/Frontend.cpp.o"
  "CMakeFiles/spa_pta.dir/Frontend.cpp.o.d"
  "CMakeFiles/spa_pta.dir/GraphExport.cpp.o"
  "CMakeFiles/spa_pta.dir/GraphExport.cpp.o.d"
  "CMakeFiles/spa_pta.dir/LibrarySummaries.cpp.o"
  "CMakeFiles/spa_pta.dir/LibrarySummaries.cpp.o.d"
  "CMakeFiles/spa_pta.dir/Metrics.cpp.o"
  "CMakeFiles/spa_pta.dir/Metrics.cpp.o.d"
  "CMakeFiles/spa_pta.dir/Models.cpp.o"
  "CMakeFiles/spa_pta.dir/Models.cpp.o.d"
  "CMakeFiles/spa_pta.dir/Solver.cpp.o"
  "CMakeFiles/spa_pta.dir/Solver.cpp.o.d"
  "libspa_pta.a"
  "libspa_pta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_pta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
