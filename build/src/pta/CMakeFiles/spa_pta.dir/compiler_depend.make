# Empty compiler generated dependencies file for spa_pta.
# This may be replaced when dependencies are built.
