file(REMOVE_RECURSE
  "CMakeFiles/spa_norm.dir/NormIR.cpp.o"
  "CMakeFiles/spa_norm.dir/NormIR.cpp.o.d"
  "CMakeFiles/spa_norm.dir/Normalizer.cpp.o"
  "CMakeFiles/spa_norm.dir/Normalizer.cpp.o.d"
  "libspa_norm.a"
  "libspa_norm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_norm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
