# Empty dependencies file for spa_norm.
# This may be replaced when dependencies are built.
