file(REMOVE_RECURSE
  "libspa_norm.a"
)
