# Empty compiler generated dependencies file for spa_ctypes.
# This may be replaced when dependencies are built.
