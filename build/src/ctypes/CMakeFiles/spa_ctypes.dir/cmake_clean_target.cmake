file(REMOVE_RECURSE
  "libspa_ctypes.a"
)
