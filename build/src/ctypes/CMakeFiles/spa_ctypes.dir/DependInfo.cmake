
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctypes/Compat.cpp" "src/ctypes/CMakeFiles/spa_ctypes.dir/Compat.cpp.o" "gcc" "src/ctypes/CMakeFiles/spa_ctypes.dir/Compat.cpp.o.d"
  "/root/repo/src/ctypes/Flatten.cpp" "src/ctypes/CMakeFiles/spa_ctypes.dir/Flatten.cpp.o" "gcc" "src/ctypes/CMakeFiles/spa_ctypes.dir/Flatten.cpp.o.d"
  "/root/repo/src/ctypes/Layout.cpp" "src/ctypes/CMakeFiles/spa_ctypes.dir/Layout.cpp.o" "gcc" "src/ctypes/CMakeFiles/spa_ctypes.dir/Layout.cpp.o.d"
  "/root/repo/src/ctypes/TypeTable.cpp" "src/ctypes/CMakeFiles/spa_ctypes.dir/TypeTable.cpp.o" "gcc" "src/ctypes/CMakeFiles/spa_ctypes.dir/TypeTable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/spa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
