file(REMOVE_RECURSE
  "CMakeFiles/spa_ctypes.dir/Compat.cpp.o"
  "CMakeFiles/spa_ctypes.dir/Compat.cpp.o.d"
  "CMakeFiles/spa_ctypes.dir/Flatten.cpp.o"
  "CMakeFiles/spa_ctypes.dir/Flatten.cpp.o.d"
  "CMakeFiles/spa_ctypes.dir/Layout.cpp.o"
  "CMakeFiles/spa_ctypes.dir/Layout.cpp.o.d"
  "CMakeFiles/spa_ctypes.dir/TypeTable.cpp.o"
  "CMakeFiles/spa_ctypes.dir/TypeTable.cpp.o.d"
  "libspa_ctypes.a"
  "libspa_ctypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_ctypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
