# Empty compiler generated dependencies file for spa_workload.
# This may be replaced when dependencies are built.
