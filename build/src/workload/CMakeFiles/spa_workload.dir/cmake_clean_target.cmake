file(REMOVE_RECURSE
  "libspa_workload.a"
)
