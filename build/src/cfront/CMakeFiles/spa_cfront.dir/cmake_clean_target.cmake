file(REMOVE_RECURSE
  "libspa_cfront.a"
)
