# Empty compiler generated dependencies file for spa_cfront.
# This may be replaced when dependencies are built.
