file(REMOVE_RECURSE
  "CMakeFiles/spa_cfront.dir/Lexer.cpp.o"
  "CMakeFiles/spa_cfront.dir/Lexer.cpp.o.d"
  "CMakeFiles/spa_cfront.dir/Parser.cpp.o"
  "CMakeFiles/spa_cfront.dir/Parser.cpp.o.d"
  "libspa_cfront.a"
  "libspa_cfront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_cfront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
