//===--- Solver.cpp -------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pta/Solver.h"

#include "support/Diagnostics.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <tuple>

using namespace spa;

Solver::Solver(NormProgram &Prog, FieldModel &Model, SolverOptions Opts)
    : Prog(Prog), Model(Model), Opts(Opts) {}

Solver::NodeFacts &Solver::factsOf(NodeId Node) {
  NodeFacts &F = Facts.grow(canon(Node).index());
  // Freshly grown slots are default (sorted) sets; bind them to the run's
  // representation policy before any fact lands. No-op once adopted.
  if (F.Set.repr() != Opts.PointsTo)
    F.Set.adoptRepr(Opts.PointsTo, &Model.nodes());
  return F;
}

const PtsSet &Solver::pointsTo(NodeId Node) const {
  static const PtsSet Empty;
  NodeId C = canon(Node);
  if (C.index() >= Facts.size())
    return Empty;
  return Facts[C.index()].Set;
}

bool Solver::addEdge(NodeId From, NodeId To) {
  NodeFacts &F = factsOf(From);
  if (!F.Set.insert(To))
    return false;
  F.Log.push_back(To);
  noteChanged(From);
  return true;
}

void Solver::noteRead(ObjectId Obj) {
  if (!WorklistActive || CurrentStmt < 0 || !Obj.isValid())
    return;
  // Each (statement, object) pair registers exactly once, guarded by a
  // per-statement sorted flat set instead of a linear scan of the
  // dependents list (which was quadratic on statement-heavy programs).
  if (!StmtState[CurrentStmt].Reads.insert(Obj))
    return;
  // Registration lands on the object's dependents class: after a cycle
  // collapse the merged objects share one list (spliceDependents), so a
  // change to the shared set re-queues readers of every merged node.
  ObjectId C = canonObj(Obj);
  if (C.index() >= DependentsByObject.size())
    DependentsByObject.resize(C.index() + 1);
  DependentsByObject[C.index()].push_back(CurrentStmt);
}

void Solver::queueDependents(ObjectId Obj, bool IncludeDead) {
  if (!WorklistActive || !Obj.isValid())
    return;
  ObjectId C = canonObj(Obj);
  if (C.index() >= DependentsByObject.size())
    return;
  for (int32_t StmtIdx : DependentsByObject[C.index()]) {
    if (StmtQueued[StmtIdx])
      continue;
    if (!IncludeDead && StmtDead[StmtIdx])
      continue;
    StmtQueued[StmtIdx] = 1;
    if (SccActive) {
      PrioWorklist.emplace(StmtRank[StmtIdx], StmtIdx);
      if (PrioWorklist.size() > Stats.WorklistHighWater)
        Stats.WorklistHighWater = PrioWorklist.size();
    } else {
      Worklist.push_back(StmtIdx);
      if (Worklist.size() > Stats.WorklistHighWater)
        Stats.WorklistHighWater = Worklist.size();
    }
  }
}

void Solver::noteChanged(NodeId Node) {
  if (!WorklistActive)
    return;
  queueDependents(Model.nodes().objectOf(Node));
}

uint64_t Solver::numEdges() const {
  if (NodeReps.identity()) {
    uint64_t Total = 0;
    Facts.forEach([&Total](const NodeFacts &F) { Total += F.Set.size(); });
    return Total;
  }
  // With collapsed cycles the shared set is stored once but belongs to
  // every member node; count per store node so the total matches the
  // other engines edge for edge.
  uint64_t Total = 0;
  for (uint32_t I = 0, N = static_cast<uint32_t>(Model.nodes().size());
       I < N; ++I)
    Total += pointsTo(NodeId(I)).size();
  return Total;
}

bool Solver::joinPair(NodeId D, NodeId S) {
  if (SccActive) {
    D = canon(D);
    S = canon(S);
    // A collapsed cycle shares one set: joining it into itself is a
    // permanent no-op, and recording the self-edge would be noise.
    if (D == S)
      return false;
    if (CopyGraph.addEdge(S, D)) {
      ++Stats.CopyEdges;
      if (CurrentStmt >= 0)
        StmtState[CurrentStmt].CopyDsts.insert(D);
    }
  }
  if (deltaActive()) {
    NodeFacts &Src = factsOf(S);
    size_t End = Src.Log.size();
    StmtSolveState &St = StmtState[CurrentStmt];
    uint64_t Key = pairKey(D, S);
    auto It = St.Cursor.find(Key);
    size_t Cur = It == St.Cursor.end() ? 0 : It->second;
    if (Cur >= End)
      return false;
    (Cur == 0 ? ++Stats.FullPropagations : ++Stats.DeltaPropagations);
    bool Changed = false;
    // Index-based: when D's log is S's log (self pair) addEdge appends to
    // the vector being walked; entries past End are consumed on re-visit
    // (the statement is registered on S's object, so it re-queues).
    for (size_t I = Cur; I < End; ++I)
      if (addEdge(D, Src.Log[I]))
        Changed = true;
    St.Cursor[Key] = static_cast<uint32_t>(End);
    return Changed;
  }
  // Offline preprocessing pre-merges nodes under every engine, so the
  // self-join test must compare classes, not raw ids.
  if (canon(D) == canon(S))
    return false; // joining a set into itself cannot change it
  ++Stats.FullPropagations;
  NodeFacts &Dst = factsOf(D);
  const NodeFacts &Src = factsOf(S);
  if (Dst.Set.insertAll(Src.Set, &Dst.Log) == 0)
    return false;
  noteChanged(D);
  return true;
}

void Solver::noteSiteMismatch() {
  if (ActiveStmt && ActiveStmt->DerefSite >= 0 &&
      static_cast<size_t>(ActiveStmt->DerefSite) < Events.size())
    Events[ActiveStmt->DerefSite].Mismatch = true;
}

void Solver::markFreed(ObjectId Obj, SourceLoc FreeLoc) {
  if (!Obj.isValid() || Obj == ExternObj ||
      Prog.object(Obj).Kind != ObjectKind::Heap)
    return;
  if (Freed.insert(Obj)) {
    FreedAt.emplace(Obj, FreeLoc);
    return;
  }
  // Freed again at another site: keep the earliest site in the file. The
  // engines visit statements in different orders, so "first marked" would
  // be engine-dependent; the byte offset is a total order over the one
  // translation unit (line/column alone tie on synthesized locations).
  SourceLoc &Kept = FreedAt[Obj];
  if (std::tie(FreeLoc.Offset, FreeLoc.Line, FreeLoc.Column) <
      std::tie(Kept.Offset, Kept.Line, Kept.Column))
    Kept = FreeLoc;
}

void Solver::setSiteFlowVerdict(size_t SiteIdx,
                                const IdSet<ObjectTag> &InvalidatedBefore) {
  if (SiteIdx >= Events.size())
    return;
  SiteEvents &E = Events[SiteIdx];
  E.FlowRefined = true;
  E.InvalidatedBefore.insertAll(InvalidatedBefore);
}

bool Solver::removeEdgeForMutation(NodeId From, NodeId To) {
  NodeId C = canon(From);
  if (C.index() >= Facts.size())
    return false;
  NodeFacts &F = Facts[C.index()];
  // The stored member may be any node of To's class: facts are inserted
  // with raw ids, and a collapse (offline or online) after insertion does
  // not rewrite them. Try the raw id first, then scan for a
  // canon-equivalent member.
  NodeId Stored = To;
  if (!F.Set.erase(Stored)) {
    if (NodeReps.identity())
      return false;
    NodeId CT = canon(To);
    Stored = NodeId();
    for (NodeId M : F.Set)
      if (canon(M) == CT) {
        Stored = M;
        break;
      }
    if (!Stored.isValid() || !F.Set.erase(Stored))
      return false;
  }
  auto It = std::find(F.Log.begin(), F.Log.end(), Stored);
  if (It != F.Log.end())
    F.Log.erase(It);
  // Erasing from the log shifts later entries under every delta cursor
  // into it, and memoized resolve pair lists may still name the fact's
  // statement pair: drop all incremental per-statement state so a resumed
  // solve recomputes from scratch instead of replaying stale positions.
  // Post-convergence (the harness's normal use) the state is already
  // released and this is a no-op.
  for (StmtSolveState &St : StmtState) {
    St.Cursor.clear();
    St.Resolve.clear();
    St.SmearCursor.clear();
  }
  return true;
}

SourceLoc Solver::freedAt(ObjectId Obj) const {
  auto It = FreedAt.find(Obj);
  return It == FreedAt.end() ? SourceLoc() : It->second;
}

void Solver::seedOfflineMerges(UnionFind<NodeTag> Map, double Seconds) {
  NodeReps = std::move(Map);
  OfflineMergedNodes = NodeReps.merges();
  OfflineSecondsSpent = Seconds;
  if (NodeReps.identity())
    return;
  // Route each merged node's object through one dependents class, exactly
  // as an online collapse would splice them: a statement reading any
  // member node's object must re-queue when the shared set changes. The
  // dependents lists themselves are still empty here (the solve has not
  // started), so uniting the classes is the whole job.
  for (uint32_t I = 0, N = static_cast<uint32_t>(Model.nodes().size());
       I < N; ++I) {
    NodeId Rep = NodeReps.find(NodeId(I));
    if (Rep.index() == I)
      continue;
    ObjectId A = Model.nodes().objectOf(NodeId(I));
    ObjectId B = Model.nodes().objectOf(Rep);
    if (A != B)
      DepObjReps.unite(canonObj(A), canonObj(B));
  }
}

bool Solver::allPairsSelf(NodeId Dst, NodeId Src) const {
  const StmtSolveState &St = StmtState[CurrentStmt];
  auto It = St.Resolve.find(pairKey(Dst, Src));
  if (It == St.Resolve.end())
    return false;
  for (const auto &[D, S] : It->second.Pairs)
    if (canonNC(D) != canonNC(S))
      return false;
  return true;
}

void Solver::markDeadIfSelfCopy(NodeId Dst, NodeId Src) {
  if (!deltaActive())
    return;
  StmtDead[CurrentStmt] = allPairsSelf(Dst, Src);
}

void Solver::markDeadIfSelfCall(const NormStmt &S) {
  if (!deltaActive() || S.IndirectCallee.isValid() ||
      !S.DirectCallee.isValid())
    return;
  const NormFunction &Fn = Prog.func(S.DirectCallee);
  if (!Fn.IsDefined)
    return;
  size_t NumParams = Fn.Params.size();
  bool Dead = true;
  for (size_t I = 0; I < S.Args.size() && Dead; ++I) {
    if (Prog.object(S.Args[I]).Kind == ObjectKind::Constant)
      continue;
    if (I < NumParams) {
      ObjectId Param = Fn.Params[I];
      Dead = allPairsSelf(normalizeObj(Param), normalizeObj(S.Args[I]));
    } else if (Fn.VarargsObj.isValid()) {
      Dead = false;
    }
  }
  if (Dead && S.RetDst.isValid() && Fn.RetObj.isValid())
    Dead = allPairsSelf(normalizeObj(S.RetDst), normalizeObj(Fn.RetObj));
  StmtDead[CurrentStmt] = Dead;
}

bool Solver::flowResolve(NodeId Dst, NodeId Src, TypeId Tau) {
  ObjectId SrcObj = Model.nodes().objectOf(Src);
  noteRead(SrcObj); // the pairs read the source side
  if (deltaActive()) {
    // Memoize the pair list: recomputing it dominates re-visit cost, and
    // it only changes when the source object's node set grows (which
    // re-queues this statement via the OnNewNode hook, so the stale count
    // is always observed on the next visit).
    StmtSolveState &St = StmtState[CurrentStmt];
    auto [It, Inserted] = St.Resolve.try_emplace(pairKey(Dst, Src));
    ResolveCache &C = It->second;
    uint32_t SrcCount =
        static_cast<uint32_t>(Model.nodes().nodesOfObject(SrcObj).size());
    if (Inserted || C.SrcNodes != SrcCount) {
      C.Pairs.clear();
      // Mismatch is a pure function of the pair, so recording it only when
      // the pair list is (re)computed still sets the sticky flag: every
      // statement computes its own list at least once.
      if (!Model.resolve(Dst, Src, Tau, C.Pairs))
        noteSiteMismatch();
      // resolve may itself materialize source nodes (self copies).
      C.SrcNodes =
          static_cast<uint32_t>(Model.nodes().nodesOfObject(SrcObj).size());
    }
    bool Changed = false;
    for (const auto &[D, S] : C.Pairs)
      if (joinPair(D, S))
        Changed = true;
    return Changed;
  }
  std::vector<std::pair<NodeId, NodeId>> Pairs;
  if (!Model.resolve(Dst, Src, Tau, Pairs))
    noteSiteMismatch();
  bool Changed = false;
  for (const auto &[D, S] : Pairs)
    if (joinPair(D, S))
      Changed = true;
  return Changed;
}

bool Solver::flowPtrArith(NodeId Dst, const PtsSet &Targets) {
  if (Opts.TrackUnknown) {
    // Section 4.2.1's alternative: record a (possibly) corrupted pointer
    // instead of smearing.
    return !Targets.empty() && addEdge(Dst, unknownNode());
  }
  if (Targets.empty())
    return false;
  ++Stats.FullPropagations;
  // Snapshot: Targets may alias pts(Dst) (library summaries pass a live
  // reference), and the smear below adds edges while iterating.
  std::vector<NodeId> Snapshot(Targets.begin(), Targets.end());
  bool Changed = false;
  std::vector<NodeId> All;
  for (NodeId Target : Snapshot) {
    if (isUnknownNode(Target))
      continue;
    // The smear enumerates the target object's (stateful) node set.
    noteRead(Model.nodes().objectOf(Target));
    All.clear();
    Model.arithNodes(Target, Opts.StrideArith, All);
    for (NodeId Node : All)
      if (addEdge(Dst, Node))
        Changed = true;
  }
  return Changed;
}

bool Solver::flowPtrArithDelta(NodeId Dst, NodeId Op) {
  // Canonical ids keep the cursor key stable: a representative's log is
  // append-only, and a merged node's key simply goes stale (the fresh key
  // starts at cursor 0 — a sound, idempotent full re-walk).
  Dst = canon(Dst);
  Op = canon(Op);
  NodeFacts &Src = factsOf(Op);
  size_t End = Src.Log.size();
  StmtSolveState &St = StmtState[CurrentStmt];
  uint64_t Key = pairKey(Dst, Op);
  auto It = St.Cursor.find(Key);
  size_t Cur = It == St.Cursor.end() ? 0 : It->second;
  if (Cur >= End)
    return false;
  (Cur == 0 ? ++Stats.FullPropagations : ++Stats.DeltaPropagations);
  St.Cursor[Key] = static_cast<uint32_t>(End);
  if (Opts.TrackUnknown)
    return addEdge(Dst, unknownNode());
  bool Changed = false;
  std::vector<NodeId> All;
  for (size_t I = Cur; I < End; ++I) {
    NodeId Target = Src.Log[I];
    if (isUnknownNode(Target))
      continue;
    ObjectId Obj = Model.nodes().objectOf(Target);
    noteRead(Obj);
    if (Opts.StrideArith && Model.targetInsideArray(Target)) {
      if (addEdge(Dst, Target))
        Changed = true;
      continue;
    }
    if (St.SmearCursor.count(Obj.index()))
      continue; // object already smeared; later growth replays separately
    All.clear();
    Model.arithNodes(Target, Opts.StrideArith, All);
    for (NodeId Node : All)
      if (addEdge(Dst, Node))
        Changed = true;
    St.SmearCursor[Obj.index()] =
        static_cast<uint32_t>(Model.nodes().nodesOfObject(Obj).size());
  }
  return Changed;
}

NodeId Solver::unknownNode() {
  if (!UnknownObj.isValid())
    UnknownObj = Prog.makeObject(ObjectKind::Unknown,
                                 Prog.Strings.intern("$unknown"),
                                 Prog.Types.intType(), SourceLoc());
  return Model.normalizeLoc(UnknownObj, {});
}

bool Solver::isUnknownNode(NodeId Node) const {
  return UnknownObj.isValid() &&
         Model.nodes().objectOf(Node) == UnknownObj;
}

const PtsSet &Solver::derefTargets(const DerefSite &Site) {
  return pointsTo(normalizeObj(Site.Ptr));
}

std::vector<FuncId> Solver::calleesOf(const NormStmt &Call) {
  std::vector<FuncId> Out;
  if (Call.DirectCallee.isValid()) {
    Out.push_back(Call.DirectCallee);
    return Out;
  }
  if (!Call.IndirectCallee.isValid())
    return Out;
  for (NodeId Target : pointsTo(normalizeObj(Call.IndirectCallee))) {
    ObjectId Obj = Model.nodes().objectOf(Target);
    const NormObject &Info = Prog.object(Obj);
    if (Info.Kind == ObjectKind::Function && Info.AsFunction.isValid())
      Out.push_back(Info.AsFunction);
  }
  return Out;
}

ObjectId Solver::externObject() {
  if (!ExternObj.isValid())
    ExternObj = Prog.makeObject(
        ObjectKind::Heap, Prog.Strings.intern("$extern"),
        Prog.Types.getArray(Prog.Types.charType(), 0), SourceLoc());
  return ExternObj;
}

bool Solver::bindCall(const NormStmt &S, FuncId Callee) {
  const NormFunction &Fn = Prog.func(Callee);

  if (!Fn.IsDefined) {
    if (!Opts.UseLibrarySummaries)
      return false;
    // Summaries may read any argument's facts.
    for (ObjectId Arg : S.Args)
      noteRead(Arg);
    return Lib.apply(Prog.Strings.text(Fn.Name), S, *this);
  }

  bool Changed = false;
  size_t NumParams = Fn.Params.size();
  for (size_t I = 0; I < S.Args.size(); ++I) {
    if (Prog.object(S.Args[I]).Kind == ObjectKind::Constant)
      continue; // literal arguments carry no points-to facts
    if (I < NumParams) {
      ObjectId Param = Fn.Params[I];
      if (flowResolve(normalizeObj(Param), normalizeObj(S.Args[I]),
                      Prog.object(Param).Ty))
        Changed = true;
    } else if (Fn.VarargsObj.isValid()) {
      // Extra arguments pool into the callee's "..." pseudo-variable. This
      // is a plain join over every node of the argument object (no typed
      // resolve: a varargs pool has no declared layout to match against,
      // and it should not pollute the mismatch statistics).
      NodeId Va = normalizeObj(Fn.VarargsObj);
      noteRead(S.Args[I]);
      const std::vector<NodeId> &ArgNodes =
          Model.nodes().nodesOfObject(S.Args[I]);
      size_t NumNodes = ArgNodes.size();
      for (size_t K = 0; K < NumNodes; ++K)
        if (joinPair(Va, ArgNodes[K]))
          Changed = true;
    }
  }
  if (S.RetDst.isValid() && Fn.RetObj.isValid()) {
    if (flowResolve(normalizeObj(S.RetDst), normalizeObj(Fn.RetObj),
                    Prog.object(S.RetDst).Ty))
      Changed = true;
  }
  return Changed;
}

bool Solver::applyCall(const NormStmt &S) {
  if (S.IndirectCallee.isValid())
    noteRead(S.IndirectCallee);
  bool Changed = false;
  for (FuncId Callee : calleesOf(S))
    if (bindCall(S, Callee))
      Changed = true;
  markDeadIfSelfCall(S);
  return Changed;
}

bool Solver::applyStmt(const NormStmt &S) {
  ActiveStmt = &S;
  bool Changed = applyStmtImpl(S);
  ActiveStmt = nullptr;
  unsigned Rule = static_cast<unsigned>(S.Op);
  if (Rule < NumSolverRules) {
    ++Stats.RuleApplied[Rule];
    if (Changed)
      ++Stats.RuleChanged[Rule];
  }
  return Changed;
}

bool Solver::applyStmtImpl(const NormStmt &S) {
  switch (S.Op) {
  case NormOp::AddrOf: {
    // Rule 1: pointsTo(normalize(s), normalize(t.beta)).
    NodeId Dst = normalizeObj(S.Dst);
    NodeId Target = Model.normalizeLoc(S.Src, S.Path);
    return addEdge(Dst, Target);
  }
  case NormOp::AddrOfDeref: {
    // Rule 2: for each pointsTo(p, t-hat), for each n in
    // lookup(tau_p, alpha, t-hat): pointsTo(normalize(s), n).
    NodeId Dst = normalizeObj(S.Dst);
    bool Changed = false;
    std::vector<NodeId> Fields;
    noteRead(S.Src);
    NodeId Ptr = normalizeObj(S.Src);
    NodeFacts &PF = factsOf(Ptr);
    size_t Begin = 0, End = PF.Log.size();
    if (deltaActive()) {
      // lookup() is a pure function of the target, so previously seen
      // targets never need re-examination: walk only the unseen suffix.
      // Canonical ids keep the cursor valid across cycle collapses: the
      // rep's log is append-only, a merged pointer's key goes stale and
      // the fresh key re-walks the shared log from 0 (idempotent).
      StmtSolveState &St = StmtState[CurrentStmt];
      uint64_t Key = pairKey(canon(Dst), canon(Ptr));
      auto It = St.Cursor.find(Key);
      if (It != St.Cursor.end())
        Begin = It->second;
      if (Begin < End)
        (Begin == 0 ? ++Stats.FullPropagations : ++Stats.DeltaPropagations);
      St.Cursor[Key] = static_cast<uint32_t>(End);
    }
    for (size_t I = Begin; I < End; ++I) {
      Fields.clear();
      bool Matched = Model.lookup(S.DeclPointeeTy, S.Path, PF.Log[I], Fields);
      if (S.DerefSite >= 0 &&
          static_cast<size_t>(S.DerefSite) < Events.size()) {
        SiteEvents &E = Events[S.DerefSite];
        if (!Matched)
          E.Mismatch = true;
        if (Fields.empty())
          E.Truncated = true;
      }
      for (NodeId Field : Fields)
        if (addEdge(Dst, Field))
          Changed = true;
    }
    return Changed;
  }
  case NormOp::Copy: {
    // Rule 3: resolve(normalize(s), normalize(t.beta), tau_s).
    NodeId Dst = normalizeObj(S.Dst);
    NodeId Src = Model.normalizeLoc(S.Src, S.Path);
    bool Changed = flowResolve(Dst, Src, S.LhsTy);
    markDeadIfSelfCopy(Dst, Src);
    return Changed;
  }
  case NormOp::Load: {
    // Rule 4: for each pointsTo(q, t-hat):
    //   resolve(normalize(s), t-hat, tau_s).
    // Every target is revisited (the resolve pairs read other sets whose
    // growth the target walk can't see); with delta propagation a clean
    // revisit costs only cursor probes.
    bool Changed = false;
    NodeId Dst = normalizeObj(S.Dst);
    noteRead(S.Src);
    NodeFacts &PF = factsOf(normalizeObj(S.Src));
    size_t End = PF.Log.size();
    for (size_t I = 0; I < End; ++I)
      if (flowResolve(Dst, PF.Log[I], S.LhsTy))
        Changed = true;
    return Changed;
  }
  case NormOp::Store: {
    // Rule 5: for each pointsTo(p, s-hat):
    //   resolve(s-hat, normalize(t), tau_p-pointee).
    bool Changed = false;
    NodeId Src = normalizeObj(S.Src);
    noteRead(S.Dst);
    NodeFacts &PF = factsOf(normalizeObj(S.Dst));
    size_t End = PF.Log.size();
    for (size_t I = 0; I < End; ++I)
      if (flowResolve(PF.Log[I], Src, S.LhsTy))
        Changed = true;
    return Changed;
  }
  case NormOp::PtrArith: {
    // Assumption 1: the result may point to any sub-field of any object an
    // operand points into.
    if (!Opts.HandlePtrArith)
      return false;
    bool Changed = false;
    NodeId Dst = normalizeObj(S.Dst);
    if (deltaActive()) {
      // First replay objects smeared on earlier visits whose node set has
      // grown since, then smear the operands' unseen targets.
      StmtSolveState &St = StmtState[CurrentStmt];
      for (auto &Entry : St.SmearCursor) {
        const std::vector<NodeId> &Nodes =
            Model.nodes().nodesOfObject(ObjectId(Entry.first));
        size_t End = Nodes.size();
        for (size_t I = Entry.second; I < End; ++I)
          if (addEdge(Dst, Nodes[I]))
            Changed = true;
        Entry.second = static_cast<uint32_t>(End);
      }
      for (ObjectId Operand : S.ArithSrcs) {
        noteRead(Operand);
        if (flowPtrArithDelta(Dst, normalizeObj(Operand)))
          Changed = true;
      }
    } else {
      for (ObjectId Operand : S.ArithSrcs) {
        noteRead(Operand);
        if (flowPtrArith(Dst, pointsTo(normalizeObj(Operand))))
          Changed = true;
      }
    }
    return Changed;
  }
  case NormOp::Call:
    return applyCall(S);
  }
  return false;
}

void Solver::reportNonConvergence(const char *Engine) {
  Stats.Converged = false;
  if (Opts.Diags)
    Opts.Diags->warning(
        SourceLoc(),
        std::string("solver stopped before reaching a fixpoint (") + Engine +
            " iteration budget exhausted); points-to results are incomplete");
}

void Solver::solveNaive() {
  bool Changed = true;
  while (Changed) {
    if (Stats.Rounds >= Opts.MaxIterations) {
      reportNonConvergence("naive");
      return;
    }
    Changed = false;
    ++Stats.Rounds;
    for (const NormStmt &S : Prog.Stmts) {
      ++Stats.StmtsApplied;
      if (applyStmt(S))
        Changed = true;
    }
  }
  Stats.Converged = true;
}

void Solver::solveWorklist() {
  WorklistActive = true;
  size_t N = Prog.Stmts.size();
  StmtState.assign(N, StmtSolveState());
  DependentsByObject.clear();
  // Materializing a node in an object invalidates any statement that
  // enumerated that object's nodes (Offsets artificial offsets).
  Model.nodes().setOnNewNode(
      [this](ObjectId Obj) { queueDependents(Obj, /*IncludeDead=*/true); });
  StmtQueued.assign(N, 1);
  StmtDead.assign(N, 0);
  Worklist.clear();
  // Push in reverse so the first pop processes statement 0.
  for (size_t I = N; I-- > 0;)
    Worklist.push_back(static_cast<int32_t>(I));
  Stats.WorklistHighWater = Worklist.size();

  uint64_t Budget = uint64_t(Opts.MaxIterations) * (N ? N : 1);
  bool Fixpoint = true;
  while (!Worklist.empty()) {
    if (Stats.StmtsApplied >= Budget) {
      Fixpoint = false;
      break;
    }
    int32_t Idx = Worklist.back();
    Worklist.pop_back();
    StmtQueued[Idx] = 0;
    CurrentStmt = Idx;
    ++Stats.Pops;
    ++Stats.StmtsApplied;
    applyStmt(Prog.Stmts[Idx]);
  }
  CurrentStmt = -1;
  WorklistActive = false;
  Model.nodes().setOnNewNode(nullptr);
  Stats.BytesHighWater = estimateStateBytes();
  releaseSolveState();
  if (Fixpoint)
    Stats.Converged = true;
  else
    reportNonConvergence("worklist");
}

void Solver::solveCycleElim() {
  WorklistActive = true;
  SccActive = true;
  SweepBackoff = 1;
  size_t N = Prog.Stmts.size();
  StmtState.assign(N, StmtSolveState());
  StmtRank.assign(N, 0);
  DependentsByObject.clear();
  Model.nodes().setOnNewNode(
      [this](ObjectId Obj) { queueDependents(Obj, /*IncludeDead=*/true); });
  StmtQueued.assign(N, 1);
  StmtDead.assign(N, 0);
  PrioWorklist = {};
  for (size_t I = 0; I < N; ++I)
    PrioWorklist.emplace(0, static_cast<int32_t>(I));
  Stats.WorklistHighWater = PrioWorklist.size();

  uint64_t Budget = uint64_t(Opts.MaxIterations) * (N ? N : 1);
  bool Fixpoint = true;
  for (;;) {
    while (!PrioWorklist.empty()) {
      if (Stats.StmtsApplied >= Budget) {
        Fixpoint = false;
        break;
      }
      // Sweeps run between statement applications only, so no statement
      // holds a reference into facts that a collapse rewrites.
      maybeSweepSccs();
      int32_t Idx = PrioWorklist.top().second;
      PrioWorklist.pop();
      StmtQueued[Idx] = 0;
      CurrentStmt = Idx;
      ++Stats.Pops;
      ++Stats.PriorityPops;
      ++Stats.StmtsApplied;
      applyStmt(Prog.Stmts[Idx]);
      CurrentStmt = -1;
    }
    if (!Fixpoint)
      break;
    // Drain-time final sweep: collapse whatever cycles the growth
    // heuristic left over. A collapse re-queues readers of the merged
    // nodes (their cursors may be stale), so drain once more; when a
    // sweep finds nothing to collapse the fixpoint is final.
    if (!maybeSweepSccs(/*Force=*/true))
      break;
  }
  CurrentStmt = -1;
  WorklistActive = false;
  SccActive = false;
  Model.nodes().setOnNewNode(nullptr);
  Stats.BytesHighWater = estimateStateBytes();
  releaseSolveState();
  if (Fixpoint)
    Stats.Converged = true;
  else
    reportNonConvergence("cycle-elimination");
}

void Solver::captureStmtNodes(const NormStmt &S, int32_t Idx) {
  // Called right after the statement's first sequential application in
  // solvePar: every node it names was just materialized, so these calls
  // are pure lookups. Ops whose node set the gather phase cannot reason
  // about (AddrOf runs once; Call re-resolves callees) stay uncaptured
  // and are deferred forever — they are rare on the hot path.
  StmtNodes &NC = StmtNodeCache[Idx];
  switch (S.Op) {
  case NormOp::Copy:
    NC.Dst = normalizeObj(S.Dst);
    NC.Src = Model.normalizeLoc(S.Src, S.Path);
    NC.Valid = true;
    break;
  case NormOp::Load:
  case NormOp::Store:
  case NormOp::AddrOfDeref:
    NC.Dst = normalizeObj(S.Dst);
    NC.Src = normalizeObj(S.Src);
    NC.Valid = true;
    break;
  case NormOp::PtrArith:
    if (!Opts.HandlePtrArith)
      break; // the statement never ran; capturing would materialize nodes
    NC.Dst = normalizeObj(S.Dst);
    NC.Ops.clear();
    for (ObjectId Operand : S.ArithSrcs)
      NC.Ops.push_back(normalizeObj(Operand));
    NC.Valid = true;
    break;
  case NormOp::AddrOf:
  case NormOp::Call:
    break;
  }
}

bool Solver::gatherJoin(const StmtSolveState &St, NodeId D, NodeId S,
                        GatherResult &G) const {
  D = canonNC(D);
  S = canonNC(S);
  if (D == S)
    return true; // shared set: a permanent no-op, exactly like joinPair
  // The copy edge must already be recorded: after a collapse the pair's
  // canonical endpoints change and the first re-join records the fresh
  // edge (plus the statement's CopyDsts entry) — a mutation, so defer.
  if (!CopyGraph.hasEdge(S, D))
    return false;
  const NodeFacts *SF = S.index() < Facts.size() ? &Facts[S.index()] : nullptr;
  size_t End = SF ? SF->Log.size() : 0;
  uint64_t Key = pairKey(D, S);
  auto It = St.Cursor.find(Key);
  size_t Cur = It == St.Cursor.end() ? 0 : It->second;
  if (Cur >= End)
    return true; // nothing unseen; the sequential path would no-op too
  G.Cursors.push_back({Key, static_cast<uint32_t>(End), Cur == 0});
  G.Work += End - Cur;
  const NodeFacts *DF = D.index() < Facts.size() ? &Facts[D.index()] : nullptr;
  for (size_t I = Cur; I < End; ++I) {
    NodeId T = SF->Log[I];
    // contains() is a pure probe for every representation (the bitmap
    // repr queries the shared intern table with find(), never intern()).
    if (!DF || !DF->Set.contains(T))
      G.NewFacts.emplace_back(D, T);
  }
  return true;
}

bool Solver::gatherResolve(const StmtSolveState &St, NodeId Dst, NodeId Src,
                           GatherResult &G) const {
  // Only the memoized pair list is usable read-only: recomputing it calls
  // Model.resolve, which may materialize nodes. A missing or stale cache
  // (the source object's node set grew) defers the whole statement. Cache
  // presence also guarantees noteRead already registered the source
  // object — flowResolve registers before it memoizes.
  auto It = St.Resolve.find(pairKey(Dst, Src));
  if (It == St.Resolve.end())
    return false;
  const ResolveCache &C = It->second;
  ObjectId SrcObj = Model.nodes().objectOf(Src);
  if (C.SrcNodes != Model.nodes().nodesOfObject(SrcObj).size())
    return false;
  for (const auto &[D, S] : C.Pairs)
    if (!gatherJoin(St, D, S, G))
      return false;
  return true;
}

bool Solver::gatherStmt(const NormStmt &S, int32_t Idx,
                        GatherResult &G) const {
  const StmtNodes &NC = StmtNodeCache[Idx];
  if (!NC.Valid)
    return false; // first visit: run sequentially, then capture
  const StmtSolveState &St = StmtState[Idx];
  auto logOf = [this](NodeId N) -> const std::vector<NodeId> * {
    NodeId C = canonNC(N);
    return C.index() < Facts.size() ? &Facts[C.index()].Log : nullptr;
  };
  switch (S.Op) {
  case NormOp::Copy:
    return gatherResolve(St, NC.Dst, NC.Src, G);
  case NormOp::Load: {
    if (!St.Reads.contains(S.Src))
      return false;
    const std::vector<NodeId> *Log = logOf(NC.Src);
    size_t End = Log ? Log->size() : 0;
    G.Work += End;
    for (size_t I = 0; I < End; ++I)
      if (!gatherResolve(St, NC.Dst, (*Log)[I], G))
        return false;
    return true;
  }
  case NormOp::Store: {
    if (!St.Reads.contains(S.Dst))
      return false;
    const std::vector<NodeId> *Log = logOf(NC.Dst);
    size_t End = Log ? Log->size() : 0;
    G.Work += End;
    for (size_t I = 0; I < End; ++I)
      if (!gatherResolve(St, (*Log)[I], NC.Src, G))
        return false;
    return true;
  }
  case NormOp::AddrOfDeref: {
    // lookup() may materialize field nodes, so only the clean re-visit —
    // no unseen pointer targets — is gatherable, as a detected no-op.
    if (!St.Reads.contains(S.Src))
      return false;
    const std::vector<NodeId> *Log = logOf(NC.Src);
    size_t End = Log ? Log->size() : 0;
    auto It = St.Cursor.find(pairKey(canonNC(NC.Dst), canonNC(NC.Src)));
    size_t Cur = It == St.Cursor.end() ? 0 : It->second;
    ++G.Work;
    return Cur >= End;
  }
  case NormOp::PtrArith: {
    // Same shape: the smear materializes nodes, so gather only proves the
    // re-visit is a no-op (no smeared object grew, no unseen operand
    // targets) and defers anything that would change state.
    for (const auto &Entry : St.SmearCursor)
      if (Model.nodes().nodesOfObject(ObjectId(Entry.first)).size() !=
          Entry.second)
        return false;
    for (size_t I = 0; I < NC.Ops.size(); ++I) {
      if (!St.Reads.contains(S.ArithSrcs[I]))
        return false;
      NodeId Op = canonNC(NC.Ops[I]);
      const NodeFacts *OF =
          Op.index() < Facts.size() ? &Facts[Op.index()] : nullptr;
      size_t End = OF ? OF->Log.size() : 0;
      auto It = St.Cursor.find(pairKey(canonNC(NC.Dst), Op));
      size_t Cur = It == St.Cursor.end() ? 0 : It->second;
      ++G.Work;
      if (Cur < End)
        return false;
    }
    return true;
  }
  case NormOp::AddrOf:
  case NormOp::Call:
    return false;
  }
  return false;
}

void Solver::commitGather(int32_t Idx, GatherResult &G) {
  const NormStmt &S = Prog.Stmts[Idx];
  ActiveStmt = &S;
  bool Changed = false;
  // Proposals were filtered against the frozen sets; an earlier statement
  // of the same barrier may have inserted one already, which addEdge
  // absorbs. Insertion order is batch order — independent of the thread
  // count, so logs and cursors evolve identically at any N.
  for (const auto &[D, T] : G.NewFacts)
    if (addEdge(D, T))
      Changed = true;
  StmtSolveState &St = StmtState[Idx];
  for (const GatherResult::CursorCommit &C : G.Cursors) {
    // The End captured at gather time, NOT the current log length: facts
    // appended by earlier commits of this barrier stay past the cursor
    // and are consumed on the statement's next visit (it is registered on
    // the source object, so the growth re-queued it).
    St.Cursor[C.Key] = C.End;
    (C.Full ? ++Stats.FullPropagations : ++Stats.DeltaPropagations);
  }
  ActiveStmt = nullptr;
  unsigned Rule = static_cast<unsigned>(S.Op);
  if (Rule < NumSolverRules) {
    ++Stats.RuleApplied[Rule];
    if (Changed)
      ++Stats.RuleChanged[Rule];
  }
}

void Solver::solvePar() {
  WorklistActive = true;
  SccActive = true;
  ParActive = true;
  SweepBackoff = 1;
  unsigned Workers = Opts.Threads
                         ? Opts.Threads
                         : std::max(1u, std::thread::hardware_concurrency());
  Stats.ThreadsUsed = Workers;
  ThreadPool Pool(Workers);
  size_t N = Prog.Stmts.size();
  StmtState.assign(N, StmtSolveState());
  StmtNodeCache.assign(N, StmtNodes());
  StmtRank.assign(N, 0);
  DependentsByObject.clear();
  Model.nodes().setOnNewNode(
      [this](ObjectId Obj) { queueDependents(Obj, /*IncludeDead=*/true); });
  StmtQueued.assign(N, 1);
  StmtDead.assign(N, 0);
  PrioWorklist = {};
  for (size_t I = 0; I < N; ++I)
    PrioWorklist.emplace(0, static_cast<int32_t>(I));
  Stats.WorklistHighWater = PrioWorklist.size();

  std::vector<int32_t> Batch;
  std::vector<GatherResult> Gathers;
  std::vector<uint64_t> WorkPerWorker(Workers, 0);
  double CriticalWork = 0, IdealWork = 0;

  uint64_t Budget = uint64_t(Opts.MaxIterations) * (N ? N : 1);
  bool Fixpoint = true;
  for (;;) {
    while (!PrioWorklist.empty()) {
      if (Stats.StmtsApplied >= Budget) {
        Fixpoint = false;
        break;
      }
      // Sweeps (and the collapses they trigger) run between supersteps
      // only: the gather phase needs canon() frozen, and no statement
      // holds references into facts a collapse rewrites.
      maybeSweepSccs();
      // One superstep: every queued statement of the minimum level. The
      // (level, index) heap pops them in ascending statement order — the
      // canonical commit order of the barrier.
      uint32_t Level = PrioWorklist.top().first;
      Batch.clear();
      while (!PrioWorklist.empty() && PrioWorklist.top().first == Level) {
        int32_t Idx = PrioWorklist.top().second;
        PrioWorklist.pop();
        StmtQueued[Idx] = 0;
        Batch.push_back(Idx);
      }
      Gathers.assign(Batch.size(), GatherResult());
      if (Batch.size() > 1) {
        // Parallel read-only gather. Workers see a frozen solver: facts
        // logs, cursor/resolve maps, the union-find (via the
        // non-compressing walk), and the copy graph are read, nothing is
        // written. Whether a batch gathers depends only on its size —
        // never on the worker count — so the commit trace is identical
        // at any N.
        ++Stats.BarrierMerges;
        std::fill(WorkPerWorker.begin(), WorkPerWorker.end(), 0);
        Pool.run(Batch.size(), [&](size_t I, unsigned W) {
          GatherResult &G = Gathers[I];
          if (gatherStmt(Prog.Stmts[Batch[I]], Batch[I], G))
            G.Deferred = false;
          WorkPerWorker[W] += G.Work + 1;
        });
        uint64_t Max =
            *std::max_element(WorkPerWorker.begin(), WorkPerWorker.end());
        uint64_t Sum = std::accumulate(WorkPerWorker.begin(),
                                       WorkPerWorker.end(), uint64_t(0));
        CriticalWork += double(Max);
        IdealWork += double(Sum) / Workers;
      }
      // Barrier commit, in canonical statement order: gathered proposals
      // first-class through addEdge, deferred statements through the full
      // sequential path (which may record edges, rebuild caches,
      // materialize nodes — all main-thread effects).
      for (size_t I = 0; I < Batch.size(); ++I) {
        if (Stats.StmtsApplied >= Budget) {
          Fixpoint = false;
          break;
        }
        int32_t Idx = Batch[I];
        CurrentStmt = Idx;
        ++Stats.Pops;
        ++Stats.PriorityPops;
        ++Stats.StmtsApplied;
        if (Gathers[I].Deferred) {
          ++Stats.ParDeferred;
          applyStmt(Prog.Stmts[Idx]);
          if (!StmtNodeCache[Idx].Valid)
            captureStmtNodes(Prog.Stmts[Idx], Idx);
        } else {
          ++Stats.ParGathered;
          commitGather(Idx, Gathers[I]);
        }
        CurrentStmt = -1;
      }
      if (!Fixpoint)
        break;
    }
    if (!Fixpoint)
      break;
    // Drain-time final sweep, exactly like the sequential scc engine.
    if (!maybeSweepSccs(/*Force=*/true))
      break;
  }
  CurrentStmt = -1;
  WorklistActive = false;
  SccActive = false;
  ParActive = false;
  Model.nodes().setOnNewNode(nullptr);
  if (IdealWork > 0)
    Stats.ParImbalancePct = 100.0 * (CriticalWork - IdealWork) / IdealWork;
  Stats.BytesHighWater = estimateStateBytes();
  releaseSolveState();
  if (Fixpoint)
    Stats.Converged = true;
  else
    reportNonConvergence("parallel");
}

bool Solver::maybeSweepSccs(bool Force) {
  uint64_t Since = CopyGraph.edgesSinceSweep();
  if (Since == 0)
    return false;
  if (!Force) {
    // Growth heuristic: sweep once the graph gained a quarter of its
    // edges (with a floor so tiny graphs don't sweep on every edge). The
    // back-off multiplier rises while sweeps come back empty — after the
    // offline HVN pass pre-collapsed the cycles, re-scanning the (now
    // mostly acyclic) graph at the base cadence was pure overhead, slow
    // enough to erase hvn's win on the bench matrix.
    uint64_t Threshold =
        std::max<uint64_t>(32, CopyGraph.numEdges() / 4) * SweepBackoff;
    if (Since < Threshold)
      return false;
  }
  ++Stats.SccSweeps;
  ConstraintGraph::SweepResult R =
      CopyGraph.sweep(NodeReps, /*ComputeLevels=*/ParActive);
  for (const std::vector<NodeId> &Cycle : R.Cycles)
    collapseCycle(Cycle);
  recomputeStmtRanks(ParActive ? R.Level : R.TopoRank);
  if (ParActive)
    Stats.Levels = R.NumLevels;
  if (R.Cycles.empty())
    SweepBackoff = std::min<uint64_t>(SweepBackoff * 2, 2);
  else
    SweepBackoff = 1;
  return !R.Cycles.empty();
}

void Solver::collapseCycle(const std::vector<NodeId> &Members) {
  for (size_t I = 1; I < Members.size(); ++I)
    NodeReps.unite(Members[0], Members[I]);
  NodeId Rep = NodeReps.find(Members[0]);
  // Raw Facts slots on purpose: factsOf would resolve every member to the
  // representative mid-merge.
  NodeFacts &RF = Facts.grow(Rep.index());
  if (RF.Set.repr() != Opts.PointsTo)
    RF.Set.adoptRepr(Opts.PointsTo, &Model.nodes());
  ObjectId RepObj = Model.nodes().objectOf(Rep);
  for (NodeId M : Members) {
    if (M == Rep)
      continue;
    ++Stats.NodesMergedOnline;
    NodeFacts &MF = Facts.grow(M.index());
    RF.Set.insertAll(MF.Set, &RF.Log);
    MF.Set = PtsSet();
    MF.Log = std::vector<NodeId>();
    CopyGraph.absorb(Rep, M);
    spliceDependents(RepObj, Model.nodes().objectOf(M));
  }
  ++Stats.SccsCollapsed;
  // The shared set is (at least) the union of the members' sets: every
  // statement reading any member must re-run against it. The splices
  // above put all those readers on the representative object's list.
  queueDependents(RepObj);
}

void Solver::spliceDependents(ObjectId A, ObjectId B) {
  ObjectId CA = canonObj(A), CB = canonObj(B);
  if (CA == CB)
    return;
  DepObjReps.unite(CA, CB);
  ObjectId Rep = canonObj(CA);
  ObjectId Other = (Rep == CA) ? CB : CA;
  if (Other.index() >= DependentsByObject.size())
    return;
  if (Rep.index() >= DependentsByObject.size())
    DependentsByObject.resize(Rep.index() + 1);
  std::vector<int32_t> &Src = DependentsByObject[Other.index()];
  std::vector<int32_t> &Dst = DependentsByObject[Rep.index()];
  Dst.insert(Dst.end(), Src.begin(), Src.end());
  Src = std::vector<int32_t>();
}

void Solver::recomputeStmtRanks(const std::vector<uint32_t> &TopoRank) {
  for (size_t I = 0; I < StmtState.size(); ++I) {
    uint32_t Rank = UINT32_MAX;
    for (NodeId D : StmtState[I].CopyDsts) {
      NodeId C = canon(D);
      uint32_t R =
          C.index() < TopoRank.size() ? TopoRank[C.index()] : 0;
      Rank = std::min(Rank, R);
    }
    // Statements with no copy destinations (AddrOf and friends) seed base
    // facts: they rank as sources.
    StmtRank[I] = Rank == UINT32_MAX ? 0 : Rank;
  }
}

size_t Solver::estimateStateBytes() const {
  // Estimates, not exact malloc accounting: per entry, unordered_map pays
  // roughly one heap node (key + value + next pointer) plus its share of
  // the bucket array.
  auto MapBytes = [](size_t Entries, size_t Buckets, size_t EntrySize) {
    return Entries * (EntrySize + sizeof(void *)) +
           Buckets * sizeof(void *);
  };
  size_t Total = 0;
  for (const StmtSolveState &St : StmtState) {
    Total += MapBytes(St.Cursor.size(), St.Cursor.bucket_count(),
                      sizeof(uint64_t) + sizeof(uint32_t));
    Total += MapBytes(St.Resolve.size(), St.Resolve.bucket_count(),
                      sizeof(uint64_t) + sizeof(ResolveCache));
    for (const auto &Entry : St.Resolve)
      Total += Entry.second.Pairs.capacity() *
               sizeof(std::pair<NodeId, NodeId>);
    Total += MapBytes(St.SmearCursor.size(), St.SmearCursor.bucket_count(),
                      2 * sizeof(uint32_t));
    Total += St.Reads.size() * sizeof(ObjectId);
    Total += St.CopyDsts.size() * sizeof(NodeId);
  }
  Total += StmtState.capacity() * sizeof(StmtSolveState);
  for (const std::vector<int32_t> &Deps : DependentsByObject)
    Total += Deps.capacity() * sizeof(int32_t);
  Total += DependentsByObject.capacity() * sizeof(std::vector<int32_t>);
  Total += Worklist.capacity() * sizeof(int32_t);
  Total += StmtQueued.capacity();
  Total += StmtDead.capacity();
  Total += StmtRank.capacity() * sizeof(uint32_t);
  Total += StmtNodeCache.capacity() * sizeof(StmtNodes);
  for (const StmtNodes &NC : StmtNodeCache)
    Total += NC.Ops.capacity() * sizeof(NodeId);
  Total += CopyGraph.bytes();
  return Total;
}

void Solver::releaseSolveState() {
  // Shrink-to-fit after solve: the fixpoint state (cursor maps, resolve
  // caches, dependents index, constraint graph) is dead once the loop
  // exits — queries only need Facts and NodeReps. Swap-with-empty so the
  // memory goes back immediately instead of lingering until destruction.
  StmtState = std::vector<StmtSolveState>();
  DependentsByObject = std::vector<std::vector<int32_t>>();
  Worklist = std::vector<int32_t>();
  StmtQueued = std::vector<uint8_t>();
  StmtDead = std::vector<uint8_t>();
  StmtRank = std::vector<uint32_t>();
  StmtNodeCache = std::vector<StmtNodes>();
  PrioWorklist = {};
  CopyGraph.clear();
}

void Solver::solve() {
  Stats = SolverRunStats();
  Stats.NodesMergedOffline = OfflineMergedNodes;
  Stats.OfflineSeconds = OfflineSecondsSpent;
  Events.assign(Prog.DerefSites.size(), SiteEvents());
  Freed = IdSet<ObjectTag>();
  FreedAt.clear();
  // Cycle elimination is a layer on the delta worklist, and the parallel
  // engine a layer on cycle elimination; normalize the flags so options
  // echoed in telemetry reflect what actually ran. Resolve Threads here
  // too so the echo shows the effective worker count.
  if (Opts.ParallelSolve) {
    Opts.CycleElimination = true;
    if (Opts.Threads == 0)
      Opts.Threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (Opts.CycleElimination) {
    Opts.UseWorklist = true;
    Opts.DeltaPropagation = true;
  }
  auto Start = std::chrono::steady_clock::now();
  if (Opts.ParallelSolve)
    solvePar();
  else if (Opts.CycleElimination)
    solveCycleElim();
  else if (Opts.UseWorklist)
    solveWorklist();
  else
    solveNaive();
  Stats.SolveSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  Stats.Edges = numEdges();
  Stats.Nodes = Model.nodes().size();
  // Empty-deref is a property of the final sets, not of any one engine
  // step: record it once the fixpoint is reached.
  for (size_t I = 0; I < Prog.DerefSites.size(); ++I)
    Events[I].EmptyDeref = derefTargets(Prog.DerefSites[I]).empty();
  collectPtsStats();
}

void Solver::collectPtsStats() {
  Stats.ReprUsed = Opts.PointsTo;
  Stats.PtsSets = Facts.size();
  std::vector<size_t> Sizes;
  Sizes.reserve(Facts.size());
  for (size_t I = 0; I < Facts.size(); ++I) {
    const NodeFacts &F = Facts[I];
    Stats.PtsSetBytes += sizeof(PtsSet) + F.Set.heapBytes();
    Stats.PtsLogBytes += F.Log.capacity() * sizeof(NodeId);
    // Merged (cycle-collapsed) nodes have empty cleared sets; skip them
    // for the size distribution like any other empty set.
    if (!F.Set.empty())
      Sizes.push_back(F.Set.size());
  }
  if (Opts.PointsTo == PtsRepr::Bitmap)
    Stats.PtsLookupBytes = Model.nodes().ptsInterner().heapBytes();
  // Fold the fact storage into the end-to-end footprint so the bench
  // matrix compares representations on total resident bytes.
  Stats.BytesHighWater +=
      Stats.PtsSetBytes + Stats.PtsLogBytes + Stats.PtsLookupBytes;
  if (Sizes.empty())
    return;
  std::sort(Sizes.begin(), Sizes.end());
  for (size_t S : Sizes)
    if (S == 1)
      ++Stats.PtsSingletons;
  // Nearest-rank percentiles: index ceil(p * N) over the sorted sizes.
  auto Rank = [&Sizes](size_t Pct) {
    size_t R = (Sizes.size() * Pct + 99) / 100;
    return Sizes[R == 0 ? 0 : R - 1];
  };
  Stats.PtsSizeP50 = Rank(50);
  Stats.PtsSizeP90 = Rank(90);
  Stats.PtsSizeMax = Sizes.back();
}
