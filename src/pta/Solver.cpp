//===--- Solver.cpp -------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pta/Solver.h"

#include <algorithm>

using namespace spa;

Solver::Solver(NormProgram &Prog, FieldModel &Model, SolverOptions Opts)
    : Prog(Prog), Model(Model), Opts(Opts) {}

PtsSet &Solver::ptsOf(NodeId Node) {
  if (Node.index() >= Pts.size())
    Pts.resize(Node.index() + 1);
  return Pts[Node.index()];
}

const PtsSet &Solver::pointsTo(NodeId Node) const {
  static const PtsSet Empty;
  if (Node.index() >= Pts.size())
    return Empty;
  return Pts[Node.index()];
}

bool Solver::addEdge(NodeId From, NodeId To) {
  if (!ptsOf(From).insert(To))
    return false;
  noteChanged(From);
  return true;
}

void Solver::noteRead(ObjectId Obj) {
  if (!WorklistActive || CurrentStmt < 0 || !Obj.isValid())
    return;
  if (Obj.index() >= DependentsByObject.size())
    DependentsByObject.resize(Obj.index() + 1);
  auto &Deps = DependentsByObject[Obj.index()];
  if (std::find(Deps.begin(), Deps.end(), CurrentStmt) == Deps.end())
    Deps.push_back(CurrentStmt);
}

void Solver::noteChanged(NodeId Node) {
  if (!WorklistActive)
    return;
  ObjectId Obj = Model.nodes().objectOf(Node);
  if (Obj.index() >= DependentsByObject.size())
    return; // nothing depends on it yet
  for (int32_t StmtIdx : DependentsByObject[Obj.index()]) {
    if (StmtQueued[StmtIdx])
      continue;
    StmtQueued[StmtIdx] = 1;
    Worklist.push_back(StmtIdx);
  }
}

uint64_t Solver::numEdges() const {
  uint64_t Total = 0;
  for (const PtsSet &Set : Pts)
    Total += Set.size();
  return Total;
}

bool Solver::flowResolve(NodeId Dst, NodeId Src, TypeId Tau) {
  noteRead(Model.nodes().objectOf(Src)); // the pairs read the source side
  std::vector<std::pair<NodeId, NodeId>> Pairs;
  Model.resolve(Dst, Src, Tau, Pairs);
  bool Changed = false;
  for (const auto &[D, S] : Pairs) {
    // Self-pair copies are no-ops but harmless.
    PtsSet SrcSet = pointsTo(S); // copy: D may equal S's storage
    if (ptsOf(D).insertAll(SrcSet) != 0) {
      Changed = true;
      noteChanged(D);
    }
  }
  return Changed;
}

bool Solver::flowPtrArith(NodeId Dst, const PtsSet &Targets) {
  if (Opts.TrackUnknown) {
    // Section 4.2.1's alternative: record a (possibly) corrupted pointer
    // instead of smearing.
    return !Targets.empty() && addEdge(Dst, unknownNode());
  }
  bool Changed = false;
  std::vector<NodeId> All;
  for (NodeId Target : Targets) {
    if (isUnknownNode(Target))
      continue;
    // The smear enumerates the target object's (stateful) node set.
    noteRead(Model.nodes().objectOf(Target));
    All.clear();
    Model.arithNodes(Target, Opts.StrideArith, All);
    for (NodeId Node : All)
      if (addEdge(Dst, Node))
        Changed = true;
  }
  return Changed;
}

NodeId Solver::unknownNode() {
  if (!UnknownObj.isValid())
    UnknownObj = Prog.makeObject(ObjectKind::Unknown,
                                 Prog.Strings.intern("$unknown"),
                                 Prog.Types.intType(), SourceLoc());
  return Model.normalizeLoc(UnknownObj, {});
}

bool Solver::isUnknownNode(NodeId Node) const {
  return UnknownObj.isValid() &&
         Model.nodes().objectOf(Node) == UnknownObj;
}

const PtsSet &Solver::derefTargets(const DerefSite &Site) {
  return pointsTo(normalizeObj(Site.Ptr));
}

std::vector<FuncId> Solver::calleesOf(const NormStmt &Call) {
  std::vector<FuncId> Out;
  if (Call.DirectCallee.isValid()) {
    Out.push_back(Call.DirectCallee);
    return Out;
  }
  if (!Call.IndirectCallee.isValid())
    return Out;
  for (NodeId Target : pointsTo(normalizeObj(Call.IndirectCallee))) {
    ObjectId Obj = Model.nodes().objectOf(Target);
    const NormObject &Info = Prog.object(Obj);
    if (Info.Kind == ObjectKind::Function && Info.AsFunction.isValid())
      Out.push_back(Info.AsFunction);
  }
  return Out;
}

ObjectId Solver::externObject() {
  if (!ExternObj.isValid())
    ExternObj = Prog.makeObject(
        ObjectKind::Heap, Prog.Strings.intern("$extern"),
        Prog.Types.getArray(Prog.Types.charType(), 0), SourceLoc());
  return ExternObj;
}

bool Solver::bindCall(const NormStmt &S, FuncId Callee) {
  const NormFunction &Fn = Prog.func(Callee);
  const TypeTable &Types = Prog.Types;

  if (!Fn.IsDefined) {
    if (!Opts.UseLibrarySummaries)
      return false;
    // Summaries may read any argument's facts.
    for (ObjectId Arg : S.Args)
      noteRead(Arg);
    return Lib.apply(Prog.Strings.text(Fn.Name), S, *this);
  }

  bool Changed = false;
  size_t NumParams = Fn.Params.size();
  for (size_t I = 0; I < S.Args.size(); ++I) {
    if (Prog.object(S.Args[I]).Kind == ObjectKind::Constant)
      continue; // literal arguments carry no points-to facts
    if (I < NumParams) {
      ObjectId Param = Fn.Params[I];
      if (flowResolve(normalizeObj(Param), normalizeObj(S.Args[I]),
                      Prog.object(Param).Ty))
        Changed = true;
    } else if (Fn.VarargsObj.isValid()) {
      // Extra arguments pool into the callee's "..." pseudo-variable. This
      // is a plain join over every node of the argument object (no typed
      // resolve: a varargs pool has no declared layout to match against,
      // and it should not pollute the mismatch statistics).
      NodeId Va = normalizeObj(Fn.VarargsObj);
      noteRead(S.Args[I]);
      for (NodeId ArgNode :
           Model.nodes().nodesOfObject(S.Args[I])) {
        PtsSet Targets = pointsTo(ArgNode);
        if (ptsOf(Va).insertAll(Targets) != 0) {
          Changed = true;
          noteChanged(Va);
        }
      }
    }
  }
  if (S.RetDst.isValid() && Fn.RetObj.isValid()) {
    if (flowResolve(normalizeObj(S.RetDst), normalizeObj(Fn.RetObj),
                    Prog.object(S.RetDst).Ty))
      Changed = true;
  }
  (void)Types;
  return Changed;
}

bool Solver::applyCall(const NormStmt &S) {
  if (S.IndirectCallee.isValid())
    noteRead(S.IndirectCallee);
  bool Changed = false;
  for (FuncId Callee : calleesOf(S))
    if (bindCall(S, Callee))
      Changed = true;
  return Changed;
}

bool Solver::applyStmt(const NormStmt &S) {
  switch (S.Op) {
  case NormOp::AddrOf: {
    // Rule 1: pointsTo(normalize(s), normalize(t.beta)).
    NodeId Dst = normalizeObj(S.Dst);
    NodeId Target = Model.normalizeLoc(S.Src, S.Path);
    return addEdge(Dst, Target);
  }
  case NormOp::AddrOfDeref: {
    // Rule 2: for each pointsTo(p, t-hat), for each n in
    // lookup(tau_p, alpha, t-hat): pointsTo(normalize(s), n).
    NodeId Dst = normalizeObj(S.Dst);
    bool Changed = false;
    std::vector<NodeId> Fields;
    noteRead(S.Src);
    PtsSet Targets = pointsTo(normalizeObj(S.Src)); // copy: we add edges
    for (NodeId Target : Targets) {
      Fields.clear();
      Model.lookup(S.DeclPointeeTy, S.Path, Target, Fields);
      for (NodeId Field : Fields)
        if (addEdge(Dst, Field))
          Changed = true;
    }
    return Changed;
  }
  case NormOp::Copy:
    // Rule 3: resolve(normalize(s), normalize(t.beta), tau_s).
    return flowResolve(normalizeObj(S.Dst), Model.normalizeLoc(S.Src, S.Path),
                       S.LhsTy);
  case NormOp::Load: {
    // Rule 4: for each pointsTo(q, t-hat):
    //   resolve(normalize(s), t-hat, tau_s).
    bool Changed = false;
    NodeId Dst = normalizeObj(S.Dst);
    noteRead(S.Src);
    PtsSet Targets = pointsTo(normalizeObj(S.Src));
    for (NodeId Target : Targets)
      if (flowResolve(Dst, Target, S.LhsTy))
        Changed = true;
    return Changed;
  }
  case NormOp::Store: {
    // Rule 5: for each pointsTo(p, s-hat):
    //   resolve(s-hat, normalize(t), tau_p-pointee).
    bool Changed = false;
    NodeId Src = normalizeObj(S.Src);
    noteRead(S.Dst);
    PtsSet Targets = pointsTo(normalizeObj(S.Dst));
    for (NodeId Target : Targets)
      if (flowResolve(Target, Src, S.LhsTy))
        Changed = true;
    return Changed;
  }
  case NormOp::PtrArith: {
    // Assumption 1: the result may point to any sub-field of any object an
    // operand points into.
    if (!Opts.HandlePtrArith)
      return false;
    bool Changed = false;
    NodeId Dst = normalizeObj(S.Dst);
    for (ObjectId Operand : S.ArithSrcs) {
      noteRead(Operand);
      PtsSet Targets = pointsTo(normalizeObj(Operand));
      if (flowPtrArith(Dst, Targets))
        Changed = true;
    }
    return Changed;
  }
  case NormOp::Call:
    return applyCall(S);
  }
  return false;
}

void Solver::solveNaive() {
  bool Changed = true;
  while (Changed && Stats.Iterations < Opts.MaxIterations) {
    Changed = false;
    ++Stats.Iterations;
    for (const NormStmt &S : Prog.Stmts) {
      ++Stats.StmtsApplied;
      if (applyStmt(S))
        Changed = true;
    }
  }
}

void Solver::solveWorklist() {
  WorklistActive = true;
  // Materializing a node in an object invalidates any statement that
  // enumerated that object's nodes (Offsets artificial offsets).
  Model.nodes().setOnNewNode([this](ObjectId Obj) {
    if (Obj.index() >= DependentsByObject.size())
      return;
    for (int32_t StmtIdx : DependentsByObject[Obj.index()]) {
      if (StmtQueued[StmtIdx])
        continue;
      StmtQueued[StmtIdx] = 1;
      Worklist.push_back(StmtIdx);
    }
  });
  size_t N = Prog.Stmts.size();
  StmtQueued.assign(N, 1);
  Worklist.clear();
  // Push in reverse so the first pop processes statement 0.
  for (size_t I = N; I-- > 0;)
    Worklist.push_back(static_cast<int32_t>(I));

  uint64_t Budget = uint64_t(Opts.MaxIterations) * (N ? N : 1);
  while (!Worklist.empty() && Stats.StmtsApplied < Budget) {
    int32_t Idx = Worklist.back();
    Worklist.pop_back();
    StmtQueued[Idx] = 0;
    CurrentStmt = Idx;
    ++Stats.StmtsApplied;
    ++Stats.Iterations;
    applyStmt(Prog.Stmts[Idx]);
  }
  CurrentStmt = -1;
  WorklistActive = false;
  Model.nodes().setOnNewNode(nullptr);
}

void Solver::solve() {
  Stats.Iterations = 0;
  Stats.StmtsApplied = 0;
  if (Opts.UseWorklist)
    solveWorklist();
  else
    solveNaive();
  Stats.Edges = numEdges();
  Stats.Nodes = Model.nodes().size();
}
