//===--- Offline.h - Offline constraint-graph preprocessing ----*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline HVN-style preprocessing pass (`--preprocess=hvn`): before
/// the first propagation, detect sets of nodes that provably hold the same
/// points-to set at the least fixpoint and merge them, so every engine
/// solves a smaller graph. Three classic merge sources:
///
///  * offline copy-edge cycles — nodes on a cycle of guaranteed copy
///    constraints mutually include each other, so their sets are equal;
///  * single-source copy chains — a node whose only definition is one copy
///    edge equals its source;
///  * duplicate address-of sources — nodes defined by the identical set of
///    address-of targets (and copy sources) are equal, including the
///    shared "never written" class of nodes that provably stay empty.
///
/// The offline copy graph is built from NormIR with the *model's own*
/// resolve pairs, so every edge is a join the solver is guaranteed to
/// perform (resolve pair lists only ever grow, never shrink — the solver's
/// memoization already depends on that). Nodes whose facts can arrive from
/// sources the offline graph cannot see — loads, stores through pointers,
/// pointer arithmetic, indirect or summarized calls, any node of an
/// address-exposed object — are marked *indirect*: they still merge inside
/// a cycle (mutual inclusion needs no completeness), but never by value
/// numbering (which requires knowing every definition).
///
/// The result is a node-class union-find handed to
/// Solver::seedOfflineMerges, which every engine composes with its own
/// online canonicalization (the scc engine keeps collapsing on top of it).
/// The pairing validator is the existing verify layer: a preprocessed run
/// must export the byte-identical edge list and certify against the same
/// obligations as its unpreprocessed twin (tests/pta/OfflineTest.cpp and
/// the tools/ci.sh sweeps enforce this).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_OFFLINE_H
#define SPA_PTA_OFFLINE_H

#include "pta/Solver.h"

namespace spa {

/// Outcome of one offline preprocessing run.
struct OfflineResult {
  /// Node equivalence classes (identity when nothing merged). Every class
  /// member provably has the representative's points-to set at fixpoint.
  UnionFind<NodeTag> NodeMap;
  /// Nodes absorbed into another representative (== NodeMap.merges()).
  uint64_t NodesMerged = 0;
  /// Offline copy-edge cycles of two or more nodes collapsed.
  uint64_t SccsCollapsed = 0;
  /// Nodes materialized and examined by the pass.
  uint64_t NodesConsidered = 0;
  /// Wall-clock seconds spent in the pass.
  double Seconds = 0;
};

/// Runs the offline HVN pass over \p Prog with \p Model's normalize and
/// resolve. Materializes exactly the nodes the solver's first visit of
/// each statement would (so the fixpoint node universe is unchanged) and
/// leaves the model's Figure-3 counters untouched. \p Opts gates the
/// statement forms the solver itself gates (e.g. HandlePtrArith).
OfflineResult runOfflineHvn(const NormProgram &Prog, FieldModel &Model,
                            const SolverOptions &Opts);

} // namespace spa

#endif // SPA_PTA_OFFLINE_H
