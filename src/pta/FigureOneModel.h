//===--- FigureOneModel.h - The paper's Section-3 reference rules -*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 1: flow-insensitive rules that distinguish structure
/// fields but assume NO casting. Locations are raw (non-normalized)
/// *field-name* paths, exactly as the paper writes them: copying a struct
/// A into a struct B yields the nonsensical pointsTo(b.a1, x) because the
/// fact is keyed by the name "a1", which no access of b ever reads.
/// Section 3 shows these rules are therefore UNSOUND for programs that
/// cast ("the desired fact pointsTo(b.b1, x) cannot be inferred"), and
/// Section 4.1's Problem 1 exhibits a concrete miss. This instance exists
/// to reproduce those demonstrations (see FigureOneModelTest); it is NOT
/// part of ModelKind and must not be used on casting programs.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_FIGUREONEMODEL_H
#define SPA_PTA_FIGUREONEMODEL_H

#include "pta/Models.h"

#include <algorithm>
#include <map>

namespace spa {

/// Field-sensitive, cast-oblivious instance implementing Figure 1.
class FigureOneModel : public FieldModel {
public:
  FigureOneModel(const NormProgram &Prog, const LayoutEngine &Layout)
      : FieldModel(Prog, Layout), Flats(Prog.Types, Layout) {}

  const char *name() const override { return "Figure 1 (no casting)"; }

  /// Rule 1's right-hand sides are used as-is: the node for s.alpha is the
  /// sequence of field *names*, with no first-field normalization.
  NodeId normalizeLoc(ObjectId Obj, const FieldPath &Path) override {
    return Store.getNode(Obj, pathKey(namesOf(objectType(Obj), Path)));
  }

  /// Rule 2: pointsTo(p, t.beta) |- pointsTo(s, t.beta.alpha), where alpha
  /// is spelled with the names of the pointer's DECLARED pointee type (the
  /// rules know no other type).
  bool lookup(TypeId Tau, const FieldPath &Alpha, NodeId Target,
              std::vector<NodeId> &Out) override {
    noteLookup(/*InvolvesStruct=*/!Alpha.empty(), /*Mismatch=*/false);
    NamePath Full = pathOfKey(Store.keyOf(Target));
    NamePath Suffix = namesOf(Tau, Alpha);
    Full.insert(Full.end(), Suffix.begin(), Suffix.end());
    Out.push_back(Store.getNode(Store.objectOf(Target), pathKey(Full)));
    return true; // Figure 1 knows no casts, so it never detects one
  }

  /// Rules 3-5: pointsTo(t.beta.gamma, u.delta) |- pointsTo(s.gamma,
  /// u.delta) — realized by pairing every materialized source node whose
  /// path extends beta with the destination node at the same suffix.
  bool resolve(NodeId Dst, NodeId Src, TypeId Tau,
               std::vector<std::pair<NodeId, NodeId>> &Out) override {
    (void)Tau;
    noteResolve(/*InvolvesStruct=*/false, /*Mismatch=*/false);
    ObjectId SrcObj = Store.objectOf(Src);
    ObjectId DstObj = Store.objectOf(Dst);
    NamePath Beta = pathOfKey(Store.keyOf(Src));
    NamePath DstBase = pathOfKey(Store.keyOf(Dst));
    std::vector<NodeId> SrcNodes = Store.nodesOfObject(SrcObj); // copy
    for (NodeId N : SrcNodes) {
      NamePath P = pathOfKey(Store.keyOf(N));
      if (P.size() < Beta.size() ||
          !std::equal(Beta.begin(), Beta.end(), P.begin()))
        continue;
      NamePath DstPath = DstBase;
      DstPath.insert(DstPath.end(), P.begin() + Beta.size(), P.end());
      Out.emplace_back(Store.getNode(DstObj, pathKey(DstPath)), N);
    }
    return true;
  }

  void allNodesOfObject(ObjectId Obj, std::vector<NodeId> &Out) override {
    // Materialize the declared leaves (by their name paths) plus whatever
    // else exists.
    const FlattenedType &FT = Flats.get(objectType(Obj));
    for (const LeafField &Leaf : FT.leaves())
      Out.push_back(
          Store.getNode(Obj, pathKey(namesOf(objectType(Obj), Leaf.Path))));
    for (NodeId N : Store.nodesOfObject(Obj))
      Out.push_back(N);
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  }

  std::string nodeSuffix(NodeId Node) const override {
    const NamePath &Path = Paths[Store.keyOf(Node)];
    std::string Out;
    for (Symbol Name : Path) {
      Out += ".";
      Out += Prog.Strings.text(Name);
    }
    return Out;
  }

private:
  using NamePath = std::vector<Symbol>;

  /// Spells an index path as field names, relative to \p Root.
  NamePath namesOf(TypeId Root, const FieldPath &Path) const {
    NamePath Out;
    TypeId Ty = Root;
    for (uint32_t Step : Path) {
      Ty = Types.stripArrays(Types.unqualified(Ty));
      assert(Types.isRecord(Ty) && "name path step into non-record");
      const RecordDecl &Decl = Types.record(Types.node(Ty).Record);
      Out.push_back(Decl.Fields[Step].Name);
      Ty = Decl.Fields[Step].Ty;
    }
    return Out;
  }

  uint64_t pathKey(const NamePath &Path) {
    auto [It, Inserted] = PathIds.try_emplace(Path);
    if (Inserted) {
      Paths.push_back(Path);
      It->second = Paths.size() - 1;
    }
    return It->second;
  }

  NamePath pathOfKey(uint64_t Key) const { return Paths[Key]; }

  mutable FlattenCache Flats;
  std::map<NamePath, uint64_t> PathIds;
  std::vector<NamePath> Paths;
};

} // namespace spa

#endif // SPA_PTA_FIGUREONEMODEL_H
