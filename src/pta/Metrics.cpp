//===--- Metrics.cpp ------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pta/Metrics.h"

#include <algorithm>

using namespace spa;

DerefMetrics spa::computeDerefMetrics(Solver &S, bool IncludeCalls) {
  DerefMetrics M;
  const NormProgram &Prog = S.program();
  FieldModel &Model = S.model();
  for (const DerefSite &Site : Prog.DerefSites) {
    if (Site.IsCall && !IncludeCalls)
      continue;
    ++M.Sites;
    const PtsSet &Targets = S.derefTargets(Site);
    uint64_t Expanded = 0;
    bool SawUnknown = false;
    for (NodeId Target : Targets) {
      Expanded += Model.expandedFieldCount(Target);
      SawUnknown = SawUnknown || S.isUnknownNode(Target);
    }
    if (SawUnknown)
      ++M.UnknownSites;
    if (Expanded != 0)
      ++M.NonEmptySites;
    M.TotalTargets += Expanded;
    M.MaxSetSize = std::max(M.MaxSetSize, Expanded);
  }
  M.AvgSetSize = M.Sites ? double(M.TotalTargets) / double(M.Sites) : 0.0;
  M.AvgNonEmpty =
      M.NonEmptySites ? double(M.TotalTargets) / double(M.NonEmptySites) : 0.0;
  return M;
}

std::string spa::nodeToString(const Solver &S, NodeId Node) {
  const NormProgram &Prog = S.program();
  ObjectId Obj = S.model().nodes().objectOf(Node);
  return Prog.objectName(Obj) + S.model().nodeSuffix(Node);
}

std::vector<std::string> spa::pointsToSetOf(Solver &S, std::string_view Name) {
  std::vector<std::string> Out;
  NormProgram &Prog = S.program();
  for (uint32_t I = 0; I < Prog.Objects.size(); ++I) {
    ObjectId Obj(I);
    if (Prog.objectName(Obj) != Name &&
        Prog.Strings.text(Prog.object(Obj).Name) != Name)
      continue;
    for (NodeId Node : S.model().nodes().nodesOfObject(Obj))
      for (NodeId Target : S.pointsTo(Node))
        Out.push_back(nodeToString(S, Target));
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}
