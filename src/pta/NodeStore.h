//===--- NodeStore.h - Canonical abstract locations ------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A node is one canonical abstract location: an (object, key) pair where
/// the key's meaning is chosen by the analysis instance (always 0 for
/// Collapse Always; a flattened leaf-field index for the field-name-based
/// instances; a byte offset for Offsets). Points-to facts are edges between
/// nodes; the target node denotes "the address of that location".
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_NODESTORE_H
#define SPA_PTA_NODESTORE_H

#include "norm/NormIR.h"
#include "support/IdSet.h"
#include "support/InternTable.h"

#include <functional>
#include <map>
#include <optional>
#include <vector>

namespace spa {

struct NodeTag {};
/// Identifier of a canonical abstract location.
using NodeId = Id<NodeTag>;

/// Lazily materializes and indexes nodes.
class NodeStore {
public:
  /// Returns the node for (\p Obj, \p Key), creating it on first use.
  NodeId getNode(ObjectId Obj, uint64_t Key) {
    auto [It, Inserted] = Index.try_emplace({Obj, Key});
    if (Inserted) {
      if (Obj.index() >= ByObject.size())
        ByObject.resize(Obj.index() + 1);
      Infos.push_back(
          {Obj, Key, static_cast<uint32_t>(ByObject[Obj.index()].size())});
      It->second = NodeId(static_cast<uint32_t>(Infos.size() - 1));
      ByObject[Obj.index()].push_back(It->second);
      if (OnNewNode)
        OnNewNode(Obj);
    }
    return It->second;
  }

  /// Installs a hook called whenever a node is first materialized. The
  /// worklist solver uses it: the Offsets instance's node set is stateful
  /// (artificial offsets appear as facts spread), so statements that
  /// enumerated an object's nodes must be re-run when it grows.
  void setOnNewNode(std::function<void(ObjectId)> Hook) {
    OnNewNode = std::move(Hook);
  }

  /// Returns the node for (\p Obj, \p Key) if it has been materialized.
  std::optional<NodeId> findNode(ObjectId Obj, uint64_t Key) const {
    auto It = Index.find({Obj, Key});
    if (It == Index.end())
      return std::nullopt;
    return It->second;
  }

  /// The object a node belongs to.
  ObjectId objectOf(NodeId Node) const { return Infos[Node.index()].Obj; }

  /// The model-specific key of a node.
  uint64_t keyOf(NodeId Node) const { return Infos[Node.index()].Key; }

  /// The node's position within its object's creation-order node list:
  /// nodesOfObject(objectOf(N))[ordinalOf(N)] == N. Stable (the per-object
  /// lists are append-only); the separate-offsets points-to representation
  /// keys its per-object offset sets by it.
  uint32_t ordinalOf(NodeId Node) const { return Infos[Node.index()].Ordinal; }

  /// Shared intern table for the bitmap points-to representation: maps the
  /// NodeIds that appear in points-to sets to a dense first-seen index.
  /// Mutable through a const store — interning is a cache, not a change to
  /// the node universe.
  InternTable<NodeTag> &ptsInterner() const { return Interner; }

  /// All materialized nodes of \p Obj, in creation order.
  const std::vector<NodeId> &nodesOfObject(ObjectId Obj) const {
    static const std::vector<NodeId> Empty;
    if (Obj.index() >= ByObject.size())
      return Empty;
    return ByObject[Obj.index()];
  }

  size_t size() const { return Infos.size(); }

private:
  struct NodeInfo {
    ObjectId Obj;
    uint64_t Key;
    uint32_t Ordinal;
  };
  std::vector<NodeInfo> Infos;
  std::map<std::pair<ObjectId, uint64_t>, NodeId> Index;
  std::vector<std::vector<NodeId>> ByObject;
  std::function<void(ObjectId)> OnNewNode;
  mutable InternTable<NodeTag> Interner;
};

} // namespace spa

#endif // SPA_PTA_NODESTORE_H
