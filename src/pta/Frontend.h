//===--- Frontend.h - Source-to-analysis convenience API -------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-stop public API: compile C source text into a normalized
/// program (CompiledProgram) and run any of the four analysis instances
/// over it (Analysis). Most clients only need these two types plus the
/// query helpers in Metrics.h.
///
/// \code
///   auto Program = spa::CompiledProgram::fromSource(Source, Diags);
///   spa::Analysis A(Program->Prog, {spa::ModelKind::CommonInitialSeq});
///   A.run();
///   for (const std::string &T : spa::pointsToSetOf(A.solver(), "p")) ...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_FRONTEND_H
#define SPA_PTA_FRONTEND_H

#include "cfront/AST.h"
#include "norm/NormIR.h"
#include "pta/Metrics.h"
#include "pta/Solver.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace spa {

/// One translation unit, parsed and normalized, with all its owning
/// tables. Create via fromSource/fromFile.
class CompiledProgram {
public:
  StringInterner Strings;
  TypeTable Types;
  TranslationUnit TU;
  NormProgram Prog;

  /// Parses and normalizes \p Source. Returns null (with diagnostics in
  /// \p Diags) if the source has errors. \p Target affects only parse-time
  /// sizeof folding.
  static std::unique_ptr<CompiledProgram>
  fromSource(std::string_view Source, DiagnosticEngine &Diags,
             TargetInfo Target = TargetInfo::ilp32());

  /// Reads \p Path and calls fromSource.
  static std::unique_ptr<CompiledProgram>
  fromFile(const std::string &Path, DiagnosticEngine &Diags,
           TargetInfo Target = TargetInfo::ilp32());

private:
  CompiledProgram() : TU(Types, Strings), Prog(Types, Strings) {}
};

/// Options for one analysis run.
struct AnalysisOptions {
  ModelKind Model = ModelKind::CommonInitialSeq;
  /// ABI used by the Offsets instance (and by expandedFieldCount); the
  /// portable instances' results do not depend on it.
  TargetInfo Target = TargetInfo::ilp32();
  SolverOptions Solver;
};

/// One analysis instance bound to a program: owns the layout engine, the
/// field model, and the solver.
class Analysis {
public:
  Analysis(NormProgram &Prog, AnalysisOptions Opts = {});

  /// Runs the solver to fixpoint. With --preprocess=hvn the offline pass
  /// runs first (once per Analysis; re-running reuses the seeded merges).
  void run();

  Solver &solver() { return TheSolver; }
  FieldModel &model() { return *Model; }
  const LayoutEngine &layout() const { return Layout; }
  const AnalysisOptions &options() const { return Opts; }

  /// Figure-4 metric for this run.
  DerefMetrics derefMetrics(bool IncludeCalls = true) {
    return computeDerefMetrics(TheSolver, IncludeCalls);
  }

private:
  AnalysisOptions Opts;
  LayoutEngine Layout;
  std::unique_ptr<FieldModel> Model;
  Solver TheSolver;
  NormProgram &Prog;
  bool Preprocessed = false;
};

} // namespace spa

#endif // SPA_PTA_FRONTEND_H
