//===--- Metrics.h - Precision and cost measurements -----------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurements behind the paper's evaluation: average points-to-set
/// size per static dereferenced-pointer instance (Figure 4, with Collapse
/// Always sets expanded to fields for comparability), total points-to
/// edges (Figure 6), and the lookup/resolve call statistics (Figure 3).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_METRICS_H
#define SPA_PTA_METRICS_H

#include "pta/Solver.h"

namespace spa {

/// Aggregate deref-site statistics of one solved analysis.
struct DerefMetrics {
  size_t Sites = 0;          ///< static dereference instances
  size_t NonEmptySites = 0;  ///< ... whose pointer has a nonempty set
  uint64_t TotalTargets = 0; ///< sum of expanded set sizes
  double AvgSetSize = 0;     ///< TotalTargets / Sites
  double AvgNonEmpty = 0;    ///< TotalTargets / NonEmptySites
  uint64_t MaxSetSize = 0;
  size_t UnknownSites = 0;   ///< sites whose set contains Unknown (only
                             ///< nonzero with SolverOptions::TrackUnknown)
};

/// Computes Figure-4-style metrics over every dereference site. When
/// \p IncludeCalls is false, indirect-call sites are excluded.
DerefMetrics computeDerefMetrics(Solver &S, bool IncludeCalls = true);

/// Renders the points-to set of the object named \p Name (top-level
/// normalized node) as sorted "object.field" strings — the primary
/// user-facing query.
std::vector<std::string> pointsToSetOf(Solver &S, std::string_view Name);

/// Renders one node as "object.field" / "object+off".
std::string nodeToString(const Solver &S, NodeId Node);

} // namespace spa

#endif // SPA_PTA_METRICS_H
