//===--- Models.h - The four analysis instances ----------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete definitions of normalize/lookup/resolve for the paper's four
/// instances:
///
///  * Collapse Always (Section 4.3.1)
///  * Collapse on Cast (Section 4.3.2)
///  * Common Initial Sequence (Section 4.3.3)
///  * Offsets (Section 4.2.2; layout-specific, most precise, not portable)
///
/// The two field-name-based instances share their normalize (innermost
/// first field) and their resolve (defined through lookup over the fields
/// of the copy's declared type); they differ only in lookup's matching
/// test, exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_MODELS_H
#define SPA_PTA_MODELS_H

#include "pta/FieldModel.h"

#include <map>

namespace spa {

/// Shared cache of flattened-leaf views, one per object type.
class FlattenCache {
public:
  FlattenCache(const TypeTable &Types, const LayoutEngine &Layout)
      : Types(Types), Layout(Layout) {}

  const FlattenedType &get(TypeId Ty) {
    auto [It, Inserted] = Cache.try_emplace(Ty);
    if (Inserted)
      It->second = std::make_unique<FlattenedType>(Types, Layout, Ty);
    return *It->second;
  }

private:
  const TypeTable &Types;
  const LayoutEngine &Layout;
  std::map<TypeId, std::unique_ptr<FlattenedType>> Cache;
};

/// Section 4.3.1: every structure is one blob.
class CollapseAlwaysModel : public FieldModel {
public:
  CollapseAlwaysModel(const NormProgram &Prog, const LayoutEngine &Layout)
      : FieldModel(Prog, Layout), Flats(Prog.Types, Layout) {}

  const char *name() const override { return "Collapse Always"; }
  NodeId normalizeLoc(ObjectId Obj, const FieldPath &Path) override;
  bool lookup(TypeId Tau, const FieldPath &Alpha, NodeId Target,
              std::vector<NodeId> &Out) override;
  bool resolve(NodeId Dst, NodeId Src, TypeId Tau,
               std::vector<std::pair<NodeId, NodeId>> &Out) override;
  void allNodesOfObject(ObjectId Obj, std::vector<NodeId> &Out) override;
  uint64_t expandedFieldCount(NodeId Node) const override;

private:
  mutable FlattenCache Flats;
};

/// Shared machinery of the Collapse-on-Cast and Common-Initial-Sequence
/// instances: nodes are flattened leaf-field indices; normalize descends
/// into innermost first fields; resolve is lookup-per-field of tau.
class FieldNameModelBase : public FieldModel {
public:
  FieldNameModelBase(const NormProgram &Prog, const LayoutEngine &Layout)
      : FieldModel(Prog, Layout), Flats(Prog.Types, Layout) {}

  NodeId normalizeLoc(ObjectId Obj, const FieldPath &Path) final;
  bool lookup(TypeId Tau, const FieldPath &Alpha, NodeId Target,
              std::vector<NodeId> &Out) final;
  bool resolve(NodeId Dst, NodeId Src, TypeId Tau,
               std::vector<std::pair<NodeId, NodeId>> &Out) final;
  void allNodesOfObject(ObjectId Obj, std::vector<NodeId> &Out) final;
  std::string nodeSuffix(NodeId Node) const final;
  bool targetInsideArray(NodeId Target) const final;

protected:
  /// The matching core; returns true if the types matched (no collapse).
  /// Appends leaf indices of the target's object to \p OutLeaves.
  virtual bool lookupLeaves(TypeId Tau, const FieldPath &Alpha,
                            ObjectId Obj, uint32_t LeafIdx,
                            const FlattenedType &FT,
                            std::vector<uint32_t> &OutLeaves) = 0;

  /// All prefixes q of the leaf's path with normalize(obj.q) == leaf —
  /// the paper's candidate deltas ("t.beta is the innermost first field
  /// of t.delta"). Ordered outermost (shortest) first.
  std::vector<FieldPath> candidatePrefixes(const FlattenedType &FT,
                                           uint32_t LeafIdx) const;

  mutable FlattenCache Flats;
};

/// Section 4.3.2: collapse the tail of a structure when accessed at a
/// mismatched type.
class CollapseOnCastModel : public FieldNameModelBase {
public:
  using FieldNameModelBase::FieldNameModelBase;
  const char *name() const override { return "Collapse on Cast"; }

protected:
  bool lookupLeaves(TypeId Tau, const FieldPath &Alpha, ObjectId Obj,
                    uint32_t LeafIdx, const FlattenedType &FT,
                    std::vector<uint32_t> &OutLeaves) override;
};

/// Section 4.3.3: keep fields distinct across a cast while they lie in a
/// common initial sequence of the two types.
class CommonInitSeqModel : public FieldNameModelBase {
public:
  using FieldNameModelBase::FieldNameModelBase;
  const char *name() const override { return "Common Initial Sequence"; }

protected:
  bool lookupLeaves(TypeId Tau, const FieldPath &Alpha, ObjectId Obj,
                    uint32_t LeafIdx, const FlattenedType &FT,
                    std::vector<uint32_t> &OutLeaves) override;
};

/// Section 4.2.2: byte offsets under one concrete ABI layout.
class OffsetsModel : public FieldModel {
public:
  OffsetsModel(const NormProgram &Prog, const LayoutEngine &Layout)
      : FieldModel(Prog, Layout), Flats(Prog.Types, Layout) {}

  const char *name() const override { return "Offsets"; }
  NodeId normalizeLoc(ObjectId Obj, const FieldPath &Path) override;
  bool lookup(TypeId Tau, const FieldPath &Alpha, NodeId Target,
              std::vector<NodeId> &Out) override;
  bool resolve(NodeId Dst, NodeId Src, TypeId Tau,
               std::vector<std::pair<NodeId, NodeId>> &Out) override;
  void allNodesOfObject(ObjectId Obj, std::vector<NodeId> &Out) override;
  std::string nodeSuffix(NodeId Node) const override;
  bool targetInsideArray(NodeId Target) const override;
  bool resolveDependsOnMaterialization() const override { return true; }

private:
  mutable FlattenCache Flats;
};

} // namespace spa

#endif // SPA_PTA_MODELS_H
