//===--- Solver.h - Inference-rule fixpoint engine -------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-insensitive, context-insensitive solver: it interprets every
/// normalized statement with the model's normalize/lookup/resolve until no
/// new points-to edge can be added — the paper's "use the rules of
/// inference to add additional edges, each of which represents one
/// points-to fact" (Section 5). Calls are bound context-insensitively;
/// indirect calls use the current points-to set of the function pointer
/// (an on-the-fly call graph, re-examined every round).
///
/// Four engines compute the same fixpoint:
///  * naive rounds (the paper's algorithm, statement for statement);
///  * an object-granularity worklist (statements re-run only when an
///    object they read changed);
///  * the worklist with difference propagation (the default worklist
///    configuration): every node keeps an append-only log of its facts in
///    insertion order, and each statement remembers, per (dst, src) join
///    pair, how much of the source log it has already consumed — a
///    re-visit joins only the unseen suffix instead of the full set;
///  * the delta worklist with online cycle elimination: copy joins are
///    additionally materialized as an explicit constraint graph
///    (pta/ConstraintGraph.h), periodic SCC sweeps collapse copy cycles
///    through a union-find so the whole cycle shares one set and one log,
///    and the worklist becomes a priority queue in topological order of
///    the condensed graph (sources drain before sinks).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_SOLVER_H
#define SPA_PTA_SOLVER_H

#include "pta/ConstraintGraph.h"
#include "pta/FieldModel.h"
#include "pta/LibrarySummaries.h"
#include "pta/PtsSet.h"
#include "support/SegmentedVector.h"
#include "support/UnionFind.h"

#include <map>
#include <queue>
#include <unordered_map>

namespace spa {

class DiagnosticEngine;

/// Sticky per-dereference-site resolution events, recorded while the
/// solver runs so the checker layer (src/check/) never has to re-run the
/// analysis. A flag, once set by any engine visit, stays set: the events
/// are facts about the whole fixpoint computation, not about one visit,
/// and are therefore identical across the naive and worklist engines.
struct SiteEvents {
  /// A lookup/resolve performed on behalf of this site was not
  /// type-consistent: the field model collapsed or smeared the access
  /// (the paper's "casting involved" case).
  bool Mismatch = false;
  /// A lookup at this site produced no nodes at all: the access falls off
  /// every view of the pointed-to object (Common Initial Sequence's
  /// "nothing follows the sequence" branch).
  bool Truncated = false;
  /// The site's pointer had an empty points-to set at fixpoint (set after
  /// the engines finish).
  bool EmptyDeref = false;
  /// The invalidation-aware flow pass (src/flow/) recorded a verdict for
  /// this site after the solve. When set, the use-after-free checker
  /// consults InvalidatedBefore instead of the global freedObjects() mark.
  bool FlowRefined = false;
  /// Objects among this site's dereference targets that may already be
  /// deallocated when control reaches the site, per the flow pass's
  /// statement-order walk. Always a subset of freedObjects() — the pass
  /// refines the flow-insensitive mark, it never extends it (the
  /// --flow-audit mode re-checks this).
  IdSet<ObjectTag> InvalidatedBefore;
};

/// Which offline preprocessing pass runs between normalization and the
/// solve (src/pta/Offline.h). Orthogonal to the engine flags: every
/// engine accepts the pre-merged node classes through Solver::canon.
enum class PreprocessKind : uint8_t {
  None, ///< solve the raw constraint graph
  Hvn,  ///< offline HVN-style merging of provably-equivalent nodes
};

/// Tuning knobs for one solver run.
struct SolverOptions {
  /// Apply LibrarySummaries to calls of undefined functions.
  bool UseLibrarySummaries = true;
  /// Apply the paper's Assumption-1 rule to pointer arithmetic (results
  /// may point to any sub-field of the operands' objects). Disabling it is
  /// UNSOUND and exists only for the ablation benchmark that measures what
  /// the conservative rule costs.
  bool HandlePtrArith = true;
  /// Wilson/Lam-style stride refinement (paper, Section 6): pointer
  /// arithmetic on a pointer into an array cannot escape the array, so
  /// (arrays being one representative element) the target is unchanged.
  /// A sound precision improvement over plain Assumption 1 for array
  /// walking; off by default to match the paper's algorithms exactly.
  bool StrideArith = false;
  /// The paper's Section-4.2.1 alternative to Assumption 1: instead of
  /// smearing, pointer-arithmetic results are tagged with the special
  /// Unknown location ("a pointer that may have been corrupted"), which
  /// clients can use to flag potential misuses of memory. Dereferences of
  /// Unknown do not propagate facts, so this mode is NOT sound for
  /// programs that really do move pointers; it exists to reproduce the
  /// paper's discussion of the trade-off.
  bool TrackUnknown = false;
  /// Solve with an object-granularity worklist instead of the paper's
  /// repeat-all-statements rounds. Computes the identical fixpoint (the
  /// property tests assert bit-for-bit equal graphs) but touches only the
  /// statements whose inputs changed; a large win on bigger programs.
  /// Off by default so the default configuration is the paper's
  /// algorithm, statement for statement.
  bool UseWorklist = false;
  /// Difference propagation inside the worklist engine: statements join
  /// only the facts added since they last consumed a source node, falling
  /// back to the full set on first visit. Identical fixpoint again; off
  /// only for the legacy-worklist comparison in bench/scaling.
  bool DeltaPropagation = true;
  /// Online cycle elimination on top of the delta worklist (implies
  /// UseWorklist and DeltaPropagation; solve() normalizes the flags).
  /// Copy joins are recorded as an explicit constraint graph; periodic
  /// SCC sweeps collapse copy cycles so all nodes on a cycle share one
  /// points-to set, and the worklist becomes a topological-order priority
  /// queue over the condensed graph. Identical fixpoint once more — the
  /// equivalence tests assert bit-for-bit equal graphs for all four
  /// engines.
  bool CycleElimination = false;
  /// Level-scheduled parallel solve on top of the cycle-elimination
  /// engine (implies CycleElimination; solve() normalizes the flags).
  /// The condensed copy-edge DAG is partitioned into topological levels;
  /// all queued statements of one level are evaluated concurrently on a
  /// fixed-size thread pool in a read-only "gather" phase, and their
  /// effects are committed at the level barrier in canonical statement
  /// order. The commit order — and therefore every mutation of shared
  /// state — is a pure function of the program, independent of Threads
  /// and of scheduling, so the fixpoint (and the whole execution trace)
  /// is bit-identical to itself at any thread count and byte-identical
  /// to the other engines' fixpoint.
  bool ParallelSolve = false;
  /// Worker count for ParallelSolve: 0 = hardware concurrency (resolved
  /// when the solve starts), 1 = the same superstep engine inline with no
  /// threads at all.
  unsigned Threads = 0;
  /// Storage policy for every points-to set of this run (pta/PtsSet.h).
  /// Orthogonal to the engine flags: any representation under any engine
  /// computes the bit-identical fixpoint. Sorted is the baseline; the
  /// compressed representations trade per-element encoding work for
  /// smaller resident sets on larger programs.
  PtsRepr PointsTo = PtsRepr::Sorted;
  /// Offline preprocessing before the first propagation. Applied by
  /// Analysis::run() (the pass needs the model before the solve);
  /// constructing a bare Solver ignores it unless seedOfflineMerges is
  /// called explicitly. Any value under any engine/model/representation
  /// computes the bit-identical fixpoint — enforced by the equivalence
  /// sweeps in tests and tools/ci.sh.
  PreprocessKind Preprocess = PreprocessKind::None;
  /// Hard iteration cap (a safety net; real programs converge quickly).
  /// Naive mode: maximum rounds. Worklist mode: the statement-application
  /// budget is MaxIterations * #statements.
  unsigned MaxIterations = 100000;
  /// When set, the solver reports non-convergence (budget exhaustion) as
  /// a warning here in addition to SolverRunStats::Converged.
  DiagnosticEngine *Diags = nullptr;
};

/// Number of NormOp values (per-rule stats are indexed by NormOp).
inline constexpr unsigned NumSolverRules = 7;

/// Run statistics and telemetry counters for one solve().
struct SolverRunStats {
  unsigned Rounds = 0;       ///< naive mode: full passes over the program
  uint64_t Pops = 0;         ///< worklist mode: statements popped
  uint64_t StmtsApplied = 0; ///< statement evaluations, either mode
  uint64_t Edges = 0;
  size_t Nodes = 0;
  /// True iff the run reached a fixpoint within the iteration budget. A
  /// false value means the graph is UNSOUND (facts may be missing).
  bool Converged = false;
  /// Joins that consumed a full source set (first visit of a pair, or any
  /// join outside delta mode).
  uint64_t FullPropagations = 0;
  /// Joins that consumed only the suffix of a source log added since the
  /// statement last ran (delta mode only).
  uint64_t DeltaPropagations = 0;
  /// Worklist mode: maximum number of simultaneously queued statements.
  size_t WorklistHighWater = 0;
  /// Statement evaluations per rule, indexed by NormOp.
  uint64_t RuleApplied[NumSolverRules] = {};
  /// ... of those, evaluations that added at least one fact.
  uint64_t RuleChanged[NumSolverRules] = {};
  /// Wall-clock seconds spent inside the fixpoint loop.
  double SolveSeconds = 0;
  /// \name Cycle-elimination engine counters (zero elsewhere).
  /// @{
  uint64_t SccSweeps = 0;     ///< SCC sweeps over the constraint graph
  uint64_t SccsCollapsed = 0; ///< non-trivial SCCs collapsed into one node
  uint64_t NodesMergedOnline = 0; ///< nodes absorbed by online collapses
  uint64_t PriorityPops = 0;  ///< pops from the priority worklist
  uint64_t CopyEdges = 0;     ///< distinct copy edges recorded
  /// @}
  /// \name Offline preprocessing counters (zero with --preprocess=none).
  /// @{
  uint64_t NodesMergedOffline = 0; ///< nodes pre-merged before the solve
  double OfflineSeconds = 0;       ///< wall-clock seconds of the pass
  /// @}
  /// \name Parallel engine counters (zero elsewhere).
  /// @{
  unsigned ThreadsUsed = 0;   ///< pool workers (caller included)
  uint32_t Levels = 0;        ///< condensation levels at the last sweep
  uint64_t BarrierMerges = 0; ///< supersteps committed at a level barrier
  uint64_t ParGathered = 0;   ///< statements evaluated read-only in workers
  uint64_t ParDeferred = 0;   ///< statements run sequentially at the barrier
  /// Load imbalance of the gather phases: 100 * (critical path - ideal) /
  /// ideal, where the critical path sums each superstep's busiest worker
  /// and ideal is perfect division of the same work. Deterministic (the
  /// static task striping is scheduling-independent); 0 with one thread.
  double ParImbalancePct = 0;
  /// @}
  /// Worklist modes: estimated bytes of per-statement solver state
  /// (cursors, resolve caches, dependents index) at its high water,
  /// sampled when the fixpoint loop exits and before the state is
  /// released. Includes the points-to fact storage (PtsSetBytes +
  /// PtsLogBytes + PtsLookupBytes below), so representations are
  /// comparable end to end.
  size_t BytesHighWater = 0;
  /// \name Points-to set storage telemetry, sampled at fixpoint.
  /// @{
  PtsRepr ReprUsed = PtsRepr::Sorted; ///< representation of this run
  size_t PtsSets = 0;       ///< facts slots materialized (nodes with a set)
  size_t PtsSingletons = 0; ///< sets of exactly one element
  size_t PtsSizeP50 = 0;    ///< median set size over non-empty sets
  size_t PtsSizeP90 = 0;    ///< 90th-percentile set size (nearest-rank)
  size_t PtsSizeMax = 0;    ///< largest set
  size_t PtsSetBytes = 0;   ///< set storage: sizeof(PtsSet) + owned heap
  size_t PtsLogBytes = 0;   ///< append-only insertion logs (delta engines)
  size_t PtsLookupBytes = 0; ///< shared intern table (bitmap repr only)
  /// @}
};

/// One analysis run: a model plus the points-to graph it computes.
class Solver {
public:
  /// \p Prog is non-const because library summaries may add pseudo-objects
  /// (e.g. the shared "$extern" blob) during initialization.
  Solver(NormProgram &Prog, FieldModel &Model, SolverOptions Opts = {});

  /// Runs to fixpoint.
  void solve();

  /// \name Points-to graph access.
  /// @{
  /// The returned reference is stable: facts are stored in segmented
  /// storage, so later (even lazy, mid-solve) node creation never moves
  /// an existing set.
  const PtsSet &pointsTo(NodeId Node) const;
  /// normalize(obj) — the canonical node of a whole top-level object.
  NodeId normalizeObj(ObjectId Obj) { return Model.normalizeLoc(Obj, {}); }
  /// Adds the fact "From points to To". Returns true if new.
  bool addEdge(NodeId From, NodeId To);
  /// Joins pts(SrcNode) into pts(DstNode) for every resolve pair of a copy
  /// of declared type \p Tau. Returns true if anything changed.
  bool flowResolve(NodeId Dst, NodeId Src, TypeId Tau);
  /// Smears: Dst may point to every node of every object that \p Targets
  /// point into (pointer-arithmetic semantics). Returns true if changed.
  /// \p Targets may alias pts(Dst); the smear snapshots it first.
  bool flowPtrArith(NodeId Dst, const PtsSet &Targets);
  /// Total number of points-to edges.
  uint64_t numEdges() const;
  /// @}

  /// \name Queries.
  /// @{
  /// Current targets of a dereference site's pointer (stable reference).
  const PtsSet &derefTargets(const DerefSite &Site);
  /// Functions an indirect-call statement may invoke right now.
  std::vector<FuncId> calleesOf(const NormStmt &Call);
  /// The shared external-storage blob (created on first use).
  ObjectId externObject();
  /// The special Unknown location (created on first use; only meaningful
  /// with SolverOptions::TrackUnknown).
  NodeId unknownNode();
  /// True if \p Node is the Unknown location.
  bool isUnknownNode(NodeId Node) const;
  /// @}

  /// \name Checker support (see src/check/).
  /// @{
  /// Per-site resolution events of the last solve(), indexed like
  /// NormProgram::DerefSites. Empty before the first solve.
  const std::vector<SiteEvents> &siteEvents() const { return Events; }
  /// Records the flow pass's verdict for deref site \p SiteIdx: the
  /// objects that may already be deallocated when control reaches the
  /// site. Repeated calls union (a site visited from several walks keeps
  /// the conservative join). No-op for out-of-range indices or before the
  /// first solve; a re-solve clears all verdicts along with the events.
  void setSiteFlowVerdict(size_t SiteIdx,
                          const IdSet<ObjectTag> &InvalidatedBefore);
  /// Marks \p Obj deallocated (LibrarySummaries' Dealloc effect). Only
  /// heap allocation sites are recorded: freeing a stack/global object is
  /// a different bug, and the shared $extern blob aggregates every
  /// external allocation, so killing it would poison unrelated findings.
  /// The earliest free site per object (by byte offset) is kept for
  /// diagnostics, so the reported location is independent of the engine's
  /// statement visit order.
  void markFreed(ObjectId Obj, SourceLoc FreeLoc);
  /// True if \p Obj was marked freed during the solve.
  bool isFreed(ObjectId Obj) const { return Freed.contains(Obj); }
  /// All objects marked freed (deterministic order).
  const IdSet<ObjectTag> &freedObjects() const { return Freed; }
  /// Location of the earliest deallocation of \p Obj by (line, column,
  /// byte offset); invalid if not freed.
  SourceLoc freedAt(ObjectId Obj) const;
  /// @}

  /// \name Verification support (see src/verify/).
  /// @{
  /// The shared external-storage blob if one was materialized during the
  /// solve; invalid otherwise. Unlike externObject(), never creates it —
  /// the certifier must observe the solution without changing it.
  ObjectId externObjectId() const { return ExternObj; }
  /// The Unknown pseudo-object if materialized; invalid otherwise.
  ObjectId unknownObjectId() const { return UnknownObj; }
  /// Removes the fact "From points to To" if present. Exists ONLY for the
  /// mutation self-test harness (tests/verify/), which seeds fact
  /// deletions and asserts the certifier reports the solution unsound.
  /// Both endpoints are canonicalized: after any (offline or online)
  /// collapse the stored member may be any node of To's class. Every
  /// incremental per-statement structure (delta cursors, resolve caches,
  /// smear cursors) is invalidated on a successful removal, so a resumed
  /// solve cannot replay the deleted fact from stale state. Returns true
  /// if the fact was present.
  bool removeEdgeForMutation(NodeId From, NodeId To);
  /// @}

  /// \name Offline preprocessing support (src/pta/Offline.h).
  /// @{
  /// Installs the offline pass's node equivalence classes. Every engine's
  /// canon() then resolves through them, and the scc engine's online
  /// collapses compose on top (same union-find). Also pre-unites the
  /// dependents classes of the merged nodes' objects so worklist
  /// registration and re-queuing route through the shared class, exactly
  /// as an online collapse would splice them. Call before the first
  /// solve(); \p Seconds is the pass's wall-clock time, reported as
  /// SolverRunStats::OfflineSeconds.
  void seedOfflineMerges(UnionFind<NodeTag> Map, double Seconds);
  /// Class representative of \p Node under the composed offline + online
  /// merges (identity when nothing merged). Exposed for tests and tools
  /// that must reason about which nodes share a points-to set.
  NodeId canonicalNode(NodeId Node) const { return canon(Node); }
  /// @}

  NormProgram &program() { return Prog; }
  const NormProgram &program() const { return Prog; }
  FieldModel &model() { return Model; }
  const FieldModel &model() const { return Model; }
  const SolverOptions &options() const { return Opts; }
  const SolverRunStats &runStats() const { return Stats; }
  const LibrarySummaries &summaries() const { return Lib; }

private:
  /// One node's facts: the sorted set (queries, equality) plus the same
  /// members in insertion order (append-only; delta cursors index it).
  struct NodeFacts {
    PtsSet Set;
    std::vector<NodeId> Log;
  };

  /// Cached resolve pair list of one (dst, src) call site. The list is a
  /// pure function of (dst, src, tau) except that the Offsets instance
  /// enumerates the source object's materialized nodes — so the cache is
  /// revalidated against that node count and recomputed when it grew.
  struct ResolveCache {
    uint32_t SrcNodes = 0;
    std::vector<std::pair<NodeId, NodeId>> Pairs;
  };

  /// Worklist-mode per-statement state.
  struct StmtSolveState {
    /// Delta cursors: (dst, src) node pair -> length of src's log already
    /// consumed by this statement for that pair.
    std::unordered_map<uint64_t, uint32_t> Cursor;
    /// Memoized Model.resolve results, keyed like Cursor.
    std::unordered_map<uint64_t, ResolveCache> Resolve;
    /// Pointer-arithmetic smears: object -> how many of its materialized
    /// nodes this statement has already smeared into its destination.
    std::unordered_map<uint32_t, uint32_t> SmearCursor;
    /// Objects this statement is registered on in DependentsByObject
    /// (sorted flat set: O(log n) membership, each pair registered once).
    IdSet<ObjectTag> Reads;
    /// Cycle-elimination mode: canonical destination nodes of the copy
    /// edges this statement recorded, the input to its topological
    /// priority (recomputed after every SCC sweep).
    IdSet<NodeTag> CopyDsts;
  };

  bool applyStmt(const NormStmt &S);
  /// True when the memoized resolve pair list for (Dst, Src) exists and
  /// every pair joins a node with itself (the endpoints were merged
  /// offline or by a cycle collapse). Such a join can only be revived by
  /// source-object node growth, which re-queues through the OnNewNode
  /// hook even for dead statements.
  bool allPairsSelf(NodeId Dst, NodeId Src) const;
  /// Re-evaluates the running Copy statement's liveness: once every
  /// memoized resolve pair joins a node with itself, the statement is a
  /// permanent no-op — merges are never undone — so fact changes stop
  /// re-queueing it. Materialization re-queues it anyway and this runs
  /// again.
  void markDeadIfSelfCopy(NodeId Dst, NodeId Src);
  /// Same liveness rule for a direct call of a defined function: dead
  /// once every argument, and the return value, binds a merged class to
  /// itself. Indirect calls (growing callee sets), summaries (arbitrary
  /// effects), and varargs bindings (raw node joins) never qualify.
  void markDeadIfSelfCall(const NormStmt &S);
  bool applyStmtImpl(const NormStmt &S);
  bool applyCall(const NormStmt &S);
  void solveNaive();
  void solveWorklist();
  void solveCycleElim();
  void solvePar();
  /// Worklist mode: records that the running statement read the points-to
  /// facts of \p Obj, so it must re-run when they change.
  void noteRead(ObjectId Obj);
  /// Worklist mode: marks \p Node's object dirty after a points-to change.
  void noteChanged(NodeId Node);
  /// Queues every statement registered as depending on \p Obj. Dead
  /// statements (see StmtDead) are skipped unless \p IncludeDead —
  /// node materialization passes true, because a grown node set is the
  /// one event that can change a dead copy's resolve pair list.
  void queueDependents(ObjectId Obj, bool IncludeDead = false);
  /// Records budget exhaustion: clears Converged and warns via Opts.Diags.
  void reportNonConvergence(const char *Engine);
  /// Marks the running statement's deref site as type-mismatched (no-op
  /// when the statement has no site).
  void noteSiteMismatch();
  /// Binds arguments and the return value for one resolved callee.
  bool bindCall(const NormStmt &S, FuncId Callee);

  /// True while the worklist engine runs with difference propagation and
  /// a current statement to charge cursors to.
  bool deltaActive() const {
    return WorklistActive && Opts.DeltaPropagation && CurrentStmt >= 0;
  }
  static uint64_t pairKey(NodeId A, NodeId B) {
    return (uint64_t(A.index()) << 32) | B.index();
  }
  /// The core join "pts(D) ⊇ pts(S)": full outside delta mode, suffix-only
  /// inside it. Returns true if pts(D) changed.
  bool joinPair(NodeId D, NodeId S);
  /// Delta-mode pointer-arithmetic smear of the unseen targets of operand
  /// node \p Op into \p Dst.
  bool flowPtrArithDelta(NodeId Dst, NodeId Op);

  /// \name Parallel engine (active only while solvePar runs).
  /// @{
  /// Statement node ids captured after the statement's first sequential
  /// application, when every node it names is already materialized. The
  /// gather phase reads only these — workers must never call into the
  /// model or the node store's creation path (lazy materialization and
  /// the OnNewNode hook are main-thread-only effects).
  struct StmtNodes {
    bool Valid = false;
    NodeId Dst; ///< destination node (all ops)
    NodeId Src; ///< source/pointer node (Copy/Load/Store/AddrOfDeref)
    std::vector<NodeId> Ops; ///< PtrArith operand nodes
  };
  /// One statement's read-only evaluation, produced by a worker against
  /// the superstep's frozen state and committed at the barrier.
  struct GatherResult {
    /// The statement needs the sequential path (missing/stale caches, an
    /// unregistered read, possible node materialization). Proposals of a
    /// deferred result are discarded — the statement runs whole.
    bool Deferred = true;
    /// Proposed new facts (dst, target), already filtered through a
    /// contains() probe of the frozen sets.
    std::vector<std::pair<NodeId, NodeId>> NewFacts;
    struct CursorCommit {
      uint64_t Key;  ///< delta-cursor key (canonical pair)
      uint32_t End;  ///< source log length consumed at gather time
      bool Full;     ///< first consumption of the pair (stats)
    };
    std::vector<CursorCommit> Cursors;
    uint64_t Work = 0; ///< log entries scanned (imbalance accounting)
  };
  /// Read-only statement evaluation for the gather phase. Returns false
  /// when the statement must be deferred; \p G is garbage then. Runs on
  /// worker threads: must not mutate any solver, model, or store state.
  bool gatherStmt(const NormStmt &S, int32_t Idx, GatherResult &G) const;
  /// Read-only mirror of the delta joinPair for one (D, S) pair.
  bool gatherJoin(const StmtSolveState &St, NodeId D, NodeId S,
                  GatherResult &G) const;
  /// Read-only mirror of the delta flowResolve via the memoized pair list.
  bool gatherResolve(const StmtSolveState &St, NodeId Dst, NodeId Src,
                     GatherResult &G) const;
  /// Applies a gathered statement's proposals and cursor commits on the
  /// main thread, charging the same statistics the sequential path would.
  void commitGather(int32_t Idx, GatherResult &G);
  /// Captures a statement's node ids after its first sequential run.
  void captureStmtNodes(const NormStmt &S, int32_t Idx);
  /// Worker-thread canon: same classes as canon(), but resolved without
  /// path compression (find() halves paths through a mutable array — a
  /// data race under concurrent readers).
  NodeId canonNC(NodeId Node) const {
    return NodeReps.identity() ? Node : NodeReps.findNoCompress(Node);
  }
  /// @}

  /// \name Cycle elimination (active only while solveCycleElim runs).
  /// @{
  /// Class representative of \p Node (identity until a cycle collapses).
  NodeId canon(NodeId Node) const {
    return NodeReps.identity() ? Node : NodeReps.find(Node);
  }
  /// Representative object for the dependents index: when nodes of two
  /// objects land in one collapsed cycle, their dependents lists are
  /// spliced so changes to the shared set re-queue every reader.
  ObjectId canonObj(ObjectId Obj) const {
    return DepObjReps.identity() ? Obj : DepObjReps.find(Obj);
  }
  /// Sweeps the constraint graph when it grew enough since the last sweep
  /// (or always, with \p Force, for the drain-time final sweep). Returns
  /// true if any cycle was collapsed.
  bool maybeSweepSccs(bool Force = false);
  /// Collapses one SCC: unions the members, merges their facts and logs
  /// into the representative, splices dependents, re-queues readers.
  void collapseCycle(const std::vector<NodeId> &Members);
  /// Unions the dependents classes of two objects and splices the
  /// non-representative's registration list into the representative's.
  void spliceDependents(ObjectId A, ObjectId B);
  /// Recomputes every statement's topological priority from \p TopoRank.
  void recomputeStmtRanks(const std::vector<uint32_t> &TopoRank);
  /// @}

  /// Estimated bytes of worklist-mode solver state (per-statement maps,
  /// dependents index, constraint graph), for BytesHighWater.
  size_t estimateStateBytes() const;
  /// Fills the points-to storage telemetry (size histogram, byte
  /// counters) from the final Facts; called once at the end of solve().
  void collectPtsStats();
  /// Releases all worklist-mode state after the fixpoint loop exits.
  void releaseSolveState();

  NodeFacts &factsOf(NodeId Node);

  NormProgram &Prog;
  FieldModel &Model;
  SolverOptions Opts;
  LibrarySummaries Lib;
  /// Per-node facts, indexed by NodeId. Segmented so element references
  /// survive growth (lazy $unknown/$extern creation mid-query).
  SegmentedVector<NodeFacts> Facts;
  SolverRunStats Stats;
  ObjectId ExternObj;
  ObjectId UnknownObj;
  /// Per-deref-site resolution events (sized by solve()).
  std::vector<SiteEvents> Events;
  /// The statement applyStmt is currently interpreting (events recorded
  /// by nested flowResolve calls are charged to its deref site).
  const NormStmt *ActiveStmt = nullptr;
  /// Heap objects deallocated by a Dealloc library-summary effect.
  IdSet<ObjectTag> Freed;
  std::map<ObjectId, SourceLoc> FreedAt;

  /// Offline preprocessing results (seedOfflineMerges); solve() resets
  /// Stats, so the counters live here and are copied in afterwards.
  uint64_t OfflineMergedNodes = 0;
  double OfflineSecondsSpent = 0;

  /// \name Worklist state (active only while solveWorklist runs).
  /// @{
  bool WorklistActive = false;
  int32_t CurrentStmt = -1;
  std::vector<std::vector<int32_t>> DependentsByObject;
  std::vector<StmtSolveState> StmtState;
  std::vector<uint8_t> StmtQueued;
  /// Statements whose application is provably a no-op for the rest of the
  /// solve (self-copies after merging); queueDependents skips them.
  std::vector<uint8_t> StmtDead;
  std::vector<int32_t> Worklist;
  /// @}

  /// \name Cycle-elimination state.
  /// @{
  /// True while solveCycleElim runs (WorklistActive is also true then).
  bool SccActive = false;
  /// True while solvePar runs (SccActive is also true then): sweeps
  /// compute the condensation's level partition and statement ranks come
  /// from levels instead of topological ranks.
  bool ParActive = false;
  /// Sweep back-off multiplier: doubles (capped) every time a sweep
  /// collapses nothing and resets on a collapse, so graphs the offline
  /// HVN pass already left acyclic stop paying for fruitless re-scans
  /// (the PR 7 hvn_matrix regression).
  uint64_t SweepBackoff = 1;
  /// Captured per-statement node ids for the parallel gather phase.
  std::vector<StmtNodes> StmtNodeCache;
  /// Merged copy-cycle classes. Outlives the solve: pointsTo()/factsOf()
  /// resolve through it so queries on merged nodes reach the shared set.
  UnionFind<NodeTag> NodeReps;
  /// Object classes for the dependents index (see canonObj).
  UnionFind<ObjectTag> DepObjReps;
  /// The materialized copy-edge graph (released after fixpoint).
  ConstraintGraph CopyGraph;
  /// Per-statement topological priority (lower pops first).
  std::vector<uint32_t> StmtRank;
  /// Priority worklist: (rank, statement) min-heap; the statement index
  /// breaks ties so the order is deterministic.
  std::priority_queue<std::pair<uint32_t, int32_t>,
                      std::vector<std::pair<uint32_t, int32_t>>,
                      std::greater<>>
      PrioWorklist;
  /// @}
};

} // namespace spa

#endif // SPA_PTA_SOLVER_H
