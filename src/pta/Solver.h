//===--- Solver.h - Inference-rule fixpoint engine -------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-insensitive, context-insensitive solver: it interprets every
/// normalized statement with the model's normalize/lookup/resolve until no
/// new points-to edge can be added — the paper's "use the rules of
/// inference to add additional edges, each of which represents one
/// points-to fact" (Section 5). Calls are bound context-insensitively;
/// indirect calls use the current points-to set of the function pointer
/// (an on-the-fly call graph, re-examined every round).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_SOLVER_H
#define SPA_PTA_SOLVER_H

#include "pta/FieldModel.h"
#include "pta/LibrarySummaries.h"

namespace spa {

/// Tuning knobs for one solver run.
struct SolverOptions {
  /// Apply LibrarySummaries to calls of undefined functions.
  bool UseLibrarySummaries = true;
  /// Apply the paper's Assumption-1 rule to pointer arithmetic (results
  /// may point to any sub-field of the operands' objects). Disabling it is
  /// UNSOUND and exists only for the ablation benchmark that measures what
  /// the conservative rule costs.
  bool HandlePtrArith = true;
  /// Wilson/Lam-style stride refinement (paper, Section 6): pointer
  /// arithmetic on a pointer into an array cannot escape the array, so
  /// (arrays being one representative element) the target is unchanged.
  /// A sound precision improvement over plain Assumption 1 for array
  /// walking; off by default to match the paper's algorithms exactly.
  bool StrideArith = false;
  /// The paper's Section-4.2.1 alternative to Assumption 1: instead of
  /// smearing, pointer-arithmetic results are tagged with the special
  /// Unknown location ("a pointer that may have been corrupted"), which
  /// clients can use to flag potential misuses of memory. Dereferences of
  /// Unknown do not propagate facts, so this mode is NOT sound for
  /// programs that really do move pointers; it exists to reproduce the
  /// paper's discussion of the trade-off.
  bool TrackUnknown = false;
  /// Solve with an object-granularity worklist instead of the paper's
  /// repeat-all-statements rounds. Computes the identical fixpoint (the
  /// property tests assert bit-for-bit equal graphs) but touches only the
  /// statements whose inputs changed; a large win on bigger programs.
  /// Off by default so the default configuration is the paper's
  /// algorithm, statement for statement.
  bool UseWorklist = false;
  /// Hard iteration cap (a safety net; real programs converge quickly).
  unsigned MaxIterations = 100000;
};

/// Run statistics.
struct SolverRunStats {
  unsigned Iterations = 0;   ///< rounds (naive) or total pops (worklist)
  uint64_t StmtsApplied = 0; ///< statement evaluations, either mode
  uint64_t Edges = 0;
  size_t Nodes = 0;
};

/// One analysis run: a model plus the points-to graph it computes.
class Solver {
public:
  /// \p Prog is non-const because library summaries may add pseudo-objects
  /// (e.g. the shared "$extern" blob) during initialization.
  Solver(NormProgram &Prog, FieldModel &Model, SolverOptions Opts = {});

  /// Runs to fixpoint.
  void solve();

  /// \name Points-to graph access.
  /// @{
  const PtsSet &pointsTo(NodeId Node) const;
  /// normalize(obj) — the canonical node of a whole top-level object.
  NodeId normalizeObj(ObjectId Obj) { return Model.normalizeLoc(Obj, {}); }
  /// Adds the fact "From points to To". Returns true if new.
  bool addEdge(NodeId From, NodeId To);
  /// Joins pts(SrcNode) into pts(DstNode) for every resolve pair of a copy
  /// of declared type \p Tau. Returns true if anything changed.
  bool flowResolve(NodeId Dst, NodeId Src, TypeId Tau);
  /// Smears: Dst may point to every node of every object that \p Targets
  /// point into (pointer-arithmetic semantics). Returns true if changed.
  bool flowPtrArith(NodeId Dst, const PtsSet &Targets);
  /// Total number of points-to edges.
  uint64_t numEdges() const;
  /// @}

  /// \name Queries.
  /// @{
  /// Current targets of a dereference site's pointer.
  const PtsSet &derefTargets(const DerefSite &Site);
  /// Functions an indirect-call statement may invoke right now.
  std::vector<FuncId> calleesOf(const NormStmt &Call);
  /// The shared external-storage blob (created on first use).
  ObjectId externObject();
  /// The special Unknown location (created on first use; only meaningful
  /// with SolverOptions::TrackUnknown).
  NodeId unknownNode();
  /// True if \p Node is the Unknown location.
  bool isUnknownNode(NodeId Node) const;
  /// @}

  NormProgram &program() { return Prog; }
  const NormProgram &program() const { return Prog; }
  FieldModel &model() { return Model; }
  const FieldModel &model() const { return Model; }
  const SolverRunStats &runStats() const { return Stats; }
  const LibrarySummaries &summaries() const { return Lib; }

private:
  bool applyStmt(const NormStmt &S);
  bool applyCall(const NormStmt &S);
  void solveNaive();
  void solveWorklist();
  /// Worklist mode: records that the running statement read the points-to
  /// facts of \p Obj, so it must re-run when they change.
  void noteRead(ObjectId Obj);
  /// Worklist mode: marks \p Node's object dirty after a points-to change.
  void noteChanged(NodeId Node);
  /// Binds arguments and the return value for one resolved callee.
  bool bindCall(const NormStmt &S, FuncId Callee);

  PtsSet &ptsOf(NodeId Node);

  NormProgram &Prog;
  FieldModel &Model;
  SolverOptions Opts;
  LibrarySummaries Lib;
  std::vector<PtsSet> Pts; ///< indexed by NodeId
  SolverRunStats Stats;
  ObjectId ExternObj;
  ObjectId UnknownObj;

  /// \name Worklist state (active only while solveWorklist runs).
  /// @{
  bool WorklistActive = false;
  int32_t CurrentStmt = -1;
  std::vector<std::vector<int32_t>> DependentsByObject;
  std::vector<uint8_t> StmtQueued;
  std::vector<int32_t> Worklist;
  /// @}
};

} // namespace spa

#endif // SPA_PTA_SOLVER_H
