//===--- Telemetry.cpp ----------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pta/Telemetry.h"

#include "support/Json.h"

#include <fstream>
#include <iostream>

using namespace spa;

RunTelemetry spa::collectTelemetry(Analysis &A, std::string ProgramLabel) {
  RunTelemetry T;
  T.Program = std::move(ProgramLabel);
  T.Model = A.options().Model;
  T.Options = A.solver().options();
  const NormProgram &Prog = A.solver().program();
  T.Functions = Prog.Funcs.size();
  T.Objects = Prog.Objects.size();
  T.Stmts = Prog.Stmts.size();
  T.DerefSites = Prog.DerefSites.size();
  T.Solver = A.solver().runStats();
  T.Model_ = A.model().stats();
  T.Deref = A.derefMetrics();
  return T;
}

namespace {

/// JSON names for the per-rule counters, indexed by NormOp.
constexpr const char *RuleNames[NumSolverRules] = {
    "addr_of", "addr_of_deref", "copy", "load", "store", "ptr_arith", "call",
};

} // namespace

std::string spa::telemetryToJson(const RunTelemetry &T) {
  std::string Out;
  Out += '{';
  JsonWriter W(Out);
  W.field("schema", std::string(RunTelemetry::SchemaId));
  if (!T.Program.empty())
    W.field("program", T.Program);
  W.field("model", std::string(modelKindName(T.Model)));

  W.open("options");
  W.field("use_worklist", T.Options.UseWorklist);
  W.field("delta_propagation", T.Options.DeltaPropagation);
  W.field("cycle_elimination", T.Options.CycleElimination);
  W.field("parallel_solve", T.Options.ParallelSolve);
  W.field("threads", uint64_t(T.Options.Threads));
  W.field("use_library_summaries", T.Options.UseLibrarySummaries);
  W.field("handle_ptr_arith", T.Options.HandlePtrArith);
  W.field("stride_arith", T.Options.StrideArith);
  W.field("track_unknown", T.Options.TrackUnknown);
  W.field("pts_repr", std::string(ptsReprName(T.Options.PointsTo)));
  W.field("preprocess", std::string(T.Options.Preprocess ==
                                            PreprocessKind::Hvn
                                        ? "hvn"
                                        : "none"));
  W.field("max_iterations", uint64_t(T.Options.MaxIterations));
  W.close();

  W.open("program_shape");
  W.field("functions", uint64_t(T.Functions));
  W.field("objects", uint64_t(T.Objects));
  W.field("stmts", uint64_t(T.Stmts));
  W.field("deref_sites", uint64_t(T.DerefSites));
  W.close();

  W.open("solver");
  W.field("converged", T.Solver.Converged);
  W.field("rounds", uint64_t(T.Solver.Rounds));
  W.field("pops", T.Solver.Pops);
  W.field("stmts_applied", T.Solver.StmtsApplied);
  W.field("edges", T.Solver.Edges);
  W.field("nodes", uint64_t(T.Solver.Nodes));
  W.field("full_propagations", T.Solver.FullPropagations);
  W.field("delta_propagations", T.Solver.DeltaPropagations);
  W.field("worklist_high_water", uint64_t(T.Solver.WorklistHighWater));
  W.field("scc_sweeps", T.Solver.SccSweeps);
  W.field("sccs_collapsed", T.Solver.SccsCollapsed);
  W.field("nodes_merged_online", T.Solver.NodesMergedOnline);
  W.field("nodes_merged_offline", T.Solver.NodesMergedOffline);
  W.field("offline_ms", T.Solver.OfflineSeconds * 1000.0);
  W.field("priority_pops", T.Solver.PriorityPops);
  W.field("copy_edges", T.Solver.CopyEdges);
  W.field("threads", uint64_t(T.Solver.ThreadsUsed));
  W.field("levels", uint64_t(T.Solver.Levels));
  W.field("barrier_merges", T.Solver.BarrierMerges);
  W.field("par_gathered", T.Solver.ParGathered);
  W.field("par_deferred", T.Solver.ParDeferred);
  W.field("par_imbalance_pct", T.Solver.ParImbalancePct);
  W.field("bytes_high_water", uint64_t(T.Solver.BytesHighWater));
  W.field("solve_seconds", T.Solver.SolveSeconds);
  W.open("pts_sets");
  W.field("repr", std::string(ptsReprName(T.Solver.ReprUsed)));
  W.field("count", uint64_t(T.Solver.PtsSets));
  W.field("singletons", uint64_t(T.Solver.PtsSingletons));
  W.field("size_p50", uint64_t(T.Solver.PtsSizeP50));
  W.field("size_p90", uint64_t(T.Solver.PtsSizeP90));
  W.field("size_max", uint64_t(T.Solver.PtsSizeMax));
  W.field("set_bytes", uint64_t(T.Solver.PtsSetBytes));
  W.field("log_bytes", uint64_t(T.Solver.PtsLogBytes));
  W.field("lookup_bytes", uint64_t(T.Solver.PtsLookupBytes));
  W.close();
  W.open("rule_applied");
  for (unsigned I = 0; I < NumSolverRules; ++I)
    W.field(RuleNames[I], T.Solver.RuleApplied[I]);
  W.close();
  W.open("rule_changed");
  for (unsigned I = 0; I < NumSolverRules; ++I)
    W.field(RuleNames[I], T.Solver.RuleChanged[I]);
  W.close();
  W.close();

  W.open("model_stats");
  W.field("lookup_calls", T.Model_.LookupCalls);
  W.field("lookup_struct", T.Model_.LookupStruct);
  W.field("lookup_mismatch", T.Model_.LookupMismatch);
  W.field("resolve_calls", T.Model_.ResolveCalls);
  W.field("resolve_struct", T.Model_.ResolveStruct);
  W.field("resolve_mismatch", T.Model_.ResolveMismatch);
  W.close();

  if (T.Verify.CertifyRan || T.Verify.IrVerifyRan || T.Verify.CfgVerifyRan) {
    W.open("verify");
    W.field("certify_ran", T.Verify.CertifyRan);
    if (T.Verify.CertifyRan) {
      W.field("obligations", T.Verify.Obligations);
      W.field("violations", T.Verify.Violations);
      W.field("facts_total", T.Verify.FactsTotal);
      W.field("facts_unjustified", T.Verify.FactsUnjustified);
      W.field("freed_unjustified", T.Verify.FreedUnjustified);
      W.field("certify_seconds", T.Verify.CertifySeconds);
    }
    W.field("ir_verify_ran", T.Verify.IrVerifyRan);
    if (T.Verify.IrVerifyRan) {
      W.field("ir_checks", T.Verify.IrChecks);
      W.field("ir_violations", T.Verify.IrViolations);
    }
    W.field("cfg_verify_ran", T.Verify.CfgVerifyRan);
    if (T.Verify.CfgVerifyRan) {
      W.field("cfg_checks", T.Verify.CfgChecks);
      W.field("cfg_violations", T.Verify.CfgViolations);
    }
    W.close();
  }

  if (T.Flow.FlowRan) {
    W.open("flow");
    W.field("objects_invalidated", T.Flow.ObjectsInvalidated);
    W.field("sites_refined", T.Flow.SitesRefined);
    W.field("reports_suppressed", T.Flow.ReportsSuppressed);
    if (T.Flow.CfgMode) {
      W.field("cfg_blocks", T.Flow.CfgBlocks);
      W.field("cfg_edges", T.Flow.CfgEdges);
      W.field("join_merges", T.Flow.JoinMerges);
      W.field("exit_summaries", T.Flow.ExitSummaries);
    }
    W.field("flow_ms", T.Flow.FlowSeconds * 1000.0);
    W.field("audit_ran", T.Flow.AuditRan);
    if (T.Flow.AuditRan)
      W.field("audit_violations", T.Flow.AuditViolations);
    W.close();
  }

  W.open("deref_metrics");
  W.field("sites", uint64_t(T.Deref.Sites));
  W.field("non_empty_sites", uint64_t(T.Deref.NonEmptySites));
  W.field("total_targets", T.Deref.TotalTargets);
  W.field("avg_set_size", T.Deref.AvgSetSize);
  W.field("avg_non_empty", T.Deref.AvgNonEmpty);
  W.field("max_set_size", T.Deref.MaxSetSize);
  W.field("unknown_sites", uint64_t(T.Deref.UnknownSites));
  W.close();

  Out += "}\n";
  return Out;
}

bool spa::writeTelemetryJson(const RunTelemetry &T, const std::string &Path) {
  std::string Json = telemetryToJson(T);
  if (Path == "-") {
    std::cout << Json;
    return bool(std::cout);
  }
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << Json;
  return bool(Out);
}
