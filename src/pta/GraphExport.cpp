//===--- GraphExport.cpp --------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pta/GraphExport.h"

#include "pta/Metrics.h"

#include <algorithm>
#include <set>

using namespace spa;

namespace {

/// Collects the printable edges once for both exporters.
std::vector<std::pair<std::string, std::string>>
collectEdges(const Solver &S, const ExportOptions &Opts) {
  const NormProgram &Prog = S.program();
  const NodeStore &Nodes = S.model().nodes();
  auto Wanted = [&](NodeId Node) {
    ObjectId Obj = Nodes.objectOf(Node);
    return Opts.IncludeTemps ||
           Prog.object(Obj).Kind != ObjectKind::Temp;
  };

  std::vector<std::pair<std::string, std::string>> Edges;
  for (uint32_t I = 0; I < Nodes.size(); ++I) {
    NodeId From(I);
    if (!Wanted(From))
      continue;
    for (NodeId To : S.pointsTo(From)) {
      if (!Wanted(To))
        continue;
      Edges.emplace_back(nodeToString(S, From), nodeToString(S, To));
    }
  }
  std::sort(Edges.begin(), Edges.end());
  Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
  return Edges;
}

std::string escapeDot(const std::string &Label) {
  std::string Out;
  for (char C : Label) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

std::string spa::exportDot(const Solver &S, const ExportOptions &Opts) {
  auto Edges = collectEdges(S, Opts);
  std::set<std::string> Mentioned;
  for (const auto &[From, To] : Edges) {
    Mentioned.insert(From);
    Mentioned.insert(To);
  }

  std::string Out = "digraph pointsto {\n  rankdir=LR;\n  node [shape=box, "
                    "fontname=\"monospace\"];\n";
  if (Opts.IncludeIsolated) {
    const NodeStore &Nodes = S.model().nodes();
    for (uint32_t I = 0; I < Nodes.size(); ++I)
      Mentioned.insert(nodeToString(S, NodeId(I)));
  }
  for (const std::string &Name : Mentioned)
    Out += "  \"" + escapeDot(Name) + "\";\n";
  for (const auto &[From, To] : Edges)
    Out += "  \"" + escapeDot(From) + "\" -> \"" + escapeDot(To) + "\";\n";
  Out += "}\n";
  return Out;
}

std::string spa::exportEdgeList(const Solver &S, const ExportOptions &Opts) {
  std::string Out;
  for (const auto &[From, To] : collectEdges(S, Opts)) {
    Out += From;
    Out += " -> ";
    Out += To;
    Out += '\n';
  }
  return Out;
}

std::vector<std::vector<FuncId>> spa::buildCallGraph(Solver &S) {
  const NormProgram &Prog = S.program();
  std::vector<std::vector<FuncId>> Graph(Prog.Funcs.size());
  for (const NormStmt &St : Prog.Stmts) {
    if (St.Op != NormOp::Call || !St.Owner.isValid())
      continue;
    std::vector<FuncId> &Out = Graph[St.Owner.index()];
    for (FuncId Callee : S.calleesOf(St))
      Out.push_back(Callee);
  }
  for (std::vector<FuncId> &Out : Graph) {
    std::sort(Out.begin(), Out.end(),
              [](FuncId A, FuncId B) { return A.index() < B.index(); });
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  }
  return Graph;
}
