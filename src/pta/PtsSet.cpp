//===--- PtsSet.cpp - Pluggable points-to set representations -------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pta/PtsSet.h"

#include <algorithm>
#include <cassert>

namespace spa {

const char *ptsReprName(PtsRepr R) {
  switch (R) {
  case PtsRepr::Sorted:
    return "sorted";
  case PtsRepr::Small:
    return "small";
  case PtsRepr::Bitmap:
    return "bitmap";
  case PtsRepr::Offsets:
    return "offsets";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Representation adoption and shared views
//===----------------------------------------------------------------------===//

void PtsSet::adoptRepr(PtsRepr R, const NodeStore *NS) {
  if (Kind == R) {
    if (!Store && NS)
      Store = NS;
    return;
  }
  // Representation change: decode, reset every storage arm, re-insert.
  std::vector<value_type> Elems(begin(), end());
  const NodeStore *Keep = NS ? NS : Store;
  Vec = IdSet<NodeTag>();
  Chunks.clear();
  Chunks.shrink_to_fit();
  Objects.clear();
  Objects.shrink_to_fit();
  HighOrds.clear();
  HighOrds.shrink_to_fit();
  Cache.clear();
  Cache.shrink_to_fit();
  CacheValid = false;
  Count = 0;
  SmallCount = 0;
  Kind = R;
  Store = Keep;
  for (value_type V : Elems)
    insert(V);
}

size_t PtsSet::size() const {
  switch (Kind) {
  case PtsRepr::Sorted:
    return Vec.size();
  case PtsRepr::Small:
    return spilled() ? Vec.size() : SmallCount;
  case PtsRepr::Bitmap:
  case PtsRepr::Offsets:
    return Count;
  }
  return 0;
}

PtsSet::const_iterator PtsSet::begin() const {
  switch (Kind) {
  case PtsRepr::Sorted:
    return Vec.data();
  case PtsRepr::Small:
    return spilled() ? Vec.data() : Inline;
  case PtsRepr::Bitmap:
  case PtsRepr::Offsets:
    return decoded().data();
  }
  return nullptr;
}

void PtsSet::decodeInto(std::vector<value_type> &Out) const {
  switch (Kind) {
  case PtsRepr::Sorted:
    Out.assign(Vec.begin(), Vec.end());
    return;
  case PtsRepr::Small:
    if (spilled())
      Out.assign(Vec.begin(), Vec.end());
    else
      Out.assign(Inline, Inline + SmallCount);
    return;
  case PtsRepr::Bitmap: {
    if (!Store)
      return;
    const InternTable<NodeTag> &IT = Store->ptsInterner();
    WordCursor C{Chunks};
    while (!C.done()) {
      uint32_t Base = C.word() * 64;
      for (uint64_t T = C.bits(); T; T &= T - 1)
        Out.push_back(IT.valueOf(Base + __builtin_ctzll(T)));
      C.next();
    }
    // Intern order is first-use, not id order: restore the id ordering
    // every caller of begin() relies on.
    std::sort(Out.begin(), Out.end());
    return;
  }
  case PtsRepr::Offsets: {
    if (!Store)
      return;
    for (const ObjEntry &E : Objects) {
      const std::vector<value_type> &Nodes = Store->nodesOfObject(E.Obj);
      for (uint32_t T = E.Low; T; T &= T - 1)
        Out.push_back(Nodes[__builtin_ctz(T)]);
    }
    for (const auto &P : HighOrds)
      Out.push_back(Store->nodesOfObject(ObjectId(P.first))[P.second]);
    std::sort(Out.begin(), Out.end());
    return;
  }
  }
}

const std::vector<PtsSet::value_type> &PtsSet::decoded() const {
  if (!CacheValid) {
    Cache.clear();
    decodeInto(Cache);
    CacheValid = true;
  }
  return Cache;
}

size_t PtsSet::heapBytes() const {
  return Vec.heapBytes() + Chunks.capacity() * sizeof(BitChunk) +
         Objects.capacity() * sizeof(ObjEntry) +
         HighOrds.capacity() * sizeof(std::pair<uint32_t, uint32_t>);
}

bool operator==(const PtsSet &A, const PtsSet &B) {
  if (A.size() != B.size())
    return false;
  return std::equal(A.begin(), A.end(), B.begin());
}

//===----------------------------------------------------------------------===//
// Element operations
//===----------------------------------------------------------------------===//

bool PtsSet::insert(value_type V) {
  switch (Kind) {
  case PtsRepr::Sorted:
    return Vec.insert(V);
  case PtsRepr::Small:
    return insertSmall(V);
  case PtsRepr::Bitmap: {
    assert(Store && "bitmap set used without a bound NodeStore");
    bool Changed = insertBit(Store->ptsInterner().intern(V));
    return Changed;
  }
  case PtsRepr::Offsets: {
    assert(Store && "offsets set used without a bound NodeStore");
    ObjectId Obj = Store->objectOf(V);
    uint32_t Ord = Store->ordinalOf(V);
    if (Ord < 32) {
      uint32_t M = uint32_t(1) << Ord;
      ObjEntry &E = Objects[entryFor(Obj, /*Create=*/true)];
      if (E.Low & M)
        return false;
      E.Low |= M;
    } else {
      std::pair<uint32_t, uint32_t> P{Obj.rawValue(), Ord};
      auto It = std::lower_bound(HighOrds.begin(), HighOrds.end(), P);
      if (It != HighOrds.end() && *It == P)
        return false;
      HighOrds.insert(It, P);
    }
    ++Count;
    invalidate();
    return true;
  }
  }
  return false;
}

bool PtsSet::contains(value_type V) const {
  switch (Kind) {
  case PtsRepr::Sorted:
    return Vec.contains(V);
  case PtsRepr::Small:
    if (spilled())
      return Vec.contains(V);
    return std::binary_search(Inline, Inline + SmallCount, V);
  case PtsRepr::Bitmap: {
    if (!Store || Count == 0)
      return false;
    // find(), not intern(): membership tests must not grow the shared
    // intern table.
    uint32_t Bit = Store->ptsInterner().find(V);
    return Bit != InternTable<NodeTag>::None && containsBit(Bit);
  }
  case PtsRepr::Offsets: {
    if (!Store || Count == 0)
      return false;
    uint32_t Ord = Store->ordinalOf(V);
    if (Ord < 32) {
      size_t I = findEntry(Store->objectOf(V));
      return I != SIZE_MAX && ((Objects[I].Low >> Ord) & 1);
    }
    return std::binary_search(
        HighOrds.begin(), HighOrds.end(),
        std::pair<uint32_t, uint32_t>{Store->objectOf(V).rawValue(), Ord});
  }
  }
  return false;
}

bool PtsSet::erase(value_type V) {
  switch (Kind) {
  case PtsRepr::Sorted:
    return Vec.erase(V);
  case PtsRepr::Small: {
    if (spilled())
      return Vec.erase(V);
    value_type *End = Inline + SmallCount;
    value_type *It = std::lower_bound(Inline, End, V);
    if (It == End || !(*It == V))
      return false;
    std::move(It + 1, End, It);
    --SmallCount;
    return true;
  }
  case PtsRepr::Bitmap: {
    if (!Store || Count == 0)
      return false;
    uint32_t Bit = Store->ptsInterner().find(V);
    return Bit != InternTable<NodeTag>::None && eraseBit(Bit);
  }
  case PtsRepr::Offsets: {
    if (!Store || Count == 0)
      return false;
    uint32_t Ord = Store->ordinalOf(V);
    if (Ord < 32) {
      size_t I = findEntry(Store->objectOf(V));
      if (I == SIZE_MAX)
        return false;
      uint32_t M = uint32_t(1) << Ord;
      if (!(Objects[I].Low & M))
        return false;
      Objects[I].Low &= ~M;
      if (Objects[I].Low == 0)
        Objects.erase(Objects.begin() + static_cast<ptrdiff_t>(I));
    } else {
      std::pair<uint32_t, uint32_t> P{Store->objectOf(V).rawValue(), Ord};
      auto It = std::lower_bound(HighOrds.begin(), HighOrds.end(), P);
      if (It == HighOrds.end() || *It != P)
        return false;
      HighOrds.erase(It);
    }
    --Count;
    invalidate();
    return true;
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Bulk operations
//===----------------------------------------------------------------------===//

size_t PtsSet::insertAll(const PtsSet &Other,
                         std::vector<value_type> *NewElems) {
  if (&Other == this || Other.empty())
    return 0;
  if (Kind == Other.Kind) {
    switch (Kind) {
    case PtsRepr::Sorted:
      return Vec.insertAll(Other.Vec, NewElems);
    case PtsRepr::Small:
      // A spilled source can exceed the inline capacity: spill first so
      // the merge is one IdSet merge instead of element-wise shifting.
      if (!spilled() && Other.spilled() &&
          SmallCount + Other.Vec.size() > SmallCap)
        spill();
      if (spilled() && Other.spilled())
        return Vec.insertAll(Other.Vec, NewElems);
      break; // inline on either side: element-wise is the fast path
    case PtsRepr::Bitmap:
      if (Store == Other.Store)
        return insertAllBitmap(Other, NewElems);
      break;
    case PtsRepr::Offsets:
      if (Store == Other.Store)
        return insertAllOffsets(Other, NewElems);
      break;
    }
  }
  return insertAllGeneric(Other, NewElems);
}

size_t PtsSet::insertAllGeneric(const PtsSet &Other,
                                std::vector<value_type> *NewElems) {
  // Other's iteration is ascending by id, so logging as we go preserves
  // the cross-representation log order contract.
  size_t New = 0;
  for (value_type V : Other) {
    if (!insert(V))
      continue;
    ++New;
    if (NewElems)
      NewElems->push_back(V);
  }
  return New;
}

bool PtsSet::containsAll(const PtsSet &Other) const {
  if (&Other == this || Other.empty())
    return true;
  if (Other.size() > size())
    return false;
  if (Kind == Other.Kind) {
    switch (Kind) {
    case PtsRepr::Sorted:
      return Vec.containsAll(Other.Vec);
    case PtsRepr::Small:
      if (spilled() && Other.spilled())
        return Vec.containsAll(Other.Vec);
      break;
    case PtsRepr::Bitmap:
      if (Store == Other.Store)
        return containsAllBitmap(Other);
      break;
    case PtsRepr::Offsets:
      if (Store == Other.Store)
        return containsAllOffsets(Other);
      break;
    }
  }
  for (value_type V : Other)
    if (!contains(V))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Small representation
//===----------------------------------------------------------------------===//

bool PtsSet::insertSmall(value_type V) {
  if (spilled())
    return Vec.insert(V);
  value_type *End = Inline + SmallCount;
  value_type *It = std::lower_bound(Inline, End, V);
  if (It != End && *It == V)
    return false;
  if (SmallCount == SmallCap) {
    spill();
    return Vec.insert(V);
  }
  std::move_backward(It, End, End + 1);
  *It = V;
  ++SmallCount;
  return true;
}

void PtsSet::spill() {
  // Inline ids are sorted, so each insert hits IdSet's append fast path.
  for (unsigned I = 0; I < SmallCount; ++I)
    Vec.insert(Inline[I]);
  SmallCount = SmallCap + 1; // spilled marker
}

//===----------------------------------------------------------------------===//
// Bitmap representation
//===----------------------------------------------------------------------===//

size_t PtsSet::chunkCovering(uint32_t W) const {
  auto It = std::upper_bound(
      Chunks.begin(), Chunks.end(), W,
      [](uint32_t Word, const BitChunk &C) { return Word < C.Word; });
  if (It == Chunks.begin())
    return SIZE_MAX;
  --It;
  uint32_t Span = It->Run ? It->Run : 1;
  if (W < It->Word + Span)
    return static_cast<size_t>(It - Chunks.begin());
  return SIZE_MAX;
}

void PtsSet::promoteToRun(size_t I) {
  Chunks[I].Run = 1;
  Chunks[I].Bits = 0;
  if (I + 1 < Chunks.size() && Chunks[I + 1].Run &&
      Chunks[I].Word + 1 == Chunks[I + 1].Word) {
    Chunks[I].Run += Chunks[I + 1].Run;
    Chunks.erase(Chunks.begin() + static_cast<ptrdiff_t>(I) + 1);
  }
  if (I > 0 && Chunks[I - 1].Run &&
      Chunks[I - 1].Word + Chunks[I - 1].Run == Chunks[I].Word) {
    Chunks[I - 1].Run += Chunks[I].Run;
    Chunks.erase(Chunks.begin() + static_cast<ptrdiff_t>(I));
  }
}

bool PtsSet::insertBit(uint32_t Bit) {
  uint32_t W = Bit >> 6;
  uint64_t M = uint64_t(1) << (Bit & 63);
  size_t I = chunkCovering(W);
  if (I != SIZE_MAX) {
    BitChunk &C = Chunks[I];
    if (C.Run || (C.Bits & M))
      return false;
    C.Bits |= M;
    if (C.Bits == ~uint64_t(0))
      promoteToRun(I);
  } else {
    auto It = std::upper_bound(
        Chunks.begin(), Chunks.end(), W,
        [](uint32_t Word, const BitChunk &C) { return Word < C.Word; });
    Chunks.insert(It, {W, 0, M});
  }
  ++Count;
  invalidate();
  return true;
}

bool PtsSet::containsBit(uint32_t Bit) const {
  size_t I = chunkCovering(Bit >> 6);
  if (I == SIZE_MAX)
    return false;
  const BitChunk &C = Chunks[I];
  return C.Run || ((C.Bits >> (Bit & 63)) & 1);
}

bool PtsSet::eraseBit(uint32_t Bit) {
  uint32_t W = Bit >> 6;
  uint64_t M = uint64_t(1) << (Bit & 63);
  size_t I = chunkCovering(W);
  if (I == SIZE_MAX)
    return false;
  BitChunk C = Chunks[I];
  if (C.Run == 0) {
    if (!(C.Bits & M))
      return false;
    Chunks[I].Bits &= ~M;
    if (Chunks[I].Bits == 0)
      Chunks.erase(Chunks.begin() + static_cast<ptrdiff_t>(I));
  } else {
    // Split the run around the cleared bit: run-before, 63-bit partial
    // word, run-after (either side may be empty).
    BitChunk Repl[3];
    size_t N = 0;
    if (W > C.Word)
      Repl[N++] = {C.Word, W - C.Word, 0};
    Repl[N++] = {W, 0, ~M};
    if (C.Word + C.Run > W + 1)
      Repl[N++] = {W + 1, C.Word + C.Run - (W + 1), 0};
    Chunks.erase(Chunks.begin() + static_cast<ptrdiff_t>(I));
    Chunks.insert(Chunks.begin() + static_cast<ptrdiff_t>(I), Repl, Repl + N);
  }
  --Count;
  invalidate();
  return true;
}

size_t PtsSet::insertAllBitmap(const PtsSet &Other,
                               std::vector<value_type> *NewElems) {
  // Alloc-free pre-pass: at a fixpoint most joins add nothing, and the
  // subset scan below never allocates.
  if (containsAllBitmap(Other))
    return 0;
  std::vector<BitChunk> Out;
  Out.reserve(Chunks.size() + Other.Chunks.size());
  std::vector<uint32_t> NewBits;
  auto append = [&Out](uint32_t W, uint64_t Bits) {
    if (Bits == ~uint64_t(0)) {
      if (!Out.empty() && Out.back().Run &&
          Out.back().Word + Out.back().Run == W) {
        ++Out.back().Run;
        return;
      }
      Out.push_back({W, 1, 0});
    } else if (Bits) {
      Out.push_back({W, 0, Bits});
    }
  };
  WordCursor A{Chunks}, B{Other.Chunks};
  while (!A.done() || !B.done()) {
    if (B.done() || (!A.done() && A.word() < B.word())) {
      append(A.word(), A.bits());
      A.next();
    } else if (A.done() || B.word() < A.word()) {
      uint32_t Base = B.word() * 64;
      for (uint64_t T = B.bits(); T; T &= T - 1)
        NewBits.push_back(Base + __builtin_ctzll(T));
      append(B.word(), B.bits());
      B.next();
    } else {
      uint64_t Ab = A.bits(), Bb = B.bits();
      uint32_t Base = A.word() * 64;
      for (uint64_t T = Bb & ~Ab; T; T &= T - 1)
        NewBits.push_back(Base + __builtin_ctzll(T));
      append(A.word(), Ab | Bb);
      A.next();
      B.next();
    }
  }
  Chunks = std::move(Out);
  Count += static_cast<uint32_t>(NewBits.size());
  invalidate();
  if (NewElems) {
    const InternTable<NodeTag> &IT = Store->ptsInterner();
    size_t Base = NewElems->size();
    for (uint32_t Bit : NewBits)
      NewElems->push_back(IT.valueOf(Bit));
    // Intern order is not id order; the log contract is ascending ids.
    std::sort(NewElems->begin() + static_cast<ptrdiff_t>(Base),
              NewElems->end());
  }
  return NewBits.size();
}

bool PtsSet::containsAllBitmap(const PtsSet &Other) const {
  WordCursor A{Chunks}, B{Other.Chunks};
  while (!B.done()) {
    if (A.done())
      return false;
    if (A.word() < B.word()) {
      A.next();
      continue;
    }
    if (B.word() < A.word())
      return false;
    if (B.bits() & ~A.bits())
      return false;
    A.next();
    B.next();
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Offsets representation
//===----------------------------------------------------------------------===//

size_t PtsSet::findEntry(ObjectId Obj) const {
  auto It = std::lower_bound(
      Objects.begin(), Objects.end(), Obj,
      [](const ObjEntry &E, ObjectId O) { return E.Obj < O; });
  if (It != Objects.end() && It->Obj == Obj)
    return static_cast<size_t>(It - Objects.begin());
  return SIZE_MAX;
}

size_t PtsSet::entryFor(ObjectId Obj, bool Create) {
  auto It = std::lower_bound(
      Objects.begin(), Objects.end(), Obj,
      [](const ObjEntry &E, ObjectId O) { return E.Obj < O; });
  if (It != Objects.end() && It->Obj == Obj)
    return static_cast<size_t>(It - Objects.begin());
  if (!Create)
    return SIZE_MAX;
  // Position before the insert: the insert may reallocate, and the two
  // operands of `insert(...) - begin()` have no evaluation order.
  size_t Pos = static_cast<size_t>(It - Objects.begin());
  Objects.insert(It, ObjEntry{Obj, 0});
  return Pos;
}

size_t PtsSet::insertAllOffsets(const PtsSet &Other,
                                std::vector<value_type> *NewElems) {
  size_t New = 0;
  size_t Base = NewElems ? NewElems->size() : 0;
  for (const ObjEntry &BE : Other.Objects) {
    // Per-object fast path: one 64-bit mask OR covers every field of the
    // object at once (an entry always has Low != 0, so entryFor never
    // leaves behind an empty entry here).
    ObjEntry &AE = Objects[entryFor(BE.Obj, /*Create=*/true)];
    uint32_t NewLow = BE.Low & ~AE.Low;
    if (!NewLow)
      continue;
    AE.Low |= NewLow;
    const std::vector<value_type> &Nodes = Store->nodesOfObject(BE.Obj);
    for (uint32_t T = NewLow; T; T &= T - 1) {
      ++New;
      if (NewElems)
        NewElems->push_back(Nodes[__builtin_ctz(T)]);
    }
  }
  for (const auto &P : Other.HighOrds) {
    auto It = std::lower_bound(HighOrds.begin(), HighOrds.end(), P);
    if (It != HighOrds.end() && *It == P)
      continue;
    HighOrds.insert(It, P);
    ++New;
    if (NewElems)
      NewElems->push_back(
          Store->nodesOfObject(ObjectId(P.first))[P.second]);
  }
  if (New) {
    Count += static_cast<uint32_t>(New);
    invalidate();
    if (NewElems)
      // Per-object discovery order is not global id order.
      std::sort(NewElems->begin() + static_cast<ptrdiff_t>(Base),
                NewElems->end());
  }
  return New;
}

bool PtsSet::containsAllOffsets(const PtsSet &Other) const {
  auto A = Objects.begin();
  for (const ObjEntry &BE : Other.Objects) {
    while (A != Objects.end() && A->Obj < BE.Obj)
      ++A;
    if (A == Objects.end() || !(A->Obj == BE.Obj))
      return false;
    if (BE.Low & ~A->Low)
      return false;
    ++A;
  }
  auto H = HighOrds.begin();
  for (const auto &P : Other.HighOrds) {
    H = std::lower_bound(H, HighOrds.end(), P);
    if (H == HighOrds.end() || *H != P)
      return false;
    ++H;
  }
  return true;
}

} // namespace spa
