//===--- ConstraintGraph.cpp ----------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pta/ConstraintGraph.h"

#include <algorithm>

using namespace spa;

bool ConstraintGraph::addEdge(NodeId Src, NodeId Dst) {
  if (Src.index() >= Succ.size())
    Succ.resize(Src.index() + 1);
  if (!Succ[Src.index()].insert(Dst))
    return false;
  ++NumEdges;
  ++SinceSweep;
  MaxNode = std::max(
      MaxNode, size_t(std::max(Src.index(), Dst.index())) + 1);
  return true;
}

void ConstraintGraph::absorb(NodeId Rep, NodeId Merged) {
  if (Merged.index() >= Succ.size())
    return;
  IdSet<NodeTag> &From = Succ[Merged.index()];
  if (!From.empty()) {
    if (Rep.index() >= Succ.size())
      Succ.resize(Rep.index() + 1);
    // Duplicate edges (both nodes already pointed at the same successor)
    // collapse here; keep the live-edge count in step.
    size_t New = Succ[Rep.index()].insertAll(From);
    NumEdges -= From.size() - New;
  }
  From = IdSet<NodeTag>();
}

size_t ConstraintGraph::bytes() const {
  size_t Total = Succ.capacity() * sizeof(IdSet<NodeTag>);
  for (const IdSet<NodeTag> &S : Succ)
    Total += S.size() * sizeof(NodeId);
  return Total;
}

void ConstraintGraph::clear() {
  Succ = std::vector<IdSet<NodeTag>>();
  MaxNode = 0;
  NumEdges = 0;
  SinceSweep = 0;
}

ConstraintGraph::SweepResult
ConstraintGraph::sweep(const UnionFind<NodeTag> &Reps, bool ComputeLevels) {
  SweepResult R;
  const size_t N = MaxNode;
  R.TopoRank.assign(N, 0);
  SinceSweep = 0;
  if (N == 0)
    return R;

  // Iterative Tarjan. Indices start at 1 so 0 doubles as "unvisited";
  // lowlinks live in their own array; CompOf records the component of
  // every visited node. Components complete in reverse topological order
  // (all successors of a component are numbered before it), which is what
  // turns CompOf into a topological rank below.
  std::vector<uint32_t> Index(N, 0), Low(N, 0), CompOf(N, 0);
  std::vector<uint8_t> OnStack(N, 0);
  std::vector<uint32_t> Stack;
  struct Frame {
    uint32_t V;
    uint32_t Pos; // next successor position in Succ[V]
  };
  std::vector<Frame> Frames;
  uint32_t NextIndex = 1;
  uint32_t NumComp = 0;
  static const IdSet<NodeTag> NoSucc;

  auto succOf = [this](uint32_t V) -> const IdSet<NodeTag> & {
    return V < Succ.size() ? Succ[V] : NoSucc;
  };

  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Index[Root] || Reps.find(NodeId(Root)) != NodeId(Root))
      continue;
    Index[Root] = Low[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = 1;
    Frames.push_back({Root, 0});
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      uint32_t V = F.V;
      const IdSet<NodeTag> &Edges = succOf(V);
      if (F.Pos < Edges.size()) {
        NodeId Raw = *(Edges.begin() + F.Pos);
        ++F.Pos;
        uint32_t W = Reps.find(Raw).index();
        if (W >= N || W == V)
          continue; // stale self-edge after a collapse
        if (!Index[W]) {
          Index[W] = Low[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = 1;
          Frames.push_back({W, 0}); // invalidates F; loop re-fetches
        } else if (OnStack[W]) {
          Low[V] = std::min(Low[V], Index[W]);
        }
        continue;
      }
      // V is fully explored.
      if (Low[V] == Index[V]) {
        std::vector<NodeId> Members;
        uint32_t W;
        do {
          W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          CompOf[W] = NumComp;
          Members.push_back(NodeId(W));
        } while (W != V);
        if (Members.size() >= 2)
          R.Cycles.push_back(std::move(Members));
        ++NumComp;
      }
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().V] = std::min(Low[Frames.back().V], Low[V]);
    }
  }

  R.Components = NumComp;
  // Reverse-topological component numbers -> topological ranks (0 =
  // source-most). Unvisited nodes keep rank 0.
  for (uint32_t I = 0; I < N; ++I)
    if (Index[I])
      R.TopoRank[I] = NumComp - 1 - CompOf[I];

  if (ComputeLevels && NumComp) {
    // Level partition of the condensation: longest-path depth per
    // component. Visit nodes in ascending TopoRank — a cross-component
    // edge u → v always goes rank(u) < rank(v), so every node of a
    // predecessor component is relaxed before any node of its successors
    // and one pass over the edges suffices.
    std::vector<uint32_t> Order;
    Order.reserve(N);
    for (uint32_t I = 0; I < N; ++I)
      if (Index[I] && Reps.find(NodeId(I)) == NodeId(I))
        Order.push_back(I);
    std::sort(Order.begin(), Order.end(), [&R](uint32_t A, uint32_t B) {
      return R.TopoRank[A] != R.TopoRank[B] ? R.TopoRank[A] < R.TopoRank[B]
                                            : A < B;
    });
    std::vector<uint32_t> CompLevel(NumComp, 0);
    for (uint32_t V : Order) {
      uint32_t LV = CompLevel[CompOf[V]];
      for (NodeId Raw : succOf(V)) {
        uint32_t W = Reps.find(Raw).index();
        if (W >= N || CompOf[W] == CompOf[V] || !Index[W])
          continue;
        CompLevel[CompOf[W]] = std::max(CompLevel[CompOf[W]], LV + 1);
      }
    }
    R.Level.assign(N, 0);
    for (uint32_t I = 0; I < N; ++I)
      if (Index[I]) {
        R.Level[I] = CompLevel[CompOf[I]];
        R.NumLevels = std::max(R.NumLevels, R.Level[I] + 1);
      }
  }
  return R;
}
