//===--- Frontend.cpp -----------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pta/Frontend.h"

#include "cfront/Parser.h"
#include "norm/Normalizer.h"
#include "pta/Offline.h"

#include <fstream>
#include <sstream>

using namespace spa;

std::unique_ptr<CompiledProgram>
CompiledProgram::fromSource(std::string_view Source, DiagnosticEngine &Diags,
                            TargetInfo Target) {
  std::unique_ptr<CompiledProgram> P(new CompiledProgram());
  Parser TheParser(Source, P->TU, Diags, Target);
  if (!TheParser.parseTranslationUnit())
    return nullptr;
  Normalizer Norm(P->TU, P->Prog, Diags);
  Norm.run();
  if (Diags.hasErrors())
    return nullptr;
  return P;
}

std::unique_ptr<CompiledProgram>
CompiledProgram::fromFile(const std::string &Path, DiagnosticEngine &Diags,
                          TargetInfo Target) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Diags.error(SourceLoc(), "cannot open file: " + Path);
    return nullptr;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();
  return fromSource(Source, Diags, std::move(Target));
}

Analysis::Analysis(NormProgram &Prog, AnalysisOptions Options)
    : Opts(std::move(Options)), Layout(Prog.Types, Opts.Target),
      Model(makeFieldModel(Opts.Model, Prog, Layout)),
      TheSolver(Prog, *Model, Opts.Solver), Prog(Prog) {}

void Analysis::run() {
  if (Opts.Solver.Preprocess == PreprocessKind::Hvn && !Preprocessed) {
    OfflineResult R = runOfflineHvn(Prog, *Model, Opts.Solver);
    TheSolver.seedOfflineMerges(std::move(R.NodeMap), R.Seconds);
    Preprocessed = true;
  }
  TheSolver.solve();
}
