//===--- Offline.cpp ------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pta/Offline.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_map>

using namespace spa;

namespace {

/// Iterative Tarjan frame (the corpus has copy chains deep enough to
/// overflow a recursive formulation).
struct DfsFrame {
  uint32_t Node;
  uint32_t Edge; ///< next successor index to visit (into the CSR list)
};

/// One offline pass over a normalized program. The statement scan mirrors
/// the solver's unconditional first-visit work exactly — same normalize
/// and resolve calls, same gating — so the pass materializes precisely the
/// nodes the solver would on its first sweep and the fixpoint node
/// universe of a preprocessed run matches its unpreprocessed twin.
class HvnPass {
public:
  HvnPass(const NormProgram &Prog, FieldModel &Model,
          const SolverOptions &Opts)
      : Prog(Prog), Model(Model), Opts(Opts) {}

  OfflineResult run() {
    auto Start = std::chrono::steady_clock::now();
    // The scan calls the model's own normalize/resolve, which count toward
    // the Figure-3 statistics; snapshot/restore keeps the run's reported
    // counters those of the solve alone (same pattern as the certifier).
    ModelStats Saved = Model.snapshotStats();
    IndirectObj.assign(Prog.Objects.size(), 0);
    Exposed.assign(Prog.Objects.size(), 0);
    // Iterate to the static materialization closure: a resolve can
    // materialize nodes that enlarge the pair lists of statements already
    // scanned (Offsets cascades), so rescan until the node universe stops
    // growing — the edge set of the final pass is then what every solve's
    // first full sweep is guaranteed to join. Pure models stabilize after
    // one repeat.
    for (;;) {
      size_t Before = Model.nodes().size();
      Edges.clear();
      Labels.clear();
      ObjPairs.clear();
      scanStatements();
      if (Model.nodes().size() == Before)
        break;
    }
    finishIndirectMarking();
    const size_t N = Model.nodes().size();
    buildAdjacency(N);
    tarjan(N);
    valueNumber();
    Model.restoreStats(Saved);
    Result.NodesMerged = Result.NodeMap.merges();
    Result.NodesConsidered = N;
    Result.Seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
    return std::move(Result);
  }

private:
  NodeId top(ObjectId Obj) { return Model.normalizeLoc(Obj, {}); }

  void markIndirect(ObjectId Obj) {
    if (Obj.isValid() && Obj.index() < IndirectObj.size())
      IndirectObj[Obj.index()] = 1;
  }

  /// Records the joins the solver is guaranteed to perform for a copy of
  /// declared type \p Tau from \p Src into \p Dst: the model's resolve
  /// pair lists only ever grow (the delta engine's memoization depends on
  /// that), so every pair returned now is joined on every solve.
  void copyEdges(NodeId Dst, NodeId Src, TypeId Tau) {
    // Memoized across scan passes: a pair list is a function of the
    // source object's node set (the solver's delta memo relies on the
    // same invariant), so the closure's later passes — which mostly see
    // an unchanged node universe — reuse the first pass's resolve work.
    ResolveMemo &M =
        Memo[(uint64_t(Dst.index()) << 32) | uint64_t(Src.index())];
    uint32_t SrcCount = static_cast<uint32_t>(
        Model.nodes().nodesOfObject(Model.nodes().objectOf(Src)).size());
    if (M.SrcNodes != SrcCount || M.Tau != Tau) {
      M.Pairs.clear();
      Model.resolve(Dst, Src, Tau, M.Pairs);
      M.SrcNodes = static_cast<uint32_t>(
          Model.nodes().nodesOfObject(Model.nodes().objectOf(Src)).size());
      M.Tau = Tau;
    }
    for (const auto &[D, S] : M.Pairs)
      Edges.emplace_back(S.index(), D.index());
    ObjPairs.emplace_back(Model.nodes().objectOf(Src).index(),
                          Model.nodes().objectOf(Dst).index());
  }

  /// A function whose address escapes into the points-to world can be
  /// invoked through any pointer (indirect calls, the summaries' Callback
  /// effect), binding arguments the offline graph cannot see.
  void markFunctionEscape(FuncId F) {
    if (!F.isValid())
      return;
    const NormFunction &Fn = Prog.func(F);
    for (ObjectId Param : Fn.Params)
      markIndirect(Param);
    markIndirect(Fn.VarargsObj);
  }

  void scanStatements() {
    for (const NormStmt &S : Prog.Stmts) {
      switch (S.Op) {
      case NormOp::AddrOf: {
        NodeId Dst = top(S.Dst);
        NodeId Target = Model.normalizeLoc(S.Src, S.Path);
        Labels.emplace_back(Dst.index(), Target.index());
        if (S.Src.isValid()) {
          Exposed[S.Src.index()] = 1;
          const NormObject &Info = Prog.object(S.Src);
          if (Info.Kind == ObjectKind::Function)
            markFunctionEscape(Info.AsFunction);
        }
        break;
      }
      case NormOp::AddrOfDeref:
        top(S.Dst);
        top(S.Src);
        markIndirect(S.Dst); // receives lookup results of *Src
        break;
      case NormOp::Copy:
        copyEdges(top(S.Dst), Model.normalizeLoc(S.Src, S.Path), S.LhsTy);
        break;
      case NormOp::Load:
        top(S.Dst);
        top(S.Src);
        markIndirect(S.Dst); // receives resolve pairs of *Src's targets
        break;
      case NormOp::Store:
        top(S.Src);
        top(S.Dst);
        // The written locations are pointees of Dst — address-exposed
        // objects, all of whose nodes are marked indirect below.
        break;
      case NormOp::PtrArith:
        if (!Opts.HandlePtrArith)
          break;
        top(S.Dst);
        for (ObjectId Operand : S.ArithSrcs)
          top(Operand);
        markIndirect(S.Dst); // receives smears (or the Unknown node)
        break;
      case NormOp::Call:
        scanCall(S);
        break;
      }
    }
  }

  void scanCall(const NormStmt &S) {
    FuncId Callee = S.DirectCallee;
    if (!Callee.isValid()) {
      // Indirect call: the callee set is a fixpoint property. Params of
      // every address-taken function are already indirect; the caller-side
      // destinations bound per discovered callee are marked here.
      if (S.IndirectCallee.isValid())
        top(S.IndirectCallee);
      markIndirect(S.RetDst);
      for (ObjectId Arg : S.Args)
        markIndirect(Arg); // a summarized callee may mutate arg facts
      return;
    }
    const NormFunction &Fn = Prog.func(Callee);
    if (!Fn.IsDefined) {
      // Library summaries write into RetDst, argument pointees (exposed
      // objects), params of callback targets (escaped functions), and
      // pseudo-objects created during the solve — everything offline
      // merging must avoid value-numbering.
      markIndirect(S.RetDst);
      for (ObjectId Arg : S.Args)
        markIndirect(Arg);
      return;
    }
    size_t NumParams = Fn.Params.size();
    for (size_t I = 0; I < S.Args.size(); ++I) {
      if (Prog.object(S.Args[I]).Kind == ObjectKind::Constant)
        continue;
      if (I < NumParams) {
        ObjectId Param = Fn.Params[I];
        copyEdges(top(Param), top(S.Args[I]), Prog.object(Param).Ty);
      } else if (Fn.VarargsObj.isValid()) {
        NodeId Va = top(Fn.VarargsObj);
        // The varargs pool joins every node of the argument object; nodes
        // materialized later also flow, so the pool stays indirect and
        // these edges are merely the guaranteed subset.
        for (NodeId ArgNode : Model.nodes().nodesOfObject(S.Args[I]))
          Edges.emplace_back(ArgNode.index(), Va.index());
        markIndirect(Fn.VarargsObj);
      }
    }
    if (S.RetDst.isValid() && Fn.RetObj.isValid())
      copyEdges(top(S.RetDst), top(Fn.RetObj), Prog.object(S.RetDst).Ty);
  }

  void finishIndirectMarking() {
    // Address-exposed objects can be written through pointers (stores,
    // summary effects), so every node of theirs has defs the offline graph
    // does not record. Heap, function, and string-literal objects are
    // exposed by construction — they only ever appear as pointees.
    for (uint32_t I = 0; I < Prog.Objects.size(); ++I) {
      ObjectKind K = Prog.Objects[I].Kind;
      if (K == ObjectKind::Heap || K == ObjectKind::Function ||
          K == ObjectKind::StringLit || K == ObjectKind::Unknown ||
          K == ObjectKind::Varargs)
        Exposed[I] = 1;
      if (Exposed[I])
        IndirectObj[I] = 1;
    }
    if (!Model.resolveDependsOnMaterialization())
      return;
    // Stateful resolve (Offsets): a source object that gains nodes during
    // the solve — exposed objects via lookups/smears/summaries, plus
    // anything transitively fed from one (resolve materializes matching
    // destination offsets) — enlarges its copies' pair lists beyond what
    // the scan recorded, so those destinations have unrecorded defs.
    std::vector<uint8_t> Growable = Exposed;
    for (uint32_t I = 0; I < Prog.Objects.size(); ++I)
      if (IndirectObj[I])
        Growable[I] = 1;
    for (bool Changed = true; Changed;) {
      Changed = false;
      for (const auto &[S, D] : ObjPairs)
        if (Growable[S] && !Growable[D]) {
          Growable[D] = 1;
          Changed = true;
        }
    }
    for (const auto &[S, D] : ObjPairs)
      if (Growable[S])
        IndirectObj[D] = 1;
  }

  /// CSR successor/predecessor lists over the copy edges plus per-node
  /// address-of label lists, built once the node universe is final.
  void buildAdjacency(size_t N) {
    auto Csr = [N](const std::vector<std::pair<uint32_t, uint32_t>> &Src,
                   bool Forward, std::vector<uint32_t> &Start,
                   std::vector<uint32_t> &List) {
      Start.assign(N + 1, 0);
      for (const auto &[A, B] : Src)
        ++Start[(Forward ? A : B) + 1];
      for (size_t I = 1; I <= N; ++I)
        Start[I] += Start[I - 1];
      List.resize(Src.size());
      std::vector<uint32_t> Fill(Start.begin(), Start.end() - 1);
      for (const auto &[A, B] : Src)
        List[Fill[Forward ? A : B]++] = Forward ? B : A;
    };
    Csr(Edges, /*Forward=*/true, SuccStart, SuccList);
    Csr(Edges, /*Forward=*/false, PredStart, PredList);
    Csr(Labels, /*Forward=*/true, LabStart, LabList);
  }

  void tarjan(size_t N) {
    std::vector<uint32_t> Idx(N, 0), Low(N, 0);
    std::vector<uint8_t> OnStack(N, 0);
    std::vector<uint32_t> Stk;
    std::vector<DfsFrame> Dfs;
    Comp.assign(N, UINT32_MAX);
    uint32_t NextIdx = 1; // 0 == unvisited
    for (uint32_t Root = 0; Root < N; ++Root) {
      if (Idx[Root])
        continue;
      Idx[Root] = Low[Root] = NextIdx++;
      Stk.push_back(Root);
      OnStack[Root] = 1;
      Dfs.push_back({Root, SuccStart[Root]});
      while (!Dfs.empty()) {
        DfsFrame &F = Dfs.back();
        if (F.Edge < SuccStart[F.Node + 1]) {
          uint32_t W = SuccList[F.Edge++];
          if (!Idx[W]) {
            Idx[W] = Low[W] = NextIdx++;
            Stk.push_back(W);
            OnStack[W] = 1;
            Dfs.push_back({W, SuccStart[W]}); // invalidates F; loop re-reads
          } else if (OnStack[W]) {
            Low[F.Node] = std::min(Low[F.Node], Idx[W]);
          }
          continue;
        }
        uint32_t V = F.Node;
        Dfs.pop_back();
        if (!Dfs.empty())
          Low[Dfs.back().Node] = std::min(Low[Dfs.back().Node], Low[V]);
        if (Low[V] != Idx[V])
          continue;
        // One SCC completed; Sccs ends up in reverse topological order of
        // the condensation (destinations complete before their sources).
        Sccs.emplace_back();
        for (;;) {
          uint32_t W = Stk.back();
          Stk.pop_back();
          OnStack[W] = 0;
          Comp[W] = static_cast<uint32_t>(Sccs.size() - 1);
          Sccs.back().push_back(W);
          if (W == V)
            break;
        }
      }
    }
  }

  /// HVN value numbering over the condensation, sources first. Two classes
  /// merge when they provably compute the same set at the least fixpoint:
  ///  * an SCC's members always merge (mutual inclusion through permanent
  ///    copy constraints forces set equality — no completeness needed);
  ///  * a *direct* class (every definition recorded offline) whose only
  ///    token is one source class adopts that class outright (copy chain);
  ///  * direct classes with identical token sets — address-of labels plus
  ///    source value numbers — merge, which also folds duplicate
  ///    address-of sources and the shared provably-empty class.
  void valueNumber() {
    UnionFind<NodeTag> &U = Result.NodeMap;
    uint64_t NextVN = 1;
    constexpr uint64_t AddrBit = 1ull << 63;
    std::vector<uint64_t> CompVN(Sccs.size(), 0);
    std::map<std::vector<uint64_t>, std::pair<uint64_t, uint32_t>> KeyMap;
    std::unordered_map<uint64_t, uint32_t> VNRep;
    std::vector<uint64_t> Tokens;
    for (size_t SI = Sccs.size(); SI-- > 0;) { // topological: sources first
      const std::vector<uint32_t> &Members = Sccs[SI];
      uint32_t CompId = static_cast<uint32_t>(SI);
      if (Members.size() > 1) {
        ++Result.SccsCollapsed;
        for (size_t K = 1; K < Members.size(); ++K)
          U.unite(NodeId(Members[0]), NodeId(Members[K]));
      }
      bool Indirect = false;
      for (uint32_t V : Members) {
        uint32_t Obj = Model.nodes().objectOf(NodeId(V)).index();
        if (Obj < IndirectObj.size() && IndirectObj[Obj]) {
          Indirect = true;
          break;
        }
      }
      uint32_t Rep = U.find(NodeId(Members[0])).index();
      if (Indirect) {
        CompVN[CompId] = NextVN;
        VNRep.emplace(NextVN++, Rep);
        continue;
      }
      Tokens.clear();
      for (uint32_t V : Members) {
        for (uint32_t L = LabStart[V]; L < LabStart[V + 1]; ++L)
          Tokens.push_back(AddrBit | LabList[L]); // raw label node id
        for (uint32_t P = PredStart[V]; P < PredStart[V + 1]; ++P)
          if (Comp[PredList[P]] != CompId)
            Tokens.push_back(CompVN[Comp[PredList[P]]]);
      }
      std::sort(Tokens.begin(), Tokens.end());
      Tokens.erase(std::unique(Tokens.begin(), Tokens.end()), Tokens.end());
      if (Tokens.size() == 1 && !(Tokens[0] & AddrBit)) {
        // Copy chain: the class's only definition is one source class, so
        // it holds exactly the source's set — adopt its value number.
        uint64_t VN = Tokens[0];
        CompVN[CompId] = VN;
        U.unite(NodeId(VNRep[VN]), NodeId(Rep));
        continue;
      }
      auto [It, Inserted] =
          KeyMap.try_emplace(Tokens, std::pair<uint64_t, uint32_t>(0, 0));
      if (Inserted) {
        It->second = {NextVN, Rep};
        CompVN[CompId] = NextVN;
        VNRep.emplace(NextVN++, Rep);
      } else {
        CompVN[CompId] = It->second.first;
        U.unite(NodeId(It->second.second), NodeId(Rep));
      }
    }
  }

  const NormProgram &Prog;
  FieldModel &Model;
  const SolverOptions &Opts;
  OfflineResult Result;

  /// Guaranteed copy joins as (source node, destination node).
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  /// Address-of facts as (destination node, target node).
  std::vector<std::pair<uint32_t, uint32_t>> Labels;
  /// Object-level (source, destination) pairs of the recorded resolve
  /// calls, for the stateful-resolve growth propagation.
  std::vector<std::pair<uint32_t, uint32_t>> ObjPairs;
  /// Objects any of whose nodes can receive facts the offline graph does
  /// not record (indexed by ObjectId; sized before the scan — objects
  /// created during the solve are never offline-merged).
  std::vector<uint8_t> IndirectObj;
  /// Objects whose address escapes into points-to sets.
  std::vector<uint8_t> Exposed;
  /// Cross-pass resolve memo, keyed by (dst node, src node).
  struct ResolveMemo {
    uint32_t SrcNodes = UINT32_MAX;
    TypeId Tau;
    std::vector<std::pair<NodeId, NodeId>> Pairs;
  };
  std::unordered_map<uint64_t, ResolveMemo> Memo;

  std::vector<uint32_t> SuccStart, SuccList;
  std::vector<uint32_t> PredStart, PredList;
  std::vector<uint32_t> LabStart, LabList;
  std::vector<uint32_t> Comp;              ///< node -> SCC id
  std::vector<std::vector<uint32_t>> Sccs; ///< completion order
};

} // namespace

OfflineResult spa::runOfflineHvn(const NormProgram &Prog, FieldModel &Model,
                                 const SolverOptions &Opts) {
  return HvnPass(Prog, Model, Opts).run();
}
