//===--- ConstraintGraph.h - Explicit copy-edge graph ----------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The copy-edge constraint graph behind the solver's cycle-elimination
/// engine. Every join "pts(D) ⊇ pts(S)" the delta engine performs (resolve
/// pairs of Copy/Load/Store statements, call bindings, varargs pooling) is
/// recorded once as the edge S → D. Because points-to growth is monotone
/// and the worklist re-runs a statement whenever one of its sources
/// changes, each recorded edge is a *permanent* inclusion constraint: it
/// is re-enforced until fixpoint. A cycle in this graph therefore forces
/// every set on it to be equal at fixpoint, which is what licenses
/// collapsing the cycle into one shared set (Solver::collapseCycle).
///
/// The graph supports periodic SCC sweeps (iterative Tarjan in the
/// single-pass Nuutila style: one index array, components emitted in
/// reverse topological order) that return both the non-trivial SCCs to
/// collapse and a topological rank per node, which the solver turns into
/// the priority of its worklist so sources drain before sinks.
///
/// Non-copy effects (pointer-arithmetic smears, AddrOfDeref lookup
/// expansion, direct address-of edges) are *not* represented here — they
/// add facts, not inclusion constraints between sets — so they can never
/// cause an unsound collapse.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_CONSTRAINTGRAPH_H
#define SPA_PTA_CONSTRAINTGRAPH_H

#include "pta/NodeStore.h"
#include "support/UnionFind.h"

namespace spa {

/// Copy edges between canonical nodes, with SCC condensation support.
class ConstraintGraph {
public:
  /// Records the copy edge \p Src → \p Dst ("pts(Dst) ⊇ pts(Src)"). Both
  /// ids must already be canonical (the solver resolves them through its
  /// union-find first). Returns true if the edge is new.
  bool addEdge(NodeId Src, NodeId Dst);

  /// Folds the out-edges of \p Merged (a node just absorbed by a cycle
  /// collapse) into \p Rep and releases Merged's adjacency.
  void absorb(NodeId Rep, NodeId Merged);

  /// True if the copy edge \p Src → \p Dst is recorded (raw, un-canonical
  /// adjacency — callers canonicalize first, like addEdge). A pure query:
  /// the parallel engine's gather phase probes it from worker threads.
  bool hasEdge(NodeId Src, NodeId Dst) const {
    return Src.index() < Succ.size() && Succ[Src.index()].contains(Dst);
  }

  /// Distinct copy edges recorded so far (absorbs subtract duplicates
  /// that become visible at merge time, so this tracks live edges).
  uint64_t numEdges() const { return NumEdges; }

  /// Edges added since the last sweep() — the solver's growth heuristic.
  uint64_t edgesSinceSweep() const { return SinceSweep; }

  /// One past the largest node index mentioned by any edge.
  size_t numNodes() const { return MaxNode; }

  /// Result of one SCC sweep.
  struct SweepResult {
    /// SCCs with at least two members (the cycles worth collapsing),
    /// member ids canonical as of the sweep.
    std::vector<std::vector<NodeId>> Cycles;
    /// Topological rank per node index (sized numNodes()): 0 for the
    /// source-most component, increasing toward sinks. Members of one SCC
    /// share a rank. Nodes the sweep never reached keep rank 0.
    std::vector<uint32_t> TopoRank;
    /// Number of strongly connected components found.
    uint32_t Components = 0;
    /// Topological level per node (only filled when sweep() is asked for
    /// levels): the longest-path depth of the node's component in the
    /// condensed DAG. Level 0 components have no incoming cross-component
    /// edge; every edge goes from a lower level to a strictly higher one,
    /// so all components of one level are mutually independent — the
    /// parallel engine solves each level's statements concurrently and
    /// barriers between levels. Coarser than TopoRank (many components
    /// share a level), which is exactly what makes the batches wide.
    /// Unreached nodes keep level 0, mirroring TopoRank.
    std::vector<uint32_t> Level;
    /// One past the largest level assigned (0 when levels were not
    /// computed or the graph is empty).
    uint32_t NumLevels = 0;
  };

  /// Runs Tarjan/Nuutila over the graph restricted to the representatives
  /// of \p Reps (edge endpoints are canonicalized on the fly) and resets
  /// the edges-since-sweep counter. With \p ComputeLevels the result also
  /// carries the condensation's level partition (an extra pass over the
  /// edges; the sequential engines skip it).
  SweepResult sweep(const UnionFind<NodeTag> &Reps,
                    bool ComputeLevels = false);

  /// Rough heap footprint of the adjacency storage, for telemetry.
  size_t bytes() const;

  /// Releases all storage (the solver drops the graph after fixpoint; a
  /// re-solve rebuilds it from the statements).
  void clear();

private:
  /// Out-edges per source node index; IdSet keeps them sorted-unique so
  /// repeated joins of the same pair record one edge.
  std::vector<IdSet<NodeTag>> Succ;
  size_t MaxNode = 0;
  uint64_t NumEdges = 0;
  uint64_t SinceSweep = 0;
};

} // namespace spa

#endif // SPA_PTA_CONSTRAINTGRAPH_H
