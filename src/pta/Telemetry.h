//===--- Telemetry.h - Structured run telemetry ----------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One analysis run rendered as a stable, machine-readable record: the
/// configuration that produced it, the program's shape, the solver's
/// counters (rounds/pops, delta-vs-full propagations, per-rule work,
/// convergence, timings), the model's Figure-3 statistics, and the
/// Figure-4 dereference metrics. `spa_cli --stats-json=<file>` and
/// `bench/scaling` both emit this schema; docs/TELEMETRY.md documents it
/// field by field. The schema is versioned ("spa.run.v1") — additions are
/// allowed within a version, renames and removals are not.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_TELEMETRY_H
#define SPA_PTA_TELEMETRY_H

#include "pta/Frontend.h"

#include <string>

namespace spa {

/// Counters of the optional verification passes (src/verify/). The layer
/// above (the CLI, bench drivers) copies them in after running the passes;
/// the JSON omits the "verify" object entirely when neither pass ran, so
/// existing consumers see an unchanged record.
struct VerifyTelemetry {
  bool CertifyRan = false;
  uint64_t Obligations = 0;
  uint64_t Violations = 0;
  uint64_t FactsTotal = 0;
  uint64_t FactsUnjustified = 0;
  uint64_t FreedUnjustified = 0;
  double CertifySeconds = 0;
  bool IrVerifyRan = false;
  uint64_t IrChecks = 0;
  uint64_t IrViolations = 0;
  bool CfgVerifyRan = false;
  uint64_t CfgChecks = 0;
  uint64_t CfgViolations = 0;
};

/// Counters of the invalidation-aware flow pass (src/flow/). Filled by the
/// layer above after runInvalidationPass / auditFlowRefinement; the JSON
/// omits the "flow" object entirely when the pass did not run.
struct FlowTelemetry {
  bool FlowRan = false;
  uint64_t ObjectsInvalidated = 0;
  uint64_t SitesRefined = 0;
  uint64_t ReportsSuppressed = 0;
  double FlowSeconds = 0;
  bool AuditRan = false;
  uint64_t AuditViolations = 0;
  /// --flow=cfg: the dataflow flavour's shape counters (emitted as
  /// flow.cfg_blocks / cfg_edges / join_merges / exit_summaries).
  bool CfgMode = false;
  uint64_t CfgBlocks = 0;
  uint64_t CfgEdges = 0;
  uint64_t JoinMerges = 0;
  uint64_t ExitSummaries = 0;
};

/// Snapshot of one solved Analysis, ready for JSON export.
struct RunTelemetry {
  /// Schema identifier emitted as "schema"; bump on breaking change.
  static constexpr const char *SchemaId = "spa.run.v1";

  /// Free-form run label ("" omits the field), e.g. a corpus file name.
  std::string Program;
  ModelKind Model = ModelKind::CommonInitialSeq;

  /// Configuration echo (the knobs that change results or cost).
  SolverOptions Options;

  /// Program shape.
  size_t Functions = 0;
  size_t Objects = 0;
  size_t Stmts = 0;
  size_t DerefSites = 0;

  SolverRunStats Solver;
  ModelStats Model_;
  DerefMetrics Deref;
  VerifyTelemetry Verify;
  FlowTelemetry Flow;
};

/// Snapshots \p A (which must have been run) into a RunTelemetry.
RunTelemetry collectTelemetry(Analysis &A, std::string ProgramLabel = "");

/// Renders \p T as a self-contained JSON object (trailing newline
/// included). Keys and nesting are the documented spa.run.v1 schema.
std::string telemetryToJson(const RunTelemetry &T);

/// Writes telemetryToJson(T) to \p Path ("-" means stdout). Returns false
/// if the file cannot be written.
bool writeTelemetryJson(const RunTelemetry &T, const std::string &Path);

} // namespace spa

#endif // SPA_PTA_TELEMETRY_H
