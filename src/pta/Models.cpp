//===--- Models.cpp -------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pta/Models.h"

#include "ctypes/Compat.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

using namespace spa;

const char *spa::modelKindName(ModelKind Kind) {
  switch (Kind) {
  case ModelKind::CollapseAlways:
    return "Collapse Always";
  case ModelKind::CollapseOnCast:
    return "Collapse on Cast";
  case ModelKind::CommonInitialSeq:
    return "Common Initial Sequence";
  case ModelKind::Offsets:
    return "Offsets";
  }
  return "?";
}

std::unique_ptr<FieldModel> spa::makeFieldModel(ModelKind Kind,
                                                const NormProgram &Prog,
                                                const LayoutEngine &Layout) {
  switch (Kind) {
  case ModelKind::CollapseAlways:
    return std::make_unique<CollapseAlwaysModel>(Prog, Layout);
  case ModelKind::CollapseOnCast:
    return std::make_unique<CollapseOnCastModel>(Prog, Layout);
  case ModelKind::CommonInitialSeq:
    return std::make_unique<CommonInitSeqModel>(Prog, Layout);
  case ModelKind::Offsets:
    return std::make_unique<OffsetsModel>(Prog, Layout);
  }
  return nullptr;
}

/// Removes duplicate pairs produced by cross-products.
static void dedupePairs(std::vector<std::pair<NodeId, NodeId>> &Pairs,
                        size_t From) {
  std::sort(Pairs.begin() + From, Pairs.end());
  Pairs.erase(std::unique(Pairs.begin() + From, Pairs.end()), Pairs.end());
}

//===----------------------------------------------------------------------===//
// Collapse Always
//===----------------------------------------------------------------------===//

NodeId CollapseAlwaysModel::normalizeLoc(ObjectId Obj, const FieldPath &) {
  return Store.getNode(Obj, 0);
}

bool CollapseAlwaysModel::lookup(TypeId Tau, const FieldPath &, NodeId Target,
                                 std::vector<NodeId> &Out) {
  bool InvolvesStruct = Types.isRecord(Types.unqualified(Tau)) ||
                        Types.isRecord(objectType(Store.objectOf(Target)));
  noteLookup(InvolvesStruct, /*Mismatch=*/false);
  Out.push_back(Store.getNode(Store.objectOf(Target), 0));
  // One blob per object: there is nothing to mismatch against.
  return true;
}

bool CollapseAlwaysModel::resolve(NodeId Dst, NodeId Src, TypeId Tau,
                                  std::vector<std::pair<NodeId, NodeId>> &Out) {
  bool InvolvesStruct = Types.isRecord(Types.unqualified(Tau)) ||
                        Types.isRecord(objectType(Store.objectOf(Dst))) ||
                        Types.isRecord(objectType(Store.objectOf(Src)));
  noteResolve(InvolvesStruct, /*Mismatch=*/false);
  Out.emplace_back(Store.getNode(Store.objectOf(Dst), 0),
                   Store.getNode(Store.objectOf(Src), 0));
  return true;
}

void CollapseAlwaysModel::allNodesOfObject(ObjectId Obj,
                                           std::vector<NodeId> &Out) {
  Out.push_back(Store.getNode(Obj, 0));
}

uint64_t CollapseAlwaysModel::expandedFieldCount(NodeId Node) const {
  TypeId Ty = objectType(Store.objectOf(Node));
  if (!Types.isRecord(Types.stripArrays(Ty)))
    return 1;
  return Flats.get(Ty).leaves().size();
}

//===----------------------------------------------------------------------===//
// Field-name-based instances: shared machinery
//===----------------------------------------------------------------------===//

NodeId FieldNameModelBase::normalizeLoc(ObjectId Obj, const FieldPath &Path) {
  const FlattenedType &FT = Flats.get(objectType(Obj));
  return Store.getNode(Obj, FT.normalizedLeaf(Path));
}

std::vector<FieldPath>
FieldNameModelBase::candidatePrefixes(const FlattenedType &FT,
                                      uint32_t LeafIdx) const {
  const FieldPath &LeafPath = FT.leaves()[LeafIdx].Path;
  std::vector<FieldPath> Out;
  for (size_t Len = 0; Len <= LeafPath.size(); ++Len) {
    FieldPath Prefix(LeafPath.begin(), LeafPath.begin() + Len);
    if (FT.normalizedLeaf(Prefix) == LeafIdx)
      Out.push_back(std::move(Prefix));
  }
  return Out;
}

bool FieldNameModelBase::lookup(TypeId Tau, const FieldPath &Alpha,
                                NodeId Target, std::vector<NodeId> &Out) {
  ObjectId Obj = Store.objectOf(Target);
  const FlattenedType &FT = Flats.get(objectType(Obj));
  std::vector<uint32_t> Leaves;
  bool Matched = lookupLeaves(Tau, Alpha, Obj, (uint32_t)Store.keyOf(Target),
                              FT, Leaves);
  bool InvolvesStruct = Types.isRecord(Types.unqualified(Tau)) ||
                        Types.isRecord(Types.stripArrays(objectType(Obj)));
  noteLookup(InvolvesStruct, /*Mismatch=*/!Matched);
  for (uint32_t Leaf : Leaves)
    Out.push_back(Store.getNode(Obj, Leaf));
  return Matched;
}

bool FieldNameModelBase::resolve(NodeId Dst, NodeId Src, TypeId Tau,
                                 std::vector<std::pair<NodeId, NodeId>> &Out) {
  ResolveScope Guard(*this);
  size_t From = Out.size();
  TypeId TauU = Types.stripArrays(Types.unqualified(Tau));

  ObjectId DstObj = Store.objectOf(Dst);
  ObjectId SrcObj = Store.objectOf(Src);
  const FlattenedType &DstFT = Flats.get(objectType(DstObj));
  const FlattenedType &SrcFT = Flats.get(objectType(SrcObj));
  bool AllMatched = true;

  auto CrossFor = [&](const FieldPath &Delta) {
    std::vector<uint32_t> DstLeaves, SrcLeaves;
    AllMatched &= lookupLeaves(TauU, Delta, DstObj,
                               (uint32_t)Store.keyOf(Dst), DstFT, DstLeaves);
    AllMatched &= lookupLeaves(TauU, Delta, SrcObj,
                               (uint32_t)Store.keyOf(Src), SrcFT, SrcLeaves);
    for (uint32_t D : DstLeaves)
      for (uint32_t S : SrcLeaves)
        Out.emplace_back(Store.getNode(DstObj, D), Store.getNode(SrcObj, S));
  };

  if (Types.isStruct(TauU) &&
      Types.record(Types.node(TauU).Record).IsComplete) {
    const FlattenedType &TauFT = Flats.get(TauU);
    for (const LeafField &Delta : TauFT.leaves())
      CrossFor(Delta.Path);
  } else {
    CrossFor(FieldPath());
  }

  dedupePairs(Out, From);
  bool InvolvesStruct =
      Types.isRecord(TauU) ||
      Types.isRecord(Types.stripArrays(objectType(DstObj))) ||
      Types.isRecord(Types.stripArrays(objectType(SrcObj)));
  noteResolve(InvolvesStruct, /*Mismatch=*/!AllMatched);

  // Debugging aid: SPA_TRACE_MISMATCH=1 prints every struct-involving
  // resolve whose types failed to match.
  if (!AllMatched && InvolvesStruct && std::getenv("SPA_TRACE_MISMATCH"))
    std::fprintf(stderr, "[spa] resolve mismatch: dst=%s src=%s tau=%s\n",
                 Prog.objectName(DstObj).c_str(),
                 Prog.objectName(SrcObj).c_str(),
                 Types.toString(TauU, Prog.Strings).c_str());
  return AllMatched;
}

void FieldNameModelBase::allNodesOfObject(ObjectId Obj,
                                          std::vector<NodeId> &Out) {
  const FlattenedType &FT = Flats.get(objectType(Obj));
  for (uint32_t I = 0; I < FT.leaves().size(); ++I)
    Out.push_back(Store.getNode(Obj, I));
}


/// Returns true if viewing a union of type \p UnionTy at type \p Tau is a
/// type-consistent access: some member (reached through nested first
/// fields and nested unions) has type Tau. Matching keeps the access on
/// the union's blob node instead of smearing to the following fields; the
/// mismatch path remains sound because it returns a superset (the blob
/// plus everything after it).
static bool unionAdmits(const TypeTable &Types, TypeId UnionTy, TypeId Tau,
                        bool UseCompat) {
  std::vector<TypeId> Work{UnionTy};
  // Bounded walk (type graphs are small; guard against pathological ones).
  for (size_t I = 0; I < Work.size() && I < 64; ++I) {
    TypeId Ty = Types.canonical(
        Types.stripArrays(Types.unqualified(Work[I])));
    if (UseCompat ? areCompatible(Types, Ty, Tau) : Ty == Tau)
      return true;
    if (!Types.isRecord(Ty))
      continue;
    const RecordDecl &Decl = Types.record(Types.node(Ty).Record);
    if (!Decl.IsComplete || Decl.Fields.empty())
      continue;
    if (Decl.IsUnion) {
      for (const FieldDecl &F : Decl.Fields)
        Work.push_back(F.Ty);
    } else {
      // A pointer to a struct also points to its first field.
      Work.push_back(Decl.Fields[0].Ty);
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Collapse on Cast
//===----------------------------------------------------------------------===//

bool CollapseOnCastModel::lookupLeaves(TypeId Tau, const FieldPath &Alpha,
                                       ObjectId Obj, uint32_t LeafIdx,
                                       const FlattenedType &FT,
                                       std::vector<uint32_t> &OutLeaves) {
  TypeId ObjTy = objectType(Obj);
  // Arrays are modeled as their single representative element, so both tau
  // and the candidate enclosing types match through array layers.
  TypeId TauU = Types.canonical(Types.stripArrays(Types.unqualified(Tau)));

  // Match branch: some enclosing delta whose innermost first field is this
  // leaf has exactly the type tau.
  for (const FieldPath &Q : candidatePrefixes(FT, LeafIdx)) {
    TypeId TQ = Types.canonical(
        Types.stripArrays(Types.unqualified(Types.typeOfPath(ObjTy, Q))));
    if (Types.isUnion(TQ)) {
      // Everything inside a union is the blob node; accessing it at the
      // type of any of its (transitive) members is consistent.
      if (unionAdmits(Types, TQ, TauU, /*UseCompat=*/false)) {
        OutLeaves.push_back(LeafIdx);
        return true;
      }
      continue;
    }
    if (TQ != TauU)
      continue;
    FieldPath Full = Q;
    Full.insert(Full.end(), Alpha.begin(), Alpha.end());
    OutLeaves.push_back(FT.normalizedLeaf(Full));
    return true;
  }

  // Mismatch: all fields of the object from this leaf onward (with the
  // array adjustment).
  for (uint32_t Leaf : FT.fromLeafOnward(LeafIdx))
    OutLeaves.push_back(Leaf);
  return false;
}

//===----------------------------------------------------------------------===//
// Common Initial Sequence
//===----------------------------------------------------------------------===//

/// Index one past the last leaf whose path has \p Q as a prefix.
static uint32_t subtreeEnd(const FlattenedType &FT, const FieldPath &Q,
                           uint32_t FirstLeaf) {
  uint32_t End = FirstLeaf;
  const auto &Leaves = FT.leaves();
  while (End < Leaves.size()) {
    const FieldPath &LP = Leaves[End].Path;
    if (LP.size() < Q.size() ||
        !std::equal(Q.begin(), Q.end(), LP.begin()))
      break;
    ++End;
  }
  return End;
}

bool CommonInitSeqModel::lookupLeaves(TypeId Tau, const FieldPath &Alpha,
                                      ObjectId Obj, uint32_t LeafIdx,
                                      const FlattenedType &FT,
                                      std::vector<uint32_t> &OutLeaves) {
  TypeId ObjTy = objectType(Obj);
  TypeId TauU = Types.canonical(Types.stripArrays(Types.unqualified(Tau)));
  std::vector<FieldPath> Candidates = candidatePrefixes(FT, LeafIdx);

  // Match branch: alpha falls inside a (non-empty) common initial sequence
  // of tau and some enclosing delta -- or, for scalar tau, the types are
  // compatible outright.
  for (const FieldPath &Q : Candidates) {
    TypeId TQ = Types.canonical(
        Types.stripArrays(Types.unqualified(Types.typeOfPath(ObjTy, Q))));
    if (Types.isUnion(TQ)) {
      if (unionAdmits(Types, TQ, TauU, /*UseCompat=*/true)) {
        OutLeaves.push_back(LeafIdx);
        return true;
      }
      continue;
    }
    if (Alpha.empty()) {
      if (areCompatible(Types, TauU, TQ)) {
        OutLeaves.push_back(LeafIdx);
        return true;
      }
      continue;
    }
    if (!Types.isStruct(TauU) || !Types.isStruct(TQ))
      continue;
    unsigned Len = commonInitialSeqLen(Types, Types.node(TauU).Record,
                                       Types.node(TQ).Record);
    if (Alpha.front() < Len) {
      // The corresponding field of TQ has the same index; compatible
      // record fields are identical records here, so the rest of alpha
      // stays valid.
      FieldPath Full = Q;
      Full.insert(Full.end(), Alpha.begin(), Alpha.end());
      OutLeaves.push_back(FT.normalizedLeaf(Full));
      return true;
    }
  }

  // Mismatch: return all fields of the object starting at the first field
  // that follows the (longest) common initial sequence, or at this leaf if
  // every candidate's sequence is empty.
  uint32_t Start = LeafIdx;
  unsigned BestLen = 0;
  for (const FieldPath &Q : Candidates) {
    TypeId TQ = Types.canonical(
        Types.stripArrays(Types.unqualified(Types.typeOfPath(ObjTy, Q))));
    if (!Types.isStruct(TauU) || !Types.isStruct(TQ))
      continue;
    unsigned Len = commonInitialSeqLen(Types, Types.node(TauU).Record,
                                       Types.node(TQ).Record);
    if (Len <= BestLen)
      continue;
    BestLen = Len;
    const RecordDecl &Decl = Types.record(Types.node(TQ).Record);
    if (Len < Decl.Fields.size()) {
      FieldPath Next = Q;
      Next.push_back(Len);
      Start = FT.normalizedLeaf(Next);
    } else {
      Start = subtreeEnd(FT, Q, LeafIdx);
    }
  }
  if (Start >= FT.leaves().size())
    return false; // nothing follows: the access falls off the object
  for (uint32_t Leaf : FT.fromLeafOnward(Start))
    OutLeaves.push_back(Leaf);
  return false;
}

//===----------------------------------------------------------------------===//
// Offsets
//===----------------------------------------------------------------------===//

NodeId OffsetsModel::normalizeLoc(ObjectId Obj, const FieldPath &Path) {
  TypeId Ty = objectType(Obj);
  uint64_t Off = Layout.offsetOfPath(Ty, Path);
  return Store.getNode(Obj, Layout.canonicalOffset(Ty, Off));
}

bool OffsetsModel::lookup(TypeId Tau, const FieldPath &Alpha, NodeId Target,
                          std::vector<NodeId> &Out) {
  ObjectId Obj = Store.objectOf(Target);
  TypeId ObjTy = objectType(Obj);
  uint64_t N = Store.keyOf(Target) +
               Layout.offsetOfPath(Types.unqualified(Tau), Alpha);
  bool InvolvesStruct = Types.isRecord(Types.unqualified(Tau)) ||
                        Types.isRecord(Types.stripArrays(ObjTy));
  noteLookup(InvolvesStruct, /*Mismatch=*/false);
  Out.push_back(Store.getNode(Obj, Layout.canonicalOffset(ObjTy, N)));
  // Offsets are exact under the chosen ABI: no collapse ever happens.
  return true;
}

bool OffsetsModel::resolve(NodeId Dst, NodeId Src, TypeId Tau,
                           std::vector<std::pair<NodeId, NodeId>> &Out) {
  size_t From = Out.size();
  TypeId TauU = Types.unqualified(Tau);
  uint64_t Size = Types.isFunction(TauU) ? 1 : Layout.sizeOf(TauU);

  ObjectId DstObj = Store.objectOf(Dst);
  ObjectId SrcObj = Store.objectOf(Src);
  TypeId DstTy = objectType(DstObj);
  uint64_t DstOff = Store.keyOf(Dst);
  uint64_t SrcOff = Store.keyOf(Src);

  bool InvolvesStruct =
      Types.isRecord(TauU) || Types.isRecord(Types.stripArrays(DstTy)) ||
      Types.isRecord(Types.stripArrays(objectType(SrcObj)));
  noteResolve(InvolvesStruct, /*Mismatch=*/false);

  // The paper's definition pairs every byte i in [0, sizeof(tau)). Only
  // source offsets that actually hold facts matter, and those are exactly
  // the materialized nodes; but array canonicalization is many-to-one
  // (every element maps to the representative), so one canonical source
  // node can stand for *several* source bytes and must fan out to several
  // destination offsets. The per-byte walk below realizes that; the
  // common no-array case takes the one-to-one fast path. (The solver's
  // fixpoint re-runs resolve, so nodes materialized later still pair up.)
  std::vector<NodeId> SrcNodes = Store.nodesOfObject(SrcObj); // copy: we
  // may materialize destination nodes in the same object below.
  TypeId SrcTy = objectType(SrcObj);
  bool SrcCanonical =
      Size > 0 && Layout.canonicalOffset(SrcTy, SrcOff) == SrcOff &&
      Layout.canonicalOffset(SrcTy, SrcOff + Size - 1) == SrcOff + Size - 1;
  if (SrcCanonical) {
    for (NodeId N : SrcNodes) {
      uint64_t K = Store.keyOf(N);
      if (K < SrcOff || K >= SrcOff + Size)
        continue;
      uint64_t DstKey =
          Layout.canonicalOffset(DstTy, DstOff + (K - SrcOff));
      Out.emplace_back(Store.getNode(DstObj, DstKey), N);
    }
  } else {
    std::set<uint64_t> SrcKeys;
    for (NodeId N : SrcNodes)
      SrcKeys.insert(Store.keyOf(N));
    for (uint64_t I = 0; I < Size; ++I) {
      uint64_t SrcKey = Layout.canonicalOffset(SrcTy, SrcOff + I);
      if (!SrcKeys.count(SrcKey))
        continue;
      uint64_t DstKey = Layout.canonicalOffset(DstTy, DstOff + I);
      Out.emplace_back(Store.getNode(DstObj, DstKey),
                       *Store.findNode(SrcObj, SrcKey));
    }
  }
  dedupePairs(Out, From);
  return true;
}

void OffsetsModel::allNodesOfObject(ObjectId Obj, std::vector<NodeId> &Out) {
  TypeId Ty = objectType(Obj);
  // Every declared field offset...
  for (const LeafField &Leaf : Flats.get(Ty).leaves())
    Out.push_back(Store.getNode(Obj, Layout.canonicalOffset(Ty, Leaf.Offset)));
  // ...plus any artificial offsets that have been materialized.
  for (NodeId N : Store.nodesOfObject(Obj))
    Out.push_back(N);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
}

//===----------------------------------------------------------------------===//
// Node display suffixes
//===----------------------------------------------------------------------===//

std::string FieldNameModelBase::nodeSuffix(NodeId Node) const {
  ObjectId Obj = Store.objectOf(Node);
  TypeId Ty = objectType(Obj);
  const FlattenedType &FT = Flats.get(Ty);
  const FieldPath &Path = FT.leaves()[Store.keyOf(Node)].Path;
  std::string Out;
  TypeId Cur = Ty;
  for (uint32_t Step : Path) {
    Cur = Types.stripArrays(Types.unqualified(Cur));
    const RecordDecl &Decl = Types.record(Types.node(Cur).Record);
    Out += ".";
    Out += Prog.Strings.text(Decl.Fields[Step].Name);
    Cur = Decl.Fields[Step].Ty;
  }
  return Out;
}

std::string OffsetsModel::nodeSuffix(NodeId Node) const {
  uint64_t Key = Store.keyOf(Node);
  if (Key == 0)
    return std::string();
  return "+" + std::to_string(Key);
}

//===----------------------------------------------------------------------===//
// Stride refinement support (Wilson/Lam-style; see FieldModel::arithNodes)
//===----------------------------------------------------------------------===//

bool FieldNameModelBase::targetInsideArray(NodeId Target) const {
  ObjectId Obj = Store.objectOf(Target);
  const FlattenedType &FT = Flats.get(objectType(Obj));
  const LeafField &Leaf = FT.leaves()[Store.keyOf(Target)];
  if (Leaf.ArrayGroupBegin != UINT32_MAX)
    return true;
  // A whole-object array (e.g. "int buf[64]") flattens to a single leaf
  // with no group marker; treat the object-is-array case directly.
  return Types.isArray(objectType(Obj));
}

bool OffsetsModel::targetInsideArray(NodeId Target) const {
  ObjectId Obj = Store.objectOf(Target);
  TypeId Ty = objectType(Obj);
  uint64_t Off = Store.keyOf(Target);
  // Walk the layout towards the offset; any array layer on the way means
  // the location is inside an array.
  for (;;) {
    Ty = Types.unqualified(Ty);
    const TypeNode &N = Types.node(Ty);
    if (N.Kind == TypeKind::Array)
      return true;
    if (N.Kind != TypeKind::Record)
      return false;
    const RecordDecl &Decl = Types.record(N.Record);
    if (Decl.IsUnion || !Decl.IsComplete || Decl.Fields.empty())
      return false;
    const RecordLayout &L = Layout.layout(N.Record);
    bool Descended = false;
    for (size_t I = Decl.Fields.size(); I-- > 0;) {
      uint64_t FO = L.FieldOffsets[I];
      if (FO > Off)
        continue;
      uint64_t FS = Layout.sizeOf(Decl.Fields[I].Ty);
      if (Off < FO + FS) {
        Off -= FO;
        Ty = Decl.Fields[I].Ty;
        Descended = true;
      }
      break;
    }
    if (!Descended)
      return false;
  }
}
