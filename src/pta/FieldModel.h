//===--- FieldModel.h - The tunable analysis parameter ---------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's framework is parameterized by three functions — normalize,
/// lookup, and resolve — whose different definitions yield analyses of
/// different precision and portability (Sections 4.2.2 and 4.3). This
/// interface is exactly that parameter. The inference-rule solver is
/// written once against it; four concrete models implement it.
///
/// The mapping to the paper:
///  * normalizeLoc(o, path)        == normalize(o.path), returning the
///    canonical node for the location;
///  * lookup(tau, alpha, t)        == lookup(tau, alpha, t-hat): the node t
///    is already normalized (it came out of a points-to set);
///  * resolve(d, s, tau, out)      == resolve(d-hat, s-hat, tau): the
///    returned pairs are (destination, source) nodes whose points-to sets
///    the copy joins. The Offsets instance realizes the paper's per-byte
///    matching over the *materialized* offsets of the source object; the
///    fixpoint loop re-runs statements, so offsets materialized later are
///    still propagated.
///  * allNodesOfObject             == the "any sub-field of s or of any
///    structure containing s" set used for pointer arithmetic under
///    Assumption 1 (our objects are whole top-level variables, so the
///    enclosing structure is the object itself).
///
/// Instrumentation: every model counts its lookup/resolve calls, whether
/// they involved a structure, and whether the types failed to match —
/// the raw data of the paper's Figure 3. Calls to lookup made internally
/// by resolve are not counted (paper, footnote to Figure 3).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_FIELDMODEL_H
#define SPA_PTA_FIELDMODEL_H

#include "ctypes/Flatten.h"
#include "ctypes/Layout.h"
#include "pta/NodeStore.h"

#include <memory>

namespace spa {

/// Counters mirroring the paper's Figure 3 columns.
struct ModelStats {
  uint64_t LookupCalls = 0;
  uint64_t LookupStruct = 0;   ///< lookups involving a structure
  uint64_t LookupMismatch = 0; ///< ... of those, with a type mismatch
  uint64_t ResolveCalls = 0;
  uint64_t ResolveStruct = 0;
  uint64_t ResolveMismatch = 0;
};

/// Base class of the four analysis instances.
class FieldModel {
public:
  FieldModel(const NormProgram &Prog, const LayoutEngine &Layout)
      : Prog(Prog), Types(Prog.Types), Layout(Layout) {}
  virtual ~FieldModel() = default;

  /// Short display name ("Offsets", "Collapse Always", ...).
  virtual const char *name() const = 0;

  /// The paper's normalize: canonical node for object \p Obj at member
  /// path \p Path.
  virtual NodeId normalizeLoc(ObjectId Obj, const FieldPath &Path) = 0;

  /// The paper's lookup(tau, alpha, t-hat): which nodes of \p Target's
  /// object are referenced when a pointer declared to point to \p Tau,
  /// actually pointing at \p Target, is dereferenced at member path
  /// \p Alpha. Appends to \p Out. Returns true iff the access was
  /// type-consistent (the instance found a matching view; false means it
  /// fell back to a collapse/smear, or truncated the access entirely) —
  /// the solver records this per deref site for the checker layer.
  virtual bool lookup(TypeId Tau, const FieldPath &Alpha, NodeId Target,
                      std::vector<NodeId> &Out) = 0;

  /// The paper's resolve(dst, src, tau): pairs of (destination, source)
  /// nodes matched by a copy of declared type \p Tau from \p Src to
  /// \p Dst. Appends to \p Out. Returns true iff every internal lookup was
  /// type-consistent (see lookup).
  virtual bool resolve(NodeId Dst, NodeId Src, TypeId Tau,
                       std::vector<std::pair<NodeId, NodeId>> &Out) = 0;

  /// Every node of \p Obj (for pointer-arithmetic smearing). Appends to
  /// \p Out; materializes nodes as needed.
  virtual void allNodesOfObject(ObjectId Obj, std::vector<NodeId> &Out) = 0;

  /// Nodes a pointer-arithmetic result may target, given that an operand
  /// points to \p Target. The paper's Assumption-1 rule (default) smears
  /// over the whole object. With \p Stride set, the Wilson/Lam refinement
  /// applies: arithmetic on a pointer into an array moves by element
  /// strides, so (arrays being collapsed to one representative element)
  /// the target is unchanged; only pointers outside arrays smear.
  virtual void arithNodes(NodeId Target, bool Stride,
                          std::vector<NodeId> &Out) {
    if (Stride && targetInsideArray(Target)) {
      Out.push_back(Target);
      return;
    }
    allNodesOfObject(Store.objectOf(Target), Out);
  }

  /// True if \p Target denotes a location inside an array member (or an
  /// array object). Used by the stride refinement.
  virtual bool targetInsideArray(NodeId Target) const {
    (void)Target;
    return false;
  }

  /// True when resolve's pair list depends on the store's materialized
  /// nodes (the Offsets instance enumerates the source object's
  /// materialized offsets): the list grows monotonically as nodes appear,
  /// so a consumer that needs the *complete* list — the offline HVN
  /// pass's value numbering — must treat destinations fed from objects
  /// that can still grow conservatively. The pure instances (pair lists
  /// are functions of the types alone) return false.
  virtual bool resolveDependsOnMaterialization() const { return false; }

  /// For reporting: how many concrete fields one node of \p Obj stands
  /// for (used to expand Collapse Always sets when comparing set sizes,
  /// exactly as the paper does for its Figure 4).
  virtual uint64_t expandedFieldCount(NodeId Node) const {
    (void)Node;
    return 1;
  }

  /// For reporting: the within-object part of a node's display name
  /// (".s1" for field nodes, "+4" for offset nodes, "" for whole objects).
  virtual std::string nodeSuffix(NodeId Node) const {
    (void)Node;
    return std::string();
  }

  NodeStore &nodes() { return Store; }
  const NodeStore &nodes() const { return Store; }
  const ModelStats &stats() const { return Stats; }

  /// \name Certifier support (src/verify/).
  /// The certifier re-runs normalize/lookup/resolve over the finished
  /// solution; snapshotting and restoring the Figure-3 counters keeps the
  /// statistics the run already reported unperturbed.
  /// @{
  ModelStats snapshotStats() const { return Stats; }
  void restoreStats(const ModelStats &Snapshot) { Stats = Snapshot; }
  /// @}

  /// Object type helper: declared type of an object, unqualified.
  TypeId objectType(ObjectId Obj) const {
    return Types.unqualified(Prog.object(Obj).Ty);
  }

protected:
  /// Instrumentation helpers. \p InResolve suppresses nested counting.
  void noteLookup(bool InvolvesStruct, bool Mismatch) {
    if (InResolveDepth > 0)
      return;
    ++Stats.LookupCalls;
    if (InvolvesStruct)
      ++Stats.LookupStruct;
    if (InvolvesStruct && Mismatch)
      ++Stats.LookupMismatch;
  }
  void noteResolve(bool InvolvesStruct, bool Mismatch) {
    ++Stats.ResolveCalls;
    if (InvolvesStruct)
      ++Stats.ResolveStruct;
    if (InvolvesStruct && Mismatch)
      ++Stats.ResolveMismatch;
  }
  /// RAII guard marking "inside resolve" so nested lookups are not counted.
  struct ResolveScope {
    FieldModel &Model;
    explicit ResolveScope(FieldModel &Model) : Model(Model) {
      ++Model.InResolveDepth;
    }
    ~ResolveScope() { --Model.InResolveDepth; }
  };

  const NormProgram &Prog;
  const TypeTable &Types;
  const LayoutEngine &Layout;
  NodeStore Store;
  ModelStats Stats;
  unsigned InResolveDepth = 0;
};

/// Which instance of the framework to run.
enum class ModelKind {
  CollapseAlways,
  CollapseOnCast,
  CommonInitialSeq,
  Offsets,
};

/// Display name of \p Kind.
const char *modelKindName(ModelKind Kind);

/// Factory for the four instances.
std::unique_ptr<FieldModel> makeFieldModel(ModelKind Kind,
                                           const NormProgram &Prog,
                                           const LayoutEngine &Layout);

} // namespace spa

#endif // SPA_PTA_FIELDMODEL_H
