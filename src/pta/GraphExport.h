//===--- GraphExport.h - Points-to graph serialization ---------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a solved points-to graph as Graphviz DOT (for visualization)
/// or as a stable sorted text listing (for golden tests and diffing runs).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_GRAPHEXPORT_H
#define SPA_PTA_GRAPHEXPORT_H

#include "pta/Solver.h"

#include <string>
#include <vector>

namespace spa {

/// Options controlling which nodes appear in an export.
struct ExportOptions {
  /// Include normalizer temporaries ("$t42"); off by default since they
  /// drown out the interesting variables.
  bool IncludeTemps = false;
  /// Include nodes with empty points-to sets that nothing points at.
  bool IncludeIsolated = false;
};

/// Renders the graph as Graphviz DOT.
std::string exportDot(const Solver &S, const ExportOptions &Opts = {});

/// Renders the graph as sorted "source -> target" lines, one per edge.
std::string exportEdgeList(const Solver &S, const ExportOptions &Opts = {});

/// The call graph at fixpoint: for each function (indexed by FuncId), the
/// functions its call statements may invoke — direct callees plus every
/// fixpoint target of each indirect call (Solver::calleesOf), defined and
/// undefined alike, sorted and deduplicated. \p S is non-const because
/// indirect-call resolution reads points-to sets, which may lazily
/// materialize nodes; the solution itself is not changed. Callers wanting
/// only the defined-function subgraph (e.g. the src/flow summary pass)
/// filter by NormFunction::IsDefined.
std::vector<std::vector<FuncId>> buildCallGraph(Solver &S);

} // namespace spa

#endif // SPA_PTA_GRAPHEXPORT_H
