//===--- LibrarySummaries.cpp ---------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pta/LibrarySummaries.h"

#include "pta/Solver.h"

using namespace spa;

using Effect = LibrarySummaries::Effect;

LibrarySummaries::LibrarySummaries() {
  auto None = std::vector<Effect>{};
  auto RetAlias0 = std::vector<Effect>{{Effect::RetAliasArg, 0, 0}};
  auto RetInto0 = std::vector<Effect>{{Effect::RetIntoArg, 0, 0}};
  auto RetExt = std::vector<Effect>{{Effect::RetExtern, 0, 0}};

  // Pure / pointer-free externals.
  for (const char *Name :
       {"printf", "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf",
        "scanf", "fscanf", "sscanf", "puts", "fputs", "putc", "fputc",
        "putchar", "getc", "fgetc", "getchar", "ungetc", "fread", "fwrite",
        "fseek", "ftell", "rewind", "fclose", "fflush", "feof", "ferror",
        "remove", "rename", "exit", "abort", "atexit",
        "strcmp", "strncmp", "strcasecmp", "strncasecmp", "memcmp", "strlen",
        "strspn", "strcspn", "atoi", "atol", "atof", "strtol", "strtoul",
        "strtod", "abs", "labs", "rand", "srand", "random", "srandom",
        "time", "clock", "difftime", "isalpha", "isdigit", "isalnum",
        "isspace", "isupper", "islower", "ispunct", "isprint", "iscntrl",
        "isxdigit", "toupper", "tolower", "memset", "bzero", "perror",
        "assert", "close", "open", "read", "write", "unlink", "system",
        "sleep", "usleep", "setbuf", "setvbuf", "clearerr", "fileno",
        "longjmp", "setjmp", "sin", "cos", "tan", "sqrt",
        "pow", "exp", "log", "floor", "ceil", "fabs", "fmod"})
    Summaries[Name] = None;

  // Return aliases the destination argument.
  for (const char *Name : {"strcpy", "strncpy", "strcat", "strncat", "fgets",
                           "gets", "memcpy", "memmove", "bcopy"})
    Summaries[Name] = RetAlias0;

  // memcpy/memmove/bcopy also copy pointees (bcopy's operands are swapped).
  Summaries["memcpy"].push_back({Effect::CopyPointees, 0, 1});
  Summaries["memmove"].push_back({Effect::CopyPointees, 0, 1});
  Summaries["bcopy"] = {{Effect::CopyPointees, 1, 0}};

  // Return points somewhere into the object the argument points to.
  for (const char *Name : {"strchr", "strrchr", "strstr", "strpbrk", "index",
                           "rindex", "strtok", "memchr", "basename"})
    Summaries[Name] = RetInto0;

  // Returns a pointer to external/anonymous storage.
  for (const char *Name :
       {"fopen", "freopen", "tmpfile", "getenv", "ctime", "asctime",
        "localtime", "gmtime", "strerror", "ttyname", "getlogin", "opendir",
        "readdir", "getpwuid", "getpwnam", "tmpnam",
        "setlocale", "bindtextdomain", "textdomain"})
    Summaries[Name] = RetExt;

  // stdin/stdout are modeled as externals too when called through fdopen.
  Summaries["fdopen"] = RetExt;

  // free(p) has no pointer *assignment* effect, but it kills the heap
  // blocks p points to — recorded for the use-after-free checker.
  Summaries["free"] = {{Effect::Dealloc, 0, 0}};
  Summaries["cfree"] = Summaries["free"];
  // realloc(p, n) frees the old block and returns fresh storage whose
  // contents start as a copy of the old pointees. The normalizer already
  // models the returned pointer (heap pseudo-variable + copy of p), so the
  // residual call it emits carries only the deallocation and content copy
  // (A = -1 targets the return slot).
  Summaries["realloc"] = {{Effect::Dealloc, 0, 0},
                          {Effect::CopyPointees, -1, 0}};
  Summaries["xrealloc"] = Summaries["realloc"];

  // signal(sig, handler) returns the previous handler: alias arg 1; the
  // handler is invoked with an int, so no pointer binding is needed.
  Summaries["signal"] = {{Effect::RetAliasArg, 1, 0}};

  // qsort(base, n, size, cmp): cmp receives pointers into *base.
  Summaries["qsort"] = {{Effect::Callback, 3, 0}};
  // bsearch(key, base, n, size, cmp): cmp gets key and elements; the result
  // points into *base.
  Summaries["bsearch"] = {{Effect::Callback, 4, 1},
                          {Effect::Callback, 4, 0},
                          {Effect::RetIntoArg, 1, 0}};
}

bool LibrarySummaries::apply(std::string_view Name, const NormStmt &Call,
                             Solver &S) {
  auto It = Summaries.find(std::string(Name));
  if (It == Summaries.end()) {
    Unknown.insert(std::string(Name));
    return false;
  }

  NormProgram &Prog = S.program();
  bool Changed = false;
  // Negative indices name the call's return slot (realloc's CopyPointees
  // destination); a missing slot or argument yields an invalid node, which
  // every effect below treats as "skip".
  auto ArgNode = [&](int I) -> NodeId {
    if (I < 0)
      return Call.RetDst.isValid() ? S.normalizeObj(Call.RetDst) : NodeId();
    if (static_cast<size_t>(I) >= Call.Args.size())
      return NodeId();
    return S.normalizeObj(Call.Args[I]);
  };

  for (const Effect &E : It->second) {
    switch (E.K) {
    case Effect::RetAliasArg: {
      if (!Call.RetDst.isValid())
        break;
      NodeId Arg = ArgNode(E.A);
      if (!Arg.isValid())
        break;
      if (S.flowResolve(S.normalizeObj(Call.RetDst), Arg,
                        Prog.object(Call.RetDst).Ty))
        Changed = true;
      break;
    }
    case Effect::RetIntoArg: {
      if (!Call.RetDst.isValid())
        break;
      NodeId Arg = ArgNode(E.A);
      if (!Arg.isValid())
        break;
      if (S.flowPtrArith(S.normalizeObj(Call.RetDst), S.pointsTo(Arg)))
        Changed = true;
      break;
    }
    case Effect::CopyPointees: {
      NodeId DstArg = ArgNode(E.A);
      NodeId SrcArg = ArgNode(E.B);
      if (!DstArg.isValid() || !SrcArg.isValid())
        break;
      // The byte count is unknown statically; copy as if the whole source
      // object were transferred (safe under the collapsed-array view).
      PtsSet DstTargets = S.pointsTo(DstArg);
      PtsSet SrcTargets = S.pointsTo(SrcArg);
      for (NodeId D : DstTargets)
        for (NodeId Src : SrcTargets) {
          ObjectId SrcObj = S.model().nodes().objectOf(Src);
          if (S.flowResolve(D, Src, Prog.object(SrcObj).Ty))
            Changed = true;
        }
      break;
    }
    case Effect::RetExtern: {
      if (!Call.RetDst.isValid())
        break;
      NodeId Ext = S.model().normalizeLoc(S.externObject(), {});
      if (S.addEdge(S.normalizeObj(Call.RetDst), Ext))
        Changed = true;
      break;
    }
    case Effect::Callback: {
      NodeId Cb = ArgNode(E.A);
      NodeId Data = ArgNode(E.B);
      if (!Cb.isValid() || !Data.isValid())
        break;
      PtsSet CbTargets = S.pointsTo(Cb);
      PtsSet DataTargets = S.pointsTo(Data);
      for (NodeId Target : CbTargets) {
        ObjectId Obj = S.model().nodes().objectOf(Target);
        const NormObject &Info = Prog.object(Obj);
        if (Info.Kind != ObjectKind::Function || !Info.AsFunction.isValid())
          continue;
        const NormFunction &Fn = Prog.func(Info.AsFunction);
        for (ObjectId Param : Fn.Params)
          if (S.flowPtrArith(S.normalizeObj(Param), DataTargets))
            Changed = true;
      }
      break;
    }
    case Effect::Dealloc: {
      NodeId Arg = ArgNode(E.A);
      if (!Arg.isValid())
        break;
      // No points-to set changes: deallocation only marks the targeted
      // heap objects dead so the use-after-free checker can flag later
      // dereferences that may still reach them.
      for (NodeId T : S.pointsTo(Arg))
        S.markFreed(S.model().nodes().objectOf(T), Call.Loc);
      break;
    }
    }
  }
  return Changed;
}
