//===--- LibrarySummaries.h - External function models ---------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Points-to summaries for calls to library functions without bodies,
/// playing the role of the Wilson/Lam summaries the paper's implementation
/// used ("calls to library functions are handled by providing summaries of
/// the potential pointer assignments in each library function").
///
/// A summary is a small list of effects:
///   RetAliasArg(i)        the return value aliases argument i
///   RetIntoArg(i)         the return value points somewhere into the
///                         objects argument i points to (strchr & co.)
///   CopyPointees(d, s)    a block copy from *arg s to *arg d (memcpy)
///   RetExtern             returns a pointer to external/anonymous storage
///   Callback(cb, data)    argument cb is called with pointers into the
///                         objects argument data points to (qsort)
///   Dealloc(i)            the heap objects argument i points to are
///                         deallocated (free, and the old block of realloc)
///
/// Functions known to have no pointer effects map to an empty effect list;
/// unknown externals are collected and reported (conservatively treated as
/// having no effect, which mirrors the paper's reliance on per-function
/// summaries).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_LIBRARYSUMMARIES_H
#define SPA_PTA_LIBRARYSUMMARIES_H

#include "norm/NormIR.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace spa {

class Solver;

/// Registry of library-function effect summaries.
class LibrarySummaries {
public:
  /// One primitive effect of a library call.
  struct Effect {
    enum Kind {
      RetAliasArg,
      RetIntoArg,
      CopyPointees,
      RetExtern,
      Callback,
      Dealloc,
    } K;
    int A = 0; ///< primary argument index (or callback index)
    int B = 0; ///< secondary argument index
  };

  LibrarySummaries();

  /// True if \p Name has a registered summary (possibly empty).
  bool hasSummary(std::string_view Name) const {
    return Summaries.count(std::string(Name)) != 0;
  }

  /// Applies \p Name's summary to call statement \p Call. Returns true if
  /// any points-to set changed. Unknown names are recorded and ignored.
  bool apply(std::string_view Name, const NormStmt &Call, Solver &S);

  /// Names of called externals with no summary (for diagnostics).
  const std::set<std::string> &unknownCallees() const { return Unknown; }

  /// Effect list of \p Name's summary; null if none is registered.
  /// Read-only access for the solution certifier and the IR verifier
  /// (src/verify/), which re-derive apply()'s obligations independently.
  const std::vector<Effect> *summaryOf(std::string_view Name) const {
    auto It = Summaries.find(std::string(Name));
    return It == Summaries.end() ? nullptr : &It->second;
  }

private:
  std::map<std::string, std::vector<Effect>> Summaries;
  std::set<std::string> Unknown;
};

} // namespace spa

#endif // SPA_PTA_LIBRARYSUMMARIES_H
