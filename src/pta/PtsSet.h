//===--- PtsSet.h - Pluggable points-to set representations ----*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The points-to set as a runtime-pluggable storage policy. Every solver
/// engine manipulates node facts exclusively through this type, so the
/// representation — how a set of NodeIds is laid out in memory — is a
/// tunable orthogonal to the engine and the field model. Four policies:
///
///  * Sorted (`--pts=sorted`, the default): one sorted vector of ids.
///    The historical representation; best for tiny, rarely-joined sets.
///  * Small (`--pts=small`): up to PtsSet::SmallCap ids stored inline in
///    the set object itself, spilling to a sorted heap vector only on
///    overflow. Most dereference sites average ~5 targets, so most sets
///    never allocate at all.
///  * Bitmap (`--pts=bitmap`): members are interned through the store's
///    shared lookup table (NodeStore::ptsInterner) into a dense
///    first-seen index space, and the set stores 64-bit word bitmaps over
///    that space with interval run compression — consecutive all-ones
///    words collapse to one (start, length) run chunk. Sets that share
///    members (the common case after propagation) become a handful of
///    runs regardless of cardinality.
///  * Offsets (`--pts=offsets`): splits each member's (object, field)
///    identity — the set stores one 8-byte entry per target *object*,
///    shared by every field node of that object: the object id plus a
///    32-bit mask over the object's node ordinals (the rare ordinals
///    >= 32 overflow into a shared side table). Struct-heavy workloads
///    where many fields of the same object are targeted pay one entry
///    instead of N ids.
///
/// All four satisfy the same contract the solver relies on:
///  * deterministic iteration in ascending NodeId order (begin()/end()
///    iterate a decoded, sorted view; contiguous representations iterate
///    their storage directly);
///  * insertAll(Other, &Log) appends exactly the newly inserted elements
///    to the change log, in ascending id order, bit-identically across
///    representations (the delta-propagation cursor machinery and the
///    cross-representation oracle tests depend on this);
///  * insertAll/containsAll have merge fast paths for every same-
///    representation pair (word-ORs for bitmaps, per-object merges for
///    offsets, two-pointer merges for the vector forms); mixed pairs fall
///    back to an element-wise path that preserves the log contract.
///
/// A set adopts its representation while empty (Solver::factsOf binds
/// every facts set to SolverOptions::PointsTo) and keeps it for life; the
/// compressed representations additionally bind the NodeStore whose
/// interner/ordinals give ids their structure. Default-constructed sets
/// are Sorted, so code outside the solver (certifier scratch sets, tests)
/// is unaffected unless it opts in.
///
/// Concurrency contract (the parallel engine's gather phase relies on
/// this): every set has a single writer — the solver's main thread, which
/// owns all insert/insertAll calls. While no writer is active, concurrent
/// readers may call contains(): it is a pure probe for every
/// representation (the bitmap policy resolves members through
/// InternTable::find, which never grows the shared table). begin()/end()
/// and decoded views are NOT concurrent-reader-safe — the compressed
/// representations materialize a mutable decode cache on first iteration —
/// so worker threads must walk the solver's append-only change logs
/// instead of iterating sets.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_PTA_PTSSET_H
#define SPA_PTA_PTSSET_H

#include "pta/NodeStore.h"
#include "support/IdSet.h"

#include <vector>

namespace spa {

/// Which storage policy a points-to set uses.
enum class PtsRepr : uint8_t {
  Sorted,  ///< sorted vector of ids (the baseline)
  Small,   ///< inline array, heap spill on overflow
  Bitmap,  ///< interned-id word bitmap with run compression
  Offsets, ///< per-object entries with shared offset sets
};

/// CLI/telemetry name of \p R ("sorted", "small", "bitmap", "offsets").
const char *ptsReprName(PtsRepr R);

/// A points-to set: the targets of one node, stored per PtsRepr.
class PtsSet {
public:
  using value_type = NodeId;
  /// Iteration is over a contiguous ascending-by-id view: the storage
  /// itself for Sorted/Small, a lazily decoded snapshot for the
  /// compressed representations (rebuilt after mutation on next begin()).
  using const_iterator = const NodeId *;

  /// Ids stored inline by the Small representation before spilling.
  static constexpr unsigned SmallCap = 6;

  PtsSet() = default;
  explicit PtsSet(PtsRepr R, const NodeStore *NS = nullptr) {
    adoptRepr(R, NS);
  }

  /// Binds the representation (and, for Bitmap/Offsets, the store whose
  /// interner/ordinals structure the ids). Cheap no-op when already bound
  /// to \p R; a non-empty set switching representations is converted
  /// element-wise (rare — only configuration errors hit it).
  void adoptRepr(PtsRepr R, const NodeStore *NS = nullptr);

  PtsRepr repr() const { return Kind; }

  /// Inserts \p V; returns true if it was not already present.
  bool insert(value_type V);

  /// Inserts every element of \p Other; returns the number of new
  /// elements.
  size_t insertAll(const PtsSet &Other) { return insertAll(Other, nullptr); }

  /// Like insertAll, and additionally appends each newly inserted element
  /// to \p NewElems (when non-null) in ascending id order — identical
  /// across representations, so delta logs are representation-independent.
  size_t insertAll(const PtsSet &Other, std::vector<value_type> *NewElems);

  /// True if every element of \p Other is already present.
  bool containsAll(const PtsSet &Other) const;

  /// Membership probe. Pure for every representation — no decode cache,
  /// no interning — so it is safe to call from concurrent reader threads
  /// while no writer is active (see the concurrency contract above).
  bool contains(value_type V) const;

  /// Removes \p V; returns true if it was present. (Exists for the
  /// mutation self-test harness; never called on the solve hot path.)
  bool erase(value_type V);

  bool empty() const { return size() == 0; }
  size_t size() const;

  const_iterator begin() const;
  const_iterator end() const { return begin() + size(); }

  /// Owned heap bytes of the intrinsic storage (capacities, not sizes).
  /// Excludes the transient iteration cache the compressed
  /// representations keep (a query-time convenience, dropped from the
  /// telemetry byte counters on purpose) and the store's shared interner
  /// (reported separately as pts_lookup_bytes).
  size_t heapBytes() const;

  /// Semantic equality: same members, any representations.
  friend bool operator==(const PtsSet &A, const PtsSet &B);

private:
  /// One bitmap chunk. Run == 0: a single, not-all-ones word of bits at
  /// word index Word. Run >= 1: Run consecutive all-ones words starting
  /// at Word (Bits unused). Chunks are sorted by Word, never overlap, and
  /// adjacent runs are coalesced, so a full word is always part of a run.
  struct BitChunk {
    uint32_t Word;
    uint32_t Run;
    uint64_t Bits;
  };

  /// Streams the (word index, 64-bit word) pairs of a chunk list in
  /// ascending word order, expanding runs one word at a time.
  struct WordCursor {
    const std::vector<BitChunk> &Cs;
    size_t I = 0;
    uint32_t Off = 0;
    bool done() const { return I >= Cs.size(); }
    uint32_t word() const { return Cs[I].Word + Off; }
    uint64_t bits() const { return Cs[I].Run ? ~uint64_t(0) : Cs[I].Bits; }
    void next() {
      if (Cs[I].Run > Off + 1)
        ++Off;
      else {
        ++I;
        Off = 0;
      }
    }
  };

  /// One offsets entry: the member nodes of Obj with NodeStore ordinal
  /// < 32, as bit i of Low for ordinal i. Entries are sorted by Obj and
  /// exist only while Low != 0; the rare ordinals >= 32 (objects with
  /// more than 32 materialized nodes) live in the shared HighOrds side
  /// table so every entry stays at 8 bytes.
  struct ObjEntry {
    ObjectId Obj;
    uint32_t Low;
  };

  // --- Small ---
  bool insertSmall(value_type V);
  bool spilled() const { return SmallCount > SmallCap; }
  void spill();

  // --- Bitmap ---
  bool insertBit(uint32_t Bit);
  bool containsBit(uint32_t Bit) const;
  bool eraseBit(uint32_t Bit);
  /// Index of the chunk covering word \p W, or SIZE_MAX.
  size_t chunkCovering(uint32_t W) const;
  /// Turns the now-all-ones chunk at \p I into a run and coalesces it
  /// with adjacent runs.
  void promoteToRun(size_t I);
  size_t insertAllBitmap(const PtsSet &Other,
                         std::vector<value_type> *NewElems);
  bool containsAllBitmap(const PtsSet &Other) const;

  // --- Offsets ---
  /// Entry index for \p Obj (creating it when \p Create), or SIZE_MAX.
  size_t entryFor(ObjectId Obj, bool Create);
  /// Entry index for \p Obj, or SIZE_MAX. Never creates.
  size_t findEntry(ObjectId Obj) const;
  size_t insertAllOffsets(const PtsSet &Other,
                          std::vector<value_type> *NewElems);
  bool containsAllOffsets(const PtsSet &Other) const;

  // --- shared ---
  void decodeInto(std::vector<value_type> &Out) const;
  const std::vector<value_type> &decoded() const;
  size_t insertAllGeneric(const PtsSet &Other,
                          std::vector<value_type> *NewElems);
  void invalidate() { CacheValid = false; }

  PtsRepr Kind = PtsRepr::Sorted;
  /// Bound for Bitmap (interner) and Offsets (object/ordinal structure).
  const NodeStore *Store = nullptr;
  /// Element count for Bitmap/Offsets (the vector forms know their own).
  uint32_t Count = 0;
  /// Small: number of inline ids, or SmallCap + 1 once spilled.
  uint32_t SmallCount = 0;
  /// Sorted storage, and the Small representation's spill target.
  IdSet<NodeTag> Vec;
  /// Small inline storage (sorted, first SmallCount entries).
  value_type Inline[SmallCap];
  /// Bitmap storage.
  std::vector<BitChunk> Chunks;
  /// Offsets storage.
  std::vector<ObjEntry> Objects;
  /// Offsets overflow: (object raw id, ordinal) pairs for ordinals >= 32,
  /// sorted. Nearly always empty.
  std::vector<std::pair<uint32_t, uint32_t>> HighOrds;
  /// Decoded ascending-id view for Bitmap/Offsets iteration. Only a
  /// cache: flag-invalidated on mutation, rebuilt on next begin().
  mutable std::vector<value_type> Cache;
  mutable bool CacheValid = false;
};

} // namespace spa

#endif // SPA_PTA_PTSSET_H
