//===--- SourceLoc.h - Source positions ------------------------*- C++ -*-===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight (file, line, column) source position used by the lexer,
/// parser, and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_SOURCELOC_H
#define SPA_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace spa {

/// A position in a source buffer. Files are identified by name; the front
/// end analyzes one translation unit at a time, so no file id table is
/// needed.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;
  /// Byte offset into the source buffer. Carried only as a diagnostic
  /// sort tie-break for positions that render to the same line:column
  /// (e.g. synthesized locations); not part of equality, so two
  /// diagnostics at the same printed position still dedupe.
  uint32_t Offset = 0;

  bool isValid() const { return Line != 0; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
};

/// Renders "line:col" for diagnostics.
inline std::string toString(SourceLoc Loc) {
  return std::to_string(Loc.Line) + ":" + std::to_string(Loc.Column);
}

} // namespace spa

#endif // SPA_SUPPORT_SOURCELOC_H
