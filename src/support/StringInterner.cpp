//===--- StringInterner.cpp -----------------------------------------------===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

using namespace spa;

Symbol StringInterner::intern(std::string_view Text) {
  auto It = Index.find(Text);
  if (It != Index.end())
    return It->second;
  Strings.emplace_back(Text);
  Symbol Sym(static_cast<uint32_t>(Strings.size() - 1));
  Index.emplace(std::string_view(Strings.back()), Sym);
  return Sym;
}
