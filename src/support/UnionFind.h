//===--- UnionFind.h - Disjoint sets over dense ids ------------*- C++ -*-===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A union-find (disjoint-set) forest over dense \c Id<Tag> values, used by
/// the solver's cycle-elimination engine to collapse copy cycles: nodes in
/// one strongly connected component of the constraint graph share a single
/// points-to set, and every set access resolves through find() to the
/// class representative. Ids outside the forest are their own class, so the
/// structure can be grown lazily and a default-constructed instance is the
/// identity map.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_UNIONFIND_H
#define SPA_SUPPORT_UNIONFIND_H

#include "support/IdTypes.h"

#include <vector>

namespace spa {

/// Disjoint sets of \c Id<Tag> values with union by rank and path halving.
template <typename Tag> class UnionFind {
public:
  using value_type = Id<Tag>;

  /// True while no two ids have ever been united — find() is the identity
  /// and callers can skip canonicalization entirely (the hot-path guard
  /// for engines that never merge).
  bool identity() const { return Merges == 0; }

  /// Number of successful unite() calls (== ids absorbed into another
  /// class, since each unite reduces the class count by one).
  size_t merges() const { return Merges; }

  /// Class representative of \p V. Ids never seen by unite() are their own
  /// representative. Performs path halving (mutates only the internal
  /// parent cache, so it is semantically const).
  value_type find(value_type V) const {
    uint32_t I = V.index();
    if (I >= Parent.size())
      return V;
    while (Parent[I] != I) {
      Parent[I] = Parent[Parent[I]]; // path halving
      I = Parent[I];
    }
    return value_type(I);
  }

  /// find() without path compression: the same representative, but a pure
  /// read of the parent array. find()'s path halving writes through the
  /// mutable cache, which is a data race under concurrent callers — the
  /// parallel solver's worker threads resolve through this instead (no
  /// unite() or find() runs while they do; see Solver::canonNC).
  value_type findNoCompress(value_type V) const {
    uint32_t I = V.index();
    if (I >= Parent.size())
      return V;
    while (Parent[I] != I)
      I = Parent[I];
    return value_type(I);
  }

  /// Unites the classes of \p A and \p B. Returns true if they were
  /// distinct (a merge happened). The surviving representative is chosen
  /// by rank; query it with find() afterwards.
  bool unite(value_type A, value_type B) {
    uint32_t RA = find(grow(A)).index();
    uint32_t RB = find(grow(B)).index();
    if (RA == RB)
      return false;
    if (Rank[RA] < Rank[RB])
      std::swap(RA, RB);
    Parent[RB] = RA;
    if (Rank[RA] == Rank[RB])
      ++Rank[RA];
    ++Merges;
    return true;
  }

private:
  /// Ensures \p V has a forest slot; returns it unchanged.
  value_type grow(value_type V) {
    if (V.index() >= Parent.size()) {
      size_t Old = Parent.size();
      Parent.resize(V.index() + 1);
      Rank.resize(V.index() + 1, 0);
      for (size_t I = Old; I < Parent.size(); ++I)
        Parent[I] = static_cast<uint32_t>(I);
    }
    return V;
  }

  mutable std::vector<uint32_t> Parent;
  std::vector<uint8_t> Rank;
  size_t Merges = 0;
};

} // namespace spa

#endif // SPA_SUPPORT_UNIONFIND_H
