//===--- SegmentedVector.h - Reference-stable dense storage ----*- C++ -*-===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, index-addressed container whose elements never move: storage
/// is a chain of fixed-size heap segments, so growing the container never
/// reallocates existing elements. The solver keeps per-node fact records
/// in one of these — queries hand out references into it, and lazily
/// created pseudo-objects ($unknown, $extern) may grow it mid-iteration,
/// which with a plain std::vector would invalidate every outstanding
/// reference (and did: see tests/pta/SolverEdgeCasesTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_SEGMENTEDVECTOR_H
#define SPA_SUPPORT_SEGMENTEDVECTOR_H

#include <cstddef>
#include <memory>
#include <vector>

namespace spa {

/// Grow-only vector of \p T with stable element addresses. \p SegSize must
/// be a power of two.
template <typename T, size_t SegSize = 256> class SegmentedVector {
  static_assert((SegSize & (SegSize - 1)) == 0, "SegSize must be a power of 2");

public:
  /// Number of elements.
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Element access; \p I must be < size().
  T &operator[](size_t I) { return Segments[I / SegSize][I % SegSize]; }
  const T &operator[](size_t I) const {
    return Segments[I / SegSize][I % SegSize];
  }

  /// Grows (default-constructing) until size() > \p I, then returns the
  /// element. Existing references stay valid.
  T &grow(size_t I) {
    while (Count <= I) {
      if (Count % SegSize == 0)
        Segments.push_back(std::make_unique<T[]>(SegSize));
      ++Count;
    }
    return (*this)[I];
  }

  /// Appends a default-constructed element and returns it.
  T &emplaceBack() { return grow(Count); }

  void clear() {
    Segments.clear();
    Count = 0;
  }

  /// Visits every element in index order.
  template <typename Fn> void forEach(Fn &&F) const {
    for (size_t I = 0; I < Count; ++I)
      F((*this)[I]);
  }

private:
  std::vector<std::unique_ptr<T[]>> Segments;
  size_t Count = 0;
};

} // namespace spa

#endif // SPA_SUPPORT_SEGMENTEDVECTOR_H
