//===--- Diagnostics.h - Error and warning collection ----------*- C++ -*-===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects diagnostics emitted while lexing, parsing, and normalizing a
/// translation unit. Library code never prints or exits; callers inspect
/// the collected list.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_DIAGNOSTICS_H
#define SPA_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace spa {

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported problem, anchored to a source position.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;
  /// Stable machine-readable category ("cast-safety", "null-deref", ...).
  /// Empty for plain front-end diagnostics; the checker layer always sets
  /// it (it doubles as the SARIF rule id).
  std::string Code;
  /// Id of the checker that emitted the finding. Distinct from Code when
  /// one checker owns several codes (cast-safety also emits
  /// cast-truncation). Empty for front-end diagnostics.
  std::string Origin;
};

/// Accumulates diagnostics for one front-end run.
class DiagnosticEngine {
public:
  /// Records an error at \p Loc.
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message), {}, {}});
    ++ErrorCount;
  }

  /// Records a warning at \p Loc.
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message), {}, {}});
  }

  /// Records an informational note at \p Loc.
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message), {}, {}});
  }

  /// Records a diagnostic with a stable category code (checker findings).
  /// \p Origin names the emitting checker; it participates only in the
  /// sortAndDedupe tie-break, never in rendered output.
  void report(DiagKind Kind, SourceLoc Loc, std::string Code,
              std::string Message, std::string Origin = {}) {
    Diags.push_back(
        {Kind, Loc, std::move(Message), std::move(Code), std::move(Origin)});
    if (Kind == DiagKind::Error)
      ++ErrorCount;
  }

  /// Makes the collected list golden-testable: stable-sorts by source
  /// location (line, column, then byte offset), then code, then emitting
  /// checker, then severity, then message, and removes exact duplicates
  /// (the flow-insensitive solver can surface one finding from several
  /// statements of the same site). The full key makes the order a pure
  /// function of the finding set, independent of checker execution order
  /// or the field model that produced the solution.
  void sortAndDedupe();

  bool hasErrors() const { return ErrorCount != 0; }
  unsigned errorCount() const { return ErrorCount; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic as "line:col: kind: message", one per line;
  /// diagnostics with a code render as "line:col: kind: [code] message".
  std::string formatAll() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned ErrorCount = 0;
};

} // namespace spa

#endif // SPA_SUPPORT_DIAGNOSTICS_H
