//===--- ThreadPool.h - Fixed-size pool with barrier semantics -*- C++ -*-===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool for the solver's parallel engine. One pool
/// serves a whole solve: the worker threads are started once and parked on
/// a condition variable between supersteps, so releasing a level costs a
/// notify, not a thread spawn.
///
/// run(NumTasks, Fn) executes Fn(TaskIndex, WorkerOrdinal) for every task
/// index in [0, NumTasks) and returns only when all of them finished — the
/// level barrier. Tasks are assigned *statically*, round-robin by worker
/// ordinal (worker w takes tasks w, w + W, w + 2W, ...): which worker runs
/// which task is a pure function of (NumTasks, W), never of scheduling, so
/// per-worker work accounting (the par_imbalance_pct telemetry) is
/// deterministic and reproducible. The caller participates as worker 0, so
/// a pool of W workers owns W - 1 threads and a 1-worker pool runs
/// everything inline with no threads at all — the --threads=1 engine is
/// the same code path minus the concurrency.
///
/// The pool makes no fairness or work-stealing promises; the solver's
/// gather tasks are read-only and uniform enough that static striping is
/// the right trade (see docs/INTERNALS.md §10).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_THREADPOOL_H
#define SPA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spa {

/// Fixed worker count, barrier-style parallel-for with static striping.
class ThreadPool {
public:
  /// A pool of \p Workers total workers (the calling thread counts as
  /// worker 0, so Workers - 1 threads are spawned). 0 is clamped to 1.
  explicit ThreadPool(unsigned Workers)
      : NumWorkers(Workers == 0 ? 1 : Workers) {
    for (unsigned W = 1; W < NumWorkers; ++W)
      Threads.emplace_back([this, W] { workerLoop(W); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> L(M);
      Stop = true;
    }
    WakeCV.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  unsigned workers() const { return NumWorkers; }

  /// Runs Fn(TaskIndex, WorkerOrdinal) for each index in [0, NumTasks),
  /// worker w taking the stride {w, w + W, ...}; blocks until every task
  /// completed. Fn must not touch shared mutable state (the solver's
  /// gather contract); the pool itself adds no synchronization beyond the
  /// entry/exit barrier.
  void run(size_t NumTasks,
           const std::function<void(size_t, unsigned)> &Fn) {
    if (NumWorkers == 1 || NumTasks <= 1) {
      for (size_t I = 0; I < NumTasks; ++I)
        Fn(I, 0);
      return;
    }
    {
      std::lock_guard<std::mutex> L(M);
      Job = &Fn;
      Tasks = NumTasks;
      Pending = NumWorkers - 1;
      ++Generation;
    }
    WakeCV.notify_all();
    runStripe(0, NumTasks, Fn);
    std::unique_lock<std::mutex> L(M);
    DoneCV.wait(L, [this] { return Pending == 0; });
    Job = nullptr;
  }

private:
  void runStripe(unsigned W, size_t NumTasks,
                 const std::function<void(size_t, unsigned)> &Fn) {
    for (size_t I = W; I < NumTasks; I += NumWorkers)
      Fn(I, W);
  }

  void workerLoop(unsigned W) {
    uint64_t SeenGen = 0;
    for (;;) {
      const std::function<void(size_t, unsigned)> *Fn;
      size_t NumTasks;
      {
        std::unique_lock<std::mutex> L(M);
        WakeCV.wait(L, [&] { return Stop || Generation != SeenGen; });
        if (Stop)
          return;
        SeenGen = Generation;
        Fn = Job;
        NumTasks = Tasks;
      }
      runStripe(W, NumTasks, *Fn);
      {
        std::lock_guard<std::mutex> L(M);
        if (--Pending == 0)
          DoneCV.notify_one();
      }
    }
  }

  const unsigned NumWorkers;
  std::vector<std::thread> Threads;
  std::mutex M;
  std::condition_variable WakeCV, DoneCV;
  const std::function<void(size_t, unsigned)> *Job = nullptr;
  size_t Tasks = 0;
  unsigned Pending = 0;
  uint64_t Generation = 0;
  bool Stop = false;
};

} // namespace spa

#endif // SPA_SUPPORT_THREADPOOL_H
