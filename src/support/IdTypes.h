//===--- IdTypes.h - Strongly typed dense identifiers ----------*- C++ -*-===//
//
// Part of the spa project: a reproduction of Yong/Horwitz/Reps,
// "Pointer Analysis for Programs with Structures and Casting" (PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly typed wrappers around dense indices. The analysis identifies
/// every entity (objects, nodes, types, statements, ...) by a small integer
/// so that containers can be plain vectors and iteration order is always
/// deterministic (never pointer order).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_IDTYPES_H
#define SPA_SUPPORT_IDTYPES_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>

namespace spa {

/// A dense, strongly typed identifier. \p Tag is a phantom type that keeps
/// ids of different entity kinds from being mixed up at compile time.
template <typename Tag> class Id {
public:
  using ValueType = uint32_t;

  /// Sentinel for "no id".
  static constexpr ValueType InvalidValue =
      std::numeric_limits<ValueType>::max();

  constexpr Id() : Value(InvalidValue) {}
  constexpr explicit Id(ValueType V) : Value(V) {}

  /// Returns true if this id refers to an actual entity.
  constexpr bool isValid() const { return Value != InvalidValue; }

  /// Returns the raw index. The id must be valid.
  constexpr ValueType index() const {
    assert(isValid() && "indexing an invalid id");
    return Value;
  }

  /// Returns the raw value, including the sentinel.
  constexpr ValueType rawValue() const { return Value; }

  friend constexpr bool operator==(Id A, Id B) { return A.Value == B.Value; }
  friend constexpr bool operator!=(Id A, Id B) { return A.Value != B.Value; }
  friend constexpr bool operator<(Id A, Id B) { return A.Value < B.Value; }

private:
  ValueType Value;
};

} // namespace spa

namespace std {
template <typename Tag> struct hash<spa::Id<Tag>> {
  size_t operator()(spa::Id<Tag> V) const {
    return std::hash<uint32_t>()(V.rawValue());
  }
};
} // namespace std

#endif // SPA_SUPPORT_IDTYPES_H
