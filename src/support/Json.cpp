//===--- Json.cpp ---------------------------------------------------------===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace spa;

void JsonWriter::field(const char *Key, uint64_t V) {
  key(Key);
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out += Buf;
}

void JsonWriter::field(const char *Key, double V) {
  key(Key);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Out += Buf;
}

void JsonWriter::appendEscaped(const std::string &V) {
  Out += '"';
  for (char C : V) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Strict recursive-descent parser over a string_view. Depth-bounded: our
/// documents nest a dozen levels at most.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  std::optional<JsonValue> run() {
    JsonValue V;
    if (!parseValue(V, 0))
      return std::nullopt;
    skipSpace();
    if (Pos != Text.size())
      return std::nullopt; // trailing garbage
    return V;
  }

private:
  static constexpr unsigned MaxDepth = 100;

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool eatWord(std::string_view W) {
    if (Text.substr(Pos, W.size()) != W)
      return false;
    Pos += W.size();
    return true;
  }

  bool parseString(std::string &Out) {
    if (!eat('"'))
      return false;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return false;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return false;
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= unsigned(H - 'A' + 10);
          else
            return false;
        }
        // Our emitters only produce \u00XX control escapes; encode the
        // general case as UTF-8 anyway.
        if (Code < 0x80) {
          Out += char(Code);
        } else if (Code < 0x800) {
          Out += char(0xC0 | (Code >> 6));
          Out += char(0x80 | (Code & 0x3F));
        } else {
          Out += char(0xE0 | (Code >> 12));
          Out += char(0x80 | ((Code >> 6) & 0x3F));
          Out += char(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return false;
      }
    }
    return false; // unterminated
  }

  bool parseNumber(JsonValue &V) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return false;
    std::string Num(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    V.K = JsonValue::Kind::Number;
    V.Number = std::strtod(Num.c_str(), &End);
    return End && *End == '\0';
  }

  bool parseValue(JsonValue &V, unsigned Depth) {
    if (Depth > MaxDepth)
      return false;
    skipSpace();
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      V.K = JsonValue::Kind::Object;
      skipSpace();
      if (eat('}'))
        return true;
      for (;;) {
        std::string Key;
        skipSpace();
        if (!parseString(Key) || !eat(':'))
          return false;
        JsonValue Member;
        if (!parseValue(Member, Depth + 1))
          return false;
        V.Members.emplace_back(std::move(Key), std::move(Member));
        if (eat(','))
          continue;
        return eat('}');
      }
    }
    if (C == '[') {
      ++Pos;
      V.K = JsonValue::Kind::Array;
      skipSpace();
      if (eat(']'))
        return true;
      for (;;) {
        JsonValue Item;
        if (!parseValue(Item, Depth + 1))
          return false;
        V.Items.push_back(std::move(Item));
        if (eat(','))
          continue;
        return eat(']');
      }
    }
    if (C == '"') {
      V.K = JsonValue::Kind::String;
      return parseString(V.Str);
    }
    if (eatWord("true")) {
      V.K = JsonValue::Kind::Bool;
      V.Bool = true;
      return true;
    }
    if (eatWord("false")) {
      V.K = JsonValue::Kind::Bool;
      V.Bool = false;
      return true;
    }
    if (eatWord("null")) {
      V.K = JsonValue::Kind::Null;
      return true;
    }
    return parseNumber(V);
  }

  std::string_view Text;
  size_t Pos = 0;
};

} // namespace

std::optional<JsonValue> spa::parseJson(std::string_view Text) {
  return Parser(Text).run();
}
