//===--- InternTable.h - Dense interning of sparse ids ---------*- C++ -*-===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lookup table mapping sparse \c Id<Tag> values to a dense intern index
/// assigned in first-seen order, with the reverse mapping kept as a plain
/// vector. The bitmap points-to representation stores its members as bits
/// over this intern space: only ids that actually appear in some set are
/// ever interned, so the bit universe stays small and — because ids are
/// interned in first-use order — sets that share members produce dense,
/// highly compressible bit patterns.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_INTERNTABLE_H
#define SPA_SUPPORT_INTERNTABLE_H

#include "support/IdTypes.h"

#include <unordered_map>
#include <vector>

namespace spa {

/// Bijection between \c Id<Tag> values and dense intern indices.
/// Append-only: an assigned index is never reused or remapped, so sets
/// holding intern indices stay valid for the table's whole lifetime.
template <typename Tag> class InternTable {
public:
  using value_type = Id<Tag>;

  /// Returned by find() for a value that was never interned.
  static constexpr uint32_t None = UINT32_MAX;

  /// Intern index of \p V, assigned on first use.
  uint32_t intern(value_type V) {
    auto [It, Inserted] =
        Index.try_emplace(V.rawValue(), static_cast<uint32_t>(Values.size()));
    if (Inserted)
      Values.push_back(V);
    return It->second;
  }

  /// Intern index of \p V, or None when \p V was never interned (a pure
  /// query: never assigns — membership tests must not grow the table).
  uint32_t find(value_type V) const {
    auto It = Index.find(V.rawValue());
    return It == Index.end() ? None : It->second;
  }

  /// The value interned at index \p I (must be < size()).
  value_type valueOf(uint32_t I) const { return Values[I]; }

  size_t size() const { return Values.size(); }

  /// Estimated owned heap bytes (vector storage plus one hash node and a
  /// bucket-array share per entry).
  size_t heapBytes() const {
    return Values.capacity() * sizeof(value_type) +
           Index.size() * (2 * sizeof(uint32_t) + sizeof(void *)) +
           Index.bucket_count() * sizeof(void *);
  }

private:
  std::vector<value_type> Values;
  std::unordered_map<uint32_t, uint32_t> Index;
};

} // namespace spa

#endif // SPA_SUPPORT_INTERNTABLE_H
