//===--- Diagnostics.cpp --------------------------------------------------===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace spa;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string DiagnosticEngine::formatAll() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += toString(D.Loc);
    Out += ": ";
    Out += kindName(D.Kind);
    Out += ": ";
    Out += D.Message;
    Out += '\n';
  }
  return Out;
}
