//===--- Diagnostics.cpp --------------------------------------------------===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <algorithm>
#include <tuple>

using namespace spa;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string DiagnosticEngine::formatAll() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += toString(D.Loc);
    Out += ": ";
    Out += kindName(D.Kind);
    Out += ": ";
    if (!D.Code.empty()) {
      Out += '[';
      Out += D.Code;
      Out += "] ";
    }
    Out += D.Message;
    Out += '\n';
  }
  return Out;
}

void DiagnosticEngine::sortAndDedupe() {
  auto KeyOf = [](const Diagnostic &D) {
    return std::make_tuple(D.Loc.Line, D.Loc.Column, D.Loc.Offset,
                           std::cref(D.Code), std::cref(D.Origin),
                           static_cast<int>(D.Kind), std::cref(D.Message));
  };
  std::stable_sort(Diags.begin(), Diags.end(),
                   [&](const Diagnostic &A, const Diagnostic &B) {
                     return KeyOf(A) < KeyOf(B);
                   });
  Diags.erase(std::unique(Diags.begin(), Diags.end(),
                          [](const Diagnostic &A, const Diagnostic &B) {
                            return A.Kind == B.Kind && A.Loc == B.Loc &&
                                   A.Code == B.Code && A.Message == B.Message;
                          }),
              Diags.end());
  ErrorCount = 0;
  for (const Diagnostic &D : Diags)
    if (D.Kind == DiagKind::Error)
      ++ErrorCount;
}
