//===--- IdSet.h - Sorted set of dense ids ---------------------*- C++ -*-===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sorted-vector set of dense ids. Points-to sets in the solver are small
/// most of the time, so a sorted vector beats a node-based set in both space
/// and iteration speed, and iteration order is deterministic by value.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_IDSET_H
#define SPA_SUPPORT_IDSET_H

#include "support/IdTypes.h"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace spa {

/// Sorted-unique vector of \c Id<Tag> values.
template <typename Tag> class IdSet {
public:
  using value_type = Id<Tag>;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  /// Inserts \p V; returns true if it was not already present.
  bool insert(value_type V) {
    auto It = std::lower_bound(Items.begin(), Items.end(), V);
    if (It != Items.end() && *It == V)
      return false;
    Items.insert(It, V);
    return true;
  }

  /// Inserts every element of \p Other; returns the number of new elements.
  size_t insertAll(const IdSet &Other) { return insertAll(Other, nullptr); }

  /// True if every element of \p Other is already present. Linear
  /// two-pointer scan over both sorted vectors — no allocation.
  bool containsAll(const IdSet &Other) const {
    if (&Other == this || Other.empty())
      return true;
    if (Other.Items.size() > Items.size())
      return false;
    auto A = Items.begin(), AEnd = Items.end();
    for (value_type V : Other.Items) {
      A = std::lower_bound(A, AEnd, V);
      if (A == AEnd || *A != V)
        return false;
      ++A;
    }
    return true;
  }

  /// Like insertAll, and additionally appends each newly inserted element
  /// to \p NewElems (when non-null) so callers can maintain a change log
  /// of the merge without re-diffing the sets.
  ///
  /// Single-pass two-pointer merge: one forward scan discovers the new
  /// elements (appending them to \p NewElems in ascending order, exactly
  /// the order the old merge-into-a-copy produced), then — only when
  /// anything is new — one resize grows the vector and a backward
  /// in-place merge slots everything home. At most one allocation, no
  /// mid-vector shifting, and a no-growth re-join (the dominant case at a
  /// fixpoint) allocates nothing at all.
  size_t insertAll(const IdSet &Other, std::vector<value_type> *NewElems) {
    if (&Other == this || Other.empty())
      return 0;
    // Append fast path: every incoming element sorts after our last one,
    // so the merge is a plain append (common when a node's facts arrive
    // in id order, e.g. freshly materialized offset nodes).
    if (Items.empty() || Items.back() < Other.Items.front()) {
      Items.insert(Items.end(), Other.Items.begin(), Other.Items.end());
      if (NewElems)
        NewElems->insert(NewElems->end(), Other.Items.begin(),
                         Other.Items.end());
      return Other.Items.size();
    }
    // Pass 1 (forward): count the elements of Other missing from Items,
    // logging each. Galloping lower_bound keeps re-joins of a large set
    // against a large superset cheap.
    size_t New = 0;
    {
      auto A = Items.begin(), AEnd = Items.end();
      for (value_type V : Other.Items) {
        A = std::lower_bound(A, AEnd, V);
        if (A != AEnd && *A == V) {
          ++A;
          continue;
        }
        ++New;
        if (NewElems)
          NewElems->push_back(V);
      }
    }
    if (New == 0)
      return 0;
    // Pass 2 (backward): grow once, then merge from the back so every
    // element moves at most once and old elements never shift twice.
    size_t OldSize = Items.size();
    Items.resize(OldSize + New);
    auto Out = Items.end();
    auto A = Items.begin() + static_cast<ptrdiff_t>(OldSize);
    auto ABegin = Items.begin();
    auto B = Other.Items.end(), BBegin = Other.Items.begin();
    while (B != BBegin) {
      if (A != ABegin && *(B - 1) < *(A - 1)) {
        *--Out = *--A;
      } else if (A != ABegin && !(*(A - 1) < *(B - 1))) {
        *--Out = *--A; // equal: keep ours, drop theirs
        --B;
      } else {
        *--Out = *--B;
      }
    }
    return New;
  }

  /// Removes \p V; returns true if it was present.
  bool erase(value_type V) {
    auto It = std::lower_bound(Items.begin(), Items.end(), V);
    if (It == Items.end() || *It != V)
      return false;
    Items.erase(It);
    return true;
  }

  bool contains(value_type V) const {
    return std::binary_search(Items.begin(), Items.end(), V);
  }

  bool empty() const { return Items.empty(); }
  size_t size() const { return Items.size(); }
  const_iterator begin() const { return Items.begin(); }
  const_iterator end() const { return Items.end(); }
  /// Contiguous storage (valid for size() elements; may be null if empty).
  const value_type *data() const { return Items.data(); }
  /// Owned heap bytes (capacity, not size — slack is real memory).
  size_t heapBytes() const { return Items.capacity() * sizeof(value_type); }

  friend bool operator==(const IdSet &A, const IdSet &B) {
    return A.Items == B.Items;
  }

private:
  std::vector<value_type> Items;
};

} // namespace spa

#endif // SPA_SUPPORT_IDSET_H
