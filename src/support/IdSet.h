//===--- IdSet.h - Sorted set of dense ids ---------------------*- C++ -*-===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sorted-vector set of dense ids. Points-to sets in the solver are small
/// most of the time, so a sorted vector beats a node-based set in both space
/// and iteration speed, and iteration order is deterministic by value.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_IDSET_H
#define SPA_SUPPORT_IDSET_H

#include "support/IdTypes.h"

#include <algorithm>
#include <vector>

namespace spa {

/// Sorted-unique vector of \c Id<Tag> values.
template <typename Tag> class IdSet {
public:
  using value_type = Id<Tag>;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  /// Inserts \p V; returns true if it was not already present.
  bool insert(value_type V) {
    auto It = std::lower_bound(Items.begin(), Items.end(), V);
    if (It != Items.end() && *It == V)
      return false;
    Items.insert(It, V);
    return true;
  }

  /// Inserts every element of \p Other; returns the number of new elements.
  size_t insertAll(const IdSet &Other) { return insertAll(Other, nullptr); }

  /// True if every element of \p Other is already present. Linear
  /// two-pointer scan over both sorted vectors — no allocation.
  bool containsAll(const IdSet &Other) const {
    if (&Other == this || Other.empty())
      return true;
    if (Other.Items.size() > Items.size())
      return false;
    auto A = Items.begin(), AEnd = Items.end();
    for (value_type V : Other.Items) {
      A = std::lower_bound(A, AEnd, V);
      if (A == AEnd || *A != V)
        return false;
      ++A;
    }
    return true;
  }

  /// Like insertAll, and additionally appends each newly inserted element
  /// to \p NewElems (when non-null) so callers can maintain a change log
  /// of the merge without re-diffing the sets.
  size_t insertAll(const IdSet &Other, std::vector<value_type> *NewElems) {
    if (&Other == this || Other.empty())
      return 0;
    // Append fast path: every incoming element sorts after our last one,
    // so the merge is a plain append (common when a node's facts arrive
    // in id order, e.g. freshly materialized offset nodes).
    if (Items.empty() || Items.back() < Other.Items.front()) {
      Items.insert(Items.end(), Other.Items.begin(), Other.Items.end());
      if (NewElems)
        NewElems->insert(NewElems->end(), Other.Items.begin(),
                         Other.Items.end());
      return Other.Items.size();
    }
    // No-new-elements fast path: re-joins at a fixpoint dominate solver
    // workloads, and the pre-scan avoids allocating a merged vector for a
    // join that cannot change anything.
    if (containsAll(Other))
      return 0;
    size_t Before = Items.size();
    std::vector<value_type> Merged;
    Merged.reserve(Items.size() + Other.Items.size());
    auto A = Items.begin(), AEnd = Items.end();
    auto B = Other.Items.begin(), BEnd = Other.Items.end();
    while (A != AEnd && B != BEnd) {
      if (*A < *B) {
        Merged.push_back(*A++);
      } else if (*B < *A) {
        if (NewElems)
          NewElems->push_back(*B);
        Merged.push_back(*B++);
      } else {
        Merged.push_back(*A++);
        ++B;
      }
    }
    Merged.insert(Merged.end(), A, AEnd);
    for (; B != BEnd; ++B) {
      if (NewElems)
        NewElems->push_back(*B);
      Merged.push_back(*B);
    }
    Items = std::move(Merged);
    return Items.size() - Before;
  }

  /// Removes \p V; returns true if it was present.
  bool erase(value_type V) {
    auto It = std::lower_bound(Items.begin(), Items.end(), V);
    if (It == Items.end() || *It != V)
      return false;
    Items.erase(It);
    return true;
  }

  bool contains(value_type V) const {
    return std::binary_search(Items.begin(), Items.end(), V);
  }

  bool empty() const { return Items.empty(); }
  size_t size() const { return Items.size(); }
  const_iterator begin() const { return Items.begin(); }
  const_iterator end() const { return Items.end(); }

  friend bool operator==(const IdSet &A, const IdSet &B) {
    return A.Items == B.Items;
  }

private:
  std::vector<value_type> Items;
};

} // namespace spa

#endif // SPA_SUPPORT_IDSET_H
