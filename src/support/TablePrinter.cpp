//===--- TablePrinter.cpp -------------------------------------------------===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <cassert>
#include <cstdio>

using namespace spa;

TablePrinter::TablePrinter(std::vector<std::string> Hdr)
    : Header(std::move(Hdr)) {}

void TablePrinter::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row/header arity mismatch");
  Rows.push_back({false, std::move(Row)});
}

void TablePrinter::addSeparator() { Rows.push_back({true, {}}); }

std::string TablePrinter::fixed(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

/// Returns true if \p Cell looks like a number (so it gets right-aligned).
static bool looksNumeric(const std::string &Cell) {
  if (Cell.empty())
    return false;
  for (char C : Cell)
    if ((C < '0' || C > '9') && C != '.' && C != '-' && C != '+' && C != '%' &&
        C != 'x')
      return false;
  return true;
}

std::string TablePrinter::render() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const RowData &Row : Rows) {
    if (Row.IsSeparator)
      continue;
    for (size_t I = 0; I < Row.Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Row.Cells[I].size());
  }

  auto appendCell = [&](std::string &Out, const std::string &Cell, size_t W) {
    if (looksNumeric(Cell)) {
      Out.append(W - Cell.size(), ' ');
      Out += Cell;
    } else {
      Out += Cell;
      Out.append(W - Cell.size(), ' ');
    }
  };

  size_t Total = Header.size() > 0 ? (Header.size() - 1) * 3 : 0;
  for (size_t W : Widths)
    Total += W;

  std::string Out;
  for (size_t I = 0; I < Header.size(); ++I) {
    if (I)
      Out += " | ";
    appendCell(Out, Header[I], Widths[I]);
  }
  Out += '\n';
  Out.append(Total, '-');
  Out += '\n';

  for (const RowData &Row : Rows) {
    if (Row.IsSeparator) {
      Out.append(Total, '-');
      Out += '\n';
      continue;
    }
    for (size_t I = 0; I < Row.Cells.size(); ++I) {
      if (I)
        Out += " | ";
      appendCell(Out, Row.Cells[I], Widths[I]);
    }
    Out += '\n';
  }
  return Out;
}
