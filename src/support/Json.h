//===--- Json.h - Minimal JSON writing and parsing -------------*- C++ -*-===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal JSON toolkit shared by the telemetry and SARIF emitters (and
/// by tests that validate their output). The writer emits only our own
/// fixed schemas, so a full serializer would be dead weight; the parser is
/// a strict recursive-descent reader used to round-trip and inspect those
/// documents.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_JSON_H
#define SPA_SUPPORT_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spa {

/// Incremental JSON writer. The caller opens/closes containers in the
/// right order; the writer only tracks comma placement. Pass a null key
/// for anonymous containers (array elements).
class JsonWriter {
public:
  explicit JsonWriter(std::string &Out) : Out(Out) {}

  /// Opens "key":{ ... (or an anonymous object with a null key).
  void open(const char *Key) {
    key(Key);
    Out += '{';
    First = true;
  }
  void close() {
    Out += '}';
    First = false;
  }
  /// Opens "key":[ ... (or an anonymous array with a null key).
  void openArray(const char *Key) {
    key(Key);
    Out += '[';
    First = true;
  }
  void closeArray() {
    Out += ']';
    First = false;
  }
  void field(const char *Key, const std::string &V) {
    key(Key);
    appendEscaped(V);
  }
  void field(const char *Key, uint64_t V);
  void field(const char *Key, bool V) {
    key(Key);
    Out += V ? "true" : "false";
  }
  void field(const char *Key, double V);
  /// A bare string value (array element).
  void value(const std::string &V) { field(nullptr, V); }

private:
  void key(const char *Key) {
    if (!First)
      Out += ',';
    First = false;
    if (!Key)
      return;
    Out += '"';
    Out += Key;
    Out += "\":";
  }
  void appendEscaped(const std::string &V);

  std::string &Out;
  bool First = true;
};

/// A parsed JSON value. Object members keep source order (our emitters are
/// deterministic, so tests can rely on it).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool Bool = false;
  double Number = 0;
  std::string Str;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Members;

  /// Object member lookup; null when absent or not an object.
  const JsonValue *find(std::string_view Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &[Name, Val] : Members)
      if (Name == Key)
        return &Val;
    return nullptr;
  }
};

/// Parses one complete JSON document. Returns nullopt on any syntax error
/// or trailing non-whitespace.
std::optional<JsonValue> parseJson(std::string_view Text);

} // namespace spa

#endif // SPA_SUPPORT_JSON_H
