//===--- TablePrinter.h - Aligned text tables ------------------*- C++ -*-===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders benchmark results as aligned plain-text tables, mirroring the
/// tabular figures in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_TABLEPRINTER_H
#define SPA_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace spa {

/// Accumulates rows of string cells and renders them with aligned columns.
class TablePrinter {
public:
  /// Sets the header row. Column count is fixed by the header.
  explicit TablePrinter(std::vector<std::string> Header);

  /// Appends a data row. Must have the same number of cells as the header.
  void addRow(std::vector<std::string> Row);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table. Numeric-looking cells are right-aligned.
  std::string render() const;

  /// Formats \p Value with \p Decimals fractional digits.
  static std::string fixed(double Value, int Decimals = 2);

private:
  struct RowData {
    bool IsSeparator = false;
    std::vector<std::string> Cells;
  };

  std::vector<std::string> Header;
  std::vector<RowData> Rows;
};

} // namespace spa

#endif // SPA_SUPPORT_TABLEPRINTER_H
