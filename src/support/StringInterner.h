//===--- StringInterner.h - Unique string table ----------------*- C++ -*-===//
//
// Part of the spa project (see IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings into dense ids so identifiers can be compared and hashed
/// as integers throughout the front end and the analysis.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_STRINGINTERNER_H
#define SPA_SUPPORT_STRINGINTERNER_H

#include "support/IdTypes.h"

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace spa {

struct SymbolTag {};
/// Identifier for an interned string.
using Symbol = Id<SymbolTag>;

/// Owns a set of unique strings and hands out dense \c Symbol ids for them.
///
/// Storage is a deque so that the string objects (and therefore the
/// string_view keys into them) stay at stable addresses as new strings are
/// interned.
class StringInterner {
public:
  /// Interns \p Text, returning the existing id if already present.
  Symbol intern(std::string_view Text);

  /// Returns the text for \p Sym. The symbol must have been produced by this
  /// interner.
  std::string_view text(Symbol Sym) const {
    assert(Sym.index() < Strings.size() && "foreign symbol");
    return Strings[Sym.index()];
  }

  /// Returns the number of distinct strings interned so far.
  size_t size() const { return Strings.size(); }

private:
  std::deque<std::string> Strings;
  std::unordered_map<std::string_view, Symbol> Index;
};

} // namespace spa

#endif // SPA_SUPPORT_STRINGINTERNER_H
