//===--- Corpus.h - The 20-program benchmark corpus ------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Manifest and loader for the benchmark corpus. The paper evaluated 20
/// real C programs (GNU utilities, SPEC, and the Landi and Austin
/// benchmark suites); those sources are not redistributable here, so the
/// corpus contains written-for-purpose programs of the same two flavors —
/// 8 without structure casting and 12 with — each exercising the casting
/// idioms the paper discusses (see DESIGN.md, "Substitutions").
///
//===----------------------------------------------------------------------===//

#ifndef SPA_WORKLOAD_CORPUS_H
#define SPA_WORKLOAD_CORPUS_H

#include <string>
#include <vector>

namespace spa {

/// One benchmark program.
struct CorpusEntry {
  std::string Name;       ///< display name (after the paper's benchmark)
  std::string FileName;   ///< file under the corpus directory
  bool HasStructCasting;  ///< which of the paper's two groups it belongs to
};

/// The 20 programs, non-casting group first (like the paper's Figure 3).
const std::vector<CorpusEntry> &corpusManifest();

/// Directory holding the corpus .c files. Honors $SPA_CORPUS_DIR, falling
/// back to the compile-time default.
std::string corpusDir();

/// Reads one program's source; empty string (and false) on failure.
bool loadCorpusSource(const CorpusEntry &Entry, std::string &OutSource);

} // namespace spa

#endif // SPA_WORKLOAD_CORPUS_H
