//===--- Generator.cpp ----------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include <vector>

using namespace spa;

namespace {

/// Small deterministic PRNG (xorshift64*), independent of the C++ library
/// so generated programs are stable across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, Bound).
  unsigned below(unsigned Bound) {
    return Bound == 0 ? 0 : static_cast<unsigned>(next() % Bound);
  }

  bool percent(unsigned P) { return below(100) < P; }

private:
  uint64_t State;
};

/// Emits one program.
class ProgramWriter {
public:
  ProgramWriter(const GeneratorConfig &Config)
      : Config(Config), Rand(Config.Seed) {}

  std::string write() {
    emitStructs();
    emitGlobals();
    emitHelpers();
    emitMain();
    return Out;
  }

private:
  void line(const std::string &Text) {
    Out += Text;
    Out += '\n';
  }

  std::string structName(unsigned I) { return "S" + std::to_string(I); }
  std::string structVar(unsigned I) { return "g" + std::to_string(I); }
  std::string intVar(unsigned I) { return "x" + std::to_string(I); }
  std::string ptrVar(unsigned I) { return "p" + std::to_string(I); }
  std::string structPtrVar(unsigned I) { return "q" + std::to_string(I); }

  unsigned structOfVar(unsigned VarIdx) const {
    return VarIdx % Config.NumStructs;
  }

  void emitStructs() {
    // Struct 0 is the "base"; even-numbered structs share a 2-field common
    // initial sequence with it (int *f0; int *f1;), odd-numbered structs
    // diverge at the second field. Remaining fields alternate pointers and
    // scalars.
    for (unsigned I = 0; I < Config.NumStructs; ++I) {
      std::string Def = "struct " + structName(I) + " { int *f0; ";
      if (I % 2 == 0)
        Def += "int *f1; ";
      else
        Def += "char f1; ";
      for (unsigned F = 2; F < Config.FieldsPerStruct; ++F) {
        if ((I + F) % 3 == 0)
          Def += "int f" + std::to_string(F) + "; ";
        else if ((I + F) % 3 == 1)
          Def += "int *f" + std::to_string(F) + "; ";
        else
          Def += "char *f" + std::to_string(F) + "; ";
      }
      Def += "};";
      line(Def);
    }
    line("");
  }

  /// Field index -> declared pointer-ness for struct \p S (mirrors
  /// emitStructs).
  bool fieldIsIntPtr(unsigned S, unsigned F) const {
    if (F == 0)
      return true;
    if (F == 1)
      return S % 2 == 0;
    return (S + F) % 3 == 1;
  }

  void emitGlobals() {
    for (unsigned I = 0; I < Config.NumInts; ++I)
      line("int " + intVar(I) + ";");
    for (unsigned I = 0; I < Config.NumPtrVars; ++I)
      line("int *" + ptrVar(I) + ";");
    for (unsigned I = 0; I < Config.NumStructVars; ++I)
      line("struct " + structName(structOfVar(I)) + " " + structVar(I) + ";");
    for (unsigned I = 0; I < Config.NumStructs; ++I)
      line("struct " + structName(I) + " *" + structPtrVar(I) + ";");
    if (Config.UseFunctionPointers)
      line("int *(*fptr)(int *);");
    line("");
  }

  /// One copy-ring statement. A rotating counter walks two deterministic
  /// rings — int-pointer globals and same-type struct globals — so after
  /// enough statements every ring edge exists and the copies close into
  /// cycles (the adversarial shape for engines without cycle collapse:
  /// each ring forces all its sets equal, one slow lap at a time).
  std::string ringStmt() {
    unsigned C = RingCounter++;
    if (C % 2 == 0 && Config.NumPtrVars >= 2) {
      unsigned N = Config.NumPtrVars;
      unsigned I = (C / 2) % N;
      return ptrVar(I) + " = " + ptrVar((I + 1) % N) + ";";
    }
    // Struct ring over the variables of struct type 0 (structOfVar picks
    // type by index modulo NumStructs, so stride by NumStructs).
    unsigned K = Config.NumStructVars / Config.NumStructs;
    if (K >= 2) {
      unsigned I = (C / 2) % K;
      return structVar(I * Config.NumStructs) + " = " +
             structVar(((I + 1) % K) * Config.NumStructs) + ";";
    }
    return ptrVar(0) + " = " + ptrVar(0) + ";";
  }

  /// One field-fan statement. The field index advances fastest, so a run
  /// of fan statements packs the addresses of every field of one struct
  /// global into one pointer global's points-to set; the struct/pointer
  /// pair rotates once per full fan so different sets fan over different
  /// objects (and the plain pointer copies of the normal mix mingle
  /// them).
  std::string fanStmt() {
    unsigned C = FanCounter++;
    unsigned F = C % Config.FieldsPerStruct;
    unsigned Lap = C / Config.FieldsPerStruct;
    unsigned S = Lap % Config.NumStructVars;
    unsigned P = Lap % Config.NumPtrVars;
    return ptrVar(P) + " = (int *)&" + structVar(S) + ".f" +
           std::to_string(F) + ";";
  }

  /// One wide-fan statement. The int-pointer globals are carved into
  /// disjoint chains of three; the counter interleaves one step of every
  /// chain before advancing to the next step, so the emitted copies form
  /// many independent root -> middle -> tip chains. Their condensation is
  /// a three-level DAG with one component per chain per level — maximal
  /// width for the parallel engine's level batches, no cycles for the
  /// sweep to collapse.
  std::string wideStmt() {
    unsigned Chains = Config.NumPtrVars / 3;
    if (Chains == 0)
      return ptrVar(0) + " = &" + intVar(WideCounter++ % Config.NumInts) + ";";
    unsigned C = WideCounter++;
    unsigned Chain = C % Chains;
    unsigned Step = (C / Chains) % 3;
    unsigned Base = Chain * 3;
    if (Step == 0)
      return ptrVar(Base) + " = &" + intVar(Chain % Config.NumInts) + ";";
    return ptrVar(Base + Step) + " = " + ptrVar(Base + Step - 1) + ";";
  }

  /// One deallocation-mix statement. The counter alternates heap
  /// allocations into a rotating struct-pointer global with loads through
  /// it, so every use precedes the end-of-main frees in emission order —
  /// the shape whose flow-insensitive use-after-free reports an
  /// invalidation-aware pass suppresses wholesale.
  std::string freeStmt() {
    unsigned C = FreeCounter++;
    unsigned Q = C % Config.NumStructs;
    if (C % 2 == 0)
      return structPtrVar(Q) + " = (struct " + structName(Q) +
             " *)malloc(64);";
    return ptrVar((C / 2) % Config.NumPtrVars) + " = " + structPtrVar(Q) +
           "->f0;";
  }

  /// One realloc-chain statement: the old block of the rotating
  /// struct-pointer global dies, the result block is fresh (the
  /// free-then-revive shape of the invalidation pass).
  std::string reallocStmt() {
    unsigned C = ReallocCounter++;
    unsigned Q = C % Config.NumStructs;
    return structPtrVar(Q) + " = (struct " + structName(Q) + " *)realloc(" +
           structPtrVar(Q) + ", 128);";
  }

  /// One branch-shape statement: an if/else that frees a rotating
  /// struct-pointer global on one arm and loads through it on the other.
  /// The two arms are exclusive at run time, so the load is clean — but
  /// the free precedes the load in statement emission order, so only the
  /// CFG flow pass's branch join (not the linear walk) can see that.
  std::string branchStmt() {
    unsigned C = BranchCounter++;
    unsigned Q = C % Config.NumStructs;
    unsigned X = C % Config.NumInts;
    unsigned P = C % Config.NumPtrVars;
    return "if (" + intVar(X) + ") { free(" + structPtrVar(Q) + "); } else { " +
           ptrVar(P) + " = " + structPtrVar(Q) + "->f0; }";
  }

  /// One loop-carried-free statement: the body loads through a rotating
  /// struct-pointer global and then frees it, so the free reaches the
  /// load on the next iteration via the back edge — invisible to the
  /// linear walk, restored by the CFG dataflow.
  std::string loopFreeStmt() {
    unsigned C = LoopFreeCounter++;
    unsigned Q = C % Config.NumStructs;
    unsigned X = C % Config.NumInts;
    unsigned P = C % Config.NumPtrVars;
    return "while (" + intVar(X) + ") { " + ptrVar(P) + " = " +
           structPtrVar(Q) + "->f0; free(" + structPtrVar(Q) + "); " +
           intVar(X) + " = 0; }";
  }

  /// One random statement; all references are to globals, so statements
  /// are valid in any function.
  std::string randomStmt() {
    if (Config.CopyRingPercent && Rand.percent(Config.CopyRingPercent))
      return ringStmt();
    if (Config.FieldFanPercent && Config.NumStructVars && Config.NumPtrVars &&
        Rand.percent(Config.FieldFanPercent))
      return fanStmt();
    if (Config.WideFanPercent && Config.NumInts &&
        Rand.percent(Config.WideFanPercent))
      return wideStmt();
    if (Config.FreePercent && Config.NumPtrVars &&
        Rand.percent(Config.FreePercent))
      return freeStmt();
    if (Config.ReallocPercent && Rand.percent(Config.ReallocPercent))
      return reallocStmt();
    if (Config.BranchPercent && Config.NumPtrVars && Config.NumInts &&
        Rand.percent(Config.BranchPercent))
      return branchStmt();
    if (Config.LoopFreePercent && Config.NumPtrVars && Config.NumInts &&
        Rand.percent(Config.LoopFreePercent))
      return loopFreeStmt();
    unsigned S = Rand.below(Config.NumStructVars);
    unsigned SType = structOfVar(S);
    unsigned P = Rand.below(Config.NumPtrVars);
    unsigned X = Rand.below(Config.NumInts);
    bool Cast = Rand.percent(Config.CastSharePercent);

    switch (Rand.below(Cast ? 9 : 6)) {
    case 0: // take the address of an int into a pointer field
      return structVar(S) + ".f0 = &" + intVar(X) + ";";
    case 1: { // load a pointer field
      unsigned F = Rand.below(Config.FieldsPerStruct);
      if (!fieldIsIntPtr(SType, F))
        F = 0;
      return ptrVar(P) + " = " + structVar(S) + ".f" + std::to_string(F) +
             ";";
    }
    case 2: { // store through a struct pointer of the matching type
      unsigned Q = SType;
      return structPtrVar(Q) + " = &" + structVar(S) + "; " + structPtrVar(Q) +
             "->f0 = &" + intVar(X) + ";";
    }
    case 3: // plain pointer copy
      return ptrVar(P) + " = " + ptrVar(Rand.below(Config.NumPtrVars)) + ";";
    case 4: { // same-type struct copy
      unsigned S2 = Rand.below(Config.NumStructVars);
      if (structOfVar(S2) != SType)
        return structVar(S) + ".f0 = &" + intVar(X) + ";";
      return structVar(S) + " = " + structVar(S2) + ";";
    }
    case 5: { // heap or pointer arithmetic
      if (Config.UseHeap && Rand.percent(50)) {
        unsigned Q = SType;
        return structPtrVar(Q) + " = (struct " + structName(SType) +
               " *)malloc(64); " + structPtrVar(Q) + "->f0 = &" + intVar(X) +
               ";";
      }
      return ptrVar(P) + " = " + ptrVar(Rand.below(Config.NumPtrVars)) +
             " + 1;";
    }
    case 6: { // cast a struct pointer to a different struct type and load
      unsigned Other = (SType + 1 + Rand.below(Config.NumStructs - 1)) %
                       Config.NumStructs;
      return structPtrVar(Other) + " = (struct " + structName(Other) +
             " *)&" + structVar(S) + "; " + ptrVar(P) + " = " +
             structPtrVar(Other) + "->f0;";
    }
    case 7: { // whole-struct copy through a cast
      unsigned S2 = Rand.below(Config.NumStructVars);
      return structVar(S) + " = *(struct " + structName(SType) + " *)&" +
             structVar(S2) + ";";
    }
    default: { // int <- pointer round trip through a cast
      return ptrVar(P) + " = (int *)(long)" + ptrVar(
                 Rand.below(Config.NumPtrVars)) + ";";
    }
    }
  }

  /// Mutually recursive call-return loop: cycI stores its parameter into
  /// pointer global I and recurses with global I+1, and every return value
  /// flows back around the ring. Context-insensitively the parameters,
  /// globals, and returns all close into one copy cycle.
  void emitCallCycle() {
    unsigned M = Config.NumCallCycleFuncs;
    if (M < 2 || Config.NumPtrVars == 0)
      return;
    for (unsigned F = 0; F < M; ++F)
      line("int *cyc" + std::to_string(F) + "(int *a, int d);");
    for (unsigned F = 0; F < M; ++F) {
      unsigned P = F % Config.NumPtrVars;
      unsigned PNext = (F + 1) % Config.NumPtrVars;
      line("int *cyc" + std::to_string(F) + "(int *a, int d) {");
      line("  " + ptrVar(P) + " = a;");
      line("  if (d <= 0) return " + ptrVar(P) + ";");
      line("  return cyc" + std::to_string((F + 1) % M) + "(" +
           ptrVar(PNext) + ", d - 1);");
      line("}");
      line("");
    }
  }

  void emitHelpers() {
    emitCallCycle();
    for (unsigned F = 0; F < Config.NumFunctions; ++F) {
      line("int *helper" + std::to_string(F) + "(int *a, struct " +
           structName(F % Config.NumStructs) + " *b) {");
      line("  b->f0 = a;");
      for (unsigned I = 0; I < Config.StmtsPerFunction; ++I)
        line("  " + randomStmt());
      line("  return b->f0;");
      line("}");
      line("");
    }
    if (Config.UseFunctionPointers && Config.NumFunctions > 0) {
      line("int *dispatch(int *a) {");
      line("  return fptr ? fptr(a) : a;");
      line("}");
      line("");
    }
  }

  void emitMain() {
    line("int main(void) {");
    if (Config.NumCallCycleFuncs >= 2 && Config.NumPtrVars > 0)
      line("  " + ptrVar(0) + " = cyc0(&" + intVar(0) + ", 8);");
    for (unsigned F = 0; F < Config.NumFunctions; ++F) {
      unsigned X = Rand.below(Config.NumInts);
      unsigned S = Rand.below(Config.NumStructVars);
      // Pick a struct variable whose type matches the helper's parameter.
      while (structOfVar(S) != F % Config.NumStructs)
        S = (S + 1) % Config.NumStructVars;
      line("  " + ptrVar(Rand.below(Config.NumPtrVars)) + " = helper" +
           std::to_string(F) + "(&" + intVar(X) + ", &" + structVar(S) +
           ");");
    }
    for (unsigned I = 0; I < Config.StmtsPerFunction; ++I)
      line("  " + randomStmt());
    // Deallocation epilogue: every struct pointer is freed after the whole
    // body, then one is dereferenced — the single hand-pinned true
    // use-after-free of the shape. Everything the body did with the heap
    // happens before these frees, so an ordering-aware pass keeps exactly
    // this report and suppresses the body's.
    if (Config.FreePercent && Config.NumPtrVars) {
      for (unsigned Q = 0; Q < Config.NumStructs; ++Q)
        line("  free(" + structPtrVar(Q) + ");");
      line("  " + ptrVar(0) + " = " + structPtrVar(0) + "->f0;");
    }
    line("  return 0;");
    line("}");
  }

  const GeneratorConfig &Config;
  Rng Rand;
  std::string Out;
  unsigned RingCounter = 0;
  unsigned FanCounter = 0;
  unsigned WideCounter = 0;
  unsigned FreeCounter = 0;
  unsigned ReallocCounter = 0;
  unsigned BranchCounter = 0;
  unsigned LoopFreeCounter = 0;
};

} // namespace

std::string spa::generateProgram(const GeneratorConfig &Config) {
  ProgramWriter Writer(Config);
  return Writer.write();
}
