//===--- Generator.h - Parametric C program generator ----------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministically generates self-contained C programs exercising the
/// analysis: struct families with shared common-initial-sequence prefixes,
/// address-taking, field loads/stores, pointer casts between related and
/// unrelated struct types, whole-struct copies through casts, heap
/// allocation, pointer arithmetic, and (optionally) function pointers.
/// Used by property tests (cross-model invariants must hold on any
/// generated program) and by the scaling benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_WORKLOAD_GENERATOR_H
#define SPA_WORKLOAD_GENERATOR_H

#include <cstdint>
#include <string>

namespace spa {

/// Shape parameters for one generated program.
struct GeneratorConfig {
  uint64_t Seed = 1;
  unsigned NumStructs = 4;      ///< struct types (>= 2)
  unsigned FieldsPerStruct = 4; ///< fields per struct (>= 2)
  unsigned NumInts = 6;         ///< int globals (address-taken targets)
  unsigned NumStructVars = 6;   ///< struct-typed globals
  unsigned NumPtrVars = 6;      ///< int* globals
  unsigned NumFunctions = 3;    ///< helper functions called from main
  unsigned StmtsPerFunction = 24;
  unsigned CastSharePercent = 25; ///< % of statements using casts
  bool UseHeap = true;
  bool UseFunctionPointers = false;
  /// % of statements devoted to copy rings: deterministic round-robin
  /// pointer-to-pointer and whole-struct copies that close into cycles
  /// (p0 = p1; p1 = p2; ... pN = p0;), the shape online cycle elimination
  /// collapses. 0 keeps the historical statement mix exactly.
  unsigned CopyRingPercent = 0;
  /// Number of mutually recursive helper functions forming a call-return
  /// loop: each stores its pointer parameter into a global and passes the
  /// next global on, so parameters and globals close into one copy cycle
  /// through the (context-insensitive) call bindings. 0 emits none.
  unsigned NumCallCycleFuncs = 0;
  /// % of statements devoted to field fans: the addresses of successive
  /// fields of a rotating struct global flow (through an int-pointer
  /// cast) into a rotating pointer global, so points-to sets accumulate
  /// many field nodes of the *same* object — the struct-dense shape the
  /// per-object compressed set representation stores as one entry
  /// instead of one id per field. 0 keeps the historical statement mix
  /// exactly.
  unsigned FieldFanPercent = 0;
  /// % of statements devoted to wide fans: the int-pointer globals are
  /// split into disjoint chains of three (p3k = &int; p3k+1 = p3k;
  /// p3k+2 = p3k+1;), so the copy-edge condensation is wide and shallow —
  /// many mutually independent components per topological level, the
  /// shape the parallel engine's level scheduler turns into large
  /// same-level batches. 0 keeps the historical statement mix exactly.
  unsigned WideFanPercent = 0;
  /// % of statements devoted to deallocation: a deterministic counter
  /// alternates free(q)-after-use shapes over the struct-pointer globals
  /// (the use precedes the free in emission order, so an invalidation-
  /// aware pass suppresses the flow-insensitive use-after-free report).
  /// emitMain additionally frees every struct pointer at the end of main
  /// and derefs one afterwards — the one hand-pinned true positive. 0
  /// keeps the historical statement mix exactly.
  unsigned FreePercent = 0;
  /// % of statements devoted to realloc chains: q = realloc(q, n) over a
  /// rotating struct-pointer global, the free-then-revive shape (the old
  /// block dies, the result block is fresh). 0 emits none.
  unsigned ReallocPercent = 0;
  /// % of statements devoted to branch shapes: an if/else whose one arm
  /// frees a rotating struct-pointer global and whose other arm loads
  /// through it — the join-sensitive pattern the CFG flow pass
  /// (--flow=cfg) refines and the linear walk cannot (the free precedes
  /// the load in emission order). 0 keeps the statement mix exactly.
  unsigned BranchPercent = 0;
  /// % of statements devoted to loop-carried frees: a while loop that
  /// loads through a rotating struct-pointer global and then frees it,
  /// so the free reaches the load via the back edge on the next
  /// iteration — the shape whose report the linear walk wrongly drops
  /// and the CFG dataflow restores. 0 emits none.
  unsigned LoopFreePercent = 0;
};

/// Generates the program text. Deterministic in the config (including
/// the seed).
std::string generateProgram(const GeneratorConfig &Config);

} // namespace spa

#endif // SPA_WORKLOAD_GENERATOR_H
