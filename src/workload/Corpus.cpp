//===--- Corpus.cpp -------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "workload/Corpus.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#ifndef SPA_CORPUS_DIR
#define SPA_CORPUS_DIR "corpus"
#endif

using namespace spa;

const std::vector<CorpusEntry> &spa::corpusManifest() {
  static const std::vector<CorpusEntry> Manifest = {
      // 8 programs with no structure casting (paper Figure 3, upper group).
      {"allroots", "allroots.c", false},
      {"anagram", "anagram.c", false},
      {"ks", "ks.c", false},
      {"ul", "ul.c", false},
      {"ft", "ft.c", false},
      {"compress", "compress.c", false},
      {"ratfor", "ratfor.c", false},
      {"genetic", "genetic.c", false},
      // 12 programs with structure casting (lower group).
      {"diff.diffh", "diffh.c", true},
      {"lex315", "lex315.c", true},
      {"loader", "loader.c", true},
      {"agrep", "agrep.c", true},
      {"simulator", "simulator.c", true},
      {"eqntott", "eqntott.c", true},
      {"bc-1.03", "bc.c", true},
      {"less-177", "less.c", true},
      {"twig", "twig.c", true},
      {"li-130", "li.c", true},
      {"flex-2.4.7", "flex.c", true},
      {"espresso", "espresso.c", true},
  };
  return Manifest;
}

std::string spa::corpusDir() {
  if (const char *Env = std::getenv("SPA_CORPUS_DIR"))
    return Env;
  return SPA_CORPUS_DIR;
}

bool spa::loadCorpusSource(const CorpusEntry &Entry, std::string &OutSource) {
  std::ifstream In(corpusDir() + "/" + Entry.FileName, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  OutSource = Buf.str();
  return true;
}
