//===--- Certifier.h - Independent solution certificate checker -*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An engine-independent certificate checker for a solved points-to run.
/// The paper's framework defines a valid solution as one closed under the
/// inference rules of Figure 2: the solver's job is to *find* the least
/// such solution, but *checking* that a given solution is closed needs no
/// worklist, no delta cursors, and no constraint graph — one pass over the
/// normalized statements, re-deriving every obligation directly with the
/// model's normalize/lookup/resolve, suffices.
///
/// The certifier checks two directions:
///
///  * Soundness: every obligation an inference rule derives from the final
///    solution must already be satisfied by it. A missing fact means the
///    engine under test lost a propagation (a real solver bug), and is
///    reported as a violation.
///
///  * Precision audit: every fact in the solution should be justified by
///    at least one rule application over the final solution. On a
///    converged least-fixpoint run this holds exactly (each fact's first
///    derivation has premises that persist to the end), so any unjustified
///    fact indicates over-approximation injected outside the rules — e.g.
///    a seeded mutation, or an engine writing facts it cannot explain.
///
/// Because all four engines must compute bit-identical fixpoints, the
/// obligation and fact counts reported here are engine-independent: they
/// are a pure function of (program, model, options, solution).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_VERIFY_CERTIFIER_H
#define SPA_VERIFY_CERTIFIER_H

#include <cstdint>
#include <string>
#include <vector>

namespace spa {

class Solver;

/// Outcome of one certification pass.
struct CertifyResult {
  /// Distinct obligations re-derived and checked: memberships (rules 1, 2,
  /// pointer arithmetic, extern/unknown returns), per-(dst, src) set
  /// containments (rules 3-5, call bindings, summary copies), and freed-set
  /// requirements (Dealloc effects).
  uint64_t Obligations = 0;
  /// Obligations the solution does not satisfy (missing facts: UNSOUND).
  uint64_t Violations = 0;
  /// Points-to facts in the solution, counted per store node exactly like
  /// SolverRunStats::Edges.
  uint64_t FactsTotal = 0;
  /// Facts no rule application over the final solution justifies.
  uint64_t FactsUnjustified = 0;
  /// Freed-set entries no Dealloc effect over the final solution justifies.
  uint64_t FreedUnjustified = 0;
  /// Wall-clock seconds spent certifying.
  double Seconds = 0;
  /// Human-readable reports for the first violations/unjustified facts
  /// (capped; see MaxMessages in Certifier.cpp).
  std::vector<std::string> Messages;

  /// A solution certifies iff it is both closed under the rules and fully
  /// justified by them.
  bool ok() const {
    return Violations == 0 && FactsUnjustified == 0 && FreedUnjustified == 0;
  }
};

/// Certifies \p S's solved points-to graph against the inference rules,
/// using only the solver's model for normalize/lookup/resolve and its
/// read-only queries. Does not mutate the solution, the per-site events,
/// or the model's Figure-3 statistics (they are snapshotted and restored).
///
/// Meaningful on converged runs: an unconverged solution is expected to
/// fail (facts are missing by definition), and the CLI skips certification
/// in that case.
CertifyResult certifySolution(Solver &S);

} // namespace spa

#endif // SPA_VERIFY_CERTIFIER_H
