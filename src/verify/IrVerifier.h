//===--- IrVerifier.h - NormIR well-formedness lint ------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A well-formedness verifier for the normalized program representation.
/// The solver and the certifier both assume the invariants the normalizer
/// establishes — every statement is in one of the five normalized forms
/// (plus PtrArith/Call), every operand names a real object, member paths
/// walk real fields of complete records, and library-summary effects only
/// reference arguments the call actually passes. This pass checks those
/// invariants explicitly, so a broken producer (or a corrupted IR in the
/// mutation self-tests) is caught before the analysis silently mis-solves.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_VERIFY_IRVERIFIER_H
#define SPA_VERIFY_IRVERIFIER_H

#include <cstdint>
#include <string>
#include <vector>

namespace spa {

class LayoutEngine;
class LibrarySummaries;
class NormProgram;

/// Outcome of one IR verification pass.
struct IrVerifyResult {
  /// Individual invariant checks evaluated.
  uint64_t ChecksRun = 0;
  /// Checks that failed.
  uint64_t Violations = 0;
  /// Human-readable reports for the first violations (capped).
  std::vector<std::string> Messages;

  bool ok() const { return Violations == 0; }
};

/// Verifies \p Prog's objects, functions, statements, and dereference
/// sites. \p Layout supplies the flattened-leaf view used to check that
/// member paths land on locations lookup can actually resolve; \p Lib is
/// consulted for the argument indices its effect summaries reference.
IrVerifyResult verifyNormIR(const NormProgram &Prog,
                            const LayoutEngine &Layout,
                            const LibrarySummaries &Lib);

} // namespace spa

#endif // SPA_VERIFY_IRVERIFIER_H
