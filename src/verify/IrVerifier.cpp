//===--- IrVerifier.cpp ---------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "verify/IrVerifier.h"

#include "ctypes/Flatten.h"
#include "norm/NormIR.h"
#include "pta/LibrarySummaries.h"

#include <map>
#include <optional>

using namespace spa;

namespace {

constexpr size_t MaxMessages = 25;

constexpr uint8_t MaxNormOp = static_cast<uint8_t>(NormOp::Call);
constexpr uint8_t MaxObjectKind = static_cast<uint8_t>(ObjectKind::Unknown);

class IrVerifier {
public:
  IrVerifier(const NormProgram &Prog, const LayoutEngine &Layout,
             const LibrarySummaries &Lib)
      : Prog(Prog), Types(Prog.Types), Layout(Layout), Lib(Lib) {}

  IrVerifyResult run() {
    for (size_t I = 0; I < Prog.Objects.size(); ++I)
      verifyObject(I);
    for (size_t I = 0; I < Prog.Funcs.size(); ++I)
      verifyFunc(I);
    for (size_t I = 0; I < Prog.DerefSites.size(); ++I)
      verifySite(I);
    for (size_t I = 0; I < Prog.Stmts.size(); ++I)
      verifyStmt(I);
    return std::move(R);
  }

private:
  const NormProgram &Prog;
  const TypeTable &Types;
  const LayoutEngine &Layout;
  const LibrarySummaries &Lib;
  IrVerifyResult R;
  /// Flattened views by root type, shared across statements.
  std::map<TypeId, FlattenedType> Flats;

  /// Evaluates one invariant; false records a violation.
  bool check(bool Ok, const std::string &What) {
    ++R.ChecksRun;
    if (Ok)
      return true;
    ++R.Violations;
    if (R.Messages.size() < MaxMessages)
      R.Messages.push_back(What);
    return false;
  }

  bool validObj(ObjectId Obj) const {
    return Obj.isValid() && Obj.index() < Prog.Objects.size();
  }
  bool validFunc(FuncId Fn) const {
    return Fn.isValid() && Fn.index() < Prog.Funcs.size();
  }
  bool validType(TypeId Ty) const {
    return Ty.isValid() && Ty.index() < Types.numTypes();
  }

  /// Walks \p Path from \p Root through complete records (looking through
  /// arrays, as every path consumer does); nullopt if any step is out of
  /// bounds or not a record member access.
  std::optional<TypeId> walkPath(TypeId Root, const FieldPath &Path) const {
    TypeId Ty = Types.unqualified(Root);
    for (uint32_t Idx : Path) {
      while (Types.isArray(Ty))
        Ty = Types.unqualified(Types.element(Ty));
      if (!Types.isRecord(Ty))
        return std::nullopt;
      const RecordDecl &Rec = Types.record(Types.node(Ty).Record);
      if (!Rec.IsComplete || Idx >= Rec.Fields.size())
        return std::nullopt;
      Ty = Types.unqualified(Rec.Fields[Idx].Ty);
    }
    return Ty;
  }

  /// True if the flattened layout of \p Root can land the access \p Path
  /// on a real location: some leaf lies at or below the path (the path
  /// names a leaf or an interior record), or the path descends into a
  /// collapsed leaf (a union blob's members share its one leaf). Only
  /// called on structurally valid paths.
  bool pathHasLeaf(TypeId Root, const FieldPath &Path) {
    TypeId Key = Types.unqualified(Root);
    auto It = Flats.find(Key);
    if (It == Flats.end())
      It = Flats.try_emplace(Key, FlattenedType(Types, Layout, Key)).first;
    for (const LeafField &Leaf : It->second.leaves()) {
      size_t Common = std::min(Leaf.Path.size(), Path.size());
      if (std::equal(Path.begin(), Path.begin() + Common, Leaf.Path.begin()))
        return true;
    }
    return false;
  }

  void verifyObject(size_t I) {
    const NormObject &Obj = Prog.Objects[I];
    std::string Tag = "object #" + std::to_string(I);
    check(static_cast<uint8_t>(Obj.Kind) <= MaxObjectKind,
          Tag + ": kind out of range");
    check(validType(Obj.Ty), Tag + ": invalid declared type");
    if (Obj.Owner.isValid())
      check(validFunc(Obj.Owner), Tag + ": owner function out of range");
    if (Obj.Kind == ObjectKind::Function)
      check(validFunc(Obj.AsFunction),
            Tag + ": function object without a target function");
  }

  void verifyFunc(size_t I) {
    const NormFunction &Fn = Prog.Funcs[I];
    std::string Tag = "function #" + std::to_string(I);
    check(validType(Fn.Ty), Tag + ": invalid function type");
    for (size_t P = 0; P < Fn.Params.size(); ++P) {
      if (!check(validObj(Fn.Params[P]),
                 Tag + ": parameter " + std::to_string(P) +
                     " is not a real object"))
        continue;
      check(Prog.object(Fn.Params[P]).Kind == ObjectKind::Param,
            Tag + ": parameter " + std::to_string(P) +
                " is not a Param-kind object");
    }
    if (Fn.RetObj.isValid())
      check(validObj(Fn.RetObj), Tag + ": return object out of range");
    if (Fn.VarargsObj.isValid()) {
      check(validObj(Fn.VarargsObj), Tag + ": varargs object out of range");
      check(Fn.IsVariadic, Tag + ": varargs object on a fixed-arity function");
    }
    if (Fn.FnObj.isValid() &&
        check(validObj(Fn.FnObj), Tag + ": function object out of range")) {
      const NormObject &Obj = Prog.object(Fn.FnObj);
      check(Obj.Kind == ObjectKind::Function &&
                Obj.AsFunction == FuncId(static_cast<uint32_t>(I)),
            Tag + ": function object does not refer back to it");
    }
  }

  void verifySite(size_t I) {
    const DerefSite &Site = Prog.DerefSites[I];
    std::string Tag = "deref site #" + std::to_string(I);
    check(validObj(Site.Ptr), Tag + ": dereferenced pointer out of range");
    check(validType(Site.DeclPointeeTy),
          Tag + ": invalid declared pointee type");
  }

  /// The statement's dereferenced-pointer operand, for checking its deref
  /// site's linkage; invalid id when the form has none.
  static ObjectId derefPtrOf(const NormStmt &Stmt) {
    switch (Stmt.Op) {
    case NormOp::AddrOfDeref:
    case NormOp::Load:
      return Stmt.Src;
    case NormOp::Store:
      return Stmt.Dst;
    case NormOp::Call:
      return Stmt.IndirectCallee;
    default:
      return ObjectId();
    }
  }

  void verifyStmt(size_t I) {
    const NormStmt &Stmt = Prog.Stmts[I];
    std::string Tag = "stmt #" + std::to_string(I);
    if (!check(static_cast<uint8_t>(Stmt.Op) <= MaxNormOp,
               Tag + ": operation out of range"))
      return; // nothing else about the statement is interpretable
    if (Stmt.Owner.isValid())
      check(validFunc(Stmt.Owner), Tag + ": owner function out of range");

    switch (Stmt.Op) {
    case NormOp::AddrOf:
    case NormOp::Copy:
      check(validObj(Stmt.Dst), Tag + ": invalid destination object");
      check(validType(Stmt.LhsTy), Tag + ": invalid left-hand-side type");
      if (check(validObj(Stmt.Src), Tag + ": invalid source object"))
        verifyPath(Tag, Prog.object(Stmt.Src).Ty, Stmt.Path);
      break;
    case NormOp::AddrOfDeref:
      check(validObj(Stmt.Dst), Tag + ": invalid destination object");
      check(validObj(Stmt.Src), Tag + ": invalid pointer operand");
      check(validType(Stmt.LhsTy), Tag + ": invalid left-hand-side type");
      if (check(validType(Stmt.DeclPointeeTy),
                Tag + ": invalid declared pointee type"))
        verifyPath(Tag, Stmt.DeclPointeeTy, Stmt.Path);
      break;
    case NormOp::Load:
    case NormOp::Store:
      check(validObj(Stmt.Dst), Tag + ": invalid destination object");
      check(validObj(Stmt.Src), Tag + ": invalid source object");
      check(validType(Stmt.LhsTy), Tag + ": invalid left-hand-side type");
      check(Stmt.Path.empty(),
            Tag + ": member path on a form whose operands are top-level");
      break;
    case NormOp::PtrArith:
      check(validObj(Stmt.Dst), Tag + ": invalid destination object");
      check(!Stmt.ArithSrcs.empty(),
            Tag + ": pointer arithmetic without operands");
      for (size_t A = 0; A < Stmt.ArithSrcs.size(); ++A)
        check(validObj(Stmt.ArithSrcs[A]),
              Tag + ": invalid arithmetic operand " + std::to_string(A));
      break;
    case NormOp::Call:
      verifyCall(I, Stmt, Tag);
      break;
    }

    verifySiteLink(Stmt, Tag);
  }

  /// A member path must name a real (transitively complete) member chain,
  /// and the flattened layout must hold a leaf at or below it — exactly
  /// the locations normalize and lookup resolve accesses to.
  void verifyPath(const std::string &Tag, TypeId Root, const FieldPath &Path) {
    if (Path.empty()) {
      ++R.ChecksRun; // the empty path is trivially well-formed
      return;
    }
    if (!check(walkPath(Root, Path).has_value(),
               Tag + ": member path walks outside the base type"))
      return;
    check(pathHasLeaf(Root, Path),
          Tag + ": member path has no leaf in the flattened layout");
  }

  void verifyCall(size_t I, const NormStmt &Stmt, const std::string &Tag) {
    bool Direct = Stmt.DirectCallee.isValid();
    bool Indirect = Stmt.IndirectCallee.isValid();
    check(Direct != Indirect,
          Tag + ": call must have exactly one callee form");
    if (Direct)
      check(validFunc(Stmt.DirectCallee), Tag + ": direct callee out of range");
    if (Indirect)
      check(validObj(Stmt.IndirectCallee),
            Tag + ": indirect callee out of range");
    for (size_t A = 0; A < Stmt.Args.size(); ++A)
      check(validObj(Stmt.Args[A]),
            Tag + ": invalid argument " + std::to_string(A));
    if (Stmt.RetDst.isValid())
      check(validObj(Stmt.RetDst), Tag + ": return destination out of range");
    (void)I;

    if (Direct && validFunc(Stmt.DirectCallee))
      verifySummaryUse(Stmt, Tag);
  }

  /// Library-summary effects of an undefined callee must reference
  /// arguments the call actually passes (an out-of-range index means the
  /// solver would silently drop the effect).
  void verifySummaryUse(const NormStmt &Stmt, const std::string &Tag) {
    using Effect = LibrarySummaries::Effect;
    const NormFunction &Fn = Prog.func(Stmt.DirectCallee);
    if (Fn.IsDefined)
      return;
    const std::vector<Effect> *Effects =
        Lib.summaryOf(Prog.Strings.text(Fn.Name));
    if (!Effects)
      return;
    auto ArgOk = [&](int Idx) {
      // -1 names the call's return slot (realloc); apply() skips it when
      // absent, so only non-negative indices must name passed arguments.
      return Idx < 0 || static_cast<size_t>(Idx) < Stmt.Args.size();
    };
    for (size_t E = 0; E < Effects->size(); ++E) {
      const Effect &Eff = (*Effects)[E];
      std::string EffTag =
          Tag + ": summary effect " + std::to_string(E) + " of " +
          std::string(Prog.Strings.text(Fn.Name));
      switch (Eff.K) {
      case Effect::RetAliasArg:
      case Effect::RetIntoArg:
        // Without a return slot the effect is inert; with one, the aliased
        // argument must exist.
        if (Stmt.RetDst.isValid())
          check(ArgOk(Eff.A), EffTag + " references a missing argument");
        break;
      case Effect::CopyPointees:
      case Effect::Callback:
        check(ArgOk(Eff.A) && ArgOk(Eff.B),
              EffTag + " references a missing argument");
        break;
      case Effect::Dealloc:
        check(ArgOk(Eff.A), EffTag + " references a missing argument");
        break;
      case Effect::RetExtern:
        break;
      }
    }
  }

  void verifySiteLink(const NormStmt &Stmt, const std::string &Tag) {
    if (Stmt.DerefSite < 0) {
      // Data dereferences and indirect calls must carry a site (the
      // checker layer keys its findings on them).
      ObjectId Ptr = derefPtrOf(Stmt);
      check(!Ptr.isValid(), Tag + ": dereference without a deref site");
      return;
    }
    if (!check(static_cast<size_t>(Stmt.DerefSite) < Prog.DerefSites.size(),
               Tag + ": deref site index out of range"))
      return;
    const DerefSite &Site = Prog.DerefSites[Stmt.DerefSite];
    ObjectId Ptr = derefPtrOf(Stmt);
    if (!check(Ptr.isValid(),
               Tag + ": deref site on a form that dereferences nothing"))
      return;
    check(Site.Ptr == Ptr,
          Tag + ": deref site records a different pointer");
    check(Site.IsCall == (Stmt.Op == NormOp::Call),
          Tag + ": deref site call flag disagrees with the statement");
  }
};

} // namespace

IrVerifyResult spa::verifyNormIR(const NormProgram &Prog,
                                 const LayoutEngine &Layout,
                                 const LibrarySummaries &Lib) {
  return IrVerifier(Prog, Layout, Lib).run();
}
