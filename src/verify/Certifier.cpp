//===--- Certifier.cpp ----------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "verify/Certifier.h"

#include "pta/Solver.h"

#include <chrono>
#include <unordered_set>

using namespace spa;

namespace {

/// Hard cap on human-readable reports; counters stay exact beyond it.
constexpr size_t MaxMessages = 25;

/// One certification pass. Re-derives every rule obligation from the final
/// solution with the model's normalize/lookup/resolve, checks each against
/// the solution, and marks the facts the rules justify; facts left unmarked
/// afterwards are unjustified (see Certifier.h).
class Certifier {
public:
  explicit Certifier(Solver &S)
      : S(S), Prog(S.program()), Model(S.model()), Opts(S.options()) {}

  CertifyResult run() {
    auto Start = std::chrono::steady_clock::now();
    // The model counts every lookup/resolve (the paper's Figure-3 data);
    // re-deriving obligations must not perturb what the run reported.
    ModelStats Saved = Model.snapshotStats();

    for (const NormStmt &Stmt : Prog.Stmts)
      deriveStmt(Stmt);
    auditFacts();
    auditFreed();

    Model.restoreStats(Saved);
    R.Seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    return std::move(R);
  }

private:
  Solver &S;
  NormProgram &Prog;
  FieldModel &Model;
  const SolverOptions &Opts;
  CertifyResult R;

  /// Per store node: the facts some rule application justifies. Indexed by
  /// raw node id — never canonicalized, so a collapsed cycle's members are
  /// each justified through their own incoming copy edges.
  std::vector<PtsSet> Justified;
  /// Containment obligations already checked, keyed (dst << 32) | src.
  /// resolve pairs recur across statements (every Load target, every call
  /// site); one containment check per distinct pair keeps the pass linear.
  std::unordered_set<uint64_t> CopyMemo;
  /// Pointer-arithmetic smears already derived, keyed (dst << 32) | target.
  std::unordered_set<uint64_t> SmearMemo;
  /// Freed objects justified by some Dealloc effect.
  IdSet<ObjectTag> FreedJustified;

  static uint64_t pairKey(NodeId A, NodeId B) {
    return (uint64_t(A.index()) << 32) | B.index();
  }

  std::string nodeName(NodeId Node) {
    ObjectId Obj = Model.nodes().objectOf(Node);
    return Prog.objectName(Obj) + Model.nodeSuffix(Node);
  }

  void report(std::string Msg) {
    if (R.Messages.size() < MaxMessages)
      R.Messages.push_back(std::move(Msg));
  }

  void justify(NodeId Dst, NodeId Target) {
    if (Dst.index() >= Justified.size())
      Justified.resize(Dst.index() + 1);
    Justified[Dst.index()].insert(Target);
  }

  /// Membership obligation: some rule requires Target in pts(Dst).
  void requireMember(NodeId Dst, NodeId Target, const char *Rule) {
    ++R.Obligations;
    justify(Dst, Target);
    if (S.pointsTo(Dst).contains(Target))
      return;
    ++R.Violations;
    report(std::string("missing fact [") + Rule + "]: " + nodeName(Dst) +
           " -> " + nodeName(Target));
  }

  /// Containment obligation: some rule requires pts(Dst) >= pts(Src).
  /// Self-pairs are skipped exactly as the solver's joinPair skips them —
  /// a set trivially contains itself, and using the pair to justify its
  /// own facts would be circular.
  void requireContains(NodeId Dst, NodeId Src, const char *Rule) {
    if (Dst == Src)
      return;
    if (!CopyMemo.insert(pairKey(Dst, Src)).second)
      return;
    ++R.Obligations;
    const PtsSet &DstSet = S.pointsTo(Dst);
    for (NodeId Fact : S.pointsTo(Src)) {
      justify(Dst, Fact);
      if (DstSet.contains(Fact))
        continue;
      ++R.Violations;
      report(std::string("missing fact [") + Rule + "]: " + nodeName(Dst) +
             " -> " + nodeName(Fact) + " (copied from " + nodeName(Src) +
             ")");
    }
  }

  /// Resolve-mediated containments: one per (d, s) pair of
  /// resolve(Dst, Src, Tau). Mirrors Solver::flowResolve without the
  /// delta-mode caches (pure re-derivation needs none).
  void requireResolve(NodeId Dst, NodeId Src, TypeId Tau, const char *Rule) {
    std::vector<std::pair<NodeId, NodeId>> Pairs;
    Model.resolve(Dst, Src, Tau, Pairs);
    for (const auto &[D, Source] : Pairs)
      requireContains(D, Source, Rule);
  }

  /// Pointer-arithmetic smear obligations of \p Targets into \p Dst.
  /// Mirrors Solver::flowPtrArith, including the Section-4.2.1 Unknown
  /// alternative and the skip of already-Unknown targets.
  void requireSmear(NodeId Dst, const PtsSet &Targets, const char *Rule) {
    if (Opts.TrackUnknown) {
      if (!Targets.empty())
        requireUnknown(Dst, Rule);
      return;
    }
    std::vector<NodeId> All;
    for (NodeId Target : Targets) {
      if (S.isUnknownNode(Target))
        continue;
      if (!SmearMemo.insert(pairKey(Dst, Target)).second)
        continue;
      All.clear();
      Model.arithNodes(Target, Opts.StrideArith, All);
      for (NodeId Node : All)
        requireMember(Dst, Node, Rule);
    }
  }

  /// TrackUnknown mode: the Unknown location must be in pts(Dst). The
  /// solver materializes $unknown on the first such derivation, so on any
  /// solved run that reaches here the object exists; a missing object
  /// means the fact (and the location itself) was never recorded.
  void requireUnknown(NodeId Dst, const char *Rule) {
    ObjectId UnknownObj = S.unknownObjectId();
    if (!UnknownObj.isValid()) {
      ++R.Obligations;
      ++R.Violations;
      report(std::string("missing fact [") + Rule + "]: " + nodeName(Dst) +
             " -> $unknown (location never materialized)");
      return;
    }
    requireMember(Dst, Model.normalizeLoc(UnknownObj, {}), Rule);
  }

  NodeId normalizeObj(ObjectId Obj) { return Model.normalizeLoc(Obj, {}); }

  void deriveStmt(const NormStmt &Stmt) {
    switch (Stmt.Op) {
    case NormOp::AddrOf:
      // Rule 1: normalize(t.beta) in pts(normalize(s)).
      requireMember(normalizeObj(Stmt.Dst),
                    Model.normalizeLoc(Stmt.Src, Stmt.Path), "addr-of");
      return;
    case NormOp::AddrOfDeref: {
      // Rule 2: each lookup(tau_p, alpha, t) node is in pts(normalize(s)).
      NodeId Dst = normalizeObj(Stmt.Dst);
      std::vector<NodeId> Fields;
      for (NodeId Target : S.pointsTo(normalizeObj(Stmt.Src))) {
        Fields.clear();
        Model.lookup(Stmt.DeclPointeeTy, Stmt.Path, Target, Fields);
        for (NodeId Field : Fields)
          requireMember(Dst, Field, "addr-of-deref");
      }
      return;
    }
    case NormOp::Copy:
      // Rule 3: resolve(normalize(s), normalize(t.beta), tau_s).
      requireResolve(normalizeObj(Stmt.Dst),
                     Model.normalizeLoc(Stmt.Src, Stmt.Path), Stmt.LhsTy,
                     "copy");
      return;
    case NormOp::Load: {
      // Rule 4: resolve(normalize(s), t, tau_s) for each t in pts(q).
      NodeId Dst = normalizeObj(Stmt.Dst);
      for (NodeId Target : S.pointsTo(normalizeObj(Stmt.Src)))
        requireResolve(Dst, Target, Stmt.LhsTy, "load");
      return;
    }
    case NormOp::Store: {
      // Rule 5: resolve(s, normalize(t), tau_p-pointee) for each s in
      // pts(p).
      NodeId Src = normalizeObj(Stmt.Src);
      for (NodeId Target : S.pointsTo(normalizeObj(Stmt.Dst)))
        requireResolve(Target, Src, Stmt.LhsTy, "store");
      return;
    }
    case NormOp::PtrArith: {
      // Assumption 1 (or its TrackUnknown/stride variants).
      if (!Opts.HandlePtrArith)
        return;
      NodeId Dst = normalizeObj(Stmt.Dst);
      for (ObjectId Operand : Stmt.ArithSrcs)
        requireSmear(Dst, S.pointsTo(normalizeObj(Operand)), "ptr-arith");
      return;
    }
    case NormOp::Call:
      deriveCall(Stmt);
      return;
    }
  }

  void deriveCall(const NormStmt &Call) {
    for (FuncId Callee : S.calleesOf(Call)) {
      const NormFunction &Fn = Prog.func(Callee);
      if (!Fn.IsDefined) {
        if (Opts.UseLibrarySummaries)
          deriveSummary(Call, Fn);
        continue;
      }
      // Context-insensitive binding, mirroring Solver::bindCall.
      size_t NumParams = Fn.Params.size();
      for (size_t I = 0; I < Call.Args.size(); ++I) {
        if (Prog.object(Call.Args[I]).Kind == ObjectKind::Constant)
          continue;
        if (I < NumParams) {
          ObjectId Param = Fn.Params[I];
          requireResolve(normalizeObj(Param), normalizeObj(Call.Args[I]),
                         Prog.object(Param).Ty, "call-arg");
        } else if (Fn.VarargsObj.isValid()) {
          // Extra arguments pool into "..." via a plain untyped join over
          // every node of the argument object.
          NodeId Va = normalizeObj(Fn.VarargsObj);
          for (NodeId ArgNode : Model.nodes().nodesOfObject(Call.Args[I]))
            requireContains(Va, ArgNode, "call-vararg");
        }
      }
      if (Call.RetDst.isValid() && Fn.RetObj.isValid())
        requireResolve(normalizeObj(Call.RetDst), normalizeObj(Fn.RetObj),
                       Prog.object(Call.RetDst).Ty, "call-ret");
    }
  }

  /// Re-derives the obligations of LibrarySummaries::apply for one call to
  /// an undefined function. Unknown externals have no summary and thus no
  /// obligations (the solver conservatively treats them as effect-free).
  void deriveSummary(const NormStmt &Call, const NormFunction &Fn) {
    using Effect = LibrarySummaries::Effect;
    const std::vector<Effect> *Effects =
        S.summaries().summaryOf(Prog.Strings.text(Fn.Name));
    if (!Effects)
      return;

    auto ArgNode = [&](int I) -> NodeId {
      if (I < 0)
        return Call.RetDst.isValid() ? normalizeObj(Call.RetDst) : NodeId();
      if (static_cast<size_t>(I) >= Call.Args.size())
        return NodeId();
      return normalizeObj(Call.Args[I]);
    };

    for (const Effect &E : *Effects) {
      switch (E.K) {
      case Effect::RetAliasArg: {
        if (!Call.RetDst.isValid())
          break;
        NodeId Arg = ArgNode(E.A);
        if (!Arg.isValid())
          break;
        requireResolve(normalizeObj(Call.RetDst), Arg,
                       Prog.object(Call.RetDst).Ty, "lib-ret-alias");
        break;
      }
      case Effect::RetIntoArg: {
        if (!Call.RetDst.isValid())
          break;
        NodeId Arg = ArgNode(E.A);
        if (!Arg.isValid())
          break;
        requireSmear(normalizeObj(Call.RetDst), S.pointsTo(Arg),
                     "lib-ret-into");
        break;
      }
      case Effect::CopyPointees: {
        NodeId DstArg = ArgNode(E.A);
        NodeId SrcArg = ArgNode(E.B);
        if (!DstArg.isValid() || !SrcArg.isValid())
          break;
        for (NodeId D : S.pointsTo(DstArg))
          for (NodeId Source : S.pointsTo(SrcArg)) {
            ObjectId SrcObj = Model.nodes().objectOf(Source);
            requireResolve(D, Source, Prog.object(SrcObj).Ty, "lib-copy");
          }
        break;
      }
      case Effect::RetExtern: {
        if (!Call.RetDst.isValid())
          break;
        ObjectId Ext = S.externObjectId();
        if (!Ext.isValid()) {
          // The solver creates $extern when it first applies a RetExtern
          // effect, so a solved run that derives this obligation has it.
          ++R.Obligations;
          ++R.Violations;
          report("missing fact [lib-ret-extern]: " +
                 nodeName(normalizeObj(Call.RetDst)) +
                 " -> $extern (object never materialized)");
          break;
        }
        requireMember(normalizeObj(Call.RetDst), normalizeObj(Ext),
                      "lib-ret-extern");
        break;
      }
      case Effect::Callback: {
        NodeId Cb = ArgNode(E.A);
        NodeId Data = ArgNode(E.B);
        if (!Cb.isValid() || !Data.isValid())
          break;
        const PtsSet &DataTargets = S.pointsTo(Data);
        for (NodeId Target : S.pointsTo(Cb)) {
          ObjectId Obj = Model.nodes().objectOf(Target);
          const NormObject &Info = Prog.object(Obj);
          if (Info.Kind != ObjectKind::Function ||
              !Info.AsFunction.isValid())
            continue;
          for (ObjectId Param : Prog.func(Info.AsFunction).Params)
            requireSmear(normalizeObj(Param), DataTargets, "lib-callback");
        }
        break;
      }
      case Effect::Dealloc: {
        NodeId Arg = ArgNode(E.A);
        if (!Arg.isValid())
          break;
        for (NodeId T : S.pointsTo(Arg)) {
          ObjectId Obj = Model.nodes().objectOf(T);
          // Mirror Solver::markFreed's filter: only real heap allocation
          // sites are recorded, never the shared $extern blob.
          if (!Obj.isValid() || Obj == S.externObjectId() ||
              Prog.object(Obj).Kind != ObjectKind::Heap)
            continue;
          FreedJustified.insert(Obj);
          ++R.Obligations;
          if (S.isFreed(Obj))
            continue;
          ++R.Violations;
          report("missing freed mark [lib-dealloc]: " +
                 Prog.objectName(Obj));
        }
        break;
      }
      }
    }
  }

  /// Precision audit: every fact the solution holds must have been marked
  /// justified by some obligation above. Counted per store node, exactly
  /// like SolverRunStats::Edges, so the totals match the engines'.
  void auditFacts() {
    size_t NumNodes = Model.nodes().size();
    for (uint32_t I = 0; I < NumNodes; ++I) {
      NodeId Node(I);
      const PtsSet &Set = S.pointsTo(Node);
      R.FactsTotal += Set.size();
      const PtsSet *Marks =
          I < Justified.size() ? &Justified[I] : nullptr;
      for (NodeId Fact : Set) {
        if (Marks && Marks->contains(Fact))
          continue;
        ++R.FactsUnjustified;
        report("unjustified fact: " + nodeName(Node) + " -> " +
               nodeName(Fact));
      }
    }
  }

  /// Freed-set audit: every freed object must be justified by a Dealloc
  /// effect derived over the final solution.
  void auditFreed() {
    for (ObjectId Obj : S.freedObjects()) {
      if (FreedJustified.contains(Obj))
        continue;
      ++R.FreedUnjustified;
      report("unjustified freed mark: " + Prog.objectName(Obj));
    }
  }
};

} // namespace

CertifyResult spa::certifySolution(Solver &S) { return Certifier(S).run(); }
